# Empty compiler generated dependencies file for transcode.
# This may be replaced when dependencies are built.
