# Empty dependencies file for make_sequences.
# This may be replaced when dependencies are built.
