file(REMOVE_RECURSE
  "CMakeFiles/make_sequences.dir/make_sequences.cc.o"
  "CMakeFiles/make_sequences.dir/make_sequences.cc.o.d"
  "make_sequences"
  "make_sequences.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/make_sequences.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
