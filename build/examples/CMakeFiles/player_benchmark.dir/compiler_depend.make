# Empty compiler generated dependencies file for player_benchmark.
# This may be replaced when dependencies are built.
