file(REMOVE_RECURSE
  "CMakeFiles/player_benchmark.dir/player_benchmark.cc.o"
  "CMakeFiles/player_benchmark.dir/player_benchmark.cc.o.d"
  "player_benchmark"
  "player_benchmark.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/player_benchmark.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
