file(REMOVE_RECURSE
  "libhdvb_core.a"
)
