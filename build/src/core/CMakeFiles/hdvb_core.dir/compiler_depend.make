# Empty compiler generated dependencies file for hdvb_core.
# This may be replaced when dependencies are built.
