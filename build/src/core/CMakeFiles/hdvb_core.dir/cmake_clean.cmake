file(REMOVE_RECURSE
  "CMakeFiles/hdvb_core.dir/benchmark.cc.o"
  "CMakeFiles/hdvb_core.dir/benchmark.cc.o.d"
  "CMakeFiles/hdvb_core.dir/report.cc.o"
  "CMakeFiles/hdvb_core.dir/report.cc.o.d"
  "CMakeFiles/hdvb_core.dir/runner.cc.o"
  "CMakeFiles/hdvb_core.dir/runner.cc.o.d"
  "libhdvb_core.a"
  "libhdvb_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hdvb_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
