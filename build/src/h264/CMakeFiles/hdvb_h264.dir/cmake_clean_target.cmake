file(REMOVE_RECURSE
  "libhdvb_h264.a"
)
