# Empty compiler generated dependencies file for hdvb_h264.
# This may be replaced when dependencies are built.
