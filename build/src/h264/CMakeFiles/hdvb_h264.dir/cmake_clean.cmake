file(REMOVE_RECURSE
  "CMakeFiles/hdvb_h264.dir/deblock.cc.o"
  "CMakeFiles/hdvb_h264.dir/deblock.cc.o.d"
  "CMakeFiles/hdvb_h264.dir/decoder.cc.o"
  "CMakeFiles/hdvb_h264.dir/decoder.cc.o.d"
  "CMakeFiles/hdvb_h264.dir/encoder.cc.o"
  "CMakeFiles/hdvb_h264.dir/encoder.cc.o.d"
  "CMakeFiles/hdvb_h264.dir/intra_pred.cc.o"
  "CMakeFiles/hdvb_h264.dir/intra_pred.cc.o.d"
  "libhdvb_h264.a"
  "libhdvb_h264.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hdvb_h264.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
