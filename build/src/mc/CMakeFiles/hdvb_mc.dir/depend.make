# Empty dependencies file for hdvb_mc.
# This may be replaced when dependencies are built.
