file(REMOVE_RECURSE
  "libhdvb_mc.a"
)
