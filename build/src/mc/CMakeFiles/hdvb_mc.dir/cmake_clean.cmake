file(REMOVE_RECURSE
  "CMakeFiles/hdvb_mc.dir/mc.cc.o"
  "CMakeFiles/hdvb_mc.dir/mc.cc.o.d"
  "libhdvb_mc.a"
  "libhdvb_mc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hdvb_mc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
