file(REMOVE_RECURSE
  "CMakeFiles/hdvb_mpeg2.dir/decoder.cc.o"
  "CMakeFiles/hdvb_mpeg2.dir/decoder.cc.o.d"
  "CMakeFiles/hdvb_mpeg2.dir/encoder.cc.o"
  "CMakeFiles/hdvb_mpeg2.dir/encoder.cc.o.d"
  "libhdvb_mpeg2.a"
  "libhdvb_mpeg2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hdvb_mpeg2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
