file(REMOVE_RECURSE
  "libhdvb_mpeg2.a"
)
