# Empty dependencies file for hdvb_mpeg2.
# This may be replaced when dependencies are built.
