file(REMOVE_RECURSE
  "CMakeFiles/hdvb_simd.dir/dct_matrix.cc.o"
  "CMakeFiles/hdvb_simd.dir/dct_matrix.cc.o.d"
  "CMakeFiles/hdvb_simd.dir/dispatch.cc.o"
  "CMakeFiles/hdvb_simd.dir/dispatch.cc.o.d"
  "CMakeFiles/hdvb_simd.dir/kernels_scalar.cc.o"
  "CMakeFiles/hdvb_simd.dir/kernels_scalar.cc.o.d"
  "CMakeFiles/hdvb_simd.dir/kernels_sse2.cc.o"
  "CMakeFiles/hdvb_simd.dir/kernels_sse2.cc.o.d"
  "libhdvb_simd.a"
  "libhdvb_simd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hdvb_simd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
