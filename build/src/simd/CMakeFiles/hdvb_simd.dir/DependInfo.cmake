
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/simd/dct_matrix.cc" "src/simd/CMakeFiles/hdvb_simd.dir/dct_matrix.cc.o" "gcc" "src/simd/CMakeFiles/hdvb_simd.dir/dct_matrix.cc.o.d"
  "/root/repo/src/simd/dispatch.cc" "src/simd/CMakeFiles/hdvb_simd.dir/dispatch.cc.o" "gcc" "src/simd/CMakeFiles/hdvb_simd.dir/dispatch.cc.o.d"
  "/root/repo/src/simd/kernels_scalar.cc" "src/simd/CMakeFiles/hdvb_simd.dir/kernels_scalar.cc.o" "gcc" "src/simd/CMakeFiles/hdvb_simd.dir/kernels_scalar.cc.o.d"
  "/root/repo/src/simd/kernels_sse2.cc" "src/simd/CMakeFiles/hdvb_simd.dir/kernels_sse2.cc.o" "gcc" "src/simd/CMakeFiles/hdvb_simd.dir/kernels_sse2.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hdvb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
