# Empty compiler generated dependencies file for hdvb_simd.
# This may be replaced when dependencies are built.
