file(REMOVE_RECURSE
  "libhdvb_simd.a"
)
