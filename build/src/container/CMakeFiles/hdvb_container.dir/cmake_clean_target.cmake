file(REMOVE_RECURSE
  "libhdvb_container.a"
)
