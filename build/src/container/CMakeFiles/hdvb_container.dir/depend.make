# Empty dependencies file for hdvb_container.
# This may be replaced when dependencies are built.
