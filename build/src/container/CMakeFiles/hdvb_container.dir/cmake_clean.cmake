file(REMOVE_RECURSE
  "CMakeFiles/hdvb_container.dir/container.cc.o"
  "CMakeFiles/hdvb_container.dir/container.cc.o.d"
  "libhdvb_container.a"
  "libhdvb_container.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hdvb_container.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
