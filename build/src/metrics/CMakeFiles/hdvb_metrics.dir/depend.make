# Empty dependencies file for hdvb_metrics.
# This may be replaced when dependencies are built.
