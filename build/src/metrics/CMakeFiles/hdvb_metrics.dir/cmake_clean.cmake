file(REMOVE_RECURSE
  "CMakeFiles/hdvb_metrics.dir/psnr.cc.o"
  "CMakeFiles/hdvb_metrics.dir/psnr.cc.o.d"
  "CMakeFiles/hdvb_metrics.dir/stats.cc.o"
  "CMakeFiles/hdvb_metrics.dir/stats.cc.o.d"
  "libhdvb_metrics.a"
  "libhdvb_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hdvb_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
