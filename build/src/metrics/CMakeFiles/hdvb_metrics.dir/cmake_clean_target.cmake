file(REMOVE_RECURSE
  "libhdvb_metrics.a"
)
