
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/synth/noise.cc" "src/synth/CMakeFiles/hdvb_synth.dir/noise.cc.o" "gcc" "src/synth/CMakeFiles/hdvb_synth.dir/noise.cc.o.d"
  "/root/repo/src/synth/synth.cc" "src/synth/CMakeFiles/hdvb_synth.dir/synth.cc.o" "gcc" "src/synth/CMakeFiles/hdvb_synth.dir/synth.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hdvb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/video/CMakeFiles/hdvb_video.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
