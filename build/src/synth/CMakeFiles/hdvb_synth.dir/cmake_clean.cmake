file(REMOVE_RECURSE
  "CMakeFiles/hdvb_synth.dir/noise.cc.o"
  "CMakeFiles/hdvb_synth.dir/noise.cc.o.d"
  "CMakeFiles/hdvb_synth.dir/synth.cc.o"
  "CMakeFiles/hdvb_synth.dir/synth.cc.o.d"
  "libhdvb_synth.a"
  "libhdvb_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hdvb_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
