file(REMOVE_RECURSE
  "libhdvb_synth.a"
)
