# Empty compiler generated dependencies file for hdvb_synth.
# This may be replaced when dependencies are built.
