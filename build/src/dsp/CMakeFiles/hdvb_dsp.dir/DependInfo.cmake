
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dsp/dct_ref.cc" "src/dsp/CMakeFiles/hdvb_dsp.dir/dct_ref.cc.o" "gcc" "src/dsp/CMakeFiles/hdvb_dsp.dir/dct_ref.cc.o.d"
  "/root/repo/src/dsp/quant.cc" "src/dsp/CMakeFiles/hdvb_dsp.dir/quant.cc.o" "gcc" "src/dsp/CMakeFiles/hdvb_dsp.dir/quant.cc.o.d"
  "/root/repo/src/dsp/transform4x4.cc" "src/dsp/CMakeFiles/hdvb_dsp.dir/transform4x4.cc.o" "gcc" "src/dsp/CMakeFiles/hdvb_dsp.dir/transform4x4.cc.o.d"
  "/root/repo/src/dsp/zigzag.cc" "src/dsp/CMakeFiles/hdvb_dsp.dir/zigzag.cc.o" "gcc" "src/dsp/CMakeFiles/hdvb_dsp.dir/zigzag.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hdvb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/simd/CMakeFiles/hdvb_simd.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
