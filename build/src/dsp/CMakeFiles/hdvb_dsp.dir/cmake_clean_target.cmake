file(REMOVE_RECURSE
  "libhdvb_dsp.a"
)
