# Empty dependencies file for hdvb_dsp.
# This may be replaced when dependencies are built.
