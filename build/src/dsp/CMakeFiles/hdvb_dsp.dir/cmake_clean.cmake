file(REMOVE_RECURSE
  "CMakeFiles/hdvb_dsp.dir/dct_ref.cc.o"
  "CMakeFiles/hdvb_dsp.dir/dct_ref.cc.o.d"
  "CMakeFiles/hdvb_dsp.dir/quant.cc.o"
  "CMakeFiles/hdvb_dsp.dir/quant.cc.o.d"
  "CMakeFiles/hdvb_dsp.dir/transform4x4.cc.o"
  "CMakeFiles/hdvb_dsp.dir/transform4x4.cc.o.d"
  "CMakeFiles/hdvb_dsp.dir/zigzag.cc.o"
  "CMakeFiles/hdvb_dsp.dir/zigzag.cc.o.d"
  "libhdvb_dsp.a"
  "libhdvb_dsp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hdvb_dsp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
