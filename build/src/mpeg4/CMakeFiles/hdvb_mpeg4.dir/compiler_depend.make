# Empty compiler generated dependencies file for hdvb_mpeg4.
# This may be replaced when dependencies are built.
