file(REMOVE_RECURSE
  "libhdvb_mpeg4.a"
)
