file(REMOVE_RECURSE
  "CMakeFiles/hdvb_mpeg4.dir/decoder.cc.o"
  "CMakeFiles/hdvb_mpeg4.dir/decoder.cc.o.d"
  "CMakeFiles/hdvb_mpeg4.dir/encoder.cc.o"
  "CMakeFiles/hdvb_mpeg4.dir/encoder.cc.o.d"
  "libhdvb_mpeg4.a"
  "libhdvb_mpeg4.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hdvb_mpeg4.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
