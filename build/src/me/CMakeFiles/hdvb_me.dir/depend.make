# Empty dependencies file for hdvb_me.
# This may be replaced when dependencies are built.
