file(REMOVE_RECURSE
  "libhdvb_me.a"
)
