file(REMOVE_RECURSE
  "CMakeFiles/hdvb_me.dir/me.cc.o"
  "CMakeFiles/hdvb_me.dir/me.cc.o.d"
  "libhdvb_me.a"
  "libhdvb_me.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hdvb_me.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
