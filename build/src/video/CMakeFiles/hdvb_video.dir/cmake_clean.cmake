file(REMOVE_RECURSE
  "CMakeFiles/hdvb_video.dir/frame.cc.o"
  "CMakeFiles/hdvb_video.dir/frame.cc.o.d"
  "CMakeFiles/hdvb_video.dir/plane.cc.o"
  "CMakeFiles/hdvb_video.dir/plane.cc.o.d"
  "CMakeFiles/hdvb_video.dir/y4m.cc.o"
  "CMakeFiles/hdvb_video.dir/y4m.cc.o.d"
  "libhdvb_video.a"
  "libhdvb_video.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hdvb_video.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
