file(REMOVE_RECURSE
  "libhdvb_video.a"
)
