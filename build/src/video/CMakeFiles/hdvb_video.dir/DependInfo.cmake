
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/video/frame.cc" "src/video/CMakeFiles/hdvb_video.dir/frame.cc.o" "gcc" "src/video/CMakeFiles/hdvb_video.dir/frame.cc.o.d"
  "/root/repo/src/video/plane.cc" "src/video/CMakeFiles/hdvb_video.dir/plane.cc.o" "gcc" "src/video/CMakeFiles/hdvb_video.dir/plane.cc.o.d"
  "/root/repo/src/video/y4m.cc" "src/video/CMakeFiles/hdvb_video.dir/y4m.cc.o" "gcc" "src/video/CMakeFiles/hdvb_video.dir/y4m.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hdvb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
