# Empty compiler generated dependencies file for hdvb_video.
# This may be replaced when dependencies are built.
