# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("bitstream")
subdirs("video")
subdirs("simd")
subdirs("dsp")
subdirs("mc")
subdirs("me")
subdirs("codec")
subdirs("mpeg2")
subdirs("container")
subdirs("synth")
subdirs("metrics")
subdirs("mpeg4")
subdirs("h264")
subdirs("core")
