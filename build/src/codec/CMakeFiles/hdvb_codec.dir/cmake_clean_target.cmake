file(REMOVE_RECURSE
  "libhdvb_codec.a"
)
