# Empty compiler generated dependencies file for hdvb_codec.
# This may be replaced when dependencies are built.
