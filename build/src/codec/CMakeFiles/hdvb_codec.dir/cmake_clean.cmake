file(REMOVE_RECURSE
  "CMakeFiles/hdvb_codec.dir/codec.cc.o"
  "CMakeFiles/hdvb_codec.dir/codec.cc.o.d"
  "CMakeFiles/hdvb_codec.dir/run_level.cc.o"
  "CMakeFiles/hdvb_codec.dir/run_level.cc.o.d"
  "libhdvb_codec.a"
  "libhdvb_codec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hdvb_codec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
