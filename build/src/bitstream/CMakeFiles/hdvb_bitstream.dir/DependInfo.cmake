
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bitstream/bit_reader.cc" "src/bitstream/CMakeFiles/hdvb_bitstream.dir/bit_reader.cc.o" "gcc" "src/bitstream/CMakeFiles/hdvb_bitstream.dir/bit_reader.cc.o.d"
  "/root/repo/src/bitstream/bit_writer.cc" "src/bitstream/CMakeFiles/hdvb_bitstream.dir/bit_writer.cc.o" "gcc" "src/bitstream/CMakeFiles/hdvb_bitstream.dir/bit_writer.cc.o.d"
  "/root/repo/src/bitstream/range_coder.cc" "src/bitstream/CMakeFiles/hdvb_bitstream.dir/range_coder.cc.o" "gcc" "src/bitstream/CMakeFiles/hdvb_bitstream.dir/range_coder.cc.o.d"
  "/root/repo/src/bitstream/vlc.cc" "src/bitstream/CMakeFiles/hdvb_bitstream.dir/vlc.cc.o" "gcc" "src/bitstream/CMakeFiles/hdvb_bitstream.dir/vlc.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hdvb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
