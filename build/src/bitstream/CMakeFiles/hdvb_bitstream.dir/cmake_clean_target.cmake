file(REMOVE_RECURSE
  "libhdvb_bitstream.a"
)
