file(REMOVE_RECURSE
  "CMakeFiles/hdvb_bitstream.dir/bit_reader.cc.o"
  "CMakeFiles/hdvb_bitstream.dir/bit_reader.cc.o.d"
  "CMakeFiles/hdvb_bitstream.dir/bit_writer.cc.o"
  "CMakeFiles/hdvb_bitstream.dir/bit_writer.cc.o.d"
  "CMakeFiles/hdvb_bitstream.dir/range_coder.cc.o"
  "CMakeFiles/hdvb_bitstream.dir/range_coder.cc.o.d"
  "CMakeFiles/hdvb_bitstream.dir/vlc.cc.o"
  "CMakeFiles/hdvb_bitstream.dir/vlc.cc.o.d"
  "libhdvb_bitstream.a"
  "libhdvb_bitstream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hdvb_bitstream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
