# Empty compiler generated dependencies file for hdvb_bitstream.
# This may be replaced when dependencies are built.
