# Empty dependencies file for hdvb_common.
# This may be replaced when dependencies are built.
