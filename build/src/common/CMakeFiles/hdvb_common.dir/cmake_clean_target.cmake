file(REMOVE_RECURSE
  "libhdvb_common.a"
)
