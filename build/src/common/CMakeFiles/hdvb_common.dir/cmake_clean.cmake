file(REMOVE_RECURSE
  "CMakeFiles/hdvb_common.dir/log.cc.o"
  "CMakeFiles/hdvb_common.dir/log.cc.o.d"
  "CMakeFiles/hdvb_common.dir/status.cc.o"
  "CMakeFiles/hdvb_common.dir/status.cc.o.d"
  "libhdvb_common.a"
  "libhdvb_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hdvb_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
