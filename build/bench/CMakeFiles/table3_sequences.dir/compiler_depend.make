# Empty compiler generated dependencies file for table3_sequences.
# This may be replaced when dependencies are built.
