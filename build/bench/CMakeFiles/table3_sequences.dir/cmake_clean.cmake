file(REMOVE_RECURSE
  "CMakeFiles/table3_sequences.dir/table3_sequences.cc.o"
  "CMakeFiles/table3_sequences.dir/table3_sequences.cc.o.d"
  "table3_sequences"
  "table3_sequences.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_sequences.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
