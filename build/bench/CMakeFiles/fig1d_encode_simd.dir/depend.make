# Empty dependencies file for fig1d_encode_simd.
# This may be replaced when dependencies are built.
