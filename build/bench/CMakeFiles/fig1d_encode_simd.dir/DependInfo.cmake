
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig1d_encode_simd.cc" "bench/CMakeFiles/fig1d_encode_simd.dir/fig1d_encode_simd.cc.o" "gcc" "bench/CMakeFiles/fig1d_encode_simd.dir/fig1d_encode_simd.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/hdvb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/mpeg2/CMakeFiles/hdvb_mpeg2.dir/DependInfo.cmake"
  "/root/repo/build/src/mpeg4/CMakeFiles/hdvb_mpeg4.dir/DependInfo.cmake"
  "/root/repo/build/src/h264/CMakeFiles/hdvb_h264.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/hdvb_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/hdvb_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/container/CMakeFiles/hdvb_container.dir/DependInfo.cmake"
  "/root/repo/build/src/codec/CMakeFiles/hdvb_codec.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/hdvb_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/me/CMakeFiles/hdvb_me.dir/DependInfo.cmake"
  "/root/repo/build/src/bitstream/CMakeFiles/hdvb_bitstream.dir/DependInfo.cmake"
  "/root/repo/build/src/mc/CMakeFiles/hdvb_mc.dir/DependInfo.cmake"
  "/root/repo/build/src/video/CMakeFiles/hdvb_video.dir/DependInfo.cmake"
  "/root/repo/build/src/simd/CMakeFiles/hdvb_simd.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hdvb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
