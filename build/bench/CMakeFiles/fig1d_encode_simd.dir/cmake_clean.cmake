file(REMOVE_RECURSE
  "CMakeFiles/fig1d_encode_simd.dir/fig1d_encode_simd.cc.o"
  "CMakeFiles/fig1d_encode_simd.dir/fig1d_encode_simd.cc.o.d"
  "fig1d_encode_simd"
  "fig1d_encode_simd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1d_encode_simd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
