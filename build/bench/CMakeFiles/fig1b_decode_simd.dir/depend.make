# Empty dependencies file for fig1b_decode_simd.
# This may be replaced when dependencies are built.
