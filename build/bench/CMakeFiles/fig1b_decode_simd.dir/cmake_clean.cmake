file(REMOVE_RECURSE
  "CMakeFiles/fig1b_decode_simd.dir/fig1b_decode_simd.cc.o"
  "CMakeFiles/fig1b_decode_simd.dir/fig1b_decode_simd.cc.o.d"
  "fig1b_decode_simd"
  "fig1b_decode_simd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1b_decode_simd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
