file(REMOVE_RECURSE
  "CMakeFiles/fig1c_encode_scalar.dir/fig1c_encode_scalar.cc.o"
  "CMakeFiles/fig1c_encode_scalar.dir/fig1c_encode_scalar.cc.o.d"
  "fig1c_encode_scalar"
  "fig1c_encode_scalar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1c_encode_scalar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
