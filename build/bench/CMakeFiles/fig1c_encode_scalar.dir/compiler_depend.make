# Empty compiler generated dependencies file for fig1c_encode_scalar.
# This may be replaced when dependencies are built.
