file(REMOVE_RECURSE
  "CMakeFiles/ablation_tools.dir/ablation_tools.cc.o"
  "CMakeFiles/ablation_tools.dir/ablation_tools.cc.o.d"
  "ablation_tools"
  "ablation_tools.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_tools.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
