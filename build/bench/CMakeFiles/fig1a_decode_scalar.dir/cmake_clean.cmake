file(REMOVE_RECURSE
  "CMakeFiles/fig1a_decode_scalar.dir/fig1a_decode_scalar.cc.o"
  "CMakeFiles/fig1a_decode_scalar.dir/fig1a_decode_scalar.cc.o.d"
  "fig1a_decode_scalar"
  "fig1a_decode_scalar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1a_decode_scalar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
