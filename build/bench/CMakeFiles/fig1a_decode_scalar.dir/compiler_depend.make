# Empty compiler generated dependencies file for fig1a_decode_scalar.
# This may be replaced when dependencies are built.
