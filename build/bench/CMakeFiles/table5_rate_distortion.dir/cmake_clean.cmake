file(REMOVE_RECURSE
  "CMakeFiles/table5_rate_distortion.dir/table5_rate_distortion.cc.o"
  "CMakeFiles/table5_rate_distortion.dir/table5_rate_distortion.cc.o.d"
  "table5_rate_distortion"
  "table5_rate_distortion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_rate_distortion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
