# Empty dependencies file for table5_rate_distortion.
# This may be replaced when dependencies are built.
