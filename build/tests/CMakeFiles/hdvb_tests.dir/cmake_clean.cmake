file(REMOVE_RECURSE
  "CMakeFiles/hdvb_tests.dir/bitstream_test.cc.o"
  "CMakeFiles/hdvb_tests.dir/bitstream_test.cc.o.d"
  "CMakeFiles/hdvb_tests.dir/codec_test.cc.o"
  "CMakeFiles/hdvb_tests.dir/codec_test.cc.o.d"
  "CMakeFiles/hdvb_tests.dir/dsp_test.cc.o"
  "CMakeFiles/hdvb_tests.dir/dsp_test.cc.o.d"
  "CMakeFiles/hdvb_tests.dir/h264_parts_test.cc.o"
  "CMakeFiles/hdvb_tests.dir/h264_parts_test.cc.o.d"
  "CMakeFiles/hdvb_tests.dir/integration_test.cc.o"
  "CMakeFiles/hdvb_tests.dir/integration_test.cc.o.d"
  "CMakeFiles/hdvb_tests.dir/mc_me_test.cc.o"
  "CMakeFiles/hdvb_tests.dir/mc_me_test.cc.o.d"
  "CMakeFiles/hdvb_tests.dir/roundtrip_test.cc.o"
  "CMakeFiles/hdvb_tests.dir/roundtrip_test.cc.o.d"
  "CMakeFiles/hdvb_tests.dir/simd_test.cc.o"
  "CMakeFiles/hdvb_tests.dir/simd_test.cc.o.d"
  "CMakeFiles/hdvb_tests.dir/synth_test.cc.o"
  "CMakeFiles/hdvb_tests.dir/synth_test.cc.o.d"
  "CMakeFiles/hdvb_tests.dir/video_test.cc.o"
  "CMakeFiles/hdvb_tests.dir/video_test.cc.o.d"
  "hdvb_tests"
  "hdvb_tests.pdb"
  "hdvb_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hdvb_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
