# Empty compiler generated dependencies file for hdvb_tests.
# This may be replaced when dependencies are built.
