/**
 * @file
 * Fault-injection matrix: truncated and seeded bit-flipped streams fed
 * through every decoder. The contract under corruption is
 * "error-or-conceal": a decoder either returns a clean Status or
 * produces a full-length sequence with concealment accounted in
 * DecodeStats — it never aborts, and for a fixed FaultPlan seed the
 * outcome (statuses, stats, pixels) is deterministic.
 */
#include <gtest/gtest.h>

#include <vector>

#include "bitstream/bit_reader.h"
#include "bitstream/exp_golomb.h"
#include "bitstream/resync.h"
#include "container/container.h"
#include "core/benchmark.h"
#include "fault/fault.h"
#include "metrics/psnr.h"
#include "synth/synth.h"

namespace hdvb {
namespace {

CodecConfig
small_resilient_config()
{
    CodecConfig cfg;
    cfg.width = 96;
    cfg.height = 64;
    cfg.me_range = 8;
    cfg.refs = 2;
    cfg.error_resilience = true;
    return cfg;
}

EncodedStream
encode_stream(CodecId codec, const CodecConfig &cfg, int frames,
              SequenceId seq = SequenceId::kBlueSky)
{
    std::unique_ptr<VideoEncoder> enc = make_encoder(codec, cfg).value();
    SyntheticSource source(seq, cfg.width, cfg.height);
    EncodedStream stream;
    stream.codec = codec_name(codec);
    stream.width = cfg.width;
    stream.height = cfg.height;
    stream.fps_num = cfg.fps_num;
    stream.fps_den = cfg.fps_den;
    for (int i = 0; i < frames; ++i)
        EXPECT_TRUE(enc->encode(source.next(), &stream.packets).is_ok());
    EXPECT_TRUE(enc->flush(&stream.packets).is_ok());
    return stream;
}

/** Everything one decode pass produced, for determinism comparisons. */
struct DecodeOutcome {
    std::vector<StatusCode> statuses;
    std::vector<Frame> frames;
    DecodeStats stats;
    bool all_ok = true;
};

DecodeOutcome
decode_all(CodecId codec, const CodecConfig &cfg,
           const EncodedStream &stream)
{
    std::unique_ptr<VideoDecoder> dec = make_decoder(codec, cfg).value();
    DecodeOutcome out;
    for (const Packet &packet : stream.packets) {
        const Status status = dec->decode(packet, &out.frames);
        out.statuses.push_back(status.code());
        out.all_ok &= status.is_ok();
    }
    const Status status = dec->flush(&out.frames);
    out.statuses.push_back(status.code());
    out.all_ok &= status.is_ok();
    out.stats = dec->stats().decode;
    return out;
}

double
psnr_y_against_source(const std::vector<Frame> &frames,
                      const CodecConfig &cfg, SequenceId seq)
{
    SyntheticSource source(seq, cfg.width, cfg.height);
    PsnrAccumulator acc;
    for (const Frame &frame : frames)
        acc.add(source.at(static_cast<int>(frame.poc())), frame);
    return acc.psnr_y();
}

TEST(ExpGolomb, OverlongZeroPrefixLatchesReaderError)
{
    // 64 zero bits: no legal ue() code. Must return 0 AND flag the
    // error, so callers can tell it from a legal coded zero.
    const std::vector<u8> zeros(8, 0x00);
    BitReader br(zeros);
    EXPECT_EQ(read_ue(br), 0u);
    EXPECT_TRUE(br.has_error());
}

TEST(Resync, EscapingHidesMarkersAndRoundTrips)
{
    // A payload riddled with marker-like patterns must scan clean once
    // escaped, and unescape back to the original bytes.
    const std::vector<u8> payload = {0x00, 0x00, 0x01, 0x07, 0x00, 0x00,
                                     0x00, 0x00, 0x03, 0x01, 0xFF, 0xA5,
                                     0x00, 0x00, 0x02, 0x00, 0x00};
    std::vector<u8> escaped;
    escape_emulation(payload.data(), payload.size(), &escaped);
    EXPECT_TRUE(scan_resync_markers(escaped, 256).empty());
    EXPECT_EQ(unescape_emulation(escaped.data(), escaped.size()),
              payload);
}

TEST(Corruption, CleanResilientStreamRoundTrips)
{
    // error_resilience on, stream untouched: full quality, zero
    // concealment counters, markers found for every row.
    for (CodecId codec : kAllCodecs) {
        SCOPED_TRACE(codec_name(codec));
        const CodecConfig cfg = small_resilient_config();
        const EncodedStream stream = encode_stream(codec, cfg, 9);
        const DecodeOutcome out = decode_all(codec, cfg, stream);
        EXPECT_TRUE(out.all_ok);
        EXPECT_EQ(out.frames.size(), 9u);
        EXPECT_EQ(out.stats.mbs_concealed, 0);
        EXPECT_EQ(out.stats.resyncs, 0);
        EXPECT_EQ(out.stats.pictures_dropped, 0);
        EXPECT_GT(psnr_y_against_source(out.frames, cfg,
                                        SequenceId::kBlueSky),
                  30.0);
    }
}

TEST(Corruption, CorrupterIsDeterministicPerSeed)
{
    const CodecConfig cfg = small_resilient_config();
    const EncodedStream stream =
        encode_stream(CodecId::kMpeg2, cfg, 5);
    FaultPlan plan;
    plan.seed = 1234;
    plan.flip_density = 1e-3;
    plan.garble_density = 1e-3;
    const EncodedStream a = corrupted_copy(stream, plan);
    const EncodedStream b = corrupted_copy(stream, plan);
    EXPECT_EQ(serialize_stream(a), serialize_stream(b));
    EXPECT_NE(serialize_stream(a), serialize_stream(stream));
    plan.seed = 1235;
    const EncodedStream c = corrupted_copy(stream, plan);
    EXPECT_NE(serialize_stream(a), serialize_stream(c));
}

TEST(Corruption, TruncatedStreamsErrorOrConcealWithoutAborting)
{
    for (CodecId codec : kAllCodecs) {
        const CodecConfig cfg = small_resilient_config();
        const EncodedStream stream = encode_stream(codec, cfg, 9);
        for (double fraction : {0.1, 0.5, 0.9}) {
            SCOPED_TRACE(std::string(codec_name(codec)) + " truncate " +
                         std::to_string(fraction));
            FaultPlan plan;
            plan.seed = 3;
            plan.truncate_fraction = fraction;
            const EncodedStream bad = corrupted_copy(stream, plan);
            const DecodeOutcome out = decode_all(codec, cfg, bad);
            // Losing the tail of every packet cannot pass silently.
            EXPECT_TRUE(!out.all_ok || out.stats.mbs_concealed > 0 ||
                        out.stats.pictures_dropped > 0);
        }
    }
}

TEST(Corruption, NonResilientDecodersSurviveCorruptInput)
{
    // Without markers there is no recovery, but truncated and garbled
    // input must still come back as Status (or decode to garbage) —
    // never crash. This matrix exists to run under ASan/UBSan.
    for (CodecId codec : kAllCodecs) {
        SCOPED_TRACE(codec_name(codec));
        CodecConfig cfg = small_resilient_config();
        cfg.error_resilience = false;
        const EncodedStream stream = encode_stream(codec, cfg, 5);
        for (u64 seed = 1; seed <= 4; ++seed) {
            FaultPlan plan;
            plan.seed = seed;
            plan.flip_density = 1e-3;
            plan.truncate_fraction = seed % 2 == 0 ? 0.3 : 0.0;
            const DecodeOutcome out =
                decode_all(codec, cfg, corrupted_copy(stream, plan));
            (void)out;  // survival (no abort, no sanitizer report)
        }
    }
}

TEST(Corruption, BitFlipMatrixIsDeterministicAndAccounted)
{
    for (CodecId codec : kAllCodecs) {
        const CodecConfig cfg = small_resilient_config();
        const EncodedStream stream = encode_stream(codec, cfg, 9);
        s64 total_events = 0;
        bool any_error = false;
        for (double density : {1e-4, 1e-3, 1e-2}) {
            SCOPED_TRACE(std::string(codec_name(codec)) + " density " +
                         std::to_string(density));
            FaultPlan plan;
            plan.seed = 42;
            plan.flip_density = density;
            const EncodedStream bad = corrupted_copy(stream, plan);
            const DecodeOutcome a = decode_all(codec, cfg, bad);
            const DecodeOutcome b = decode_all(codec, cfg, bad);
            // Fixed seed => identical statuses, stats and pixels.
            EXPECT_EQ(a.statuses, b.statuses);
            EXPECT_EQ(a.stats.mbs_concealed, b.stats.mbs_concealed);
            EXPECT_EQ(a.stats.resyncs, b.stats.resyncs);
            EXPECT_EQ(a.stats.pictures_dropped,
                      b.stats.pictures_dropped);
            ASSERT_EQ(a.frames.size(), b.frames.size());
            for (size_t i = 0; i < a.frames.size(); ++i)
                EXPECT_DOUBLE_EQ(
                    psnr_y_against_source({a.frames[i]}, cfg,
                                          SequenceId::kBlueSky),
                    psnr_y_against_source({b.frames[i]}, cfg,
                                          SequenceId::kBlueSky));
            total_events += a.stats.mbs_concealed +
                            a.stats.pictures_dropped + a.stats.resyncs;
            any_error |= !a.all_ok;
        }
        // Across the density ladder something must have been detected.
        EXPECT_TRUE(total_events > 0 || any_error)
            << codec_name(codec);
    }
}

TEST(Corruption, HeaderTargetedGarblingIsContained)
{
    for (CodecId codec : kAllCodecs) {
        SCOPED_TRACE(codec_name(codec));
        const CodecConfig cfg = small_resilient_config();
        const EncodedStream stream = encode_stream(codec, cfg, 5);
        FaultPlan plan;
        plan.seed = 99;
        plan.garble_density = 0.5;
        plan.target_headers = true;
        plan.header_bytes = 4;
        const DecodeOutcome out =
            decode_all(codec, cfg, corrupted_copy(stream, plan));
        // Smashed headers surface as errors, dropped pictures or
        // concealment — never as a crash or a silent full decode.
        EXPECT_TRUE(!out.all_ok || out.stats.pictures_dropped > 0 ||
                    out.stats.mbs_concealed > 0);
    }
}

TEST(Corruption, SevereHeaderDamageIsTerminalOnlyWithoutResilience)
{
    // The contract the serve layer's failure domain stands on: severe
    // header-targeted damage (garble + truncate, first packet
    // protected) gives a *non-resilient* decoder no recovery path, so
    // some packet must error — deterministically per seed, since the
    // chaos harness (bench/chaos_loadgen) pre-validates its victim
    // seeds against exactly this property. With resilience on, the
    // same plan stays inside error-or-conceal.
    CodecConfig bare = small_resilient_config();
    bare.error_resilience = false;
    const EncodedStream stream =
        encode_stream(CodecId::kMpeg2, bare, 9);

    FaultPlan plan;
    plan.garble_density = 0.5;
    plan.target_headers = true;
    plan.header_bytes = 4;
    plan.truncate_fraction = 0.5;
    plan.protect_first_packet = true;

    u64 terminal_seed = 0;
    for (u64 seed = 7; seed < 7 + 64 && terminal_seed == 0; ++seed) {
        plan.seed = seed;
        if (!decode_all(CodecId::kMpeg2, bare,
                        corrupted_copy(stream, plan))
                 .all_ok)
            terminal_seed = seed;
    }
    ASSERT_NE(terminal_seed, 0u)
        << "no seed in [7, 71) errors a non-resilient decoder";

    plan.seed = terminal_seed;
    const EncodedStream bad = corrupted_copy(stream, plan);
    const DecodeOutcome first = decode_all(CodecId::kMpeg2, bare, bad);
    const DecodeOutcome again = decode_all(CodecId::kMpeg2, bare, bad);
    EXPECT_FALSE(first.all_ok);
    EXPECT_EQ(first.statuses, again.statuses);  // bit-stable outcome
    // protect_first_packet keeps the opening intra decodable: the
    // failure lands mid-stream, which is what lets the serve tests
    // assert tickets-completed-before-the-fault.
    EXPECT_EQ(first.statuses.front(), StatusCode::kOk);

    const CodecConfig resilient = small_resilient_config();
    const EncodedStream rstream =
        encode_stream(CodecId::kMpeg2, resilient, 9);
    const DecodeOutcome concealed = decode_all(
        CodecId::kMpeg2, resilient, corrupted_copy(rstream, plan));
    EXPECT_TRUE(!concealed.all_ok || concealed.stats.mbs_concealed > 0 ||
                concealed.stats.pictures_dropped > 0 ||
                concealed.stats.resyncs > 0);
}

TEST(Corruption, Survives576pBitFlipTrialsGracefully)
{
    // The graceful-degradation bar: 10 seeded 1e-4 bit-flip trials on a
    // 25-frame 576p stream per codec. Every trial must either fail with
    // a clean Status or decode end-to-end; full decodes keep PSNR
    // above the intelligibility floor (concealment, not collapse).
    for (CodecId codec : kAllCodecs) {
        CodecConfig cfg = benchmark_config(codec, Resolution::k576p25,
                                           best_simd_level());
        cfg.error_resilience = true;
        const EncodedStream stream =
            encode_stream(codec, cfg, 25, SequenceId::kPedestrianArea);
        for (u64 seed = 1; seed <= 10; ++seed) {
            SCOPED_TRACE(std::string(codec_name(codec)) + " seed " +
                         std::to_string(seed));
            FaultPlan plan;
            plan.seed = seed;
            plan.flip_density = 1e-4;
            const DecodeOutcome out =
                decode_all(codec, cfg, corrupted_copy(stream, plan));
            if (out.all_ok) {
                EXPECT_GE(psnr_y_against_source(
                              out.frames, cfg,
                              SequenceId::kPedestrianArea),
                          20.0);
            }
        }
    }
}

}  // namespace
}  // namespace hdvb
