/**
 * @file
 * Cross-module integration tests: the benchmark definition (Table IV
 * settings, Equation 1), the runner, the full
 * encode -> container file -> decode pipeline, and the Table V shape
 * (codec bitrate ordering) as an executable assertion.
 */
#include <gtest/gtest.h>

#include <cstdio>

#include "container/container.h"
#include "core/benchmark.h"
#include "core/report.h"
#include "core/runner.h"
#include "dsp/quant.h"
#include "metrics/psnr.h"
#include "synth/synth.h"

namespace hdvb {
namespace {

TEST(BenchmarkDefinition, TableIiNamesResolve)
{
    for (CodecId codec : kAllCodecs) {
        CodecId parsed;
        ASSERT_TRUE(parse_codec(codec_name(codec), &parsed));
        EXPECT_EQ(parsed, codec);
        EXPECT_NE(codec_application(codec, true), nullptr);
        EXPECT_NE(codec_application(codec, false), nullptr);
    }
    CodecId dummy;
    EXPECT_FALSE(parse_codec("vp8", &dummy));
}

TEST(BenchmarkDefinition, StatusParsingOverloadsNameLegalValues)
{
    const StatusOr<CodecId> codec = parse_codec("h264");
    ASSERT_TRUE(codec.is_ok());
    EXPECT_EQ(codec.value(), CodecId::kH264);

    const StatusOr<CodecId> bad_codec = parse_codec("vp8");
    ASSERT_FALSE(bad_codec.is_ok());
    EXPECT_EQ(bad_codec.status().code(), StatusCode::kInvalidArgument);
    // The error lists every legal spelling.
    for (CodecId id : kAllCodecs)
        EXPECT_NE(bad_codec.status().message().find(codec_name(id)),
                  std::string::npos);

    const StatusOr<Resolution> res = parse_resolution("720p25");
    ASSERT_TRUE(res.is_ok());
    EXPECT_EQ(res.value(), Resolution::k720p25);

    const StatusOr<Resolution> bad_res = parse_resolution("480i");
    ASSERT_FALSE(bad_res.is_ok());
    for (Resolution r : kAllResolutions)
        EXPECT_NE(bad_res.status().message().find(
                      resolution_info(r).name),
                  std::string::npos);
}

TEST(BenchmarkDefinition, FactoriesRejectInvalidConfig)
{
    CodecConfig bad;
    bad.width = 100;  // not a multiple of 16
    bad.height = 48;
    for (CodecId codec : kAllCodecs) {
        const auto enc = make_encoder(codec, bad);
        ASSERT_FALSE(enc.is_ok()) << codec_name(codec);
        EXPECT_EQ(enc.status().code(), StatusCode::kInvalidArgument);
        const auto dec = make_decoder(codec, bad);
        ASSERT_FALSE(dec.is_ok()) << codec_name(codec);
    }
}

TEST(BenchPointApi, LabelIsStable)
{
    BenchPoint point;
    point.codec = CodecId::kH264;
    point.sequence = SequenceId::kBlueSky;
    point.resolution = Resolution::k1088p25;
    point.simd = SimdLevel::kSse2;
    EXPECT_EQ(point.label(), "h264/blue_sky/1088p25/sse2");
    point.simd = SimdLevel::kScalar;
    point.codec = CodecId::kMpeg2;
    EXPECT_EQ(point.label(), "mpeg2/blue_sky/1088p25/scalar");
}

TEST(BenchPointApi, EffectiveConfigPrefersOverride)
{
    BenchPoint point;
    point.codec = CodecId::kMpeg4;
    point.resolution = Resolution::k576p25;
    EXPECT_EQ(point.effective_config().width, 720);

    CodecConfig tiny;
    tiny.width = 96;
    tiny.height = 64;
    point.config = tiny;
    EXPECT_EQ(point.effective_config().width, 96);
}

TEST(BenchmarkDefinition, TableIiiResolutions)
{
    EXPECT_EQ(resolution_info(Resolution::k576p25).width, 720);
    EXPECT_EQ(resolution_info(Resolution::k576p25).height, 576);
    EXPECT_EQ(resolution_info(Resolution::k720p25).width, 1280);
    EXPECT_EQ(resolution_info(Resolution::k720p25).height, 720);
    EXPECT_EQ(resolution_info(Resolution::k1088p25).width, 1920);
    EXPECT_EQ(resolution_info(Resolution::k1088p25).height, 1088);
    for (Resolution res : kAllResolutions) {
        EXPECT_EQ(resolution_info(res).fps, 25);
        Resolution parsed;
        ASSERT_TRUE(parse_resolution(resolution_info(res).name,
                                     &parsed));
        EXPECT_EQ(parsed, res);
    }
}

TEST(BenchmarkDefinition, TableIvCodingOptions)
{
    for (CodecId codec : kAllCodecs) {
        const CodecConfig cfg = benchmark_config(
            codec, Resolution::k720p25, SimdLevel::kScalar);
        EXPECT_TRUE(cfg.validate().is_ok());
        EXPECT_EQ(cfg.bframes, 2);  // I-P-B-B
        EXPECT_EQ(cfg.qscale, 5);   // vqscale / fixed_quant 5
        EXPECT_EQ(cfg.fps_num, 25);
        if (codec == CodecId::kH264) {
            EXPECT_EQ(cfg.me_range, 24);  // --merange 24
            EXPECT_GE(cfg.refs, 4);       // multi-reference
            // Equation 1 (26) with the documented -3 calibration.
            EXPECT_EQ(cfg.qp,
                      h264_qp_from_mpeg(kBenchmarkMpegQscale) - 3);
        }
    }
}

TEST(Runner, FramesDefaultRespectsEnvironment)
{
    EXPECT_GE(bench_frames_default(), 1);
}

TEST(Runner, EncodeDecodePipelineOnCustomConfig)
{
    // Tiny override config keeps this integration test fast.
    CodecConfig cfg;
    cfg.width = 96;
    cfg.height = 64;
    cfg.me_range = 8;
    cfg.refs = 2;
    BenchPoint point;
    point.codec = CodecId::kMpeg4;
    point.sequence = SequenceId::kRushHour;
    point.frames = 7;
    point.config = cfg;
    StatusOr<EncodeRun> enc_or = run_encode(point);
    ASSERT_TRUE(enc_or.is_ok()) << enc_or.status().to_string();
    const EncodeRun &enc = enc_or.value();
    EXPECT_EQ(enc.frames, 7);
    EXPECT_GT(enc.fps(), 0.0);
    EXPECT_GT(enc.bitrate_kbps(), 0.0);
    EXPECT_EQ(enc.stream.packets.size(), 7u);

    StatusOr<DecodeRun> dec_or = run_decode(point, enc.stream);
    ASSERT_TRUE(dec_or.is_ok()) << dec_or.status().to_string();
    const DecodeRun &dec = dec_or.value();
    EXPECT_EQ(dec.frames, 7);
    EXPECT_GT(dec.fps(), 0.0);
    EXPECT_GT(dec.psnr_y, 30.0);
}

TEST(Pipeline, EncodeFileDecodeAcrossAllCodecs)
{
    for (CodecId codec : kAllCodecs) {
        CodecConfig cfg;
        cfg.width = 64;
        cfg.height = 48;
        cfg.me_range = 8;
        cfg.refs = 2;
        std::unique_ptr<VideoEncoder> enc =
            make_encoder(codec, cfg).value();
        SyntheticSource source(SequenceId::kBlueSky, 64, 48);
        EncodedStream stream;
        stream.codec = codec_name(codec);
        stream.width = 64;
        stream.height = 48;
        for (int i = 0; i < 7; ++i)
            ASSERT_TRUE(enc->encode(source.next(),
                                    &stream.packets).is_ok());
        ASSERT_TRUE(enc->flush(&stream.packets).is_ok());

        const std::string path = ::testing::TempDir() +
                                 "/hdvb_pipeline_" +
                                 codec_name(codec) + ".hdv";
        ASSERT_TRUE(write_stream_file(path, stream).is_ok());
        EncodedStream loaded;
        ASSERT_TRUE(read_stream_file(path, &loaded).is_ok());
        EXPECT_EQ(loaded.codec, codec_name(codec));

        std::unique_ptr<VideoDecoder> dec =
            make_decoder(codec, cfg).value();
        std::vector<Frame> frames;
        for (const Packet &packet : loaded.packets)
            ASSERT_TRUE(dec->decode(packet, &frames).is_ok());
        ASSERT_TRUE(dec->flush(&frames).is_ok());
        ASSERT_EQ(frames.size(), 7u);

        PsnrAccumulator acc;
        for (const Frame &frame : frames)
            acc.add(source.at(static_cast<int>(frame.poc())), frame);
        EXPECT_GT(acc.psnr_y(), 33.0) << codec_name(codec);
        std::remove(path.c_str());
    }
}

TEST(TableVShape, GenerationOrderingHoldsOnSmallRun)
{
    // The paper's core claim as a test: at the matched quantisers the
    // H.264-class codec spends clearly fewer bits than the MPEG-2
    // class, with MPEG-4 in between. Uses a reduced-size run so the
    // test stays fast; the full-size numbers come from
    // bench/table5_rate_distortion.
    CodecConfig base;
    base.width = 192;
    base.height = 112;
    base.me_range = 12;
    base.refs = 2;
    u64 bits[kCodecCount];
    double psnr[kCodecCount];
    for (CodecId codec : kAllCodecs) {
        CodecConfig cfg = base;
        if (codec == CodecId::kH264)
            cfg.qp = 23;  // benchmark calibration (Equation 1 - 3)
        BenchPoint point;
        point.codec = codec;
        point.sequence = SequenceId::kRushHour;
        point.frames = 8;
        point.config = cfg;
        StatusOr<EncodeRun> enc = run_encode(point);
        ASSERT_TRUE(enc.is_ok()) << enc.status().to_string();
        StatusOr<DecodeRun> dec = run_decode(point, enc.value().stream);
        ASSERT_TRUE(dec.is_ok()) << dec.status().to_string();
        bits[static_cast<int>(codec)] = enc.value().stream.total_bits();
        psnr[static_cast<int>(codec)] = dec.value().psnr_y;
    }
    const u64 mpeg2 = bits[0], mpeg4 = bits[1], h264 = bits[2];
    EXPECT_LT(mpeg4, mpeg2) << "MPEG-4 must beat MPEG-2";
    EXPECT_LT(h264, mpeg4) << "H.264 must beat MPEG-4";
    EXPECT_LT(h264 * 3, mpeg2 * 2) << "H.264 gain must be substantial";
    // Quality stays in a common band (constant-QP operating point).
    for (int c = 0; c < kCodecCount; ++c)
        EXPECT_GT(psnr[c], 35.0);
}

TEST(Report, TableWriterFormatsAlignedRows)
{
    TableWriter table({"a", "bbbb"});
    table.add_row({"xxxxx", TableWriter::fmt(3.14159, 2)});
    table.add_row({TableWriter::fmt(7), "y"});
    table.print();  // smoke: must not crash or misalign counts
    EXPECT_EQ(TableWriter::fmt(2.5, 1), "2.5");
    EXPECT_EQ(TableWriter::fmt(42), "42");
}

}  // namespace
}  // namespace hdvb
