/**
 * @file
 * Serve-layer tests: admission control honours session and memory
 * budgets, weighted fair share holds under oversubscription, drain
 * order is the deterministic stride rotation, per-frame deadlines shed
 * expired queue entries, shared-arena accounting balances, and —
 * the API-redesign contract — streams produced through a scheduled
 * CodecSession are byte-identical to the one-shot runner path at every
 * thread count and SIMD level.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "container/container.h"
#include "core/benchmark.h"
#include "core/runner.h"
#include "fault/fault.h"
#include "serve/scheduler.h"
#include "synth/synth.h"

namespace hdvb {
namespace {

constexpr int kW = 64;
constexpr int kH = 48;

CodecConfig
small_config(SimdLevel simd = SimdLevel::kScalar, int threads = 1)
{
    CodecConfig cfg;
    cfg.width = kW;
    cfg.height = kH;
    cfg.me_range = 8;
    cfg.refs = 2;
    cfg.simd = simd;
    cfg.threads = threads;
    return cfg;
}

SessionConfig
session_config(const std::string &name, SessionClass cls,
               const CodecConfig &cfg, size_t queue_capacity = 64)
{
    SessionConfig session;
    session.name = name;
    session.priority = cls;
    session.codec_config = cfg;
    session.queue_capacity = queue_capacity;
    return session;
}

std::shared_ptr<CodecSession>
open_encode_session(SessionScheduler &sched, const SessionConfig &cfg)
{
    StatusOr<std::shared_ptr<CodecSession>> session = sched.open_encode(
        make_encoder(CodecId::kMpeg2, cfg.codec_config).value(), cfg);
    EXPECT_TRUE(session.is_ok()) << session.status().to_string();
    return session.is_ok() ? session.value() : nullptr;
}

/** Frames [0, count) of kBlueSky, generated up front: synthesis costs
 * about as much as a 64x48 encode, so tests that want a real backlog
 * must not interleave generation with submission. */
std::vector<Frame>
make_frames(int count)
{
    SyntheticSource source(SequenceId::kBlueSky, kW, kH);
    std::vector<Frame> frames;
    frames.reserve(static_cast<size_t>(count));
    for (int i = 0; i < count; ++i)
        frames.push_back(source.at(i));
    return frames;
}

/** Submit every frame of @p frames to @p session (copies, so a
 * backpressure retry can resend), spinning on the transient
 * kUnavailable. */
void
feed_frames(CodecSession &session, const std::vector<Frame> &frames)
{
    for (size_t i = 0; i < frames.size(); ++i) {
        for (;;) {
            const StatusOr<Ticket> ticket = session.submit(frames[i]);
            if (ticket.is_ok()) {
                EXPECT_EQ(ticket.value(), static_cast<Ticket>(i));
                break;
            }
            ASSERT_EQ(ticket.status().code(),
                      StatusCode::kUnavailable)
                << ticket.status().to_string();
            std::this_thread::sleep_for(std::chrono::microseconds(100));
        }
    }
}

bool
packets_equal(const std::vector<Packet> &a, const std::vector<Packet> &b)
{
    if (a.size() != b.size())
        return false;
    for (size_t i = 0; i < a.size(); ++i) {
        if (a[i].data != b[i].data || a[i].type != b[i].type ||
            a[i].poc != b[i].poc ||
            a[i].coding_index != b[i].coding_index)
            return false;
    }
    return true;
}

bool
planes_equal(const Plane &a, const Plane &b)
{
    if (a.width() != b.width() || a.height() != b.height())
        return false;
    for (int y = 0; y < a.height(); ++y) {
        if (std::memcmp(a.row(y), b.row(y),
                        static_cast<size_t>(a.width())) != 0)
            return false;
    }
    return true;
}

bool
frames_equal(const std::vector<Frame> &a, const std::vector<Frame> &b)
{
    if (a.size() != b.size())
        return false;
    for (size_t i = 0; i < a.size(); ++i) {
        if (a[i].poc() != b[i].poc() ||
            !planes_equal(a[i].luma(), b[i].luma()) ||
            !planes_equal(a[i].cb(), b[i].cb()) ||
            !planes_equal(a[i].cr(), b[i].cr()))
            return false;
    }
    return true;
}

TEST(ServeAdmission, RejectsBeyondSessionBudget)
{
    SchedulerOptions options;
    options.workers = 1;
    options.max_sessions = 2;
    SessionScheduler sched(options);

    const SessionConfig cfg = session_config(
        "s", SessionClass::kVod, small_config());
    std::shared_ptr<CodecSession> a = open_encode_session(sched, cfg);
    std::shared_ptr<CodecSession> b = open_encode_session(sched, cfg);
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);

    StatusOr<std::shared_ptr<CodecSession>> c = sched.open_encode(
        make_encoder(CodecId::kMpeg2, cfg.codec_config).value(), cfg);
    ASSERT_FALSE(c.is_ok());
    EXPECT_EQ(c.status().code(), StatusCode::kResourceExhausted);
    EXPECT_EQ(sched.stats().sessions_rejected, 1);
    EXPECT_EQ(sched.stats().sessions_open, 2);

    // Closing a session releases its slot for a new admission.
    EXPECT_TRUE(a->close().is_ok());
    EXPECT_EQ(sched.stats().sessions_open, 1);
    std::shared_ptr<CodecSession> d = open_encode_session(sched, cfg);
    EXPECT_NE(d, nullptr);
    EXPECT_TRUE(b->close().is_ok());
    EXPECT_TRUE(d->close().is_ok());
}

TEST(ServeAdmission, RejectsBeyondMemoryBudget)
{
    const CodecConfig codec_cfg = small_config();
    const size_t estimate = session_memory_estimate(codec_cfg);
    ASSERT_GT(estimate, 0u);

    SchedulerOptions options;
    options.workers = 1;
    options.memory_budget_bytes = 2 * estimate + estimate / 2;
    SessionScheduler sched(options);

    const SessionConfig cfg =
        session_config("m", SessionClass::kVod, codec_cfg);
    std::shared_ptr<CodecSession> a = open_encode_session(sched, cfg);
    std::shared_ptr<CodecSession> b = open_encode_session(sched, cfg);
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(sched.stats().estimated_bytes, 2 * estimate);

    StatusOr<std::shared_ptr<CodecSession>> c = sched.open_encode(
        make_encoder(CodecId::kMpeg2, codec_cfg).value(), cfg);
    ASSERT_FALSE(c.is_ok());
    EXPECT_EQ(c.status().code(), StatusCode::kResourceExhausted);

    // Dropping a session (no close) must also refund the charge.
    a.reset();
    EXPECT_EQ(sched.stats().estimated_bytes, estimate);
    std::shared_ptr<CodecSession> d = open_encode_session(sched, cfg);
    EXPECT_NE(d, nullptr);
    EXPECT_TRUE(b->close().is_ok());
    EXPECT_TRUE(d->close().is_ok());
}

TEST(ServeScheduler, FairShareFavorsHighWeightClasses)
{
    constexpr int kFrames = 48;
    SchedulerOptions options;
    options.workers = 1;  // deterministic stride dispatch
    options.batch_frames = 1;
    SessionScheduler sched(options);

    struct ClassRun {
        SessionClass cls;
        std::shared_ptr<CodecSession> session;
        std::vector<TicketResult> results;
    };
    std::vector<ClassRun> runs;
    for (SessionClass cls : kAllSessionClasses) {
        runs.push_back(
            {cls,
             open_encode_session(
                 sched, session_config(session_class_name(cls), cls,
                                       small_config())),
             {}});
        ASSERT_NE(runs.back().session, nullptr);
    }
    // Backlog all three sessions; submitting pre-generated frames is
    // microseconds against millisecond encodes, so the worker sees
    // sustained three-way contention almost immediately.
    const std::vector<Frame> frames = make_frames(kFrames);
    for (ClassRun &run : runs)
        feed_frames(*run.session, frames);
    for (ClassRun &run : runs) {
        run.session->drain();
        run.results = run.session->take_results();
        ASSERT_EQ(run.results.size(), static_cast<size_t>(kFrames));
        for (const TicketResult &r : run.results) {
            EXPECT_TRUE(r.status.is_ok()) << r.status.to_string();
            EXPECT_GE(r.latency_seconds, 0.0);
            EXPECT_GE(r.completion_seq, 0);
        }
    }

    // Equal backlogs: the weight-8 class must finish all its frames
    // before the weight-3 class, which must finish before weight-1.
    const auto last_seq = [](const ClassRun &run) {
        s64 last = -1;
        for (const TicketResult &r : run.results)
            last = std::max(last, r.completion_seq);
        return last;
    };
    EXPECT_LT(last_seq(runs[0]), last_seq(runs[1]));
    EXPECT_LT(last_seq(runs[1]), last_seq(runs[2]));

    // Steady-state share over the first 24 completions approximates
    // the 8:3:1 weights (generous tolerance for the startup ramp
    // while the later sessions were still being admitted and fed).
    int share[kSessionClassCount] = {};
    for (const ClassRun &run : runs) {
        for (const TicketResult &r : run.results) {
            if (r.completion_seq < 24)
                ++share[static_cast<int>(run.cls)];
        }
    }
    EXPECT_GE(share[0], 12);          // live: ideal 16 of 24
    EXPECT_GE(share[0], share[1]);    // live >= vod
    EXPECT_GE(share[1], share[2]);    // vod >= thumbnail
    EXPECT_LE(share[2], 6);           // thumbnail: ideal 2 of 24

    for (ClassRun &run : runs)
        EXPECT_TRUE(run.session->close().is_ok());
}

TEST(ServeScheduler, DrainOrderIsDeterministicStrideRotation)
{
    constexpr int kFrames = 20;
    constexpr int kSessions = 3;
    SchedulerOptions options;
    options.workers = 1;
    options.batch_frames = 1;
    SessionScheduler sched(options);

    // A "plug": one expensive frame submitted first, so the single
    // worker is pinned on it while the cheap sessions are being fed.
    // Without it, on a loaded (or single-CPU) host the worker can
    // consume an early session's whole queue before the later sessions
    // are backlogged, and there is no rotation to observe.
    CodecConfig plug_cfg = small_config();
    plug_cfg.width = 640;
    plug_cfg.height = 480;
    std::shared_ptr<CodecSession> plug = open_encode_session(
        sched, session_config("plug", SessionClass::kVod, plug_cfg));
    ASSERT_NE(plug, nullptr);

    std::vector<std::shared_ptr<CodecSession>> sessions;
    for (int s = 0; s < kSessions; ++s) {
        sessions.push_back(open_encode_session(
            sched, session_config("rot-" + std::to_string(s),
                                  SessionClass::kVod, small_config())));
        ASSERT_NE(sessions.back(), nullptr);
    }
    const std::vector<Frame> frames = make_frames(kFrames);
    {
        SyntheticSource plug_source(SequenceId::kBlueSky, 640, 480);
        ASSERT_TRUE(plug->submit(plug_source.at(0)).is_ok());
    }
    for (const std::shared_ptr<CodecSession> &session : sessions)
        feed_frames(*session, frames);

    // (completion_seq -> session, ticket), gathered after full drain.
    std::map<s64, std::pair<int, Ticket>> order;
    for (int s = 0; s < kSessions; ++s) {
        sessions[s]->drain();
        for (const TicketResult &r : sessions[s]->take_results()) {
            ASSERT_TRUE(r.status.is_ok());
            ASSERT_TRUE(order.emplace(r.completion_seq,
                                      std::make_pair(s, r.ticket))
                            .second)
                << "duplicate completion_seq " << r.completion_seq;
        }
    }
    ASSERT_EQ(order.size(),
              static_cast<size_t>(kFrames * kSessions));
    // Sequence numbers are dense (the plug frame holds one seq before
    // this range): nothing lost, nothing double-counted.
    EXPECT_EQ(order.rbegin()->first - order.begin()->first,
              kFrames * kSessions - 1);

    // FIFO within each session, regardless of interleaving.
    Ticket next_ticket[kSessions] = {};
    for (const auto &[seq, who] : order) {
        (void)seq;
        EXPECT_EQ(who.second, next_ticket[who.first]++);
    }

    // Equal weights and a full backlog: stride scheduling degenerates
    // to round-robin in admission order, so once the startup ramp is
    // over every window of kSessions consecutive completions holds
    // each session exactly once.
    std::vector<int> by_seq;
    for (const auto &[seq, who] : order) {
        (void)seq;
        by_seq.push_back(who.first);
    }
    for (size_t i = 12; i + kSessions <= 42; ++i) {
        bool seen[kSessions] = {};
        for (int k = 0; k < kSessions; ++k) {
            ASSERT_FALSE(seen[by_seq[i + k]])
                << "session " << by_seq[i + k]
                << " dispatched twice in window at seq " << i;
            seen[by_seq[i + k]] = true;
        }
    }

    for (const std::shared_ptr<CodecSession> &session : sessions)
        EXPECT_TRUE(session->close().is_ok());
    EXPECT_TRUE(plug->close().is_ok());
}

TEST(ServeScheduler, ExpiredFramesAreShedWithoutRunningTheCodec)
{
    constexpr int kFrames = 8;
    SchedulerOptions options;
    options.workers = 1;
    SessionScheduler sched(options);

    SessionConfig cfg = session_config("dl", SessionClass::kLive,
                                       small_config());
    // Already expired by the time any worker can pick the frame up.
    cfg.frame_deadline_seconds = 1e-9;
    std::shared_ptr<CodecSession> session =
        open_encode_session(sched, cfg);
    ASSERT_NE(session, nullptr);

    feed_frames(*session, make_frames(kFrames));
    EXPECT_TRUE(session->close().is_ok());

    const SessionCounters counters = session->counters();
    EXPECT_EQ(counters.deadline_missed, kFrames);
    EXPECT_EQ(counters.completed, 0);
    EXPECT_EQ(counters.failed, 0);
    for (const TicketResult &r : session->take_results())
        EXPECT_EQ(r.status.code(), StatusCode::kDeadlineExceeded);
    // The codec never saw a frame, so flush had nothing to emit.
    std::vector<Packet> packets;
    session->poll(&packets);
    EXPECT_TRUE(packets.empty());
}

TEST(ServeScheduler, ArenaAccountingBalancesAcrossSessions)
{
    // Copyable handle to the scheduler's arena: survives the scheduler
    // so the final balance can be read after a full shutdown.
    FrameArena arena;
    FramePoolStats first_pool, second_pool;
    {
        SchedulerOptions options;
        options.workers = 1;
        SessionScheduler sched(options);
        arena = sched.arena();
        const SessionConfig cfg = session_config(
            "arena", SessionClass::kVod, small_config());

        std::shared_ptr<CodecSession> first =
            open_encode_session(sched, cfg);
        ASSERT_NE(first, nullptr);
        const std::vector<Frame> frames = make_frames(8);
        feed_frames(*first, frames);
        EXPECT_TRUE(first->close().is_ok());
        first_pool = first->codec_stats().pool;
        EXPECT_GT(first_pool.buffer_allocs, 0);
        EXPECT_GT(first_pool.bytes_high_water, 0);

        std::vector<Packet> sink;
        first->poll(&sink);
        first.reset();
        // The dispatcher may hold its session reference for a moment
        // after close() drains; the encoder (and its reference frames)
        // die only when that last reference drops. Wait for the
        // buffers to land back in the arena.
        for (int i = 0; i < 2000 && arena.stats().outstanding != 0; ++i)
            std::this_thread::sleep_for(std::chrono::microseconds(100));
        ASSERT_EQ(arena.stats().outstanding, 0);

        // A second same-geometry session recycles the first one's
        // buffers through the shared arena instead of allocating
        // fresh ones.
        std::shared_ptr<CodecSession> second =
            open_encode_session(sched, cfg);
        ASSERT_NE(second, nullptr);
        feed_frames(*second, frames);
        EXPECT_TRUE(second->close().is_ok());
        second_pool = second->codec_stats().pool;
        EXPECT_GT(second_pool.buffer_reuses, 0);
        EXPECT_LT(second_pool.buffer_allocs, first_pool.buffer_allocs);
        second->poll(&sink);
        second.reset();
    }  // ~SessionScheduler joins every dispatcher

    const FramePoolStats stats = arena.stats();
    EXPECT_EQ(stats.outstanding, 0);
    EXPECT_EQ(stats.bytes_outstanding, 0);
    EXPECT_EQ(stats.buffer_allocs,
              first_pool.buffer_allocs + second_pool.buffer_allocs);
}

TEST(ServeSession, DirectionAndLifecycleErrors)
{
    std::shared_ptr<CodecSession> enc = CodecSession::open_inline_encode(
        make_encoder(CodecId::kMpeg2, small_config()).value(),
        session_config("inline", SessionClass::kVod, small_config()));
    ASSERT_NE(enc, nullptr);

    // Wrong direction is an invalid-argument error, not a crash.
    Packet packet;
    const StatusOr<Ticket> wrong = enc->submit(packet);
    ASSERT_FALSE(wrong.is_ok());
    EXPECT_EQ(wrong.status().code(), StatusCode::kInvalidArgument);

    SyntheticSource source(SequenceId::kBlueSky, kW, kH);
    EXPECT_TRUE(enc->submit(source.at(0)).is_ok());
    EXPECT_TRUE(enc->close().is_ok());
    EXPECT_TRUE(enc->close().is_ok());  // idempotent

    // Submitting into a cleanly closed session is a caller bug, not a
    // capacity condition: terminal invalid-argument, never retried.
    const StatusOr<Ticket> late = enc->submit(source.at(1));
    ASSERT_FALSE(late.is_ok());
    EXPECT_EQ(late.status().code(), StatusCode::kInvalidArgument);
}

/** The API-redesign contract: a scheduled streaming session and the
 * one-shot runner produce byte-identical streams and pixels for every
 * codec x thread count x SIMD level. */
class SessionInvariance : public ::testing::TestWithParam<CodecId>
{};

TEST_P(SessionInvariance, SchedulerStreamMatchesOneShotRunner)
{
    const CodecId codec = GetParam();
    constexpr int kFrames = 8;
    for (int level = 0; level < kSimdLevelCount; ++level) {
        const auto simd = static_cast<SimdLevel>(level);
        if (simd > detected_simd_level())
            continue;
        for (int threads : {1, 2, 4}) {
            SCOPED_TRACE(std::string(simd_level_name(simd)) +
                         " threads=" + std::to_string(threads));
            const CodecConfig cfg = small_config(simd, threads);

            // One-shot path (run_encode drives an inline session).
            BenchPoint point;
            point.codec = codec;
            point.sequence = SequenceId::kBlueSky;
            point.frames = kFrames;
            point.config = cfg;
            const StatusOr<EncodeRun> one_shot = run_encode(point);
            ASSERT_TRUE(one_shot.is_ok())
                << one_shot.status().to_string();

            // Streaming path through the scheduler.
            SchedulerOptions options;
            options.workers = 2;
            SessionScheduler sched(options);
            StatusOr<std::shared_ptr<CodecSession>> session =
                sched.open_encode(
                    make_encoder(codec, cfg).value(),
                    session_config("inv", SessionClass::kVod, cfg));
            ASSERT_TRUE(session.is_ok());
            feed_frames(*session.value(), make_frames(kFrames));
            ASSERT_TRUE(session.value()->close().is_ok());
            std::vector<Packet> streamed;
            session.value()->poll(&streamed);

            EXPECT_TRUE(packets_equal(one_shot.value().stream.packets,
                                      streamed))
                << "scheduled stream diverged from one-shot stream";

            // Decode the stream both ways too: pixels must match.
            std::unique_ptr<VideoDecoder> direct =
                make_decoder(codec, cfg).value();
            std::vector<Frame> direct_frames;
            for (const Packet &packet : streamed)
                ASSERT_TRUE(
                    direct->decode(packet, &direct_frames).is_ok());
            ASSERT_TRUE(direct->flush(&direct_frames).is_ok());

            StatusOr<std::shared_ptr<CodecSession>> dec_session =
                sched.open_decode(
                    make_decoder(codec, cfg).value(),
                    session_config("inv-dec", SessionClass::kVod, cfg));
            ASSERT_TRUE(dec_session.is_ok());
            for (const Packet &packet : streamed) {
                for (;;) {
                    const StatusOr<Ticket> ticket =
                        dec_session.value()->submit(packet);
                    if (ticket.is_ok())
                        break;
                    ASSERT_EQ(ticket.status().code(),
                              StatusCode::kUnavailable);
                    std::this_thread::sleep_for(
                        std::chrono::microseconds(100));
                }
            }
            ASSERT_TRUE(dec_session.value()->close().is_ok());
            std::vector<Frame> session_frames;
            dec_session.value()->poll(&session_frames);
            EXPECT_TRUE(frames_equal(direct_frames, session_frames))
                << "scheduled decode diverged from direct decode";
        }
    }
}

INSTANTIATE_TEST_SUITE_P(AllCodecs, SessionInvariance,
                         ::testing::ValuesIn(kAllCodecs));

// ---------------------------------------------------------------------
// Failure domains: a fault inside one session must fail that session
// terminally, refund its budget, return its buffers — and nothing else.
// ---------------------------------------------------------------------

/** Spin (bounded) until @p predicate holds; false on timeout. */
bool
wait_until(const std::function<bool()> &predicate,
           double timeout_seconds = 10.0)
{
    const auto give_up =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(timeout_seconds));
    while (!predicate()) {
        if (std::chrono::steady_clock::now() > give_up)
            return false;
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return true;
}

TEST(ServeFailure, TerminalCodecFaultIsContained)
{
    constexpr int kFrames = 8;
    const CodecConfig cfg = small_config();
    const size_t estimate = session_memory_estimate(cfg);

    // One-shot reference for the healthy session's stream.
    BenchPoint point;
    point.codec = CodecId::kMpeg2;
    point.sequence = SequenceId::kBlueSky;
    point.frames = kFrames;
    point.config = cfg;
    const StatusOr<EncodeRun> reference = run_encode(point);
    ASSERT_TRUE(reference.is_ok());

    SchedulerOptions options;
    options.workers = 2;
    SessionScheduler sched(options);

    SessionConfig victim_cfg =
        session_config("victim", SessionClass::kVod, cfg);
    victim_cfg.before_frame_hook = [](Ticket ticket) {
        return ticket == 1
                   ? Status::corrupt_stream("injected stream fault")
                   : Status::ok();
    };
    std::shared_ptr<CodecSession> victim =
        open_encode_session(sched, victim_cfg);
    std::shared_ptr<CodecSession> healthy = open_encode_session(
        sched, session_config("healthy", SessionClass::kLive, cfg));
    ASSERT_NE(victim, nullptr);
    ASSERT_NE(healthy, nullptr);
    EXPECT_EQ(sched.stats().estimated_bytes, 2 * estimate);

    // Burst into the victim; once the fault lands, submits start
    // bouncing off the sticky failure status.
    const std::vector<Frame> frames = make_frames(kFrames);
    s64 accepted = 0;
    for (const Frame &frame : frames) {
        const StatusOr<Ticket> ticket = victim->submit(frame);
        if (!ticket.is_ok()) {
            EXPECT_EQ(ticket.status().code(), StatusCode::kCorruptStream);
            break;
        }
        ++accepted;
    }
    victim->drain();
    ASSERT_TRUE(wait_until([&] { return victim->failed(); }));

    // Terminal state: sticky status, and the counters account for
    // every accepted ticket as completed, failed, or lost.
    EXPECT_EQ(victim->session_status().code(),
              StatusCode::kCorruptStream);
    const StatusOr<Ticket> rejected = victim->submit(frames[0]);
    ASSERT_FALSE(rejected.is_ok());
    EXPECT_EQ(rejected.status().code(), StatusCode::kCorruptStream);
    const SessionCounters counters = victim->counters();
    EXPECT_EQ(counters.submitted, accepted);
    EXPECT_EQ(counters.completed, 1);  // ticket 0 ran clean
    EXPECT_EQ(counters.failed, 1);     // ticket 1 hit the fault
    EXPECT_EQ(counters.lost, accepted - 2);
    EXPECT_EQ(counters.completed + counters.failed +
                  counters.deadline_missed + counters.lost,
              counters.submitted);
    s64 data_loss_results = 0;
    for (const TicketResult &result : victim->take_results())
        if (result.status.code() == StatusCode::kDataLoss)
            ++data_loss_results;
    EXPECT_EQ(data_loss_results, counters.lost);

    // The blast radius ends at the session boundary: the memory charge
    // is refunded *now* (victim still open, never close()d) and the
    // scheduler counted the failure.
    ASSERT_TRUE(wait_until(
        [&] { return sched.stats().estimated_bytes == estimate; }));
    EXPECT_EQ(sched.stats().sessions_failed, 1);
    EXPECT_EQ(victim->close().code(), StatusCode::kCorruptStream);

    // The sibling's stream is byte-identical to the one-shot run.
    feed_frames(*healthy, frames);
    ASSERT_TRUE(healthy->close().is_ok());
    std::vector<Packet> streamed;
    healthy->poll(&streamed);
    EXPECT_TRUE(
        packets_equal(reference.value().stream.packets, streamed));

    // And the victim's codec teardown returned its arena buffers at
    // failure time: once the *healthy* codec is gone too, nothing may
    // remain outstanding — the victim object itself is still alive and
    // must not be holding any. A worker may still hold the last session
    // reference for a beat after close() returns, so wait, don't race.
    healthy.reset();
    EXPECT_TRUE(
        wait_until([&] { return sched.stats().arena.outstanding == 0; }));
    EXPECT_EQ(sched.stats().arena.bytes_outstanding, 0);
}

TEST(ServeFailure, FailureRefundsAdmissionImmediately)
{
    SchedulerOptions options;
    options.workers = 1;
    options.max_sessions = 1;
    SessionScheduler sched(options);

    SessionConfig victim_cfg =
        session_config("doomed", SessionClass::kVod, small_config());
    victim_cfg.before_frame_hook = [](Ticket) {
        return Status::internal("fails on the first frame");
    };
    std::shared_ptr<CodecSession> victim =
        open_encode_session(sched, victim_cfg);
    ASSERT_NE(victim, nullptr);

    ASSERT_TRUE(victim->submit(make_frames(1)[0]).is_ok());
    ASSERT_TRUE(wait_until([&] { return victim->failed(); }));

    // The failed session no longer occupies its admission slot even
    // though it was never closed and is still referenced.
    std::shared_ptr<CodecSession> next = open_encode_session(
        sched, session_config("next", SessionClass::kVod,
                              small_config()));
    ASSERT_NE(next, nullptr);
    EXPECT_TRUE(next->close().is_ok());
    EXPECT_EQ(victim->close().code(), StatusCode::kInternal);
}

TEST(ServeFailure, TransientFaultsAreRetriedPerFrame)
{
    SchedulerOptions options;
    options.workers = 1;
    SessionScheduler sched(options);

    SessionConfig cfg =
        session_config("flaky", SessionClass::kVod, small_config());
    cfg.retry.max_attempts = 3;
    cfg.retry.initial_backoff_seconds = 0;
    auto flaky_left = std::make_shared<std::atomic<int>>(2);
    cfg.before_frame_hook = [flaky_left](Ticket ticket) {
        // Ticket 0 is momentarily unlucky twice, then succeeds.
        if (ticket == 0 && flaky_left->fetch_sub(1) > 0)
            return Status::unavailable("transient blip");
        return Status::ok();
    };
    std::shared_ptr<CodecSession> session =
        open_encode_session(sched, cfg);
    ASSERT_NE(session, nullptr);

    feed_frames(*session, make_frames(2));
    EXPECT_TRUE(session->close().is_ok());
    EXPECT_FALSE(session->failed());
    const SessionCounters counters = session->counters();
    EXPECT_EQ(counters.completed, 2);
    EXPECT_EQ(counters.failed, 0);
    EXPECT_EQ(counters.retried, 2);  // the two extra attempts
}

TEST(ServeFailure, ThrowingHookIsContainedAsInternalError)
{
    SchedulerOptions options;
    options.workers = 2;
    SessionScheduler sched(options);

    SessionConfig victim_cfg =
        session_config("thrower", SessionClass::kVod, small_config());
    victim_cfg.before_frame_hook = [](Ticket) -> Status {
        throw std::runtime_error("codec blew up");
    };
    std::shared_ptr<CodecSession> victim =
        open_encode_session(sched, victim_cfg);
    std::shared_ptr<CodecSession> sibling = open_encode_session(
        sched, session_config("sibling", SessionClass::kVod,
                              small_config()));
    ASSERT_NE(victim, nullptr);
    ASSERT_NE(sibling, nullptr);

    const std::vector<Frame> frames = make_frames(2);
    ASSERT_TRUE(victim->submit(frames[0]).is_ok());
    ASSERT_TRUE(wait_until([&] { return victim->failed(); }));
    EXPECT_EQ(victim->session_status().code(), StatusCode::kInternal);

    // The exception never left the session: the scheduler still
    // dispatches, its workers are alive.
    feed_frames(*sibling, frames);
    EXPECT_TRUE(sibling->close().is_ok());
    EXPECT_EQ(sibling->counters().completed, 2);
    EXPECT_EQ(victim->close().code(), StatusCode::kInternal);
}

TEST(ServeWatchdog, StalledSessionIsCancelledAndDrained)
{
    SchedulerOptions options;
    options.workers = 1;
    SessionScheduler sched(options);

    SessionConfig stuck_cfg =
        session_config("stuck", SessionClass::kVod, small_config());
    stuck_cfg.stall_timeout_seconds = 0.05;
    stuck_cfg.before_frame_hook = [](Ticket ticket) {
        if (ticket == 0)  // one frame wedges far past the stall budget
            std::this_thread::sleep_for(std::chrono::milliseconds(750));
        return Status::ok();
    };
    std::shared_ptr<CodecSession> stuck =
        open_encode_session(sched, stuck_cfg);
    ASSERT_NE(stuck, nullptr);

    const std::vector<Frame> frames = make_frames(6);
    for (const Frame &frame : frames)
        ASSERT_TRUE(stuck->submit(frame).is_ok());

    // The watchdog cancels the wedged session long before the worker
    // surfaces; once the worker returns, everything drains.
    ASSERT_TRUE(wait_until([&] { return stuck->failed(); }));
    EXPECT_EQ(stuck->close().code(), StatusCode::kDeadlineExceeded);
    const SessionCounters counters = stuck->counters();
    // The wedged frame itself completed (its codec call was fine, just
    // late); everything behind it was cancelled as lost.
    EXPECT_EQ(counters.completed, 1);
    EXPECT_EQ(counters.lost, 5);
    EXPECT_EQ(sched.stats().sessions_failed, 1);

    // The scheduler survives its watchdog: fresh sessions still run.
    std::shared_ptr<CodecSession> after = open_encode_session(
        sched, session_config("after", SessionClass::kVod,
                              small_config()));
    ASSERT_NE(after, nullptr);
    feed_frames(*after, make_frames(2));
    EXPECT_TRUE(after->close().is_ok());
}

TEST(ServeOverload, ShedsByClassAndRecovers)
{
    // A latch wedges the single worker so the backlog is fully under
    // test control; every threshold crossing below is deterministic.
    struct Latch {
        std::mutex mu;
        std::condition_variable cv;
        bool open = false;
        void
        release()
        {
            {
                std::lock_guard<std::mutex> lock(mu);
                open = true;
            }
            cv.notify_all();
        }
        void
        wait()
        {
            std::unique_lock<std::mutex> lock(mu);
            cv.wait(lock, [this] { return open; });
        }
    };
    auto latch = std::make_shared<Latch>();

    SchedulerOptions options;
    options.workers = 1;
    options.batch_frames = 1;
    options.shed_queue_depth = 2;  // level 1 at 2, 2 at 4, 3 at 6
    SessionScheduler sched(options);

    SessionConfig plug_cfg =
        session_config("plug", SessionClass::kVod, small_config());
    plug_cfg.before_frame_hook = [latch](Ticket) {
        latch->wait();
        return Status::ok();
    };
    std::shared_ptr<CodecSession> plug =
        open_encode_session(sched, plug_cfg);
    std::shared_ptr<CodecSession> thumb = open_encode_session(
        sched, session_config("thumb", SessionClass::kThumbnail,
                              small_config()));
    std::shared_ptr<CodecSession> vod = open_encode_session(
        sched, session_config("vod", SessionClass::kVod,
                              small_config()));
    std::shared_ptr<CodecSession> live = open_encode_session(
        sched, session_config("live", SessionClass::kLive,
                              small_config()));
    ASSERT_NE(plug, nullptr);
    ASSERT_NE(thumb, nullptr);
    ASSERT_NE(vod, nullptr);
    ASSERT_NE(live, nullptr);

    const std::vector<Frame> frames = make_frames(8);
    EXPECT_EQ(sched.stats().shed_level, 0);
    ASSERT_TRUE(plug->submit(frames[0]).is_ok());  // backlog 1
    ASSERT_TRUE(plug->submit(frames[1]).is_ok());  // backlog 2
    EXPECT_EQ(sched.stats().shed_level, 1);

    // Level 1: thumbnails shed, vod and live still served.
    const StatusOr<Ticket> shed_thumb = thumb->submit(frames[0]);
    ASSERT_FALSE(shed_thumb.is_ok());
    EXPECT_EQ(shed_thumb.status().code(), StatusCode::kUnavailable);
    ASSERT_TRUE(vod->submit(frames[2]).is_ok());  // backlog 3
    ASSERT_TRUE(vod->submit(frames[3]).is_ok());  // backlog 4
    EXPECT_EQ(sched.stats().shed_level, 2);

    // Level 2: vod joins the shed; live is the last to degrade.
    const StatusOr<Ticket> shed_vod = vod->submit(frames[4]);
    ASSERT_FALSE(shed_vod.is_ok());
    EXPECT_EQ(shed_vod.status().code(), StatusCode::kUnavailable);
    ASSERT_TRUE(live->submit(frames[4]).is_ok());  // backlog 5
    ASSERT_TRUE(live->submit(frames[5]).is_ok());  // backlog 6
    EXPECT_EQ(sched.stats().shed_level, 3);
    const StatusOr<Ticket> shed_live = live->submit(frames[6]);
    ASSERT_FALSE(shed_live.is_ok());
    EXPECT_EQ(shed_live.status().code(), StatusCode::kUnavailable);

    // Admissions are shed too, with the retryable status — not the
    // terminal resource-exhausted of a hard budget.
    StatusOr<std::shared_ptr<CodecSession>> refused = sched.open_encode(
        make_encoder(CodecId::kMpeg2, small_config()).value(),
        session_config("late", SessionClass::kLive, small_config()));
    ASSERT_FALSE(refused.is_ok());
    EXPECT_EQ(refused.status().code(), StatusCode::kUnavailable);

    SchedulerStats peak = sched.stats();
    EXPECT_EQ(peak.backlog, 6);
    EXPECT_EQ(peak.submits_shed[static_cast<int>(
                  SessionClass::kThumbnail)],
              1);
    EXPECT_EQ(peak.submits_shed[static_cast<int>(SessionClass::kVod)],
              1);
    EXPECT_EQ(peak.submits_shed[static_cast<int>(SessionClass::kLive)],
              1);
    EXPECT_EQ(peak.admissions_shed, 1);

    // Unblock the worker: the backlog drains, the detector steps back
    // down through its hysteresis, and the episode is accounted.
    latch->release();
    plug->drain();
    vod->drain();
    live->drain();
    // Hysteresis legally reaches level 0 with the last frame still in
    // flight, so wait for both the detector and the backlog to settle.
    ASSERT_TRUE(wait_until([&] {
        const SchedulerStats stats = sched.stats();
        return stats.shed_level == 0 && stats.backlog == 0;
    }));
    const SchedulerStats recovered = sched.stats();
    EXPECT_EQ(recovered.backlog, 0);
    EXPECT_EQ(recovered.shed_episodes, 1);
    EXPECT_GT(recovered.shed_seconds_total, 0.0);

    // Auto-recovery: the class shed first serves again.
    EXPECT_TRUE(thumb->submit(frames[0]).is_ok());
    for (const std::shared_ptr<CodecSession> &session :
         {plug, thumb, vod, live})
        EXPECT_TRUE(session->close().is_ok());
}

// ---------------------------------------------------------------------
// Corrupted packets through decode *sessions*: the streaming path must
// behave exactly like a direct decoder — conceal-and-continue with
// resilience on, fail-alone with resilience off.
// ---------------------------------------------------------------------

EncodedStream
encode_serve_stream(const CodecConfig &cfg, int frames)
{
    std::unique_ptr<VideoEncoder> enc =
        make_encoder(CodecId::kMpeg2, cfg).value();
    SyntheticSource source(SequenceId::kBlueSky, cfg.width, cfg.height);
    EncodedStream stream;
    stream.codec = codec_name(CodecId::kMpeg2);
    stream.width = cfg.width;
    stream.height = cfg.height;
    for (int i = 0; i < frames; ++i)
        EXPECT_TRUE(enc->encode(source.at(i), &stream.packets).is_ok());
    EXPECT_TRUE(enc->flush(&stream.packets).is_ok());
    return stream;
}

/** Direct (sessionless) decode of @p stream: per-packet statuses and
 * output frames, the ground truth sessions are compared against. */
struct DirectDecode {
    std::vector<Status> statuses;
    std::vector<Frame> frames;
    DecodeStats stats;
    int first_error = -1;  ///< packet index, -1 if all clean
};

DirectDecode
decode_direct(const CodecConfig &cfg, const EncodedStream &stream)
{
    std::unique_ptr<VideoDecoder> dec =
        make_decoder(CodecId::kMpeg2, cfg).value();
    DirectDecode out;
    for (size_t i = 0; i < stream.packets.size(); ++i) {
        const Status status = dec->decode(stream.packets[i], &out.frames);
        if (!status.is_ok() && out.first_error < 0)
            out.first_error = static_cast<int>(i);
        out.statuses.push_back(status);
        if (!status.is_ok())
            break;  // a session stops at its first terminal fault
    }
    if (out.first_error < 0) {
        EXPECT_TRUE(dec->flush(&out.frames).is_ok());
    }
    out.stats = dec->stats().decode;
    return out;
}

/** 96x64 so the resilience machinery has rows to resync across (the
 * corruption matrix uses the same shape). */
CodecConfig
corruption_config(bool resilient)
{
    CodecConfig cfg;
    cfg.width = 96;
    cfg.height = 64;
    cfg.me_range = 8;
    cfg.refs = 2;
    cfg.error_resilience = resilient;
    return cfg;
}

TEST(ServeCorruption, ResilientSessionConcealsAndContinues)
{
    const CodecConfig cfg = corruption_config(/*resilient=*/true);
    const EncodedStream clean = encode_serve_stream(cfg, 9);
    FaultPlan plan;
    plan.seed = 1234;
    plan.flip_density = 1e-3;
    const EncodedStream bad = corrupted_copy(clean, plan);

    // Ground truth: with resilience on, this seed decodes clean
    // end-to-end, concealing damage (deterministic per seed).
    const DirectDecode direct = decode_direct(cfg, bad);
    ASSERT_EQ(direct.first_error, -1)
        << "seed 1234 unexpectedly errors; pick a concealing seed";
    ASSERT_GT(direct.stats.mbs_concealed + direct.stats.resyncs +
                  direct.stats.pictures_dropped,
              0)
        << "seed 1234 corrupted nothing the decoder noticed";

    SchedulerOptions options;
    options.workers = 2;
    SessionScheduler sched(options);
    StatusOr<std::shared_ptr<CodecSession>> session = sched.open_decode(
        make_decoder(CodecId::kMpeg2, cfg).value(),
        session_config("resilient", SessionClass::kVod, cfg));
    ASSERT_TRUE(session.is_ok());
    for (const Packet &packet : bad.packets)
        ASSERT_TRUE(session.value()->submit(packet).is_ok());
    ASSERT_TRUE(session.value()->close().is_ok());

    // The session concealed exactly like the direct decoder, never
    // entered the failure path, and its pixels match bit for bit.
    EXPECT_FALSE(session.value()->failed());
    const SessionCounters counters = session.value()->counters();
    EXPECT_EQ(counters.completed,
              static_cast<s64>(bad.packets.size()));
    EXPECT_EQ(counters.failed, 0);
    EXPECT_EQ(counters.lost, 0);
    const DecodeStats stats = session.value()->codec_stats().decode;
    EXPECT_EQ(stats.mbs_concealed, direct.stats.mbs_concealed);
    EXPECT_EQ(stats.resyncs, direct.stats.resyncs);
    EXPECT_EQ(stats.pictures_dropped, direct.stats.pictures_dropped);
    std::vector<Frame> session_frames;
    session.value()->poll(&session_frames);
    EXPECT_TRUE(frames_equal(direct.frames, session_frames));
}

TEST(ServeCorruption, NonResilientCorruptionFailsOnlyTheVictim)
{
    const CodecConfig cfg = corruption_config(/*resilient=*/false);
    const EncodedStream clean = encode_serve_stream(cfg, 9);

    // Severe, header-targeted damage: without resilience there is no
    // recovery path, so the decoder must error (deterministic per
    // seed). protect_first_packet keeps ticket 0 decodable so the
    // failure happens mid-stream, with tickets queued behind it.
    FaultPlan plan;
    plan.seed = 7;
    plan.garble_density = 0.5;
    plan.target_headers = true;
    plan.header_bytes = 4;
    plan.truncate_fraction = 0.5;
    plan.protect_first_packet = true;
    const EncodedStream bad = corrupted_copy(clean, plan);
    const DirectDecode direct = decode_direct(cfg, bad);
    ASSERT_GE(direct.first_error, 0)
        << "seed 7 decoded silently; pick a harsher plan";
    const DirectDecode clean_direct = decode_direct(cfg, clean);
    ASSERT_EQ(clean_direct.first_error, -1);

    SchedulerOptions options;
    options.workers = 2;
    SessionScheduler sched(options);
    StatusOr<std::shared_ptr<CodecSession>> victim = sched.open_decode(
        make_decoder(CodecId::kMpeg2, cfg).value(),
        session_config("victim", SessionClass::kVod, cfg));
    StatusOr<std::shared_ptr<CodecSession>> sibling = sched.open_decode(
        make_decoder(CodecId::kMpeg2, cfg).value(),
        session_config("sibling", SessionClass::kVod, cfg));
    ASSERT_TRUE(victim.is_ok());
    ASSERT_TRUE(sibling.is_ok());

    s64 accepted = 0;
    for (const Packet &packet : bad.packets) {
        const StatusOr<Ticket> ticket = victim.value()->submit(packet);
        if (!ticket.is_ok())
            break;  // sticky failure: the session is already gone
        ++accepted;
    }
    victim.value()->drain();
    ASSERT_TRUE(wait_until([&] { return victim.value()->failed(); }));

    // The victim failed at exactly the packet the direct decoder
    // rejects, with the same status; later tickets drained as lost.
    EXPECT_EQ(victim.value()->session_status().code(),
              direct.statuses.back().code());
    const SessionCounters counters = victim.value()->counters();
    EXPECT_EQ(counters.completed, direct.first_error);
    EXPECT_EQ(counters.failed, 1);
    EXPECT_EQ(counters.completed + counters.failed + counters.lost,
              accepted);
    // failed() flips under the session lock a moment before the
    // scheduler-side bookkeeping lands; wait for the stat, don't race.
    EXPECT_TRUE(
        wait_until([&] { return sched.stats().sessions_failed == 1; }));

    // Blast radius is that one session: the sibling decodes the clean
    // stream to byte-identical pixels while the victim lies failed.
    for (const Packet &packet : clean.packets)
        ASSERT_TRUE(sibling.value()->submit(packet).is_ok());
    ASSERT_TRUE(sibling.value()->close().is_ok());
    std::vector<Frame> sibling_frames;
    sibling.value()->poll(&sibling_frames);
    EXPECT_TRUE(frames_equal(clean_direct.frames, sibling_frames));
    EXPECT_EQ(victim.value()->close().code(),
              direct.statuses.back().code());

    // The failed victim's decoder was torn down at failure time; once
    // the sibling's decoder and the polled frames (which pin pooled
    // buffers) are released, the shared arena must balance to zero —
    // with the victim session object still alive. A worker may still
    // hold the last session reference briefly, so wait, don't race.
    sibling.value().reset();
    sibling_frames.clear();
    EXPECT_TRUE(
        wait_until([&] { return sched.stats().arena.outstanding == 0; }));
    EXPECT_EQ(sched.stats().arena.bytes_outstanding, 0);
}

}  // namespace
}  // namespace hdvb
