/**
 * @file
 * Serve-layer tests: admission control honours session and memory
 * budgets, weighted fair share holds under oversubscription, drain
 * order is the deterministic stride rotation, per-frame deadlines shed
 * expired queue entries, shared-arena accounting balances, and —
 * the API-redesign contract — streams produced through a scheduled
 * CodecSession are byte-identical to the one-shot runner path at every
 * thread count and SIMD level.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "core/benchmark.h"
#include "core/runner.h"
#include "serve/scheduler.h"
#include "synth/synth.h"

namespace hdvb {
namespace {

constexpr int kW = 64;
constexpr int kH = 48;

CodecConfig
small_config(SimdLevel simd = SimdLevel::kScalar, int threads = 1)
{
    CodecConfig cfg;
    cfg.width = kW;
    cfg.height = kH;
    cfg.me_range = 8;
    cfg.refs = 2;
    cfg.simd = simd;
    cfg.threads = threads;
    return cfg;
}

SessionConfig
session_config(const std::string &name, SessionClass cls,
               const CodecConfig &cfg, size_t queue_capacity = 64)
{
    SessionConfig session;
    session.name = name;
    session.priority = cls;
    session.codec_config = cfg;
    session.queue_capacity = queue_capacity;
    return session;
}

std::shared_ptr<CodecSession>
open_encode_session(SessionScheduler &sched, const SessionConfig &cfg)
{
    StatusOr<std::shared_ptr<CodecSession>> session = sched.open_encode(
        make_encoder(CodecId::kMpeg2, cfg.codec_config).value(), cfg);
    EXPECT_TRUE(session.is_ok()) << session.status().to_string();
    return session.is_ok() ? session.value() : nullptr;
}

/** Frames [0, count) of kBlueSky, generated up front: synthesis costs
 * about as much as a 64x48 encode, so tests that want a real backlog
 * must not interleave generation with submission. */
std::vector<Frame>
make_frames(int count)
{
    SyntheticSource source(SequenceId::kBlueSky, kW, kH);
    std::vector<Frame> frames;
    frames.reserve(static_cast<size_t>(count));
    for (int i = 0; i < count; ++i)
        frames.push_back(source.at(i));
    return frames;
}

/** Submit every frame of @p frames to @p session (copies, so a
 * backpressure retry can resend), spinning on kResourceExhausted. */
void
feed_frames(CodecSession &session, const std::vector<Frame> &frames)
{
    for (size_t i = 0; i < frames.size(); ++i) {
        for (;;) {
            const StatusOr<Ticket> ticket = session.submit(frames[i]);
            if (ticket.is_ok()) {
                EXPECT_EQ(ticket.value(), static_cast<Ticket>(i));
                break;
            }
            ASSERT_EQ(ticket.status().code(),
                      StatusCode::kResourceExhausted)
                << ticket.status().to_string();
            std::this_thread::sleep_for(std::chrono::microseconds(100));
        }
    }
}

bool
packets_equal(const std::vector<Packet> &a, const std::vector<Packet> &b)
{
    if (a.size() != b.size())
        return false;
    for (size_t i = 0; i < a.size(); ++i) {
        if (a[i].data != b[i].data || a[i].type != b[i].type ||
            a[i].poc != b[i].poc ||
            a[i].coding_index != b[i].coding_index)
            return false;
    }
    return true;
}

bool
planes_equal(const Plane &a, const Plane &b)
{
    if (a.width() != b.width() || a.height() != b.height())
        return false;
    for (int y = 0; y < a.height(); ++y) {
        if (std::memcmp(a.row(y), b.row(y),
                        static_cast<size_t>(a.width())) != 0)
            return false;
    }
    return true;
}

bool
frames_equal(const std::vector<Frame> &a, const std::vector<Frame> &b)
{
    if (a.size() != b.size())
        return false;
    for (size_t i = 0; i < a.size(); ++i) {
        if (a[i].poc() != b[i].poc() ||
            !planes_equal(a[i].luma(), b[i].luma()) ||
            !planes_equal(a[i].cb(), b[i].cb()) ||
            !planes_equal(a[i].cr(), b[i].cr()))
            return false;
    }
    return true;
}

TEST(ServeAdmission, RejectsBeyondSessionBudget)
{
    SchedulerOptions options;
    options.workers = 1;
    options.max_sessions = 2;
    SessionScheduler sched(options);

    const SessionConfig cfg = session_config(
        "s", SessionClass::kVod, small_config());
    std::shared_ptr<CodecSession> a = open_encode_session(sched, cfg);
    std::shared_ptr<CodecSession> b = open_encode_session(sched, cfg);
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);

    StatusOr<std::shared_ptr<CodecSession>> c = sched.open_encode(
        make_encoder(CodecId::kMpeg2, cfg.codec_config).value(), cfg);
    ASSERT_FALSE(c.is_ok());
    EXPECT_EQ(c.status().code(), StatusCode::kResourceExhausted);
    EXPECT_EQ(sched.stats().sessions_rejected, 1);
    EXPECT_EQ(sched.stats().sessions_open, 2);

    // Closing a session releases its slot for a new admission.
    EXPECT_TRUE(a->close().is_ok());
    EXPECT_EQ(sched.stats().sessions_open, 1);
    std::shared_ptr<CodecSession> d = open_encode_session(sched, cfg);
    EXPECT_NE(d, nullptr);
    EXPECT_TRUE(b->close().is_ok());
    EXPECT_TRUE(d->close().is_ok());
}

TEST(ServeAdmission, RejectsBeyondMemoryBudget)
{
    const CodecConfig codec_cfg = small_config();
    const size_t estimate = session_memory_estimate(codec_cfg);
    ASSERT_GT(estimate, 0u);

    SchedulerOptions options;
    options.workers = 1;
    options.memory_budget_bytes = 2 * estimate + estimate / 2;
    SessionScheduler sched(options);

    const SessionConfig cfg =
        session_config("m", SessionClass::kVod, codec_cfg);
    std::shared_ptr<CodecSession> a = open_encode_session(sched, cfg);
    std::shared_ptr<CodecSession> b = open_encode_session(sched, cfg);
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(sched.stats().estimated_bytes, 2 * estimate);

    StatusOr<std::shared_ptr<CodecSession>> c = sched.open_encode(
        make_encoder(CodecId::kMpeg2, codec_cfg).value(), cfg);
    ASSERT_FALSE(c.is_ok());
    EXPECT_EQ(c.status().code(), StatusCode::kResourceExhausted);

    // Dropping a session (no close) must also refund the charge.
    a.reset();
    EXPECT_EQ(sched.stats().estimated_bytes, estimate);
    std::shared_ptr<CodecSession> d = open_encode_session(sched, cfg);
    EXPECT_NE(d, nullptr);
    EXPECT_TRUE(b->close().is_ok());
    EXPECT_TRUE(d->close().is_ok());
}

TEST(ServeScheduler, FairShareFavorsHighWeightClasses)
{
    constexpr int kFrames = 48;
    SchedulerOptions options;
    options.workers = 1;  // deterministic stride dispatch
    options.batch_frames = 1;
    SessionScheduler sched(options);

    struct ClassRun {
        SessionClass cls;
        std::shared_ptr<CodecSession> session;
        std::vector<TicketResult> results;
    };
    std::vector<ClassRun> runs;
    for (SessionClass cls : kAllSessionClasses) {
        runs.push_back(
            {cls,
             open_encode_session(
                 sched, session_config(session_class_name(cls), cls,
                                       small_config())),
             {}});
        ASSERT_NE(runs.back().session, nullptr);
    }
    // Backlog all three sessions; submitting pre-generated frames is
    // microseconds against millisecond encodes, so the worker sees
    // sustained three-way contention almost immediately.
    const std::vector<Frame> frames = make_frames(kFrames);
    for (ClassRun &run : runs)
        feed_frames(*run.session, frames);
    for (ClassRun &run : runs) {
        run.session->drain();
        run.results = run.session->take_results();
        ASSERT_EQ(run.results.size(), static_cast<size_t>(kFrames));
        for (const TicketResult &r : run.results) {
            EXPECT_TRUE(r.status.is_ok()) << r.status.to_string();
            EXPECT_GE(r.latency_seconds, 0.0);
            EXPECT_GE(r.completion_seq, 0);
        }
    }

    // Equal backlogs: the weight-8 class must finish all its frames
    // before the weight-3 class, which must finish before weight-1.
    const auto last_seq = [](const ClassRun &run) {
        s64 last = -1;
        for (const TicketResult &r : run.results)
            last = std::max(last, r.completion_seq);
        return last;
    };
    EXPECT_LT(last_seq(runs[0]), last_seq(runs[1]));
    EXPECT_LT(last_seq(runs[1]), last_seq(runs[2]));

    // Steady-state share over the first 24 completions approximates
    // the 8:3:1 weights (generous tolerance for the startup ramp
    // while the later sessions were still being admitted and fed).
    int share[kSessionClassCount] = {};
    for (const ClassRun &run : runs) {
        for (const TicketResult &r : run.results) {
            if (r.completion_seq < 24)
                ++share[static_cast<int>(run.cls)];
        }
    }
    EXPECT_GE(share[0], 12);          // live: ideal 16 of 24
    EXPECT_GE(share[0], share[1]);    // live >= vod
    EXPECT_GE(share[1], share[2]);    // vod >= thumbnail
    EXPECT_LE(share[2], 6);           // thumbnail: ideal 2 of 24

    for (ClassRun &run : runs)
        EXPECT_TRUE(run.session->close().is_ok());
}

TEST(ServeScheduler, DrainOrderIsDeterministicStrideRotation)
{
    constexpr int kFrames = 20;
    constexpr int kSessions = 3;
    SchedulerOptions options;
    options.workers = 1;
    options.batch_frames = 1;
    SessionScheduler sched(options);

    // A "plug": one expensive frame submitted first, so the single
    // worker is pinned on it while the cheap sessions are being fed.
    // Without it, on a loaded (or single-CPU) host the worker can
    // consume an early session's whole queue before the later sessions
    // are backlogged, and there is no rotation to observe.
    CodecConfig plug_cfg = small_config();
    plug_cfg.width = 640;
    plug_cfg.height = 480;
    std::shared_ptr<CodecSession> plug = open_encode_session(
        sched, session_config("plug", SessionClass::kVod, plug_cfg));
    ASSERT_NE(plug, nullptr);

    std::vector<std::shared_ptr<CodecSession>> sessions;
    for (int s = 0; s < kSessions; ++s) {
        sessions.push_back(open_encode_session(
            sched, session_config("rot-" + std::to_string(s),
                                  SessionClass::kVod, small_config())));
        ASSERT_NE(sessions.back(), nullptr);
    }
    const std::vector<Frame> frames = make_frames(kFrames);
    {
        SyntheticSource plug_source(SequenceId::kBlueSky, 640, 480);
        ASSERT_TRUE(plug->submit(plug_source.at(0)).is_ok());
    }
    for (const std::shared_ptr<CodecSession> &session : sessions)
        feed_frames(*session, frames);

    // (completion_seq -> session, ticket), gathered after full drain.
    std::map<s64, std::pair<int, Ticket>> order;
    for (int s = 0; s < kSessions; ++s) {
        sessions[s]->drain();
        for (const TicketResult &r : sessions[s]->take_results()) {
            ASSERT_TRUE(r.status.is_ok());
            ASSERT_TRUE(order.emplace(r.completion_seq,
                                      std::make_pair(s, r.ticket))
                            .second)
                << "duplicate completion_seq " << r.completion_seq;
        }
    }
    ASSERT_EQ(order.size(),
              static_cast<size_t>(kFrames * kSessions));
    // Sequence numbers are dense (the plug frame holds one seq before
    // this range): nothing lost, nothing double-counted.
    EXPECT_EQ(order.rbegin()->first - order.begin()->first,
              kFrames * kSessions - 1);

    // FIFO within each session, regardless of interleaving.
    Ticket next_ticket[kSessions] = {};
    for (const auto &[seq, who] : order) {
        (void)seq;
        EXPECT_EQ(who.second, next_ticket[who.first]++);
    }

    // Equal weights and a full backlog: stride scheduling degenerates
    // to round-robin in admission order, so once the startup ramp is
    // over every window of kSessions consecutive completions holds
    // each session exactly once.
    std::vector<int> by_seq;
    for (const auto &[seq, who] : order) {
        (void)seq;
        by_seq.push_back(who.first);
    }
    for (size_t i = 12; i + kSessions <= 42; ++i) {
        bool seen[kSessions] = {};
        for (int k = 0; k < kSessions; ++k) {
            ASSERT_FALSE(seen[by_seq[i + k]])
                << "session " << by_seq[i + k]
                << " dispatched twice in window at seq " << i;
            seen[by_seq[i + k]] = true;
        }
    }

    for (const std::shared_ptr<CodecSession> &session : sessions)
        EXPECT_TRUE(session->close().is_ok());
    EXPECT_TRUE(plug->close().is_ok());
}

TEST(ServeScheduler, ExpiredFramesAreShedWithoutRunningTheCodec)
{
    constexpr int kFrames = 8;
    SchedulerOptions options;
    options.workers = 1;
    SessionScheduler sched(options);

    SessionConfig cfg = session_config("dl", SessionClass::kLive,
                                       small_config());
    // Already expired by the time any worker can pick the frame up.
    cfg.frame_deadline_seconds = 1e-9;
    std::shared_ptr<CodecSession> session =
        open_encode_session(sched, cfg);
    ASSERT_NE(session, nullptr);

    feed_frames(*session, make_frames(kFrames));
    EXPECT_TRUE(session->close().is_ok());

    const SessionCounters counters = session->counters();
    EXPECT_EQ(counters.deadline_missed, kFrames);
    EXPECT_EQ(counters.completed, 0);
    EXPECT_EQ(counters.failed, 0);
    for (const TicketResult &r : session->take_results())
        EXPECT_EQ(r.status.code(), StatusCode::kDeadlineExceeded);
    // The codec never saw a frame, so flush had nothing to emit.
    std::vector<Packet> packets;
    session->poll(&packets);
    EXPECT_TRUE(packets.empty());
}

TEST(ServeScheduler, ArenaAccountingBalancesAcrossSessions)
{
    // Copyable handle to the scheduler's arena: survives the scheduler
    // so the final balance can be read after a full shutdown.
    FrameArena arena;
    FramePoolStats first_pool, second_pool;
    {
        SchedulerOptions options;
        options.workers = 1;
        SessionScheduler sched(options);
        arena = sched.arena();
        const SessionConfig cfg = session_config(
            "arena", SessionClass::kVod, small_config());

        std::shared_ptr<CodecSession> first =
            open_encode_session(sched, cfg);
        ASSERT_NE(first, nullptr);
        const std::vector<Frame> frames = make_frames(8);
        feed_frames(*first, frames);
        EXPECT_TRUE(first->close().is_ok());
        first_pool = first->codec_stats().pool;
        EXPECT_GT(first_pool.buffer_allocs, 0);
        EXPECT_GT(first_pool.bytes_high_water, 0);

        std::vector<Packet> sink;
        first->poll(&sink);
        first.reset();
        // The dispatcher may hold its session reference for a moment
        // after close() drains; the encoder (and its reference frames)
        // die only when that last reference drops. Wait for the
        // buffers to land back in the arena.
        for (int i = 0; i < 2000 && arena.stats().outstanding != 0; ++i)
            std::this_thread::sleep_for(std::chrono::microseconds(100));
        ASSERT_EQ(arena.stats().outstanding, 0);

        // A second same-geometry session recycles the first one's
        // buffers through the shared arena instead of allocating
        // fresh ones.
        std::shared_ptr<CodecSession> second =
            open_encode_session(sched, cfg);
        ASSERT_NE(second, nullptr);
        feed_frames(*second, frames);
        EXPECT_TRUE(second->close().is_ok());
        second_pool = second->codec_stats().pool;
        EXPECT_GT(second_pool.buffer_reuses, 0);
        EXPECT_LT(second_pool.buffer_allocs, first_pool.buffer_allocs);
        second->poll(&sink);
        second.reset();
    }  // ~SessionScheduler joins every dispatcher

    const FramePoolStats stats = arena.stats();
    EXPECT_EQ(stats.outstanding, 0);
    EXPECT_EQ(stats.bytes_outstanding, 0);
    EXPECT_EQ(stats.buffer_allocs,
              first_pool.buffer_allocs + second_pool.buffer_allocs);
}

TEST(ServeSession, DirectionAndLifecycleErrors)
{
    std::shared_ptr<CodecSession> enc = CodecSession::open_inline_encode(
        make_encoder(CodecId::kMpeg2, small_config()).value(),
        session_config("inline", SessionClass::kVod, small_config()));
    ASSERT_NE(enc, nullptr);

    // Wrong direction is an invalid-argument error, not a crash.
    Packet packet;
    const StatusOr<Ticket> wrong = enc->submit(packet);
    ASSERT_FALSE(wrong.is_ok());
    EXPECT_EQ(wrong.status().code(), StatusCode::kInvalidArgument);

    SyntheticSource source(SequenceId::kBlueSky, kW, kH);
    EXPECT_TRUE(enc->submit(source.at(0)).is_ok());
    EXPECT_TRUE(enc->close().is_ok());
    EXPECT_TRUE(enc->close().is_ok());  // idempotent

    // Submits after close are rejected as resource exhaustion.
    const StatusOr<Ticket> late = enc->submit(source.at(1));
    ASSERT_FALSE(late.is_ok());
    EXPECT_EQ(late.status().code(), StatusCode::kResourceExhausted);
}

/** The API-redesign contract: a scheduled streaming session and the
 * one-shot runner produce byte-identical streams and pixels for every
 * codec x thread count x SIMD level. */
class SessionInvariance : public ::testing::TestWithParam<CodecId>
{};

TEST_P(SessionInvariance, SchedulerStreamMatchesOneShotRunner)
{
    const CodecId codec = GetParam();
    constexpr int kFrames = 8;
    for (int level = 0; level < kSimdLevelCount; ++level) {
        const auto simd = static_cast<SimdLevel>(level);
        if (simd > detected_simd_level())
            continue;
        for (int threads : {1, 2, 4}) {
            SCOPED_TRACE(std::string(simd_level_name(simd)) +
                         " threads=" + std::to_string(threads));
            const CodecConfig cfg = small_config(simd, threads);

            // One-shot path (run_encode drives an inline session).
            BenchPoint point;
            point.codec = codec;
            point.sequence = SequenceId::kBlueSky;
            point.frames = kFrames;
            point.config = cfg;
            const StatusOr<EncodeRun> one_shot = run_encode(point);
            ASSERT_TRUE(one_shot.is_ok())
                << one_shot.status().to_string();

            // Streaming path through the scheduler.
            SchedulerOptions options;
            options.workers = 2;
            SessionScheduler sched(options);
            StatusOr<std::shared_ptr<CodecSession>> session =
                sched.open_encode(
                    make_encoder(codec, cfg).value(),
                    session_config("inv", SessionClass::kVod, cfg));
            ASSERT_TRUE(session.is_ok());
            feed_frames(*session.value(), make_frames(kFrames));
            ASSERT_TRUE(session.value()->close().is_ok());
            std::vector<Packet> streamed;
            session.value()->poll(&streamed);

            EXPECT_TRUE(packets_equal(one_shot.value().stream.packets,
                                      streamed))
                << "scheduled stream diverged from one-shot stream";

            // Decode the stream both ways too: pixels must match.
            std::unique_ptr<VideoDecoder> direct =
                make_decoder(codec, cfg).value();
            std::vector<Frame> direct_frames;
            for (const Packet &packet : streamed)
                ASSERT_TRUE(
                    direct->decode(packet, &direct_frames).is_ok());
            ASSERT_TRUE(direct->flush(&direct_frames).is_ok());

            StatusOr<std::shared_ptr<CodecSession>> dec_session =
                sched.open_decode(
                    make_decoder(codec, cfg).value(),
                    session_config("inv-dec", SessionClass::kVod, cfg));
            ASSERT_TRUE(dec_session.is_ok());
            for (const Packet &packet : streamed) {
                for (;;) {
                    const StatusOr<Ticket> ticket =
                        dec_session.value()->submit(packet);
                    if (ticket.is_ok())
                        break;
                    ASSERT_EQ(ticket.status().code(),
                              StatusCode::kResourceExhausted);
                    std::this_thread::sleep_for(
                        std::chrono::microseconds(100));
                }
            }
            ASSERT_TRUE(dec_session.value()->close().is_ok());
            std::vector<Frame> session_frames;
            dec_session.value()->poll(&session_frames);
            EXPECT_TRUE(frames_equal(direct_frames, session_frames))
                << "scheduled decode diverged from direct decode";
        }
    }
}

INSTANTIATE_TEST_SUITE_P(AllCodecs, SessionInvariance,
                         ::testing::ValuesIn(kAllCodecs));

}  // namespace
}  // namespace hdvb
