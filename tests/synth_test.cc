/**
 * @file
 * Unit tests for the synthetic sequence generators: determinism,
 * distinctness, and the Table III codability ordering (riverbed must be
 * the hard-to-code outlier).
 */
#include <gtest/gtest.h>

#include "metrics/psnr.h"
#include "metrics/stats.h"
#include "synth/synth.h"

namespace hdvb {
namespace {

TEST(Synth, NamesMatchPaper)
{
    EXPECT_STREQ(sequence_name(SequenceId::kBlueSky), "blue_sky");
    EXPECT_STREQ(sequence_name(SequenceId::kPedestrianArea),
                 "pedestrian_area");
    EXPECT_STREQ(sequence_name(SequenceId::kRiverbed), "riverbed");
    EXPECT_STREQ(sequence_name(SequenceId::kRushHour), "rush_hour");
}

TEST(Synth, GenerationIsDeterministic)
{
    for (SequenceId seq : kAllSequences) {
        Frame a(96, 64), b(96, 64);
        generate_frame(seq, 5, &a);
        generate_frame(seq, 5, &b);
        EXPECT_EQ(plane_sse(a.luma(), b.luma()), 0u);
        EXPECT_EQ(plane_sse(a.cb(), b.cb()), 0u);
        EXPECT_EQ(plane_sse(a.cr(), b.cr()), 0u);
    }
}

TEST(Synth, SequencesAreDistinct)
{
    Frame frames[kSequenceCount];
    for (int i = 0; i < kSequenceCount; ++i) {
        frames[i] = Frame(96, 64);
        generate_frame(kAllSequences[i], 0, &frames[i]);
    }
    for (int i = 0; i < kSequenceCount; ++i)
        for (int j = i + 1; j < kSequenceCount; ++j)
            EXPECT_GT(plane_sse(frames[i].luma(), frames[j].luma()),
                      1000u);
}

TEST(Synth, FramesEvolveOverTime)
{
    for (SequenceId seq : kAllSequences) {
        Frame a(96, 64), b(96, 64);
        generate_frame(seq, 0, &a);
        generate_frame(seq, 4, &b);
        EXPECT_GT(plane_sse(a.luma(), b.luma()), 0u)
            << sequence_name(seq);
    }
}

TEST(Synth, SourceStreamsPocsInOrder)
{
    SyntheticSource source(SequenceId::kBlueSky, 64, 48);
    for (int i = 0; i < 5; ++i) {
        const Frame frame = source.next();
        EXPECT_EQ(frame.poc(), i);
    }
    EXPECT_EQ(source.at(2).poc(), 2);
}

TEST(Synth, RandomAccessMatchesStreaming)
{
    SyntheticSource stream(SequenceId::kRushHour, 96, 64);
    stream.next();
    stream.next();
    const Frame streamed = stream.next();  // frame 2
    SyntheticSource random(SequenceId::kRushHour, 96, 64);
    const Frame accessed = random.at(2);
    EXPECT_EQ(plane_sse(streamed.luma(), accessed.luma()), 0u);
}

TEST(Synth, RiverbedHasHighestTemporalInformation)
{
    double ti[kSequenceCount];
    for (int s = 0; s < kSequenceCount; ++s) {
        SyntheticSource source(kAllSequences[s], 192, 128);
        SiTiAccumulator acc;
        for (int i = 0; i < 4; ++i)
            acc.add(source.next());
        ti[s] = acc.ti();
    }
    const double river = ti[static_cast<int>(SequenceId::kRiverbed)];
    EXPECT_GT(river, ti[static_cast<int>(SequenceId::kRushHour)]);
    EXPECT_GT(river, ti[static_cast<int>(SequenceId::kBlueSky)]);
}

TEST(Stats, FlatFrameHasZeroSpatialInformation)
{
    Frame frame(64, 48);
    frame.luma().fill(128);
    EXPECT_DOUBLE_EQ(spatial_information(frame), 0.0);
}

TEST(Stats, IdenticalFramesHaveZeroTemporalInformation)
{
    Frame a(64, 48), b(64, 48);
    generate_frame(SequenceId::kBlueSky, 0, &a);
    b.copy_from(a);
    EXPECT_DOUBLE_EQ(temporal_information(a, b), 0.0);
}

TEST(Psnr, IdenticalPlanesSaturateAt99)
{
    Frame a(64, 48), b(64, 48);
    generate_frame(SequenceId::kRushHour, 0, &a);
    b.copy_from(a);
    EXPECT_DOUBLE_EQ(frame_psnr_y(a, b), 99.0);
}

TEST(Psnr, KnownUniformError)
{
    Frame a(64, 48), b(64, 48);
    a.luma().fill(100);
    b.luma().fill(110);  // MSE = 100 -> PSNR = 10 log10(255^2/100)
    EXPECT_NEAR(frame_psnr_y(a, b), 28.13, 0.01);
}

TEST(Psnr, AccumulatorCombinesPlanes)
{
    Frame a(64, 48), b(64, 48);
    generate_frame(SequenceId::kPedestrianArea, 0, &a);
    b.copy_from(a);
    b.luma().fill(0);  // destroy luma only
    PsnrAccumulator acc;
    acc.add(a, b);
    EXPECT_LT(acc.psnr_y(), 20.0);
    EXPECT_DOUBLE_EQ(acc.psnr_cb(), 99.0);
    EXPECT_DOUBLE_EQ(acc.psnr_cr(), 99.0);
    EXPECT_GT(acc.psnr_all(), acc.psnr_y());
    EXPECT_EQ(acc.frames(), 1);
}

}  // namespace
}  // namespace hdvb
