/**
 * @file
 * Unit tests for the concurrency substrate shared by the sweep engine
 * and the codecs' band-parallel mode: ThreadPool task dispatch,
 * parallel_for semantics (full coverage of the index range, dynamic
 * balancing with more tasks than workers, exception propagation, empty
 * ranges, worker-id reporting), pool identity (on_worker_thread,
 * cross-pool nesting), TaskGroup, HDVB_JOBS parsing, and the wavefront
 * scheduler's happens-before ordering (the band-partition test is the
 * one a TSAN build leans on).
 */
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <set>
#include <stdexcept>
#include <vector>

#include "common/thread_pool.h"
#include "common/wavefront.h"

namespace hdvb {
namespace {

TEST(ThreadPool, RunsSubmittedTasks)
{
    std::atomic<int> count{0};
    {
        ThreadPool pool(3);
        EXPECT_EQ(pool.worker_count(), 3);
        for (int i = 0; i < 50; ++i)
            pool.submit([&count](int) { ++count; });
    }  // destructor drains the queue
    EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPool, WorkerCountClampedToAtLeastOne)
{
    ThreadPool pool(0);
    EXPECT_EQ(pool.worker_count(), 1);
    std::atomic<int> ran{0};
    parallel_for(pool, 4, [&ran](int, int) { ++ran; });
    EXPECT_EQ(ran.load(), 4);
}

TEST(ParallelFor, EmptyAndNegativeRangesAreNoOps)
{
    ThreadPool pool(2);
    std::atomic<int> calls{0};
    parallel_for(pool, 0, [&calls](int, int) { ++calls; });
    parallel_for(pool, -7, [&calls](int, int) { ++calls; });
    EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelFor, CoversEveryIndexOnceWithMoreTasksThanWorkers)
{
    ThreadPool pool(2);
    constexpr int kCount = 1000;
    std::vector<std::atomic<int>> hits(kCount);
    std::atomic<long> index_sum{0};
    parallel_for(pool, kCount, [&](int i, int worker) {
        ASSERT_GE(i, 0);
        ASSERT_LT(i, kCount);
        ASSERT_GE(worker, 0);
        ASSERT_LT(worker, pool.worker_count());
        ++hits[i];
        index_sum += i;
    });
    for (int i = 0; i < kCount; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
    EXPECT_EQ(index_sum.load(),
              static_cast<long>(kCount) * (kCount - 1) / 2);
}

TEST(ParallelFor, ExceptionPropagatesToCaller)
{
    ThreadPool pool(4);
    std::atomic<int> completed{0};
    EXPECT_THROW(
        parallel_for(pool, 100,
                     [&completed](int i, int) {
                         if (i == 37)
                             throw std::runtime_error("point failed");
                         ++completed;
                     }),
        std::runtime_error);
    // Everything that did run, ran at most once each.
    EXPECT_LE(completed.load(), 99);

    // The pool stays usable after a failed loop.
    std::atomic<int> after{0};
    parallel_for(pool, 10, [&after](int, int) { ++after; });
    EXPECT_EQ(after.load(), 10);
}

TEST(ParallelFor, ResultsLandAtTheirOwnIndex)
{
    // The sweep engine's ordering contract in miniature: each task
    // writes results[i], so output order equals input order no matter
    // which worker ran what.
    ThreadPool pool(4);
    constexpr int kCount = 257;
    std::vector<int> results(kCount, -1);
    parallel_for(pool, kCount,
                 [&results](int i, int) { results[i] = i * i; });
    for (int i = 0; i < kCount; ++i)
        EXPECT_EQ(results[i], i * i);
}

TEST(ThreadPool, OnWorkerThreadDistinguishesPools)
{
    ThreadPool a(2);
    ThreadPool b(2);
    EXPECT_FALSE(a.on_worker_thread());  // main thread
    std::atomic<int> checked{0};
    parallel_for(a, 8, [&](int, int) {
        if (a.on_worker_thread() && !b.on_worker_thread())
            ++checked;
    });
    EXPECT_EQ(checked.load(), 8);
}

TEST(ParallelFor, NestsAcrossDistinctPools)
{
    // The documented-legal nesting: a task on one pool drives a
    // parallel_for on a *different* pool — exactly how a sweep worker
    // drives a codec's private band pool. The same-pool case is an
    // HDVB_DCHECK failure and is not exercised here.
    ThreadPool outer(2);
    ThreadPool inner(3);
    std::atomic<int> total{0};
    parallel_for(outer, 4, [&](int, int) {
        parallel_for(inner, 5, [&](int, int) { ++total; });
    });
    EXPECT_EQ(total.load(), 20);
}

TEST(TaskGroup, WaitsForIncrementallySubmittedTasks)
{
    ThreadPool pool(3);
    std::atomic<int> done{0};
    TaskGroup group(pool);
    for (int i = 0; i < 40; ++i)
        group.run([&done] { ++done; });
    group.wait();
    EXPECT_EQ(done.load(), 40);
}

TEST(TaskGroup, WaitRethrowsFirstTaskError)
{
    ThreadPool pool(2);
    TaskGroup group(pool);
    std::atomic<int> completed{0};
    for (int i = 0; i < 10; ++i) {
        group.run([&completed, i] {
            if (i == 4)
                throw std::runtime_error("row failed");
            ++completed;
        });
    }
    EXPECT_THROW(group.wait(), std::runtime_error);
    EXPECT_LE(completed.load(), 9);

    // The pool itself is unaffected.
    std::atomic<int> after{0};
    parallel_for(pool, 6, [&after](int, int) { ++after; });
    EXPECT_EQ(after.load(), 6);
}

TEST(DefaultJobCount, IsPositive)
{
    EXPECT_GE(default_job_count(), 1);
}

TEST(DefaultJobCount, ParsesHdvbJobsStrictly)
{
    const char *saved = std::getenv("HDVB_JOBS");
    const std::string saved_copy = saved != nullptr ? saved : "";

    ::unsetenv("HDVB_JOBS");
    const int fallback = default_job_count();
    EXPECT_GE(fallback, 1);

    ::setenv("HDVB_JOBS", "7", 1);
    EXPECT_EQ(default_job_count(), 7);

    // atoi would have truncated these to a number or to 0; the strict
    // parser rejects the whole value and falls back instead.
    for (const char *bad : {"7x", "3 4", "", " 5", "0", "-2", "jobs"}) {
        ::setenv("HDVB_JOBS", bad, 1);
        EXPECT_EQ(default_job_count(), fallback)
            << "HDVB_JOBS=\"" << bad << '"';
    }

    if (saved != nullptr)
        ::setenv("HDVB_JOBS", saved_copy.c_str(), 1);
    else
        ::unsetenv("HDVB_JOBS");
}

// ---- wavefront scheduling ----

TEST(Wavefront, BandPartitionRespectsAboveRightDependency)
{
    // A miniature of the codecs' threaded picture pass: every cell of
    // an mb-grid-shaped table is computed from its left neighbour and
    // its above-right neighbour, one row per band, synchronised only by
    // the WavefrontScheduler. The non-atomic cross-row reads make this
    // the test a TSAN build uses to vouch for the publish/wait_for
    // happens-before edges; the value check makes lost updates visible
    // on any build.
    constexpr int kRows = 16;
    constexpr int kCols = 24;

    std::vector<std::vector<long>> want(kRows,
                                        std::vector<long>(kCols, 0));
    for (int r = 0; r < kRows; ++r) {
        for (int c = 0; c < kCols; ++c) {
            const long left = c > 0 ? want[r][c - 1] : 1;
            const long above_right =
                r > 0 ? want[r - 1][c + 1 < kCols ? c + 1 : kCols - 1]
                      : 1;
            want[r][c] = left + above_right + r + c;
        }
    }

    for (int trial = 0; trial < 8; ++trial) {
        std::vector<std::vector<long>> got(kRows,
                                           std::vector<long>(kCols, 0));
        ThreadPool pool(4);
        WavefrontScheduler wf(kRows, kCols);
        parallel_for(pool, kRows, [&](int r, int) {
            WavefrontRowGuard guard(wf, r);
            for (int c = 0; c < kCols; ++c) {
                wf.wait_above(r, c);
                const long left = c > 0 ? got[r][c - 1] : 1;
                const long above_right =
                    r > 0
                        ? got[r - 1][c + 1 < kCols ? c + 1 : kCols - 1]
                        : 1;
                got[r][c] = left + above_right + r + c;
                wf.publish(r, c + 1);
            }
        });
        ASSERT_EQ(got, want) << "trial " << trial;
    }
}

TEST(Wavefront, RowGuardPoisonsRowOnException)
{
    // A band that dies mid-row must still unblock the rows below it —
    // the guard publishes full completion on unwind, so the loop's
    // exception surfaces instead of a deadlock.
    constexpr int kRows = 8;
    constexpr int kCols = 8;
    ThreadPool pool(4);
    WavefrontScheduler wf(kRows, kCols);
    std::atomic<int> cells{0};
    EXPECT_THROW(
        parallel_for(pool, kRows,
                     [&](int r, int) {
                         WavefrontRowGuard guard(wf, r);
                         for (int c = 0; c < kCols; ++c) {
                             wf.wait_above(r, c);
                             if (r == 2 && c == 3)
                                 throw std::runtime_error("band died");
                             ++cells;
                             wf.publish(r, c + 1);
                         }
                     }),
        std::runtime_error);
    EXPECT_LT(cells.load(), kRows * kCols);
}

}  // namespace
}  // namespace hdvb
