/**
 * @file
 * Unit tests for the sweep engine's concurrency substrate: ThreadPool
 * task dispatch and parallel_for semantics (full coverage of the index
 * range, dynamic balancing with more tasks than workers, exception
 * propagation, empty ranges, worker-id reporting).
 */
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <vector>

#include "common/thread_pool.h"

namespace hdvb {
namespace {

TEST(ThreadPool, RunsSubmittedTasks)
{
    std::atomic<int> count{0};
    {
        ThreadPool pool(3);
        EXPECT_EQ(pool.worker_count(), 3);
        for (int i = 0; i < 50; ++i)
            pool.submit([&count](int) { ++count; });
    }  // destructor drains the queue
    EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPool, WorkerCountClampedToAtLeastOne)
{
    ThreadPool pool(0);
    EXPECT_EQ(pool.worker_count(), 1);
    std::atomic<int> ran{0};
    parallel_for(pool, 4, [&ran](int, int) { ++ran; });
    EXPECT_EQ(ran.load(), 4);
}

TEST(ParallelFor, EmptyAndNegativeRangesAreNoOps)
{
    ThreadPool pool(2);
    std::atomic<int> calls{0};
    parallel_for(pool, 0, [&calls](int, int) { ++calls; });
    parallel_for(pool, -7, [&calls](int, int) { ++calls; });
    EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelFor, CoversEveryIndexOnceWithMoreTasksThanWorkers)
{
    ThreadPool pool(2);
    constexpr int kCount = 1000;
    std::vector<std::atomic<int>> hits(kCount);
    std::atomic<long> index_sum{0};
    parallel_for(pool, kCount, [&](int i, int worker) {
        ASSERT_GE(i, 0);
        ASSERT_LT(i, kCount);
        ASSERT_GE(worker, 0);
        ASSERT_LT(worker, pool.worker_count());
        ++hits[i];
        index_sum += i;
    });
    for (int i = 0; i < kCount; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
    EXPECT_EQ(index_sum.load(),
              static_cast<long>(kCount) * (kCount - 1) / 2);
}

TEST(ParallelFor, ExceptionPropagatesToCaller)
{
    ThreadPool pool(4);
    std::atomic<int> completed{0};
    EXPECT_THROW(
        parallel_for(pool, 100,
                     [&completed](int i, int) {
                         if (i == 37)
                             throw std::runtime_error("point failed");
                         ++completed;
                     }),
        std::runtime_error);
    // Everything that did run, ran at most once each.
    EXPECT_LE(completed.load(), 99);

    // The pool stays usable after a failed loop.
    std::atomic<int> after{0};
    parallel_for(pool, 10, [&after](int, int) { ++after; });
    EXPECT_EQ(after.load(), 10);
}

TEST(ParallelFor, ResultsLandAtTheirOwnIndex)
{
    // The sweep engine's ordering contract in miniature: each task
    // writes results[i], so output order equals input order no matter
    // which worker ran what.
    ThreadPool pool(4);
    constexpr int kCount = 257;
    std::vector<int> results(kCount, -1);
    parallel_for(pool, kCount,
                 [&results](int i, int) { results[i] = i * i; });
    for (int i = 0; i < kCount; ++i)
        EXPECT_EQ(results[i], i * i);
}

TEST(DefaultJobCount, IsPositive)
{
    EXPECT_GE(default_job_count(), 1);
}

}  // namespace
}  // namespace hdvb
