/**
 * @file
 * Unit tests for the dsp substrate: scan orders, the MPEG-class and
 * H.264-class quantisers, the H.264 4x4 transforms, and the paper's
 * Equation 1 QP mapping.
 */
#include <gtest/gtest.h>

#include <cstring>
#include <random>

#include "dsp/approx.h"
#include "dsp/quant.h"
#include "dsp/transform4x4.h"
#include "dsp/zigzag.h"
#include "simd/dispatch.h"

namespace hdvb {
namespace {

TEST(Zigzag, InverseIsConsistent)
{
    for (int i = 0; i < 64; ++i)
        EXPECT_EQ(kZigzag8x8Inv[kZigzag8x8[i]], i);
}

TEST(Zigzag, IsAPermutation)
{
    bool seen8[64] = {};
    for (int i = 0; i < 64; ++i) {
        ASSERT_LT(kZigzag8x8[i], 64);
        EXPECT_FALSE(seen8[kZigzag8x8[i]]);
        seen8[kZigzag8x8[i]] = true;
    }
    bool seen4[16] = {};
    for (int i = 0; i < 16; ++i) {
        ASSERT_LT(kZigzag4x4[i], 16);
        EXPECT_FALSE(seen4[kZigzag4x4[i]]);
        seen4[kZigzag4x4[i]] = true;
    }
}

TEST(Zigzag, StartsAtDcWalksToHighestFrequency)
{
    EXPECT_EQ(kZigzag8x8[0], 0);
    EXPECT_EQ(kZigzag8x8[63], 63);
    EXPECT_EQ(kZigzag4x4[0], 0);
    EXPECT_EQ(kZigzag4x4[15], 15);
}

// ---- approximation-tier helpers ----

TEST(ApproxDct, Low4MatchesFullTransformOnSurvivingCoefficients)
{
    // fdct8x8_low4's contract: the top-left 4x4 output coefficients
    // are bit-exact with the exact fixed-point transform; every other
    // coefficient is zero.
    std::mt19937 rng(1234);
    const Dsp &dsp = get_dsp(SimdLevel::kScalar);
    for (int trial = 0; trial < 50; ++trial) {
        Coeff full[64];
        Coeff low[64];
        for (int i = 0; i < 64; ++i)
            full[i] = static_cast<Coeff>(
                static_cast<int>(rng() % 511) - 255);
        std::memcpy(low, full, sizeof(full));
        dsp.fdct8x8(full);
        fdct8x8_low4(low);
        for (int y = 0; y < 8; ++y) {
            for (int x = 0; x < 8; ++x) {
                if (y < 4 && x < 4) {
                    EXPECT_EQ(full[y * 8 + x], low[y * 8 + x])
                        << "y=" << y << " x=" << x;
                } else {
                    EXPECT_EQ(low[y * 8 + x], 0)
                        << "y=" << y << " x=" << x;
                }
            }
        }
    }
}

TEST(ApproxDeadZone, ZeroAtLevelZeroAndScalesWithLevel)
{
    EXPECT_EQ(mpeg_dead_zone_sad(5, 4, 0), 0);
    EXPECT_EQ(h264_dead_zone_sad(26, 0), 0);
    for (int approx = 1; approx < 3; ++approx) {
        // Doubles per level above 1.
        EXPECT_EQ(mpeg_dead_zone_sad(5, 4, approx + 1),
                  mpeg_dead_zone_sad(5, 4, approx) * 2);
        EXPECT_EQ(h264_dead_zone_sad(26, approx + 1),
                  h264_dead_zone_sad(26, approx) * 2);
    }
    // Coarser quantisers widen the zone.
    EXPECT_GT(mpeg_dead_zone_sad(31, 4, 1), mpeg_dead_zone_sad(2, 4, 1));
    EXPECT_GT(h264_dead_zone_sad(40, 1), h264_dead_zone_sad(12, 1));
}

// ---- Equation 1 ----

TEST(Equation1, PaperOperatingPoint)
{
    // vqscale=5 maps to --qp=26 in the paper's Table IV commands.
    EXPECT_EQ(h264_qp_from_mpeg(5), 26);
}

TEST(Equation1, KnownValues)
{
    EXPECT_EQ(h264_qp_from_mpeg(1), 12);   // log2(1) = 0
    EXPECT_EQ(h264_qp_from_mpeg(2), 18);   // +6 per doubling
    EXPECT_EQ(h264_qp_from_mpeg(4), 24);
    EXPECT_EQ(h264_qp_from_mpeg(8), 30);
    EXPECT_EQ(h264_qp_from_mpeg(16), 36);
    EXPECT_EQ(h264_qp_from_mpeg(31), 42);
}

TEST(Equation1, MonotonicOverFullRange)
{
    for (int q = 2; q <= 31; ++q)
        EXPECT_GE(h264_qp_from_mpeg(q), h264_qp_from_mpeg(q - 1));
}

// ---- MPEG-class quantiser ----

TEST(MpegQuantizer, RoundTripErrorBoundedByStep)
{
    std::mt19937 rng(21);
    const MpegQuantizer quant(kMpegInterMatrix, 5, 32);
    for (int trial = 0; trial < 100; ++trial) {
        Coeff blk[64], orig[64];
        for (int i = 0; i < 64; ++i)
            blk[i] = orig[i] = static_cast<Coeff>(
                static_cast<int>(rng() % 2001) - 1000);
        quant.quantize(blk);
        quant.dequantize(blk);
        for (int i = 0; i < 64; ++i)
            ASSERT_LE(std::abs(blk[i] - orig[i]), quant.step(i));
    }
}

TEST(MpegQuantizer, CoarserScaleGivesFewerNonzeros)
{
    std::mt19937 rng(22);
    Coeff blk[64];
    for (int i = 0; i < 64; ++i)
        blk[i] = static_cast<Coeff>(static_cast<int>(rng() % 201) - 100);
    Coeff fine[64], coarse[64];
    std::copy(blk, blk + 64, fine);
    std::copy(blk, blk + 64, coarse);
    const int nz_fine =
        MpegQuantizer(kMpegInterMatrix, 2, 32).quantize(fine);
    const int nz_coarse =
        MpegQuantizer(kMpegInterMatrix, 20, 32).quantize(coarse);
    EXPECT_GT(nz_fine, nz_coarse);
}

TEST(MpegQuantizer, Mpeg2StepSemanticsAreTwiceAsFine)
{
    const MpegQuantizer mpeg2(kMpegInterMatrix, 6, 32, 4);
    const MpegQuantizer mpeg4(kMpegInterMatrix, 6, 32, 3);
    for (int i = 0; i < 64; ++i)
        EXPECT_EQ(mpeg4.step(i), 2 * mpeg2.step(i));
}

TEST(MpegQuantizer, DeadZoneSuppressesSmallCoefficients)
{
    Coeff blk_round[64] = {}, blk_trunc[64] = {};
    blk_round[1] = blk_trunc[1] = 6;  // just over half a step of 10
    MpegQuantizer(kMpegInterMatrix, 5, 32).quantize(blk_round);
    MpegQuantizer(kMpegInterMatrix, 5, 0).quantize(blk_trunc);
    EXPECT_EQ(blk_round[1], 1);  // round-to-nearest keeps it
    EXPECT_EQ(blk_trunc[1], 0);  // truncation drops it
}

TEST(MpegQuantizer, LevelsClampedForIdctSafety)
{
    Coeff blk[64] = {};
    blk[5] = 32767;
    MpegQuantizer(kMpegInterMatrix, 1, 32).quantize(blk);
    EXPECT_LE(blk[5], kCoeffClamp);
}

// ---- H.264-class quantiser + 4x4 transform ----

TEST(H264Transform, Inv4x4OfZeroIsZero)
{
    Coeff blk[16] = {};
    h264_inv4x4(blk);
    for (Coeff c : blk)
        EXPECT_EQ(c, 0);
}

TEST(H264Transform, QuantRoundTripReconstructsResidual)
{
    std::mt19937 rng(31);
    for (int qp : {8, 20, 26, 32}) {
        const H264Quantizer quant(qp, false);
        double err_sum = 0.0;
        const int trials = 200;
        for (int t = 0; t < trials; ++t) {
            Coeff blk[16], orig[16];
            for (int i = 0; i < 16; ++i)
                blk[i] = orig[i] = static_cast<Coeff>(
                    static_cast<int>(rng() % 401) - 200);
            h264_fwd4x4(blk);
            quant.quantize4x4(blk);
            quant.dequantize4x4(blk);
            h264_inv4x4(blk);
            for (int i = 0; i < 16; ++i)
                err_sum += std::abs(blk[i] - orig[i]);
        }
        // Mean reconstruction error grows with QP but stays bounded
        // by roughly half the quantiser step (Qstep ~ 2^((qp-4)/6)).
        const double mean_err = err_sum / (trials * 16);
        const double qstep = 0.625 * std::pow(2.0, qp / 6.0);
        EXPECT_LT(mean_err, qstep) << "qp=" << qp;
    }
}

TEST(H264Transform, LosslessAtQpZeroIsNearExact)
{
    std::mt19937 rng(33);
    const H264Quantizer quant(0, true);
    int worst = 0;
    for (int t = 0; t < 100; ++t) {
        Coeff blk[16], orig[16];
        for (int i = 0; i < 16; ++i)
            blk[i] = orig[i] =
                static_cast<Coeff>(static_cast<int>(rng() % 255) - 127);
        h264_fwd4x4(blk);
        quant.quantize4x4(blk);
        quant.dequantize4x4(blk);
        h264_inv4x4(blk);
        for (int i = 0; i < 16; ++i)
            worst = std::max(worst,
                             std::abs(static_cast<int>(blk[i]) -
                                      orig[i]));
    }
    EXPECT_LE(worst, 1);
}

TEST(H264Transform, HadamardSelfInverseWithGain16)
{
    std::mt19937 rng(35);
    s32 dc[16], orig[16];
    for (int i = 0; i < 16; ++i)
        dc[i] = orig[i] = static_cast<s32>(rng() % 8001) - 4000;
    hadamard4x4_fwd(dc);
    hadamard4x4_inv(dc);
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(dc[i], orig[i] * 16);
}

TEST(H264Transform, DcQuantRoundTrip)
{
    const H264Quantizer quant(26, true);
    for (s32 v : {-30000, -500, 0, 700, 30000}) {
        const Coeff level = quant.quantize_dc(v);
        const s32 rec = quant.dequantize_dc(level);
        // DC reconstruction carries the standard 4x coefficient scale;
        // the effective DC step at qp 26 is V0 * 2^(qp/6) * 2 = 416 in
        // that domain, so the error bound is half of that.
        EXPECT_NEAR(static_cast<double>(rec), 4.0 * v, 208.0)
            << "v=" << v;
    }
}

TEST(H264Quantizer, HigherQpGivesFewerNonzeros)
{
    std::mt19937 rng(37);
    Coeff base[16];
    for (int i = 0; i < 16; ++i)
        base[i] = static_cast<Coeff>(static_cast<int>(rng() % 801) - 400);
    Coeff a[16], b[16];
    std::copy(base, base + 16, a);
    std::copy(base, base + 16, b);
    const int nz_fine = H264Quantizer(10, false).quantize4x4(a);
    const int nz_coarse = H264Quantizer(40, false).quantize4x4(b);
    EXPECT_GE(nz_fine, nz_coarse);
}

}  // namespace
}  // namespace hdvb
