/**
 * @file
 * Unit tests for the shared sample statistics (common/stats.h) — the
 * percentile/median/CoV layer under the loadgens' latency reports,
 * the sweep engine's repeat noise estimates, and the BENCH
 * comparator's thresholds. The small-N cases are the point: the old
 * per-loadgen percentile() truncated the rank, so p99 of a small
 * sample set could land on the same element as p50.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/stats.h"

namespace hdvb {
namespace {

TEST(Stats, PercentileEmptyAndSingle)
{
    EXPECT_EQ(percentile_sorted({}, 0.5), 0.0);
    EXPECT_EQ(percentile_sorted({}, 0.99), 0.0);
    const std::vector<double> one = {7.5};
    EXPECT_EQ(percentile_sorted(one, 0.0), 7.5);
    EXPECT_EQ(percentile_sorted(one, 0.5), 7.5);
    EXPECT_EQ(percentile_sorted(one, 0.99), 7.5);
    EXPECT_EQ(percentile_sorted(one, 1.0), 7.5);
}

TEST(Stats, PercentileNearestRank)
{
    // N=10, values 1..10. Nearest rank: ceil(q*N)-1.
    std::vector<double> v;
    for (int i = 1; i <= 10; ++i)
        v.push_back(i);
    EXPECT_EQ(percentile_sorted(v, 0.50), 5.0);   // ceil(5)-1 = idx 4
    EXPECT_EQ(percentile_sorted(v, 0.95), 10.0);  // ceil(9.5)-1 = idx 9
    EXPECT_EQ(percentile_sorted(v, 0.99), 10.0);
    EXPECT_EQ(percentile_sorted(v, 1.00), 10.0);
    EXPECT_EQ(percentile_sorted(v, 0.10), 1.0);
    EXPECT_EQ(percentile_sorted(v, 0.11), 2.0);
    // q clamped, not UB.
    EXPECT_EQ(percentile_sorted(v, -1.0), 1.0);
    EXPECT_EQ(percentile_sorted(v, 2.0), 10.0);
}

TEST(Stats, PercentileSmallNDoesNotCollapse)
{
    // The old truncated-rank version computed index = trunc(q*N),
    // which for exact multiples selected the element *above* the
    // requested rank (p50 of {1,2} was 2), and for tail percentiles
    // of tiny sets could disagree with the nearest-rank definition.
    const std::vector<double> two = {1.0, 2.0};
    EXPECT_EQ(percentile_sorted(two, 0.50), 1.0);  // lower middle
    EXPECT_EQ(percentile_sorted(two, 0.51), 2.0);
    EXPECT_EQ(percentile_sorted(two, 0.99), 2.0);

    // Adversarial: a heavy outlier in a 4-sample set must be p99 but
    // not p50.
    const std::vector<double> skew = {1.0, 1.0, 1.0, 1000.0};
    EXPECT_EQ(percentile_sorted(skew, 0.50), 1.0);
    EXPECT_EQ(percentile_sorted(skew, 0.75), 1.0);
    EXPECT_EQ(percentile_sorted(skew, 0.76), 1000.0);
    EXPECT_EQ(percentile_sorted(skew, 0.99), 1000.0);
}

TEST(Stats, PercentileTiedValues)
{
    const std::vector<double> tied = {3.0, 3.0, 3.0, 3.0, 3.0};
    EXPECT_EQ(percentile_sorted(tied, 0.01), 3.0);
    EXPECT_EQ(percentile_sorted(tied, 0.50), 3.0);
    EXPECT_EQ(percentile_sorted(tied, 0.99), 3.0);
}

TEST(Stats, MedianEvenOddEmpty)
{
    EXPECT_EQ(median_sorted({}), 0.0);
    EXPECT_EQ(median_sorted({4.0}), 4.0);
    EXPECT_EQ(median_sorted({1.0, 3.0}), 2.0);  // midpoint when even
    EXPECT_EQ(median_sorted({1.0, 2.0, 9.0}), 2.0);
    EXPECT_EQ(median_sorted({1.0, 2.0, 3.0, 100.0}), 2.5);
}

TEST(Stats, MeanAndStddev)
{
    EXPECT_EQ(mean({}), 0.0);
    EXPECT_EQ(mean({2.0, 4.0}), 3.0);
    EXPECT_EQ(sample_stddev({}), 0.0);
    EXPECT_EQ(sample_stddev({5.0}), 0.0);  // N-1 would divide by zero
    // {2,4,4,4,5,5,7,9}: mean 5, sample variance 32/7.
    const std::vector<double> v = {2, 4, 4, 4, 5, 5, 7, 9};
    EXPECT_NEAR(sample_stddev(v), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Stats, CoefficientOfVariation)
{
    EXPECT_EQ(coefficient_of_variation({}), 0.0);
    EXPECT_EQ(coefficient_of_variation({42.0}), 0.0);
    EXPECT_EQ(coefficient_of_variation({5.0, 5.0, 5.0}), 0.0);
    // Zero mean: CoV undefined, reported as 0 rather than inf.
    EXPECT_EQ(coefficient_of_variation({-1.0, 1.0}), 0.0);
    const std::vector<double> v = {90.0, 100.0, 110.0};
    EXPECT_NEAR(coefficient_of_variation(v), 10.0 / 100.0, 1e-12);
}

TEST(Stats, SummarizeSortsOnce)
{
    // Unsorted input; every derived statistic must agree with the
    // sorted view.
    const SampleSummary s = summarize({5.0, 1.0, 3.0, 2.0, 4.0});
    EXPECT_EQ(s.count, 5u);
    EXPECT_EQ(s.min, 1.0);
    EXPECT_EQ(s.max, 5.0);
    EXPECT_EQ(s.mean, 3.0);
    EXPECT_EQ(s.median, 3.0);
    EXPECT_NEAR(s.stddev, std::sqrt(2.5), 1e-12);
    EXPECT_NEAR(s.cov, std::sqrt(2.5) / 3.0, 1e-12);

    const SampleSummary empty = summarize({});
    EXPECT_EQ(empty.count, 0u);
    EXPECT_EQ(empty.median, 0.0);
    EXPECT_EQ(empty.cov, 0.0);
}

TEST(Stats, SortSamples)
{
    std::vector<double> v = {3.0, 1.0, 2.0};
    sort_samples(&v);
    EXPECT_EQ(v, (std::vector<double>{1.0, 2.0, 3.0}));
}

}  // namespace
}  // namespace hdvb
