/**
 * @file
 * End-to-end codec tests, parameterised over all three codecs and
 * every SIMD level: decode reproduces display order, quality floors
 * hold,
 * bitstreams are invariant to the SIMD level and to the intra-codec
 * thread count (CodecConfig::threads) and deterministic, rate responds
 * monotonically to the quantiser, and corrupt streams are rejected
 * cleanly.
 */
#include <gtest/gtest.h>

#include <random>

#include "container/container.h"
#include "core/benchmark.h"
#include "fault/fault.h"
#include "metrics/psnr.h"
#include "synth/synth.h"

namespace hdvb {
namespace {

constexpr int kW = 64;
constexpr int kH = 48;

CodecConfig
small_config(SimdLevel simd)
{
    CodecConfig cfg;
    cfg.width = kW;
    cfg.height = kH;
    cfg.qscale = 5;
    cfg.qp = 26;
    cfg.me_range = 8;
    cfg.refs = 2;
    cfg.simd = simd;
    return cfg;
}

struct CodecRun {
    EncodedStream stream;
    std::vector<Frame> decoded;
};

CodecRun
encode_decode(CodecId codec, const CodecConfig &cfg, SequenceId seq,
              int frames)
{
    CodecRun run;
    run.stream.codec = codec_name(codec);
    run.stream.width = cfg.width;
    run.stream.height = cfg.height;
    std::unique_ptr<VideoEncoder> enc =
        make_encoder(codec, cfg).value();
    SyntheticSource source(seq, cfg.width, cfg.height);
    for (int i = 0; i < frames; ++i)
        EXPECT_TRUE(enc->encode(source.next(),
                                &run.stream.packets).is_ok());
    EXPECT_TRUE(enc->flush(&run.stream.packets).is_ok());

    std::unique_ptr<VideoDecoder> dec =
        make_decoder(codec, cfg).value();
    for (const Packet &packet : run.stream.packets)
        EXPECT_TRUE(dec->decode(packet, &run.decoded).is_ok());
    EXPECT_TRUE(dec->flush(&run.decoded).is_ok());
    return run;
}

using CodecSimd = std::tuple<CodecId, int>;

class CodecRoundTrip : public ::testing::TestWithParam<CodecSimd>
{
  protected:
    void
    SetUp() override
    {
        const auto level =
            static_cast<SimdLevel>(std::get<1>(GetParam()));
        if (level > detected_simd_level()) {
            GTEST_SKIP() << simd_level_name(level)
                         << " not supported on this CPU/build";
        }
    }
};

TEST_P(CodecRoundTrip, DisplayOrderAndFrameCount)
{
    const auto [codec, level] = GetParam();
    const auto simd = static_cast<SimdLevel>(level);
    const int frames = 10;
    const CodecRun run = encode_decode(codec, small_config(simd),
                                       SequenceId::kRushHour, frames);
    ASSERT_EQ(run.decoded.size(), static_cast<size_t>(frames));
    for (int i = 0; i < frames; ++i)
        EXPECT_EQ(run.decoded[i].poc(), i) << "display order broken";
    EXPECT_EQ(run.stream.packets.size(), static_cast<size_t>(frames));
    EXPECT_EQ(run.stream.packets[0].type, PictureType::kI);
}

TEST_P(CodecRoundTrip, QualityFloorHolds)
{
    const auto [codec, level] = GetParam();
    const auto simd = static_cast<SimdLevel>(level);
    const CodecRun run = encode_decode(codec, small_config(simd),
                                       SequenceId::kPedestrianArea, 8);
    SyntheticSource source(SequenceId::kPedestrianArea, kW, kH);
    PsnrAccumulator acc;
    for (const Frame &frame : run.decoded)
        acc.add(source.at(static_cast<int>(frame.poc())), frame);
    EXPECT_GT(acc.psnr_y(), 34.0);
    EXPECT_GT(acc.psnr_all(), 34.0);
}

TEST_P(CodecRoundTrip, EncoderIsDeterministic)
{
    const auto [codec, level] = GetParam();
    const auto simd = static_cast<SimdLevel>(level);
    const CodecConfig cfg = small_config(simd);
    const CodecRun a =
        encode_decode(codec, cfg, SequenceId::kBlueSky, 6);
    const CodecRun b =
        encode_decode(codec, cfg, SequenceId::kBlueSky, 6);
    ASSERT_EQ(a.stream.packets.size(), b.stream.packets.size());
    for (size_t i = 0; i < a.stream.packets.size(); ++i)
        EXPECT_EQ(a.stream.packets[i].data, b.stream.packets[i].data);
}

TEST_P(CodecRoundTrip, AllPictureTypesAppear)
{
    const auto [codec, level] = GetParam();
    const auto simd = static_cast<SimdLevel>(level);
    const CodecRun run = encode_decode(codec, small_config(simd),
                                       SequenceId::kRushHour, 8);
    int counts[3] = {};
    for (const Packet &packet : run.stream.packets)
        ++counts[static_cast<int>(packet.type)];
    EXPECT_EQ(counts[0], 1);  // single leading I (paper Section IV)
    EXPECT_GT(counts[1], 0);  // P anchors
    EXPECT_GT(counts[2], 0);  // B pictures
}

TEST_P(CodecRoundTrip, CorruptPacketsRejectedNotCrashing)
{
    const auto [codec, level] = GetParam();
    const auto simd = static_cast<SimdLevel>(level);
    const CodecConfig cfg = small_config(simd);
    CodecRun run =
        encode_decode(codec, cfg, SequenceId::kRiverbed, 6);
    std::mt19937 rng(3);
    int rejected = 0;
    const int trials = 20;
    for (int t = 0; t < trials; ++t) {
        EncodedStream mangled = run.stream;
        // Corrupt one packet: flip bytes or truncate.
        Packet &victim =
            mangled.packets[rng() % mangled.packets.size()];
        if (victim.data.empty())
            continue;
        if (t % 2 == 0) {
            for (int k = 0; k < 5; ++k)
                victim.data[rng() % victim.data.size()] ^=
                    static_cast<u8>(1 + rng() % 255);
        } else {
            victim.data.resize(victim.data.size() / 2);
        }
        std::unique_ptr<VideoDecoder> dec =
            make_decoder(codec, cfg).value();
        std::vector<Frame> frames;
        bool ok = true;
        for (const Packet &packet : mangled.packets) {
            if (!dec->decode(packet, &frames).is_ok()) {
                ok = false;
                break;
            }
        }
        if (!ok)
            ++rejected;
        // Either outcome is fine; the requirement is no crash/UB and
        // any successfully decoded frames have sane geometry.
        for (const Frame &frame : frames) {
            EXPECT_EQ(frame.width(), kW);
            EXPECT_EQ(frame.height(), kH);
        }
    }
    SUCCEED() << rejected << "/" << trials << " corruptions rejected";
}

TEST_P(CodecRoundTrip, MissingReferenceRejected)
{
    const auto [codec, level] = GetParam();
    const auto simd = static_cast<SimdLevel>(level);
    const CodecConfig cfg = small_config(simd);
    CodecRun run = encode_decode(codec, cfg, SequenceId::kBlueSky, 6);
    // Feed a P/B packet to a fresh decoder with no I first.
    std::unique_ptr<VideoDecoder> dec =
        make_decoder(codec, cfg).value();
    std::vector<Frame> frames;
    ASSERT_GE(run.stream.packets.size(), 2u);
    EXPECT_FALSE(dec->decode(run.stream.packets[1], &frames).is_ok());
}

INSTANTIATE_TEST_SUITE_P(
    AllCodecsAllLevels, CodecRoundTrip,
    ::testing::Combine(::testing::Values(CodecId::kMpeg2,
                                         CodecId::kMpeg4,
                                         CodecId::kH264),
                       ::testing::Range(0, kSimdLevelCount)),
    [](const ::testing::TestParamInfo<CodecSimd> &info) {
        return std::string(codec_name(std::get<0>(info.param))) + "_" +
               simd_level_name(
                   static_cast<SimdLevel>(std::get<1>(info.param)));
    });

// ---- SIMD-level invariance: the Figure 1 axis must not change output

class SimdInvariance : public ::testing::TestWithParam<CodecId>
{
  protected:
    void
    SetUp() override
    {
        if (detected_simd_level() == SimdLevel::kScalar)
            GTEST_SKIP() << "no SIMD level beyond scalar on this "
                            "CPU/build";
    }
};

TEST_P(SimdInvariance, BitstreamAndOutputIdenticalAcrossLevels)
{
    const CodecId codec = GetParam();
    const CodecRun scalar = encode_decode(
        codec, small_config(SimdLevel::kScalar), SequenceId::kRushHour,
        7);
    for (int l = 1; l <= static_cast<int>(detected_simd_level()); ++l) {
        const auto level = static_cast<SimdLevel>(l);
        SCOPED_TRACE(simd_level_name(level));
        const CodecRun simd = encode_decode(
            codec, small_config(level), SequenceId::kRushHour, 7);
        ASSERT_EQ(scalar.stream.packets.size(),
                  simd.stream.packets.size());
        for (size_t i = 0; i < scalar.stream.packets.size(); ++i) {
            EXPECT_EQ(scalar.stream.packets[i].data,
                      simd.stream.packets[i].data)
                << "bitstream differs at packet " << i;
        }
        ASSERT_EQ(scalar.decoded.size(), simd.decoded.size());
        for (size_t i = 0; i < scalar.decoded.size(); ++i) {
            EXPECT_EQ(plane_sse(scalar.decoded[i].luma(),
                                simd.decoded[i].luma()),
                      0u);
        }
    }
}

TEST_P(SimdInvariance, CrossLevelDecodeMatches)
{
    // Encode at the strongest level, decode at every weaker one:
    // still identical pixels.
    const CodecId codec = GetParam();
    const CodecConfig enc_cfg = small_config(detected_simd_level());
    const CodecRun simd_run = encode_decode(
        codec, enc_cfg, SequenceId::kPedestrianArea, 7);
    for (int l = 0; l < static_cast<int>(detected_simd_level()); ++l) {
        const auto level = static_cast<SimdLevel>(l);
        SCOPED_TRACE(simd_level_name(level));
        const CodecConfig dec_cfg = small_config(level);
        std::unique_ptr<VideoDecoder> dec =
            make_decoder(codec, dec_cfg).value();
        std::vector<Frame> frames;
        for (const Packet &packet : simd_run.stream.packets)
            ASSERT_TRUE(dec->decode(packet, &frames).is_ok());
        dec->flush(&frames);
        ASSERT_EQ(frames.size(), simd_run.decoded.size());
        for (size_t i = 0; i < frames.size(); ++i)
            EXPECT_EQ(plane_sse(frames[i].luma(),
                                simd_run.decoded[i].luma()),
                      0u);
    }
}

INSTANTIATE_TEST_SUITE_P(AllCodecs, SimdInvariance,
                         ::testing::Values(CodecId::kMpeg2,
                                           CodecId::kMpeg4,
                                           CodecId::kH264),
                         [](const ::testing::TestParamInfo<CodecId> &i) {
                             return codec_name(i.param);
                         });

// ---- thread-count invariance: CodecConfig::threads is a pure
// wall-clock knob, so the band-parallel paths must reproduce the
// single-threaded bitstream and reconstruction exactly ----

class ThreadInvariance : public ::testing::TestWithParam<CodecId> {};

TEST_P(ThreadInvariance, BitstreamAndReconIdenticalAcrossThreadCounts)
{
    const CodecId codec = GetParam();
    const CodecConfig base = small_config(best_simd_level());
    const CodecRun serial =
        encode_decode(codec, base, SequenceId::kRushHour, 8);
    for (int threads : {2, 4}) {
        SCOPED_TRACE(std::string(codec_name(codec)) + " threads=" +
                     std::to_string(threads));
        CodecConfig cfg = base;
        cfg.threads = threads;
        const CodecRun run =
            encode_decode(codec, cfg, SequenceId::kRushHour, 8);
        ASSERT_EQ(run.stream.packets.size(),
                  serial.stream.packets.size());
        for (size_t i = 0; i < serial.stream.packets.size(); ++i) {
            EXPECT_EQ(run.stream.packets[i].data,
                      serial.stream.packets[i].data)
                << "bitstream differs at packet " << i;
        }
        ASSERT_EQ(run.decoded.size(), serial.decoded.size());
        for (size_t i = 0; i < serial.decoded.size(); ++i) {
            for (int p = 0; p < 3; ++p) {
                EXPECT_EQ(plane_sse(run.decoded[i].plane(p),
                                    serial.decoded[i].plane(p)),
                          0u)
                    << "recon differs at frame " << i << " plane " << p;
            }
        }
    }
}

TEST_P(ThreadInvariance, ResilientConcealmentMatchesAcrossThreadCounts)
{
    // The resilient decode path is where the parallel row/wavefront
    // machinery does real work (resync, per-row parsing, concealment).
    // Corrupt a resilient stream deterministically and require the
    // threaded decoders to produce the threads=1 pixels and counters.
    const CodecId codec = GetParam();
    CodecConfig cfg = small_config(best_simd_level());
    cfg.error_resilience = true;

    const CodecRun clean =
        encode_decode(codec, cfg, SequenceId::kRiverbed, 8);
    FaultPlan plan;
    plan.seed = 9;
    plan.flip_density = 2e-3;
    plan.protect_first_packet = true;
    const EncodedStream corrupted = corrupted_copy(clean.stream, plan);

    std::vector<Frame> baseline;
    DecodeStats baseline_stats;
    for (int pass = 0; pass < 2; ++pass) {
        for (int threads : {1, 2, 4}) {
            CodecConfig dcfg = cfg;
            dcfg.threads = threads;
            std::unique_ptr<VideoDecoder> dec =
                make_decoder(codec, dcfg).value();
            std::vector<Frame> frames;
            for (const Packet &packet :
                 (pass == 0 ? clean.stream : corrupted).packets)
                (void)dec->decode(packet, &frames);
            dec->flush(&frames);
            if (threads == 1) {
                baseline = std::move(frames);
                baseline_stats = dec->stats().decode;
                if (pass == 1) {
                    EXPECT_GT(baseline_stats.mbs_concealed, 0);
                }
                continue;
            }
            SCOPED_TRACE(std::string(codec_name(codec)) +
                         (pass == 0 ? " clean" : " corrupted") +
                         " threads=" + std::to_string(threads));
            ASSERT_EQ(frames.size(), baseline.size());
            for (size_t i = 0; i < frames.size(); ++i) {
                for (int p = 0; p < 3; ++p) {
                    EXPECT_EQ(plane_sse(frames[i].plane(p),
                                        baseline[i].plane(p)),
                              0u)
                        << "frame " << i << " plane " << p;
                }
            }
            const DecodeStats stats = dec->stats().decode;
            EXPECT_EQ(stats.mbs_concealed,
                      baseline_stats.mbs_concealed);
            EXPECT_EQ(stats.resyncs, baseline_stats.resyncs);
            EXPECT_EQ(stats.pictures_dropped,
                      baseline_stats.pictures_dropped);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(AllCodecs, ThreadInvariance,
                         ::testing::Values(CodecId::kMpeg2,
                                           CodecId::kMpeg4,
                                           CodecId::kH264),
                         [](const ::testing::TestParamInfo<CodecId> &i) {
                             return codec_name(i.param);
                         });

// ---- rate control behaviour ----

class RateMonotonicity : public ::testing::TestWithParam<CodecId> {};

TEST_P(RateMonotonicity, CoarserQuantiserSpendsFewerBits)
{
    const CodecId codec = GetParam();
    CodecConfig fine = small_config(best_simd_level());
    CodecConfig coarse = fine;
    fine.qscale = 3;
    fine.qp = 20;
    coarse.qscale = 16;
    coarse.qp = 40;
    const CodecRun fine_run =
        encode_decode(codec, fine, SequenceId::kRiverbed, 6);
    const CodecRun coarse_run =
        encode_decode(codec, coarse, SequenceId::kRiverbed, 6);
    EXPECT_GT(fine_run.stream.total_bits(),
              coarse_run.stream.total_bits());

    SyntheticSource source(SequenceId::kRiverbed, kW, kH);
    PsnrAccumulator fine_psnr, coarse_psnr;
    for (const Frame &frame : fine_run.decoded)
        fine_psnr.add(source.at(static_cast<int>(frame.poc())), frame);
    for (const Frame &frame : coarse_run.decoded)
        coarse_psnr.add(source.at(static_cast<int>(frame.poc())),
                        frame);
    EXPECT_GT(fine_psnr.psnr_y(), coarse_psnr.psnr_y());
}

INSTANTIATE_TEST_SUITE_P(AllCodecs, RateMonotonicity,
                         ::testing::Values(CodecId::kMpeg2,
                                           CodecId::kMpeg4,
                                           CodecId::kH264),
                         [](const ::testing::TestParamInfo<CodecId> &i) {
                             return codec_name(i.param);
                         });

// ---- GOP structure variants ----

class GopVariants : public ::testing::TestWithParam<int> {};

TEST_P(GopVariants, BframeCountsRoundTrip)
{
    const int bframes = GetParam();
    for (CodecId codec : kAllCodecs) {
        CodecConfig cfg = small_config(best_simd_level());
        cfg.bframes = bframes;
        const int frames = 9;
        const CodecRun run =
            encode_decode(codec, cfg, SequenceId::kRushHour, frames);
        ASSERT_EQ(run.decoded.size(), static_cast<size_t>(frames))
            << codec_name(codec) << " bframes=" << bframes;
        for (int i = 0; i < frames; ++i)
            EXPECT_EQ(run.decoded[i].poc(), i);
    }
}

INSTANTIATE_TEST_SUITE_P(BframeSweep, GopVariants,
                         ::testing::Values(0, 1, 2, 3));

TEST(Flush, TrailingBframesAreEmittedOnFlush)
{
    // 6 frames with bframes=2: display 0..5; frame 4,5 pend at flush.
    CodecConfig cfg = small_config(best_simd_level());
    const CodecRun run = encode_decode(CodecId::kMpeg2, cfg,
                                       SequenceId::kBlueSky, 6);
    ASSERT_EQ(run.decoded.size(), 6u);
    for (int i = 0; i < 6; ++i)
        EXPECT_EQ(run.decoded[i].poc(), i);
}

TEST(Encode, RejectsWrongFrameSize)
{
    CodecConfig cfg = small_config(best_simd_level());
    std::unique_ptr<VideoEncoder> enc =
        make_encoder(CodecId::kH264, cfg).value();
    Frame wrong(kW * 2, kH * 2);
    std::vector<Packet> packets;
    EXPECT_FALSE(enc->encode(wrong, &packets).is_ok());
}

}  // namespace
}  // namespace hdvb
