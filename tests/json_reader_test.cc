/**
 * @file
 * Unit tests for the JSON parser (common/json_reader.h) the BENCH
 * comparator and the regression sweep use to ingest reports —
 * including the writer -> reader exact double round trip that the
 * perf trajectory's numerics depend on.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>

#include "common/json_reader.h"
#include "common/json_writer.h"

namespace hdvb {
namespace {

JsonValue
parse_ok(const std::string &text)
{
    StatusOr<JsonValue> parsed = parse_json(text);
    EXPECT_TRUE(parsed.is_ok()) << parsed.status().to_string();
    return parsed.is_ok() ? std::move(parsed.value()) : JsonValue();
}

TEST(JsonReader, ParsesScalars)
{
    EXPECT_TRUE(parse_ok("null").is_null());
    EXPECT_TRUE(parse_ok("true").as_bool());
    EXPECT_FALSE(parse_ok("false").as_bool(true));
    EXPECT_EQ(parse_ok("42").as_double(), 42.0);
    EXPECT_EQ(parse_ok("-1.5e3").as_double(), -1500.0);
    EXPECT_EQ(parse_ok("\"hi\"").as_string(), "hi");
}

TEST(JsonReader, ParsesNestedDocument)
{
    const JsonValue doc = parse_ok(
        "{\"a\": [1, 2.5, \"x\"], \"b\": {\"c\": true}, "
        "\"d\": null}");
    ASSERT_TRUE(doc.is_object());
    EXPECT_EQ(doc.size(), 3u);
    const JsonValue &a = doc.get("a");
    ASSERT_TRUE(a.is_array());
    EXPECT_EQ(a.size(), 3u);
    EXPECT_EQ(a.at(0).as_double(), 1.0);
    EXPECT_EQ(a.at(1).as_double(), 2.5);
    EXPECT_EQ(a.at(2).as_string(), "x");
    EXPECT_TRUE(a.at(99).is_null());  // out of range: null sentinel
    EXPECT_TRUE(doc.get("b").get("c").as_bool());
    EXPECT_TRUE(doc.get("d").is_null());
    EXPECT_TRUE(doc.get("absent").is_null());
    EXPECT_EQ(doc.find("absent"), nullptr);
}

TEST(JsonReader, StringEscapes)
{
    EXPECT_EQ(parse_ok("\"a\\\"b\\\\c\\nd\\te\"").as_string(),
              "a\"b\\c\nd\te");
    EXPECT_EQ(parse_ok("\"\\u0041\"").as_string(), "A");
    EXPECT_EQ(parse_ok("\"\\u00e9\"").as_string(), "\xc3\xa9");
    // Surrogate pair: U+1F600.
    EXPECT_EQ(parse_ok("\"\\ud83d\\ude00\"").as_string(),
              "\xf0\x9f\x98\x80");
}

TEST(JsonReader, RejectsMalformedInput)
{
    EXPECT_FALSE(parse_json("").is_ok());
    EXPECT_FALSE(parse_json("{").is_ok());
    EXPECT_FALSE(parse_json("[1,]").is_ok());
    EXPECT_FALSE(parse_json("{\"a\":1,}").is_ok());
    EXPECT_FALSE(parse_json("{'a':1}").is_ok());
    EXPECT_FALSE(parse_json("tru").is_ok());
    EXPECT_FALSE(parse_json("1 2").is_ok());  // trailing garbage
    EXPECT_FALSE(parse_json("\"unterminated").is_ok());
    EXPECT_FALSE(parse_json("{\"a\" 1}").is_ok());
    EXPECT_FALSE(parse_json("nan").is_ok());
}

TEST(JsonReader, WriterReaderDoubleRoundTripIsExact)
{
    // The perf pipeline's contract: every double survives
    // JsonWriter::value -> parse_json bit for bit.
    const double values[] = {
        0.0,
        -0.0,
        1.0 / 3.0,
        0.1,
        2.5,
        1e-300,
        1.7976931348623157e308,   // DBL_MAX
        4.9406564584124654e-324,  // min subnormal
        123456789.123456789,
        -987654321.0e-12,
        943.112,                  // a BENCH_7 fps value
        std::numeric_limits<double>::epsilon(),
    };
    for (const double v : values) {
        JsonWriter json;
        json.begin_array();
        json.value(v);
        json.end_array();
        const JsonValue parsed = parse_ok(json.str());
        ASSERT_EQ(parsed.size(), 1u) << json.str();
        const double back = parsed.at(0).as_double();
        EXPECT_EQ(std::memcmp(&back, &v, sizeof v), 0)
            << "not bit-exact: " << json.str();
    }
}

TEST(JsonReader, SerializeRoundTrip)
{
    const std::string text =
        "{\"schema\":\"hdvb-bench/2\",\"x\":[1.5,true,null,"
        "\"s\"],\"nested\":{\"fps\":943.112}}";
    const JsonValue doc = parse_ok(text);
    EXPECT_EQ(doc.to_json(), text);
}

TEST(JsonReader, ParseFileErrorsNameTheFile)
{
    const StatusOr<JsonValue> missing =
        parse_json_file("/nonexistent/report.json");
    ASSERT_FALSE(missing.is_ok());
    EXPECT_NE(missing.status().message().find("/nonexistent"),
              std::string::npos);
}

}  // namespace
}  // namespace hdvb
