/**
 * @file
 * Unit tests for the video substrate: planes, frames, border handling
 * and Y4M file I/O.
 */
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "synth/synth.h"
#include "video/frame.h"
#include "video/y4m.h"

namespace hdvb {
namespace {

TEST(Plane, DimensionsAndStride)
{
    Plane plane(64, 32, 8);
    EXPECT_EQ(plane.width(), 64);
    EXPECT_EQ(plane.height(), 32);
    EXPECT_EQ(plane.border(), 8);
    // The aligned layout: stride is a multiple of kRowAlign and leaves
    // room for the interior, both borders and the overread slack.
    EXPECT_EQ(plane.stride() % Plane::kRowAlign, 0);
    EXPECT_GE(plane.stride(),
              plane.left_pad() + 64 + 8 + Plane::kRightSlack);
    EXPECT_EQ(plane.left_pad(), Plane::kRowAlign);  // round_up(8, 32)
    EXPECT_FALSE(plane.empty());
}

TEST(Plane, RowsAreAlignedAtEveryY)
{
    // Luma-style (border 32) and chroma-style (border 16) geometries,
    // plus a border-0 source plane: every row start must satisfy the
    // kRowAlign contract the SIMD aligned-load kernels rely on.
    for (int border : {0, 16, 32}) {
        Plane plane(48, 32, border);
        for (int y = -border; y < 32 + border; ++y) {
            EXPECT_EQ(reinterpret_cast<uintptr_t>(plane.row(y)) %
                          Plane::kRowAlign,
                      0u)
                << "border " << border << " row " << y;
        }
    }
}

TEST(Plane, ExtendBordersFillsFullRowPadding)
{
    Plane plane(16, 8, 4);
    plane.fill(9);
    plane.at(0, 0) = 1;
    plane.at(15, 0) = 2;
    plane.extend_borders();
    // The whole left pad and right slack replicate the edge samples,
    // not just the border samples — every row byte is deterministic.
    const Pixel *r = plane.row(0);
    for (int x = -plane.left_pad(); x < 0; ++x)
        EXPECT_EQ(r[x], 1) << x;
    for (int x = 16; x < plane.stride() - plane.left_pad(); ++x)
        EXPECT_EQ(r[x], 2) << x;
}

TEST(Plane, FillTouchesInteriorOnly)
{
    Plane plane(16, 16, 4);
    plane.fill(200);
    EXPECT_EQ(plane.at(0, 0), 200);
    EXPECT_EQ(plane.at(15, 15), 200);
    EXPECT_EQ(plane.at(-1, 0), 0);  // border untouched
}

TEST(Plane, ExtendBordersReplicatesEdges)
{
    Plane plane(8, 8, 4);
    for (int y = 0; y < 8; ++y)
        for (int x = 0; x < 8; ++x)
            plane.at(x, y) = static_cast<Pixel>(10 * y + x);
    plane.extend_borders();
    EXPECT_EQ(plane.at(-1, 0), plane.at(0, 0));
    EXPECT_EQ(plane.at(-4, 3), plane.at(0, 3));
    EXPECT_EQ(plane.at(8, 5), plane.at(7, 5));
    EXPECT_EQ(plane.at(11, 7), plane.at(7, 7));
    EXPECT_EQ(plane.at(0, -3), plane.at(0, 0));
    EXPECT_EQ(plane.at(5, 10), plane.at(5, 7));
    EXPECT_EQ(plane.at(-2, -2), plane.at(0, 0));  // corner
    EXPECT_EQ(plane.at(10, 10), plane.at(7, 7));
}

TEST(Plane, CopyFromIgnoresBorderDifferences)
{
    Plane src(8, 8, 0);
    src.fill(77);
    Plane dst(8, 8, 16);
    dst.copy_from(src);
    EXPECT_EQ(dst.at(4, 4), 77);
}

TEST(Frame, AllocatesChromaAtHalfResolution)
{
    Frame frame(64, 48, 32);
    EXPECT_EQ(frame.luma().width(), 64);
    EXPECT_EQ(frame.cb().width(), 32);
    EXPECT_EQ(frame.cr().height(), 24);
    EXPECT_EQ(frame.cb().border(), 16);
}

TEST(Frame, PlaneIndexing)
{
    Frame frame(32, 32);
    EXPECT_EQ(&frame.plane(0), &frame.luma());
    EXPECT_EQ(&frame.plane(1), &frame.cb());
    EXPECT_EQ(&frame.plane(2), &frame.cr());
}

TEST(Frame, CopyFromPreservesPocAndPixels)
{
    Frame a(32, 32);
    a.luma().fill(123);
    a.set_poc(42);
    Frame b(32, 32, 16);
    b.copy_from(a);
    EXPECT_EQ(b.poc(), 42);
    EXPECT_EQ(b.luma().at(10, 10), 123);
}

TEST(Y4m, WriteReadRoundTrip)
{
    const std::string path =
        ::testing::TempDir() + "/hdvb_y4m_test.y4m";
    Frame frame(64, 48);
    generate_frame(SequenceId::kRushHour, 0, &frame);

    {
        Y4mWriter writer;
        ASSERT_TRUE(writer.open(path, 64, 48, 25, 1).is_ok());
        ASSERT_TRUE(writer.write_frame(frame).is_ok());
        Frame frame2(64, 48);
        generate_frame(SequenceId::kRushHour, 1, &frame2);
        ASSERT_TRUE(writer.write_frame(frame2).is_ok());
    }

    Y4mReader reader;
    ASSERT_TRUE(reader.open(path).is_ok());
    EXPECT_EQ(reader.width(), 64);
    EXPECT_EQ(reader.height(), 48);
    EXPECT_EQ(reader.fps_num(), 25);

    Frame loaded;
    ASSERT_TRUE(reader.read_frame(&loaded).is_ok());
    EXPECT_EQ(loaded.poc(), 0);
    for (int y = 0; y < 48; ++y)
        for (int x = 0; x < 64; ++x)
            ASSERT_EQ(loaded.luma().at(x, y), frame.luma().at(x, y));
    ASSERT_TRUE(reader.read_frame(&loaded).is_ok());
    EXPECT_EQ(loaded.poc(), 1);
    // End of stream.
    EXPECT_EQ(reader.read_frame(&loaded).code(),
              StatusCode::kOutOfRange);
    std::remove(path.c_str());
}

TEST(Y4m, RejectsGarbageHeader)
{
    const std::string path =
        ::testing::TempDir() + "/hdvb_bad.y4m";
    std::FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("NOT A Y4M FILE\n", f);
    std::fclose(f);
    Y4mReader reader;
    EXPECT_EQ(reader.open(path).code(), StatusCode::kCorruptStream);
    std::remove(path.c_str());
}

/** Write @p header (plus newline) to a temp .y4m and open it. */
Status
open_header(const std::string &header)
{
    const std::string path =
        ::testing::TempDir() + "/hdvb_hdr.y4m";
    std::FILE *f = std::fopen(path.c_str(), "wb");
    EXPECT_NE(f, nullptr);
    std::fputs(header.c_str(), f);
    std::fputc('\n', f);
    std::fclose(f);
    Y4mReader reader;
    const Status status = reader.open(path);
    std::remove(path.c_str());
    return status;
}

TEST(Y4m, RejectsMalformedHeaderFields)
{
    // Partial numbers and empty fields: each one was a silent
    // atoi-prefix (W72x -> 72) or a silent zero before the strict
    // parser; now every one is a hard corrupt-stream error.
    for (const char *header :
         {"YUV4MPEG2 W72x H48 F25:1", "YUV4MPEG2 W72 H4u8 F25:1",
          "YUV4MPEG2 W72 H48 F25", "YUV4MPEG2 W72 H48 F25:",
          "YUV4MPEG2 W72 H48 Fa:1", "YUV4MPEG2 W72 H48 F0:1",
          "YUV4MPEG2 W72 H48 F25:0", "YUV4MPEG2 W-72 H48 F25:1",
          "YUV4MPEG2 H48 F25:1"}) {
        SCOPED_TRACE(header);
        EXPECT_EQ(open_header(header).code(),
                  StatusCode::kCorruptStream);
    }
}

TEST(Y4m, AcceptsStrictHeader)
{
    // The well-formed header still parses (no frames follow, but
    // open() only reads the stream header).
    EXPECT_TRUE(
        open_header("YUV4MPEG2 W72 H48 F30000:1001 Ip A1:1 C420mpeg2")
            .is_ok());
}

TEST(Y4m, RejectsMissingFile)
{
    Y4mReader reader;
    EXPECT_EQ(reader.open("/nonexistent/nope.y4m").code(),
              StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace hdvb
