/**
 * @file
 * The strict argv parser (src/common/cli.h): every path that the old
 * next()/std::atoi idiom got wrong — a trailing flag with no value, a
 * malformed or partial number, an out-of-range value — must be a hard
 * error, and the happy paths must advance the cursor exactly like the
 * hand-rolled loops they replaced.
 */
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/cli.h"

namespace hdvb {
namespace {

/** argv builder: gtest-owned storage, char** view. */
class Argv
{
  public:
    explicit Argv(std::vector<std::string> tokens)
        : tokens_(std::move(tokens))
    {
        for (std::string &token : tokens_)
            argv_.push_back(token.data());
    }

    int argc() const { return static_cast<int>(argv_.size()); }
    char **argv() { return argv_.data(); }

  private:
    std::vector<std::string> tokens_;
    std::vector<char *> argv_;
};

TEST(CliValue, ReturnsNextTokenAndAdvances)
{
    Argv a({"prog", "-frames", "25", "-o"});
    int i = 1;
    const StatusOr<const char *> value = cli_value(a.argc(), a.argv(), &i);
    ASSERT_TRUE(value.is_ok());
    EXPECT_STREQ(value.value(), "25");
    EXPECT_EQ(i, 2);
}

TEST(CliValue, TrailingFlagIsAnErrorNotEmptyString)
{
    // The shared next() lambda bug: `player_benchmark -frames` used to
    // return "" here, which atoi turned into frames=0.
    Argv a({"prog", "-frames"});
    int i = 1;
    const StatusOr<const char *> value = cli_value(a.argc(), a.argv(), &i);
    ASSERT_FALSE(value.is_ok());
    EXPECT_EQ(value.status().code(), StatusCode::kInvalidArgument);
    EXPECT_NE(value.status().to_string().find("requires a value"),
              std::string::npos);
}

TEST(CliInt, ParsesFullToken)
{
    const StatusOr<int> v = cli_int("-frames", "250");
    ASSERT_TRUE(v.is_ok());
    EXPECT_EQ(v.value(), 250);
}

TEST(CliInt, AcceptsNegativeWithinRange)
{
    const StatusOr<int> v = cli_int("-bias", "-3", -10, 10);
    ASSERT_TRUE(v.is_ok());
    EXPECT_EQ(v.value(), -3);
}

TEST(CliInt, RejectsEverythingAtoiSilentlyAccepted)
{
    // Each of these was a silent 0 (or a silent prefix) under atoi.
    for (const char *bad : {"", "abc", "12x", "0x10", "3 4", " 7", "7 "}) {
        SCOPED_TRACE(std::string("token \"") + bad + "\"");
        const StatusOr<int> v = cli_int("-frames", bad);
        ASSERT_FALSE(v.is_ok());
        EXPECT_EQ(v.status().code(), StatusCode::kInvalidArgument);
        // The message must name the flag so the user can find it.
        EXPECT_NE(v.status().to_string().find("-frames"),
                  std::string::npos);
    }
}

TEST(CliInt, EnforcesRange)
{
    EXPECT_FALSE(cli_int("-threads", "0", 1, 64).is_ok());
    EXPECT_FALSE(cli_int("-threads", "65", 1, 64).is_ok());
    EXPECT_TRUE(cli_int("-threads", "1", 1, 64).is_ok());
    EXPECT_TRUE(cli_int("-threads", "64", 1, 64).is_ok());
}

TEST(CliInt, RejectsOverflow)
{
    EXPECT_FALSE(cli_int("-frames", "99999999999999999999").is_ok());
}

TEST(CliIntValue, CombinesLookupAndParse)
{
    Argv a({"prog", "-frames", "8"});
    int i = 1;
    const StatusOr<int> v = cli_int_value(a.argc(), a.argv(), &i, 1, 100);
    ASSERT_TRUE(v.is_ok());
    EXPECT_EQ(v.value(), 8);
    EXPECT_EQ(i, 2);
}

TEST(CliIntValue, PropagatesMissingValueAndBadNumber)
{
    {
        Argv a({"prog", "-frames"});
        int i = 1;
        EXPECT_EQ(cli_int_value(a.argc(), a.argv(), &i).status().code(),
                  StatusCode::kInvalidArgument);
    }
    {
        Argv a({"prog", "-frames", "lots"});
        int i = 1;
        EXPECT_EQ(cli_int_value(a.argc(), a.argv(), &i).status().code(),
                  StatusCode::kInvalidArgument);
    }
}

TEST(CliDouble, ParsesFullToken)
{
    const StatusOr<double> v = cli_double("--sigma", "2.5");
    ASSERT_TRUE(v.is_ok());
    EXPECT_DOUBLE_EQ(v.value(), 2.5);
    // Plain integers are valid doubles.
    const StatusOr<double> i = cli_double("--sigma", "3");
    ASSERT_TRUE(i.is_ok());
    EXPECT_DOUBLE_EQ(i.value(), 3.0);
}

TEST(CliDouble, RejectsEverythingAtofSilentlyAccepted)
{
    // atof turned each of these into 0.0 or a silent prefix; nan/inf
    // parsed "successfully" and then poisoned every threshold compare.
    for (const char *bad : {"", "abc", "2.5x", "1e", "3 4", " 7",
                            "nan", "inf", "-inf", "NaN"}) {
        SCOPED_TRACE(std::string("token \"") + bad + "\"");
        const StatusOr<double> v = cli_double("--floor-pct", bad);
        ASSERT_FALSE(v.is_ok());
        EXPECT_EQ(v.status().code(), StatusCode::kInvalidArgument);
        EXPECT_NE(v.status().to_string().find("--floor-pct"),
                  std::string::npos);
    }
}

TEST(CliDouble, EnforcesInclusiveRange)
{
    EXPECT_FALSE(cli_double("--floor-pct", "-0.5", 0.0, 100.0).is_ok());
    EXPECT_FALSE(cli_double("--floor-pct", "100.5", 0.0, 100.0).is_ok());
    EXPECT_TRUE(cli_double("--floor-pct", "0", 0.0, 100.0).is_ok());
    EXPECT_TRUE(cli_double("--floor-pct", "100", 0.0, 100.0).is_ok());
}

TEST(CliDoubleValue, CombinesLookupAndParse)
{
    Argv a({"prog", "--sigma", "4.5"});
    int i = 1;
    const StatusOr<double> v =
        cli_double_value(a.argc(), a.argv(), &i, 0.0, 100.0);
    ASSERT_TRUE(v.is_ok());
    EXPECT_DOUBLE_EQ(v.value(), 4.5);
    EXPECT_EQ(i, 2);
}

TEST(CliDoubleValue, PropagatesMissingValueAndBadNumber)
{
    {
        Argv a({"prog", "--sigma"});
        int i = 1;
        EXPECT_EQ(
            cli_double_value(a.argc(), a.argv(), &i).status().code(),
            StatusCode::kInvalidArgument);
    }
    {
        Argv a({"prog", "--sigma", "much"});
        int i = 1;
        EXPECT_EQ(
            cli_double_value(a.argc(), a.argv(), &i).status().code(),
            StatusCode::kInvalidArgument);
    }
}

TEST(CliUsageError, ReturnsConventionalExitCode)
{
    EXPECT_EQ(cli_usage_error("prog",
                              Status::invalid_argument("boom")),
              2);
}

}  // namespace
}  // namespace hdvb
