/**
 * @file
 * The approximate-computing tier contract (CodecConfig::approx):
 * level 0 is byte-identical to the default configuration's golden
 * streams at every SIMD level and thread count; levels >= 1 produce
 * decodable streams whose quality stays within a pinned bound of
 * level 0; and an approximated stream is itself invariant to the SIMD
 * tier and thread count — approximation must be deterministic, not
 * data-race-shaped.
 */
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "container/container.h"
#include "core/benchmark.h"
#include "metrics/psnr.h"
#include "synth/synth.h"

namespace hdvb {
namespace {

constexpr int kW = 64;
constexpr int kH = 48;
constexpr int kFrames = 8;

CodecConfig
small_config(SimdLevel simd, int approx, int threads)
{
    CodecConfig cfg;
    cfg.width = kW;
    cfg.height = kH;
    cfg.qscale = 5;
    cfg.qp = 26;
    cfg.me_range = 8;
    cfg.refs = 2;
    cfg.simd = simd;
    cfg.approx = approx;
    cfg.threads = threads;
    return cfg;
}

struct CodecRun {
    EncodedStream stream;
    std::vector<Frame> decoded;
};

CodecRun
encode_decode(CodecId codec, const CodecConfig &cfg)
{
    CodecRun run;
    run.stream.codec = codec_name(codec);
    run.stream.width = cfg.width;
    run.stream.height = cfg.height;
    std::unique_ptr<VideoEncoder> enc =
        make_encoder(codec, cfg).value();
    SyntheticSource source(SequenceId::kRushHour, cfg.width,
                           cfg.height);
    for (int i = 0; i < kFrames; ++i)
        EXPECT_TRUE(enc->encode(source.next(),
                                &run.stream.packets).is_ok());
    EXPECT_TRUE(enc->flush(&run.stream.packets).is_ok());

    std::unique_ptr<VideoDecoder> dec =
        make_decoder(codec, cfg).value();
    for (const Packet &packet : run.stream.packets)
        EXPECT_TRUE(dec->decode(packet, &run.decoded).is_ok());
    EXPECT_TRUE(dec->flush(&run.decoded).is_ok());
    return run;
}

void
expect_identical_streams(const CodecRun &a, const CodecRun &b)
{
    ASSERT_EQ(a.stream.packets.size(), b.stream.packets.size());
    for (size_t i = 0; i < a.stream.packets.size(); ++i) {
        EXPECT_EQ(a.stream.packets[i].data, b.stream.packets[i].data)
            << "bitstream differs at packet " << i;
    }
    ASSERT_EQ(a.decoded.size(), b.decoded.size());
    for (size_t i = 0; i < a.decoded.size(); ++i) {
        for (int p = 0; p < 3; ++p) {
            EXPECT_EQ(plane_sse(a.decoded[i].plane(p),
                                b.decoded[i].plane(p)),
                      0u)
                << "recon differs at frame " << i << " plane " << p;
        }
    }
}

double
psnr_y_vs_source(const CodecRun &run)
{
    SyntheticSource source(SequenceId::kRushHour, kW, kH);
    PsnrAccumulator acc;
    for (const Frame &frame : run.decoded)
        acc.add(source.at(static_cast<int>(frame.poc())), frame);
    return acc.psnr_y();
}

class ApproxContract : public ::testing::TestWithParam<CodecId> {};

TEST_P(ApproxContract, LevelZeroIsGoldenAcrossSimdAndThreads)
{
    // approx is default-0, so the default config defines the golden
    // stream; an explicit approx=0 must reproduce it byte for byte at
    // every SIMD level and thread count.
    const CodecId codec = GetParam();
    const CodecRun golden = encode_decode(
        codec, small_config(SimdLevel::kScalar, /*approx=*/0,
                            /*threads=*/1));
    for (int l = 0; l <= static_cast<int>(detected_simd_level()); ++l) {
        for (int threads : {1, 2, 4}) {
            SCOPED_TRACE(std::string(simd_level_name(
                             static_cast<SimdLevel>(l))) +
                         " threads=" + std::to_string(threads));
            const CodecRun run = encode_decode(
                codec, small_config(static_cast<SimdLevel>(l), 0,
                                    threads));
            expect_identical_streams(golden, run);
        }
    }
}

TEST_P(ApproxContract, HigherLevelsDecodableWithinPinnedPsnrBound)
{
    // Each approximation level must still produce a conforming,
    // decodable stream; the quality cost against the exact level 0
    // encode is pinned per level (the top level trades hard — the
    // low-precision DCT drops whole frequency bands).
    static constexpr double kMaxPsnrDropDb[4] = {0.0, 1.5, 3.0, 15.0};
    const CodecId codec = GetParam();
    const SimdLevel simd = best_simd_level();
    const CodecRun exact =
        encode_decode(codec, small_config(simd, 0, 1));
    const double exact_psnr = psnr_y_vs_source(exact);
    for (int approx = 1; approx <= 3; ++approx) {
        SCOPED_TRACE("approx=" + std::to_string(approx));
        const CodecRun run =
            encode_decode(codec, small_config(simd, approx, 1));
        ASSERT_EQ(run.decoded.size(), exact.decoded.size());
        const double psnr = psnr_y_vs_source(run);
        EXPECT_GE(psnr, exact_psnr - kMaxPsnrDropDb[approx])
            << "level " << approx << " PSNR " << psnr
            << " dB fell more than " << kMaxPsnrDropDb[approx]
            << " dB below level 0's " << exact_psnr << " dB";
    }
}

TEST_P(ApproxContract, ApproxStreamInvariantToSimdAndThreads)
{
    // Approximation decisions depend only on pixels and configuration:
    // the same approx level must emit the identical stream from every
    // kernel tier and thread count.
    const CodecId codec = GetParam();
    for (int approx : {1, 3}) {
        const CodecRun reference = encode_decode(
            codec, small_config(SimdLevel::kScalar, approx, 1));
        for (int l = 0; l <= static_cast<int>(detected_simd_level());
             ++l) {
            for (int threads : {1, 2, 4}) {
                SCOPED_TRACE(
                    "approx=" + std::to_string(approx) + " " +
                    simd_level_name(static_cast<SimdLevel>(l)) +
                    " threads=" + std::to_string(threads));
                const CodecRun run = encode_decode(
                    codec, small_config(static_cast<SimdLevel>(l),
                                        approx, threads));
                expect_identical_streams(reference, run);
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(AllCodecs, ApproxContract,
                         ::testing::Values(CodecId::kMpeg2,
                                           CodecId::kMpeg4,
                                           CodecId::kH264),
                         [](const ::testing::TestParamInfo<CodecId> &i) {
                             return codec_name(i.param);
                         });

TEST(ApproxConfig, ValidateRejectsOutOfRangeLevels)
{
    CodecConfig cfg = small_config(SimdLevel::kScalar, 0, 1);
    EXPECT_TRUE(cfg.validate().is_ok());
    cfg.approx = 3;
    EXPECT_TRUE(cfg.validate().is_ok());
    cfg.approx = 4;
    EXPECT_FALSE(cfg.validate().is_ok());
    cfg.approx = -1;
    EXPECT_FALSE(cfg.validate().is_ok());
}

}  // namespace
}  // namespace hdvb
