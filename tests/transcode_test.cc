/**
 * @file
 * The transcode engine and the analysis-reuse contract, over every
 * decoder/encoder pairing of the three codecs:
 *
 *  - hints are advisory: the hint-seeded stream must stay decodable
 *    and land within a pinned PSNR delta of the full-analysis oracle;
 *  - hints off is a no-op: the engine with reuse disabled reproduces
 *    the direct serial re-encode byte for byte, and an encoder given
 *    an empty HintMap reproduces the unhinted bitstream byte for byte;
 *  - TranscodeInvariance: the hinted output is byte-identical across
 *    codec thread counts {1, 2, 4} and across every SIMD level the
 *    CPU supports.
 */
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "metrics/psnr.h"
#include "synth/synth.h"
#include "transcode/transcode.h"

namespace hdvb {
namespace {

constexpr int kW = 64;
constexpr int kH = 48;
constexpr int kFrames = 9;  ///< one full GOP (I-P-B-B x2) plus change

/** The reuse quality pin: the hinted encode may cost at most this
 * much PSNR-Y against the full-analysis oracle at equal settings. */
constexpr double kMaxPsnrCostDb = 1.0;

CodecConfig
small_config(CodecId codec, SimdLevel simd, int threads = 1)
{
    CodecConfig cfg;
    cfg.width = kW;
    cfg.height = kH;
    cfg.qscale = 5;
    cfg.qp = 26;
    cfg.me_range = 8;
    cfg.refs = 2;
    cfg.simd = simd;
    cfg.threads = threads;
    (void)codec;
    return cfg;
}

/** A small coded stream in codec @p from to feed the engine. */
EncodedStream
make_source(CodecId from, const CodecConfig &cfg)
{
    EncodedStream in;
    in.codec = codec_name(from);
    in.width = cfg.width;
    in.height = cfg.height;
    std::unique_ptr<VideoEncoder> enc = make_encoder(from, cfg).value();
    SyntheticSource source(SequenceId::kRushHour, cfg.width, cfg.height);
    for (int i = 0; i < kFrames; ++i)
        EXPECT_TRUE(enc->encode(source.next(), &in.packets).is_ok());
    EXPECT_TRUE(enc->flush(&in.packets).is_ok());
    return in;
}

TranscodeOptions
small_options(CodecId from, CodecId to, SimdLevel simd, int threads = 1)
{
    TranscodeOptions opt;
    opt.from = from;
    opt.to = to;
    opt.decoder_config = small_config(from, simd, threads);
    opt.encoder_config = small_config(to, simd, threads);
    return opt;
}

/** Decode @p stream with @p codec and return the display frames. */
std::vector<Frame>
decode_all(const EncodedStream &stream, CodecId codec,
           const CodecConfig &cfg)
{
    std::unique_ptr<VideoDecoder> dec = make_decoder(codec, cfg).value();
    std::vector<Frame> frames;
    for (const Packet &packet : stream.packets)
        EXPECT_TRUE(dec->decode(packet, &frames).is_ok());
    EXPECT_TRUE(dec->flush(&frames).is_ok());
    return frames;
}

double
psnr_vs_pristine(const std::vector<Frame> &frames)
{
    SyntheticSource pristine(SequenceId::kRushHour, kW, kH);
    PsnrAccumulator acc;
    for (const Frame &frame : frames)
        acc.add(pristine.at(static_cast<int>(frame.poc())), frame);
    return acc.psnr_y();
}

void
expect_identical_streams(const EncodedStream &a, const EncodedStream &b)
{
    ASSERT_EQ(a.packets.size(), b.packets.size());
    for (size_t i = 0; i < a.packets.size(); ++i)
        EXPECT_EQ(a.packets[i].data, b.packets[i].data)
            << "bitstream differs at packet " << i;
}

/** Every decoder and every encoder appear in at least one pair. */
struct PairParam {
    CodecId from;
    CodecId to;
};

std::string
pair_label(const ::testing::TestParamInfo<PairParam> &info)
{
    return std::string(codec_name(info.param.from)) + "_to_" +
           codec_name(info.param.to);
}

class TranscodePair : public ::testing::TestWithParam<PairParam> {};

TEST_P(TranscodePair, HintedStreamDecodableWithinPinnedPsnrCost)
{
    const auto [from, to] = GetParam();
    const EncodedStream in =
        make_source(from, small_config(from, best_simd_level()));

    TranscodeOptions opt = small_options(from, to, best_simd_level());
    TranscodeResult hinted, full;
    {
        opt.reuse_analysis = true;
        StatusOr<TranscodeResult> r = TranscodeEngine(opt).run(in);
        ASSERT_TRUE(r.is_ok()) << r.status().to_string();
        hinted = std::move(r.value());
    }
    {
        opt.reuse_analysis = false;
        StatusOr<TranscodeResult> r = TranscodeEngine(opt).run(in);
        ASSERT_TRUE(r.is_ok()) << r.status().to_string();
        full = std::move(r.value());
    }

    // Every picture was carried and every exported hint was consumed.
    EXPECT_EQ(hinted.stats.frames, kFrames);
    EXPECT_EQ(full.stats.frames, kFrames);
    EXPECT_EQ(hinted.stats.hints.pushed, kFrames);
    EXPECT_EQ(hinted.stats.hints.taken, kFrames);
    EXPECT_EQ(hinted.stats.hints.missed, 0);
    EXPECT_EQ(full.stats.hints.pushed, 0);

    // The hinted stream must be decodable end to end...
    const std::vector<Frame> hinted_frames = decode_all(
        hinted.stream, to, small_config(to, best_simd_level()));
    ASSERT_EQ(hinted_frames.size(), static_cast<size_t>(kFrames));
    const std::vector<Frame> full_frames = decode_all(
        full.stream, to, small_config(to, best_simd_level()));
    ASSERT_EQ(full_frames.size(), static_cast<size_t>(kFrames));

    // ...and within the pinned quality cost of the oracle.
    const double hinted_db = psnr_vs_pristine(hinted_frames);
    const double full_db = psnr_vs_pristine(full_frames);
    EXPECT_GE(hinted_db, full_db - kMaxPsnrCostDb)
        << "hinted " << hinted_db << " dB vs full " << full_db << " dB";
}

TEST_P(TranscodePair, ReuseOffMatchesDirectReencodeByteForByte)
{
    const auto [from, to] = GetParam();
    const CodecConfig dec_cfg = small_config(from, best_simd_level());
    const CodecConfig enc_cfg = small_config(to, best_simd_level());
    const EncodedStream in = make_source(from, dec_cfg);

    TranscodeOptions opt = small_options(from, to, best_simd_level());
    opt.reuse_analysis = false;
    StatusOr<TranscodeResult> engine = TranscodeEngine(opt).run(in);
    ASSERT_TRUE(engine.is_ok()) << engine.status().to_string();

    // The oracle: plain serial decode, then plain serial encode.
    const std::vector<Frame> frames = decode_all(in, from, dec_cfg);
    EncodedStream direct;
    std::unique_ptr<VideoEncoder> enc = make_encoder(to, enc_cfg).value();
    for (const Frame &frame : frames)
        ASSERT_TRUE(enc->encode(frame, &direct.packets).is_ok());
    ASSERT_TRUE(enc->flush(&direct.packets).is_ok());

    expect_identical_streams(engine.value().stream, direct);
}

TEST_P(TranscodePair, EmptyHintMapIsByteIdenticalToUnhinted)
{
    // take_hints() misses on every picture, so the full-analysis path
    // must run untouched — the null-hint no-op contract of use_hints().
    const auto [from, to] = GetParam();
    const CodecConfig enc_cfg = small_config(to, best_simd_level());
    const std::vector<Frame> frames = decode_all(
        make_source(from, small_config(from, best_simd_level())), from,
        small_config(from, best_simd_level()));

    EncodedStream unhinted, hinted;
    {
        std::unique_ptr<VideoEncoder> enc =
            make_encoder(to, enc_cfg).value();
        for (const Frame &frame : frames)
            ASSERT_TRUE(enc->encode(frame, &unhinted.packets).is_ok());
        ASSERT_TRUE(enc->flush(&unhinted.packets).is_ok());
    }
    {
        std::unique_ptr<VideoEncoder> enc =
            make_encoder(to, enc_cfg).value();
        ASSERT_TRUE(enc->use_hints(std::make_shared<HintMap>()).is_ok());
        for (const Frame &frame : frames)
            ASSERT_TRUE(enc->encode(frame, &hinted.packets).is_ok());
        ASSERT_TRUE(enc->flush(&hinted.packets).is_ok());
    }
    expect_identical_streams(unhinted, hinted);
}

TEST_P(TranscodePair, TranscodeInvarianceAcrossThreadCounts)
{
    // CodecConfig::threads is a wall-clock knob: the hinted transcode
    // must reproduce the single-threaded bitstream exactly (analysis
    // reads hints read-only; entropy replay is serial).
    const auto [from, to] = GetParam();
    const EncodedStream in =
        make_source(from, small_config(from, best_simd_level()));

    StatusOr<TranscodeResult> serial =
        TranscodeEngine(small_options(from, to, best_simd_level(), 1))
            .run(in);
    ASSERT_TRUE(serial.is_ok()) << serial.status().to_string();
    for (int threads : {2, 4}) {
        SCOPED_TRACE("threads=" + std::to_string(threads));
        StatusOr<TranscodeResult> threaded =
            TranscodeEngine(
                small_options(from, to, best_simd_level(), threads))
                .run(in);
        ASSERT_TRUE(threaded.is_ok()) << threaded.status().to_string();
        EXPECT_EQ(threaded.value().stats.hints.taken, kFrames);
        expect_identical_streams(serial.value().stream,
                                 threaded.value().stream);
    }
}

TEST_P(TranscodePair, TranscodeInvarianceAcrossSimdLevels)
{
    // The decoder's exported vectors come from the bitstream and the
    // encoder's kernels are level-equivalent, so the hinted transcode
    // is byte-identical at every SIMD level (scalar is the reference).
    const auto [from, to] = GetParam();
    const EncodedStream in =
        make_source(from, small_config(from, SimdLevel::kScalar));

    StatusOr<TranscodeResult> scalar =
        TranscodeEngine(small_options(from, to, SimdLevel::kScalar))
            .run(in);
    ASSERT_TRUE(scalar.is_ok()) << scalar.status().to_string();
    for (int l = 1; l <= static_cast<int>(detected_simd_level()); ++l) {
        const auto level = static_cast<SimdLevel>(l);
        SCOPED_TRACE(simd_level_name(level));
        StatusOr<TranscodeResult> simd =
            TranscodeEngine(small_options(from, to, level)).run(in);
        ASSERT_TRUE(simd.is_ok()) << simd.status().to_string();
        expect_identical_streams(scalar.value().stream,
                                 simd.value().stream);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllPairings, TranscodePair,
    ::testing::Values(PairParam{CodecId::kMpeg2, CodecId::kMpeg4},
                      PairParam{CodecId::kMpeg4, CodecId::kH264},
                      PairParam{CodecId::kH264, CodecId::kMpeg2},
                      PairParam{CodecId::kMpeg2, CodecId::kH264}),
    pair_label);

TEST(Transcode, RejectsMismatchedInput)
{
    const EncodedStream in = make_source(
        CodecId::kMpeg2, small_config(CodecId::kMpeg2, best_simd_level()));

    // Wrong source codec for the stream.
    TranscodeOptions opt = small_options(
        CodecId::kMpeg4, CodecId::kH264, best_simd_level());
    EXPECT_EQ(TranscodeEngine(opt).run(in).status().code(),
              StatusCode::kInvalidArgument);

    // Wrong geometry.
    opt = small_options(CodecId::kMpeg2, CodecId::kH264,
                        best_simd_level());
    opt.decoder_config.width = kW * 2;
    EXPECT_EQ(TranscodeEngine(opt).run(in).status().code(),
              StatusCode::kInvalidArgument);
}

TEST(Transcode, ReuseRequiresNonResilientDecoder)
{
    const EncodedStream in = make_source(
        CodecId::kMpeg2, small_config(CodecId::kMpeg2, best_simd_level()));
    TranscodeOptions opt = small_options(
        CodecId::kMpeg2, CodecId::kH264, best_simd_level());
    opt.reuse_analysis = true;
    opt.decoder_config.error_resilience = true;
    EXPECT_FALSE(TranscodeEngine(opt).run(in).is_ok());
}

TEST(Transcode, StatsAccounting)
{
    const EncodedStream in = make_source(
        CodecId::kMpeg2, small_config(CodecId::kMpeg2, best_simd_level()));
    TranscodeOptions opt = small_options(
        CodecId::kMpeg2, CodecId::kH264, best_simd_level());
    StatusOr<TranscodeResult> r = TranscodeEngine(opt).run(in);
    ASSERT_TRUE(r.is_ok()) << r.status().to_string();
    const TranscodeStats &stats = r.value().stats;
    EXPECT_EQ(stats.frames, kFrames);
    EXPECT_EQ(stats.bits_in, in.total_bits());
    EXPECT_EQ(stats.bits_out, r.value().stream.total_bits());
    EXPECT_GT(stats.bits_out, 0);
    EXPECT_GT(stats.seconds, 0.0);
    EXPECT_GT(stats.fps(), 0.0);
}

}  // namespace
}  // namespace hdvb
