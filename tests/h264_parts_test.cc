/**
 * @file
 * Unit tests for the H.264-class codec's internal pieces: intra
 * prediction, the CABAC-class syntax binarisations, and the deblocking
 * filter.
 */
#include <gtest/gtest.h>

#include <random>

#include "h264/cabac_syntax.h"
#include "h264/deblock.h"
#include "h264/intra_pred.h"
#include "video/plane.h"

namespace hdvb {
namespace {

using namespace hdvb::h264;

Plane
random_plane(int w, int h, unsigned seed)
{
    Plane plane(w, h, 16);
    std::mt19937 rng(seed);
    for (int y = 0; y < h; ++y)
        for (int x = 0; x < w; ++x)
            plane.at(x, y) = static_cast<Pixel>(rng());
    return plane;
}

// ---- intra prediction ----

TEST(Intra16, DcWithoutNeighboursIs128)
{
    Plane recon = random_plane(64, 64, 1);
    Pixel dst[16 * 16];
    predict_intra16(recon, 0, 0, kI16Dc, dst, 16);
    for (int i = 0; i < 256; ++i)
        EXPECT_EQ(dst[i], 128);
}

TEST(Intra16, VerticalCopiesTopRow)
{
    Plane recon = random_plane(64, 64, 2);
    Pixel dst[16 * 16];
    predict_intra16(recon, 16, 16, kI16Vertical, dst, 16);
    for (int y = 0; y < 16; ++y)
        for (int x = 0; x < 16; ++x)
            ASSERT_EQ(dst[y * 16 + x], recon.at(16 + x, 15));
}

TEST(Intra16, HorizontalCopiesLeftColumn)
{
    Plane recon = random_plane(64, 64, 3);
    Pixel dst[16 * 16];
    predict_intra16(recon, 16, 16, kI16Horizontal, dst, 16);
    for (int y = 0; y < 16; ++y)
        for (int x = 0; x < 16; ++x)
            ASSERT_EQ(dst[y * 16 + x], recon.at(15, 16 + y));
}

TEST(Intra16, PlaneReproducesLinearGradient)
{
    Plane recon(64, 64, 16);
    for (int y = 0; y < 64; ++y)
        for (int x = 0; x < 64; ++x)
            recon.at(x, y) = static_cast<Pixel>(2 * x + y + 10);
    Pixel dst[16 * 16];
    predict_intra16(recon, 16, 16, kI16Plane, dst, 16);
    for (int y = 0; y < 16; ++y) {
        for (int x = 0; x < 16; ++x) {
            const int expected = 2 * (16 + x) + (16 + y) + 10;
            ASSERT_NEAR(dst[y * 16 + x], expected, 2)
                << "(" << x << "," << y << ")";
        }
    }
}

TEST(Intra16, AvailabilityRules)
{
    EXPECT_FALSE(intra16_mode_available(0, 0, kI16Vertical));
    EXPECT_FALSE(intra16_mode_available(0, 16, kI16Horizontal));
    EXPECT_TRUE(intra16_mode_available(0, 0, kI16Dc));
    EXPECT_FALSE(intra16_mode_available(16, 0, kI16Plane));
    EXPECT_TRUE(intra16_mode_available(16, 16, kI16Plane));
}

TEST(Intra4, DcAveragesAvailableNeighbours)
{
    Plane recon(64, 64, 16);
    recon.fill(0);
    for (int x = 0; x < 4; ++x)
        recon.at(16 + x, 15) = 100;  // top row
    for (int y = 0; y < 4; ++y)
        recon.at(15, 16 + y) = 50;  // left column
    Pixel dst[16];
    predict_intra4(recon, 16, 16, kI4Dc, dst, 4);
    EXPECT_EQ(dst[0], 75);
}

TEST(Intra4, VerticalAndHorizontalCopy)
{
    Plane recon = random_plane(64, 64, 4);
    Pixel dst[16];
    predict_intra4(recon, 20, 20, kI4Vertical, dst, 4);
    for (int y = 0; y < 4; ++y)
        for (int x = 0; x < 4; ++x)
            ASSERT_EQ(dst[y * 4 + x], recon.at(20 + x, 19));
    predict_intra4(recon, 20, 20, kI4Horizontal, dst, 4);
    for (int y = 0; y < 4; ++y)
        for (int x = 0; x < 4; ++x)
            ASSERT_EQ(dst[y * 4 + x], recon.at(19, 20 + y));
}

TEST(Intra4, DiagonalModesRunWithoutNeighbourOverrun)
{
    Plane recon = random_plane(64, 64, 5);
    Pixel dst[16];
    // Exercise every position class including edges.
    for (int y0 : {4, 12, 16, 60}) {
        for (int x0 : {4, 12, 28, 60}) {
            if (intra4_mode_available(recon, x0, y0, kI4DiagDownLeft))
                predict_intra4(recon, x0, y0, kI4DiagDownLeft, dst, 4);
            if (intra4_mode_available(recon, x0, y0, kI4DiagDownRight))
                predict_intra4(recon, x0, y0, kI4DiagDownRight, dst, 4);
        }
    }
    SUCCEED();
}

// ---- CABAC-class syntax ----

TEST(CabacSyntax, UeBypassRoundTrip)
{
    RangeEncoder enc;
    for (u32 v = 0; v < 300; ++v)
        encode_ue_bypass(enc, v);
    encode_ue_bypass(enc, 100000);
    const std::vector<u8> bytes = enc.finish();
    RangeDecoder dec(bytes);
    for (u32 v = 0; v < 300; ++v)
        ASSERT_EQ(decode_ue_bypass(dec), v);
    EXPECT_EQ(decode_ue_bypass(dec), 100000u);
}

TEST(CabacSyntax, MvdRoundTrip)
{
    RangeEncoder enc;
    Contexts ectx;
    std::vector<int> values;
    for (int v = -200; v <= 200; v += 7)
        values.push_back(v);
    for (int v : values) {
        encode_mvd(enc, ectx, 0, v);
        encode_mvd(enc, ectx, 1, -v);
    }
    const std::vector<u8> bytes = enc.finish();
    RangeDecoder dec(bytes);
    Contexts dctx;
    for (int v : values) {
        ASSERT_EQ(decode_mvd(dec, dctx, 0), v);
        ASSERT_EQ(decode_mvd(dec, dctx, 1), -v);
    }
}

TEST(CabacSyntax, RefIdxRoundTrip)
{
    for (int max_ref : {1, 2, 4, 8}) {
        RangeEncoder enc;
        Contexts ectx;
        for (int r = 0; r < max_ref; ++r)
            encode_ref_idx(enc, ectx, r, max_ref);
        const std::vector<u8> bytes = enc.finish();
        RangeDecoder dec(bytes);
        Contexts dctx;
        for (int r = 0; r < max_ref; ++r)
            ASSERT_EQ(decode_ref_idx(dec, dctx, max_ref), r)
                << "max_ref=" << max_ref;
    }
}

class Block4x4RoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(Block4x4RoundTrip, RandomBlocks)
{
    const int density = GetParam();
    std::mt19937 rng(static_cast<unsigned>(density) * 17 + 3);
    RangeEncoder enc;
    Contexts ectx;
    std::vector<std::array<Coeff, 16>> blocks;
    for (int t = 0; t < 200; ++t) {
        std::array<Coeff, 16> blk{};
        for (int i = (t % 2); i < 16; ++i) {  // alternate first=0/1
            if (static_cast<int>(rng() % 100) < density) {
                int v = 1 + static_cast<int>(rng() % 500);
                if (rng() & 1)
                    v = -v;
                blk[i] = static_cast<Coeff>(v);
            }
        }
        // For first=1 blocks, position 0 must stay zero.
        encode_block4x4(enc, ectx, blk.data(), t % 2, t % 3 == 0 ? 1 : 0);
        blocks.push_back(blk);
    }
    const std::vector<u8> bytes = enc.finish();
    RangeDecoder dec(bytes);
    Contexts dctx;
    for (int t = 0; t < 200; ++t) {
        Coeff out[16] = {};
        ASSERT_TRUE(decode_block4x4(dec, dctx, out, t % 2,
                                    t % 3 == 0 ? 1 : 0));
        for (int i = 0; i < 16; ++i) {
            // Encoder scans zig-zag; position 0 of first=1 blocks was
            // never encoded, everything else must round-trip.
            ASSERT_EQ(out[i], blocks[t][i])
                << "block " << t << " pos " << i;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Densities, Block4x4RoundTrip,
                         ::testing::Values(0, 10, 40, 90));

// ---- deblocking ----

TEST(Deblock, FlatPictureIsUntouched)
{
    Frame frame(64, 48);
    frame.luma().fill(100);
    frame.cb().fill(120);
    frame.cr().fill(130);
    BlockInfoGrid grid(64, 48);
    for (int by = 0; by < grid.height4(); ++by)
        for (int bx = 0; bx < grid.width4(); ++bx)
            grid.at(bx, by).intra = 1;  // maximum strength everywhere
    deblock_picture(&frame, grid, 30);
    for (int y = 0; y < 48; ++y)
        for (int x = 0; x < 64; ++x)
            ASSERT_EQ(frame.luma().at(x, y), 100);
}

TEST(Deblock, SmoothsArtificialBlockEdge)
{
    Frame frame(64, 48);
    for (int y = 0; y < 48; ++y)
        for (int x = 0; x < 64; ++x)
            frame.luma().at(x, y) = x < 16 ? 100 : 112;
    BlockInfoGrid grid(64, 48);
    for (int by = 0; by < grid.height4(); ++by)
        for (int bx = 0; bx < grid.width4(); ++bx)
            grid.at(bx, by).nonzero = 1;  // bS = 2 edges
    deblock_picture(&frame, grid, 32);
    // The step across x=16 must have shrunk.
    const int step_after = std::abs(frame.luma().at(16, 24) -
                                    frame.luma().at(15, 24));
    EXPECT_LT(step_after, 12);
}

TEST(Deblock, ZeroStrengthLeavesEdgeAlone)
{
    Frame frame(64, 48);
    for (int y = 0; y < 48; ++y)
        for (int x = 0; x < 64; ++x)
            frame.luma().at(x, y) = x < 16 ? 100 : 112;
    BlockInfoGrid grid(64, 48);  // all inter, same mv/ref, no coeffs
    deblock_picture(&frame, grid, 32);
    EXPECT_EQ(frame.luma().at(16, 24), 112);
    EXPECT_EQ(frame.luma().at(15, 24), 100);
}

TEST(Deblock, LowQpDisablesFiltering)
{
    Frame frame(64, 48);
    for (int y = 0; y < 48; ++y)
        for (int x = 0; x < 64; ++x)
            frame.luma().at(x, y) = x < 16 ? 100 : 140;
    BlockInfoGrid grid(64, 48);
    for (int by = 0; by < grid.height4(); ++by)
        for (int bx = 0; bx < grid.width4(); ++bx)
            grid.at(bx, by).intra = 1;
    deblock_picture(&frame, grid, 10);  // alpha/beta tables are zero
    EXPECT_EQ(frame.luma().at(16, 24), 140);
}

TEST(Deblock, MotionDiscontinuityTriggersWeakFilter)
{
    BlockInfoGrid grid(32, 32);
    BlockInfo &a = grid.at(0, 0);
    BlockInfo &b = grid.at(1, 0);
    a.ref = b.ref = 0;
    a.mv = {0, 0};
    b.mv = {8, 0};  // two full samples apart
    Frame frame(32, 32);
    for (int y = 0; y < 32; ++y)
        for (int x = 0; x < 32; ++x)
            frame.luma().at(x, y) = x < 4 ? 100 : 110;
    deblock_picture(&frame, grid, 36);
    EXPECT_NE(frame.luma().at(4, 1), 110);  // bS=1 filter acted
}

}  // namespace
}  // namespace hdvb
