/**
 * @file
 * The central SIMD invariant: every SSE2 and AVX2 kernel is bit-exact
 * with its scalar reference on randomised inputs (this is what makes
 * SimdLevel a pure speed knob in Figure 1), plus accuracy bounds for
 * the fixed-point transforms against the double-precision reference,
 * and the runtime-detection contract (get_dsp never hands out a level
 * the CPU cannot execute).
 */
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <random>
#include <string>
#include <tuple>
#include <vector>

#include "dsp/dct_ref.h"
#include "simd/dispatch.h"
#include "video/plane.h"

namespace hdvb {
namespace {

/** (trial seed, SimdLevel as int): each non-scalar level the enum
 * knows is checked against the scalar reference; levels the running
 * CPU (or build) lacks are skipped, not silently dropped. */
class KernelEquivalence
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
  protected:
    void
    SetUp() override
    {
        const SimdLevel level = test_level();
        if (level > detected_simd_level()) {
            GTEST_SKIP() << simd_level_name(level)
                         << " not supported on this CPU/build";
        }
        simd_ = &get_dsp(level);
        // Kernel tables must be distinct, or "equivalence" would be
        // trivially comparing a function against itself.
        ASSERT_STREQ(simd_->name, simd_level_name(level));
        rng_.seed(static_cast<unsigned>(std::get<0>(GetParam())) * 7919 +
                  static_cast<unsigned>(std::get<1>(GetParam())) + 1);
        buf_a_.resize(kStride * 40);
        buf_b_.resize(kStride * 40);
        for (auto &px : buf_a_)
            px = static_cast<Pixel>(rng_());
        for (auto &px : buf_b_)
            px = static_cast<Pixel>(rng_());
    }

    SimdLevel
    test_level() const
    {
        return static_cast<SimdLevel>(std::get<1>(GetParam()));
    }

    static constexpr int kStride = 97;  // odd stride, unaligned
    std::mt19937 rng_;
    std::vector<Pixel> buf_a_;
    std::vector<Pixel> buf_b_;
    const Dsp &scalar_ = get_dsp(SimdLevel::kScalar);
    const Dsp *simd_ = nullptr;
};

TEST_P(KernelEquivalence, Sad)
{
    const Pixel *a = buf_a_.data() + 3;
    const Pixel *b = buf_b_.data() + 5;
    EXPECT_EQ(scalar_.sad16x16(a, kStride, b, kStride),
              simd_->sad16x16(a, kStride, b, kStride));
    EXPECT_EQ(scalar_.sad8x8(a, kStride, b, kStride),
              simd_->sad8x8(a, kStride, b, kStride));
    // 6 and 12 drive the vector-loop tails; 15 the scalar remainder
    // plus, for 16-wide paths, the odd final row.
    for (int w : {4, 6, 8, 12, 16}) {
        for (int h : {4, 8, 15, 16}) {
            EXPECT_EQ(scalar_.sad_rect(a, kStride, b, kStride, w, h),
                      simd_->sad_rect(a, kStride, b, kStride, w, h))
                << "w=" << w << " h=" << h;
        }
    }
}

TEST_P(KernelEquivalence, SadEarlyTermination)
{
    // The ET kernel contract (simd/dispatch.h): with an unreachable
    // bound the result is the exact SAD; with any bound, a result
    // <= bound IS the exact SAD (decision safety), and a bailed
    // result both exceeds the bound and never exceeds the exact sum.
    const Pixel *a = buf_a_.data() + 3;
    const Pixel *b = buf_b_.data() + 5;
    const int exact = scalar_.sad16x16(a, kStride, b, kStride);
    EXPECT_EQ(exact,
              scalar_.sad16x16_et(a, kStride, b, kStride, INT32_MAX));
    EXPECT_EQ(exact,
              simd_->sad16x16_et(a, kStride, b, kStride, INT32_MAX));
    for (const int bound : {0, 1, 64, exact - 1, exact, exact + 1}) {
        for (const Dsp *dsp : {&scalar_, simd_}) {
            const int et =
                dsp->sad16x16_et(a, kStride, b, kStride, bound);
            EXPECT_LE(et, exact) << "bound=" << bound;
            if (et <= bound)
                EXPECT_EQ(et, exact) << "bound=" << bound;
        }
    }
    for (int w : {4, 6, 8, 12, 16}) {
        for (int h : {4, 8, 15, 16}) {
            const int rect =
                scalar_.sad_rect(a, kStride, b, kStride, w, h);
            EXPECT_EQ(rect, scalar_.sad_rect_et(a, kStride, b, kStride,
                                                w, h, INT32_MAX));
            EXPECT_EQ(rect, simd_->sad_rect_et(a, kStride, b, kStride,
                                               w, h, INT32_MAX));
            const int bound = rect / 2;
            for (const Dsp *dsp : {&scalar_, simd_}) {
                const int et = dsp->sad_rect_et(a, kStride, b, kStride,
                                                w, h, bound);
                EXPECT_LE(et, rect) << "w=" << w << " h=" << h;
                if (et <= bound)
                    EXPECT_EQ(et, rect) << "w=" << w << " h=" << h;
            }
        }
    }
}

TEST_P(KernelEquivalence, SadAligned)
{
    // sad16x16_a's contract: first operand 16-byte aligned with a
    // 16-byte-multiple stride (any Plane row at x0 % 16 == 0
    // qualifies), second operand unconstrained. Must match the scalar
    // reference on the same data.
    Plane plane(48, 20);
    for (int y = 0; y < plane.height(); ++y)
        for (int x = 0; x < plane.width(); ++x)
            plane.row(y)[x] = static_cast<Pixel>(rng_());
    const Pixel *b = buf_b_.data() + 5;  // unaligned is fine for b
    for (int x0 : {0, 16, 32}) {
        const Pixel *a = plane.row(2) + x0;
        ASSERT_EQ(reinterpret_cast<uintptr_t>(a) % 16, 0u);
        ASSERT_EQ(plane.stride() % 16, 0);
        EXPECT_EQ(scalar_.sad16x16(a, plane.stride(), b, kStride),
                  simd_->sad16x16_a(a, plane.stride(), b, kStride))
            << "x0=" << x0;
    }
}

TEST_P(KernelEquivalence, Satd)
{
    const Pixel *a = buf_a_.data() + 1;
    const Pixel *b = buf_b_.data() + 2;
    EXPECT_EQ(scalar_.satd4x4(a, kStride, b, kStride),
              simd_->satd4x4(a, kStride, b, kStride));
    // The contract is multiples of 4; 12 leaves a lone 4x4 column
    // after the pair-of-blocks path.
    for (int w : {4, 8, 12, 16}) {
        for (int h : {4, 8, 12, 16}) {
            EXPECT_EQ(scalar_.satd_rect(a, kStride, b, kStride, w, h),
                      simd_->satd_rect(a, kStride, b, kStride, w, h))
                << "w=" << w << " h=" << h;
        }
    }
}

TEST_P(KernelEquivalence, SseRect)
{
    const Pixel *a = buf_a_.data() + 2;
    const Pixel *b = buf_b_.data() + 7;
    for (int w : {3, 8, 16, 17, 24, 33, 47}) {
        EXPECT_EQ(scalar_.sse_rect(a, kStride, b, kStride, w, 16),
                  simd_->sse_rect(a, kStride, b, kStride, w, 16))
            << "w=" << w;
    }
}

TEST_P(KernelEquivalence, AvgAndAvg4)
{
    const Pixel *a = buf_a_.data() + 4;
    const Pixel *b = buf_b_.data() + 9;
    std::vector<Pixel> d1(33 * 16), d2(33 * 16);
    for (int w : {3, 6, 8, 12, 15, 16, 17, 33}) {
        scalar_.avg_rect(d1.data(), 33, a, kStride, b, kStride, w, 16);
        simd_->avg_rect(d2.data(), 33, a, kStride, b, kStride, w, 16);
        EXPECT_EQ(d1, d2) << "avg w=" << w;
        scalar_.avg4_rect(d1.data(), 33, a, kStride, w, 16);
        simd_->avg4_rect(d2.data(), 33, a, kStride, w, 16);
        EXPECT_EQ(d1, d2) << "avg4 w=" << w;
    }
}

TEST_P(KernelEquivalence, QpelBilin)
{
    const Pixel *a = buf_a_.data() + 6;
    std::vector<Pixel> d1(17 * 16), d2(17 * 16);
    for (int fx = 0; fx < 4; ++fx) {
        for (int fy = 0; fy < 4; ++fy) {
            for (int w : {6, 16, 17}) {
                scalar_.qpel_bilin_rect(d1.data(), 17, a, kStride, w,
                                        16, fx, fy);
                simd_->qpel_bilin_rect(d2.data(), 17, a, kStride, w,
                                       16, fx, fy);
                EXPECT_EQ(d1, d2)
                    << "fx=" << fx << " fy=" << fy << " w=" << w;
            }
        }
    }
}

TEST_P(KernelEquivalence, SubAndAdd)
{
    const Pixel *a = buf_a_.data() + 8;
    const Pixel *b = buf_b_.data() + 3;
    std::vector<Coeff> r1(17 * 8), r2(17 * 8);
    for (int w : {4, 6, 8, 12, 15, 16, 17}) {
        scalar_.sub_rect(r1.data(), 17, a, kStride, b, kStride, w, 8);
        simd_->sub_rect(r2.data(), 17, a, kStride, b, kStride, w, 8);
        EXPECT_EQ(r1, r2) << "w=" << w;
    }
    // add_rect: residuals that push past both clamp edges.
    std::vector<Coeff> res(17 * 8);
    for (auto &c : res)
        c = static_cast<Coeff>(static_cast<int>(rng_() % 1200) - 600);
    for (int w : {6, 8, 12, 16, 17}) {
        std::vector<Pixel> d1(17 * 8), d2(17 * 8);
        for (size_t i = 0; i < d1.size(); ++i)
            d1[i] = d2[i] = buf_a_[i];
        scalar_.add_rect(d1.data(), 17, res.data(), 17, w, 8);
        simd_->add_rect(d2.data(), 17, res.data(), 17, w, 8);
        EXPECT_EQ(d1, d2) << "w=" << w;
    }
}

TEST_P(KernelEquivalence, Dct8x8BitExact)
{
    Coeff blk1[64], blk2[64];
    for (int i = 0; i < 64; ++i) {
        blk1[i] = blk2[i] =
            static_cast<Coeff>(static_cast<int>(rng_() % 511) - 255);
    }
    scalar_.fdct8x8(blk1);
    simd_->fdct8x8(blk2);
    for (int i = 0; i < 64; ++i)
        ASSERT_EQ(blk1[i], blk2[i]) << "fdct coeff " << i;

    for (int i = 0; i < 64; ++i) {
        blk1[i] = blk2[i] =
            static_cast<Coeff>(static_cast<int>(rng_() % 4095) - 2047);
    }
    scalar_.idct8x8(blk1);
    simd_->idct8x8(blk2);
    for (int i = 0; i < 64; ++i)
        ASSERT_EQ(blk1[i], blk2[i]) << "idct sample " << i;
}

TEST_P(KernelEquivalence, H264HalfPel)
{
    const Pixel *src = buf_a_.data() + kStride * 4 + 8;
    // Stride 24 leaves room for the w=17 column (tail after a 16-wide
    // vector pass).
    std::vector<Pixel> d1(24 * 16), d2(24 * 16);
    for (int w : {4, 6, 8, 12, 16, 17}) {
        scalar_.h264_hpel_h(d1.data(), 24, src, kStride, w, 16);
        simd_->h264_hpel_h(d2.data(), 24, src, kStride, w, 16);
        EXPECT_EQ(d1, d2) << "hpel_h w=" << w;
        scalar_.h264_hpel_v(d1.data(), 24, src, kStride, w, 16);
        simd_->h264_hpel_v(d2.data(), 24, src, kStride, w, 16);
        EXPECT_EQ(d1, d2) << "hpel_v w=" << w;
    }
    // hv is contract-limited to w, h <= 16.
    for (int w : {4, 6, 8, 12, 16}) {
        for (int h : {4, 9, 16}) {
            std::fill(d1.begin(), d1.end(), Pixel{0});
            std::fill(d2.begin(), d2.end(), Pixel{0});
            scalar_.h264_hpel_hv(d1.data(), 24, src, kStride, w, h);
            simd_->h264_hpel_hv(d2.data(), 24, src, kStride, w, h);
            EXPECT_EQ(d1, d2) << "hpel_hv w=" << w << " h=" << h;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    RandomTrials, KernelEquivalence,
    ::testing::Combine(::testing::Range(0, 8),
                       ::testing::Range(1, kSimdLevelCount)),
    [](const ::testing::TestParamInfo<std::tuple<int, int>> &info) {
        return std::string(simd_level_name(
                   static_cast<SimdLevel>(std::get<1>(info.param)))) +
               "_trial" + std::to_string(std::get<0>(info.param));
    });

// ---- transform accuracy against the double-precision reference ----

TEST(Dct8x8, ForwardMatchesReferenceWithinTolerance)
{
    std::mt19937 rng(99);
    const Dsp &dsp = get_dsp(SimdLevel::kScalar);
    double worst = 0.0;
    for (int trial = 0; trial < 200; ++trial) {
        Coeff blk[64];
        double ref_in[64];
        for (int i = 0; i < 64; ++i) {
            blk[i] = static_cast<Coeff>(static_cast<int>(rng() % 511) -
                                        255);
            ref_in[i] = blk[i];
        }
        double ref_out[64];
        fdct8x8_ref(ref_in, ref_out);
        dsp.fdct8x8(blk);
        for (int i = 0; i < 64; ++i)
            worst = std::max(worst, std::abs(blk[i] - ref_out[i]));
    }
    EXPECT_LT(worst, 2.0);  // Q13 basis with two roundings
}

TEST(Dct8x8, RoundTripReconstructsResiduals)
{
    std::mt19937 rng(7);
    const Dsp &dsp = get_dsp(best_simd_level());
    int worst = 0;
    for (int trial = 0; trial < 200; ++trial) {
        Coeff blk[64], orig[64];
        for (int i = 0; i < 64; ++i) {
            blk[i] = orig[i] =
                static_cast<Coeff>(static_cast<int>(rng() % 511) - 255);
        }
        dsp.fdct8x8(blk);
        dsp.idct8x8(blk);
        for (int i = 0; i < 64; ++i)
            worst = std::max(worst, std::abs(blk[i] - orig[i]));
    }
    EXPECT_LE(worst, 2);  // unquantised round trip is near-lossless
}

TEST(Dct8x8, DcOnlyBlockIsFlat)
{
    const Dsp &dsp = get_dsp(SimdLevel::kScalar);
    Coeff blk[64] = {};
    blk[0] = 800;  // orthonormal DC: output = 800 / 8 = 100 per sample
    dsp.idct8x8(blk);
    for (int i = 0; i < 64; ++i)
        EXPECT_NEAR(blk[i], 100, 1);
}

// ---- level naming, parsing, and the detection contract ----

TEST(SimdLevel, NamesAreExhaustiveAndParseBack)
{
    EXPECT_STREQ(simd_level_name(SimdLevel::kScalar), "scalar");
    EXPECT_STREQ(simd_level_name(SimdLevel::kSse2), "sse2");
    EXPECT_STREQ(simd_level_name(SimdLevel::kAvx2), "avx2");
    for (int i = 0; i < kSimdLevelCount; ++i) {
        const SimdLevel level = static_cast<SimdLevel>(i);
        SimdLevel parsed = SimdLevel::kScalar;
        EXPECT_TRUE(parse_simd_level(simd_level_name(level), &parsed));
        EXPECT_EQ(parsed, level);
    }
    SimdLevel parsed = SimdLevel::kSse2;
    EXPECT_FALSE(parse_simd_level("sse4", &parsed));
    EXPECT_FALSE(parse_simd_level("", &parsed));
    EXPECT_EQ(parsed, SimdLevel::kSse2);  // untouched on failure
}

TEST(SimdLevel, BestNeverExceedsDetected)
{
    // best_simd_level() may be lowered by HDVB_SIMD (the forced-level
    // ctest runs rely on that) but can never exceed the silicon.
    EXPECT_LE(best_simd_level(), detected_simd_level());
    EXPECT_STREQ(get_dsp(best_simd_level()).name,
                 simd_level_name(best_simd_level()));
#if defined(__SSE2__)
    EXPECT_GE(detected_simd_level(), SimdLevel::kSse2);
#endif
}

TEST(SimdLevel, GetDspFallsBackToStrongestSupported)
{
    // A level above anything the CPU/build supports (e.g. a future
    // enum value) must clamp to the detected best, never hand out a
    // table whose code the machine cannot execute.
    const SimdLevel beyond = static_cast<SimdLevel>(kSimdLevelCount);
    EXPECT_STREQ(get_dsp(beyond).name,
                 simd_level_name(detected_simd_level()));
    // Every representable level resolves to a table at or below the
    // detected level.
    for (int i = 0; i < kSimdLevelCount; ++i) {
        const SimdLevel level = static_cast<SimdLevel>(i);
        SimdLevel resolved = SimdLevel::kScalar;
        ASSERT_TRUE(parse_simd_level(get_dsp(level).name, &resolved));
        EXPECT_LE(resolved, detected_simd_level());
        if (level <= detected_simd_level()) {
            EXPECT_EQ(resolved, level);
        }
    }
}

}  // namespace
}  // namespace hdvb
