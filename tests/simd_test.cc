/**
 * @file
 * The central SIMD invariant: every SSE2 kernel is bit-exact with its
 * scalar reference on randomised inputs (this is what makes SimdLevel a
 * pure speed knob in Figure 1), plus accuracy bounds for the
 * fixed-point transforms against the double-precision reference.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <vector>

#include "dsp/dct_ref.h"
#include "simd/dispatch.h"

namespace hdvb {
namespace {

class KernelEquivalence : public ::testing::TestWithParam<int>
{
  protected:
    void
    SetUp() override
    {
        if (best_simd_level() == SimdLevel::kScalar)
            GTEST_SKIP() << "no SSE2 in this build";
        rng_.seed(static_cast<unsigned>(GetParam()) * 7919 + 1);
        buf_a_.resize(kStride * 40);
        buf_b_.resize(kStride * 40);
        for (auto &px : buf_a_)
            px = static_cast<Pixel>(rng_());
        for (auto &px : buf_b_)
            px = static_cast<Pixel>(rng_());
    }

    static constexpr int kStride = 97;  // odd stride, unaligned
    std::mt19937 rng_;
    std::vector<Pixel> buf_a_;
    std::vector<Pixel> buf_b_;
    const Dsp &scalar_ = get_dsp(SimdLevel::kScalar);
    const Dsp &simd_ = get_dsp(SimdLevel::kSse2);
};

TEST_P(KernelEquivalence, Sad)
{
    const Pixel *a = buf_a_.data() + 3;
    const Pixel *b = buf_b_.data() + 5;
    EXPECT_EQ(scalar_.sad16x16(a, kStride, b, kStride),
              simd_.sad16x16(a, kStride, b, kStride));
    EXPECT_EQ(scalar_.sad8x8(a, kStride, b, kStride),
              simd_.sad8x8(a, kStride, b, kStride));
    for (int w : {4, 8, 16}) {
        for (int h : {4, 8, 16}) {
            EXPECT_EQ(scalar_.sad_rect(a, kStride, b, kStride, w, h),
                      simd_.sad_rect(a, kStride, b, kStride, w, h));
        }
    }
}

TEST_P(KernelEquivalence, Satd)
{
    const Pixel *a = buf_a_.data() + 1;
    const Pixel *b = buf_b_.data() + 2;
    EXPECT_EQ(scalar_.satd4x4(a, kStride, b, kStride),
              simd_.satd4x4(a, kStride, b, kStride));
    for (int w : {4, 8, 16}) {
        for (int h : {4, 8, 16}) {
            EXPECT_EQ(scalar_.satd_rect(a, kStride, b, kStride, w, h),
                      simd_.satd_rect(a, kStride, b, kStride, w, h));
        }
    }
}

TEST_P(KernelEquivalence, SseRect)
{
    const Pixel *a = buf_a_.data() + 2;
    const Pixel *b = buf_b_.data() + 7;
    for (int w : {3, 8, 16, 24, 33}) {
        EXPECT_EQ(scalar_.sse_rect(a, kStride, b, kStride, w, 16),
                  simd_.sse_rect(a, kStride, b, kStride, w, 16));
    }
}

TEST_P(KernelEquivalence, AvgAndAvg4)
{
    const Pixel *a = buf_a_.data() + 4;
    const Pixel *b = buf_b_.data() + 9;
    std::vector<Pixel> d1(16 * 16), d2(16 * 16);
    for (int w : {3, 8, 15, 16}) {
        scalar_.avg_rect(d1.data(), 16, a, kStride, b, kStride, w, 16);
        simd_.avg_rect(d2.data(), 16, a, kStride, b, kStride, w, 16);
        EXPECT_EQ(d1, d2);
        scalar_.avg4_rect(d1.data(), 16, a, kStride, w, 16);
        simd_.avg4_rect(d2.data(), 16, a, kStride, w, 16);
        EXPECT_EQ(d1, d2);
    }
}

TEST_P(KernelEquivalence, QpelBilin)
{
    const Pixel *a = buf_a_.data() + 6;
    std::vector<Pixel> d1(16 * 16), d2(16 * 16);
    for (int fx = 0; fx < 4; ++fx) {
        for (int fy = 0; fy < 4; ++fy) {
            scalar_.qpel_bilin_rect(d1.data(), 16, a, kStride, 16, 16,
                                    fx, fy);
            simd_.qpel_bilin_rect(d2.data(), 16, a, kStride, 16, 16,
                                  fx, fy);
            EXPECT_EQ(d1, d2) << "fx=" << fx << " fy=" << fy;
        }
    }
}

TEST_P(KernelEquivalence, SubAndAdd)
{
    const Pixel *a = buf_a_.data() + 8;
    const Pixel *b = buf_b_.data() + 3;
    std::vector<Coeff> r1(16 * 16), r2(16 * 16);
    for (int w : {4, 8, 15, 16}) {
        scalar_.sub_rect(r1.data(), 16, a, kStride, b, kStride, w, 8);
        simd_.sub_rect(r2.data(), 16, a, kStride, b, kStride, w, 8);
        EXPECT_EQ(r1, r2);
    }
    // add_rect: residuals that push past both clamp edges.
    std::vector<Coeff> res(8 * 8);
    for (auto &c : res)
        c = static_cast<Coeff>(static_cast<int>(rng_() % 1200) - 600);
    std::vector<Pixel> d1(8 * 8), d2(8 * 8);
    for (size_t i = 0; i < d1.size(); ++i)
        d1[i] = d2[i] = buf_a_[i];
    scalar_.add_rect(d1.data(), 8, res.data(), 8, 8, 8);
    simd_.add_rect(d2.data(), 8, res.data(), 8, 8, 8);
    EXPECT_EQ(d1, d2);
}

TEST_P(KernelEquivalence, Dct8x8BitExact)
{
    Coeff blk1[64], blk2[64];
    for (int i = 0; i < 64; ++i) {
        blk1[i] = blk2[i] =
            static_cast<Coeff>(static_cast<int>(rng_() % 511) - 255);
    }
    scalar_.fdct8x8(blk1);
    simd_.fdct8x8(blk2);
    for (int i = 0; i < 64; ++i)
        ASSERT_EQ(blk1[i], blk2[i]) << "fdct coeff " << i;

    for (int i = 0; i < 64; ++i) {
        blk1[i] = blk2[i] =
            static_cast<Coeff>(static_cast<int>(rng_() % 4095) - 2047);
    }
    scalar_.idct8x8(blk1);
    simd_.idct8x8(blk2);
    for (int i = 0; i < 64; ++i)
        ASSERT_EQ(blk1[i], blk2[i]) << "idct sample " << i;
}

TEST_P(KernelEquivalence, H264HalfPel)
{
    const Pixel *src = buf_a_.data() + kStride * 4 + 8;
    std::vector<Pixel> d1(16 * 16), d2(16 * 16);
    for (int w : {4, 8, 16}) {
        scalar_.h264_hpel_h(d1.data(), 16, src, kStride, w, 16);
        simd_.h264_hpel_h(d2.data(), 16, src, kStride, w, 16);
        EXPECT_EQ(d1, d2);
        scalar_.h264_hpel_v(d1.data(), 16, src, kStride, w, 16);
        simd_.h264_hpel_v(d2.data(), 16, src, kStride, w, 16);
        EXPECT_EQ(d1, d2);
    }
}

INSTANTIATE_TEST_SUITE_P(RandomTrials, KernelEquivalence,
                         ::testing::Range(0, 8));

// ---- transform accuracy against the double-precision reference ----

TEST(Dct8x8, ForwardMatchesReferenceWithinTolerance)
{
    std::mt19937 rng(99);
    const Dsp &dsp = get_dsp(SimdLevel::kScalar);
    double worst = 0.0;
    for (int trial = 0; trial < 200; ++trial) {
        Coeff blk[64];
        double ref_in[64];
        for (int i = 0; i < 64; ++i) {
            blk[i] = static_cast<Coeff>(static_cast<int>(rng() % 511) -
                                        255);
            ref_in[i] = blk[i];
        }
        double ref_out[64];
        fdct8x8_ref(ref_in, ref_out);
        dsp.fdct8x8(blk);
        for (int i = 0; i < 64; ++i)
            worst = std::max(worst, std::abs(blk[i] - ref_out[i]));
    }
    EXPECT_LT(worst, 2.0);  // Q13 basis with two roundings
}

TEST(Dct8x8, RoundTripReconstructsResiduals)
{
    std::mt19937 rng(7);
    const Dsp &dsp = get_dsp(best_simd_level());
    int worst = 0;
    for (int trial = 0; trial < 200; ++trial) {
        Coeff blk[64], orig[64];
        for (int i = 0; i < 64; ++i) {
            blk[i] = orig[i] =
                static_cast<Coeff>(static_cast<int>(rng() % 511) - 255);
        }
        dsp.fdct8x8(blk);
        dsp.idct8x8(blk);
        for (int i = 0; i < 64; ++i)
            worst = std::max(worst, std::abs(blk[i] - orig[i]));
    }
    EXPECT_LE(worst, 2);  // unquantised round trip is near-lossless
}

TEST(Dct8x8, DcOnlyBlockIsFlat)
{
    const Dsp &dsp = get_dsp(SimdLevel::kScalar);
    Coeff blk[64] = {};
    blk[0] = 800;  // orthonormal DC: output = 800 / 8 = 100 per sample
    dsp.idct8x8(blk);
    for (int i = 0; i < 64; ++i)
        EXPECT_NEAR(blk[i], 100, 1);
}

TEST(SimdLevel, NamesAndBestLevel)
{
    EXPECT_STREQ(simd_level_name(SimdLevel::kScalar), "scalar");
    EXPECT_STREQ(simd_level_name(SimdLevel::kSse2), "sse2");
    EXPECT_STREQ(get_dsp(SimdLevel::kScalar).name, "scalar");
#if defined(__SSE2__)
    EXPECT_EQ(best_simd_level(), SimdLevel::kSse2);
#endif
}

}  // namespace
}  // namespace hdvb
