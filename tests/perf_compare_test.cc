/**
 * @file
 * Unit tests for the BENCH regression gate (core/perf_compare.h):
 * the CoV-widened threshold, every verdict path (improved / regressed
 * / within-noise / missing / new / schema-mismatch), BENCH file
 * loading for both schemas, environment warnings, and the doctored
 * -20% fps self-test the ctest gate builds on.
 */
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "core/perf_compare.h"

namespace hdvb {
namespace {

BenchMetric
metric(const std::string &name, double value, double cov,
       bool higher_is_better, double abs_floor = 0.0)
{
    BenchMetric m;
    m.name = name;
    m.value = value;
    m.cov = cov;
    m.higher_is_better = higher_is_better;
    m.abs_floor = abs_floor;
    return m;
}

TEST(PerfCompare, FloorGatesTinyDeltas)
{
    // 1% fps drop with zero CoV: inside the 2% floor -> noise.
    const MetricComparison row =
        classify_metric(metric("fps", 100.0, 0.0, true),
                        metric("fps", 99.0, 0.0, true), {});
    EXPECT_EQ(row.verdict, MetricVerdict::kWithinNoise);
    EXPECT_DOUBLE_EQ(row.threshold_pct, 2.0);
    EXPECT_NEAR(row.delta_pct, -1.0, 1e-9);
}

TEST(PerfCompare, RegressionBeyondFloor)
{
    const MetricComparison row =
        classify_metric(metric("fps", 100.0, 0.0, true),
                        metric("fps", 80.0, 0.0, true), {});
    EXPECT_EQ(row.verdict, MetricVerdict::kRegressed);
    EXPECT_NEAR(row.delta_pct, -20.0, 1e-9);
}

TEST(PerfCompare, ImprovementBeyondFloor)
{
    const MetricComparison row =
        classify_metric(metric("fps", 100.0, 0.0, true),
                        metric("fps", 130.0, 0.0, true), {});
    EXPECT_EQ(row.verdict, MetricVerdict::kImproved);
}

TEST(PerfCompare, LowerIsBetterFlipsDirection)
{
    // Latency went up 20%: a regression for a lower-is-better metric.
    const MetricComparison worse =
        classify_metric(metric("p99", 10.0, 0.0, false),
                        metric("p99", 12.0, 0.0, false), {});
    EXPECT_EQ(worse.verdict, MetricVerdict::kRegressed);
    EXPECT_NEAR(worse.delta_pct, 20.0, 1e-9);  // raw delta still +20

    const MetricComparison better =
        classify_metric(metric("p99", 10.0, 0.0, false),
                        metric("p99", 8.0, 0.0, false), {});
    EXPECT_EQ(better.verdict, MetricVerdict::kImproved);
}

TEST(PerfCompare, CovWidensThreshold)
{
    // 10% CoV at sigma 3 -> 30% threshold: a 20% drop is noise.
    const MetricComparison noisy =
        classify_metric(metric("fps", 100.0, 0.10, true),
                        metric("fps", 80.0, 0.0, true), {});
    EXPECT_DOUBLE_EQ(noisy.threshold_pct, 30.0);
    EXPECT_EQ(noisy.verdict, MetricVerdict::kWithinNoise);

    // The wider of the two CoVs wins (new run may be the noisy one).
    const MetricComparison new_noisy =
        classify_metric(metric("fps", 100.0, 0.0, true),
                        metric("fps", 80.0, 0.10, true), {});
    EXPECT_DOUBLE_EQ(new_noisy.threshold_pct, 30.0);

    // A 35% drop clears even the widened threshold.
    const MetricComparison real =
        classify_metric(metric("fps", 100.0, 0.10, true),
                        metric("fps", 65.0, 0.0, true), {});
    EXPECT_EQ(real.verdict, MetricVerdict::kRegressed);
}

TEST(PerfCompare, SigmaAndFloorAreOptions)
{
    CompareOptions options;
    options.floor_pct = 0.5;
    options.sigma = 2.0;
    const MetricComparison row =
        classify_metric(metric("fps", 100.0, 0.01, true),
                        metric("fps", 99.0, 0.0, true), options);
    EXPECT_DOUBLE_EQ(row.threshold_pct, 2.0);  // 2 * 1% CoV
    EXPECT_EQ(row.verdict, MetricVerdict::kWithinNoise);
}

TEST(PerfCompare, AbsoluteFloorForNearZeroMetrics)
{
    // allocs/frame 0 -> 0.3: within the 0.5 absolute floor.
    const MetricComparison ok =
        classify_metric(metric("allocs", 0.0, 0.0, false, 0.5),
                        metric("allocs", 0.3, 0.0, false, 0.5), {});
    EXPECT_EQ(ok.verdict, MetricVerdict::kWithinNoise);
    // 0 -> 2.0 allocations per frame is a real leak of the
    // zero-alloc steady state.
    const MetricComparison bad =
        classify_metric(metric("allocs", 0.0, 0.0, false, 0.5),
                        metric("allocs", 2.0, 0.0, false, 0.5), {});
    EXPECT_EQ(bad.verdict, MetricVerdict::kRegressed);
    const MetricComparison gain =
        classify_metric(metric("allocs", 4.0, 0.0, false, 0.5),
                        metric("allocs", 0.0, 0.0, false, 0.5), {});
    EXPECT_EQ(gain.verdict, MetricVerdict::kImproved);
}

TEST(PerfCompare, ZeroValuedMeasurementNeverVerdicts)
{
    const MetricComparison row =
        classify_metric(metric("fps", 0.0, 0.0, true),
                        metric("fps", 50.0, 0.0, true), {});
    EXPECT_EQ(row.verdict, MetricVerdict::kWithinNoise);
}

BenchFile
file_with(std::vector<BenchMetric> metrics, bool provenance = true)
{
    BenchFile file;
    file.path = "test.json";
    file.schema = "hdvb-bench/2";
    file.provenance.present = provenance;
    file.provenance.cpu_model = "TestCPU";
    file.provenance.cores = 1;
    file.provenance.simd = "avx2";
    file.provenance.build_type = "debug";
    file.metrics = std::move(metrics);
    return file;
}

TEST(PerfCompare, MissingAndNewMetrics)
{
    const BenchFile older = file_with(
        {metric("a", 1.0, 0.0, true), metric("gone", 2.0, 0.0, true)});
    const BenchFile newer = file_with(
        {metric("a", 1.0, 0.0, true), metric("fresh", 3.0, 0.0, true)});
    const CompareReport report = compare_bench(older, newer);
    EXPECT_EQ(report.missing, 1);
    EXPECT_EQ(report.added, 1);
    EXPECT_EQ(report.within_noise, 1);
    EXPECT_FALSE(report.has_regressions());
    ASSERT_EQ(report.rows.size(), 3u);
    EXPECT_EQ(report.rows[1].name, "gone");
    EXPECT_EQ(report.rows[1].verdict, MetricVerdict::kMissing);
    EXPECT_EQ(report.rows[2].name, "fresh");
    EXPECT_EQ(report.rows[2].verdict, MetricVerdict::kNew);
}

TEST(PerfCompare, EnvironmentWarnings)
{
    BenchFile older = file_with({metric("a", 1.0, 0.0, true)});
    BenchFile newer = older;
    EXPECT_TRUE(compare_bench(older, newer)
                    .environment_warnings.empty());

    newer.provenance.cpu_model = "OtherCPU";
    newer.provenance.cores = 8;
    const CompareReport diff = compare_bench(older, newer);
    EXPECT_EQ(diff.environment_warnings.size(), 2u);

    BenchFile no_prov = older;
    no_prov.provenance = BenchProvenance{};
    EXPECT_EQ(compare_bench(no_prov, newer)
                  .environment_warnings.size(),
              1u);

    BenchFile old_schema = older;
    old_schema.schema = "hdvb-bench/1";
    EXPECT_FALSE(compare_bench(old_schema, newer)
                     .environment_warnings.empty());
}

std::string
write_temp(const std::string &name, const std::string &text)
{
    const std::string path = ::testing::TempDir() + "/" + name;
    std::FILE *f = std::fopen(path.c_str(), "w");
    EXPECT_NE(f, nullptr);
    std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
    return path;
}

constexpr const char *kBench2Doc = R"({
 "schema": "hdvb-bench/2",
 "pr": 8,
 "provenance": {"git_sha": "abc", "cpu_model": "TestCPU",
                "cores": 1, "simd_detected": "avx2",
                "build_type": "debug", "repeats": 3, "smoke": false},
 "codecs": {"points": [
   {"label": "h264/rush_hour/576p25/avx2",
    "encode_fps_median": 36.6, "encode_fps_cov": 0.05,
    "decode_fps_median": 235.0, "decode_fps_cov": 0.2,
    "allocs_per_frame": 0.0}]},
 "kernels": {"medians": [
   {"name": "BM_Fdct8x8/2", "median_ns": 63.5, "cov": 0.01}]},
 "serve": {"classes": [
   {"class": "live", "p50_ms": 1.0, "p50_ms_cov": 0.1,
    "p95_ms": 4.9, "p95_ms_cov": 0.1,
    "p99_ms": 18.0, "p99_ms_cov": 0.1}],
  "aggregate": {"fps": 943.1, "fps_cov": 0.05}}
})";

TEST(PerfCompare, LoadsBench2Schema)
{
    const std::string path = write_temp("bench2.json", kBench2Doc);
    StatusOr<BenchFile> loaded = load_bench_file(path);
    ASSERT_TRUE(loaded.is_ok()) << loaded.status().to_string();
    const BenchFile &file = loaded.value();
    EXPECT_EQ(file.schema, "hdvb-bench/2");
    EXPECT_EQ(file.pr, 8);
    EXPECT_TRUE(file.provenance.present);
    EXPECT_EQ(file.provenance.cpu_model, "TestCPU");
    EXPECT_EQ(file.provenance.repeats, 3);
    // 3 codec metrics + 1 kernel + 3 serve percentiles + aggregate.
    EXPECT_EQ(file.metrics.size(), 8u);
    bool found_encode = false;
    for (const BenchMetric &m : file.metrics) {
        if (m.name == "codec/h264/rush_hour/576p25/avx2/encode_fps") {
            found_encode = true;
            EXPECT_TRUE(m.higher_is_better);
            EXPECT_DOUBLE_EQ(m.value, 36.6);
            EXPECT_DOUBLE_EQ(m.cov, 0.05);
        }
        if (m.name == "kernel_ns/BM_Fdct8x8/2") {
            EXPECT_FALSE(m.higher_is_better);
        }
        if (m.name == "serve/live/p99_ms") {
            EXPECT_DOUBLE_EQ(m.cov, 0.1);
        }
    }
    EXPECT_TRUE(found_encode);
    std::remove(path.c_str());

    // Self-compare: everything within noise, exit path clean.
    const CompareReport self =
        compare_bench(file, file, CompareOptions{});
    EXPECT_EQ(self.regressed, 0);
    EXPECT_EQ(self.improved, 0);
    EXPECT_EQ(self.missing, 0);
    EXPECT_TRUE(self.environment_warnings.empty());
}

TEST(PerfCompare, LoadsBench1SchemaWithoutProvenance)
{
    // The PR-7 hand-rolled baseline: serve + kernels, no provenance,
    // no CoV anywhere.
    const std::string path = write_temp("bench1.json", R"({
 "schema": "hdvb-bench/1",
 "pr": 7,
 "serve": {"classes": [
   {"class": "live", "p50_ms": 1.0, "p95_ms": 4.9, "p99_ms": 18.0}],
  "aggregate": {"fps": 943.1}},
 "kernels": {"medians": [
   {"name": "BM_Fdct8x8/2", "median_ns": 63.5}]}
})");
    StatusOr<BenchFile> loaded = load_bench_file(path);
    ASSERT_TRUE(loaded.is_ok()) << loaded.status().to_string();
    EXPECT_FALSE(loaded.value().provenance.present);
    EXPECT_EQ(loaded.value().metrics.size(), 5u);
    for (const BenchMetric &m : loaded.value().metrics)
        EXPECT_EQ(m.cov, 0.0);
    std::remove(path.c_str());

    // Cross-schema comparison warns about the absent provenance.
    const std::string path2 = write_temp("bench2b.json", kBench2Doc);
    StatusOr<BenchFile> newer = load_bench_file(path2);
    ASSERT_TRUE(newer.is_ok());
    const CompareReport report =
        compare_bench(loaded.value(), newer.value());
    EXPECT_FALSE(report.environment_warnings.empty());
    std::remove(path2.c_str());
}

TEST(PerfCompare, SchemaMismatchIsALoadError)
{
    const std::string path = write_temp(
        "badschema.json", "{\"schema\": \"hdvb-serve/1\"}");
    const StatusOr<BenchFile> loaded = load_bench_file(path);
    ASSERT_FALSE(loaded.is_ok());
    EXPECT_NE(loaded.status().message().find("hdvb-serve/1"),
              std::string::npos);
    std::remove(path.c_str());

    const std::string no_schema =
        write_temp("noschema.json", "{\"pr\": 8}");
    EXPECT_FALSE(load_bench_file(no_schema).is_ok());
    std::remove(no_schema.c_str());

    EXPECT_FALSE(load_bench_file("/nonexistent.json").is_ok());
}

TEST(PerfCompare, DoctoredFpsCopyRegresses)
{
    // The ctest gate's self-test in miniature: scale every fps metric
    // by 0.8 and the comparator must name regressions.
    StatusOr<JsonValue> doc = parse_json(kBench2Doc);
    ASSERT_TRUE(doc.is_ok());
    const int scaled = doctor_bench_fps(&doc.value(), 0.8);
    // encode median, decode median, aggregate fps (never the _cov
    // fields).
    EXPECT_EQ(scaled, 3);

    const std::string old_path =
        write_temp("orig.json", kBench2Doc);
    const std::string new_path =
        write_temp("doctored.json", doc.value().to_json());
    StatusOr<BenchFile> older = load_bench_file(old_path);
    StatusOr<BenchFile> newer = load_bench_file(new_path);
    ASSERT_TRUE(older.is_ok());
    ASSERT_TRUE(newer.is_ok());
    const CompareReport report =
        compare_bench(older.value(), newer.value());
    EXPECT_TRUE(report.has_regressions());
    // decode fps CoV is 20% -> 60% threshold swallows the 20% drop;
    // encode (5% CoV -> 15%) and aggregate (5% -> 15%) must fire.
    EXPECT_EQ(report.regressed, 2);
    bool named = false;
    for (const MetricComparison &row : report.rows) {
        if (row.verdict == MetricVerdict::kRegressed &&
            row.name ==
                "codec/h264/rush_hour/576p25/avx2/encode_fps")
            named = true;
    }
    EXPECT_TRUE(named);
    std::remove(old_path.c_str());
    std::remove(new_path.c_str());
}

TEST(PerfCompare, VerdictNames)
{
    EXPECT_STREQ(verdict_name(MetricVerdict::kImproved), "improved");
    EXPECT_STREQ(verdict_name(MetricVerdict::kRegressed), "regressed");
    EXPECT_STREQ(verdict_name(MetricVerdict::kWithinNoise),
                 "within-noise");
    EXPECT_STREQ(verdict_name(MetricVerdict::kMissing), "missing");
    EXPECT_STREQ(verdict_name(MetricVerdict::kNew), "new");
}

}  // namespace
}  // namespace hdvb
