/**
 * @file
 * Unit tests for motion compensation (all three interpolation schemes)
 * and motion estimation (full search, EPZS, hexagon, sub-pel refine).
 */
#include <gtest/gtest.h>

#include <random>

#include "mc/mc.h"
#include "me/me.h"
#include "synth/synth.h"

namespace hdvb {
namespace {

Plane
random_plane(int w, int h, unsigned seed)
{
    Plane plane(w, h, kRefBorder);
    std::mt19937 rng(seed);
    for (int y = 0; y < h; ++y)
        for (int x = 0; x < w; ++x)
            plane.at(x, y) = static_cast<Pixel>(rng());
    plane.extend_borders();
    return plane;
}

TEST(McHalfpel, IntegerPositionIsPureCopy)
{
    const Plane ref = random_plane(64, 64, 1);
    const Dsp &dsp = get_dsp(best_simd_level());
    Pixel dst[16 * 16];
    mc_halfpel(ref, 16, 16, {4, -6}, dst, 16, 16, 16, dsp);
    for (int y = 0; y < 16; ++y)
        for (int x = 0; x < 16; ++x)
            ASSERT_EQ(dst[y * 16 + x], ref.at(16 + 2 + x, 16 - 3 + y));
}

TEST(McHalfpel, HalfPositionsAverageNeighbours)
{
    const Plane ref = random_plane(64, 64, 2);
    const Dsp &dsp = get_dsp(best_simd_level());
    Pixel dst[8 * 8];
    mc_halfpel(ref, 8, 8, {1, 0}, dst, 8, 8, 8, dsp);
    EXPECT_EQ(dst[0], (ref.at(8, 8) + ref.at(9, 8) + 1) >> 1);
    mc_halfpel(ref, 8, 8, {0, 1}, dst, 8, 8, 8, dsp);
    EXPECT_EQ(dst[0], (ref.at(8, 8) + ref.at(8, 9) + 1) >> 1);
    mc_halfpel(ref, 8, 8, {1, 1}, dst, 8, 8, 8, dsp);
    EXPECT_EQ(dst[0], (ref.at(8, 8) + ref.at(9, 8) + ref.at(8, 9) +
                       ref.at(9, 9) + 2) >> 2);
}

TEST(McQpelBilin, QuarterWeightsInterpolateLinearly)
{
    // On a horizontal ramp, quarter-pel positions must interpolate
    // linearly between samples.
    Plane ref(64, 64, kRefBorder);
    for (int y = 0; y < 64; ++y)
        for (int x = 0; x < 64; ++x)
            ref.at(x, y) = static_cast<Pixel>(4 * x);
    ref.extend_borders();
    const Dsp &dsp = get_dsp(best_simd_level());
    Pixel dst[8 * 8];
    for (int fx = 0; fx < 4; ++fx) {
        mc_qpel_bilin(ref, 8, 8, {static_cast<s16>(fx), 0}, dst, 8, 8,
                      8, dsp);
        EXPECT_NEAR(dst[0], 32 + fx, 1) << "fx=" << fx;
    }
}

TEST(McH264Luma, AllSixteenPositionsStayInRangeAndDiffer)
{
    const Plane ref = random_plane(64, 64, 3);
    const Dsp &dsp = get_dsp(best_simd_level());
    Pixel first[16 * 16];
    int distinct = 0;
    for (int fy = 0; fy < 4; ++fy) {
        for (int fx = 0; fx < 4; ++fx) {
            Pixel dst[16 * 16];
            mc_h264_luma(ref, 16, 16,
                         {static_cast<s16>(fx), static_cast<s16>(fy)},
                         dst, 16, 16, 16, dsp);
            if (fx == 0 && fy == 0) {
                std::copy(dst, dst + 256, first);
            } else if (!std::equal(dst, dst + 256, first)) {
                ++distinct;
            }
        }
    }
    EXPECT_EQ(distinct, 15);  // every fractional position differs
}

TEST(McH264Luma, HalfPelMatchesSixTapFormula)
{
    const Plane ref = random_plane(64, 64, 4);
    const Dsp &dsp = get_dsp(SimdLevel::kScalar);
    Pixel dst[4 * 4];
    mc_h264_luma(ref, 16, 16, {2, 0}, dst, 4, 4, 4, dsp);
    const int x = 16, y = 16;
    const int v = ref.at(x - 2, y) - 5 * ref.at(x - 1, y) +
                  20 * ref.at(x, y) + 20 * ref.at(x + 1, y) -
                  5 * ref.at(x + 2, y) + ref.at(x + 3, y);
    EXPECT_EQ(dst[0], clamp_pixel((v + 16) >> 5));
}

TEST(McH264Chroma, EighthPelBilinear)
{
    const Plane ref = random_plane(32, 32, 5);
    Pixel dst[4 * 4];
    // mv 8 quarter-pel = 1 full chroma sample: pure copy shifted by 1.
    mc_h264_chroma(ref, 8, 8, {8, 0}, dst, 4, 4, 4);
    EXPECT_EQ(dst[0], ref.at(9, 8));
    // mv 4 = half chroma sample: 50/50 blend.
    mc_h264_chroma(ref, 8, 8, {4, 0}, dst, 4, 4, 4);
    EXPECT_EQ(dst[0], (ref.at(8, 8) * 4 + ref.at(9, 8) * 4 + 4) >> 3);
}

TEST(ChromaMvDerivation, DividesTowardZero)
{
    EXPECT_EQ(chroma_mv_from_halfpel({5, -5}).x, 2);
    EXPECT_EQ(chroma_mv_from_halfpel({5, -5}).y, -2);
    EXPECT_EQ(chroma_mv_from_qpel({7, -7}).x, 3);
    EXPECT_EQ(chroma_mv_from_qpel({7, -7}).y, -3);
}

// ---- motion estimation ----

class MeShiftTest : public ::testing::TestWithParam<std::pair<int, int>>
{
};

TEST_P(MeShiftTest, FullSearchRecoversPlantedMotion)
{
    const auto [dx, dy] = GetParam();
    Plane ref = random_plane(96, 96, 10);
    Plane cur(96, 96, kRefBorder);
    for (int y = 0; y < 96; ++y)
        for (int x = 0; x < 96; ++x)
            cur.at(x, y) = ref.at(clamp(x + dx, 0, 95),
                                  clamp(y + dy, 0, 95));

    const Dsp &dsp = get_dsp(best_simd_level());
    MeParams params{12, 32, 1, &dsp};
    MotionEstimator me(params);
    MeBlock blk{&cur, &ref, 40, 40, 16, 16};
    const MeResult result = me.full_search(blk, {});
    EXPECT_EQ(result.mv.x, dx);
    EXPECT_EQ(result.mv.y, dy);
    EXPECT_EQ(result.sad, 0);
}

TEST_P(MeShiftTest, EpzsAndHexMatchFullSearchOnCleanShift)
{
    // Zonal searches (EPZS, hexagon) descend the SAD landscape; unlike
    // exhaustive search they need gradients, so this test uses a
    // smooth paraboloid pattern with a unique alignment minimum (pure
    // noise has a flat landscape that only full search can solve).
    const auto [dx, dy] = GetParam();
    Plane ref(96, 96, kRefBorder);
    for (int y = 0; y < 96; ++y) {
        for (int x = 0; x < 96; ++x) {
            const int r2 = (x - 48) * (x - 48) + (y - 48) * (y - 48);
            ref.at(x, y) = clamp_pixel(r2 / 40);  // no clamp anywhere
        }
    }
    ref.extend_borders();
    Plane cur(96, 96, kRefBorder);
    for (int y = 0; y < 96; ++y)
        for (int x = 0; x < 96; ++x)
            cur.at(x, y) = ref.at(clamp(x + dx, 0, 95),
                                  clamp(y + dy, 0, 95));

    const Dsp &dsp = get_dsp(best_simd_level());
    MeParams params{12, 32, 1, &dsp};
    MotionEstimator me(params);
    // Block away from the paraboloid centre, where the gradient is
    // strong in both axes.
    MeBlock blk{&cur, &ref, 8, 8, 16, 16};
    const std::vector<MotionVector> no_cands;
    const MeResult epzs = me.epzs(blk, {}, no_cands);
    const MeResult hex = me.hex(blk, {}, no_cands);
    // Fast searches trade exactness for speed by design: EPZS early-
    // terminates once SAD falls below one grey level per sample (its
    // convergence threshold), and hexagon may stop one rate-cost-
    // equivalent step short of the optimum. The contract is therefore
    // a per-sample residual bound, not exact-zero.
    EXPECT_LE(epzs.sad, 16 * 16)
        << "epzs missed (" << dx << "," << dy << ")";
    EXPECT_LE(hex.sad, 2 * 16 * 16)
        << "hex missed (" << dx << "," << dy << ")";
}

INSTANTIATE_TEST_SUITE_P(
    Shifts, MeShiftTest,
    ::testing::Values(std::pair{0, 0}, std::pair{3, 0}, std::pair{0, -4},
                      std::pair{-5, 2}, std::pair{7, 7},
                      std::pair{-8, -3}));

TEST(MeBounds, WindowClampedNearPictureEdge)
{
    Plane ref = random_plane(64, 64, 12);
    Plane cur = random_plane(64, 64, 13);
    const Dsp &dsp = get_dsp(best_simd_level());
    MeParams params{32, 32, 1, &dsp};
    MotionEstimator me(params);
    MeBlock blk{&cur, &ref, 0, 0, 16, 16};
    int min_x, max_x, min_y, max_y;
    me.mv_bounds(blk, &min_x, &max_x, &min_y, &max_y);
    EXPECT_GE(min_x, -kMeMargin);
    EXPECT_GE(min_y, -kMeMargin);
    EXPECT_LE(max_x, 64 + kMeMargin - 16);
    // The full window must be searchable without touching unsafe rows.
    const MeResult result = me.full_search(blk, {});
    EXPECT_GE(result.mv.x, min_x);
    EXPECT_LE(result.mv.x, max_x);
}

TEST(MeCandidates, GoodCandidateShortCircuitsToExactMatch)
{
    Plane ref = random_plane(96, 96, 14);
    Plane cur(96, 96, kRefBorder);
    const int dx = 11, dy = -9;  // outside the diamond's casual reach
    for (int y = 0; y < 96; ++y)
        for (int x = 0; x < 96; ++x)
            cur.at(x, y) = ref.at(clamp(x + dx, 0, 95),
                                  clamp(y + dy, 0, 95));
    const Dsp &dsp = get_dsp(best_simd_level());
    MeParams params{16, 32, 1, &dsp};
    MotionEstimator me(params);
    MeBlock blk{&cur, &ref, 48, 48, 16, 16};
    const std::vector<MotionVector> cands = {
        {static_cast<s16>(dx), static_cast<s16>(dy)}};
    const MeResult result = me.epzs(blk, {}, cands);
    EXPECT_EQ(result.sad, 0);
}

TEST(SubpelRefine, FindsPlantedHalfPelShift)
{
    // Build cur as the half-pel interpolation of ref: the refiner
    // should prefer the (1, 0) half-pel position over integer ones.
    Plane ref = random_plane(96, 96, 15);
    Plane cur(96, 96, kRefBorder);
    const Dsp &dsp = get_dsp(best_simd_level());
    for (int y = 0; y < 96; ++y)
        for (int x = 0; x < 96; ++x)
            cur.at(x, y) = static_cast<Pixel>(
                (ref.at(x, y) + ref.at(clamp(x + 1, 0, 95), y) + 1) >>
                1);
    MeParams params{8, 32, 1, &dsp};
    MeBlock blk{&cur, &ref, 40, 40, 16, 16};
    const MeResult result = subpel_refine(
        blk, {0, 0}, {0, 0}, params, {1}, false,
        [&](MotionVector mv, Pixel *dst, int ds) {
            mc_halfpel(ref, blk.x0, blk.y0, mv, dst, ds, 16, 16, dsp);
        });
    EXPECT_EQ(result.mv.x, 1);
    EXPECT_EQ(result.mv.y, 0);
    EXPECT_EQ(result.sad, 0);
}

TEST(MvRateCost, GrowsWithDistanceFromPredictor)
{
    const int near = mv_rate_cost({2, 2}, {0, 0}, 64);
    const int far = mv_rate_cost({40, -40}, {0, 0}, 64);
    EXPECT_LT(near, far);
    EXPECT_EQ(mv_rate_cost({5, 5}, {5, 5}, 64),
              mv_rate_cost({0, 0}, {0, 0}, 64));
}

}  // namespace
}  // namespace hdvb
