/**
 * @file
 * Unit tests for the shared codec framework: run/level entropy coding,
 * configuration validation, GOP scheduling / display reordering, and
 * the HDV1 container.
 */
#include <gtest/gtest.h>

#include <random>

#include "codec/codec.h"
#include "codec/run_level.h"
#include "container/container.h"
#include "dsp/zigzag.h"

namespace hdvb {
namespace {

// ---- run/level coding ----

class RunLevelRoundTrip
    : public ::testing::TestWithParam<std::pair<RunLevelProfile, int>>
{
};

TEST_P(RunLevelRoundTrip, RandomSparseBlocks)
{
    const auto [profile, density] = GetParam();
    const RunLevelCoder &coder = RunLevelCoder::get(profile);
    std::mt19937 rng(static_cast<unsigned>(density) * 131 + 7);
    for (int trial = 0; trial < 100; ++trial) {
        Coeff blk[64] = {};
        for (int i = 0; i < 64; ++i) {
            if (static_cast<int>(rng() % 100) < density) {
                int v = 1 + static_cast<int>(rng() % 300);
                if (rng() & 1)
                    v = -v;
                blk[i] = static_cast<Coeff>(v);
            }
        }
        BitWriter bw;
        coder.encode_block(bw, blk, 0);
        const size_t bits = bw.bit_count();
        EXPECT_EQ(bits, static_cast<size_t>(coder.block_bits(blk, 0)));
        const std::vector<u8> bytes = bw.finish();
        BitReader br(bytes);
        Coeff out[64] = {};
        ASSERT_TRUE(coder.decode_block(br, out, 0));
        for (int i = 0; i < 64; ++i)
            ASSERT_EQ(out[i], blk[i]);
    }
}

INSTANTIATE_TEST_SUITE_P(
    ProfilesAndDensities, RunLevelRoundTrip,
    ::testing::Values(
        std::pair{RunLevelProfile::kMpeg2Intra, 5},
        std::pair{RunLevelProfile::kMpeg2Inter, 20},
        std::pair{RunLevelProfile::kMpeg2Inter, 70},
        std::pair{RunLevelProfile::kMpeg4Intra, 5},
        std::pair{RunLevelProfile::kMpeg4Inter, 20},
        std::pair{RunLevelProfile::kMpeg4Inter, 70}));

TEST(RunLevel, AcOnlyStartPositionSkipsDc)
{
    const RunLevelCoder &coder =
        RunLevelCoder::get(RunLevelProfile::kMpeg4Intra);
    Coeff blk[64] = {};
    blk[0] = 999;  // DC must NOT be coded with start=1
    blk[kZigzag8x8[1]] = -3;
    BitWriter bw;
    coder.encode_block(bw, blk, 1);
    const std::vector<u8> bytes = bw.finish();
    BitReader br(bytes);
    Coeff out[64] = {};
    ASSERT_TRUE(coder.decode_block(br, out, 1));
    EXPECT_EQ(out[0], 0);
    EXPECT_EQ(out[kZigzag8x8[1]], -3);
}

TEST(RunLevel, EscapePathHandlesExtremeRunAndLevel)
{
    const RunLevelCoder &coder =
        RunLevelCoder::get(RunLevelProfile::kMpeg2Inter);
    Coeff blk[64] = {};
    blk[kZigzag8x8[60]] = 2000;   // long run + big level -> escape
    blk[kZigzag8x8[63]] = -2047;
    BitWriter bw;
    coder.encode_block(bw, blk, 0);
    const std::vector<u8> bytes = bw.finish();
    BitReader br(bytes);
    Coeff out[64] = {};
    ASSERT_TRUE(coder.decode_block(br, out, 0));
    EXPECT_EQ(out[kZigzag8x8[60]], 2000);
    EXPECT_EQ(out[kZigzag8x8[63]], -2047);
}

TEST(RunLevel, EmptyBlockCostsOnlyEob)
{
    const RunLevelCoder &coder =
        RunLevelCoder::get(RunLevelProfile::kMpeg4Inter);
    Coeff blk[64] = {};
    BitWriter bw;
    coder.encode_block(bw, blk, 0);
    EXPECT_LE(bw.bit_count(), 3u);  // EOB is the most frequent symbol
}

TEST(RunLevel, DecodeRejectsGarbage)
{
    const RunLevelCoder &coder =
        RunLevelCoder::get(RunLevelProfile::kMpeg2Inter);
    std::mt19937 rng(71);
    int failures = 0;
    for (int trial = 0; trial < 50; ++trial) {
        std::vector<u8> garbage(24);
        for (auto &b : garbage)
            b = static_cast<u8>(rng());
        BitReader br(garbage);
        Coeff out[64] = {};
        // Must terminate (returning either way) without crashing.
        if (!coder.decode_block(br, out, 0))
            ++failures;
    }
    SUCCEED() << failures << "/50 garbage blocks rejected";
}

TEST(RunLevel, Mpeg2EscapeCostsMoreThanMpeg4)
{
    // The era gap this repo models: a mid-size level that MPEG-4's
    // wider table codes directly needs the expensive MPEG-2 escape.
    const RunLevelCoder &m2 =
        RunLevelCoder::get(RunLevelProfile::kMpeg2Inter);
    const RunLevelCoder &m4 =
        RunLevelCoder::get(RunLevelProfile::kMpeg4Inter);
    Coeff blk[64] = {};
    blk[kZigzag8x8[3]] = 7;  // level 7: direct in MPEG-4, escape in MPEG-2
    EXPECT_GT(m2.block_bits(blk, 0), m4.block_bits(blk, 0));
}

// ---- configuration ----

TEST(CodecConfig, DefaultAtBenchmarkSizesValidates)
{
    CodecConfig cfg;
    cfg.width = 1920;
    cfg.height = 1088;
    EXPECT_TRUE(cfg.validate().is_ok());
}

TEST(CodecConfig, RejectsBadGeometryAndRanges)
{
    CodecConfig cfg;
    cfg.width = 100;  // not a multiple of 16
    cfg.height = 64;
    EXPECT_FALSE(cfg.validate().is_ok());
    cfg.width = 64;
    EXPECT_TRUE(cfg.validate().is_ok());
    cfg.qscale = 0;
    EXPECT_FALSE(cfg.validate().is_ok());
    cfg.qscale = 5;
    cfg.qp = 99;
    EXPECT_FALSE(cfg.validate().is_ok());
    cfg.qp = 26;
    cfg.bframes = 9;
    EXPECT_FALSE(cfg.validate().is_ok());
    cfg.bframes = 2;
    cfg.me_range = 1000;
    EXPECT_FALSE(cfg.validate().is_ok());
}

TEST(PictureType, Names)
{
    EXPECT_STREQ(picture_type_name(PictureType::kI), "I");
    EXPECT_STREQ(picture_type_name(PictureType::kP), "P");
    EXPECT_STREQ(picture_type_name(PictureType::kB), "B");
}

// ---- container ----

EncodedStream
make_test_stream()
{
    EncodedStream stream;
    stream.codec = "h264";
    stream.width = 64;
    stream.height = 48;
    stream.fps_num = 25;
    stream.fps_den = 1;
    std::mt19937 rng(5);
    for (int i = 0; i < 7; ++i) {
        Packet p;
        p.type = i == 0 ? PictureType::kI
                        : (i % 3 == 1 ? PictureType::kP
                                      : PictureType::kB);
        p.poc = i;
        p.coding_index = i;
        p.data.resize(rng() % 300);
        for (auto &b : p.data)
            b = static_cast<u8>(rng());
        stream.packets.push_back(std::move(p));
    }
    return stream;
}

TEST(Container, SerializeParseRoundTrip)
{
    const EncodedStream stream = make_test_stream();
    const std::vector<u8> bytes = serialize_stream(stream);
    EncodedStream parsed;
    ASSERT_TRUE(parse_stream(bytes, &parsed).is_ok());
    EXPECT_EQ(parsed.codec, stream.codec);
    EXPECT_EQ(parsed.width, stream.width);
    EXPECT_EQ(parsed.height, stream.height);
    ASSERT_EQ(parsed.packets.size(), stream.packets.size());
    for (size_t i = 0; i < parsed.packets.size(); ++i) {
        EXPECT_EQ(parsed.packets[i].data, stream.packets[i].data);
        EXPECT_EQ(parsed.packets[i].type, stream.packets[i].type);
        EXPECT_EQ(parsed.packets[i].poc, stream.packets[i].poc);
    }
    EXPECT_EQ(parsed.total_bits(), stream.total_bits());
}

TEST(Container, FileRoundTrip)
{
    const std::string path =
        ::testing::TempDir() + "/hdvb_container_test.hdv";
    const EncodedStream stream = make_test_stream();
    ASSERT_TRUE(write_stream_file(path, stream).is_ok());
    EncodedStream loaded;
    ASSERT_TRUE(read_stream_file(path, &loaded).is_ok());
    EXPECT_EQ(loaded.packets.size(), stream.packets.size());
    std::remove(path.c_str());
}

TEST(Container, RejectsBadMagicTruncationAndBadType)
{
    const EncodedStream stream = make_test_stream();
    std::vector<u8> bytes = serialize_stream(stream);

    EncodedStream out;
    std::vector<u8> bad = bytes;
    bad[0] = 'X';
    EXPECT_EQ(parse_stream(bad, &out).code(),
              StatusCode::kCorruptStream);

    std::vector<u8> truncated(bytes.begin(),
                              bytes.begin() + bytes.size() / 2);
    EXPECT_EQ(parse_stream(truncated, &out).code(),
              StatusCode::kCorruptStream);

    // Corrupt the first packet's picture-type byte (offset 24+4).
    bad = bytes;
    bad[28] = 17;
    EXPECT_EQ(parse_stream(bad, &out).code(),
              StatusCode::kCorruptStream);
}

TEST(Container, RejectsImplausibleDimensions)
{
    EncodedStream stream = make_test_stream();
    stream.width = 0;
    const std::vector<u8> bytes = serialize_stream(stream);
    EncodedStream out;
    EXPECT_FALSE(parse_stream(bytes, &out).is_ok());
}

}  // namespace
}  // namespace hdvb
