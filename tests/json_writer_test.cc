/**
 * @file
 * Unit tests for the JSON emitter behind the sweep reports.
 */
#include <gtest/gtest.h>

#include <limits>

#include "common/json_writer.h"

namespace hdvb {
namespace {

TEST(JsonWriter, NestedDocumentWithCommas)
{
    JsonWriter json;
    json.begin_object();
    json.field("name", "sweep");
    json.field("jobs", 4);
    json.field("wall", 1.5);
    json.field("ok", true);
    json.key("points");
    json.begin_array();
    json.begin_object();
    json.field("i", 0);
    json.end_object();
    json.begin_object();
    json.field("i", 1);
    json.end_object();
    json.end_array();
    json.end_object();
    EXPECT_EQ(json.str(),
              "{\"name\":\"sweep\",\"jobs\":4,\"wall\":1.5,"
              "\"ok\":true,\"points\":[{\"i\":0},{\"i\":1}]}");
}

TEST(JsonWriter, EscapesStrings)
{
    EXPECT_EQ(JsonWriter::escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    EXPECT_EQ(JsonWriter::escape(std::string("x\x01y")), "x\\u0001y");
    JsonWriter json;
    json.begin_object();
    json.field("k\"ey", "v\\al");
    json.end_object();
    EXPECT_EQ(json.str(), "{\"k\\\"ey\":\"v\\\\al\"}");
}

TEST(JsonWriter, TopLevelScalarsAndArrays)
{
    JsonWriter json;
    json.begin_array();
    json.value(1);
    json.value(2.25);
    json.value("three");
    json.value(false);
    json.value(u64{18446744073709551615ull});
    json.end_array();
    EXPECT_EQ(json.str(),
              "[1,2.25,\"three\",false,18446744073709551615]");
}

TEST(JsonWriter, NonFiniteNumbersBecomeNull)
{
    JsonWriter json;
    json.begin_array();
    json.value(std::numeric_limits<double>::infinity());
    json.value(std::numeric_limits<double>::quiet_NaN());
    json.end_array();
    EXPECT_EQ(json.str(), "[null,null]");
}

}  // namespace
}  // namespace hdvb
