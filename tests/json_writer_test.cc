/**
 * @file
 * Unit tests for the JSON emitter behind the sweep reports.
 */
#include <gtest/gtest.h>

#include <clocale>
#include <cstdlib>
#include <limits>
#include <string>

#include "common/json_writer.h"

namespace hdvb {
namespace {

TEST(JsonWriter, NestedDocumentWithCommas)
{
    JsonWriter json;
    json.begin_object();
    json.field("name", "sweep");
    json.field("jobs", 4);
    json.field("wall", 1.5);
    json.field("ok", true);
    json.key("points");
    json.begin_array();
    json.begin_object();
    json.field("i", 0);
    json.end_object();
    json.begin_object();
    json.field("i", 1);
    json.end_object();
    json.end_array();
    json.end_object();
    EXPECT_EQ(json.str(),
              "{\"name\":\"sweep\",\"jobs\":4,\"wall\":1.5,"
              "\"ok\":true,\"points\":[{\"i\":0},{\"i\":1}]}");
}

TEST(JsonWriter, EscapesStrings)
{
    EXPECT_EQ(JsonWriter::escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    EXPECT_EQ(JsonWriter::escape(std::string("x\x01y")), "x\\u0001y");
    JsonWriter json;
    json.begin_object();
    json.field("k\"ey", "v\\al");
    json.end_object();
    EXPECT_EQ(json.str(), "{\"k\\\"ey\":\"v\\\\al\"}");
}

TEST(JsonWriter, TopLevelScalarsAndArrays)
{
    JsonWriter json;
    json.begin_array();
    json.value(1);
    json.value(2.25);
    json.value("three");
    json.value(false);
    json.value(u64{18446744073709551615ull});
    json.end_array();
    EXPECT_EQ(json.str(),
              "[1,2.25,\"three\",false,18446744073709551615]");
}

TEST(JsonWriter, NonFiniteNumbersBecomeNull)
{
    JsonWriter json;
    json.begin_array();
    json.value(std::numeric_limits<double>::infinity());
    json.value(std::numeric_limits<double>::quiet_NaN());
    json.end_array();
    EXPECT_EQ(json.str(), "[null,null]");
}

TEST(JsonWriter, DoublesUseShortestRoundTripForm)
{
    // The old "%.6g" emitter truncated 943.112437 to "943.112" —
    // every fps in a BENCH file lost precision. std::to_chars emits
    // the shortest string that strtod/from_chars maps back to the
    // exact same bits.
    JsonWriter json;
    json.begin_array();
    json.value(943.112437);
    json.value(0.1);
    json.value(1.0 / 3.0);
    json.value(1e-300);
    json.end_array();
    EXPECT_EQ(json.str(),
              "[943.112437,0.1,0.3333333333333333,1e-300]");
    // Shortest form: integral doubles do not grow a mantissa tail.
    JsonWriter ints;
    ints.begin_array();
    ints.value(25.0);
    ints.value(-0.0);
    ints.end_array();
    EXPECT_EQ(ints.str(), "[25,-0]");
}

std::string
emit_report_fragment()
{
    JsonWriter json;
    json.begin_object();
    json.field("fps", 943.112437);
    json.field("cov", 0.051);
    json.field("wall", 1.5);
    json.key("samples");
    json.begin_array();
    json.value(129.69);
    json.value(0.3333333333333333);
    json.end_array();
    json.end_object();
    return json.str();
}

TEST(JsonWriter, OutputIsLocaleIndependent)
{
    // Regression test for the snprintf("%.6g") emitter: under a
    // comma-decimal locale it produced "943,112" — unparseable JSON.
    // std::to_chars never consults the locale, so the bytes must be
    // identical no matter what LC_NUMERIC says.
    const std::string reference = emit_report_fragment();
    EXPECT_NE(reference.find("943.112437"), std::string::npos);

    const char *comma_locales[] = {"de_DE.UTF-8", "de_DE.utf8",
                                   "de_DE", "fr_FR.UTF-8", "fr_FR"};
    const char *active = nullptr;
    for (const char *name : comma_locales) {
        if (std::setlocale(LC_NUMERIC, name) != nullptr) {
            active = name;
            break;
        }
    }
    if (active == nullptr)
        GTEST_SKIP()
            << "no comma-decimal locale installed in this image";

    // Prove the locale actually switched the C library's decimal
    // point, then emit again and demand byte identity.
    char probe[32];
    std::snprintf(probe, sizeof probe, "%.1f", 1.5);
    const bool comma_active = std::string(probe) == "1,5";
    const std::string under_locale = emit_report_fragment();
    std::setlocale(LC_NUMERIC, "C");
    ASSERT_TRUE(comma_active) << "locale " << active
                              << " did not use comma decimals";
    EXPECT_EQ(under_locale, reference);
}

}  // namespace
}  // namespace hdvb
