/**
 * @file
 * FramePool unit tests (recycling, stats, lifetime) plus the two
 * pooling acceptance gates: steady-state encode/decode performs zero
 * heap allocations per picture after warm-up, and pooling is invisible
 * to the bitstream and decoded pixels across thread counts and SIMD
 * levels (PoolInvariance).
 */
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "codec/codec.h"
#include "core/benchmark.h"
#include "metrics/psnr.h"
#include "synth/synth.h"
#include "video/frame_pool.h"

namespace hdvb {
namespace {

// ---- FramePool unit tests ----

TEST(FramePool, FreshAcquireIsAlignedZeroedAndCounted)
{
    FramePool pool;
    const AlignedBuffer buf = pool.acquire(4096);
    ASSERT_EQ(buf.size(), 4096u);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(buf.data()) %
                  AlignedBuffer::kAlignment,
              0u);
    EXPECT_TRUE(buf.pooled());
    for (size_t i = 0; i < buf.size(); ++i)
        ASSERT_EQ(buf.data()[i], 0) << "fresh buffer not zeroed at " << i;
    const FramePoolStats stats = pool.stats();
    EXPECT_EQ(stats.buffer_allocs, 1);
    EXPECT_EQ(stats.buffer_reuses, 0);
    EXPECT_EQ(stats.outstanding, 1);
    EXPECT_EQ(stats.high_water, 1);
}

TEST(FramePool, RecyclesReturnedBufferOfSameSize)
{
    FramePool pool;
    const u8 *first_ptr = nullptr;
    {
        AlignedBuffer buf = pool.acquire(1024);
        first_ptr = buf.data();
        std::memset(buf.data(), 0xCD, buf.size());
    }  // returns to the pool
    EXPECT_EQ(pool.stats().outstanding, 0);

    const AlignedBuffer again = pool.acquire(1024);
    EXPECT_EQ(again.data(), first_ptr) << "same-size acquire must reuse";
    const FramePoolStats stats = pool.stats();
    EXPECT_EQ(stats.buffer_allocs, 1);
    EXPECT_EQ(stats.buffer_reuses, 1);
    EXPECT_EQ(stats.outstanding, 1);
}

TEST(FramePool, FreeListsAreKeyedBySize)
{
    FramePool pool;
    { AlignedBuffer buf = pool.acquire(512); }
    const AlignedBuffer other = pool.acquire(768);
    const FramePoolStats stats = pool.stats();
    EXPECT_EQ(stats.buffer_allocs, 2) << "different size must not reuse";
    EXPECT_EQ(stats.buffer_reuses, 0);
}

TEST(FramePool, HighWaterTracksPeakOutstanding)
{
    FramePool pool;
    {
        AlignedBuffer a = pool.acquire(256);
        AlignedBuffer b = pool.acquire(256);
        AlignedBuffer c = pool.acquire(256);
        EXPECT_EQ(pool.stats().outstanding, 3);
        EXPECT_EQ(pool.stats().high_water, 3);
    }
    EXPECT_EQ(pool.stats().outstanding, 0);
    const AlignedBuffer d = pool.acquire(256);
    EXPECT_EQ(pool.stats().high_water, 3) << "high water never recedes";
    EXPECT_EQ(pool.stats().buffer_reuses, 1);
}

TEST(FramePool, BuffersMayOutliveThePool)
{
    // A Frame can outlive the codec (and its pool) that produced it;
    // the shared core keeps the return path valid. ASAN-gated ctest
    // entry frame_pool_asan leans on this test to prove no leak or
    // use-after-free either way.
    AlignedBuffer escaped;
    {
        FramePool pool;
        escaped = pool.acquire(2048);
        std::memset(escaped.data(), 0x5A, escaped.size());
    }  // pool dies first
    EXPECT_EQ(escaped.data()[2047], 0x5A);
}  // escaped dies second, returning into the orphaned core

TEST(FramePool, CopyOfPooledBufferIsUnpooledDeepCopy)
{
    FramePool pool;
    AlignedBuffer original = pool.acquire(128);
    std::memset(original.data(), 0x7E, original.size());
    const AlignedBuffer copy = original;
    EXPECT_FALSE(copy.pooled());
    EXPECT_NE(copy.data(), original.data());
    EXPECT_EQ(copy.data()[127], 0x7E);
    EXPECT_EQ(pool.stats().outstanding, 1) << "copy is not checked out";
}

// ---- zero allocations per picture after warm-up ----

class PoolSteadyState : public ::testing::TestWithParam<CodecId> {};

CodecConfig
pool_config()
{
    CodecConfig cfg;
    cfg.width = 64;
    cfg.height = 48;
    cfg.qscale = 5;
    cfg.qp = 26;
    cfg.me_range = 8;
    cfg.refs = 2;
    return cfg;
}

TEST_P(PoolSteadyState, NoHeapAllocationsAfterWarmup)
{
    const CodecId codec = GetParam();
    const CodecConfig cfg = pool_config();
    constexpr int kWarmup = 12;  // covers a full GOP's frame types
    constexpr int kSteady = 12;

    std::unique_ptr<VideoEncoder> enc = make_encoder(codec, cfg).value();
    std::unique_ptr<VideoDecoder> dec = make_decoder(codec, cfg).value();
    SyntheticSource source(SequenceId::kRushHour, cfg.width, cfg.height);

    std::vector<Packet> packets;
    std::vector<Frame> decoded;
    for (int i = 0; i < kWarmup; ++i) {
        ASSERT_TRUE(enc->encode(source.next(), &packets).is_ok());
        for (const Packet &p : packets)
            ASSERT_TRUE(dec->decode(p, &decoded).is_ok());
        packets.clear();
        decoded.clear();
    }
    const s64 enc_allocs = enc->stats().pool.buffer_allocs;
    const s64 dec_allocs = dec->stats().pool.buffer_allocs;
    EXPECT_GT(enc_allocs, 0) << "pool not in use on the encode path";
    EXPECT_GT(dec_allocs, 0) << "pool not in use on the decode path";

    for (int i = 0; i < kSteady; ++i) {
        ASSERT_TRUE(enc->encode(source.next(), &packets).is_ok());
        for (const Packet &p : packets)
            ASSERT_TRUE(dec->decode(p, &decoded).is_ok());
        packets.clear();
        decoded.clear();
    }
    EXPECT_EQ(enc->stats().pool.buffer_allocs, enc_allocs)
        << "encoder allocated in steady state";
    EXPECT_EQ(dec->stats().pool.buffer_allocs, dec_allocs)
        << "decoder allocated in steady state";
    EXPECT_GT(enc->stats().pool.buffer_reuses, 0);
    EXPECT_GT(dec->stats().pool.buffer_reuses, 0);
}

TEST_P(PoolSteadyState, DisabledPoolReportsNoActivity)
{
    const CodecId codec = GetParam();
    CodecConfig cfg = pool_config();
    cfg.frame_pool = false;
    std::unique_ptr<VideoEncoder> enc = make_encoder(codec, cfg).value();
    SyntheticSource source(SequenceId::kRushHour, cfg.width, cfg.height);
    std::vector<Packet> packets;
    for (int i = 0; i < 6; ++i)
        ASSERT_TRUE(enc->encode(source.next(), &packets).is_ok());
    const FramePoolStats stats = enc->stats().pool;
    EXPECT_EQ(stats.buffer_allocs, 0);
    EXPECT_EQ(stats.buffer_reuses, 0);
    EXPECT_EQ(stats.outstanding, 0);
}

INSTANTIATE_TEST_SUITE_P(AllCodecs, PoolSteadyState,
                         ::testing::Values(CodecId::kMpeg2,
                                           CodecId::kMpeg4,
                                           CodecId::kH264),
                         [](const ::testing::TestParamInfo<CodecId> &i) {
                             return codec_name(i.param);
                         });

// ---- pooling is bitstream- and pixel-invisible ----

struct PoolRun {
    std::vector<Packet> packets;
    std::vector<Frame> decoded;
};

PoolRun
pool_encode_decode(CodecId codec, const CodecConfig &cfg, int frames)
{
    PoolRun run;
    std::unique_ptr<VideoEncoder> enc = make_encoder(codec, cfg).value();
    std::unique_ptr<VideoDecoder> dec = make_decoder(codec, cfg).value();
    SyntheticSource source(SequenceId::kPedestrianArea, cfg.width,
                           cfg.height);
    for (int i = 0; i < frames; ++i)
        EXPECT_TRUE(enc->encode(source.next(), &run.packets).is_ok());
    EXPECT_TRUE(enc->flush(&run.packets).is_ok());
    for (const Packet &p : run.packets)
        EXPECT_TRUE(dec->decode(p, &run.decoded).is_ok());
    dec->flush(&run.decoded);
    return run;
}

class PoolInvariance : public ::testing::TestWithParam<CodecId> {};

TEST_P(PoolInvariance, PoolingInvisibleAcrossThreadsAndSimd)
{
    const CodecId codec = GetParam();
    constexpr int kFrames = 8;

    // Baseline: pool off, single thread, scalar kernels.
    CodecConfig base = pool_config();
    base.frame_pool = false;
    base.threads = 1;
    base.simd = SimdLevel::kScalar;
    const PoolRun baseline = pool_encode_decode(codec, base, kFrames);
    ASSERT_FALSE(baseline.packets.empty());

    for (bool pooled : {false, true}) {
        for (int threads : {1, 2, 4}) {
            for (int s = 0; s <= static_cast<int>(best_simd_level());
                 ++s) {
                CodecConfig cfg = pool_config();
                cfg.frame_pool = pooled;
                cfg.threads = threads;
                cfg.simd = static_cast<SimdLevel>(s);
                SCOPED_TRACE(std::string(codec_name(codec)) +
                             " pool=" + (pooled ? "on" : "off") +
                             " threads=" + std::to_string(threads) +
                             " simd=" + simd_level_name(cfg.simd));
                const PoolRun run =
                    pool_encode_decode(codec, cfg, kFrames);
                ASSERT_EQ(run.packets.size(), baseline.packets.size());
                for (size_t i = 0; i < baseline.packets.size(); ++i) {
                    EXPECT_EQ(run.packets[i].data,
                              baseline.packets[i].data)
                        << "bitstream differs at packet " << i;
                }
                ASSERT_EQ(run.decoded.size(), baseline.decoded.size());
                for (size_t i = 0; i < baseline.decoded.size(); ++i) {
                    for (int p = 0; p < 3; ++p) {
                        EXPECT_EQ(
                            plane_sse(run.decoded[i].plane(p),
                                      baseline.decoded[i].plane(p)),
                            0u)
                            << "pixels differ at frame " << i
                            << " plane " << p;
                    }
                }
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(AllCodecs, PoolInvariance,
                         ::testing::Values(CodecId::kMpeg2,
                                           CodecId::kMpeg4,
                                           CodecId::kH264),
                         [](const ::testing::TestParamInfo<CodecId> &i) {
                             return codec_name(i.param);
                         });

}  // namespace
}  // namespace hdvb
