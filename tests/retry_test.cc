/**
 * @file
 * The shared retry/backoff driver (fault/retry.h) and the status
 * taxonomy it keys on: transient codes are retryable, terminal codes
 * fail fast, attempts are bounded, and the controller sleeps the
 * backoff itself.
 */
#include <gtest/gtest.h>

#include <chrono>

#include "common/status.h"
#include "fault/deadline.h"
#include "fault/retry.h"

namespace hdvb {
namespace {

TEST(StatusTaxonomy, TransientVersusTerminal)
{
    // Retryable: the condition clears on its own.
    EXPECT_TRUE(status_is_transient(StatusCode::kUnavailable));
    EXPECT_TRUE(status_is_transient(StatusCode::kDeadlineExceeded));

    // Terminal: retrying the same request cannot succeed.
    EXPECT_FALSE(status_is_transient(StatusCode::kOk));
    EXPECT_FALSE(status_is_transient(StatusCode::kInvalidArgument));
    EXPECT_FALSE(status_is_transient(StatusCode::kCorruptStream));
    EXPECT_FALSE(status_is_transient(StatusCode::kOutOfRange));
    EXPECT_FALSE(status_is_transient(StatusCode::kUnimplemented));
    EXPECT_FALSE(status_is_transient(StatusCode::kInternal));
    EXPECT_FALSE(status_is_transient(StatusCode::kResourceExhausted));
    EXPECT_FALSE(status_is_transient(StatusCode::kDataLoss));
}

TEST(StatusTaxonomy, NewCodesHaveNames)
{
    EXPECT_STREQ(status_code_name(StatusCode::kUnavailable),
                 "unavailable");
    EXPECT_STREQ(status_code_name(StatusCode::kDataLoss), "data-loss");
    EXPECT_EQ(Status::unavailable("x").code(), StatusCode::kUnavailable);
    EXPECT_EQ(Status::data_loss("x").code(), StatusCode::kDataLoss);
}

TEST(Retry, DefaultPolicyIsSingleAttempt)
{
    RetryController retry{RetryPolicy{}};
    EXPECT_EQ(retry.attempt(), 1);
    EXPECT_FALSE(retry.backoff_and_retry(Status::unavailable("busy")));
    EXPECT_EQ(retry.attempt(), 1);
}

TEST(Retry, OkNeverRetries)
{
    RetryPolicy policy;
    policy.max_attempts = 5;
    policy.initial_backoff_seconds = 0;
    RetryController retry(policy);
    EXPECT_FALSE(retry.backoff_and_retry(Status::ok()));
}

TEST(Retry, AttemptsAreBounded)
{
    RetryPolicy policy;
    policy.max_attempts = 3;
    policy.initial_backoff_seconds = 0;
    policy.transient_only = false;
    RetryController retry(policy);

    int attempts = 0;
    Status status;
    do {
        ++attempts;
        EXPECT_EQ(retry.attempt(), attempts);
        status = Status::internal("always fails");
    } while (retry.backoff_and_retry(status));
    EXPECT_EQ(attempts, 3);
}

TEST(Retry, TransientOnlySkipsTerminalCodes)
{
    RetryPolicy policy;
    policy.max_attempts = 3;
    policy.initial_backoff_seconds = 0;
    policy.transient_only = true;

    RetryController terminal(policy);
    EXPECT_FALSE(
        terminal.backoff_and_retry(Status::corrupt_stream("bad bits")));

    RetryController transient(policy);
    EXPECT_TRUE(
        transient.backoff_and_retry(Status::unavailable("busy")));
    EXPECT_EQ(transient.attempt(), 2);
}

TEST(Retry, MaxAttemptsBelowOneReadsAsOne)
{
    RetryPolicy policy;
    policy.max_attempts = 0;
    policy.initial_backoff_seconds = 0;
    policy.transient_only = false;
    RetryController retry(policy);
    EXPECT_FALSE(retry.backoff_and_retry(Status::internal("boom")));
}

TEST(Retry, ControllerSleepsTheBackoff)
{
    RetryPolicy policy;
    policy.max_attempts = 3;
    policy.initial_backoff_seconds = 0.01;
    policy.max_backoff_seconds = 0.02;
    policy.transient_only = false;

    const auto start = Deadline::Clock::now();
    RetryController retry(policy);
    Status status;
    do {
        status = Status::internal("always fails");
    } while (retry.backoff_and_retry(status));
    const double elapsed =
        std::chrono::duration<double>(Deadline::Clock::now() - start)
            .count();
    // Two retries: 0.01 + 0.02 (doubled then capped) of mandatory
    // sleep. Only the lower bound is assertable on a loaded machine.
    EXPECT_GE(elapsed, 0.025);
}

}  // namespace
}  // namespace hdvb
