/**
 * @file
 * Tests for the parallel sweep engine: the ordering contract (results
 * in input order), bit-identical streams between serial and parallel
 * runs (the Figure-1 comparability guarantee), per-point observability,
 * stream caching, and the JSON report.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "container/container.h"
#include "core/sweep.h"

namespace hdvb {
namespace {

/** Reduced-size grid so the sweep tests stay fast: every codec over
 * two sequences at 96x64 with a config override. */
std::vector<BenchPoint>
tiny_points()
{
    CodecConfig cfg;
    cfg.width = 96;
    cfg.height = 64;
    cfg.me_range = 8;
    cfg.refs = 2;
    std::vector<BenchPoint> points;
    for (SequenceId seq :
         {SequenceId::kBlueSky, SequenceId::kRushHour}) {
        for (CodecId codec : kAllCodecs) {
            BenchPoint point;
            point.codec = codec;
            point.sequence = seq;
            point.frames = 5;
            point.config = cfg;
            points.push_back(point);
        }
    }
    return points;
}

std::string
read_file(const std::string &path)
{
    std::ifstream in(path);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

TEST(SweepRunner, ResultsComeBackInInputOrder)
{
    SweepOptions options;
    options.jobs = 4;
    options.measure_decode = false;
    SweepRunner runner(options);
    const std::vector<BenchPoint> points = tiny_points();
    const std::vector<SweepResult> results = runner.run(points);
    ASSERT_EQ(results.size(), points.size());
    for (size_t i = 0; i < points.size(); ++i)
        EXPECT_EQ(results[i].point.label(), points[i].label());
}

TEST(SweepRunner, ParallelMatchesSerialBitExactly)
{
    // The engine's core guarantee: HDVB_JOBS only changes wall-clock
    // time. A 4-worker sweep must produce byte-identical encoded
    // streams, identical measured frame counts and identical PSNR to a
    // 1-worker sweep of the same point list.
    const std::vector<BenchPoint> points = tiny_points();

    SweepOptions serial;
    serial.jobs = 1;
    serial.keep_streams = true;
    SweepOptions parallel = serial;
    parallel.jobs = 4;

    const std::vector<SweepResult> a =
        SweepRunner(serial).run(points);
    const std::vector<SweepResult> b =
        SweepRunner(parallel).run(points);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        SCOPED_TRACE(points[i].label());
        EXPECT_EQ(serialize_stream(a[i].stream),
                  serialize_stream(b[i].stream));
        EXPECT_EQ(a[i].stream_bits, b[i].stream_bits);
        EXPECT_EQ(a[i].encode_frames, b[i].encode_frames);
        EXPECT_EQ(a[i].decode_frames, b[i].decode_frames);
        EXPECT_DOUBLE_EQ(a[i].psnr_y, b[i].psnr_y);
        EXPECT_DOUBLE_EQ(a[i].psnr_all, b[i].psnr_all);
    }
}

TEST(SweepRunner, ThreadedPointsMatchSingleThreadedBitExactly)
{
    // BenchPoint::threads turns on intra-codec band parallelism; the
    // contract is that it only changes wall-clock time. Encoded
    // streams, frame counts and PSNR must be byte-for-byte identical
    // to the threads=1 run for every codec.
    std::vector<BenchPoint> base = tiny_points();
    std::vector<BenchPoint> threaded = base;
    for (BenchPoint &point : threaded)
        point.threads = 4;

    SweepOptions options;
    options.jobs = 2;
    options.keep_streams = true;
    const std::vector<SweepResult> a = SweepRunner(options).run(base);
    const std::vector<SweepResult> b =
        SweepRunner(options).run(threaded);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        SCOPED_TRACE(base[i].label());
        EXPECT_EQ(b[i].point.threads, 4);
        EXPECT_EQ(b[i].point.effective_config().threads, 4);
        EXPECT_EQ(serialize_stream(a[i].stream),
                  serialize_stream(b[i].stream));
        EXPECT_EQ(a[i].decode_frames, b[i].decode_frames);
        EXPECT_DOUBLE_EQ(a[i].psnr_y, b[i].psnr_y);
        EXPECT_DOUBLE_EQ(a[i].psnr_all, b[i].psnr_all);
    }
}

TEST(SweepRunner, RecordsPerPointObservability)
{
    SweepOptions options;
    options.jobs = 2;
    SweepRunner runner(options);
    const std::vector<SweepResult> results = runner.run(tiny_points());
    for (const SweepResult &r : results) {
        EXPECT_GT(r.wall_seconds, 0.0);
        EXPECT_GE(r.worker, 0);
        EXPECT_LT(r.worker, 2);
        // Peak-RSS growth since the sweep baseline: zero is legal (a
        // point that fits in the footprint already reached), negative
        // is not.
        EXPECT_GE(r.peak_rss_delta_kb, 0);
        EXPECT_TRUE(r.encode_measured);
        EXPECT_TRUE(r.decode_measured);
        EXPECT_GT(r.encode_fps(), 0.0);
        EXPECT_GT(r.decode_fps(), 0.0);
        EXPECT_GT(r.bitrate_kbps(), 0.0);
    }
    EXPECT_GT(runner.last_wall_seconds(), 0.0);
}

TEST(SweepRunner, RssBaselineIsFreshPerRun)
{
    SweepOptions options;
    options.jobs = 1;
    SweepRunner runner(options);
    const std::vector<BenchPoint> all = tiny_points();
    const std::vector<BenchPoint> points(all.begin(), all.begin() + 1);
    (void)runner.run(points);

    // Raise the process peak RSS by ~32 MB between runs (ru_maxrss is
    // a lifetime high-water mark, so this can never be undone).
    std::vector<u8> ballast(size_t{32} << 20);
    for (size_t i = 0; i < ballast.size(); i += 4096)
        ballast[i] = static_cast<u8>(i);

    // A reused runner re-baselines at the top of every run(): memory
    // that grew between runs must not be attributed to this run's
    // points. A stale baseline would report >= 32768 kB here.
    const std::vector<SweepResult> again = runner.run(points);
    ASSERT_EQ(again.size(), 1u);
    EXPECT_GE(again[0].peak_rss_delta_kb, 0);
    EXPECT_LT(again[0].peak_rss_delta_kb, 16384);
}

TEST(SweepRunner, WritesJsonReport)
{
    const std::string path =
        ::testing::TempDir() + "/hdvb_sweep_report.json";
    SweepOptions options;
    options.jobs = 2;
    options.json_path = path;
    SweepRunner runner(options);
    const std::vector<BenchPoint> points = tiny_points();
    runner.run(points);

    const std::string report = read_file(path);
    ASSERT_FALSE(report.empty());
    EXPECT_NE(report.find("\"schema\":\"hdvb-sweep/6\""),
              std::string::npos);
    EXPECT_NE(report.find("\"jobs\":2"), std::string::npos);
    // Schema 6: per-point repeat count and median/CoV fps fields
    // (repeats defaults to 1, where median degenerates to the single
    // run and CoV to zero).
    EXPECT_NE(report.find("\"repeats\":1"), std::string::npos);
    EXPECT_NE(report.find("\"fps_median\":"), std::string::npos);
    EXPECT_NE(report.find("\"fps_cov\":"), std::string::npos);
    // Schema 5: per-point frame-pool allocation rate.
    EXPECT_NE(report.find("\"allocs_per_frame\":"), std::string::npos);
    // Schema 4: the machine's detected and effective SIMD levels at
    // the top level, both legal spellings.
    SimdLevel parsed = SimdLevel::kScalar;
    EXPECT_NE(report.find(std::string("\"simd_detected\":\"") +
                          simd_level_name(detected_simd_level()) +
                          "\""),
              std::string::npos);
    EXPECT_NE(report.find(std::string("\"simd_best\":\"") +
                          simd_level_name(best_simd_level()) + "\""),
              std::string::npos);
    EXPECT_TRUE(
        parse_simd_level(simd_level_name(detected_simd_level()),
                         &parsed));
    // Schema 2: per-point fault-isolation fields.
    EXPECT_NE(report.find("\"status\":\"ok\""), std::string::npos);
    EXPECT_NE(report.find("\"attempts\":1"), std::string::npos);
    EXPECT_NE(report.find("\"concealment\""), std::string::npos);
    // Schema 3: per-point codec thread count and peak-RSS growth
    // relative to the sweep baseline (the old absolute peak_rss_kb
    // field is gone).
    EXPECT_NE(report.find("\"threads\":1"), std::string::npos);
    EXPECT_NE(report.find("\"peak_rss_delta_kb\""), std::string::npos);
    EXPECT_EQ(report.find("\"peak_rss_kb\""), std::string::npos);
    // The report is published atomically: no temp file left behind.
    EXPECT_TRUE(read_file(path + ".tmp").empty());
    // Every point appears, by its stable label.
    for (const BenchPoint &point : points)
        EXPECT_NE(report.find("\"label\":\"" + point.label() + "\""),
                  std::string::npos);
    // Balanced structure (cheap well-formedness smoke).
    EXPECT_EQ(std::count(report.begin(), report.end(), '{'),
              std::count(report.begin(), report.end(), '}'));
    EXPECT_EQ(std::count(report.begin(), report.end(), '['),
              std::count(report.begin(), report.end(), ']'));
    std::remove(path.c_str());
}

TEST(SweepRunner, RepeatsCollectSamplesAndCov)
{
    // repeats=3 means one discarded warm-up plus three timed runs per
    // point; the result carries all three samples and derives a
    // median inside the sample range and a non-negative CoV.
    const std::vector<BenchPoint> all = tiny_points();
    const std::vector<BenchPoint> points(all.begin(), all.begin() + 2);

    const std::string path =
        ::testing::TempDir() + "/hdvb_sweep_repeats.json";
    SweepOptions options;
    options.jobs = 1;
    options.repeats = 3;
    options.json_path = path;
    const std::vector<SweepResult> results =
        SweepRunner(options).run(points);
    ASSERT_EQ(results.size(), points.size());
    for (const SweepResult &r : results) {
        EXPECT_EQ(r.repeats, 3);
        ASSERT_EQ(r.encode_fps_samples.size(), 3u);
        ASSERT_EQ(r.decode_fps_samples.size(), 3u);
        const auto [lo, hi] =
            std::minmax_element(r.encode_fps_samples.begin(),
                                r.encode_fps_samples.end());
        EXPECT_GE(r.encode_fps_median(), *lo);
        EXPECT_LE(r.encode_fps_median(), *hi);
        EXPECT_GE(r.encode_fps_cov(), 0.0);
        EXPECT_GE(r.decode_fps_cov(), 0.0);
        // The published scalar fps is the last timed run, one of the
        // samples.
        bool found = false;
        for (const double s : r.encode_fps_samples)
            if (s == r.encode_fps())
                found = true;
        EXPECT_TRUE(found);
    }

    const std::string report = read_file(path);
    EXPECT_NE(report.find("\"repeats\":3"), std::string::npos);
    EXPECT_NE(report.find("\"fps_median\":"), std::string::npos);
    EXPECT_NE(report.find("\"fps_cov\":"), std::string::npos);
    std::remove(path.c_str());
}

TEST(SweepRunner, SingleRepeatKeepsLegacySemantics)
{
    const std::vector<BenchPoint> all = tiny_points();
    const std::vector<BenchPoint> points(all.begin(), all.begin() + 1);
    SweepOptions options;
    options.jobs = 1;  // repeats defaults to 1: no warm-up, one run
    const SweepResult r = SweepRunner(options).run(points).front();
    EXPECT_EQ(r.repeats, 1);
    EXPECT_EQ(r.encode_fps_samples.size(), 1u);
    EXPECT_DOUBLE_EQ(r.encode_fps_median(), r.encode_fps());
    EXPECT_EQ(r.encode_fps_cov(), 0.0);
}

TEST(SweepRunner, FaultIsolationAndTimeout)
{
    // Three-point grid: a good point, a point whose config override
    // fails validation, and a point that "hangs" (per-frame injected
    // delay far past the timeout budget). The sweep must complete
    // every point, record each failure in its own result, and still
    // write a well-formed report.
    CodecConfig good;
    good.width = 96;
    good.height = 64;
    good.me_range = 8;
    good.refs = 2;

    BenchPoint ok_point;
    ok_point.codec = CodecId::kMpeg2;
    ok_point.sequence = SequenceId::kBlueSky;
    ok_point.frames = 3;
    ok_point.config = good;

    BenchPoint bad_point = ok_point;
    CodecConfig bad = good;
    bad.width = 100;  // not a macroblock multiple: fails validate()
    bad_point.config = bad;

    BenchPoint slow_point = ok_point;
    FaultPlan hang;
    hang.delay_seconds = 0.2;  // per frame; far past the 50 ms budget
    slow_point.fault = hang;

    const std::string path =
        ::testing::TempDir() + "/hdvb_sweep_faults.json";
    SweepOptions options;
    options.jobs = 2;
    options.point_timeout_seconds = 0.05;
    options.retry.max_attempts = 2;
    options.retry.initial_backoff_seconds = 0.01;
    options.json_path = path;
    SweepRunner runner(options);
    const std::vector<SweepResult> results =
        runner.run({ok_point, bad_point, slow_point});
    ASSERT_EQ(results.size(), 3u);

    EXPECT_TRUE(results[0].status.is_ok());
    EXPECT_EQ(results[0].attempts, 1);
    EXPECT_FALSE(results[0].timed_out);
    EXPECT_GT(results[0].psnr_y, 0.0);

    EXPECT_EQ(results[1].status.code(), StatusCode::kInvalidArgument);
    EXPECT_EQ(results[1].attempts, 2);
    EXPECT_FALSE(results[1].timed_out);

    EXPECT_EQ(results[2].status.code(), StatusCode::kDeadlineExceeded);
    EXPECT_TRUE(results[2].timed_out);
    EXPECT_EQ(results[2].attempts, 2);

    const std::string report = read_file(path);
    ASSERT_FALSE(report.empty());
    EXPECT_NE(report.find("\"status\":\"invalid-argument\""),
              std::string::npos);
    EXPECT_NE(report.find("\"status\":\"deadline-exceeded\""),
              std::string::npos);
    EXPECT_NE(report.find("\"attempts\":2"), std::string::npos);
    EXPECT_NE(report.find("\"timed_out\":true"), std::string::npos);
    std::remove(path.c_str());
}

TEST(SweepRunner, StreamCacheRoundTrips)
{
    const std::string dir = ::testing::TempDir() + "/hdvb_sweep_cache";
    BenchPoint point;  // canonical point: cacheable (no override)
    point.codec = CodecId::kMpeg2;
    point.sequence = SequenceId::kBlueSky;
    point.resolution = Resolution::k576p25;
    point.frames = 2;

    SweepOptions options;
    options.jobs = 1;
    options.measure_encode = false;
    options.measure_decode = false;
    options.keep_streams = true;
    options.cache_dir = dir;

    const SweepResult first =
        SweepRunner(options).run({point}).front();
    EXPECT_FALSE(first.from_cache);
    const SweepResult second =
        SweepRunner(options).run({point}).front();
    EXPECT_TRUE(second.from_cache);
    EXPECT_EQ(serialize_stream(first.stream),
              serialize_stream(second.stream));

    // measure_encode forces a fresh timed encode despite the cache.
    options.measure_encode = true;
    const SweepResult timed =
        SweepRunner(options).run({point}).front();
    EXPECT_FALSE(timed.from_cache);
    EXPECT_TRUE(timed.encode_measured);
    EXPECT_GT(timed.encode_seconds, 0.0);

    std::remove(stream_cache_path(dir, point).c_str());
}

TEST(SweepGrid, CanonicalOrderAndSize)
{
    const std::vector<BenchPoint> grid =
        sweep_grid(4, SimdLevel::kScalar);
    ASSERT_EQ(grid.size(), static_cast<size_t>(kCodecCount) *
                               kSequenceCount * kResolutionCount);
    // Codec is the innermost axis; resolution the outermost.
    EXPECT_EQ(grid[0].label(), "mpeg2/blue_sky/576p25/scalar");
    EXPECT_EQ(grid[1].label(), "mpeg4/blue_sky/576p25/scalar");
    EXPECT_EQ(grid[kCodecCount].label(),
              "mpeg2/pedestrian_area/576p25/scalar");
    for (const BenchPoint &point : grid) {
        EXPECT_EQ(point.frames, 4);
        EXPECT_EQ(point.simd, SimdLevel::kScalar);
        EXPECT_FALSE(point.config.has_value());
    }
    // Row structure: each consecutive kCodecCount block shares
    // (resolution, sequence) — the Table V consumption contract.
    for (size_t i = 0; i < grid.size(); i += kCodecCount) {
        for (int c = 1; c < kCodecCount; ++c) {
            EXPECT_EQ(grid[i + c].sequence, grid[i].sequence);
            EXPECT_EQ(grid[i + c].resolution, grid[i].resolution);
        }
    }
}

}  // namespace
}  // namespace hdvb
