/**
 * @file
 * Unit tests for the bitstream substrate: bit I/O, Exp-Golomb codes,
 * canonical-Huffman VLC tables and the adaptive binary range coder.
 */
#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "bitstream/bit_reader.h"
#include "bitstream/bit_writer.h"
#include "bitstream/exp_golomb.h"
#include "bitstream/range_coder.h"
#include "bitstream/vlc.h"

namespace hdvb {
namespace {

TEST(BitWriter, EmptyFinishIsEmpty)
{
    BitWriter bw;
    EXPECT_TRUE(bw.finish().empty());
    EXPECT_EQ(bw.bit_count(), 0u);
}

TEST(BitWriter, SingleByte)
{
    BitWriter bw;
    bw.put_bits(0xA5, 8);
    const std::vector<u8> bytes = bw.finish();
    ASSERT_EQ(bytes.size(), 1u);
    EXPECT_EQ(bytes[0], 0xA5);
}

TEST(BitWriter, MsbFirstOrdering)
{
    BitWriter bw;
    bw.put_bit(1);
    bw.put_bits(0, 6);
    bw.put_bit(1);
    const std::vector<u8> bytes = bw.finish();
    ASSERT_EQ(bytes.size(), 1u);
    EXPECT_EQ(bytes[0], 0x81);
}

TEST(BitWriter, ByteAlignPadsWithZeros)
{
    BitWriter bw;
    bw.put_bits(0x3, 2);
    bw.byte_align();
    EXPECT_EQ(bw.bit_count(), 8u);
    const std::vector<u8> bytes = bw.finish();
    ASSERT_EQ(bytes.size(), 1u);
    EXPECT_EQ(bytes[0], 0xC0);
}

TEST(BitWriter, ThirtyTwoBitValues)
{
    BitWriter bw;
    bw.put_bits(0xDEADBEEF, 32);
    const std::vector<u8> bytes = bw.finish();
    ASSERT_EQ(bytes.size(), 4u);
    EXPECT_EQ(bytes[0], 0xDE);
    EXPECT_EQ(bytes[3], 0xEF);
}

TEST(BitRoundTrip, RandomizedWidths)
{
    std::mt19937 rng(7);
    for (int trial = 0; trial < 50; ++trial) {
        BitWriter bw;
        std::vector<std::pair<u32, int>> items;
        for (int i = 0; i < 200; ++i) {
            const int n = 1 + static_cast<int>(rng() % 24);
            const u32 v = rng() & ((1u << n) - 1);
            items.push_back({v, n});
            bw.put_bits(v, n);
        }
        const std::vector<u8> bytes = bw.finish();
        BitReader br(bytes);
        for (const auto &[v, n] : items)
            ASSERT_EQ(br.get_bits(n), v);
        EXPECT_FALSE(br.has_error());
    }
}

TEST(BitReader, PeekDoesNotConsume)
{
    BitWriter bw;
    bw.put_bits(0xABC, 12);
    const std::vector<u8> bytes = bw.finish();
    BitReader br(bytes);
    EXPECT_EQ(br.peek_bits(12), 0xABCu);
    EXPECT_EQ(br.peek_bits(12), 0xABCu);
    EXPECT_EQ(br.get_bits(12), 0xABCu);
}

TEST(BitReader, OverreadLatchesErrorAndReturnsZeros)
{
    const std::vector<u8> bytes = {0xFF};
    BitReader br(bytes);
    EXPECT_EQ(br.get_bits(8), 0xFFu);
    EXPECT_FALSE(br.has_error());
    EXPECT_EQ(br.get_bits(8), 0u);
    EXPECT_TRUE(br.has_error());
    EXPECT_EQ(br.get_bits(16), 0u);  // stays safe after error
}

TEST(BitReader, BitsConsumedTracksPosition)
{
    const std::vector<u8> bytes = {0x12, 0x34, 0x56};
    BitReader br(bytes);
    br.get_bits(3);
    EXPECT_EQ(br.bits_consumed(), 3u);
    br.byte_align();
    EXPECT_EQ(br.bits_consumed(), 8u);
}

TEST(BitReader, FullWidthReadOnEmptyStreamReturnsZero)
{
    // Regression: get_bits(32) on an exhausted reader used to compute
    // `out << 32` on a u32, which is undefined behaviour. The full-width
    // read must return 0 and latch the error like any other overread.
    BitReader br(nullptr, 0);
    EXPECT_EQ(br.get_bits(32), 0u);
    EXPECT_TRUE(br.has_error());
}

TEST(BitReader, FullWidthReadOnTruncatedStreamReturnsZero)
{
    // Partial data before exhaustion: the bits that exist land in the
    // high end of the result and the missing tail zero-fills.
    const std::vector<u8> bytes = {0xAB};
    BitReader br(bytes);
    EXPECT_EQ(br.get_bits(32), 0xAB000000u);
    EXPECT_TRUE(br.has_error());
    // And a second full-width read after the latch stays at zero.
    EXPECT_EQ(br.get_bits(32), 0u);
}

// ---- Exp-Golomb ----

TEST(ExpGolomb, KnownCodes)
{
    BitWriter bw;
    write_ue(bw, 0);  // "1"
    write_ue(bw, 1);  // "010"
    write_ue(bw, 2);  // "011"
    write_ue(bw, 3);  // "00100"
    const std::vector<u8> bytes = bw.finish();
    BitReader br(bytes);
    EXPECT_EQ(read_ue(br), 0u);
    EXPECT_EQ(read_ue(br), 1u);
    EXPECT_EQ(read_ue(br), 2u);
    EXPECT_EQ(read_ue(br), 3u);
}

TEST(ExpGolomb, UnsignedRoundTripSweep)
{
    BitWriter bw;
    for (u32 v = 0; v < 1000; ++v)
        write_ue(bw, v);
    write_ue(bw, 1u << 20);
    const std::vector<u8> bytes = bw.finish();
    BitReader br(bytes);
    for (u32 v = 0; v < 1000; ++v)
        ASSERT_EQ(read_ue(br), v);
    EXPECT_EQ(read_ue(br), 1u << 20);
    EXPECT_FALSE(br.has_error());
}

TEST(ExpGolomb, SignedRoundTripSweep)
{
    BitWriter bw;
    for (s32 v = -500; v <= 500; ++v)
        write_se(bw, v);
    const std::vector<u8> bytes = bw.finish();
    BitReader br(bytes);
    for (s32 v = -500; v <= 500; ++v)
        ASSERT_EQ(read_se(br), v);
}

TEST(ExpGolomb, BitCountsMatchWrites)
{
    for (u32 v : {0u, 1u, 7u, 255u, 65535u}) {
        BitWriter bw;
        write_ue(bw, v);
        EXPECT_EQ(bw.bit_count(), static_cast<size_t>(ue_bits(v)));
    }
    for (s32 v : {-1000, -3, 0, 5, 12345}) {
        BitWriter bw;
        write_se(bw, v);
        EXPECT_EQ(bw.bit_count(), static_cast<size_t>(se_bits(v)));
    }
}

TEST(ExpGolomb, FastAndSlowPathsAgreeAcrossPrefixLengths)
{
    // Values straddling the 11-zero fast-path boundary: 2^11 - 2 is the
    // largest fast-path value (11 zeros), 2^11 - 1 the first slow-path
    // one (12 zeros), plus deep slow-path values.
    const u32 values[] = {0,    1,        2,        2045,     2046,
                          2047, 1u << 12, 1u << 20, 1u << 30, 0x7FFFFFFDu};
    BitWriter bw;
    for (u32 v : values)
        write_ue(bw, v);
    const std::vector<u8> bytes = bw.finish();
    BitReader br(bytes);
    for (u32 v : values)
        ASSERT_EQ(read_ue(br), v);
    EXPECT_FALSE(br.has_error());
}

TEST(ExpGolomb, TruncatedMidSuffixLatchesError)
{
    // A codeword cut off inside its suffix must zero-fill and latch the
    // reader error, on both the fast path (short prefix) and the slow
    // path (long prefix).
    {
        BitWriter bw;
        write_ue(bw, 200);  // 15-bit code
        std::vector<u8> bytes = bw.finish();
        bytes.resize(1);  // keep the prefix, cut the suffix
        BitReader br(bytes);
        (void)read_ue(br);
        EXPECT_TRUE(br.has_error());
    }
    {
        BitWriter bw;
        write_ue(bw, 1u << 20);  // 41-bit code, slow path
        std::vector<u8> bytes = bw.finish();
        bytes.resize(3);
        BitReader br(bytes);
        (void)read_ue(br);
        EXPECT_TRUE(br.has_error());
    }
}

TEST(ExpGolomb, LatchedErrorShortCircuitsReads)
{
    // Once the reader error is latched, read_ue must return 0 on the
    // first zero bit (historical slow-path semantics). The fast path is
    // gated on !has_error() precisely because it would otherwise decode
    // this window as 254 and diverge.
    const std::vector<u8> bytes = {0x00, 0xFF, 0xFF};
    BitReader br(bytes);
    br.set_error();
    EXPECT_EQ(read_ue(br), 0u);
    EXPECT_EQ(br.bits_consumed(), 1u);  // bailed at the first zero bit
}

// ---- VLC tables ----

TEST(VlcTable, SingleSymbolAlphabet)
{
    const VlcTable table = VlcTable::from_weights({42});
    BitWriter bw;
    table.encode(bw, 0);
    const std::vector<u8> bytes = bw.finish();
    BitReader br(bytes);
    EXPECT_EQ(table.decode(br), 0);
}

TEST(VlcTable, HeavySymbolsGetShortCodes)
{
    const VlcTable table = VlcTable::from_weights({1000, 100, 10, 1});
    EXPECT_LE(table.bits(0), table.bits(1));
    EXPECT_LE(table.bits(1), table.bits(2));
    EXPECT_LE(table.bits(2), table.bits(3));
}

TEST(VlcTable, RoundTripRandomStream)
{
    std::mt19937 rng(11);
    std::vector<u64> weights(100);
    for (auto &w : weights)
        w = 1 + rng() % 10000;
    const VlcTable table = VlcTable::from_weights(weights);
    std::vector<int> symbols(5000);
    BitWriter bw;
    for (auto &sym : symbols) {
        sym = static_cast<int>(rng() % weights.size());
        table.encode(bw, sym);
    }
    const std::vector<u8> bytes = bw.finish();
    BitReader br(bytes);
    for (int sym : symbols)
        ASSERT_EQ(table.decode(br), sym);
}

TEST(VlcTable, LengthLimitingKicksInForSkewedWeights)
{
    // Exponentially skewed weights would exceed 16 bits unlimited.
    std::vector<u64> weights(60);
    u64 w = 1;
    for (size_t i = 0; i < weights.size(); ++i) {
        weights[weights.size() - 1 - i] = w;
        if (w < (1ull << 55))
            w *= 2;
    }
    const VlcTable table = VlcTable::from_weights(weights);
    for (int sym = 0; sym < table.size(); ++sym)
        EXPECT_LE(table.bits(sym), VlcTable::kMaxLen);
    // Still decodable.
    BitWriter bw;
    for (int sym = 0; sym < table.size(); ++sym)
        table.encode(bw, sym);
    const std::vector<u8> bytes = bw.finish();
    BitReader br(bytes);
    for (int sym = 0; sym < table.size(); ++sym)
        ASSERT_EQ(table.decode(br), sym);
}

TEST(VlcTable, DecodeFailsOnExhaustedInput)
{
    const VlcTable table = VlcTable::from_weights({5, 4, 3, 2, 1});
    const std::vector<u8> empty;
    BitReader br(empty);
    EXPECT_EQ(table.decode(br), -1);
}

// ---- range coder ----

TEST(RangeCoder, BypassBitsRoundTrip)
{
    RangeEncoder enc;
    std::mt19937 rng(3);
    std::vector<int> bits(2000);
    for (auto &b : bits) {
        b = static_cast<int>(rng() & 1);
        enc.encode_bypass(b);
    }
    const std::vector<u8> bytes = enc.finish();
    RangeDecoder dec(bytes);
    for (int b : bits)
        ASSERT_EQ(dec.decode_bypass(), b);
    EXPECT_FALSE(dec.has_error());
}

TEST(RangeCoder, AdaptiveBitsRoundTrip)
{
    RangeEncoder enc;
    std::mt19937 rng(5);
    BitModel enc_models[8];
    std::vector<std::pair<int, int>> items;  // (model, bit)
    for (int i = 0; i < 5000; ++i) {
        const int m = static_cast<int>(rng() % 8);
        const int b = static_cast<int>(rng() % 100) < 12 ? 1 : 0;
        items.push_back({m, b});
        enc.encode_bit(enc_models[m], b);
    }
    const std::vector<u8> bytes = enc.finish();
    RangeDecoder dec(bytes);
    BitModel dec_models[8];
    for (const auto &[m, b] : items)
        ASSERT_EQ(dec.decode_bit(dec_models[m]), b);
}

TEST(RangeCoder, SkewedBitsCompressWell)
{
    RangeEncoder enc;
    BitModel model;
    for (int i = 0; i < 10000; ++i)
        enc.encode_bit(model, i % 100 == 0 ? 1 : 0);
    const std::vector<u8> bytes = enc.finish();
    // ~10000 bins at ~0.08 bit each: far below 10000 bits.
    EXPECT_LT(bytes.size(), 10000u / 8u / 4u);
}

TEST(RangeCoder, BypassValueRoundTrip)
{
    RangeEncoder enc;
    for (u32 v = 0; v < 200; ++v)
        enc.encode_bypass_bits(v, 8);
    const std::vector<u8> bytes = enc.finish();
    RangeDecoder dec(bytes);
    for (u32 v = 0; v < 200; ++v)
        ASSERT_EQ(dec.decode_bypass_bits(8), v);
}

TEST(RangeCoder, TruncatedInputSetsErrorWithoutCrashing)
{
    RangeEncoder enc;
    BitModel model;
    for (int i = 0; i < 1000; ++i)
        enc.encode_bit(model, i & 1);
    std::vector<u8> bytes = enc.finish();
    bytes.resize(bytes.size() / 2);
    RangeDecoder dec(bytes);
    BitModel dmodel;
    for (int i = 0; i < 1000; ++i)
        dec.decode_bit(dmodel);
    EXPECT_TRUE(dec.has_error());
}

class BitWidthTest : public ::testing::TestWithParam<int> {};

TEST_P(BitWidthTest, AllWidthValuesRoundTrip)
{
    const int n = GetParam();
    const u32 max = n == 32 ? 0xFFFFFFFFu : (1u << n) - 1;
    BitWriter bw;
    bw.put_bits(0, n);
    bw.put_bits(max, n);
    bw.put_bits(max >> 1, n);
    const std::vector<u8> bytes = bw.finish();
    BitReader br(bytes);
    EXPECT_EQ(br.get_bits(n), 0u);
    EXPECT_EQ(br.get_bits(n), max);
    EXPECT_EQ(br.get_bits(n), max >> 1);
}

INSTANTIATE_TEST_SUITE_P(AllWidths, BitWidthTest,
                         ::testing::Range(1, 33));

}  // namespace
}  // namespace hdvb
