/**
 * @file
 * The H.264-class codec: 4x4 integer transform, directional intra
 * prediction, variable-block-size inter prediction with multiple
 * reference frames, 6-tap quarter-sample MC, in-loop deblocking, and an
 * adaptive binary range coder ("CABAC-class") — the tool generation that
 * buys H.264 its ~50 % bitrate advantage over MPEG-2 in Table V, at the
 * highest computational cost of the three codecs.
 *
 * Benchmark role (paper Table II): stands in for the x264 encoder and
 * the FFmpeg H.264 decoder.
 */
#ifndef HDVB_H264_H264_H
#define HDVB_H264_H264_H

#include <memory>

#include "codec/codec.h"

namespace hdvb {

/** Create an H.264-class encoder; config must validate. */
std::unique_ptr<VideoEncoder> create_h264_encoder(
    const CodecConfig &config);

/** Create an H.264-class decoder. */
std::unique_ptr<VideoDecoder> create_h264_decoder(
    const CodecConfig &config);

namespace h264 {

/** Intra 16x16 prediction modes. */
enum Intra16Mode {
    kI16Vertical = 0,
    kI16Horizontal = 1,
    kI16Dc = 2,
    kI16Plane = 3,
};

/** Intra 4x4 prediction modes (subset of the standard's nine). */
enum Intra4Mode {
    kI4Dc = 0,
    kI4Vertical = 1,
    kI4Horizontal = 2,
    kI4DiagDownLeft = 3,
    kI4DiagDownRight = 4,
    kI4ModeCount = 5,
};

/** P-macroblock luma partitionings. */
enum PartMode {
    kPart16x16 = 0,
    kPart16x8 = 1,
    kPart8x16 = 2,
    kPart8x8 = 3,
};

/** B-macroblock prediction directions (16x16 only). */
enum BMode { kBBi = 0, kBFwd = 1, kBBwd = 2 };

}  // namespace h264

}  // namespace hdvb

#endif  // HDVB_H264_H264_H
