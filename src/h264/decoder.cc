/**
 * @file
 * H.264-class decoder: exact mirror of the encoder's range-coded syntax
 * and reconstruction, including the in-loop deblocking filter.
 *
 * With CodecConfig::threads > 1 the error-resilient path decodes in
 * two phases. Each row is an independent range-coded chunk, so phase 1
 * parses every row's syntax in parallel into per-MB records (all
 * failure conditions — coder errors, mode availability, reference
 * bounds, the row sentinel — are syntax-level, so a row's fate is
 * fully decided here). Phase 2 reconstructs from the records in
 * wavefront order across rows, because intra prediction reads pixels
 * from the row above; failed rows conceal in the same wavefront slot.
 * Output is identical to the serial schedule for any thread count.
 */
#include "h264/h264.h"

#include <cstring>
#include <deque>
#include <memory>
#include <vector>

#include "bitstream/bit_reader.h"
#include "bitstream/resync.h"
#include "codec/codec.h"
#include "codec/conceal.h"
#include "codec/side_info.h"
#include "common/check.h"
#include "common/thread_pool.h"
#include "common/wavefront.h"
#include "dsp/quant.h"
#include "dsp/transform4x4.h"
#include "h264/cabac_syntax.h"
#include "h264/deblock.h"
#include "h264/intra_pred.h"
#include "mc/mc.h"
#include "me/me.h"

namespace hdvb {

namespace {

using namespace hdvb::h264;

struct Partition {
    int x, y, w, h;
    MotionVector mv;
};

const Partition kPartGeom[4][4] = {
    {{0, 0, 16, 16, {}}, {}, {}, {}},
    {{0, 0, 16, 8, {}}, {0, 8, 16, 8, {}}, {}, {}},
    {{0, 0, 8, 16, {}}, {8, 0, 8, 16, {}}, {}, {}},
    {{0, 0, 8, 8, {}}, {8, 0, 8, 8, {}}, {0, 8, 8, 8, {}},
     {8, 8, 8, 8, {}}},
};

const int kPartCount[4] = {1, 2, 2, 4};

class H264Decoder final : public DecoderBase
{
  public:
    explicit H264Decoder(const CodecConfig &cfg)
        : DecoderBase(cfg),
          dsp_(get_dsp(cfg.simd)),
          mb_w_(cfg.width / 16),
          mb_h_(cfg.height / 16),
          binfo_(cfg.width, cfg.height),
          mv_grid_(static_cast<size_t>(mb_w_) * mb_h_),
          pool_(cfg.threads > 1
                    ? std::make_unique<ThreadPool>(cfg.threads)
                    : nullptr)
    {
    }

    const char *name() const override { return "h264"; }

  protected:
    Status decode_picture(const Packet &packet, Frame *out) override;

  private:
    struct MbState {
        Frame *frame;
        PictureType type;
        int mbx;
        int mby;
        MotionVector left_fwd;
        MotionVector left_bwd;
        /** Side-info slot for the current MB (serial path only). */
        MbSideInfo *rec = nullptr;
    };

    Status decode_picture_resilient(const Packet &packet, Frame *out);
    bool decode_resilient_row(MbState &st, const std::vector<u8> &row,
                              int mby, int *bad_from);
    void conceal_row(Frame *frame, PictureType type, int from, int mby);

    /** Parsed syntax of one MB for the two-phase parallel decode. */
    struct MbRec {
        enum Kind : u8 { kSkipMb, kIntraMb, kInterPMb, kInterBMb };
        Kind kind = kSkipMb;
        bool use_i4 = false;
        u8 i16_mode = 0;
        u8 i4_modes[16] = {};
        u8 part_mode = 0;
        u8 ref = 0;
        u8 b_mode = 0;
        s16 mvd[4][2] = {};  ///< P: per partition; B: fwd=0 / bwd=1
        Coeff dc_levels[16] = {};
        Coeff luma[16][16] = {};
        Coeff chroma[2][4][16] = {};
    };

    bool parse_mb(RangeDecoder &rc, Contexts &cm, const Plane &luma,
                  PictureType type, int mbx, int mby, MbRec &rec) const;
    bool parse_intra_mb(RangeDecoder &rc, Contexts &cm,
                        const Plane &luma, int mbx, int mby,
                        MbRec &rec) const;
    bool parse_residual(RangeDecoder &rc, Contexts &cm, MbRec &rec) const;
    bool parse_resilient_row(const std::vector<u8> &row,
                             const Plane &luma, PictureType type,
                             int mby, MbRec *recs, int *bad_from) const;
    void recon_mb_rec(MbState &st, const MbRec &rec);
    void recon_intra_rec(MbState &st, const MbRec &rec);

    bool decode_mb(MbState &st);
    bool decode_intra_mb(MbState &st);
    bool decode_luma_intra16(MbState &st);
    bool decode_luma_intra4(MbState &st);
    bool decode_chroma(MbState &st, const Pixel *cb_pred,
                       const Pixel *cr_pred, bool intra);
    bool decode_residual(MbState &st, const Pixel *luma_pred,
                         const Pixel *cb_pred, const Pixel *cr_pred);
    void recon_skip(MbState &st);

    MotionVector median_pred(int mbx, int mby) const;
    MotionVector clamp_mv(MotionVector mv, int x0, int y0, int w,
                          int h) const;
    void fill_binfo(const MbState &st, bool intra, s8 ref,
                    const Partition *parts, int count, u16 nz_map);

    const Frame &ref_frame(int ref_idx) const
    {
        return dpb_[dpb_.size() - 1 - static_cast<size_t>(ref_idx)];
    }

    const Dsp &dsp_;
    int mb_w_;
    int mb_h_;

    std::deque<Frame> dpb_;
    BlockInfoGrid binfo_;
    std::vector<MotionVector> mv_grid_;
    std::vector<MbRec> records_;        ///< phase-1 output (threads > 1)
    std::unique_ptr<ThreadPool> pool_;  ///< row pool (threads > 1)
    Contexts ctx_;
    RangeDecoder *rc_ = nullptr;
    const H264Quantizer *quant_i_ = nullptr;
    const H264Quantizer *quant_p_ = nullptr;
    u16 mb_nz_map_ = 0;
};

MotionVector
H264Decoder::median_pred(int mbx, int mby) const
{
    const MotionVector zero{};
    const MotionVector a =
        mbx > 0 ? mv_grid_[mby * mb_w_ + mbx - 1] : zero;
    // Matches the encoder: resilient rows predict from the left only.
    if (mby == 0 || config().error_resilience)
        return a;
    const MotionVector b = mv_grid_[(mby - 1) * mb_w_ + mbx];
    const MotionVector c = mbx + 1 < mb_w_
                               ? mv_grid_[(mby - 1) * mb_w_ + mbx + 1]
                               : zero;
    return {median3(a.x, b.x, c.x), median3(a.y, b.y, c.y)};
}

MotionVector
H264Decoder::clamp_mv(MotionVector mv, int x0, int y0, int w, int h) const
{
    const int margin = kMeMargin + 4;
    const int min_x = 4 * (-margin - x0);
    const int max_x = 4 * (config().width + margin - x0 - w);
    const int min_y = 4 * (-margin - y0);
    const int max_y = 4 * (config().height + margin - y0 - h);
    return {static_cast<s16>(clamp<int>(mv.x, min_x, max_x)),
            static_cast<s16>(clamp<int>(mv.y, min_y, max_y))};
}

void
H264Decoder::fill_binfo(const MbState &st, bool intra, s8 ref,
                        const Partition *parts, int count, u16 nz_map)
{
    const int bx0 = st.mbx * 4;
    const int by0 = st.mby * 4;
    for (int by = 0; by < 4; ++by) {
        for (int bx = 0; bx < 4; ++bx) {
            BlockInfo &info = binfo_.at(bx0 + bx, by0 + by);
            info.intra = intra ? 1 : 0;
            info.nonzero = (nz_map >> (by * 4 + bx)) & 1;
            info.ref = intra ? -1 : ref;
            info.mv = {};
            if (!intra) {
                for (int p = 0; p < count; ++p) {
                    const Partition &part = parts[p];
                    if (bx * 4 >= part.x && bx * 4 < part.x + part.w &&
                        by * 4 >= part.y && by * 4 < part.y + part.h) {
                        info.mv = part.mv;
                        break;
                    }
                }
            }
        }
    }
}

namespace {

inline void
recon4x4(const Dsp &dsp, const Coeff levels[16],
         const H264Quantizer &quant, s32 dc_coeff, Pixel *dst, int ds)
{
    Coeff tmp[16];
    std::memcpy(tmp, levels, sizeof(tmp));
    quant.dequantize4x4(tmp);
    if (dc_coeff != INT32_MIN)
        tmp[0] = static_cast<Coeff>(clamp<s32>(dc_coeff, -32768, 32767));
    h264_inv4x4(tmp);
    dsp.add_rect(dst, ds, tmp, 4, 4, 4);
}

}  // namespace

bool
H264Decoder::decode_chroma(MbState &st, const Pixel *cb_pred,
                           const Pixel *cr_pred, bool intra)
{
    const H264Quantizer &quant = intra ? *quant_i_ : *quant_p_;
    for (int comp = 1; comp < 3; ++comp) {
        Plane &plane = st.frame->plane(comp);
        const Pixel *pred = comp == 1 ? cb_pred : cr_pred;
        const int cx = st.mbx * 8;
        const int cy = st.mby * 8;
        for (int b = 0; b < 4; ++b) {
            const int x = cx + (b & 1) * 4;
            const int y = cy + (b >> 1) * 4;
            Coeff blk[16] = {};
            if (!decode_block4x4(*rc_, ctx_, blk, 0, 1))
                return false;
            const Pixel *pp = pred + (b >> 1) * 4 * 8 + (b & 1) * 4;
            Pixel *dst = plane.row(y) + x;
            dsp_.copy_rect(dst, plane.stride(), pp, 8, 4, 4);
            recon4x4(dsp_, blk, quant, INT32_MIN, dst, plane.stride());
        }
    }
    return true;
}

bool
H264Decoder::decode_luma_intra16(MbState &st)
{
    const int lx = st.mbx * 16;
    const int ly = st.mby * 16;
    const int m0 = rc_->decode_bit(ctx_.intra16_mode[0]);
    const int m1 = rc_->decode_bit(ctx_.intra16_mode[1]);
    const Intra16Mode mode = static_cast<Intra16Mode>(m0 * 2 + m1);
    if (!intra16_mode_available(lx, ly, mode))
        return false;

    Plane &luma = st.frame->luma();
    Pixel pred[16 * 16];
    predict_intra16(luma, lx, ly, mode, pred, 16);

    Coeff dc_levels[16] = {};
    if (!decode_block4x4(*rc_, ctx_, dc_levels, 0, 2))
        return false;
    Coeff levels[16][16];
    for (int b = 0; b < 16; ++b) {
        std::memset(levels[b], 0, sizeof(levels[b]));
        if (!decode_block4x4(*rc_, ctx_, levels[b], 1, 0))
            return false;
    }

    s32 dc_rec[16];
    bool dc_nz = false;
    for (int b = 0; b < 16; ++b) {
        dc_rec[b] = quant_i_->dequantize_dc(dc_levels[b]);
        dc_nz |= dc_levels[b] != 0;
    }
    hadamard4x4_inv(dc_rec);
    mb_nz_map_ = 0;
    for (int b = 0; b < 16; ++b) {
        const int x = lx + (b & 3) * 4;
        const int y = ly + (b >> 2) * 4;
        Pixel *dst = luma.row(y) + x;
        dsp_.copy_rect(dst, luma.stride(),
                       pred + (b >> 2) * 4 * 16 + (b & 3) * 4, 16, 4, 4);
        recon4x4(dsp_, levels[b], *quant_i_, (dc_rec[b] + 8) >> 4, dst,
                 luma.stride());
        bool nz = dc_nz;
        for (int i = 1; i < 16; ++i)
            nz |= levels[b][i] != 0;
        if (nz)
            mb_nz_map_ |= 1u << b;
    }
    return true;
}

bool
H264Decoder::decode_luma_intra4(MbState &st)
{
    const int lx = st.mbx * 16;
    const int ly = st.mby * 16;
    Plane &luma = st.frame->luma();
    mb_nz_map_ = 0;
    for (int b = 0; b < 16; ++b) {
        const int x = lx + (b & 3) * 4;
        const int y = ly + (b >> 2) * 4;
        const int m2 = rc_->decode_bit(ctx_.intra4_mode[0]);
        const int m1 = rc_->decode_bit(ctx_.intra4_mode[1]);
        const int m0 = rc_->decode_bit(ctx_.intra4_mode[2]);
        const int mode_idx = m2 * 4 + m1 * 2 + m0;
        if (mode_idx >= kI4ModeCount)
            return false;
        const Intra4Mode mode = static_cast<Intra4Mode>(mode_idx);
        if (!intra4_mode_available(luma, x, y, mode))
            return false;
        Pixel pred[16];
        predict_intra4(luma, x, y, mode, pred, 4);
        Coeff blk[16] = {};
        if (!decode_block4x4(*rc_, ctx_, blk, 0, 0))
            return false;
        Pixel *dst = luma.row(y) + x;
        dsp_.copy_rect(dst, luma.stride(), pred, 4, 4, 4);
        recon4x4(dsp_, blk, *quant_i_, INT32_MIN, dst, luma.stride());
        for (int i = 0; i < 16; ++i) {
            if (blk[i] != 0) {
                mb_nz_map_ |= 1u << b;
                break;
            }
        }
    }
    return true;
}

bool
H264Decoder::decode_intra_mb(MbState &st)
{
    const int use_i4 = rc_->decode_bit(ctx_.intra4_flag);
    const bool ok = use_i4 ? decode_luma_intra4(st)
                           : decode_luma_intra16(st);
    if (!ok)
        return false;

    Pixel cb_pred[8 * 8], cr_pred[8 * 8];
    predict_chroma_dc(st.frame->cb(), st.mbx * 8, st.mby * 8, cb_pred,
                      8);
    predict_chroma_dc(st.frame->cr(), st.mbx * 8, st.mby * 8, cr_pred,
                      8);
    if (!decode_chroma(st, cb_pred, cr_pred, true))
        return false;

    fill_binfo(st, true, -1, nullptr, 0, mb_nz_map_);
    mv_grid_[st.mby * mb_w_ + st.mbx] = MotionVector{};
    st.left_fwd = st.left_bwd = MotionVector{};
    if (st.rec != nullptr)
        st.rec->mode = MbSideInfo::kIntra;
    return true;
}

bool
H264Decoder::decode_residual(MbState &st, const Pixel *luma_pred,
                             const Pixel *cb_pred, const Pixel *cr_pred)
{
    const int lx = st.mbx * 16;
    const int ly = st.mby * 16;
    Plane &luma = st.frame->luma();
    mb_nz_map_ = 0;
    for (int b = 0; b < 16; ++b) {
        Coeff blk[16] = {};
        if (!decode_block4x4(*rc_, ctx_, blk, 0, 0))
            return false;
        const int x = lx + (b & 3) * 4;
        const int y = ly + (b >> 2) * 4;
        Pixel *dst = luma.row(y) + x;
        dsp_.copy_rect(dst, luma.stride(),
                       luma_pred + (b >> 2) * 4 * 16 + (b & 3) * 4, 16,
                       4, 4);
        recon4x4(dsp_, blk, *quant_p_, INT32_MIN, dst, luma.stride());
        for (int i = 0; i < 16; ++i) {
            if (blk[i] != 0) {
                mb_nz_map_ |= 1u << b;
                break;
            }
        }
    }
    return decode_chroma(st, cb_pred, cr_pred, false);
}

void
H264Decoder::recon_skip(MbState &st)
{
    const int lx = st.mbx * 16;
    const int ly = st.mby * 16;
    Pixel luma_pred[16 * 16], cb_pred[8 * 8], cr_pred[8 * 8];
    if (st.type == PictureType::kP) {
        const MotionVector mv =
            clamp_mv(median_pred(st.mbx, st.mby), lx, ly, 16, 16);
        const Frame &ref = ref_frame(0);
        mc_h264_luma(ref.luma(), lx, ly, mv, luma_pred, 16, 16, 16,
                     dsp_);
        mc_h264_chroma(ref.cb(), st.mbx * 8, st.mby * 8, mv, cb_pred, 8,
                       8, 8);
        mc_h264_chroma(ref.cr(), st.mbx * 8, st.mby * 8, mv, cr_pred, 8,
                       8, 8);
        Partition part = kPartGeom[kPart16x16][0];
        part.mv = mv;
        fill_binfo(st, false, 0, &part, 1, 0);
        mv_grid_[st.mby * mb_w_ + st.mbx] = mv;
        if (st.rec != nullptr) {
            st.rec->mode = MbSideInfo::kSkip;
            st.rec->fwd = mv;
        }
    } else {
        const Frame &fwd = dpb_[dpb_.size() - 2];
        const Frame &bwd = dpb_.back();
        Pixel fb[16 * 16], bb[16 * 16], fc[8 * 8], bc[8 * 8];
        mc_h264_luma(fwd.luma(), lx, ly, {}, fb, 16, 16, 16, dsp_);
        mc_h264_luma(bwd.luma(), lx, ly, {}, bb, 16, 16, 16, dsp_);
        dsp_.avg_rect(luma_pred, 16, fb, 16, bb, 16, 16, 16);
        mc_h264_chroma(fwd.cb(), st.mbx * 8, st.mby * 8, {}, fc, 8, 8,
                       8);
        mc_h264_chroma(bwd.cb(), st.mbx * 8, st.mby * 8, {}, bc, 8, 8,
                       8);
        dsp_.avg_rect(cb_pred, 8, fc, 8, bc, 8, 8, 8);
        mc_h264_chroma(fwd.cr(), st.mbx * 8, st.mby * 8, {}, fc, 8, 8,
                       8);
        mc_h264_chroma(bwd.cr(), st.mbx * 8, st.mby * 8, {}, bc, 8, 8,
                       8);
        dsp_.avg_rect(cr_pred, 8, fc, 8, bc, 8, 8, 8);
        Partition part = kPartGeom[kPart16x16][0];
        fill_binfo(st, false, 0, &part, 1, 0);
        st.left_fwd = st.left_bwd = MotionVector{};
        if (st.rec != nullptr)
            st.rec->mode = MbSideInfo::kSkip;
    }
    dsp_.copy_rect(st.frame->luma().row(ly) + lx,
                   st.frame->luma().stride(), luma_pred, 16, 16, 16);
    dsp_.copy_rect(st.frame->cb().row(st.mby * 8) + st.mbx * 8,
                   st.frame->cb().stride(), cb_pred, 8, 8, 8);
    dsp_.copy_rect(st.frame->cr().row(st.mby * 8) + st.mbx * 8,
                   st.frame->cr().stride(), cr_pred, 8, 8, 8);
}

bool
H264Decoder::decode_mb(MbState &st)
{
    const CodecConfig &cfg = config();
    const int lx = st.mbx * 16;
    const int ly = st.mby * 16;

    if (st.type == PictureType::kI)
        return decode_intra_mb(st);

    if (rc_->decode_bit(ctx_.mb_skip) != 0) {
        recon_skip(st);
        return !rc_->has_error();
    }
    if (rc_->decode_bit(ctx_.mb_intra) != 0)
        return decode_intra_mb(st);

    if (st.type == PictureType::kP) {
        const int m0 = rc_->decode_bit(ctx_.part_mode[0]);
        const int m1 = rc_->decode_bit(ctx_.part_mode[1]);
        const int mode = m0 * 2 + m1;
        int ref = 0;
        if (cfg.refs > 1) {
            const int max_ref =
                clamp<int>(static_cast<int>(dpb_.size()), 1, cfg.refs);
            ref = decode_ref_idx(*rc_, ctx_, max_ref);
        }
        if (ref >= static_cast<int>(dpb_.size()))
            return false;

        const int count = kPartCount[mode];
        Partition parts[4];
        MotionVector chain = median_pred(st.mbx, st.mby);
        for (int p = 0; p < count; ++p) {
            parts[p] = kPartGeom[mode][p];
            MotionVector mv{
                static_cast<s16>(chain.x + decode_mvd(*rc_, ctx_, 0)),
                static_cast<s16>(chain.y + decode_mvd(*rc_, ctx_, 1))};
            mv = clamp_mv(mv, lx + parts[p].x, ly + parts[p].y,
                          parts[p].w, parts[p].h);
            parts[p].mv = mv;
            chain = mv;
        }
        if (rc_->has_error())
            return false;

        const Frame &ref_frame_ = ref_frame(ref);
        Pixel luma_pred[16 * 16], cb_pred[8 * 8], cr_pred[8 * 8];
        for (int p = 0; p < count; ++p) {
            const Partition &part = parts[p];
            mc_h264_luma(ref_frame_.luma(), lx + part.x, ly + part.y,
                         part.mv, luma_pred + part.y * 16 + part.x, 16,
                         part.w, part.h, dsp_);
            mc_h264_chroma(ref_frame_.cb(),
                           st.mbx * 8 + part.x / 2,
                           st.mby * 8 + part.y / 2, part.mv,
                           cb_pred + (part.y / 2) * 8 + part.x / 2, 8,
                           part.w / 2, part.h / 2);
            mc_h264_chroma(ref_frame_.cr(),
                           st.mbx * 8 + part.x / 2,
                           st.mby * 8 + part.y / 2, part.mv,
                           cr_pred + (part.y / 2) * 8 + part.x / 2, 8,
                           part.w / 2, part.h / 2);
        }
        if (!decode_residual(st, luma_pred, cb_pred, cr_pred))
            return false;
        fill_binfo(st, false, static_cast<s8>(ref), parts, count,
                   mb_nz_map_);
        mv_grid_[st.mby * mb_w_ + st.mbx] = parts[0].mv;
        if (st.rec != nullptr) {
            st.rec->mode = MbSideInfo::kInterFwd;
            st.rec->ref = static_cast<u8>(ref);
            st.rec->fwd = parts[0].mv;
        }
        return true;
    }

    // B picture.
    const int b0 = rc_->decode_bit(ctx_.b_mode[0]);
    int mode = kBBi;
    if (b0 != 0)
        mode = rc_->decode_bit(ctx_.b_mode[1]) != 0 ? kBBwd : kBFwd;

    MotionVector fmv{}, bmv{};
    if (mode != kBBwd) {
        fmv = {static_cast<s16>(st.left_fwd.x +
                                decode_mvd(*rc_, ctx_, 0)),
               static_cast<s16>(st.left_fwd.y +
                                decode_mvd(*rc_, ctx_, 1))};
        fmv = clamp_mv(fmv, lx, ly, 16, 16);
    }
    if (mode != kBFwd) {
        bmv = {static_cast<s16>(st.left_bwd.x +
                                decode_mvd(*rc_, ctx_, 0)),
               static_cast<s16>(st.left_bwd.y +
                                decode_mvd(*rc_, ctx_, 1))};
        bmv = clamp_mv(bmv, lx, ly, 16, 16);
    }
    if (rc_->has_error())
        return false;

    const Frame &fwd_ref = dpb_[dpb_.size() - 2];
    const Frame &bwd_ref = dpb_.back();
    Pixel luma_pred[16 * 16], cb_pred[8 * 8], cr_pred[8 * 8];
    if (mode == kBFwd) {
        mc_h264_luma(fwd_ref.luma(), lx, ly, fmv, luma_pred, 16, 16, 16,
                     dsp_);
        mc_h264_chroma(fwd_ref.cb(), st.mbx * 8, st.mby * 8, fmv,
                       cb_pred, 8, 8, 8);
        mc_h264_chroma(fwd_ref.cr(), st.mbx * 8, st.mby * 8, fmv,
                       cr_pred, 8, 8, 8);
    } else if (mode == kBBwd) {
        mc_h264_luma(bwd_ref.luma(), lx, ly, bmv, luma_pred, 16, 16, 16,
                     dsp_);
        mc_h264_chroma(bwd_ref.cb(), st.mbx * 8, st.mby * 8, bmv,
                       cb_pred, 8, 8, 8);
        mc_h264_chroma(bwd_ref.cr(), st.mbx * 8, st.mby * 8, bmv,
                       cr_pred, 8, 8, 8);
    } else {
        Pixel fb[16 * 16], bb[16 * 16], fc[8 * 8], bc[8 * 8];
        mc_h264_luma(fwd_ref.luma(), lx, ly, fmv, fb, 16, 16, 16, dsp_);
        mc_h264_luma(bwd_ref.luma(), lx, ly, bmv, bb, 16, 16, 16, dsp_);
        dsp_.avg_rect(luma_pred, 16, fb, 16, bb, 16, 16, 16);
        mc_h264_chroma(fwd_ref.cb(), st.mbx * 8, st.mby * 8, fmv, fc, 8,
                       8, 8);
        mc_h264_chroma(bwd_ref.cb(), st.mbx * 8, st.mby * 8, bmv, bc, 8,
                       8, 8);
        dsp_.avg_rect(cb_pred, 8, fc, 8, bc, 8, 8, 8);
        mc_h264_chroma(fwd_ref.cr(), st.mbx * 8, st.mby * 8, fmv, fc, 8,
                       8, 8);
        mc_h264_chroma(bwd_ref.cr(), st.mbx * 8, st.mby * 8, bmv, bc, 8,
                       8, 8);
        dsp_.avg_rect(cr_pred, 8, fc, 8, bc, 8, 8, 8);
    }
    if (!decode_residual(st, luma_pred, cb_pred, cr_pred))
        return false;
    Partition part = kPartGeom[kPart16x16][0];
    part.mv = mode == kBBwd ? bmv : fmv;
    fill_binfo(st, false, 0, &part, 1, mb_nz_map_);
    st.left_fwd = mode == kBBwd ? MotionVector{} : fmv;
    st.left_bwd = mode == kBFwd ? MotionVector{} : bmv;
    if (st.rec != nullptr) {
        st.rec->mode = mode == kBBi
                           ? MbSideInfo::kInterBi
                           : (mode == kBFwd ? MbSideInfo::kInterFwd
                                            : MbSideInfo::kInterBwd);
        st.rec->fwd = fmv;
        st.rec->bwd = bmv;
    }
    return true;
}

void
H264Decoder::conceal_row(Frame *frame, PictureType type, int from,
                         int mby)
{
    const bool have_ref = !dpb_.empty();
    MbState st{};
    st.frame = frame;
    st.type = type;
    st.mby = mby;
    Partition part = kPartGeom[kPart16x16][0];
    for (int mbx = from; mbx < mb_w_; ++mbx) {
        st.mbx = mbx;
        if (type == PictureType::kI || !have_ref) {
            conceal_mb_dc(frame, mbx, mby);
            fill_binfo(st, true, -1, nullptr, 0, 0);
        } else {
            conceal_mb_from_ref(frame, dpb_.back(), mbx, mby);
            fill_binfo(st, false, 0, &part, 1, 0);
        }
        mv_grid_[mby * mb_w_ + mbx] = MotionVector{};
    }
}

bool
H264Decoder::decode_resilient_row(MbState &st, const std::vector<u8> &row,
                                  int mby, int *bad_from)
{
    *bad_from = 0;
    RangeDecoder rc(row);
    rc_ = &rc;
    ctx_.reset();
    st.mby = mby;
    st.left_fwd = st.left_bwd = MotionVector{};
    for (int mbx = 0; mbx < mb_w_; ++mbx) {
        st.mbx = mbx;
        if (!decode_mb(st) || rc.has_error()) {
            *bad_from = mbx;
            rc_ = nullptr;
            return false;
        }
    }
    // The range coder rarely self-detects garbage; a wrong sentinel
    // condemns the whole row (bad_from stays 0).
    const u32 sentinel = rc.decode_bypass_bits(8);
    const bool over_read = rc.has_error();
    rc_ = nullptr;
    return !over_read && sentinel == kRowSentinel;
}

// ---- phase 1: syntax parse (no pixel access) ----

bool
H264Decoder::parse_residual(RangeDecoder &rc, Contexts &cm,
                            MbRec &rec) const
{
    for (int b = 0; b < 16; ++b) {
        if (!decode_block4x4(rc, cm, rec.luma[b], 0, 0))
            return false;
    }
    for (int c = 0; c < 2; ++c) {
        for (int b = 0; b < 4; ++b) {
            if (!decode_block4x4(rc, cm, rec.chroma[c][b], 0, 1))
                return false;
        }
    }
    return true;
}

bool
H264Decoder::parse_intra_mb(RangeDecoder &rc, Contexts &cm,
                            const Plane &luma, int mbx, int mby,
                            MbRec &rec) const
{
    rec.kind = MbRec::kIntraMb;
    const int lx = mbx * 16;
    const int ly = mby * 16;
    rec.use_i4 = rc.decode_bit(cm.intra4_flag) != 0;
    if (rec.use_i4) {
        // Availability is positional, so it validates at parse time;
        // the plane is only consulted for its geometry.
        for (int b = 0; b < 16; ++b) {
            const int x = lx + (b & 3) * 4;
            const int y = ly + (b >> 2) * 4;
            const int m2 = rc.decode_bit(cm.intra4_mode[0]);
            const int m1 = rc.decode_bit(cm.intra4_mode[1]);
            const int m0 = rc.decode_bit(cm.intra4_mode[2]);
            const int mode_idx = m2 * 4 + m1 * 2 + m0;
            if (mode_idx >= kI4ModeCount)
                return false;
            if (!intra4_mode_available(luma, x, y,
                                       static_cast<Intra4Mode>(
                                           mode_idx)))
                return false;
            rec.i4_modes[b] = static_cast<u8>(mode_idx);
            if (!decode_block4x4(rc, cm, rec.luma[b], 0, 0))
                return false;
        }
    } else {
        const int m0 = rc.decode_bit(cm.intra16_mode[0]);
        const int m1 = rc.decode_bit(cm.intra16_mode[1]);
        rec.i16_mode = static_cast<u8>(m0 * 2 + m1);
        if (!intra16_mode_available(
                lx, ly, static_cast<Intra16Mode>(rec.i16_mode)))
            return false;
        if (!decode_block4x4(rc, cm, rec.dc_levels, 0, 2))
            return false;
        for (int b = 0; b < 16; ++b) {
            if (!decode_block4x4(rc, cm, rec.luma[b], 1, 0))
                return false;
        }
    }
    for (int c = 0; c < 2; ++c) {
        for (int b = 0; b < 4; ++b) {
            if (!decode_block4x4(rc, cm, rec.chroma[c][b], 0, 1))
                return false;
        }
    }
    return true;
}

bool
H264Decoder::parse_mb(RangeDecoder &rc, Contexts &cm, const Plane &luma,
                      PictureType type, int mbx, int mby,
                      MbRec &rec) const
{
    const CodecConfig &cfg = config();

    if (type == PictureType::kI)
        return parse_intra_mb(rc, cm, luma, mbx, mby, rec);

    if (rc.decode_bit(cm.mb_skip) != 0) {
        rec.kind = MbRec::kSkipMb;
        return !rc.has_error();
    }
    if (rc.decode_bit(cm.mb_intra) != 0)
        return parse_intra_mb(rc, cm, luma, mbx, mby, rec);

    if (type == PictureType::kP) {
        rec.kind = MbRec::kInterPMb;
        const int m0 = rc.decode_bit(cm.part_mode[0]);
        const int m1 = rc.decode_bit(cm.part_mode[1]);
        rec.part_mode = static_cast<u8>(m0 * 2 + m1);
        int ref = 0;
        if (cfg.refs > 1) {
            const int max_ref =
                clamp<int>(static_cast<int>(dpb_.size()), 1, cfg.refs);
            ref = decode_ref_idx(rc, cm, max_ref);
        }
        if (ref >= static_cast<int>(dpb_.size()))
            return false;
        rec.ref = static_cast<u8>(ref);
        const int count = kPartCount[rec.part_mode];
        for (int p = 0; p < count; ++p) {
            rec.mvd[p][0] = static_cast<s16>(decode_mvd(rc, cm, 0));
            rec.mvd[p][1] = static_cast<s16>(decode_mvd(rc, cm, 1));
        }
        if (rc.has_error())
            return false;
        return parse_residual(rc, cm, rec);
    }

    rec.kind = MbRec::kInterBMb;
    const int b0 = rc.decode_bit(cm.b_mode[0]);
    int mode = kBBi;
    if (b0 != 0)
        mode = rc.decode_bit(cm.b_mode[1]) != 0 ? kBBwd : kBFwd;
    rec.b_mode = static_cast<u8>(mode);
    if (mode != kBBwd) {
        rec.mvd[0][0] = static_cast<s16>(decode_mvd(rc, cm, 0));
        rec.mvd[0][1] = static_cast<s16>(decode_mvd(rc, cm, 1));
    }
    if (mode != kBFwd) {
        rec.mvd[1][0] = static_cast<s16>(decode_mvd(rc, cm, 0));
        rec.mvd[1][1] = static_cast<s16>(decode_mvd(rc, cm, 1));
    }
    if (rc.has_error())
        return false;
    return parse_residual(rc, cm, rec);
}

bool
H264Decoder::parse_resilient_row(const std::vector<u8> &row,
                                 const Plane &luma, PictureType type,
                                 int mby, MbRec *recs,
                                 int *bad_from) const
{
    *bad_from = 0;
    RangeDecoder rc(row);
    Contexts cm;
    cm.reset();
    for (int mbx = 0; mbx < mb_w_; ++mbx) {
        recs[mbx] = MbRec{};
        if (!parse_mb(rc, cm, luma, type, mbx, mby, recs[mbx]) ||
            rc.has_error()) {
            *bad_from = mbx;
            return false;
        }
    }
    const u32 sentinel = rc.decode_bypass_bits(8);
    return !rc.has_error() && sentinel == kRowSentinel;
}

// ---- phase 2: reconstruction from records ----

void
H264Decoder::recon_intra_rec(MbState &st, const MbRec &rec)
{
    const int lx = st.mbx * 16;
    const int ly = st.mby * 16;
    Plane &luma = st.frame->luma();
    u16 nz_map = 0;

    if (rec.use_i4) {
        for (int b = 0; b < 16; ++b) {
            const int x = lx + (b & 3) * 4;
            const int y = ly + (b >> 2) * 4;
            Pixel pred[16];
            predict_intra4(luma, x, y,
                           static_cast<Intra4Mode>(rec.i4_modes[b]),
                           pred, 4);
            Pixel *dst = luma.row(y) + x;
            dsp_.copy_rect(dst, luma.stride(), pred, 4, 4, 4);
            recon4x4(dsp_, rec.luma[b], *quant_i_, INT32_MIN, dst,
                     luma.stride());
            for (int i = 0; i < 16; ++i) {
                if (rec.luma[b][i] != 0) {
                    nz_map |= 1u << b;
                    break;
                }
            }
        }
    } else {
        Pixel pred[16 * 16];
        predict_intra16(luma, lx, ly,
                        static_cast<Intra16Mode>(rec.i16_mode), pred,
                        16);
        s32 dc_rec[16];
        bool dc_nz = false;
        for (int b = 0; b < 16; ++b) {
            dc_rec[b] = quant_i_->dequantize_dc(rec.dc_levels[b]);
            dc_nz |= rec.dc_levels[b] != 0;
        }
        hadamard4x4_inv(dc_rec);
        for (int b = 0; b < 16; ++b) {
            const int x = lx + (b & 3) * 4;
            const int y = ly + (b >> 2) * 4;
            Pixel *dst = luma.row(y) + x;
            dsp_.copy_rect(dst, luma.stride(),
                           pred + (b >> 2) * 4 * 16 + (b & 3) * 4, 16,
                           4, 4);
            recon4x4(dsp_, rec.luma[b], *quant_i_, (dc_rec[b] + 8) >> 4,
                     dst, luma.stride());
            bool nz = dc_nz;
            for (int i = 1; i < 16; ++i)
                nz |= rec.luma[b][i] != 0;
            if (nz)
                nz_map |= 1u << b;
        }
    }

    Pixel cb_pred[8 * 8], cr_pred[8 * 8];
    predict_chroma_dc(st.frame->cb(), st.mbx * 8, st.mby * 8, cb_pred,
                      8);
    predict_chroma_dc(st.frame->cr(), st.mbx * 8, st.mby * 8, cr_pred,
                      8);
    for (int comp = 1; comp < 3; ++comp) {
        Plane &plane = st.frame->plane(comp);
        const Pixel *pred = comp == 1 ? cb_pred : cr_pred;
        for (int b = 0; b < 4; ++b) {
            const int x = st.mbx * 8 + (b & 1) * 4;
            const int y = st.mby * 8 + (b >> 1) * 4;
            const Pixel *pp = pred + (b >> 1) * 4 * 8 + (b & 1) * 4;
            Pixel *dst = plane.row(y) + x;
            dsp_.copy_rect(dst, plane.stride(), pp, 8, 4, 4);
            recon4x4(dsp_, rec.chroma[comp - 1][b], *quant_i_,
                     INT32_MIN, dst, plane.stride());
        }
    }

    fill_binfo(st, true, -1, nullptr, 0, nz_map);
    mv_grid_[st.mby * mb_w_ + st.mbx] = MotionVector{};
    st.left_fwd = st.left_bwd = MotionVector{};
}

void
H264Decoder::recon_mb_rec(MbState &st, const MbRec &rec)
{
    const int lx = st.mbx * 16;
    const int ly = st.mby * 16;

    if (rec.kind == MbRec::kSkipMb) {
        recon_skip(st);
        return;
    }
    if (rec.kind == MbRec::kIntraMb) {
        recon_intra_rec(st, rec);
        return;
    }

    Pixel luma_pred[16 * 16], cb_pred[8 * 8], cr_pred[8 * 8];
    Partition parts[4];
    int count = 1;
    s8 binfo_ref = 0;
    if (rec.kind == MbRec::kInterPMb) {
        count = kPartCount[rec.part_mode];
        MotionVector chain = median_pred(st.mbx, st.mby);
        for (int p = 0; p < count; ++p) {
            parts[p] = kPartGeom[rec.part_mode][p];
            MotionVector mv{
                static_cast<s16>(chain.x + rec.mvd[p][0]),
                static_cast<s16>(chain.y + rec.mvd[p][1])};
            mv = clamp_mv(mv, lx + parts[p].x, ly + parts[p].y,
                          parts[p].w, parts[p].h);
            parts[p].mv = mv;
            chain = mv;
        }
        binfo_ref = static_cast<s8>(rec.ref);
        const Frame &ref = ref_frame(rec.ref);
        for (int p = 0; p < count; ++p) {
            const Partition &part = parts[p];
            mc_h264_luma(ref.luma(), lx + part.x, ly + part.y, part.mv,
                         luma_pred + part.y * 16 + part.x, 16, part.w,
                         part.h, dsp_);
            mc_h264_chroma(ref.cb(), st.mbx * 8 + part.x / 2,
                           st.mby * 8 + part.y / 2, part.mv,
                           cb_pred + (part.y / 2) * 8 + part.x / 2, 8,
                           part.w / 2, part.h / 2);
            mc_h264_chroma(ref.cr(), st.mbx * 8 + part.x / 2,
                           st.mby * 8 + part.y / 2, part.mv,
                           cr_pred + (part.y / 2) * 8 + part.x / 2, 8,
                           part.w / 2, part.h / 2);
        }
    } else {
        const int mode = rec.b_mode;
        MotionVector fmv{}, bmv{};
        if (mode != kBBwd) {
            fmv = {static_cast<s16>(st.left_fwd.x + rec.mvd[0][0]),
                   static_cast<s16>(st.left_fwd.y + rec.mvd[0][1])};
            fmv = clamp_mv(fmv, lx, ly, 16, 16);
        }
        if (mode != kBFwd) {
            bmv = {static_cast<s16>(st.left_bwd.x + rec.mvd[1][0]),
                   static_cast<s16>(st.left_bwd.y + rec.mvd[1][1])};
            bmv = clamp_mv(bmv, lx, ly, 16, 16);
        }
        const Frame &fwd_ref = dpb_[dpb_.size() - 2];
        const Frame &bwd_ref = dpb_.back();
        if (mode == kBFwd) {
            mc_h264_luma(fwd_ref.luma(), lx, ly, fmv, luma_pred, 16, 16,
                         16, dsp_);
            mc_h264_chroma(fwd_ref.cb(), st.mbx * 8, st.mby * 8, fmv,
                           cb_pred, 8, 8, 8);
            mc_h264_chroma(fwd_ref.cr(), st.mbx * 8, st.mby * 8, fmv,
                           cr_pred, 8, 8, 8);
        } else if (mode == kBBwd) {
            mc_h264_luma(bwd_ref.luma(), lx, ly, bmv, luma_pred, 16, 16,
                         16, dsp_);
            mc_h264_chroma(bwd_ref.cb(), st.mbx * 8, st.mby * 8, bmv,
                           cb_pred, 8, 8, 8);
            mc_h264_chroma(bwd_ref.cr(), st.mbx * 8, st.mby * 8, bmv,
                           cr_pred, 8, 8, 8);
        } else {
            Pixel fb[16 * 16], bb[16 * 16], fc[8 * 8], bc[8 * 8];
            mc_h264_luma(fwd_ref.luma(), lx, ly, fmv, fb, 16, 16, 16,
                         dsp_);
            mc_h264_luma(bwd_ref.luma(), lx, ly, bmv, bb, 16, 16, 16,
                         dsp_);
            dsp_.avg_rect(luma_pred, 16, fb, 16, bb, 16, 16, 16);
            mc_h264_chroma(fwd_ref.cb(), st.mbx * 8, st.mby * 8, fmv,
                           fc, 8, 8, 8);
            mc_h264_chroma(bwd_ref.cb(), st.mbx * 8, st.mby * 8, bmv,
                           bc, 8, 8, 8);
            dsp_.avg_rect(cb_pred, 8, fc, 8, bc, 8, 8, 8);
            mc_h264_chroma(fwd_ref.cr(), st.mbx * 8, st.mby * 8, fmv,
                           fc, 8, 8, 8);
            mc_h264_chroma(bwd_ref.cr(), st.mbx * 8, st.mby * 8, bmv,
                           bc, 8, 8, 8);
            dsp_.avg_rect(cr_pred, 8, fc, 8, bc, 8, 8, 8);
        }
        parts[0] = kPartGeom[kPart16x16][0];
        parts[0].mv = mode == kBBwd ? bmv : fmv;
        st.left_fwd = mode == kBBwd ? MotionVector{} : fmv;
        st.left_bwd = mode == kBFwd ? MotionVector{} : bmv;
    }

    // Residual add, shared for P and B.
    Plane &luma = st.frame->luma();
    u16 nz_map = 0;
    for (int b = 0; b < 16; ++b) {
        const int x = lx + (b & 3) * 4;
        const int y = ly + (b >> 2) * 4;
        Pixel *dst = luma.row(y) + x;
        dsp_.copy_rect(dst, luma.stride(),
                       luma_pred + (b >> 2) * 4 * 16 + (b & 3) * 4, 16,
                       4, 4);
        recon4x4(dsp_, rec.luma[b], *quant_p_, INT32_MIN, dst,
                 luma.stride());
        for (int i = 0; i < 16; ++i) {
            if (rec.luma[b][i] != 0) {
                nz_map |= 1u << b;
                break;
            }
        }
    }
    for (int comp = 1; comp < 3; ++comp) {
        Plane &plane = st.frame->plane(comp);
        const Pixel *pred = comp == 1 ? cb_pred : cr_pred;
        for (int b = 0; b < 4; ++b) {
            const int x = st.mbx * 8 + (b & 1) * 4;
            const int y = st.mby * 8 + (b >> 1) * 4;
            Pixel *dst = plane.row(y) + x;
            dsp_.copy_rect(dst, plane.stride(),
                           pred + (b >> 1) * 4 * 8 + (b & 1) * 4, 8, 4,
                           4);
            recon4x4(dsp_, rec.chroma[comp - 1][b], *quant_p_,
                     INT32_MIN, dst, plane.stride());
        }
    }

    if (rec.kind == MbRec::kInterPMb) {
        fill_binfo(st, false, binfo_ref, parts, count, nz_map);
        mv_grid_[st.mby * mb_w_ + st.mbx] = parts[0].mv;
    } else {
        fill_binfo(st, false, 0, parts, 1, nz_map);
    }
}

Status
H264Decoder::decode_picture_resilient(const Packet &packet, Frame *out)
{
    const CodecConfig &cfg = config();

    const std::vector<ResyncMarker> candidates =
        scan_resync_markers(packet.data, mb_h_);
    std::vector<ResyncMarker> markers;
    markers.reserve(candidates.size());
    int prev_row = -1;
    for (const ResyncMarker &m : candidates) {
        if (m.row > prev_row) {
            markers.push_back(m);
            prev_row = m.row;
        }
    }
    if (markers.empty())
        return Status::corrupt_stream("no resync markers in h264 picture");

    const std::vector<u8> header =
        unescape_emulation(packet.data.data(), markers.front().pos);
    BitReader hbr(header);
    const PictureType type = static_cast<PictureType>(hbr.get_bits(2));
    const int qp = static_cast<int>(hbr.get_bits(6));
    const bool deblock = hbr.get_bit() != 0;
    hbr.skip_bits(16);  // poc_lsb
    if (hbr.has_error() || type != packet.type)
        return Status::corrupt_stream("bad h264 picture header");
    if (qp < 0 || qp > 51)
        return Status::corrupt_stream("bad h264 qp");
    if (type == PictureType::kP && dpb_.empty())
        return Status::corrupt_stream("P picture without reference");
    if (type == PictureType::kB && dpb_.size() < 2)
        return Status::corrupt_stream("B picture without two references");

    const H264Quantizer quant_i(qp, true);
    const H264Quantizer quant_p(qp, false);
    quant_i_ = &quant_i;
    quant_p_ = &quant_p;

    *out = new_frame(kRefBorder);
    binfo_.clear();
    std::fill(mv_grid_.begin(), mv_grid_.end(), MotionVector{});

    struct RowResult {
        bool ok = false;
        int bad_from = 0;
    };
    std::vector<RowResult> rows(static_cast<size_t>(mb_h_));

    if (pool_ != nullptr) {
        // Two-phase parallel decode (see the file comment). Map each
        // surviving marker to its row's byte segment first.
        std::vector<std::pair<size_t, size_t>> segments(
            static_cast<size_t>(mb_h_), {0, 0});
        for (size_t i = 0; i < markers.size(); ++i) {
            const size_t begin = markers[i].pos + 4;
            const size_t end = i + 1 < markers.size()
                                   ? markers[i + 1].pos
                                   : packet.data.size();
            segments[static_cast<size_t>(markers[i].row)] = {begin, end};
        }
        records_.resize(static_cast<size_t>(mb_w_) * mb_h_);

        // Phase 1: rows are independent entropy chunks — parse them
        // all concurrently.
        parallel_for(*pool_, mb_h_, [&](int mby, int) {
            const auto &seg = segments[static_cast<size_t>(mby)];
            if (seg.second <= seg.first)
                return;
            const std::vector<u8> row = unescape_emulation(
                packet.data.data() + seg.first, seg.second - seg.first);
            RowResult &r = rows[static_cast<size_t>(mby)];
            r.ok = parse_resilient_row(row, out->luma(), type, mby,
                                       records_.data() + mby * mb_w_,
                                       &r.bad_from);
        });

        // Phase 2: reconstruct in wavefront order — intra prediction
        // and spatial concealment read pixels from the row above, so
        // row y-1 must be complete through column x+1 before MB (x, y)
        // runs (same lag as the encoder's analysis wavefront).
        WavefrontScheduler wf(mb_h_, mb_w_);
        parallel_for(*pool_, mb_h_, [&](int mby, int) {
            WavefrontRowGuard guard(wf, mby);
            MbState st{};
            st.frame = out;
            st.type = type;
            st.mby = mby;
            const RowResult &r = rows[static_cast<size_t>(mby)];
            const int good = r.ok ? mb_w_ : r.bad_from;
            const Partition part16 = kPartGeom[kPart16x16][0];
            for (int mbx = 0; mbx < mb_w_; ++mbx) {
                wf.wait_above(mby, mbx);
                st.mbx = mbx;
                if (mbx < good) {
                    recon_mb_rec(st, records_[mby * mb_w_ + mbx]);
                } else if (type == PictureType::kI || dpb_.empty()) {
                    conceal_mb_dc(out, mbx, mby);
                    fill_binfo(st, true, -1, nullptr, 0, 0);
                    mv_grid_[mby * mb_w_ + mbx] = MotionVector{};
                } else {
                    conceal_mb_from_ref(out, dpb_.back(), mbx, mby);
                    fill_binfo(st, false, 0, &part16, 1, 0);
                    mv_grid_[mby * mb_w_ + mbx] = MotionVector{};
                }
                wf.publish(mby, mbx + 1);
            }
        });
    } else {
        MbState st{};
        st.frame = out;
        st.type = type;
        size_t k = 0;
        for (int mby = 0; mby < mb_h_; ++mby) {
            RowResult &r = rows[static_cast<size_t>(mby)];
            if (k < markers.size() && markers[k].row == mby) {
                const size_t begin = markers[k].pos + 4;
                const size_t end = k + 1 < markers.size()
                                       ? markers[k + 1].pos
                                       : packet.data.size();
                const std::vector<u8> row = unescape_emulation(
                    packet.data.data() + begin, end - begin);
                r.ok = decode_resilient_row(st, row, mby, &r.bad_from);
                ++k;
            }
            if (!r.ok)
                conceal_row(out, type, r.bad_from, mby);
        }
    }

    bool any_ok = false;
    bool in_error = false;
    for (int mby = 0; mby < mb_h_; ++mby) {
        const RowResult &r = rows[static_cast<size_t>(mby)];
        if (r.ok) {
            if (in_error) {
                ++stats_.resyncs;
                in_error = false;
            }
            any_ok = true;
        } else {
            in_error = true;
            stats_.mbs_concealed += mb_w_ - r.bad_from;
        }
    }
    quant_i_ = quant_p_ = nullptr;
    if (!any_ok)
        return Status::corrupt_stream("every row of the picture lost");

    if (deblock)
        deblock_picture(out, binfo_, qp, config().approx);

    if (type != PictureType::kB) {
        Frame ref = new_frame(kRefBorder);
        ref.copy_from(*out);
        ref.extend_borders();
        dpb_.push_back(std::move(ref));
        const size_t max_dpb =
            static_cast<size_t>(clamp(cfg.refs, 2, 16)) + 1;
        while (dpb_.size() > max_dpb)
            dpb_.pop_front();
    }
    return Status::ok();
}

Status
H264Decoder::decode_picture(const Packet &packet, Frame *out)
{
    if (config().error_resilience)
        return decode_picture_resilient(packet, out);

    const CodecConfig &cfg = config();
    RangeDecoder rc(packet.data);
    rc_ = &rc;
    ctx_.reset();

    const PictureType type =
        static_cast<PictureType>(rc.decode_bypass_bits(2));
    const int qp = static_cast<int>(rc.decode_bypass_bits(6));
    const bool deblock = rc.decode_bypass() != 0;
    rc.decode_bypass_bits(16);  // poc_lsb
    if (rc.has_error() || type != packet.type)
        return Status::corrupt_stream("bad h264 picture header");
    if (qp < 0 || qp > 51)
        return Status::corrupt_stream("bad h264 qp");
    if (type == PictureType::kP && dpb_.empty())
        return Status::corrupt_stream("P picture without reference");
    if (type == PictureType::kB && dpb_.size() < 2)
        return Status::corrupt_stream("B picture without two references");

    const H264Quantizer quant_i(qp, true);
    const H264Quantizer quant_p(qp, false);
    quant_i_ = &quant_i;
    quant_p_ = &quant_p;

    *out = new_frame(kRefBorder);
    binfo_.clear();
    std::fill(mv_grid_.begin(), mv_grid_.end(), MotionVector{});

    const bool record = side_info_sink() != nullptr;
    PictureSideInfo si;
    if (record) {
        si.poc = packet.poc;
        si.type = type;
        si.mb_w = mb_w_;
        si.mb_h = mb_h_;
        si.quant = qp;
        si.mbs.resize(static_cast<size_t>(mb_w_) * mb_h_);
    }

    MbState st{};
    st.frame = out;
    st.type = type;
    for (int mby = 0; mby < mb_h_; ++mby) {
        st.mby = mby;
        st.left_fwd = st.left_bwd = MotionVector{};
        for (int mbx = 0; mbx < mb_w_; ++mbx) {
            st.mbx = mbx;
            st.rec = record ? &si.at(mbx, mby) : nullptr;
            if (!decode_mb(st)) {
                rc_ = nullptr;
                return Status::corrupt_stream("bad h264 MB data");
            }
        }
    }
    rc_ = nullptr;
    quant_i_ = quant_p_ = nullptr;

    if (record)
        side_info_sink()->push(std::move(si));

    if (deblock)
        deblock_picture(out, binfo_, qp, config().approx);

    if (type != PictureType::kB) {
        Frame ref = new_frame(kRefBorder);
        ref.copy_from(*out);
        ref.extend_borders();
        dpb_.push_back(std::move(ref));
        const size_t max_dpb =
            static_cast<size_t>(clamp(cfg.refs, 2, 16)) + 1;
        while (dpb_.size() > max_dpb)
            dpb_.pop_front();
    }
    return Status::ok();
}

}  // namespace

std::unique_ptr<VideoDecoder>
create_h264_decoder(const CodecConfig &config)
{
    HDVB_CHECK(config.validate().is_ok());
    return std::make_unique<H264Decoder>(config);
}

}  // namespace hdvb
