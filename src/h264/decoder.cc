/**
 * @file
 * H.264-class decoder: exact mirror of the encoder's range-coded syntax
 * and reconstruction, including the in-loop deblocking filter.
 */
#include "h264/h264.h"

#include <cstring>
#include <deque>
#include <vector>

#include "bitstream/bit_reader.h"
#include "bitstream/resync.h"
#include "codec/codec.h"
#include "codec/conceal.h"
#include "common/check.h"
#include "dsp/quant.h"
#include "dsp/transform4x4.h"
#include "h264/cabac_syntax.h"
#include "h264/deblock.h"
#include "h264/intra_pred.h"
#include "mc/mc.h"
#include "me/me.h"

namespace hdvb {

namespace {

using namespace hdvb::h264;

struct Partition {
    int x, y, w, h;
    MotionVector mv;
};

const Partition kPartGeom[4][4] = {
    {{0, 0, 16, 16, {}}, {}, {}, {}},
    {{0, 0, 16, 8, {}}, {0, 8, 16, 8, {}}, {}, {}},
    {{0, 0, 8, 16, {}}, {8, 0, 8, 16, {}}, {}, {}},
    {{0, 0, 8, 8, {}}, {8, 0, 8, 8, {}}, {0, 8, 8, 8, {}},
     {8, 8, 8, 8, {}}},
};

const int kPartCount[4] = {1, 2, 2, 4};

class H264Decoder final : public DecoderBase
{
  public:
    explicit H264Decoder(const CodecConfig &cfg)
        : DecoderBase(cfg),
          dsp_(get_dsp(cfg.simd)),
          mb_w_(cfg.width / 16),
          mb_h_(cfg.height / 16),
          binfo_(cfg.width, cfg.height),
          mv_grid_(static_cast<size_t>(mb_w_) * mb_h_)
    {
    }

    const char *name() const override { return "h264"; }

  protected:
    Status decode_picture(const Packet &packet, Frame *out) override;

  private:
    struct MbState {
        Frame *frame;
        PictureType type;
        int mbx;
        int mby;
        MotionVector left_fwd;
        MotionVector left_bwd;
    };

    Status decode_picture_resilient(const Packet &packet, Frame *out);
    bool decode_resilient_row(MbState &st, const std::vector<u8> &row,
                              int mby, int *bad_from);
    void conceal_row(Frame *frame, PictureType type, int from, int mby);

    bool decode_mb(MbState &st);
    bool decode_intra_mb(MbState &st);
    bool decode_luma_intra16(MbState &st);
    bool decode_luma_intra4(MbState &st);
    bool decode_chroma(MbState &st, const Pixel *cb_pred,
                       const Pixel *cr_pred, bool intra);
    bool decode_residual(MbState &st, const Pixel *luma_pred,
                         const Pixel *cb_pred, const Pixel *cr_pred);
    void recon_skip(MbState &st);

    MotionVector median_pred(int mbx, int mby) const;
    MotionVector clamp_mv(MotionVector mv, int x0, int y0, int w,
                          int h) const;
    void fill_binfo(const MbState &st, bool intra, s8 ref,
                    const Partition *parts, int count, u16 nz_map);

    const Frame &ref_frame(int ref_idx) const
    {
        return dpb_[dpb_.size() - 1 - static_cast<size_t>(ref_idx)];
    }

    const Dsp &dsp_;
    int mb_w_;
    int mb_h_;

    std::deque<Frame> dpb_;
    BlockInfoGrid binfo_;
    std::vector<MotionVector> mv_grid_;
    Contexts ctx_;
    RangeDecoder *rc_ = nullptr;
    const H264Quantizer *quant_i_ = nullptr;
    const H264Quantizer *quant_p_ = nullptr;
    u16 mb_nz_map_ = 0;
};

MotionVector
H264Decoder::median_pred(int mbx, int mby) const
{
    const MotionVector zero{};
    const MotionVector a =
        mbx > 0 ? mv_grid_[mby * mb_w_ + mbx - 1] : zero;
    // Matches the encoder: resilient rows predict from the left only.
    if (mby == 0 || config().error_resilience)
        return a;
    const MotionVector b = mv_grid_[(mby - 1) * mb_w_ + mbx];
    const MotionVector c = mbx + 1 < mb_w_
                               ? mv_grid_[(mby - 1) * mb_w_ + mbx + 1]
                               : zero;
    return {median3(a.x, b.x, c.x), median3(a.y, b.y, c.y)};
}

MotionVector
H264Decoder::clamp_mv(MotionVector mv, int x0, int y0, int w, int h) const
{
    const int margin = kMeMargin + 4;
    const int min_x = 4 * (-margin - x0);
    const int max_x = 4 * (config().width + margin - x0 - w);
    const int min_y = 4 * (-margin - y0);
    const int max_y = 4 * (config().height + margin - y0 - h);
    return {static_cast<s16>(clamp<int>(mv.x, min_x, max_x)),
            static_cast<s16>(clamp<int>(mv.y, min_y, max_y))};
}

void
H264Decoder::fill_binfo(const MbState &st, bool intra, s8 ref,
                        const Partition *parts, int count, u16 nz_map)
{
    const int bx0 = st.mbx * 4;
    const int by0 = st.mby * 4;
    for (int by = 0; by < 4; ++by) {
        for (int bx = 0; bx < 4; ++bx) {
            BlockInfo &info = binfo_.at(bx0 + bx, by0 + by);
            info.intra = intra ? 1 : 0;
            info.nonzero = (nz_map >> (by * 4 + bx)) & 1;
            info.ref = intra ? -1 : ref;
            info.mv = {};
            if (!intra) {
                for (int p = 0; p < count; ++p) {
                    const Partition &part = parts[p];
                    if (bx * 4 >= part.x && bx * 4 < part.x + part.w &&
                        by * 4 >= part.y && by * 4 < part.y + part.h) {
                        info.mv = part.mv;
                        break;
                    }
                }
            }
        }
    }
}

namespace {

inline void
recon4x4(const Dsp &dsp, const Coeff levels[16],
         const H264Quantizer &quant, s32 dc_coeff, Pixel *dst, int ds)
{
    Coeff tmp[16];
    std::memcpy(tmp, levels, sizeof(tmp));
    quant.dequantize4x4(tmp);
    if (dc_coeff != INT32_MIN)
        tmp[0] = static_cast<Coeff>(clamp<s32>(dc_coeff, -32768, 32767));
    h264_inv4x4(tmp);
    dsp.add_rect(dst, ds, tmp, 4, 4, 4);
}

}  // namespace

bool
H264Decoder::decode_chroma(MbState &st, const Pixel *cb_pred,
                           const Pixel *cr_pred, bool intra)
{
    const H264Quantizer &quant = intra ? *quant_i_ : *quant_p_;
    for (int comp = 1; comp < 3; ++comp) {
        Plane &plane = st.frame->plane(comp);
        const Pixel *pred = comp == 1 ? cb_pred : cr_pred;
        const int cx = st.mbx * 8;
        const int cy = st.mby * 8;
        for (int b = 0; b < 4; ++b) {
            const int x = cx + (b & 1) * 4;
            const int y = cy + (b >> 1) * 4;
            Coeff blk[16] = {};
            if (!decode_block4x4(*rc_, ctx_, blk, 0, 1))
                return false;
            const Pixel *pp = pred + (b >> 1) * 4 * 8 + (b & 1) * 4;
            Pixel *dst = plane.row(y) + x;
            dsp_.copy_rect(dst, plane.stride(), pp, 8, 4, 4);
            recon4x4(dsp_, blk, quant, INT32_MIN, dst, plane.stride());
        }
    }
    return true;
}

bool
H264Decoder::decode_luma_intra16(MbState &st)
{
    const int lx = st.mbx * 16;
    const int ly = st.mby * 16;
    const int m0 = rc_->decode_bit(ctx_.intra16_mode[0]);
    const int m1 = rc_->decode_bit(ctx_.intra16_mode[1]);
    const Intra16Mode mode = static_cast<Intra16Mode>(m0 * 2 + m1);
    if (!intra16_mode_available(lx, ly, mode))
        return false;

    Plane &luma = st.frame->luma();
    Pixel pred[16 * 16];
    predict_intra16(luma, lx, ly, mode, pred, 16);

    Coeff dc_levels[16] = {};
    if (!decode_block4x4(*rc_, ctx_, dc_levels, 0, 2))
        return false;
    Coeff levels[16][16];
    for (int b = 0; b < 16; ++b) {
        std::memset(levels[b], 0, sizeof(levels[b]));
        if (!decode_block4x4(*rc_, ctx_, levels[b], 1, 0))
            return false;
    }

    s32 dc_rec[16];
    bool dc_nz = false;
    for (int b = 0; b < 16; ++b) {
        dc_rec[b] = quant_i_->dequantize_dc(dc_levels[b]);
        dc_nz |= dc_levels[b] != 0;
    }
    hadamard4x4_inv(dc_rec);
    mb_nz_map_ = 0;
    for (int b = 0; b < 16; ++b) {
        const int x = lx + (b & 3) * 4;
        const int y = ly + (b >> 2) * 4;
        Pixel *dst = luma.row(y) + x;
        dsp_.copy_rect(dst, luma.stride(),
                       pred + (b >> 2) * 4 * 16 + (b & 3) * 4, 16, 4, 4);
        recon4x4(dsp_, levels[b], *quant_i_, (dc_rec[b] + 8) >> 4, dst,
                 luma.stride());
        bool nz = dc_nz;
        for (int i = 1; i < 16; ++i)
            nz |= levels[b][i] != 0;
        if (nz)
            mb_nz_map_ |= 1u << b;
    }
    return true;
}

bool
H264Decoder::decode_luma_intra4(MbState &st)
{
    const int lx = st.mbx * 16;
    const int ly = st.mby * 16;
    Plane &luma = st.frame->luma();
    mb_nz_map_ = 0;
    for (int b = 0; b < 16; ++b) {
        const int x = lx + (b & 3) * 4;
        const int y = ly + (b >> 2) * 4;
        const int m2 = rc_->decode_bit(ctx_.intra4_mode[0]);
        const int m1 = rc_->decode_bit(ctx_.intra4_mode[1]);
        const int m0 = rc_->decode_bit(ctx_.intra4_mode[2]);
        const int mode_idx = m2 * 4 + m1 * 2 + m0;
        if (mode_idx >= kI4ModeCount)
            return false;
        const Intra4Mode mode = static_cast<Intra4Mode>(mode_idx);
        if (!intra4_mode_available(luma, x, y, mode))
            return false;
        Pixel pred[16];
        predict_intra4(luma, x, y, mode, pred, 4);
        Coeff blk[16] = {};
        if (!decode_block4x4(*rc_, ctx_, blk, 0, 0))
            return false;
        Pixel *dst = luma.row(y) + x;
        dsp_.copy_rect(dst, luma.stride(), pred, 4, 4, 4);
        recon4x4(dsp_, blk, *quant_i_, INT32_MIN, dst, luma.stride());
        for (int i = 0; i < 16; ++i) {
            if (blk[i] != 0) {
                mb_nz_map_ |= 1u << b;
                break;
            }
        }
    }
    return true;
}

bool
H264Decoder::decode_intra_mb(MbState &st)
{
    const int use_i4 = rc_->decode_bit(ctx_.intra4_flag);
    const bool ok = use_i4 ? decode_luma_intra4(st)
                           : decode_luma_intra16(st);
    if (!ok)
        return false;

    Pixel cb_pred[8 * 8], cr_pred[8 * 8];
    predict_chroma_dc(st.frame->cb(), st.mbx * 8, st.mby * 8, cb_pred,
                      8);
    predict_chroma_dc(st.frame->cr(), st.mbx * 8, st.mby * 8, cr_pred,
                      8);
    if (!decode_chroma(st, cb_pred, cr_pred, true))
        return false;

    fill_binfo(st, true, -1, nullptr, 0, mb_nz_map_);
    mv_grid_[st.mby * mb_w_ + st.mbx] = MotionVector{};
    st.left_fwd = st.left_bwd = MotionVector{};
    return true;
}

bool
H264Decoder::decode_residual(MbState &st, const Pixel *luma_pred,
                             const Pixel *cb_pred, const Pixel *cr_pred)
{
    const int lx = st.mbx * 16;
    const int ly = st.mby * 16;
    Plane &luma = st.frame->luma();
    mb_nz_map_ = 0;
    for (int b = 0; b < 16; ++b) {
        Coeff blk[16] = {};
        if (!decode_block4x4(*rc_, ctx_, blk, 0, 0))
            return false;
        const int x = lx + (b & 3) * 4;
        const int y = ly + (b >> 2) * 4;
        Pixel *dst = luma.row(y) + x;
        dsp_.copy_rect(dst, luma.stride(),
                       luma_pred + (b >> 2) * 4 * 16 + (b & 3) * 4, 16,
                       4, 4);
        recon4x4(dsp_, blk, *quant_p_, INT32_MIN, dst, luma.stride());
        for (int i = 0; i < 16; ++i) {
            if (blk[i] != 0) {
                mb_nz_map_ |= 1u << b;
                break;
            }
        }
    }
    return decode_chroma(st, cb_pred, cr_pred, false);
}

void
H264Decoder::recon_skip(MbState &st)
{
    const int lx = st.mbx * 16;
    const int ly = st.mby * 16;
    Pixel luma_pred[16 * 16], cb_pred[8 * 8], cr_pred[8 * 8];
    if (st.type == PictureType::kP) {
        const MotionVector mv =
            clamp_mv(median_pred(st.mbx, st.mby), lx, ly, 16, 16);
        const Frame &ref = ref_frame(0);
        mc_h264_luma(ref.luma(), lx, ly, mv, luma_pred, 16, 16, 16,
                     dsp_);
        mc_h264_chroma(ref.cb(), st.mbx * 8, st.mby * 8, mv, cb_pred, 8,
                       8, 8);
        mc_h264_chroma(ref.cr(), st.mbx * 8, st.mby * 8, mv, cr_pred, 8,
                       8, 8);
        Partition part = kPartGeom[kPart16x16][0];
        part.mv = mv;
        fill_binfo(st, false, 0, &part, 1, 0);
        mv_grid_[st.mby * mb_w_ + st.mbx] = mv;
    } else {
        const Frame &fwd = dpb_[dpb_.size() - 2];
        const Frame &bwd = dpb_.back();
        Pixel fb[16 * 16], bb[16 * 16], fc[8 * 8], bc[8 * 8];
        mc_h264_luma(fwd.luma(), lx, ly, {}, fb, 16, 16, 16, dsp_);
        mc_h264_luma(bwd.luma(), lx, ly, {}, bb, 16, 16, 16, dsp_);
        dsp_.avg_rect(luma_pred, 16, fb, 16, bb, 16, 16, 16);
        mc_h264_chroma(fwd.cb(), st.mbx * 8, st.mby * 8, {}, fc, 8, 8,
                       8);
        mc_h264_chroma(bwd.cb(), st.mbx * 8, st.mby * 8, {}, bc, 8, 8,
                       8);
        dsp_.avg_rect(cb_pred, 8, fc, 8, bc, 8, 8, 8);
        mc_h264_chroma(fwd.cr(), st.mbx * 8, st.mby * 8, {}, fc, 8, 8,
                       8);
        mc_h264_chroma(bwd.cr(), st.mbx * 8, st.mby * 8, {}, bc, 8, 8,
                       8);
        dsp_.avg_rect(cr_pred, 8, fc, 8, bc, 8, 8, 8);
        Partition part = kPartGeom[kPart16x16][0];
        fill_binfo(st, false, 0, &part, 1, 0);
        st.left_fwd = st.left_bwd = MotionVector{};
    }
    dsp_.copy_rect(st.frame->luma().row(ly) + lx,
                   st.frame->luma().stride(), luma_pred, 16, 16, 16);
    dsp_.copy_rect(st.frame->cb().row(st.mby * 8) + st.mbx * 8,
                   st.frame->cb().stride(), cb_pred, 8, 8, 8);
    dsp_.copy_rect(st.frame->cr().row(st.mby * 8) + st.mbx * 8,
                   st.frame->cr().stride(), cr_pred, 8, 8, 8);
}

bool
H264Decoder::decode_mb(MbState &st)
{
    const CodecConfig &cfg = config();
    const int lx = st.mbx * 16;
    const int ly = st.mby * 16;

    if (st.type == PictureType::kI)
        return decode_intra_mb(st);

    if (rc_->decode_bit(ctx_.mb_skip) != 0) {
        recon_skip(st);
        return !rc_->has_error();
    }
    if (rc_->decode_bit(ctx_.mb_intra) != 0)
        return decode_intra_mb(st);

    if (st.type == PictureType::kP) {
        const int m0 = rc_->decode_bit(ctx_.part_mode[0]);
        const int m1 = rc_->decode_bit(ctx_.part_mode[1]);
        const int mode = m0 * 2 + m1;
        int ref = 0;
        if (cfg.refs > 1) {
            const int max_ref =
                clamp<int>(static_cast<int>(dpb_.size()), 1, cfg.refs);
            ref = decode_ref_idx(*rc_, ctx_, max_ref);
        }
        if (ref >= static_cast<int>(dpb_.size()))
            return false;

        const int count = kPartCount[mode];
        Partition parts[4];
        MotionVector chain = median_pred(st.mbx, st.mby);
        for (int p = 0; p < count; ++p) {
            parts[p] = kPartGeom[mode][p];
            MotionVector mv{
                static_cast<s16>(chain.x + decode_mvd(*rc_, ctx_, 0)),
                static_cast<s16>(chain.y + decode_mvd(*rc_, ctx_, 1))};
            mv = clamp_mv(mv, lx + parts[p].x, ly + parts[p].y,
                          parts[p].w, parts[p].h);
            parts[p].mv = mv;
            chain = mv;
        }
        if (rc_->has_error())
            return false;

        const Frame &ref_frame_ = ref_frame(ref);
        Pixel luma_pred[16 * 16], cb_pred[8 * 8], cr_pred[8 * 8];
        for (int p = 0; p < count; ++p) {
            const Partition &part = parts[p];
            mc_h264_luma(ref_frame_.luma(), lx + part.x, ly + part.y,
                         part.mv, luma_pred + part.y * 16 + part.x, 16,
                         part.w, part.h, dsp_);
            mc_h264_chroma(ref_frame_.cb(),
                           st.mbx * 8 + part.x / 2,
                           st.mby * 8 + part.y / 2, part.mv,
                           cb_pred + (part.y / 2) * 8 + part.x / 2, 8,
                           part.w / 2, part.h / 2);
            mc_h264_chroma(ref_frame_.cr(),
                           st.mbx * 8 + part.x / 2,
                           st.mby * 8 + part.y / 2, part.mv,
                           cr_pred + (part.y / 2) * 8 + part.x / 2, 8,
                           part.w / 2, part.h / 2);
        }
        if (!decode_residual(st, luma_pred, cb_pred, cr_pred))
            return false;
        fill_binfo(st, false, static_cast<s8>(ref), parts, count,
                   mb_nz_map_);
        mv_grid_[st.mby * mb_w_ + st.mbx] = parts[0].mv;
        return true;
    }

    // B picture.
    const int b0 = rc_->decode_bit(ctx_.b_mode[0]);
    int mode = kBBi;
    if (b0 != 0)
        mode = rc_->decode_bit(ctx_.b_mode[1]) != 0 ? kBBwd : kBFwd;

    MotionVector fmv{}, bmv{};
    if (mode != kBBwd) {
        fmv = {static_cast<s16>(st.left_fwd.x +
                                decode_mvd(*rc_, ctx_, 0)),
               static_cast<s16>(st.left_fwd.y +
                                decode_mvd(*rc_, ctx_, 1))};
        fmv = clamp_mv(fmv, lx, ly, 16, 16);
    }
    if (mode != kBFwd) {
        bmv = {static_cast<s16>(st.left_bwd.x +
                                decode_mvd(*rc_, ctx_, 0)),
               static_cast<s16>(st.left_bwd.y +
                                decode_mvd(*rc_, ctx_, 1))};
        bmv = clamp_mv(bmv, lx, ly, 16, 16);
    }
    if (rc_->has_error())
        return false;

    const Frame &fwd_ref = dpb_[dpb_.size() - 2];
    const Frame &bwd_ref = dpb_.back();
    Pixel luma_pred[16 * 16], cb_pred[8 * 8], cr_pred[8 * 8];
    if (mode == kBFwd) {
        mc_h264_luma(fwd_ref.luma(), lx, ly, fmv, luma_pred, 16, 16, 16,
                     dsp_);
        mc_h264_chroma(fwd_ref.cb(), st.mbx * 8, st.mby * 8, fmv,
                       cb_pred, 8, 8, 8);
        mc_h264_chroma(fwd_ref.cr(), st.mbx * 8, st.mby * 8, fmv,
                       cr_pred, 8, 8, 8);
    } else if (mode == kBBwd) {
        mc_h264_luma(bwd_ref.luma(), lx, ly, bmv, luma_pred, 16, 16, 16,
                     dsp_);
        mc_h264_chroma(bwd_ref.cb(), st.mbx * 8, st.mby * 8, bmv,
                       cb_pred, 8, 8, 8);
        mc_h264_chroma(bwd_ref.cr(), st.mbx * 8, st.mby * 8, bmv,
                       cr_pred, 8, 8, 8);
    } else {
        Pixel fb[16 * 16], bb[16 * 16], fc[8 * 8], bc[8 * 8];
        mc_h264_luma(fwd_ref.luma(), lx, ly, fmv, fb, 16, 16, 16, dsp_);
        mc_h264_luma(bwd_ref.luma(), lx, ly, bmv, bb, 16, 16, 16, dsp_);
        dsp_.avg_rect(luma_pred, 16, fb, 16, bb, 16, 16, 16);
        mc_h264_chroma(fwd_ref.cb(), st.mbx * 8, st.mby * 8, fmv, fc, 8,
                       8, 8);
        mc_h264_chroma(bwd_ref.cb(), st.mbx * 8, st.mby * 8, bmv, bc, 8,
                       8, 8);
        dsp_.avg_rect(cb_pred, 8, fc, 8, bc, 8, 8, 8);
        mc_h264_chroma(fwd_ref.cr(), st.mbx * 8, st.mby * 8, fmv, fc, 8,
                       8, 8);
        mc_h264_chroma(bwd_ref.cr(), st.mbx * 8, st.mby * 8, bmv, bc, 8,
                       8, 8);
        dsp_.avg_rect(cr_pred, 8, fc, 8, bc, 8, 8, 8);
    }
    if (!decode_residual(st, luma_pred, cb_pred, cr_pred))
        return false;
    Partition part = kPartGeom[kPart16x16][0];
    part.mv = mode == kBBwd ? bmv : fmv;
    fill_binfo(st, false, 0, &part, 1, mb_nz_map_);
    st.left_fwd = mode == kBBwd ? MotionVector{} : fmv;
    st.left_bwd = mode == kBFwd ? MotionVector{} : bmv;
    return true;
}

void
H264Decoder::conceal_row(Frame *frame, PictureType type, int from,
                         int mby)
{
    const bool have_ref = !dpb_.empty();
    MbState st{};
    st.frame = frame;
    st.type = type;
    st.mby = mby;
    Partition part = kPartGeom[kPart16x16][0];
    for (int mbx = from; mbx < mb_w_; ++mbx) {
        st.mbx = mbx;
        if (type == PictureType::kI || !have_ref) {
            conceal_mb_dc(frame, mbx, mby);
            fill_binfo(st, true, -1, nullptr, 0, 0);
        } else {
            conceal_mb_from_ref(frame, dpb_.back(), mbx, mby);
            fill_binfo(st, false, 0, &part, 1, 0);
        }
        mv_grid_[mby * mb_w_ + mbx] = MotionVector{};
    }
}

bool
H264Decoder::decode_resilient_row(MbState &st, const std::vector<u8> &row,
                                  int mby, int *bad_from)
{
    *bad_from = 0;
    RangeDecoder rc(row);
    rc_ = &rc;
    ctx_.reset();
    st.mby = mby;
    st.left_fwd = st.left_bwd = MotionVector{};
    for (int mbx = 0; mbx < mb_w_; ++mbx) {
        st.mbx = mbx;
        if (!decode_mb(st) || rc.has_error()) {
            *bad_from = mbx;
            rc_ = nullptr;
            return false;
        }
    }
    // The range coder rarely self-detects garbage; a wrong sentinel
    // condemns the whole row (bad_from stays 0).
    const u32 sentinel = rc.decode_bypass_bits(8);
    const bool over_read = rc.has_error();
    rc_ = nullptr;
    return !over_read && sentinel == kRowSentinel;
}

Status
H264Decoder::decode_picture_resilient(const Packet &packet, Frame *out)
{
    const CodecConfig &cfg = config();

    const std::vector<ResyncMarker> candidates =
        scan_resync_markers(packet.data, mb_h_);
    std::vector<ResyncMarker> markers;
    markers.reserve(candidates.size());
    int prev_row = -1;
    for (const ResyncMarker &m : candidates) {
        if (m.row > prev_row) {
            markers.push_back(m);
            prev_row = m.row;
        }
    }
    if (markers.empty())
        return Status::corrupt_stream("no resync markers in h264 picture");

    const std::vector<u8> header =
        unescape_emulation(packet.data.data(), markers.front().pos);
    BitReader hbr(header);
    const PictureType type = static_cast<PictureType>(hbr.get_bits(2));
    const int qp = static_cast<int>(hbr.get_bits(6));
    const bool deblock = hbr.get_bit() != 0;
    hbr.skip_bits(16);  // poc_lsb
    if (hbr.has_error() || type != packet.type)
        return Status::corrupt_stream("bad h264 picture header");
    if (qp < 0 || qp > 51)
        return Status::corrupt_stream("bad h264 qp");
    if (type == PictureType::kP && dpb_.empty())
        return Status::corrupt_stream("P picture without reference");
    if (type == PictureType::kB && dpb_.size() < 2)
        return Status::corrupt_stream("B picture without two references");

    const H264Quantizer quant_i(qp, true);
    const H264Quantizer quant_p(qp, false);
    quant_i_ = &quant_i;
    quant_p_ = &quant_p;

    *out = Frame(cfg.width, cfg.height, kRefBorder);
    binfo_.clear();
    std::fill(mv_grid_.begin(), mv_grid_.end(), MotionVector{});

    MbState st{};
    st.frame = out;
    st.type = type;
    bool any_ok = false;
    bool in_error = false;
    size_t k = 0;
    for (int mby = 0; mby < mb_h_; ++mby) {
        int bad_from = 0;
        bool ok = false;
        if (k < markers.size() && markers[k].row == mby) {
            const size_t begin = markers[k].pos + 4;
            const size_t end = k + 1 < markers.size()
                                   ? markers[k + 1].pos
                                   : packet.data.size();
            const std::vector<u8> row = unescape_emulation(
                packet.data.data() + begin, end - begin);
            ok = decode_resilient_row(st, row, mby, &bad_from);
            ++k;
        }
        if (ok) {
            if (in_error) {
                ++stats_.resyncs;
                in_error = false;
            }
            any_ok = true;
        } else {
            in_error = true;
            conceal_row(out, type, bad_from, mby);
            stats_.mbs_concealed += mb_w_ - bad_from;
        }
    }
    quant_i_ = quant_p_ = nullptr;
    if (!any_ok)
        return Status::corrupt_stream("every row of the picture lost");

    if (deblock)
        deblock_picture(out, binfo_, qp);

    if (type != PictureType::kB) {
        Frame ref(cfg.width, cfg.height, kRefBorder);
        ref.copy_from(*out);
        ref.extend_borders();
        dpb_.push_back(std::move(ref));
        const size_t max_dpb =
            static_cast<size_t>(clamp(cfg.refs, 2, 16)) + 1;
        while (dpb_.size() > max_dpb)
            dpb_.pop_front();
    }
    return Status::ok();
}

Status
H264Decoder::decode_picture(const Packet &packet, Frame *out)
{
    if (config().error_resilience)
        return decode_picture_resilient(packet, out);

    const CodecConfig &cfg = config();
    RangeDecoder rc(packet.data);
    rc_ = &rc;
    ctx_.reset();

    const PictureType type =
        static_cast<PictureType>(rc.decode_bypass_bits(2));
    const int qp = static_cast<int>(rc.decode_bypass_bits(6));
    const bool deblock = rc.decode_bypass() != 0;
    rc.decode_bypass_bits(16);  // poc_lsb
    if (rc.has_error() || type != packet.type)
        return Status::corrupt_stream("bad h264 picture header");
    if (qp < 0 || qp > 51)
        return Status::corrupt_stream("bad h264 qp");
    if (type == PictureType::kP && dpb_.empty())
        return Status::corrupt_stream("P picture without reference");
    if (type == PictureType::kB && dpb_.size() < 2)
        return Status::corrupt_stream("B picture without two references");

    const H264Quantizer quant_i(qp, true);
    const H264Quantizer quant_p(qp, false);
    quant_i_ = &quant_i;
    quant_p_ = &quant_p;

    *out = Frame(cfg.width, cfg.height, kRefBorder);
    binfo_.clear();
    std::fill(mv_grid_.begin(), mv_grid_.end(), MotionVector{});

    MbState st{};
    st.frame = out;
    st.type = type;
    for (int mby = 0; mby < mb_h_; ++mby) {
        st.mby = mby;
        st.left_fwd = st.left_bwd = MotionVector{};
        for (int mbx = 0; mbx < mb_w_; ++mbx) {
            st.mbx = mbx;
            if (!decode_mb(st)) {
                rc_ = nullptr;
                return Status::corrupt_stream("bad h264 MB data");
            }
        }
    }
    rc_ = nullptr;
    quant_i_ = quant_p_ = nullptr;

    if (deblock)
        deblock_picture(out, binfo_, qp);

    if (type != PictureType::kB) {
        Frame ref(cfg.width, cfg.height, kRefBorder);
        ref.copy_from(*out);
        ref.extend_borders();
        dpb_.push_back(std::move(ref));
        const size_t max_dpb =
            static_cast<size_t>(clamp(cfg.refs, 2, 16)) + 1;
        while (dpb_.size() > max_dpb)
            dpb_.pop_front();
    }
    return Status::ok();
}

}  // namespace

std::unique_ptr<VideoDecoder>
create_h264_decoder(const CodecConfig &config)
{
    HDVB_CHECK(config.validate().is_ok());
    return std::make_unique<H264Decoder>(config);
}

}  // namespace hdvb
