/**
 * @file
 * Binarisation and context models for the H.264-class codec's adaptive
 * binary range coder. Everything here is shared between encoder and
 * decoder so the syntax stays symmetric by construction.
 */
#ifndef HDVB_H264_CABAC_SYNTAX_H
#define HDVB_H264_CABAC_SYNTAX_H

#include "bitstream/range_coder.h"
#include "common/types.h"
#include "dsp/zigzag.h"

namespace hdvb::h264 {

/** All adaptive contexts; reset at each picture. */
struct Contexts {
    BitModel mb_skip;
    BitModel mb_intra;
    BitModel intra4_flag;
    BitModel intra16_mode[2];
    BitModel intra4_mode[3];
    BitModel part_mode[2];
    BitModel b_mode[2];
    BitModel ref_idx[2];
    BitModel mvd_nonzero[2];  ///< per axis
    BitModel mvd_gt1[2];
    BitModel cbf[3];          ///< 0 luma, 1 chroma, 2 luma-DC
    BitModel sig[16];
    BitModel last[16];
    BitModel abs_gt1[2];

    void
    reset()
    {
        *this = Contexts{};
    }
};

// ---- bypass Exp-Golomb (suffix coding for large values) ----

inline void
encode_ue_bypass(RangeEncoder &rc, u32 value)
{
    // Exp-Golomb order 0 in bypass bins.
    const u32 code = value + 1;
    int bits = 0;
    for (u32 v = code; v != 0; v >>= 1)
        ++bits;
    for (int i = 0; i < bits - 1; ++i)
        rc.encode_bypass(0);
    for (int i = bits - 1; i >= 0; --i)
        rc.encode_bypass(static_cast<int>((code >> i) & 1));
}

inline u32
decode_ue_bypass(RangeDecoder &rc)
{
    int zeros = 0;
    while (zeros < 32 && rc.decode_bypass() == 0)
        ++zeros;
    if (zeros >= 32)
        return 0;
    u32 value = 1;
    for (int i = 0; i < zeros; ++i)
        value = (value << 1) | static_cast<u32>(rc.decode_bypass());
    return value - 1;
}

// ---- motion vector differences ----

inline void
encode_mvd(RangeEncoder &rc, Contexts &ctx, int axis, int mvd)
{
    const int mag = mvd < 0 ? -mvd : mvd;
    if (mag == 0) {
        rc.encode_bit(ctx.mvd_nonzero[axis], 0);
        return;
    }
    rc.encode_bit(ctx.mvd_nonzero[axis], 1);
    if (mag == 1) {
        rc.encode_bit(ctx.mvd_gt1[axis], 0);
    } else {
        rc.encode_bit(ctx.mvd_gt1[axis], 1);
        encode_ue_bypass(rc, static_cast<u32>(mag - 2));
    }
    rc.encode_bypass(mvd < 0);
}

inline int
decode_mvd(RangeDecoder &rc, Contexts &ctx, int axis)
{
    if (rc.decode_bit(ctx.mvd_nonzero[axis]) == 0)
        return 0;
    int mag = 1;
    if (rc.decode_bit(ctx.mvd_gt1[axis]) != 0)
        mag = 2 + static_cast<int>(decode_ue_bypass(rc));
    return rc.decode_bypass() ? -mag : mag;
}

// ---- unary coded reference index ----

inline void
encode_ref_idx(RangeEncoder &rc, Contexts &ctx, int ref, int max_ref)
{
    for (int i = 0; i < ref; ++i)
        rc.encode_bit(ctx.ref_idx[i == 0 ? 0 : 1], 1);
    if (ref < max_ref - 1)
        rc.encode_bit(ctx.ref_idx[ref == 0 ? 0 : 1], 0);
}

inline int
decode_ref_idx(RangeDecoder &rc, Contexts &ctx, int max_ref)
{
    int ref = 0;
    while (ref < max_ref - 1 &&
           rc.decode_bit(ctx.ref_idx[ref == 0 ? 0 : 1]) != 0) {
        ++ref;
    }
    return ref;
}

// ---- 4x4 residual blocks (coded block flag + sig/last + levels) ----

/**
 * Encode a 4x4 block of quantised levels in 4x4 zig-zag order.
 * @param levels raster-order 4x4 levels
 * @param first first scan position coded (1 for Intra16 AC blocks)
 * @param cbf_cat context category: 0 luma, 1 chroma, 2 luma-DC
 */
inline void
encode_block4x4(RangeEncoder &rc, Contexts &ctx, const Coeff levels[16],
                int first, int cbf_cat)
{
    int scan[16];
    int n = 0;
    int last_nz = -1;
    for (int i = first; i < 16; ++i) {
        scan[n] = levels[kZigzag4x4[i]];
        if (scan[n] != 0)
            last_nz = n;
        ++n;
    }
    if (last_nz < 0) {
        rc.encode_bit(ctx.cbf[cbf_cat], 0);
        return;
    }
    rc.encode_bit(ctx.cbf[cbf_cat], 1);
    int gt1_seen = 0;
    for (int i = 0; i <= last_nz; ++i) {
        const int v = scan[i];
        if (i < n - 1) {
            rc.encode_bit(ctx.sig[i + (16 - n)], v != 0);
            if (v == 0)
                continue;
        }
        // Level: gt1 flag + bypass suffix + sign.
        const int mag = v < 0 ? -v : v;
        rc.encode_bit(ctx.abs_gt1[gt1_seen != 0 ? 1 : 0], mag > 1);
        if (mag > 1) {
            encode_ue_bypass(rc, static_cast<u32>(mag - 2));
            gt1_seen = 1;
        }
        rc.encode_bypass(v < 0);
        if (i < n - 1)
            rc.encode_bit(ctx.last[i + (16 - n)], i == last_nz);
    }
}

/**
 * Decode one 4x4 block into raster-order @p levels (zero-filled by the
 * caller). Returns false on malformed data.
 */
inline bool
decode_block4x4(RangeDecoder &rc, Contexts &ctx, Coeff levels[16],
                int first, int cbf_cat)
{
    if (rc.decode_bit(ctx.cbf[cbf_cat]) == 0)
        return true;
    const int n = 16 - first;
    int gt1_seen = 0;
    bool any = false;
    for (int i = 0; i < n; ++i) {
        int sig = 1;
        if (i < n - 1)
            sig = rc.decode_bit(ctx.sig[i + (16 - n)]);
        else if (any)
            sig = 1;  // the final position is reached only when coded
        if (sig == 0)
            continue;
        const int gt1 = rc.decode_bit(ctx.abs_gt1[gt1_seen ? 1 : 0]);
        int mag = 1;
        if (gt1 != 0) {
            mag = 2 + static_cast<int>(decode_ue_bypass(rc));
            gt1_seen = 1;
        }
        if (mag > 2047)
            return false;
        const int v = rc.decode_bypass() ? -mag : mag;
        levels[kZigzag4x4[first + i]] = static_cast<Coeff>(v);
        any = true;
        if (i < n - 1 && rc.decode_bit(ctx.last[i + (16 - n)]) != 0)
            return true;
        if (rc.has_error())
            return false;
    }
    return !rc.has_error();
}

}  // namespace hdvb::h264

#endif  // HDVB_H264_CABAC_SYNTAX_H
