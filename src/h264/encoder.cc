/**
 * @file
 * H.264-class encoder: hexagon motion estimation with SATD sub-sample
 * refinement (the paper's `--me hex --subme 7`), variable block sizes,
 * multiple reference pictures (`--ref`), Intra4/Intra16 prediction,
 * 4x4 integer transform, in-loop deblocking and adaptive binary range
 * coding.
 *
 * Like the MPEG encoders, encoding is split into an analysis phase
 * (all decisions, quantised levels and the reconstruction, wavefront-
 * parallel across MB rows when CodecConfig::threads > 1) and a serial
 * write phase that replays per-MB records through the adaptive range
 * coder in raster order. The range coder is inherently sequential —
 * every bin shifts the context models — so it lives entirely in the
 * replay, which emits the identical bit sequence for any thread count.
 */
#include "h264/h264.h"

#include <cmath>
#include <cstring>
#include <deque>
#include <memory>
#include <vector>

#include "bitstream/bit_writer.h"
#include "bitstream/resync.h"
#include "codec/codec.h"
#include "codec/side_info.h"
#include "common/check.h"
#include "common/thread_pool.h"
#include "common/wavefront.h"
#include "dsp/approx.h"
#include "dsp/quant.h"
#include "dsp/transform4x4.h"
#include "h264/cabac_syntax.h"
#include "h264/deblock.h"
#include "h264/intra_pred.h"
#include "mc/mc.h"
#include "me/me.h"

namespace hdvb {

namespace {

using namespace hdvb::h264;

/** One luma partition: geometry plus its chosen motion. */
struct Partition {
    int x, y, w, h;  ///< offsets within the MB / sizes
    MotionVector mv;
};

/** Partition geometries per PartMode. */
const Partition kPartGeom[4][4] = {
    {{0, 0, 16, 16, {}}, {}, {}, {}},
    {{0, 0, 16, 8, {}}, {0, 8, 16, 8, {}}, {}, {}},
    {{0, 0, 8, 16, {}}, {8, 0, 8, 16, {}}, {}, {}},
    {{0, 0, 8, 8, {}}, {8, 0, 8, 8, {}}, {0, 8, 8, 8, {}},
     {8, 8, 8, 8, {}}},
};

const int kPartCount[4] = {1, 2, 2, 4};

/** Hint vector (quarter-sample) as a clamped-by-the-estimator
 * full-sample search candidate. */
inline MotionVector
hint_full_pel(MotionVector quarter)
{
    return {static_cast<s16>(quarter.x >> 2),
            static_cast<s16>(quarter.y >> 2)};
}

class H264Encoder final : public EncoderBase
{
  public:
    explicit H264Encoder(const CodecConfig &cfg)
        : EncoderBase(cfg),
          dsp_(get_dsp(cfg.simd)),
          quant_i_(cfg.qp, true),
          quant_p_(cfg.qp, false),
          me_(MeParams{cfg.me_range,
                       static_cast<int>(16.0 *
                                        std::pow(2.0,
                                                 (cfg.qp - 12) / 6.0)),
                       2, &dsp_, cfg.approx}),
          dead_zone_sad_(h264_dead_zone_sad(cfg.qp, cfg.approx)),
          mb_w_(cfg.width / 16),
          mb_h_(cfg.height / 16),
          binfo_(cfg.width, cfg.height),
          mv_grid_(static_cast<size_t>(mb_w_) * mb_h_),
          anchor_mvs_(static_cast<size_t>(mb_w_) * mb_h_),
          records_(static_cast<size_t>(mb_w_) * mb_h_),
          pool_(cfg.threads > 1
                    ? std::make_unique<ThreadPool>(cfg.threads)
                    : nullptr)
    {
    }

    const char *name() const override { return "h264"; }

  protected:
    std::vector<u8> encode_picture(const Frame &src,
                                   PictureType type) override;

  private:
    /** Everything the serial write phase needs to replay one MB
     * through the range coder. */
    struct MbRecord {
        enum Kind : u8 { kSkip, kIntra, kInterP, kInterB };
        Kind kind = kIntra;
        // intra
        bool use_i4 = false;
        u8 i16_mode = 0;       ///< Intra16Mode
        u8 i4_modes[16] = {};  ///< Intra4Mode per 4x4 block
        // inter (P)
        u8 part_mode = 0;
        u8 ref = 0;
        MotionVector part_mv[4];
        MotionVector pred_mv;  ///< median predictor, MVD chain start
        // inter (B)
        u8 b_mode = 0;
        MotionVector fmv;
        MotionVector bmv;
        // residual levels as quantised by the analysis phase
        Coeff dc_levels[16] = {};      ///< intra16 Hadamard DC
        Coeff luma[16][16] = {};
        Coeff chroma[2][4][16] = {};
    };

    /** Analysis-side row-scoped B-picture MV chains. */
    struct RowState {
        MotionVector left_fwd;
        MotionVector left_bwd;
    };

    void analyze_picture(const Frame &src, PictureType type);
    void analyze_mb(RowState &rs, const Frame &src, PictureType type,
                    int mbx, int mby, MbRecord &rec);
    void analyze_intra_mb(RowState &rs, const Frame &src, int mbx,
                          int mby, MbRecord &rec);
    u16 analyze_luma_intra16(const Frame &src, int mbx, int mby,
                             MbRecord &rec);
    u16 analyze_luma_intra4(const Frame &src, int mbx, int mby,
                            MbRecord &rec);
    void analyze_chroma(const Frame &src, int mbx, int mby, bool intra,
                        const Pixel *cb_pred, const Pixel *cr_pred,
                        MbRecord &rec);
    /** Transform + quantise the inter residual into @p rec and return
     * whether any coefficient is nonzero; @p nz_map gets the per-4x4
     * luma nonzero map. Does not touch the reconstruction. */
    bool quantize_inter_residual(const Frame &src, int mbx, int mby,
                                 const Pixel *luma_pred,
                                 const Pixel *cb_pred,
                                 const Pixel *cr_pred, MbRecord &rec,
                                 u16 *nz_map);
    void recon_inter_mb(int mbx, int mby, const Pixel *luma_pred,
                        const Pixel *cb_pred, const Pixel *cr_pred,
                        const MbRecord &rec);

    /** Write-side replay of one record (see the file comment). */
    struct WriteChains {
        MotionVector left_fwd;
        MotionVector left_bwd;
    };
    void write_mb(RangeEncoder &rc, WriteChains &wc,
                  const MbRecord &rec, PictureType type);

    MotionVector median_pred(int mbx, int mby) const;
    MeResult estimate(const Frame &src, const Plane &ref, int x0, int y0,
                      int w, int h, MotionVector pred_sub,
                      const std::vector<MotionVector> &cands) const;
    void predict_inter_luma(const Plane &ref, int mbx, int mby,
                            const Partition *parts, int count,
                            Pixel luma[16 * 16]) const;
    void fill_binfo(int mbx, int mby, bool intra, s8 ref,
                    const Partition *parts, int count, u16 nz_map);

    const Frame &ref_frame(int ref_idx) const;

    const Dsp &dsp_;
    H264Quantizer quant_i_;
    H264Quantizer quant_p_;
    MotionEstimator me_;
    int dead_zone_sad_;  ///< per-4x4 skip zone, 0 when approx == 0
    int mb_w_;
    int mb_h_;

    std::deque<Frame> dpb_;  ///< reconstructed anchors, newest last
    RangeEncoder rc_;        ///< persistent coder (capacity reuse)
    BitWriter hbw_;          ///< persistent header writer
    std::vector<u8> wbuf_;   ///< persistent finish_into() scratch
    BlockInfoGrid binfo_;
    std::vector<MotionVector> mv_grid_;     ///< quarter-pel, current
    std::vector<MotionVector> anchor_mvs_;  ///< full-pel collocated
    Frame recon_;
    Contexts ctx_models_;
    std::vector<MbRecord> records_;   ///< one per MB, raster order
    std::unique_ptr<ThreadPool> pool_;  ///< band pool (threads > 1)

    /** Hints for the picture being analysed (read-only during the
     * wavefront phase), or null for full analysis. */
    std::shared_ptr<const PictureSideInfo> hint_pic_;

    const MbSideInfo *
    hint_mb(int mbx, int mby) const
    {
        return hint_pic_ ? &hint_pic_->at(mbx, mby) : nullptr;
    }
};

const Frame &
H264Encoder::ref_frame(int ref_idx) const
{
    // List0: newest anchor first.
    HDVB_DCHECK(ref_idx < static_cast<int>(dpb_.size()));
    return dpb_[dpb_.size() - 1 - static_cast<size_t>(ref_idx)];
}

MotionVector
H264Encoder::median_pred(int mbx, int mby) const
{
    const MotionVector zero{};
    const MotionVector a =
        mbx > 0 ? mv_grid_[mby * mb_w_ + mbx - 1] : zero;
    // Resilient rows must parse standalone: predict from the left only.
    if (mby == 0 || config().error_resilience)
        return a;
    const MotionVector b = mv_grid_[(mby - 1) * mb_w_ + mbx];
    const MotionVector c = mbx + 1 < mb_w_
                               ? mv_grid_[(mby - 1) * mb_w_ + mbx + 1]
                               : zero;
    return {median3(a.x, b.x, c.x), median3(a.y, b.y, c.y)};
}

MeResult
H264Encoder::estimate(const Frame &src, const Plane &ref, int x0, int y0,
                      int w, int h, MotionVector pred_sub,
                      const std::vector<MotionVector> &cands) const
{
    MeBlock blk;
    blk.cur = &src.luma();
    blk.ref = &ref;
    blk.x0 = x0;
    blk.y0 = y0;
    blk.w = w;
    blk.h = h;
    const MeResult full = me_.hex(blk, pred_sub, cands);
    const MotionVector start{static_cast<s16>(full.mv.x * 4),
                             static_cast<s16>(full.mv.y * 4)};
    const int approx = me_.params().approx;
    if (approx >= 1 && full.sad < me_.exit_threshold(blk)) {
        // Full-pel match is already near-noise: keep its SAD cost and
        // skip the fractional refinement entirely.
        MeResult r = full;
        r.mv = start;
        return r;
    }
    // SATD-driven half- then quarter-sample refinement (subme-style);
    // the top approximation levels stop at half-sample.
    const auto mc = [&](MotionVector mv, Pixel *dst, int ds) {
        mc_h264_luma(ref, x0, y0, mv, dst, ds, w, h, dsp_);
    };
    return approx >= 2 ? subpel_refine(blk, start, pred_sub,
                                       me_.params(), {2},
                                       /*use_satd=*/true, mc)
                       : subpel_refine(blk, start, pred_sub,
                                       me_.params(), {2, 1},
                                       /*use_satd=*/true, mc);
}

void
H264Encoder::predict_inter_luma(const Plane &ref, int mbx, int mby,
                                const Partition *parts, int count,
                                Pixel luma[16 * 16]) const
{
    for (int p = 0; p < count; ++p) {
        const Partition &part = parts[p];
        mc_h264_luma(ref, mbx * 16 + part.x, mby * 16 + part.y, part.mv,
                     luma + part.y * 16 + part.x, 16, part.w, part.h,
                     dsp_);
    }
}

void
H264Encoder::fill_binfo(int mbx, int mby, bool intra, s8 ref,
                        const Partition *parts, int count, u16 nz_map)
{
    const int bx0 = mbx * 4;
    const int by0 = mby * 4;
    for (int by = 0; by < 4; ++by) {
        for (int bx = 0; bx < 4; ++bx) {
            BlockInfo &info = binfo_.at(bx0 + bx, by0 + by);
            info.intra = intra ? 1 : 0;
            info.nonzero = (nz_map >> (by * 4 + bx)) & 1;
            info.ref = intra ? -1 : ref;
            info.mv = {};
            if (!intra) {
                for (int p = 0; p < count; ++p) {
                    const Partition &part = parts[p];
                    if (bx * 4 >= part.x && bx * 4 < part.x + part.w &&
                        by * 4 >= part.y && by * 4 < part.y + part.h) {
                        info.mv = part.mv;
                        break;
                    }
                }
            }
        }
    }
}

// ---- residual helpers ----

namespace {

/** Extract a 4x4 residual, transform and quantise it. Returns nonzero
 * count; levels left in @p blk. */
inline int
transform_quant4x4(const Dsp &dsp, const Plane &src_plane, int x, int y,
                   const Pixel *pred, int ps, const H264Quantizer &quant,
                   Coeff blk[16], Coeff *dc_out)
{
    dsp.sub_rect(blk, 4, src_plane.row(y) + x, src_plane.stride(), pred,
                 ps, 4, 4);
    h264_fwd4x4(blk);
    if (dc_out != nullptr) {
        *dc_out = blk[0];
        blk[0] = 0;
    }
    return quant.quantize4x4(blk);
}

/** Dequantise levels and add the inverse transform to @p dst. */
inline void
recon4x4(const Dsp &dsp, const Coeff levels[16],
         const H264Quantizer &quant, s32 dc_coeff, Pixel *dst, int ds)
{
    Coeff tmp[16];
    std::memcpy(tmp, levels, sizeof(tmp));
    quant.dequantize4x4(tmp);
    if (dc_coeff != INT32_MIN)
        tmp[0] = static_cast<Coeff>(clamp<s32>(dc_coeff, -32768, 32767));
    h264_inv4x4(tmp);
    dsp.add_rect(dst, ds, tmp, 4, 4, 4);
}

}  // namespace

void
H264Encoder::analyze_chroma(const Frame &src, int mbx, int mby,
                            bool intra, const Pixel *cb_pred,
                            const Pixel *cr_pred, MbRecord &rec)
{
    const H264Quantizer &quant = intra ? quant_i_ : quant_p_;
    for (int comp = 1; comp < 3; ++comp) {
        const Plane &src_plane = src.plane(comp);
        Plane &rec_plane = recon_.plane(comp);
        const Pixel *pred = comp == 1 ? cb_pred : cr_pred;
        const int cx = mbx * 8;
        const int cy = mby * 8;
        for (int b = 0; b < 4; ++b) {
            const int x = cx + (b & 1) * 4;
            const int y = cy + (b >> 1) * 4;
            Coeff *blk = rec.chroma[comp - 1][b];
            const Pixel *pp = pred + (b >> 1) * 4 * 8 + (b & 1) * 4;
            transform_quant4x4(dsp_, src_plane, x, y, pp, 8, quant, blk,
                               nullptr);
            Pixel *dst = rec_plane.row(y) + x;
            dsp_.copy_rect(dst, rec_plane.stride(), pp, 8, 4, 4);
            recon4x4(dsp_, blk, quant, INT32_MIN, dst,
                     rec_plane.stride());
        }
    }
}

u16
H264Encoder::analyze_luma_intra16(const Frame &src, int mbx, int mby,
                                  MbRecord &rec)
{
    const int lx = mbx * 16;
    const int ly = mby * 16;
    Pixel pred[16 * 16];
    predict_intra16(recon_.luma(), lx, ly,
                    static_cast<Intra16Mode>(rec.i16_mode), pred, 16);

    // Transform all 16 blocks; pull the DCs through the Hadamard.
    s32 dc[16];
    for (int b = 0; b < 16; ++b) {
        Coeff dc_c;
        const int x = lx + (b & 3) * 4;
        const int y = ly + (b >> 2) * 4;
        transform_quant4x4(dsp_, src.luma(), x, y,
                           pred + (b >> 2) * 4 * 16 + (b & 3) * 4, 16,
                           quant_i_, rec.luma[b], &dc_c);
        dc[b] = dc_c;
    }
    hadamard4x4_fwd(dc);
    for (int b = 0; b < 16; ++b)
        rec.dc_levels[b] = quant_i_.quantize_dc(dc[b]);

    // Reconstruction.
    s32 dc_rec[16];
    bool dc_nz = false;
    for (int b = 0; b < 16; ++b) {
        dc_rec[b] = quant_i_.dequantize_dc(rec.dc_levels[b]);
        dc_nz |= rec.dc_levels[b] != 0;
    }
    hadamard4x4_inv(dc_rec);
    u16 nz_map = 0;
    for (int b = 0; b < 16; ++b) {
        const int x = lx + (b & 3) * 4;
        const int y = ly + (b >> 2) * 4;
        Pixel *dst = recon_.luma().row(y) + x;
        dsp_.copy_rect(dst, recon_.luma().stride(),
                       pred + (b >> 2) * 4 * 16 + (b & 3) * 4, 16, 4, 4);
        recon4x4(dsp_, rec.luma[b], quant_i_, (dc_rec[b] + 8) >> 4, dst,
                 recon_.luma().stride());
        bool nz = dc_nz;
        for (int i = 1; i < 16; ++i)
            nz |= rec.luma[b][i] != 0;
        if (nz)
            nz_map |= 1u << b;
    }
    return nz_map;
}

u16
H264Encoder::analyze_luma_intra4(const Frame &src, int mbx, int mby,
                                 MbRecord &rec)
{
    const int lx = mbx * 16;
    const int ly = mby * 16;
    const Plane &src_luma = src.luma();
    u16 nz_map = 0;
    for (int b = 0; b < 16; ++b) {
        const int x = lx + (b & 3) * 4;
        const int y = ly + (b >> 2) * 4;
        // Pick the SATD-best available mode against the source.
        Intra4Mode best_mode = kI4Dc;
        int best_cost = INT32_MAX;
        Pixel pred[16];
        for (int m = 0; m < kI4ModeCount; ++m) {
            const Intra4Mode mode = static_cast<Intra4Mode>(m);
            if (!intra4_mode_available(recon_.luma(), x, y, mode))
                continue;
            predict_intra4(recon_.luma(), x, y, mode, pred, 4);
            const int cost =
                dsp_.satd4x4(src_luma.row(y) + x, src_luma.stride(),
                             pred, 4) + (m != kI4Dc ? 1 : 0);
            if (cost < best_cost) {
                best_cost = cost;
                best_mode = mode;
            }
        }
        rec.i4_modes[b] = static_cast<u8>(best_mode);

        predict_intra4(recon_.luma(), x, y, best_mode, pred, 4);
        const int nz = transform_quant4x4(dsp_, src_luma, x, y, pred, 4,
                                          quant_i_, rec.luma[b],
                                          nullptr);
        Pixel *dst = recon_.luma().row(y) + x;
        dsp_.copy_rect(dst, recon_.luma().stride(), pred, 4, 4, 4);
        recon4x4(dsp_, rec.luma[b], quant_i_, INT32_MIN, dst,
                 recon_.luma().stride());
        if (nz != 0)
            nz_map |= 1u << b;
    }
    return nz_map;
}

void
H264Encoder::analyze_intra_mb(RowState &rs, const Frame &src, int mbx,
                              int mby, MbRecord &rec)
{
    rec.kind = MbRecord::kIntra;
    const int lx = mbx * 16;
    const int ly = mby * 16;
    const Plane &src_luma = src.luma();

    // Choose Intra16 mode by SATD.
    Intra16Mode best16 = kI16Dc;
    int cost16 = INT32_MAX;
    Pixel pred[16 * 16];
    for (int m = 0; m < 4; ++m) {
        const Intra16Mode mode = static_cast<Intra16Mode>(m);
        if (!intra16_mode_available(lx, ly, mode))
            continue;
        predict_intra16(recon_.luma(), lx, ly, mode, pred, 16);
        const int cost = dsp_.satd_rect(src_luma.row(ly) + lx,
                                        src_luma.stride(), pred, 16, 16,
                                        16);
        if (cost < cost16) {
            cost16 = cost;
            best16 = mode;
        }
    }

    bool use_i4 = false;
    if (config().intra4) {
        // Estimate the Intra4 cost with source-neighbour SATD (cheap
        // proxy; the real coding below uses reconstructed neighbours).
        int cost4 = (me_.params().lambda16 * 48) >> 4;
        Pixel p4[16];
        for (int b = 0; b < 16 && cost4 < cost16; ++b) {
            const int x = lx + (b & 3) * 4;
            const int y = ly + (b >> 2) * 4;
            int best = INT32_MAX;
            for (int m = 0; m < kI4ModeCount; ++m) {
                const Intra4Mode mode = static_cast<Intra4Mode>(m);
                if (!intra4_mode_available(recon_.luma(), x, y, mode))
                    continue;
                predict_intra4(recon_.luma(), x, y, mode, p4, 4);
                const int c = dsp_.satd4x4(src_luma.row(y) + x,
                                           src_luma.stride(), p4, 4);
                best = best < c ? best : c;
            }
            cost4 += best;
        }
        use_i4 = cost4 < cost16;
    }

    rec.use_i4 = use_i4;
    rec.i16_mode = static_cast<u8>(best16);
    const u16 nz_map = use_i4 ? analyze_luma_intra4(src, mbx, mby, rec)
                              : analyze_luma_intra16(src, mbx, mby, rec);

    Pixel cb_pred[8 * 8], cr_pred[8 * 8];
    predict_chroma_dc(recon_.cb(), mbx * 8, mby * 8, cb_pred, 8);
    predict_chroma_dc(recon_.cr(), mbx * 8, mby * 8, cr_pred, 8);
    analyze_chroma(src, mbx, mby, true, cb_pred, cr_pred, rec);

    fill_binfo(mbx, mby, true, -1, nullptr, 0, nz_map);
    mv_grid_[mby * mb_w_ + mbx] = MotionVector{};
    rs.left_fwd = rs.left_bwd = MotionVector{};
}

bool
H264Encoder::quantize_inter_residual(const Frame &src, int mbx, int mby,
                                     const Pixel *luma_pred,
                                     const Pixel *cb_pred,
                                     const Pixel *cr_pred, MbRecord &rec,
                                     u16 *nz_map)
{
    const int lx = mbx * 16;
    const int ly = mby * 16;
    bool any = false;
    *nz_map = 0;
    for (int b = 0; b < 16; ++b) {
        const int x = lx + (b & 3) * 4;
        const int y = ly + (b >> 2) * 4;
        const Pixel *pp = luma_pred + (b >> 2) * 4 * 16 + (b & 3) * 4;
        if (dead_zone_sad_ > 0 &&
            dsp_.sad_rect(src.luma().row(y) + x, src.luma().stride(),
                          pp, 16, 4, 4) < dead_zone_sad_) {
            // Near-zero residual: code the block as all-zero without
            // running the transform. Records are reused across MBs, so
            // the levels must be cleared explicitly.
            std::memset(rec.luma[b], 0, sizeof(rec.luma[b]));
            continue;
        }
        const int nz = transform_quant4x4(dsp_, src.luma(), x, y, pp,
                                          16, quant_p_, rec.luma[b],
                                          nullptr);
        if (nz != 0) {
            any = true;
            *nz_map |= 1u << b;
        }
    }

    // Chroma residual (evaluated for the skip test as well).
    for (int comp = 1; comp < 3; ++comp) {
        const Plane &src_plane = src.plane(comp);
        const Pixel *pred = comp == 1 ? cb_pred : cr_pred;
        for (int b = 0; b < 4; ++b) {
            const int x = mbx * 8 + (b & 1) * 4;
            const int y = mby * 8 + (b >> 1) * 4;
            const Pixel *pp = pred + (b >> 1) * 4 * 8 + (b & 1) * 4;
            if (dead_zone_sad_ > 0 &&
                dsp_.sad_rect(src_plane.row(y) + x, src_plane.stride(),
                              pp, 8, 4, 4) < dead_zone_sad_) {
                std::memset(rec.chroma[comp - 1][b], 0,
                            sizeof(rec.chroma[comp - 1][b]));
                continue;
            }
            const int nz = transform_quant4x4(
                dsp_, src_plane, x, y, pp, 8, quant_p_,
                rec.chroma[comp - 1][b], nullptr);
            any |= nz != 0;
        }
    }
    return any;
}

void
H264Encoder::recon_inter_mb(int mbx, int mby, const Pixel *luma_pred,
                            const Pixel *cb_pred, const Pixel *cr_pred,
                            const MbRecord &rec)
{
    const int lx = mbx * 16;
    const int ly = mby * 16;
    for (int b = 0; b < 16; ++b) {
        const int x = lx + (b & 3) * 4;
        const int y = ly + (b >> 2) * 4;
        Pixel *dst = recon_.luma().row(y) + x;
        dsp_.copy_rect(dst, recon_.luma().stride(),
                       luma_pred + (b >> 2) * 4 * 16 + (b & 3) * 4, 16,
                       4, 4);
        recon4x4(dsp_, rec.luma[b], quant_p_, INT32_MIN, dst,
                 recon_.luma().stride());
    }
    for (int comp = 1; comp < 3; ++comp) {
        Plane &rec_plane = recon_.plane(comp);
        const Pixel *pred = comp == 1 ? cb_pred : cr_pred;
        for (int b = 0; b < 4; ++b) {
            const int x = mbx * 8 + (b & 1) * 4;
            const int y = mby * 8 + (b >> 1) * 4;
            Pixel *dst = rec_plane.row(y) + x;
            dsp_.copy_rect(dst, rec_plane.stride(),
                           pred + (b >> 1) * 4 * 8 + (b & 1) * 4, 8, 4,
                           4);
            recon4x4(dsp_, rec.chroma[comp - 1][b], quant_p_, INT32_MIN,
                     dst, rec_plane.stride());
        }
    }
}

void
H264Encoder::analyze_mb(RowState &rs, const Frame &src, PictureType type,
                        int mbx, int mby, MbRecord &rec)
{
    const CodecConfig &cfg = config();
    const Plane &src_luma = src.luma();
    const int lx = mbx * 16;
    const int ly = mby * 16;

    if (type == PictureType::kI) {
        analyze_intra_mb(rs, src, mbx, mby, rec);
        return;
    }

    // Analysis-reuse hints (see src/codec/side_info.h): decode-side
    // intra goes straight to intra; a decode-side vector is seeded as
    // a search candidate while the intra scan, the extra references
    // and the partition split trials are pruned; B MBs search only the
    // hinted direction(s). Each pruned branch keeps a legal fallback;
    // a null hint runs the original code path bit-for-bit.
    const MbSideInfo *hint = hint_mb(mbx, mby);
    if (hint != nullptr && hint->mode == MbSideInfo::kIntra) {
        analyze_intra_mb(rs, src, mbx, mby, rec);
        return;
    }

    // ---- inter candidates ----
    const MotionVector pred_mv = median_pred(mbx, mby);
    std::vector<MotionVector> cands;
    cands.reserve(4);
    const int idx = mby * mb_w_ + mbx;
    if (mbx > 0)
        cands.push_back({static_cast<s16>(mv_grid_[idx - 1].x >> 2),
                         static_cast<s16>(mv_grid_[idx - 1].y >> 2)});
    if (mby > 0)
        cands.push_back(
            {static_cast<s16>(mv_grid_[idx - mb_w_].x >> 2),
             static_cast<s16>(mv_grid_[idx - mb_w_].y >> 2)});
    cands.push_back(anchor_mvs_[idx]);

    // Rough intra cost for the mode decision (a hinted MB already
    // settled on inter at decode time, so skip the SATD scan).
    Pixel ipred[16 * 16];
    int intra_cost = INT32_MAX;
    if (hint == nullptr) {
        for (int m = 0; m < 4; ++m) {
            const Intra16Mode mode = static_cast<Intra16Mode>(m);
            if (!intra16_mode_available(lx, ly, mode))
                continue;
            predict_intra16(recon_.luma(), lx, ly, mode, ipred, 16);
            const int cost = dsp_.satd_rect(src_luma.row(ly) + lx,
                                            src_luma.stride(), ipred, 16,
                                            16, 16);
            intra_cost = intra_cost < cost ? intra_cost : cost;
        }
        intra_cost += (me_.params().lambda16 * 32) >> 4;
    }

    if (type == PictureType::kP) {
        // 16x16 over every reference; a hint pins the decode-side
        // reference (clamped to this encoder's dpb depth).
        const int nrefs =
            clamp<int>(static_cast<int>(dpb_.size()), 1, cfg.refs);
        int r_lo = 0;
        int r_hi = nrefs;
        if (hint != nullptr) {
            cands.push_back(hint_full_pel(hint->fwd));
            r_lo = clamp<int>(hint->ref, 0, nrefs - 1);
            r_hi = r_lo + 1;
        }
        MeResult best16;
        int best_ref = r_lo;
        for (int r = r_lo; r < r_hi; ++r) {
            MeResult res = estimate(src, ref_frame(r).luma(), lx, ly,
                                    16, 16, pred_mv, cands);
            res.cost += (me_.params().lambda16 * 2 * r) >> 4;
            if (res.cost < best16.cost) {
                best16 = res;
                best_ref = r;
            }
        }
        const Plane &ref_luma = ref_frame(best_ref).luma();

        // Partition decision on the chosen reference (the hint is a
        // 16x16 seed, so trust it and skip the split trials).
        int best_mode = kPart16x16;
        Partition parts[4] = {kPartGeom[kPart16x16][0], {}, {}, {}};
        parts[0].mv = best16.mv;
        int best_cost = best16.cost;
        // Approximation levels >= 2 trust the 16x16 result unless its
        // residual is clearly large enough for a split to pay off.
        const bool try_parts =
            cfg.partitions && hint == nullptr &&
            (me_.params().approx < 2 ||
             best16.sad >= (256 << me_.params().approx) * 4);
        if (try_parts) {
            std::vector<MotionVector> sub_cands = cands;
            sub_cands.push_back({static_cast<s16>(best16.mv.x >> 2),
                                 static_cast<s16>(best16.mv.y >> 2)});
            for (int mode = kPart16x8; mode <= kPart8x8; ++mode) {
                const int count = kPartCount[mode];
                Partition trial[4];
                int cost = (me_.params().lambda16 * 8 * count) >> 4;
                for (int p = 0; p < count && cost < best_cost; ++p) {
                    trial[p] = kPartGeom[mode][p];
                    const MeResult r = estimate(
                        src, ref_luma, lx + trial[p].x, ly + trial[p].y,
                        trial[p].w, trial[p].h, best16.mv, sub_cands);
                    trial[p].mv = r.mv;
                    cost += r.cost;
                }
                if (cost < best_cost) {
                    best_cost = cost;
                    best_mode = mode;
                    for (int p = 0; p < count; ++p)
                        parts[p] = trial[p];
                }
            }
        }

        if (intra_cost < best_cost) {
            analyze_intra_mb(rs, src, mbx, mby, rec);
            return;
        }

        // Build the prediction and quantise the residual.
        Pixel luma_pred[16 * 16], cb_pred[8 * 8], cr_pred[8 * 8];
        const int count = kPartCount[best_mode];
        predict_inter_luma(ref_luma, mbx, mby, parts, count, luma_pred);
        {
            // Chroma from the partition MVs.
            const Frame &ref = ref_frame(best_ref);
            for (int p = 0; p < count; ++p) {
                const Partition &part = parts[p];
                mc_h264_chroma(ref.cb(), mbx * 8 + part.x / 2,
                               mby * 8 + part.y / 2, part.mv,
                               cb_pred + (part.y / 2) * 8 + part.x / 2,
                               8, part.w / 2, part.h / 2);
                mc_h264_chroma(ref.cr(), mbx * 8 + part.x / 2,
                               mby * 8 + part.y / 2, part.mv,
                               cr_pred + (part.y / 2) * 8 + part.x / 2,
                               8, part.w / 2, part.h / 2);
            }
        }

        u16 nz_map = 0;
        const bool any = quantize_inter_residual(
            src, mbx, mby, luma_pred, cb_pred, cr_pred, rec, &nz_map);

        // Skip test: 16x16, ref 0, MV == predictor, zero residual.
        const bool skip_candidate = best_mode == kPart16x16 &&
                                    best_ref == 0 &&
                                    parts[0].mv == pred_mv;
        if (skip_candidate && !any) {
            rec.kind = MbRecord::kSkip;
            // Reconstruction = prediction.
            dsp_.copy_rect(recon_.luma().row(ly) + lx,
                           recon_.luma().stride(), luma_pred, 16, 16,
                           16);
            dsp_.copy_rect(recon_.cb().row(mby * 8) + mbx * 8,
                           recon_.cb().stride(), cb_pred, 8, 8, 8);
            dsp_.copy_rect(recon_.cr().row(mby * 8) + mbx * 8,
                           recon_.cr().stride(), cr_pred, 8, 8, 8);
            fill_binfo(mbx, mby, false, 0, parts, 1, 0);
            mv_grid_[idx] = parts[0].mv;
            return;
        }

        rec.kind = MbRecord::kInterP;
        rec.part_mode = static_cast<u8>(best_mode);
        rec.ref = static_cast<u8>(best_ref);
        rec.pred_mv = pred_mv;
        for (int p = 0; p < count; ++p)
            rec.part_mv[p] = parts[p].mv;
        recon_inter_mb(mbx, mby, luma_pred, cb_pred, cr_pred, rec);
        fill_binfo(mbx, mby, false, static_cast<s8>(best_ref), parts,
                   count, nz_map);
        mv_grid_[idx] = parts[0].mv;
        return;
    }

    // ---- B picture: 16x16 fwd/bwd/bi (+ intra) ----
    // A single-direction hint prunes the opposite estimate and the
    // bi-prediction build.
    const Frame &fwd_ref = dpb_[dpb_.size() - 2];
    const Frame &bwd_ref = dpb_.back();
    const bool want_fwd =
        hint == nullptr || hint->mode != MbSideInfo::kInterBwd;
    const bool want_bwd =
        hint == nullptr || hint->mode != MbSideInfo::kInterFwd;

    MeResult fwd;
    MeResult bwd;
    Pixel fbuf[16 * 16], bbuf[16 * 16], bibuf[16 * 16];
    if (want_fwd) {
        std::vector<MotionVector> fcands = cands;
        if (hint != nullptr)
            fcands.push_back(hint_full_pel(hint->fwd));
        fwd = estimate(src, fwd_ref.luma(), lx, ly, 16, 16, rs.left_fwd,
                       fcands);
        mc_h264_luma(fwd_ref.luma(), lx, ly, fwd.mv, fbuf, 16, 16, 16,
                     dsp_);
    }
    if (want_bwd) {
        std::vector<MotionVector> bcands = cands;
        if (hint != nullptr)
            bcands.push_back(hint_full_pel(hint->bwd));
        bwd = estimate(src, bwd_ref.luma(), lx, ly, 16, 16, rs.left_bwd,
                       bcands);
        mc_h264_luma(bwd_ref.luma(), lx, ly, bwd.mv, bbuf, 16, 16, 16,
                     dsp_);
    }

    int mode;
    int best_cost;
    if (want_fwd && want_bwd) {
        dsp_.avg_rect(bibuf, 16, fbuf, 16, bbuf, 16, 16, 16);
        const int bi_sad = dsp_.satd_rect(src_luma.row(ly) + lx,
                                          src_luma.stride(), bibuf, 16,
                                          16, 16);
        const int bi_cost =
            bi_sad +
            mv_rate_cost(fwd.mv, rs.left_fwd, me_.params().lambda16) +
            mv_rate_cost(bwd.mv, rs.left_bwd, me_.params().lambda16);

        mode = kBBi;
        best_cost = bi_cost;
        if (fwd.cost < best_cost) {
            mode = kBFwd;
            best_cost = fwd.cost;
        }
        if (bwd.cost < best_cost) {
            mode = kBBwd;
            best_cost = bwd.cost;
        }
    } else if (want_fwd) {
        mode = kBFwd;
        best_cost = fwd.cost;
    } else {
        mode = kBBwd;
        best_cost = bwd.cost;
    }
    if (intra_cost < best_cost) {
        analyze_intra_mb(rs, src, mbx, mby, rec);
        return;
    }

    const MotionVector fmv = mode == kBBwd ? MotionVector{} : fwd.mv;
    const MotionVector bmv = mode == kBFwd ? MotionVector{} : bwd.mv;

    Pixel luma_pred[16 * 16], cb_pred[8 * 8], cr_pred[8 * 8];
    if (mode == kBFwd) {
        std::memcpy(luma_pred, fbuf, sizeof(fbuf));
        mc_h264_chroma(fwd_ref.cb(), mbx * 8, mby * 8, fmv, cb_pred, 8,
                       8, 8);
        mc_h264_chroma(fwd_ref.cr(), mbx * 8, mby * 8, fmv, cr_pred, 8,
                       8, 8);
    } else if (mode == kBBwd) {
        std::memcpy(luma_pred, bbuf, sizeof(bbuf));
        mc_h264_chroma(bwd_ref.cb(), mbx * 8, mby * 8, bmv, cb_pred, 8,
                       8, 8);
        mc_h264_chroma(bwd_ref.cr(), mbx * 8, mby * 8, bmv, cr_pred, 8,
                       8, 8);
    } else {
        std::memcpy(luma_pred, bibuf, sizeof(bibuf));
        Pixel fc[8 * 8], bc[8 * 8];
        mc_h264_chroma(fwd_ref.cb(), mbx * 8, mby * 8, fmv, fc, 8, 8, 8);
        mc_h264_chroma(bwd_ref.cb(), mbx * 8, mby * 8, bmv, bc, 8, 8, 8);
        dsp_.avg_rect(cb_pred, 8, fc, 8, bc, 8, 8, 8);
        mc_h264_chroma(fwd_ref.cr(), mbx * 8, mby * 8, fmv, fc, 8, 8, 8);
        mc_h264_chroma(bwd_ref.cr(), mbx * 8, mby * 8, bmv, bc, 8, 8, 8);
        dsp_.avg_rect(cr_pred, 8, fc, 8, bc, 8, 8, 8);
    }

    u16 nz_map = 0;
    const bool any = quantize_inter_residual(src, mbx, mby, luma_pred,
                                             cb_pred, cr_pred, rec,
                                             &nz_map);

    // B-skip: bi-prediction at (0,0) with zero residual.
    if (mode == kBBi && fmv == MotionVector{} && bmv == MotionVector{} &&
        !any) {
        rec.kind = MbRecord::kSkip;
        dsp_.copy_rect(recon_.luma().row(ly) + lx,
                       recon_.luma().stride(), luma_pred, 16, 16, 16);
        dsp_.copy_rect(recon_.cb().row(mby * 8) + mbx * 8,
                       recon_.cb().stride(), cb_pred, 8, 8, 8);
        dsp_.copy_rect(recon_.cr().row(mby * 8) + mbx * 8,
                       recon_.cr().stride(), cr_pred, 8, 8, 8);
        Partition part = kPartGeom[kPart16x16][0];
        fill_binfo(mbx, mby, false, 0, &part, 1, 0);
        rs.left_fwd = rs.left_bwd = MotionVector{};
        return;
    }

    rec.kind = MbRecord::kInterB;
    rec.b_mode = static_cast<u8>(mode);
    rec.fmv = fmv;
    rec.bmv = bmv;
    recon_inter_mb(mbx, mby, luma_pred, cb_pred, cr_pred, rec);
    Partition part = kPartGeom[kPart16x16][0];
    part.mv = mode == kBBwd ? bmv : fmv;
    fill_binfo(mbx, mby, false, 0, &part, 1, nz_map);
    rs.left_fwd = mode == kBBwd ? MotionVector{} : fmv;
    rs.left_bwd = mode == kBFwd ? MotionVector{} : bmv;
}

void
H264Encoder::write_mb(RangeEncoder &rc, WriteChains &wc,
                      const MbRecord &rec, PictureType type)
{
    const CodecConfig &cfg = config();

    if (type != PictureType::kI) {
        rc.encode_bit(ctx_models_.mb_skip,
                      rec.kind == MbRecord::kSkip ? 1 : 0);
        if (rec.kind == MbRecord::kSkip) {
            wc.left_fwd = wc.left_bwd = MotionVector{};
            return;
        }
        rc.encode_bit(ctx_models_.mb_intra,
                      rec.kind == MbRecord::kIntra ? 1 : 0);
    }

    if (rec.kind == MbRecord::kIntra) {
        rc.encode_bit(ctx_models_.intra4_flag, rec.use_i4 ? 1 : 0);
        if (rec.use_i4) {
            for (int b = 0; b < 16; ++b) {
                const int mode = rec.i4_modes[b];
                rc.encode_bit(ctx_models_.intra4_mode[0],
                              (mode >> 2) & 1);
                rc.encode_bit(ctx_models_.intra4_mode[1],
                              (mode >> 1) & 1);
                rc.encode_bit(ctx_models_.intra4_mode[2], mode & 1);
                encode_block4x4(rc, ctx_models_, rec.luma[b], 0, 0);
            }
        } else {
            rc.encode_bit(ctx_models_.intra16_mode[0],
                          (rec.i16_mode >> 1) & 1);
            rc.encode_bit(ctx_models_.intra16_mode[1],
                          rec.i16_mode & 1);
            encode_block4x4(rc, ctx_models_, rec.dc_levels, 0, 2);
            for (int b = 0; b < 16; ++b)
                encode_block4x4(rc, ctx_models_, rec.luma[b], 1, 0);
        }
        for (int c = 0; c < 2; ++c)
            for (int b = 0; b < 4; ++b)
                encode_block4x4(rc, ctx_models_, rec.chroma[c][b], 0, 1);
        wc.left_fwd = wc.left_bwd = MotionVector{};
        return;
    }

    if (rec.kind == MbRecord::kInterP) {
        rc.encode_bit(ctx_models_.part_mode[0], rec.part_mode >> 1);
        rc.encode_bit(ctx_models_.part_mode[1], rec.part_mode & 1);
        if (cfg.refs > 1) {
            encode_ref_idx(rc, ctx_models_, rec.ref,
                           clamp<int>(static_cast<int>(dpb_.size()), 1,
                                      cfg.refs));
        }
        MotionVector chain = rec.pred_mv;
        const int count = kPartCount[rec.part_mode];
        for (int p = 0; p < count; ++p) {
            encode_mvd(rc, ctx_models_, 0, rec.part_mv[p].x - chain.x);
            encode_mvd(rc, ctx_models_, 1, rec.part_mv[p].y - chain.y);
            chain = rec.part_mv[p];
        }
    } else {
        rc.encode_bit(ctx_models_.b_mode[0],
                      rec.b_mode == kBBi ? 0 : 1);
        if (rec.b_mode != kBBi)
            rc.encode_bit(ctx_models_.b_mode[1],
                          rec.b_mode == kBBwd ? 1 : 0);
        if (rec.b_mode != kBBwd) {
            encode_mvd(rc, ctx_models_, 0, rec.fmv.x - wc.left_fwd.x);
            encode_mvd(rc, ctx_models_, 1, rec.fmv.y - wc.left_fwd.y);
        }
        if (rec.b_mode != kBFwd) {
            encode_mvd(rc, ctx_models_, 0, rec.bmv.x - wc.left_bwd.x);
            encode_mvd(rc, ctx_models_, 1, rec.bmv.y - wc.left_bwd.y);
        }
        wc.left_fwd = rec.b_mode == kBBwd ? MotionVector{} : rec.fmv;
        wc.left_bwd = rec.b_mode == kBFwd ? MotionVector{} : rec.bmv;
    }

    for (int b = 0; b < 16; ++b)
        encode_block4x4(rc, ctx_models_, rec.luma[b], 0, 0);
    for (int c = 0; c < 2; ++c)
        for (int b = 0; b < 4; ++b)
            encode_block4x4(rc, ctx_models_, rec.chroma[c][b], 0, 1);
}

void
H264Encoder::analyze_picture(const Frame &src, PictureType type)
{
    if (pool_ == nullptr || mb_h_ < 2) {
        for (int mby = 0; mby < mb_h_; ++mby) {
            RowState rs{};
            for (int mbx = 0; mbx < mb_w_; ++mbx)
                analyze_mb(rs, src, type, mbx, mby,
                           records_[mby * mb_w_ + mbx]);
        }
        return;
    }

    // Wavefront bands. MB (x, y) reads from row y-1: reconstructed
    // pixels for intra prediction (Intra16 planes reach x0+15, the
    // Intra4 down-left modes reach the above-right MB's first columns)
    // and mv_grid_ for the median predictor / ME candidates — all
    // within the above-right neighbour, so row y-1 must be done
    // through column x+1 first.
    WavefrontScheduler wf(mb_h_, mb_w_);
    parallel_for(*pool_, mb_h_, [&](int mby, int) {
        WavefrontRowGuard guard(wf, mby);
        RowState rs{};
        for (int mbx = 0; mbx < mb_w_; ++mbx) {
            wf.wait_above(mby, mbx);
            analyze_mb(rs, src, type, mbx, mby,
                       records_[mby * mb_w_ + mbx]);
            wf.publish(mby, mbx + 1);
        }
    });
}

std::vector<u8>
H264Encoder::encode_picture(const Frame &src, PictureType type)
{
    const CodecConfig &cfg = config();

    recon_ = new_frame(kRefBorder);
    binfo_.clear();
    std::fill(mv_grid_.begin(), mv_grid_.end(), MotionVector{});

    hint_pic_ = take_hints(src, type);
    analyze_picture(src, type);
    hint_pic_.reset();

    std::vector<u8> out;
    if (cfg.error_resilience) {
        // Plain-bit header segment (the range coder cannot resume after
        // damage, so the header must parse without it), escaped so it
        // cannot fake a resync marker.
        hbw_.clear();
        hbw_.put_bits(static_cast<u32>(type), 2);
        hbw_.put_bits(static_cast<u32>(cfg.qp), 6);
        hbw_.put_bit(cfg.deblock ? 1 : 0);
        hbw_.put_bits(static_cast<u32>(src.poc() & 0xFFFF), 16);
        hbw_.finish_into(&wbuf_);
        escape_emulation(wbuf_.data(), wbuf_.size(), &out);

        // Each MB row is an independently decodable range-coded chunk:
        // fresh coder state and fresh context models per row.
        for (int mby = 0; mby < mb_h_; ++mby) {
            rc_.reset();
            ctx_models_.reset();
            WriteChains wc;
            for (int mbx = 0; mbx < mb_w_; ++mbx)
                write_mb(rc_, wc, records_[mby * mb_w_ + mbx], type);
            rc_.encode_bypass_bits(kRowSentinel, 8);
            rc_.finish_into(&wbuf_);
            append_resync_marker(&out, mby);
            escape_emulation(wbuf_.data(), wbuf_.size(), &out);
        }
    } else {
        rc_.reset();
        ctx_models_.reset();
        rc_.encode_bypass_bits(static_cast<u32>(type), 2);
        rc_.encode_bypass_bits(static_cast<u32>(cfg.qp), 6);
        rc_.encode_bypass(cfg.deblock ? 1 : 0);
        rc_.encode_bypass_bits(static_cast<u32>(src.poc() & 0xFFFF), 16);
        for (int mby = 0; mby < mb_h_; ++mby) {
            WriteChains wc;
            for (int mbx = 0; mbx < mb_w_; ++mbx)
                write_mb(rc_, wc, records_[mby * mb_w_ + mbx], type);
        }
        rc_.finish_into(&out);
    }

    if (cfg.deblock)
        deblock_picture(&recon_, binfo_, cfg.qp, cfg.approx);
    recon_.extend_borders();

    if (type != PictureType::kB) {
        for (size_t i = 0; i < mv_grid_.size(); ++i)
            anchor_mvs_[i] = {static_cast<s16>(mv_grid_[i].x >> 2),
                              static_cast<s16>(mv_grid_[i].y >> 2)};
        dpb_.push_back(std::move(recon_));
        const size_t max_dpb =
            static_cast<size_t>(clamp(cfg.refs, 2, 16)) + 1;
        while (dpb_.size() > max_dpb)
            dpb_.pop_front();
    }
    return out;
}

}  // namespace

std::unique_ptr<VideoEncoder>
create_h264_encoder(const CodecConfig &config)
{
    HDVB_CHECK(config.validate().is_ok());
    return std::make_unique<H264Encoder>(config);
}

}  // namespace hdvb
