/**
 * @file
 * In-loop deblocking filter for the H.264-class codec.
 *
 * Boundary strengths follow the standard's rules (intra MB edges
 * strongest, then coded blocks, then motion discontinuities); the filter
 * operations are the standard's normal and strong filters. The
 * alpha/beta thresholds are the standard tables; the clipping table is
 * a monotonic approximation (documented simplification — bitstream
 * compatibility is out of scope, encoder and decoder share this exact
 * code so reconstructions match).
 */
#ifndef HDVB_H264_DEBLOCK_H
#define HDVB_H264_DEBLOCK_H

#include <vector>

#include "common/types.h"
#include "mc/mc.h"
#include "video/frame.h"

namespace hdvb::h264 {

/** Per-4x4-block coding metadata driving boundary strength. */
struct BlockInfo {
    u8 intra = 0;     ///< block belongs to an intra MB
    u8 nonzero = 0;   ///< block has coded coefficients
    s8 ref = -1;      ///< reference index (-1 for intra)
    MotionVector mv;  ///< quarter-sample motion vector
};

/** Picture-sized grid of BlockInfo at 4x4 granularity. */
class BlockInfoGrid
{
  public:
    BlockInfoGrid(int width, int height)
        : w4_(width / 4), h4_(height / 4),
          info_(static_cast<size_t>(w4_) * h4_)
    {
    }

    BlockInfo &
    at(int bx, int by)
    {
        return info_[static_cast<size_t>(by) * w4_ + bx];
    }

    const BlockInfo &
    at(int bx, int by) const
    {
        return info_[static_cast<size_t>(by) * w4_ + bx];
    }

    int width4() const { return w4_; }
    int height4() const { return h4_; }

    void
    clear()
    {
        std::fill(info_.begin(), info_.end(), BlockInfo{});
    }

  private:
    int w4_;
    int h4_;
    std::vector<BlockInfo> info_;
};

/**
 * Filter a reconstructed picture in place. Both the encoder (closed
 * loop) and the decoder call this with identical inputs.
 * @param qp picture quantiser (drives thresholds)
 * @param approx approximation tier (CodecConfig::approx). At >= 2,
 *   edges whose straddling samples are already flat skip the boundary
 *   strength computation and the filter entirely — a shared shortcut,
 *   so encoder and decoder reconstructions still match exactly.
 */
void deblock_picture(Frame *frame, const BlockInfoGrid &grid, int qp,
                     int approx = 0);

}  // namespace hdvb::h264

#endif  // HDVB_H264_DEBLOCK_H
