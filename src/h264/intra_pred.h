/**
 * @file
 * Intra prediction for the H.264-class codec: the Intra16 modes
 * (vertical / horizontal / DC / plane) and an Intra4x4 subset
 * (DC / V / H / diagonal-down-left / diagonal-down-right). Predictions
 * read previously reconstructed samples of the current picture, so the
 * encoder and decoder produce identical predictors.
 */
#ifndef HDVB_H264_INTRA_PRED_H
#define HDVB_H264_INTRA_PRED_H

#include "common/types.h"
#include "h264/h264.h"
#include "video/plane.h"

namespace hdvb::h264 {

/**
 * Predict a 16x16 luma block at (x0, y0) from @p recon into @p dst.
 * Unavailable neighbours fall back as in the standard (DC uses the
 * available side or 128). @p mode must be valid for the position
 * (plane/V need top, H needs left); callers enforce this.
 */
void predict_intra16(const Plane &recon, int x0, int y0, Intra16Mode mode,
                     Pixel *dst, int ds);

/** True if @p mode is usable at this position. */
bool intra16_mode_available(int x0, int y0, Intra16Mode mode);

/**
 * Predict a 4x4 block at (x0, y0). Handles unavailable neighbours by
 * falling back to replication / DC as in the standard's edge rules.
 */
void predict_intra4(const Plane &recon, int x0, int y0, Intra4Mode mode,
                    Pixel *dst, int ds);

/** True if @p mode is usable at this position. */
bool intra4_mode_available(const Plane &recon, int x0, int y0,
                           Intra4Mode mode);

/**
 * Predict an 8x8 chroma block with the DC rule (average of available
 * neighbours) — the chroma prediction of this codec class.
 */
void predict_chroma_dc(const Plane &recon, int x0, int y0, Pixel *dst,
                       int ds);

}  // namespace hdvb::h264

#endif  // HDVB_H264_INTRA_PRED_H
