#include "h264/intra_pred.h"

#include <cstring>

#include "common/check.h"

namespace hdvb::h264 {

bool
intra16_mode_available(int x0, int y0, Intra16Mode mode)
{
    switch (mode) {
      case kI16Vertical: return y0 > 0;
      case kI16Horizontal: return x0 > 0;
      case kI16Dc: return true;
      case kI16Plane: return x0 > 0 && y0 > 0;
    }
    return false;
}

void
predict_intra16(const Plane &recon, int x0, int y0, Intra16Mode mode,
                Pixel *dst, int ds)
{
    switch (mode) {
      case kI16Vertical: {
        const Pixel *top = recon.row(y0 - 1) + x0;
        for (int y = 0; y < 16; ++y)
            std::memcpy(dst + y * ds, top, 16);
        break;
      }
      case kI16Horizontal: {
        for (int y = 0; y < 16; ++y)
            std::memset(dst + y * ds, recon.at(x0 - 1, y0 + y), 16);
        break;
      }
      case kI16Dc: {
        int sum = 0;
        int count = 0;
        if (y0 > 0) {
            const Pixel *top = recon.row(y0 - 1) + x0;
            for (int x = 0; x < 16; ++x)
                sum += top[x];
            count += 16;
        }
        if (x0 > 0) {
            for (int y = 0; y < 16; ++y)
                sum += recon.at(x0 - 1, y0 + y);
            count += 16;
        }
        const int dc = count == 0
                           ? 128
                           : (sum + count / 2) / count;
        for (int y = 0; y < 16; ++y)
            std::memset(dst + y * ds, dc, 16);
        break;
      }
      case kI16Plane: {
        const Pixel *top = recon.row(y0 - 1) + x0;
        int h = 0, v = 0;
        for (int i = 1; i <= 8; ++i) {
            h += i * (top[7 + i] - recon.at(x0 + 7 - i, y0 - 1));
            v += i * (recon.at(x0 - 1, y0 + 7 + i) -
                      recon.at(x0 - 1, y0 + 7 - i));
        }
        const int a = 16 * (recon.at(x0 + 15, y0 - 1) +
                            recon.at(x0 - 1, y0 + 15));
        const int b = (5 * h + 32) >> 6;
        const int c = (5 * v + 32) >> 6;
        for (int y = 0; y < 16; ++y) {
            for (int x = 0; x < 16; ++x) {
                dst[y * ds + x] = clamp_pixel(
                    (a + b * (x - 7) + c * (y - 7) + 16) >> 5);
            }
        }
        break;
      }
    }
}

bool
intra4_mode_available(const Plane &recon, int x0, int y0, Intra4Mode mode)
{
    (void)recon;
    switch (mode) {
      case kI4Dc: return true;
      case kI4Vertical: return y0 > 0;
      case kI4Horizontal: return x0 > 0;
      case kI4DiagDownLeft: return y0 > 0;
      case kI4DiagDownRight: return x0 > 0 && y0 > 0;
      default: return false;
    }
}

void
predict_intra4(const Plane &recon, int x0, int y0, Intra4Mode mode,
               Pixel *dst, int ds)
{
    switch (mode) {
      case kI4Dc: {
        int sum = 0;
        int count = 0;
        if (y0 > 0) {
            const Pixel *top = recon.row(y0 - 1) + x0;
            sum += top[0] + top[1] + top[2] + top[3];
            count += 4;
        }
        if (x0 > 0) {
            for (int y = 0; y < 4; ++y)
                sum += recon.at(x0 - 1, y0 + y);
            count += 4;
        }
        const int dc = count == 0 ? 128 : (sum + count / 2) / count;
        for (int y = 0; y < 4; ++y)
            std::memset(dst + y * ds, dc, 4);
        break;
      }
      case kI4Vertical: {
        const Pixel *top = recon.row(y0 - 1) + x0;
        for (int y = 0; y < 4; ++y)
            std::memcpy(dst + y * ds, top, 4);
        break;
      }
      case kI4Horizontal: {
        for (int y = 0; y < 4; ++y)
            std::memset(dst + y * ds, recon.at(x0 - 1, y0 + y), 4);
        break;
      }
      case kI4DiagDownLeft: {
        // Top row t[0..7]. The top-right quad is usable only when it is
        // certainly reconstructed already: inside the picture AND not
        // the last 4x4 column of a macroblock row interior (raster
        // coding order). Otherwise replicate t[3], as the standard does
        // for unavailable neighbours. The rule is position-only, so the
        // encoder and decoder agree by construction.
        Pixel t[9];
        const Pixel *top = recon.row(y0 - 1) + x0;
        const bool tr_avail = x0 + 8 <= recon.width() &&
                              ((x0 % 16) != 12 || (y0 % 16) == 0);
        const int avail = tr_avail ? 8 : 4;
        for (int i = 0; i < avail; ++i)
            t[i] = top[i];
        for (int i = avail; i < 9; ++i)
            t[i] = t[avail - 1];
        for (int y = 0; y < 4; ++y) {
            for (int x = 0; x < 4; ++x) {
                const int i = x + y;
                dst[y * ds + x] = static_cast<Pixel>(
                    (t[i] + 2 * t[i + 1] + t[i + 2] + 2) >> 2);
            }
        }
        break;
      }
      case kI4DiagDownRight: {
        // Left column l[0..3], corner c, top row t[0..3].
        Pixel l[4], t[4];
        const Pixel c = recon.at(x0 - 1, y0 - 1);
        const Pixel *top = recon.row(y0 - 1) + x0;
        for (int i = 0; i < 4; ++i) {
            l[i] = recon.at(x0 - 1, y0 + i);
            t[i] = top[i];
        }
        for (int y = 0; y < 4; ++y) {
            for (int x = 0; x < 4; ++x) {
                const int d = x - y;
                int v;
                if (d > 0) {
                    v = (d >= 2 ? t[d - 2] : c) + 2 * t[d - 1] +
                        (d < 4 ? t[d] : t[3]);
                } else if (d < 0) {
                    const int e = -d;
                    v = (e >= 2 ? l[e - 2] : c) + 2 * l[e - 1] +
                        (e < 4 ? l[e] : l[3]);
                } else {
                    v = t[0] + 2 * c + l[0];
                }
                dst[y * ds + x] = static_cast<Pixel>((v + 2) >> 2);
            }
        }
        break;
      }
      default:
        HDVB_CHECK(false);
    }
}

void
predict_chroma_dc(const Plane &recon, int x0, int y0, Pixel *dst, int ds)
{
    int sum = 0;
    int count = 0;
    if (y0 > 0) {
        const Pixel *top = recon.row(y0 - 1) + x0;
        for (int x = 0; x < 8; ++x)
            sum += top[x];
        count += 8;
    }
    if (x0 > 0) {
        for (int y = 0; y < 8; ++y)
            sum += recon.at(x0 - 1, y0 + y);
        count += 8;
    }
    const int dc = count == 0 ? 128 : (sum + count / 2) / count;
    for (int y = 0; y < 8; ++y)
        std::memset(dst + y * ds, dc, 8);
}

}  // namespace hdvb::h264
