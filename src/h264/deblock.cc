#include "h264/deblock.h"

#include "common/check.h"

namespace hdvb::h264 {

namespace {

// Standard H.264 alpha/beta threshold tables, indexed by QP 0..51.
const u8 kAlpha[52] = {
    0,  0,  0,  0,  0,  0,  0,  0,  0,  0,  0,  0,  0,  0,  0,  0,
    4,  4,  5,  6,  7,  8,  9,  10, 12, 13, 15, 17, 20, 22, 25, 28,
    32, 36, 40, 45, 50, 56, 63, 71, 80, 90, 101, 113, 127, 144, 162,
    182, 203, 226, 255, 255,
};

const u8 kBeta[52] = {
    0,  0,  0,  0,  0,  0,  0,  0,  0,  0,  0,  0,  0,  0,  0,  0,
    2,  2,  2,  3,  3,  3,  3,  4,  4,  4,  6,  6,  7,  7,  8,  8,
    9,  9,  10, 10, 11, 11, 12, 12, 13, 13, 14, 14, 15, 15, 16, 16,
    17, 17, 18, 18,
};

/** Monotonic approximation of the standard's tc0 clipping table. */
inline int
tc0_value(int qp, int bs)
{
    if (qp < 16)
        return 0;
    const int base = (qp - 12) / 6;
    return base + bs - 1;
}

inline int
iabs(int v)
{
    return v < 0 ? -v : v;
}

/**
 * Filter one line of samples across an edge. p0 = p0p[0] with p1/p2 at
 * -step/-2*step behind it; q0 = q0p[0] with q1/q2 ahead at +step.
 */
inline void
filter_line(Pixel *p0p, Pixel *q0p, int step, int alpha, int beta,
            int bs, int tc0)
{
    const int p0 = p0p[0];
    const int p1 = p0p[-step];
    const int p2 = p0p[-2 * step];
    const int q0 = q0p[0];
    const int q1 = q0p[step];
    const int q2 = q0p[2 * step];

    if (iabs(p0 - q0) >= alpha || iabs(p1 - p0) >= beta ||
        iabs(q1 - q0) >= beta) {
        return;
    }

    if (bs == 4) {
        // Strong filter.
        if (iabs(p0 - q0) < (alpha >> 2) + 2) {
            if (iabs(p2 - p0) < beta) {
                p0p[0] = static_cast<Pixel>(
                    (p2 + 2 * p1 + 2 * p0 + 2 * q0 + q1 + 4) >> 3);
                p0p[-step] = static_cast<Pixel>(
                    (p2 + p1 + p0 + q0 + 2) >> 2);
            } else {
                p0p[0] = static_cast<Pixel>(
                    (2 * p1 + p0 + q1 + 2) >> 2);
            }
            if (iabs(q2 - q0) < beta) {
                q0p[0] = static_cast<Pixel>(
                    (q2 + 2 * q1 + 2 * q0 + 2 * p0 + p1 + 4) >> 3);
                q0p[step] = static_cast<Pixel>(
                    (q2 + q1 + q0 + p0 + 2) >> 2);
            } else {
                q0p[0] = static_cast<Pixel>(
                    (2 * q1 + q0 + p1 + 2) >> 2);
            }
        } else {
            p0p[0] = static_cast<Pixel>((2 * p1 + p0 + q1 + 2) >> 2);
            q0p[0] = static_cast<Pixel>((2 * q1 + q0 + p1 + 2) >> 2);
        }
        return;
    }

    // Normal filter.
    int tc = tc0;
    const bool fp1 = iabs(p2 - p0) < beta;
    const bool fq1 = iabs(q2 - q0) < beta;
    tc += fp1 ? 1 : 0;
    tc += fq1 ? 1 : 0;
    const int delta =
        clamp(((q0 - p0) * 4 + (p1 - q1) + 4) >> 3, -tc, tc);
    p0p[0] = clamp_pixel(p0 + delta);
    q0p[0] = clamp_pixel(q0 - delta);
    if (fp1) {
        const int d = clamp((p2 + ((p0 + q0 + 1) >> 1) - 2 * p1) >> 1,
                            -tc0, tc0);
        p0p[-step] = static_cast<Pixel>(p1 + d);
    }
    if (fq1) {
        const int d = clamp((q2 + ((p0 + q0 + 1) >> 1) - 2 * q1) >> 1,
                            -tc0, tc0);
        q0p[step] = static_cast<Pixel>(q1 + d);
    }
}

/**
 * Fast-path smoothness probe (approx >= 2): true when every line of
 * the edge steps by at most one grey level across the boundary. Such
 * edges are visually seamless already, so the filter is skipped before
 * the boundary strength is even computed. Reads 2 samples per line
 * against filter_line's 6.
 */
inline bool
edge_is_smooth(const Pixel *q0, int line_step, int cross_step, int n)
{
    for (int i = 0; i < n; ++i) {
        const Pixel *q = q0 + i * line_step;
        if (iabs(q[0] - q[-cross_step]) > 1)
            return false;
    }
    return true;
}

/** Boundary strength between two 4x4 blocks (0 = no filtering). */
inline int
boundary_strength(const BlockInfo &p, const BlockInfo &q,
                  bool mb_boundary)
{
    if (p.intra || q.intra)
        return mb_boundary ? 4 : 3;
    if (p.nonzero || q.nonzero)
        return 2;
    if (p.ref != q.ref || iabs(p.mv.x - q.mv.x) >= 4 ||
        iabs(p.mv.y - q.mv.y) >= 4) {
        return 1;
    }
    return 0;
}

}  // namespace

void
deblock_picture(Frame *frame, const BlockInfoGrid &grid, int qp,
                int approx)
{
    const int alpha = kAlpha[clamp(qp, 0, 51)];
    const int beta = kBeta[clamp(qp, 0, 51)];
    if (alpha == 0 || beta == 0)
        return;
    const bool fast = approx >= 2;

    Plane &luma = frame->luma();
    const int w4 = grid.width4();
    const int h4 = grid.height4();
    const int stride = luma.stride();

    // Vertical edges (filter across columns), then horizontal edges.
    for (int by = 0; by < h4; ++by) {
        for (int bx = 1; bx < w4; ++bx) {
            Pixel *base = luma.row(by * 4) + bx * 4;
            if (fast && edge_is_smooth(base, stride, 1, 4))
                continue;
            const BlockInfo &p = grid.at(bx - 1, by);
            const BlockInfo &q = grid.at(bx, by);
            const int bs = boundary_strength(p, q, bx % 4 == 0);
            if (bs == 0)
                continue;
            const int tc0 = tc0_value(qp, bs);
            for (int i = 0; i < 4; ++i) {
                filter_line(base + i * stride - 1, base + i * stride, 1,
                            alpha, beta, bs, tc0);
            }
        }
    }
    for (int by = 1; by < h4; ++by) {
        for (int bx = 0; bx < w4; ++bx) {
            Pixel *base = luma.row(by * 4) + bx * 4;
            if (fast && edge_is_smooth(base, 1, stride, 4))
                continue;
            const BlockInfo &p = grid.at(bx, by - 1);
            const BlockInfo &q = grid.at(bx, by);
            const int bs = boundary_strength(p, q, by % 4 == 0);
            if (bs == 0)
                continue;
            const int tc0 = tc0_value(qp, bs);
            for (int i = 0; i < 4; ++i) {
                filter_line(base + i - stride, base + i, stride, alpha,
                            beta, bs, tc0);
            }
        }
    }

    // Chroma: filter macroblock-boundary edges only, with the same
    // thresholds (chroma QP = luma QP in this codec class).
    for (int comp = 1; comp < 3; ++comp) {
        Plane &plane = frame->plane(comp);
        const int cs = plane.stride();
        const int cw8 = plane.width() / 8;
        const int ch8 = plane.height() / 8;
        for (int by = 0; by < ch8; ++by) {
            for (int bx = 1; bx < cw8; ++bx) {
                Pixel *base = plane.row(by * 8) + bx * 8;
                if (fast && edge_is_smooth(base, cs, 1, 8))
                    continue;
                const BlockInfo &p = grid.at(bx * 4 - 1, by * 4);
                const BlockInfo &q = grid.at(bx * 4, by * 4);
                const int bs = boundary_strength(p, q, true);
                if (bs == 0)
                    continue;
                const int tc0 = tc0_value(qp, bs);
                for (int i = 0; i < 8; ++i) {
                    filter_line(base + i * cs - 1, base + i * cs, 1,
                                alpha, beta, bs == 4 ? 3 : bs, tc0);
                }
            }
        }
        for (int by = 1; by < ch8; ++by) {
            for (int bx = 0; bx < cw8; ++bx) {
                Pixel *base = plane.row(by * 8) + bx * 8;
                if (fast && edge_is_smooth(base, 1, cs, 8))
                    continue;
                const BlockInfo &p = grid.at(bx * 4, by * 4 - 1);
                const BlockInfo &q = grid.at(bx * 4, by * 4);
                const int bs = boundary_strength(p, q, true);
                if (bs == 0)
                    continue;
                const int tc0 = tc0_value(qp, bs);
                for (int i = 0; i < 8; ++i) {
                    filter_line(base + i - cs, base + i, cs, alpha,
                                beta, bs == 4 ? 3 : bs, tc0);
                }
            }
        }
    }
}

}  // namespace hdvb::h264
