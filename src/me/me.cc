#include "me/me.h"

#include <algorithm>

#include "common/check.h"

namespace hdvb {

void
MotionEstimator::mv_bounds(const MeBlock &blk, int *min_x, int *max_x,
                           int *min_y, int *max_y) const
{
    const int range = params_.range;
    *min_x = std::max(-range, -kMeMargin - blk.x0);
    *max_x = std::min(range,
                      blk.ref->width() + kMeMargin - (blk.x0 + blk.w));
    *min_y = std::max(-range, -kMeMargin - blk.y0);
    *max_y = std::min(range,
                      blk.ref->height() + kMeMargin - (blk.y0 + blk.h));
    // Degenerate pictures smaller than the range still get (0,0).
    *max_x = std::max(*max_x, *min_x);
    *max_y = std::max(*max_y, *min_y);
}

int
MotionEstimator::sad_at(const MeBlock &blk, int mx, int my) const
{
    const Dsp &dsp = *params_.dsp;
    const Pixel *cur = blk.cur->row(blk.y0) + blk.x0;
    const int cs = blk.cur->stride();
    const Pixel *ref = blk.ref->row(blk.y0 + my) + blk.x0 + mx;
    const int rs = blk.ref->stride();
    if (blk.w == 16 && blk.h == 16) {
        if (blk.x0 % 16 == 0 && cs % 16 == 0) {
            // The Plane layout makes macroblock rows of the current
            // picture 16-byte aligned; the aligned-load kernel tier
            // depends on it, so assert before dispatching.
            HDVB_DCHECK(reinterpret_cast<uintptr_t>(cur) % 16 == 0);
            return dsp.sad16x16_a(cur, cs, ref, rs);
        }
        return dsp.sad16x16(cur, cs, ref, rs);
    }
    if (blk.w == 8 && blk.h == 8)
        return dsp.sad8x8(cur, cs, ref, rs);
    return dsp.sad_rect(cur, cs, ref, rs, blk.w, blk.h);
}

int
MotionEstimator::sad_at_bounded(const MeBlock &blk, int mx, int my,
                                int bound) const
{
    const Dsp &dsp = *params_.dsp;
    const Pixel *cur = blk.cur->row(blk.y0) + blk.x0;
    const int cs = blk.cur->stride();
    const Pixel *ref = blk.ref->row(blk.y0 + my) + blk.x0 + mx;
    const int rs = blk.ref->stride();
    if (blk.w == 16 && blk.h == 16)
        return dsp.sad16x16_et(cur, cs, ref, rs, bound);
    return dsp.sad_rect_et(cur, cs, ref, rs, blk.w, blk.h, bound);
}

MeResult
MotionEstimator::evaluate(const MeBlock &blk, MotionVector pred_sub,
                          int mx, int my, int best_cost) const
{
    MeResult r;
    r.mv = {static_cast<s16>(mx), static_cast<s16>(my)};
    const MotionVector mv_sub{
        static_cast<s16>(mx << params_.subpel_shift),
        static_cast<s16>(my << params_.subpel_shift)};
    const int rate = mv_rate_cost(mv_sub, pred_sub, params_.lambda16);
    if (params_.approx >= 1 && best_cost != INT32_MAX) {
        // A bail (partial > bound) makes cost = partial + rate >=
        // best_cost, so the caller's cost comparison rejects this
        // candidate exactly as the exact SAD would have — the approx
        // tier changes work done, never the winning vector.
        const int bound = std::max(best_cost - rate - 1, 0);
        r.sad = sad_at_bounded(blk, mx, my, bound);
    } else {
        r.sad = sad_at(blk, mx, my);
    }
    r.cost = r.sad + rate;
    return r;
}

MeResult
MotionEstimator::full_search(const MeBlock &blk,
                             MotionVector pred_sub) const
{
    int min_x, max_x, min_y, max_y;
    mv_bounds(blk, &min_x, &max_x, &min_y, &max_y);
    MeResult best;
    for (int my = min_y; my <= max_y; ++my) {
        for (int mx = min_x; mx <= max_x; ++mx) {
            const MeResult r =
                evaluate(blk, pred_sub, mx, my, best.cost);
            if (r.cost < best.cost)
                best = r;
        }
    }
    return best;
}

void
MotionEstimator::diamond_refine(const MeBlock &blk, MotionVector pred_sub,
                                MeResult *best) const
{
    int min_x, max_x, min_y, max_y;
    mv_bounds(blk, &min_x, &max_x, &min_y, &max_y);
    static const int kDx[4] = {-1, 1, 0, 0};
    static const int kDy[4] = {0, 0, -1, 1};
    bool improved = true;
    // Bound the walk so worst-case work stays proportional to range.
    for (int iter = 0; iter < 2 * params_.range && improved; ++iter) {
        improved = false;
        const MotionVector center = best->mv;
        for (int i = 0; i < 4; ++i) {
            const int mx = center.x + kDx[i];
            const int my = center.y + kDy[i];
            if (mx < min_x || mx > max_x || my < min_y || my > max_y)
                continue;
            const MeResult r =
                evaluate(blk, pred_sub, mx, my, best->cost);
            if (r.cost < best->cost) {
                *best = r;
                improved = true;
            }
        }
    }
}

MeResult
MotionEstimator::epzs(const MeBlock &blk, MotionVector pred_sub,
                      const std::vector<MotionVector> &cand_full) const
{
    int min_x, max_x, min_y, max_y;
    mv_bounds(blk, &min_x, &max_x, &min_y, &max_y);
    auto clamp_mv = [&](int mx, int my) {
        return MotionVector{
            static_cast<s16>(clamp(mx, min_x, max_x)),
            static_cast<s16>(clamp(my, min_y, max_y))};
    };

    // Candidate set: (0,0), the rounded spatial predictor, and the
    // caller's zonal candidates (neighbours, collocated, ...).
    MeResult best = evaluate(blk, pred_sub, 0, 0);
    const MotionVector pred_full =
        clamp_mv(pred_sub.x >> params_.subpel_shift,
                 pred_sub.y >> params_.subpel_shift);
    auto consider = [&](MotionVector mv) {
        if (mv == best.mv)
            return;
        const MeResult r =
            evaluate(blk, pred_sub, mv.x, mv.y, best.cost);
        if (r.cost < best.cost)
            best = r;
    };
    consider(pred_full);
    // EPZS early termination threshold: ~1 grey level per sample at
    // level 0, doubled per approx level — higher levels accept
    // rougher predictors to skip the refinement walk more often.
    const int threshold = exit_threshold(blk);
    for (const MotionVector &c : cand_full) {
        // approx >= 2: stop scanning zonal candidates once one is
        // already under the exit threshold.
        if (params_.approx >= 2 && best.sad < threshold)
            break;
        consider(clamp_mv(c.x, c.y));
    }

    // A predictor already this good will not be beaten by enough to
    // pay for a refinement walk.
    if (best.sad < threshold)
        return best;

    diamond_refine(blk, pred_sub, &best);
    return best;
}

MeResult
MotionEstimator::hex(const MeBlock &blk, MotionVector pred_sub,
                     const std::vector<MotionVector> &cand_full) const
{
    int min_x, max_x, min_y, max_y;
    mv_bounds(blk, &min_x, &max_x, &min_y, &max_y);
    auto clamp_mv = [&](int mx, int my) {
        return MotionVector{
            static_cast<s16>(clamp(mx, min_x, max_x)),
            static_cast<s16>(clamp(my, min_y, max_y))};
    };

    MeResult best = evaluate(blk, pred_sub, 0, 0);
    const MotionVector pred_full =
        clamp_mv(pred_sub.x >> params_.subpel_shift,
                 pred_sub.y >> params_.subpel_shift);
    auto consider = [&](MotionVector mv) {
        const MeResult r =
            evaluate(blk, pred_sub, mv.x, mv.y, best.cost);
        if (r.cost < best.cost)
            best = r;
    };
    if (pred_full != best.mv)
        consider(pred_full);
    const int threshold = exit_threshold(blk);
    for (const MotionVector &c : cand_full) {
        if (params_.approx >= 2 && best.sad < threshold)
            break;
        consider(clamp_mv(c.x, c.y));
    }

    // approx >= 1: a candidate already under threshold skips the
    // hexagon walk and the diamond ending entirely (level 0 keeps the
    // exact search, which has no such exit).
    if (params_.approx >= 1 && best.sad < threshold)
        return best;

    // Large hexagon (radius 2) iteration.
    static const int kHx[6] = {-2, -1, 1, 2, 1, -1};
    static const int kHy[6] = {0, -2, -2, 0, 2, 2};
    bool improved = true;
    for (int iter = 0; iter < 2 * params_.range && improved; ++iter) {
        improved = false;
        const MotionVector center = best.mv;
        for (int i = 0; i < 6; ++i) {
            const int mx = center.x + kHx[i];
            const int my = center.y + kHy[i];
            if (mx < min_x || mx > max_x || my < min_y || my > max_y)
                continue;
            const MeResult r =
                evaluate(blk, pred_sub, mx, my, best.cost);
            if (r.cost < best.cost) {
                best = r;
                improved = true;
            }
        }
    }

    // Small-diamond ending.
    diamond_refine(blk, pred_sub, &best);
    return best;
}

}  // namespace hdvb
