/**
 * @file
 * Block motion estimation.
 *
 * The paper's Table IV fixes the search algorithms: EPZS (Enhanced
 * Predictive Zonal Search) for the MPEG-2/-4 encoders and hexagon-based
 * search (`--me hex`) for the H.264 encoder; we implement both, plus
 * exhaustive full search as the quality baseline for tests and
 * ablations.
 *
 * Full-sample search works on luma SAD plus an Exp-Golomb rate model for
 * the motion-vector difference; sub-sample refinement is generic over a
 * codec-supplied interpolation callback so each codec refines with its
 * own filter (and the H.264-class encoder with SATD, its subme-style
 * metric).
 */
#ifndef HDVB_ME_ME_H
#define HDVB_ME_ME_H

#include <vector>

#include "bitstream/exp_golomb.h"
#include "common/types.h"
#include "mc/mc.h"
#include "simd/dispatch.h"
#include "video/plane.h"

namespace hdvb {

/** Margin (in samples) that motion vectors may reach past the picture
 * edge; leaves kRefBorder - kMeMargin samples for interpolation taps. */
inline constexpr int kMeMargin = 24;

/** A block to estimate: position/size in the current picture. */
struct MeBlock {
    const Plane *cur = nullptr;  ///< current picture luma
    const Plane *ref = nullptr;  ///< reference luma, borders extended
    int x0 = 0;
    int y0 = 0;
    int w = 16;
    int h = 16;
};

/** Search configuration. */
struct MeParams {
    int range = 16;        ///< full-sample search range
    int lambda16 = 32;     ///< rate weight in Q4 (cost += l16*bits>>4)
    int subpel_shift = 1;  ///< log2 sub-samples per sample (1 or 2)
    const Dsp *dsp = nullptr;
    /**
     * Approximation level (CodecConfig::approx). 0 runs the exact
     * search paths unchanged. >= 1 dispatches early-termination SAD
     * in the candidate loops with bound = best_cost - rate - 1, which
     * provably produces the same accept/reject decisions as exact SAD
     * (a bail implies cost >= best_cost, i.e. rejection; an accepted
     * candidate never bailed, so its SAD is exact), and widens the
     * EPZS early-exit threshold by << approx. >= 2 additionally
     * breaks out of the zonal candidate scan once a candidate is
     * under threshold.
     */
    int approx = 0;
};

/** Search outcome; mv is in FULL-sample units, cost includes rate. */
struct MeResult {
    MotionVector mv;
    int cost = INT32_MAX;
    int sad = INT32_MAX;
};

/** Rate-model cost of coding @p mv (sub-pel) against @p pred. */
inline int
mv_rate_cost(MotionVector mv, MotionVector pred, int lambda16)
{
    const int bits = se_bits(mv.x - pred.x) + se_bits(mv.y - pred.y);
    return (lambda16 * bits) >> 4;
}

/**
 * Block motion estimator. Stateless apart from its parameters, and
 * every search method is const, so a single instance may be shared by
 * concurrent callers — the band-parallel encoders run one search per
 * macroblock-row worker against the same estimator.
 */
class MotionEstimator
{
  public:
    explicit MotionEstimator(const MeParams &params) : params_(params) {}

    const MeParams &params() const { return params_; }

    /** Exhaustive search over the clamped +/-range window. */
    MeResult full_search(const MeBlock &blk, MotionVector pred_sub) const;

    /**
     * EPZS-style search: test predictor candidates (@p cand_full, in
     * full-sample units) plus (0,0) and the rounded @p pred_sub, early
     * terminate on a good match, then iterate a small diamond.
     */
    MeResult epzs(const MeBlock &blk, MotionVector pred_sub,
                  const std::vector<MotionVector> &cand_full) const;

    /**
     * Hexagon search: best candidate start, large-hexagon iteration,
     * small-diamond ending.
     */
    MeResult hex(const MeBlock &blk, MotionVector pred_sub,
                 const std::vector<MotionVector> &cand_full) const;

    /** Legal full-sample MV window for @p blk (border safety). */
    void mv_bounds(const MeBlock &blk, int *min_x, int *max_x,
                   int *min_y, int *max_y) const;

    /** Early-exit distortion threshold for @p blk at this approx
     * level: ~1 grey level per sample, doubled per level. */
    int
    exit_threshold(const MeBlock &blk) const
    {
        return (blk.w * blk.h) << params_.approx;
    }

  private:
    int sad_at(const MeBlock &blk, int mx, int my) const;
    int sad_at_bounded(const MeBlock &blk, int mx, int my,
                       int bound) const;
    /** Evaluate candidate (mx, my). When @p best_cost is finite and
     * params_.approx >= 1, uses early-termination SAD with a bound
     * derived so a bail already implies cost >= best_cost — the
     * returned result then loses the comparison exactly as the exact
     * SAD would, and any result that wins carries an exact sad. */
    MeResult evaluate(const MeBlock &blk, MotionVector pred_sub,
                      int mx, int my,
                      int best_cost = INT32_MAX) const;
    /** Iterate a +-1 diamond from @p best until no improvement. */
    void diamond_refine(const MeBlock &blk, MotionVector pred_sub,
                        MeResult *best) const;

    MeParams params_;
};

/**
 * Generic sub-sample refinement around @p start (sub-pel units).
 *
 * @tparam PredictFn void(MotionVector mv_sub, Pixel *dst, int ds)
 * @param steps list of step sizes in sub-pel units to refine with,
 *        e.g. {1} for a half-pel codec, {2, 1} for quarter-pel.
 * @param use_satd refine on SATD instead of SAD (H.264 subme style).
 */
template <typename PredictFn>
MeResult
subpel_refine(const MeBlock &blk, MotionVector start_sub,
              MotionVector pred_sub, const MeParams &params,
              std::initializer_list<int> steps, bool use_satd,
              PredictFn &&predict)
{
    const Dsp &dsp = *params.dsp;
    Pixel scratch[kMaxBlockSize * kMaxBlockSize];
    const int ss = kMaxBlockSize;
    const Pixel *cur = blk.cur->row(blk.y0) + blk.x0;
    const int cs = blk.cur->stride();

    auto distortion = [&](MotionVector mv) {
        predict(mv, scratch, ss);
        return use_satd
                   ? dsp.satd_rect(cur, cs, scratch, ss, blk.w, blk.h)
                   : dsp.sad_rect(cur, cs, scratch, ss, blk.w, blk.h);
    };

    MeResult best;
    best.mv = start_sub;
    best.sad = distortion(start_sub);
    best.cost = best.sad + mv_rate_cost(start_sub, pred_sub,
                                        params.lambda16);

    // The legal sub-pel window: one tap-safe step inside the full-pel
    // bounds used by the integer search.
    for (int step : steps) {
        // Two rounds per step bounds the drift to ~1.5 full samples,
        // keeping interpolation taps inside the reference border
        // (kMeMargin + drift + 3 taps < kRefBorder).
        bool improved = true;
        for (int round = 0; round < 2 && improved; ++round) {
            improved = false;
            static const int kDx[8] = {-1, 1, 0, 0, -1, -1, 1, 1};
            static const int kDy[8] = {0, 0, -1, 1, -1, 1, -1, 1};
            MotionVector center = best.mv;
            for (int i = 0; i < 8; ++i) {
                MotionVector mv{
                    static_cast<s16>(center.x + kDx[i] * step),
                    static_cast<s16>(center.y + kDy[i] * step)};
                const int d = distortion(mv);
                const int cost =
                    d + mv_rate_cost(mv, pred_sub, params.lambda16);
                if (cost < best.cost) {
                    best.cost = cost;
                    best.sad = d;
                    best.mv = mv;
                    improved = true;
                }
            }
        }
    }
    return best;
}

}  // namespace hdvb

#endif  // HDVB_ME_ME_H
