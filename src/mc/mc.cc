#include "mc/mc.h"

#include "common/check.h"

namespace hdvb {

void
mc_halfpel(const Plane &ref, int x0, int y0, MotionVector mv,
           Pixel *dst, int ds, int w, int h, const Dsp &dsp)
{
    const int ix = x0 + (mv.x >> 1);
    const int iy = y0 + (mv.y >> 1);
    const int fx = mv.x & 1;
    const int fy = mv.y & 1;
    const int ss = ref.stride();
    const Pixel *src = ref.row(iy) + ix;
    if (fx == 0 && fy == 0)
        dsp.copy_rect(dst, ds, src, ss, w, h);
    else if (fx == 1 && fy == 0)
        dsp.avg_rect(dst, ds, src, ss, src + 1, ss, w, h);
    else if (fx == 0 && fy == 1)
        dsp.avg_rect(dst, ds, src, ss, src + ss, ss, w, h);
    else
        dsp.avg4_rect(dst, ds, src, ss, w, h);
}

MotionVector
chroma_mv_from_halfpel(MotionVector luma_mv)
{
    return {static_cast<s16>(luma_mv.x / 2),
            static_cast<s16>(luma_mv.y / 2)};
}

void
mc_qpel_bilin(const Plane &ref, int x0, int y0, MotionVector mv,
              Pixel *dst, int ds, int w, int h, const Dsp &dsp)
{
    const int ix = x0 + (mv.x >> 2);
    const int iy = y0 + (mv.y >> 2);
    const int fx = mv.x & 3;
    const int fy = mv.y & 3;
    const int ss = ref.stride();
    const Pixel *src = ref.row(iy) + ix;
    if (fx == 0 && fy == 0)
        dsp.copy_rect(dst, ds, src, ss, w, h);
    else
        dsp.qpel_bilin_rect(dst, ds, src, ss, w, h, fx, fy);
}

MotionVector
chroma_mv_from_qpel(MotionVector luma_mv)
{
    return {static_cast<s16>(luma_mv.x / 2),
            static_cast<s16>(luma_mv.y / 2)};
}

void
mc_qpel_tap(const Plane &ref, int x0, int y0, MotionVector mv,
            Pixel *dst, int ds, int w, int h, const Dsp &dsp)
{
    mc_h264_luma(ref, x0, y0, mv, dst, ds, w, h, dsp);
}

void
mc_h264_luma(const Plane &ref, int x0, int y0, MotionVector mv,
             Pixel *dst, int ds, int w, int h, const Dsp &dsp)
{
    HDVB_DCHECK(w <= kMaxBlockSize && h <= kMaxBlockSize);
    const int ix = x0 + (mv.x >> 2);
    const int iy = y0 + (mv.y >> 2);
    const int fx = mv.x & 3;
    const int fy = mv.y & 3;
    const int ss = ref.stride();
    const Pixel *src = ref.row(iy) + ix;  // integer position G

    if (fx == 0 && fy == 0) {
        dsp.copy_rect(dst, ds, src, ss, w, h);
        return;
    }

    Pixel t0[kMaxBlockSize * kMaxBlockSize];
    Pixel t1[kMaxBlockSize * kMaxBlockSize];
    const int ts = kMaxBlockSize;

    switch (fy * 4 + fx) {
      case 1:  // a = avg(G, b)
        dsp.h264_hpel_h(t0, ts, src, ss, w, h);
        dsp.avg_rect(dst, ds, t0, ts, src, ss, w, h);
        break;
      case 2:  // b
        dsp.h264_hpel_h(dst, ds, src, ss, w, h);
        break;
      case 3:  // c = avg(b, H)
        dsp.h264_hpel_h(t0, ts, src, ss, w, h);
        dsp.avg_rect(dst, ds, t0, ts, src + 1, ss, w, h);
        break;
      case 4:  // d = avg(G, h)
        dsp.h264_hpel_v(t0, ts, src, ss, w, h);
        dsp.avg_rect(dst, ds, t0, ts, src, ss, w, h);
        break;
      case 5:  // e = avg(b, h)
        dsp.h264_hpel_h(t0, ts, src, ss, w, h);
        dsp.h264_hpel_v(t1, ts, src, ss, w, h);
        dsp.avg_rect(dst, ds, t0, ts, t1, ts, w, h);
        break;
      case 6:  // f = avg(b, j)
        dsp.h264_hpel_h(t0, ts, src, ss, w, h);
        dsp.h264_hpel_hv(t1, ts, src, ss, w, h);
        dsp.avg_rect(dst, ds, t0, ts, t1, ts, w, h);
        break;
      case 7:  // g = avg(b, m), m = vertical half at x+1
        dsp.h264_hpel_h(t0, ts, src, ss, w, h);
        dsp.h264_hpel_v(t1, ts, src + 1, ss, w, h);
        dsp.avg_rect(dst, ds, t0, ts, t1, ts, w, h);
        break;
      case 8:  // h
        dsp.h264_hpel_v(dst, ds, src, ss, w, h);
        break;
      case 9:  // i = avg(h, j)
        dsp.h264_hpel_v(t0, ts, src, ss, w, h);
        dsp.h264_hpel_hv(t1, ts, src, ss, w, h);
        dsp.avg_rect(dst, ds, t0, ts, t1, ts, w, h);
        break;
      case 10:  // j
        dsp.h264_hpel_hv(dst, ds, src, ss, w, h);
        break;
      case 11:  // k = avg(j, m)
        dsp.h264_hpel_hv(t0, ts, src, ss, w, h);
        dsp.h264_hpel_v(t1, ts, src + 1, ss, w, h);
        dsp.avg_rect(dst, ds, t0, ts, t1, ts, w, h);
        break;
      case 12:  // n = avg(h, M)
        dsp.h264_hpel_v(t0, ts, src, ss, w, h);
        dsp.avg_rect(dst, ds, t0, ts, src + ss, ss, w, h);
        break;
      case 13:  // p = avg(h, s), s = horizontal half at y+1
        dsp.h264_hpel_v(t0, ts, src, ss, w, h);
        dsp.h264_hpel_h(t1, ts, src + ss, ss, w, h);
        dsp.avg_rect(dst, ds, t0, ts, t1, ts, w, h);
        break;
      case 14:  // q = avg(j, s)
        dsp.h264_hpel_hv(t0, ts, src, ss, w, h);
        dsp.h264_hpel_h(t1, ts, src + ss, ss, w, h);
        dsp.avg_rect(dst, ds, t0, ts, t1, ts, w, h);
        break;
      case 15:  // r = avg(m, s)
        dsp.h264_hpel_v(t0, ts, src + 1, ss, w, h);
        dsp.h264_hpel_h(t1, ts, src + ss, ss, w, h);
        dsp.avg_rect(dst, ds, t0, ts, t1, ts, w, h);
        break;
      default:
        HDVB_CHECK(false);
    }
}

void
mc_h264_chroma(const Plane &ref, int x0, int y0, MotionVector mv,
               Pixel *dst, int ds, int w, int h)
{
    // Luma quarter-sample MV == chroma eighth-sample MV.
    const int ix = x0 + (mv.x >> 3);
    const int iy = y0 + (mv.y >> 3);
    const int fx = mv.x & 7;
    const int fy = mv.y & 7;
    const int ss = ref.stride();
    const Pixel *src = ref.row(iy) + ix;
    const int w00 = (8 - fx) * (8 - fy);
    const int w01 = fx * (8 - fy);
    const int w10 = (8 - fx) * fy;
    const int w11 = fx * fy;
    for (int y = 0; y < h; ++y) {
        for (int x = 0; x < w; ++x) {
            dst[x] = static_cast<Pixel>(
                (w00 * src[x] + w01 * src[x + 1] + w10 * src[x + ss] +
                 w11 * src[x + ss + 1] + 32) >> 6);
        }
        dst += ds;
        src += ss;
    }
}

}  // namespace hdvb
