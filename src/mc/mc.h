/**
 * @file
 * Motion compensation for the three codec generations:
 *
 *  - MPEG-2-class: half-sample bilinear (copy / h-avg / v-avg / 4-avg).
 *  - MPEG-4-class: quarter-sample weighted bilinear (the ASP `qpel`
 *    coding option from the paper's Table IV command line).
 *  - H.264-class: 6-tap half-sample filter plus quarter-sample
 *    averaging (the standard's luma interpolation), and 1/8-sample
 *    bilinear chroma.
 *
 * All functions read from a reference Plane whose borders have been
 * extended (Plane::extend_borders); motion vectors must keep every read
 * inside the border (the motion-estimation layer enforces this).
 *
 * Alignment contract: reference reads are motion-shifted and therefore
 * unaligned by nature — MC kernels use unaligned loads throughout and
 * no aligned variants exist here. What the Plane layout (32-byte row
 * alignment + >= Plane::kRightSlack writable bytes past the right
 * border edge) buys MC is the *overread* guarantee: a SIMD kernel may
 * read a full vector at the tail of any legal block position without
 * leaving the allocation. See README "Memory model".
 */
#ifndef HDVB_MC_MC_H
#define HDVB_MC_MC_H

#include "common/types.h"
#include "simd/dispatch.h"
#include "video/plane.h"

namespace hdvb {

/** A motion vector; units depend on the codec (half- or quarter-pel). */
struct MotionVector {
    s16 x = 0;
    s16 y = 0;

    bool operator==(const MotionVector &o) const
    {
        return x == o.x && y == o.y;
    }
    bool operator!=(const MotionVector &o) const { return !(*this == o); }
};

/** Largest supported prediction block (luma). */
inline constexpr int kMaxBlockSize = 16;

/**
 * MPEG-2-class half-sample luma/chroma prediction of a w x h block whose
 * top-left corner is (x0, y0) in @p ref; @p mv is in half-sample units.
 */
void mc_halfpel(const Plane &ref, int x0, int y0, MotionVector mv,
                Pixel *dst, int ds, int w, int h, const Dsp &dsp);

/** Derive the chroma MV (chroma half-sample units) from a luma
 * half-sample MV, MPEG-style (divide by two toward zero). */
MotionVector chroma_mv_from_halfpel(MotionVector luma_mv);

/**
 * MPEG-4-class quarter-sample bilinear prediction; @p mv is in
 * quarter-sample units.
 */
void mc_qpel_bilin(const Plane &ref, int x0, int y0, MotionVector mv,
                   Pixel *dst, int ds, int w, int h, const Dsp &dsp);

/** Derive the chroma MV (chroma quarter-sample units) from a luma
 * quarter-sample MV (divide by two toward zero). */
MotionVector chroma_mv_from_qpel(MotionVector luma_mv);

/**
 * MPEG-4-ASP-class quarter-sample luma prediction: FIR-filtered
 * half-sample positions (the ASP 8-tap filter, realised with the shared
 * 6-tap kernels) plus averaged quarter positions. Structurally the same
 * interpolation lattice as the H.264 luma filter, which it forwards to.
 */
void mc_qpel_tap(const Plane &ref, int x0, int y0, MotionVector mv,
                 Pixel *dst, int ds, int w, int h, const Dsp &dsp);

/**
 * H.264-class luma prediction with the 6-tap half-sample filter and
 * quarter-sample averaging; @p mv is in quarter-sample units.
 */
void mc_h264_luma(const Plane &ref, int x0, int y0, MotionVector mv,
                  Pixel *dst, int ds, int w, int h, const Dsp &dsp);

/**
 * H.264-class chroma prediction: 1/8-sample bilinear driven directly by
 * the luma quarter-sample MV; (x0, y0) are chroma coordinates and w/h
 * chroma sizes.
 */
void mc_h264_chroma(const Plane &ref, int x0, int y0, MotionVector mv,
                    Pixel *dst, int ds, int w, int h);

}  // namespace hdvb

#endif  // HDVB_MC_MC_H
