/**
 * @file
 * The "HDV1" container: a minimal stream format for persisting encoded
 * HD-VideoBench bitstreams (the role .avi/.h264 files play in the
 * paper's Table IV commands). Layout, all little-endian:
 *
 *   magic "HDV1" | 8-byte codec tag | u32 width | u32 height |
 *   u32 fps_num | u32 fps_den | u32 packet_count |
 *   packet_count x { u32 size | u8 type | s64 poc | s64 coding_index |
 *                    size bytes }
 */
#ifndef HDVB_CONTAINER_CONTAINER_H
#define HDVB_CONTAINER_CONTAINER_H

#include <string>
#include <vector>

#include "codec/codec.h"
#include "common/status.h"
#include "common/types.h"

namespace hdvb {

/** An encoded stream plus the metadata needed to decode it. */
struct EncodedStream {
    std::string codec;  ///< "mpeg2", "mpeg4", "h264"
    int width = 0;
    int height = 0;
    int fps_num = 25;
    int fps_den = 1;
    std::vector<Packet> packets;

    /** Total payload size in bits (bitrate accounting). */
    u64 total_bits() const;
};

/** Serialise @p stream to a byte buffer. */
std::vector<u8> serialize_stream(const EncodedStream &stream);

/** Parse a byte buffer produced by serialize_stream. */
Status parse_stream(const std::vector<u8> &bytes, EncodedStream *out);

/** Write @p stream to @p path. */
Status write_stream_file(const std::string &path,
                         const EncodedStream &stream);

/** Read a stream file written by write_stream_file. */
Status read_stream_file(const std::string &path, EncodedStream *out);

}  // namespace hdvb

#endif  // HDVB_CONTAINER_CONTAINER_H
