#include "container/container.h"

#include <cstdio>
#include <cstring>

namespace hdvb {

namespace {

constexpr char kMagic[4] = {'H', 'D', 'V', '1'};

void
put_u32(std::vector<u8> &out, u32 v)
{
    out.push_back(static_cast<u8>(v));
    out.push_back(static_cast<u8>(v >> 8));
    out.push_back(static_cast<u8>(v >> 16));
    out.push_back(static_cast<u8>(v >> 24));
}

void
put_s64(std::vector<u8> &out, s64 v)
{
    const u64 u = static_cast<u64>(v);
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<u8>(u >> (8 * i)));
}

class Cursor
{
  public:
    Cursor(const std::vector<u8> &bytes) : bytes_(bytes) {}

    bool
    read(void *dst, size_t n)
    {
        if (pos_ + n > bytes_.size())
            return false;
        std::memcpy(dst, bytes_.data() + pos_, n);
        pos_ += n;
        return true;
    }

    bool
    read_u32(u32 *v)
    {
        u8 b[4];
        if (!read(b, 4))
            return false;
        *v = static_cast<u32>(b[0]) | (static_cast<u32>(b[1]) << 8) |
             (static_cast<u32>(b[2]) << 16) |
             (static_cast<u32>(b[3]) << 24);
        return true;
    }

    bool
    read_s64(s64 *v)
    {
        u8 b[8];
        if (!read(b, 8))
            return false;
        u64 u = 0;
        for (int i = 0; i < 8; ++i)
            u |= static_cast<u64>(b[i]) << (8 * i);
        *v = static_cast<s64>(u);
        return true;
    }

    size_t remaining() const { return bytes_.size() - pos_; }

  private:
    const std::vector<u8> &bytes_;
    size_t pos_ = 0;
};

}  // namespace

u64
EncodedStream::total_bits() const
{
    u64 bytes = 0;
    for (const Packet &p : packets)
        bytes += p.data.size();
    return bytes * 8;
}

std::vector<u8>
serialize_stream(const EncodedStream &stream)
{
    std::vector<u8> out;
    out.insert(out.end(), kMagic, kMagic + 4);
    char codec_tag[8] = {' ', ' ', ' ', ' ', ' ', ' ', ' ', ' '};
    std::memcpy(codec_tag, stream.codec.data(),
                std::min<size_t>(8, stream.codec.size()));
    out.insert(out.end(), codec_tag, codec_tag + 8);
    put_u32(out, static_cast<u32>(stream.width));
    put_u32(out, static_cast<u32>(stream.height));
    put_u32(out, static_cast<u32>(stream.fps_num));
    put_u32(out, static_cast<u32>(stream.fps_den));
    put_u32(out, static_cast<u32>(stream.packets.size()));
    for (const Packet &p : stream.packets) {
        put_u32(out, static_cast<u32>(p.data.size()));
        out.push_back(static_cast<u8>(p.type));
        put_s64(out, p.poc);
        put_s64(out, p.coding_index);
        out.insert(out.end(), p.data.begin(), p.data.end());
    }
    return out;
}

Status
parse_stream(const std::vector<u8> &bytes, EncodedStream *out)
{
    Cursor cur(bytes);
    char magic[4];
    if (!cur.read(magic, 4) || std::memcmp(magic, kMagic, 4) != 0)
        return Status::corrupt_stream("missing HDV1 magic");
    char codec_tag[8];
    if (!cur.read(codec_tag, 8))
        return Status::corrupt_stream("truncated header");
    out->codec.assign(codec_tag, codec_tag + 8);
    while (!out->codec.empty() && out->codec.back() == ' ')
        out->codec.pop_back();
    u32 w, h, fn, fd, count;
    if (!cur.read_u32(&w) || !cur.read_u32(&h) || !cur.read_u32(&fn) ||
        !cur.read_u32(&fd) || !cur.read_u32(&count)) {
        return Status::corrupt_stream("truncated header");
    }
    if (w == 0 || h == 0 || w > 16384 || h > 16384 || fn == 0 || fd == 0)
        return Status::corrupt_stream("implausible stream header");
    out->width = static_cast<int>(w);
    out->height = static_cast<int>(h);
    out->fps_num = static_cast<int>(fn);
    out->fps_den = static_cast<int>(fd);
    out->packets.clear();
    out->packets.reserve(count);
    for (u32 i = 0; i < count; ++i) {
        u32 size;
        u8 type;
        Packet p;
        if (!cur.read_u32(&size) || !cur.read(&type, 1) ||
            !cur.read_s64(&p.poc) || !cur.read_s64(&p.coding_index)) {
            return Status::corrupt_stream("truncated packet header");
        }
        if (type > 2)
            return Status::corrupt_stream("bad picture type");
        if (size > cur.remaining())
            return Status::corrupt_stream("truncated packet payload");
        p.type = static_cast<PictureType>(type);
        p.data.resize(size);
        if (size > 0 && !cur.read(p.data.data(), size))
            return Status::corrupt_stream("truncated packet payload");
        out->packets.push_back(std::move(p));
    }
    return Status::ok();
}

Status
write_stream_file(const std::string &path, const EncodedStream &stream)
{
    const std::vector<u8> bytes = serialize_stream(stream);
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (f == nullptr)
        return Status::invalid_argument("cannot create " + path);
    const size_t written = std::fwrite(bytes.data(), 1, bytes.size(), f);
    std::fclose(f);
    if (written != bytes.size())
        return Status::internal("short write to " + path);
    return Status::ok();
}

Status
read_stream_file(const std::string &path, EncodedStream *out)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (f == nullptr)
        return Status::invalid_argument("cannot open " + path);
    std::vector<u8> bytes;
    u8 buf[65536];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        bytes.insert(bytes.end(), buf, buf + n);
    std::fclose(f);
    return parse_stream(bytes, out);
}

}  // namespace hdvb
