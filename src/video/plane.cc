#include "video/plane.h"

#include <algorithm>
#include <cstring>

namespace hdvb {

void
Plane::fill(Pixel value)
{
    for (int y = 0; y < height_; ++y)
        std::memset(row(y), value, static_cast<size_t>(width_));
}

void
Plane::extend_borders()
{
    if (border_ == 0)
        return;
    // Left/right replication for interior rows.
    for (int y = 0; y < height_; ++y) {
        Pixel *r = row(y);
        std::memset(r - border_, r[0], static_cast<size_t>(border_));
        std::memset(r + width_, r[width_ - 1],
                    static_cast<size_t>(border_));
    }
    // Top/bottom replication of whole (already-extended) rows.
    const Pixel *top = row(0) - border_;
    const Pixel *bottom = row(height_ - 1) - border_;
    for (int i = 1; i <= border_; ++i) {
        std::memcpy(row(-i) - border_, top,
                    static_cast<size_t>(stride_));
        std::memcpy(row(height_ - 1 + i) - border_, bottom,
                    static_cast<size_t>(stride_));
    }
}

void
Plane::copy_from(const Plane &src)
{
    HDVB_CHECK(src.width() == width_ && src.height() == height_);
    for (int y = 0; y < height_; ++y)
        std::memcpy(row(y), src.row(y), static_cast<size_t>(width_));
}

}  // namespace hdvb
