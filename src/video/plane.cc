#include "video/plane.h"

#include <algorithm>
#include <cstring>

#include "video/frame_pool.h"

namespace hdvb {

Plane::Plane(int width, int height, int border, FramePool *pool)
    : width_(width), height_(height), border_(border),
      left_pad_(round_up(border, kRowAlign))
{
    HDVB_CHECK(width > 0 && height > 0 && border >= 0);
    // Rows: [left_pad | interior (width) | right border | slack]; the
    // stride rounding keeps every row start kRowAlign-aligned and
    // leaves >= kRightSlack writable bytes past the right border edge.
    stride_ = round_up(left_pad_ + width_ + border_ + kRightSlack,
                       kRowAlign);
    const size_t bytes =
        static_cast<size_t>(stride_) * (height_ + 2 * border_);
    buf_ = pool != nullptr ? pool->acquire(bytes) : AlignedBuffer(bytes);
}

void
Plane::fill(Pixel value)
{
    for (int y = 0; y < height_; ++y)
        std::memset(row(y), value, static_cast<size_t>(width_));
}

void
Plane::extend_borders()
{
    if (border_ == 0)
        return;
    // Left/right replication for interior rows, covering the whole
    // padding (left_pad_ >= border_, and everything from the interior's
    // right edge to the end of the row), not just the border: after
    // this, every byte of the row is a deterministic function of the
    // interior, which keeps recycled (stale) pool buffers invisible.
    const int right = stride_ - left_pad_ - width_;
    for (int y = 0; y < height_; ++y) {
        Pixel *r = row(y);
        std::memset(r - left_pad_, r[0], static_cast<size_t>(left_pad_));
        std::memset(r + width_, r[width_ - 1],
                    static_cast<size_t>(right));
    }
    // Top/bottom replication of whole (already-extended) rows.
    const Pixel *top = row(0) - left_pad_;
    const Pixel *bottom = row(height_ - 1) - left_pad_;
    for (int i = 1; i <= border_; ++i) {
        std::memcpy(row(-i) - left_pad_, top,
                    static_cast<size_t>(stride_));
        std::memcpy(row(height_ - 1 + i) - left_pad_, bottom,
                    static_cast<size_t>(stride_));
    }
}

void
Plane::copy_from(const Plane &src)
{
    HDVB_CHECK(src.width() == width_ && src.height() == height_);
    if (src.border_ == border_ && !empty()) {
        // Identical geometry implies identical layout: one memcpy of
        // the whole allocation (border and padding bytes ride along).
        HDVB_DCHECK(src.stride_ == stride_ &&
                    src.buf_.size() == buf_.size());
        std::memcpy(buf_.data(), src.buf_.data(), buf_.size());
        return;
    }
    for (int y = 0; y < height_; ++y)
        std::memcpy(row(y), src.row(y), static_cast<size_t>(width_));
}

}  // namespace hdvb
