/**
 * @file
 * Recycling pool for frame/plane pixel buffers.
 *
 * Steady-state encoding and decoding construct the same three plane
 * geometries picture after picture (source copies, reconstructions,
 * anchor references); without a pool every picture pays allocator and
 * page-fault cost on the hottest data structure in the benchmark. A
 * FramePool keeps size-keyed free lists of AlignedBuffers: after a
 * short warm-up (one GOP's worth of pictures in flight) every
 * acquisition is a free-list hit and the per-picture heap-allocation
 * count drops to zero — FramePoolStats::buffer_allocs is the counter
 * tests and the sweep report's allocs_per_frame column watch.
 *
 * Lifetime: buffers reference the pool's shared core, so a Frame may
 * outlive the FramePool (codec) that produced it; the core is freed
 * when the pool and the last outstanding buffer are gone. Returns are
 * mutex-protected, so frames may be destroyed on any thread — the
 * band-parallel codecs only ever *acquire* on the codec's own thread,
 * keeping the lock out of the wavefront workers' way.
 *
 * Recycled buffers are NOT re-zeroed. Codecs overwrite every interior
 * sample before reading it back and extend_borders() rewrites the full
 * padding, so pooling is invisible to the bitstream and to decoded
 * pixels (the PoolInvariance round-trip tests pin this).
 */
#ifndef HDVB_VIDEO_FRAME_POOL_H
#define HDVB_VIDEO_FRAME_POOL_H

#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "video/aligned_buffer.h"

namespace hdvb {

/** Counters a FramePool accumulates over its lifetime. */
struct FramePoolStats {
    s64 buffer_allocs = 0;  ///< pool misses: fresh heap allocations
    s64 buffer_reuses = 0;  ///< pool hits: buffers served from a free list
    s64 outstanding = 0;    ///< buffers currently checked out
    s64 high_water = 0;     ///< max simultaneously outstanding buffers
};

namespace detail {

/** Shared pool state; outlives the FramePool while buffers are out. */
class PoolCore
{
  public:
    ~PoolCore();

    /** Free-listed buffer of exactly @p size bytes, or nullptr on a
     * miss. Updates hit/miss/outstanding/high-water counters either
     * way (a miss is followed by the caller's allocation). */
    u8 *take(size_t size);

    /** Return @p ptr (of @p size bytes) to the free list. */
    void give(u8 *ptr, size_t size);

    FramePoolStats stats() const;

  private:
    mutable std::mutex mutex_;
    std::unordered_map<size_t, std::vector<u8 *>> free_;
    FramePoolStats stats_;
};

}  // namespace detail

/** Per-codec-instance buffer recycler. Not copyable. */
class FramePool
{
  public:
    FramePool() : core_(std::make_shared<detail::PoolCore>()) {}

    FramePool(const FramePool &) = delete;
    FramePool &operator=(const FramePool &) = delete;

    /**
     * Buffer of @p size bytes: a recycled one when the free list has a
     * match (contents stale), otherwise a fresh zeroed allocation. The
     * buffer returns itself to this pool on destruction.
     */
    AlignedBuffer acquire(size_t size);

    /** Snapshot of the lifetime counters. */
    FramePoolStats stats() const { return core_->stats(); }

  private:
    std::shared_ptr<detail::PoolCore> core_;
};

}  // namespace hdvb

#endif  // HDVB_VIDEO_FRAME_POOL_H
