/**
 * @file
 * Recycling pool for frame/plane pixel buffers, and the shared arena
 * that lets many codec instances recycle through one free list.
 *
 * Steady-state encoding and decoding construct the same three plane
 * geometries picture after picture (source copies, reconstructions,
 * anchor references); without a pool every picture pays allocator and
 * page-fault cost on the hottest data structure in the benchmark. A
 * FramePool keeps size-keyed free lists of AlignedBuffers: after a
 * short warm-up (one GOP's worth of pictures in flight) every
 * acquisition is a free-list hit and the per-picture heap-allocation
 * count drops to zero — FramePoolStats::buffer_allocs is the counter
 * tests and the sweep report's allocs_per_frame column watch.
 *
 * Arenas: by default each FramePool owns a private core (free lists +
 * counters), which is right for one codec per process. The serve layer
 * runs hundreds of sessions whose codecs would otherwise each pin a
 * warm free list while idle; a FrameArena is a shared core that any
 * number of FramePools adopt(), so an idle session's returned buffers
 * are immediately reusable by every other session of the same
 * geometry. Accounting splits in two: FrameArena::stats() is the
 * arena-wide truth (global bytes outstanding / high water), while each
 * adopting FramePool keeps per-client counters attributing
 * acquisitions and outstanding bytes to *its* codec — the per-session
 * memory ledger the scheduler's reports read.
 *
 * Lifetime: buffers reference the shared core (and their pool's client
 * ledger), so a Frame may outlive the FramePool (codec) that produced
 * it; the core is freed when every pool handle and the last
 * outstanding buffer are gone. Returns are mutex-protected, so frames
 * may be destroyed on any thread — the band-parallel codecs only ever
 * *acquire* on the codec's own thread, keeping the lock out of the
 * wavefront workers' way.
 *
 * Recycled buffers are NOT re-zeroed. Codecs overwrite every interior
 * sample before reading it back and extend_borders() rewrites the full
 * padding, so pooling is invisible to the bitstream and to decoded
 * pixels (the PoolInvariance round-trip tests pin this).
 */
#ifndef HDVB_VIDEO_FRAME_POOL_H
#define HDVB_VIDEO_FRAME_POOL_H

#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "video/aligned_buffer.h"

namespace hdvb {

/** Counters a pool core or pool client accumulates over its lifetime. */
struct FramePoolStats {
    s64 buffer_allocs = 0;  ///< pool misses: fresh heap allocations
    s64 buffer_reuses = 0;  ///< pool hits: buffers served from a free list
    s64 outstanding = 0;    ///< buffers currently checked out
    s64 high_water = 0;     ///< max simultaneously outstanding buffers
    s64 bytes_outstanding = 0;  ///< bytes currently checked out
    s64 bytes_high_water = 0;   ///< max simultaneously outstanding bytes
};

namespace detail {

/** Shared pool state; outlives every handle while buffers are out. */
class PoolCore
{
  public:
    ~PoolCore();

    /** Free-listed buffer of exactly @p size bytes, or nullptr on a
     * miss. Updates hit/miss/outstanding/high-water counters either
     * way (a miss is followed by the caller's allocation). */
    u8 *take(size_t size);

    /** Return @p ptr (of @p size bytes) to the free list. */
    void give(u8 *ptr, size_t size);

    FramePoolStats stats() const;

  private:
    mutable std::mutex mutex_;
    std::unordered_map<size_t, std::vector<u8 *>> free_;
    FramePoolStats stats_;
};

/** One pool client's (one FramePool handle's) share of the arena
 * counters. Outstanding buffers keep it alive so returns from frames
 * that outlive their codec still land in the right ledger. */
class PoolClient
{
  public:
    void on_acquire(size_t size, bool reused);
    void on_return(size_t size);
    FramePoolStats stats() const;

  private:
    mutable std::mutex mutex_;
    FramePoolStats stats_;
};

}  // namespace detail

/**
 * A shared buffer arena: copyable handle to one PoolCore that any
 * number of FramePools may adopt(). Default-constructed arenas are
 * distinct; copies share.
 */
class FrameArena
{
  public:
    FrameArena() : core_(std::make_shared<detail::PoolCore>()) {}

    /** Arena-wide counters summed over every adopted pool. */
    FramePoolStats stats() const { return core_->stats(); }

  private:
    friend class FramePool;
    std::shared_ptr<detail::PoolCore> core_;
};

/** Per-codec-instance buffer recycler. Not copyable. */
class FramePool
{
  public:
    FramePool()
        : core_(std::make_shared<detail::PoolCore>()),
          client_(std::make_shared<detail::PoolClient>())
    {}

    FramePool(const FramePool &) = delete;
    FramePool &operator=(const FramePool &) = delete;

    /**
     * Recycle through @p arena's shared free lists instead of the
     * private core. Must be called before the first acquire() (the
     * per-client ledger cannot re-attribute buffers already out).
     */
    void adopt(const FrameArena &arena);

    /**
     * Buffer of @p size bytes: a recycled one when the free list has a
     * match (contents stale), otherwise a fresh zeroed allocation. The
     * buffer returns itself to this pool's core on destruction.
     */
    AlignedBuffer acquire(size_t size);

    /** This handle's counters: for a private (non-adopted) pool these
     * equal the core's; for an arena client they are the per-session
     * attribution of the shared totals. */
    FramePoolStats stats() const { return client_->stats(); }

  private:
    std::shared_ptr<detail::PoolCore> core_;
    std::shared_ptr<detail::PoolClient> client_;
};

}  // namespace hdvb

#endif  // HDVB_VIDEO_FRAME_POOL_H
