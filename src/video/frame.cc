#include "video/frame.h"

namespace hdvb {

Frame::Frame(int width, int height, int border, FramePool *pool)
    : width_(width), height_(height),
      luma_(width, height, border, pool),
      cb_(width / 2, height / 2, border / 2, pool),
      cr_(width / 2, height / 2, border / 2, pool)
{
    HDVB_CHECK(width % 2 == 0 && height % 2 == 0);
}

Plane &
Frame::plane(int i)
{
    HDVB_DCHECK(i >= 0 && i < 3);
    return i == 0 ? luma_ : (i == 1 ? cb_ : cr_);
}

const Plane &
Frame::plane(int i) const
{
    HDVB_DCHECK(i >= 0 && i < 3);
    return i == 0 ? luma_ : (i == 1 ? cb_ : cr_);
}

void
Frame::extend_borders()
{
    luma_.extend_borders();
    cb_.extend_borders();
    cr_.extend_borders();
}

void
Frame::copy_from(const Frame &src)
{
    HDVB_CHECK(src.width() == width_ && src.height() == height_);
    luma_.copy_from(src.luma());
    cb_.copy_from(src.cb());
    cr_.copy_from(src.cr());
    poc_ = src.poc();
}

}  // namespace hdvb
