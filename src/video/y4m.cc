#include "video/y4m.h"

#include <charconv>
#include <cstring>
#include <string>

namespace hdvb {

namespace {

/** Strict full-token decimal parse for a header field: "W72x" or an
 * empty "W" is a corrupt header, not a prefix (the old atoi reader
 * silently produced 72 and 0). */
Status
parse_header_int(const std::string &tok, int *out)
{
    const char *begin = tok.c_str() + 1;
    const char *end = tok.c_str() + tok.size();
    const auto [ptr, ec] = std::from_chars(begin, end, *out);
    if (ec != std::errc() || ptr != end)
        return Status::corrupt_stream("bad y4m header field \"" + tok +
                                      "\"");
    return Status::ok();
}

Status
read_plane(std::FILE *file, Plane &plane)
{
    for (int y = 0; y < plane.height(); ++y) {
        const size_t want = static_cast<size_t>(plane.width());
        if (std::fread(plane.row(y), 1, want, file) != want)
            return Status::corrupt_stream("truncated y4m frame data");
    }
    return Status::ok();
}

Status
write_plane(std::FILE *file, const Plane &plane)
{
    for (int y = 0; y < plane.height(); ++y) {
        const size_t want = static_cast<size_t>(plane.width());
        if (std::fwrite(plane.row(y), 1, want, file) != want)
            return Status::internal("short write to y4m file");
    }
    return Status::ok();
}

}  // namespace

Y4mReader::~Y4mReader()
{
    if (file_ != nullptr)
        std::fclose(file_);
}

Status
Y4mReader::open(const std::string &path)
{
    file_ = std::fopen(path.c_str(), "rb");
    if (file_ == nullptr)
        return Status::invalid_argument("cannot open " + path);

    std::string header;
    int c;
    while ((c = std::fgetc(file_)) != EOF && c != '\n')
        header.push_back(static_cast<char>(c));
    if (header.rfind("YUV4MPEG2", 0) != 0)
        return Status::corrupt_stream("missing YUV4MPEG2 magic");

    // Space-separated tagged fields: W H F I A C X.
    size_t pos = 0;
    while (pos < header.size()) {
        const size_t space = header.find(' ', pos);
        const std::string tok =
            header.substr(pos, space == std::string::npos
                                   ? std::string::npos : space - pos);
        pos = space == std::string::npos ? header.size() : space + 1;
        if (tok.size() < 2)
            continue;
        switch (tok[0]) {
          case 'W':
            HDVB_RETURN_IF_ERROR(parse_header_int(tok, &width_));
            break;
          case 'H':
            HDVB_RETURN_IF_ERROR(parse_header_int(tok, &height_));
            break;
          case 'F': {
            const size_t colon = tok.find(':');
            if (colon == std::string::npos)
                return Status::corrupt_stream("bad y4m header field \"" +
                                              tok + "\"");
            HDVB_RETURN_IF_ERROR(
                parse_header_int(tok.substr(0, colon), &fps_num_));
            // Reuse the tag-skipping parser: substr keeps one leading
            // char (the colon) in place of the tag letter.
            HDVB_RETURN_IF_ERROR(
                parse_header_int(tok.substr(colon), &fps_den_));
            if (fps_num_ <= 0 || fps_den_ <= 0)
                return Status::corrupt_stream("bad y4m frame rate \"" +
                                              tok + "\"");
            break;
          }
          case 'C':
            if (tok.rfind("C420", 0) != 0)
                return Status::unimplemented(
                    "only C420 y4m streams are supported");
            break;
          default: break;  // I, A, X: ignored
        }
    }
    if (width_ <= 0 || height_ <= 0 || width_ % 2 || height_ % 2)
        return Status::corrupt_stream("bad y4m dimensions");
    return Status::ok();
}

Status
Y4mReader::read_frame(Frame *frame, int border)
{
    HDVB_CHECK(file_ != nullptr);
    char tag[6] = {};
    if (std::fread(tag, 1, 5, file_) != 5)
        return Status::out_of_range("end of y4m stream");
    if (std::memcmp(tag, "FRAME", 5) != 0)
        return Status::corrupt_stream("missing FRAME marker");
    int c;
    while ((c = std::fgetc(file_)) != EOF && c != '\n') {}
    if (c == EOF)
        return Status::corrupt_stream("truncated FRAME header");

    if (frame->width() != width_ || frame->height() != height_)
        *frame = Frame(width_, height_, border);
    HDVB_RETURN_IF_ERROR(read_plane(file_, frame->luma()));
    HDVB_RETURN_IF_ERROR(read_plane(file_, frame->cb()));
    HDVB_RETURN_IF_ERROR(read_plane(file_, frame->cr()));
    frame->set_poc(frames_read_++);
    return Status::ok();
}

Y4mWriter::~Y4mWriter()
{
    if (file_ != nullptr)
        std::fclose(file_);
}

Status
Y4mWriter::open(const std::string &path, int width, int height,
                int fps_num, int fps_den)
{
    if (width <= 0 || height <= 0 || width % 2 || height % 2)
        return Status::invalid_argument("bad y4m dimensions");
    file_ = std::fopen(path.c_str(), "wb");
    if (file_ == nullptr)
        return Status::invalid_argument("cannot create " + path);
    width_ = width;
    height_ = height;
    std::fprintf(file_, "YUV4MPEG2 W%d H%d F%d:%d Ip A1:1 C420mpeg2\n",
                 width, height, fps_num, fps_den);
    return Status::ok();
}

Status
Y4mWriter::write_frame(const Frame &frame)
{
    HDVB_CHECK(file_ != nullptr);
    if (frame.width() != width_ || frame.height() != height_)
        return Status::invalid_argument("frame size mismatch");
    std::fputs("FRAME\n", file_);
    HDVB_RETURN_IF_ERROR(write_plane(file_, frame.luma()));
    HDVB_RETURN_IF_ERROR(write_plane(file_, frame.cb()));
    HDVB_RETURN_IF_ERROR(write_plane(file_, frame.cr()));
    return Status::ok();
}

}  // namespace hdvb
