#include "video/aligned_buffer.h"

#include <cstring>
#include <new>
#include <utility>

#include "video/frame_pool.h"

namespace hdvb {

namespace detail {

u8 *
aligned_alloc_bytes(size_t size)
{
    return static_cast<u8 *>(::operator new(
        size, std::align_val_t{AlignedBuffer::kAlignment}));
}

void
aligned_free_bytes(u8 *ptr)
{
    ::operator delete(ptr, std::align_val_t{AlignedBuffer::kAlignment});
}

}  // namespace detail

AlignedBuffer::AlignedBuffer(size_t size)
{
    if (size == 0)
        return;
    data_ = detail::aligned_alloc_bytes(size);
    size_ = size;
    std::memset(data_, 0, size_);
}

AlignedBuffer::AlignedBuffer(u8 *data, size_t size,
                             std::shared_ptr<detail::PoolCore> core,
                             std::shared_ptr<detail::PoolClient> client)
    : data_(data), size_(size), core_(std::move(core)),
      client_(std::move(client))
{}

AlignedBuffer::~AlignedBuffer()
{
    release();
}

void
AlignedBuffer::release()
{
    if (data_ == nullptr)
        return;
    if (core_ != nullptr)
        core_->give(data_, size_);
    else
        detail::aligned_free_bytes(data_);
    if (client_ != nullptr)
        client_->on_return(size_);
    data_ = nullptr;
    size_ = 0;
    core_.reset();
    client_.reset();
}

AlignedBuffer::AlignedBuffer(AlignedBuffer &&other) noexcept
    : data_(other.data_), size_(other.size_),
      core_(std::move(other.core_)), client_(std::move(other.client_))
{
    other.data_ = nullptr;
    other.size_ = 0;
}

AlignedBuffer &
AlignedBuffer::operator=(AlignedBuffer &&other) noexcept
{
    if (this != &other) {
        release();
        data_ = other.data_;
        size_ = other.size_;
        core_ = std::move(other.core_);
        client_ = std::move(other.client_);
        other.data_ = nullptr;
        other.size_ = 0;
    }
    return *this;
}

AlignedBuffer::AlignedBuffer(const AlignedBuffer &other)
{
    if (other.data_ == nullptr)
        return;
    data_ = detail::aligned_alloc_bytes(other.size_);
    size_ = other.size_;
    std::memcpy(data_, other.data_, size_);
}

AlignedBuffer &
AlignedBuffer::operator=(const AlignedBuffer &other)
{
    if (this != &other) {
        release();
        if (other.data_ != nullptr) {
            data_ = detail::aligned_alloc_bytes(other.size_);
            size_ = other.size_;
            std::memcpy(data_, other.data_, size_);
        }
    }
    return *this;
}

}  // namespace hdvb
