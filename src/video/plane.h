/**
 * @file
 * A single 8-bit sample plane with an optional replicated border.
 *
 * Reference pictures carry a border so that motion compensation and
 * motion estimation can read blocks that extend past the picture edge
 * without per-sample clamping (the unrestricted-MV behaviour all three
 * codec generations rely on).
 *
 * Memory layout (the SIMD alignment contract, see README "Memory
 * model"):
 *
 *   - the allocation base is 64-byte aligned (AlignedBuffer);
 *   - the interior's left edge sits left_pad = round_up(border, 32)
 *     bytes into each row, and the stride is rounded up to a multiple
 *     of 32 — so row(y) is 32-byte aligned for EVERY y, including
 *     border rows, and any x offset that is a multiple of 16 (all
 *     macroblock positions) yields a 16-byte-aligned pointer;
 *   - each row ends with at least kRightSlack writable padding bytes
 *     beyond the right border edge, so kernels may overread a row tail
 *     by up to 32 bytes without leaving the allocation.
 *
 * Padding/overread values never influence codec output; after
 * extend_borders() the full left/right padding (not just the border)
 * holds replicated edge samples, making the padding deterministic for
 * reference pictures.
 */
#ifndef HDVB_VIDEO_PLANE_H
#define HDVB_VIDEO_PLANE_H

#include "common/check.h"
#include "common/types.h"
#include "video/aligned_buffer.h"

namespace hdvb {

class FramePool;

/** Owning 2-D array of Pixel with stride, border and aligned rows. */
class Plane
{
  public:
    /** Row-start alignment guarantee, in bytes (strides are rounded up
     * to this, and the left padding is a multiple of it). */
    static constexpr int kRowAlign = 32;

    /** Minimum writable bytes past the right border edge of each row
     * (the legal SIMD overread window). */
    static constexpr int kRightSlack = 32;

    Plane() = default;

    /** Allocate a @p width x @p height plane with @p border extra
     * samples on every side. Fresh allocations are zero-initialised;
     * when @p pool is non-null the buffer is drawn from it instead
     * (recycled contents are stale — see FramePool). */
    Plane(int width, int height, int border = 0,
          FramePool *pool = nullptr);

    int width() const { return width_; }
    int height() const { return height_; }
    int stride() const { return stride_; }
    int border() const { return border_; }
    /** Bytes from the start of a row to the interior's left edge. */
    int left_pad() const { return left_pad_; }
    bool empty() const { return buf_.empty(); }

    /** Pointer to the first sample of row @p y (0 <= y < height);
     * 32-byte aligned for every legal y. */
    Pixel *
    row(int y)
    {
        HDVB_DCHECK(y >= -border_ && y < height_ + border_);
        return buf_.data() +
               static_cast<size_t>(y + border_) * stride_ + left_pad_;
    }

    const Pixel *
    row(int y) const
    {
        HDVB_DCHECK(y >= -border_ && y < height_ + border_);
        return buf_.data() +
               static_cast<size_t>(y + border_) * stride_ + left_pad_;
    }

    /** Pointer to sample (0,0); samples at negative offsets down to
     * -border are valid border samples. */
    Pixel *origin() { return row(0); }
    const Pixel *origin() const { return row(0); }

    /** Sample accessor; (x, y) may reach border samples. */
    Pixel &
    at(int x, int y)
    {
        HDVB_DCHECK(x >= -border_ && x < width_ + border_);
        return row(y)[x];
    }

    Pixel
    at(int x, int y) const
    {
        HDVB_DCHECK(x >= -border_ && x < width_ + border_);
        return row(y)[x];
    }

    /** Set every interior sample to @p value (border untouched). */
    void fill(Pixel value);

    /** Replicate the edge samples into the border region — and into
     * the full row padding beyond it, so every byte of an extended
     * plane's rows is deterministic. */
    void extend_borders();

    /** Copy interior samples from @p src (same dimensions required;
     * borders may differ). When the layouts match exactly this is one
     * whole-buffer memcpy, which also copies src's border/padding
     * bytes. */
    void copy_from(const Plane &src);

  private:
    int width_ = 0;
    int height_ = 0;
    int border_ = 0;
    int stride_ = 0;
    int left_pad_ = 0;
    AlignedBuffer buf_;
};

}  // namespace hdvb

#endif  // HDVB_VIDEO_PLANE_H
