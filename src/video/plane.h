/**
 * @file
 * A single 8-bit sample plane with an optional replicated border.
 *
 * Reference pictures carry a border so that motion compensation and
 * motion estimation can read blocks that extend past the picture edge
 * without per-sample clamping (the unrestricted-MV behaviour all three
 * codec generations rely on).
 */
#ifndef HDVB_VIDEO_PLANE_H
#define HDVB_VIDEO_PLANE_H

#include <vector>

#include "common/check.h"
#include "common/types.h"

namespace hdvb {

/** Owning 2-D array of Pixel with stride and border. */
class Plane
{
  public:
    Plane() = default;

    /** Allocate a @p width x @p height plane with @p border extra
     * samples on every side, zero-initialised. */
    Plane(int width, int height, int border = 0)
        : width_(width), height_(height), border_(border),
          stride_(width + 2 * border),
          buf_(static_cast<size_t>(stride_) * (height + 2 * border), 0)
    {
        HDVB_CHECK(width > 0 && height > 0 && border >= 0);
    }

    int width() const { return width_; }
    int height() const { return height_; }
    int stride() const { return stride_; }
    int border() const { return border_; }
    bool empty() const { return buf_.empty(); }

    /** Pointer to the first sample of row @p y (0 <= y < height). */
    Pixel *
    row(int y)
    {
        HDVB_DCHECK(y >= -border_ && y < height_ + border_);
        return buf_.data() +
               static_cast<size_t>(y + border_) * stride_ + border_;
    }

    const Pixel *
    row(int y) const
    {
        HDVB_DCHECK(y >= -border_ && y < height_ + border_);
        return buf_.data() +
               static_cast<size_t>(y + border_) * stride_ + border_;
    }

    /** Pointer to sample (0,0); samples at negative offsets down to
     * -border are valid border samples. */
    Pixel *origin() { return row(0); }
    const Pixel *origin() const { return row(0); }

    /** Sample accessor; (x, y) may reach border samples. */
    Pixel &
    at(int x, int y)
    {
        HDVB_DCHECK(x >= -border_ && x < width_ + border_);
        return row(y)[x];
    }

    Pixel
    at(int x, int y) const
    {
        HDVB_DCHECK(x >= -border_ && x < width_ + border_);
        return row(y)[x];
    }

    /** Set every interior sample to @p value (border untouched). */
    void fill(Pixel value);

    /** Replicate the edge samples into the border region. */
    void extend_borders();

    /** Copy interior samples from @p src (same dimensions required;
     * borders may differ). */
    void copy_from(const Plane &src);

  private:
    int width_ = 0;
    int height_ = 0;
    int border_ = 0;
    int stride_ = 0;
    std::vector<Pixel> buf_;
};

}  // namespace hdvb

#endif  // HDVB_VIDEO_PLANE_H
