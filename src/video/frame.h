/**
 * @file
 * YUV 4:2:0 picture: one luma plane plus two half-resolution chroma
 * planes, the sole pixel format of HD-VideoBench (the TU München source
 * material is 4:2:0, Section IV of the paper).
 */
#ifndef HDVB_VIDEO_FRAME_H
#define HDVB_VIDEO_FRAME_H

#include "common/status.h"
#include "common/types.h"
#include "video/plane.h"

namespace hdvb {

/** Default reference-picture border in luma samples. */
inline constexpr int kRefBorder = 32;

/** A YUV 4:2:0 frame. Dimensions must be even. */
class Frame
{
  public:
    Frame() = default;

    /** Allocate a frame; @p border is the luma border (chroma gets
     * half). Even dimensions required. A non-null @p pool recycles the
     * three plane buffers through it (see FramePool). */
    Frame(int width, int height, int border = 0,
          FramePool *pool = nullptr);

    int width() const { return width_; }
    int height() const { return height_; }
    bool empty() const { return luma_.empty(); }

    Plane &luma() { return luma_; }
    const Plane &luma() const { return luma_; }
    Plane &cb() { return cb_; }
    const Plane &cb() const { return cb_; }
    Plane &cr() { return cr_; }
    const Plane &cr() const { return cr_; }

    /** Plane by index: 0 = Y, 1 = Cb, 2 = Cr. */
    Plane &plane(int i);
    const Plane &plane(int i) const;

    /** Display order index (set by codecs / sources). */
    s64 poc() const { return poc_; }
    void set_poc(s64 poc) { poc_ = poc; }

    /** Replicate edges into borders on all three planes. */
    void extend_borders();

    /** Deep copy of the interior samples of @p src (same size). */
    void copy_from(const Frame &src);

  private:
    int width_ = 0;
    int height_ = 0;
    s64 poc_ = 0;
    Plane luma_;
    Plane cb_;
    Plane cr_;
};

}  // namespace hdvb

#endif  // HDVB_VIDEO_FRAME_H
