#include "video/frame_pool.h"

#include <algorithm>
#include <cstring>

namespace hdvb {

namespace detail {

PoolCore::~PoolCore()
{
    // Only free-listed buffers remain: outstanding ones hold a
    // shared_ptr to this core, so this destructor cannot run before
    // they have all come back.
    for (auto &entry : free_)
        for (u8 *ptr : entry.second)
            aligned_free_bytes(ptr);
}

u8 *
PoolCore::take(size_t size)
{
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.outstanding;
    stats_.high_water = std::max(stats_.high_water, stats_.outstanding);
    auto it = free_.find(size);
    if (it != free_.end() && !it->second.empty()) {
        u8 *ptr = it->second.back();
        it->second.pop_back();
        ++stats_.buffer_reuses;
        return ptr;
    }
    ++stats_.buffer_allocs;
    return nullptr;
}

void
PoolCore::give(u8 *ptr, size_t size)
{
    std::lock_guard<std::mutex> lock(mutex_);
    --stats_.outstanding;
    free_[size].push_back(ptr);
}

FramePoolStats
PoolCore::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

}  // namespace detail

AlignedBuffer
FramePool::acquire(size_t size)
{
    if (size == 0)
        return AlignedBuffer();
    u8 *ptr = core_->take(size);
    if (ptr == nullptr) {
        // Fresh allocations are zeroed (matching unpooled
        // construction); recycled ones keep their stale contents —
        // see the header note.
        ptr = detail::aligned_alloc_bytes(size);
        std::memset(ptr, 0, size);
    }
    return AlignedBuffer(ptr, size, core_);
}

}  // namespace hdvb
