#include "video/frame_pool.h"

#include <algorithm>
#include <cstring>

#include "common/check.h"

namespace hdvb {

namespace detail {

PoolCore::~PoolCore()
{
    // Only free-listed buffers remain: outstanding ones hold a
    // shared_ptr to this core, so this destructor cannot run before
    // they have all come back.
    for (auto &entry : free_)
        for (u8 *ptr : entry.second)
            aligned_free_bytes(ptr);
}

u8 *
PoolCore::take(size_t size)
{
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.outstanding;
    stats_.high_water = std::max(stats_.high_water, stats_.outstanding);
    stats_.bytes_outstanding += static_cast<s64>(size);
    stats_.bytes_high_water =
        std::max(stats_.bytes_high_water, stats_.bytes_outstanding);
    auto it = free_.find(size);
    if (it != free_.end() && !it->second.empty()) {
        u8 *ptr = it->second.back();
        it->second.pop_back();
        ++stats_.buffer_reuses;
        return ptr;
    }
    ++stats_.buffer_allocs;
    return nullptr;
}

void
PoolCore::give(u8 *ptr, size_t size)
{
    std::lock_guard<std::mutex> lock(mutex_);
    --stats_.outstanding;
    stats_.bytes_outstanding -= static_cast<s64>(size);
    free_[size].push_back(ptr);
}

FramePoolStats
PoolCore::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

void
PoolClient::on_acquire(size_t size, bool reused)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (reused)
        ++stats_.buffer_reuses;
    else
        ++stats_.buffer_allocs;
    ++stats_.outstanding;
    stats_.high_water = std::max(stats_.high_water, stats_.outstanding);
    stats_.bytes_outstanding += static_cast<s64>(size);
    stats_.bytes_high_water =
        std::max(stats_.bytes_high_water, stats_.bytes_outstanding);
}

void
PoolClient::on_return(size_t size)
{
    std::lock_guard<std::mutex> lock(mutex_);
    --stats_.outstanding;
    stats_.bytes_outstanding -= static_cast<s64>(size);
}

FramePoolStats
PoolClient::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

}  // namespace detail

void
FramePool::adopt(const FrameArena &arena)
{
    // Re-pointing the core with buffers already out would split their
    // returns from this client's ledger; adoption is a construction-
    // time decision.
    HDVB_DCHECK(client_->stats().outstanding == 0);
    core_ = arena.core_;
}

AlignedBuffer
FramePool::acquire(size_t size)
{
    if (size == 0)
        return AlignedBuffer();
    u8 *ptr = core_->take(size);
    const bool reused = ptr != nullptr;
    if (!reused) {
        // Fresh allocations are zeroed (matching unpooled
        // construction); recycled ones keep their stale contents —
        // see the header note.
        ptr = detail::aligned_alloc_bytes(size);
        std::memset(ptr, 0, size);
    }
    client_->on_acquire(size, reused);
    return AlignedBuffer(ptr, size, core_, client_);
}

}  // namespace hdvb
