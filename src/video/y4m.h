/**
 * @file
 * YUV4MPEG2 (.y4m) reader/writer so users with the real TU München
 * sequences (or any raw 4:2:0 material) can feed them to the benchmark
 * in place of the synthetic sources.
 */
#ifndef HDVB_VIDEO_Y4M_H
#define HDVB_VIDEO_Y4M_H

#include <cstdio>
#include <string>

#include "common/status.h"
#include "video/frame.h"

namespace hdvb {

/** Streaming reader for YUV4MPEG2 files (C420 family only). */
class Y4mReader
{
  public:
    Y4mReader() = default;
    ~Y4mReader();
    Y4mReader(const Y4mReader &) = delete;
    Y4mReader &operator=(const Y4mReader &) = delete;

    /** Open @p path and parse the stream header. */
    Status open(const std::string &path);

    int width() const { return width_; }
    int height() const { return height_; }
    int fps_num() const { return fps_num_; }
    int fps_den() const { return fps_den_; }

    /**
     * Read the next frame into @p frame (reallocated as needed, with
     * @p border). Returns kOutOfRange at end of stream.
     */
    Status read_frame(Frame *frame, int border = 0);

  private:
    std::FILE *file_ = nullptr;
    int width_ = 0;
    int height_ = 0;
    int fps_num_ = 25;
    int fps_den_ = 1;
    s64 frames_read_ = 0;
};

/** Streaming writer for YUV4MPEG2 files (C420mpeg2). */
class Y4mWriter
{
  public:
    Y4mWriter() = default;
    ~Y4mWriter();
    Y4mWriter(const Y4mWriter &) = delete;
    Y4mWriter &operator=(const Y4mWriter &) = delete;

    /** Create @p path and write the stream header. */
    Status open(const std::string &path, int width, int height,
                int fps_num = 25, int fps_den = 1);

    /** Append one frame (dimensions must match the header). */
    Status write_frame(const Frame &frame);

  private:
    std::FILE *file_ = nullptr;
    int width_ = 0;
    int height_ = 0;
};

}  // namespace hdvb

#endif  // HDVB_VIDEO_Y4M_H
