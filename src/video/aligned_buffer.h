/**
 * @file
 * 64-byte-aligned raw pixel storage, optionally recycled by a
 * FramePool.
 *
 * Every Plane sits on one AlignedBuffer. The 64-byte base alignment is
 * the strongest any current x86 SIMD tier wants (a full cache line),
 * and together with Plane's 32-byte stride rounding it makes every row
 * start 32-byte aligned — the contract the aligned kernel variants in
 * src/simd rely on.
 *
 * A buffer acquired from a FramePool carries a shared reference to the
 * pool's core and hands its memory back on destruction instead of
 * freeing it, so Frames may outlive the codec (and its pool) that
 * produced them: the core stays alive until the last outstanding
 * buffer has returned.
 */
#ifndef HDVB_VIDEO_ALIGNED_BUFFER_H
#define HDVB_VIDEO_ALIGNED_BUFFER_H

#include <cstddef>
#include <memory>

#include "common/types.h"

namespace hdvb {

namespace detail {
class PoolCore;
class PoolClient;
}  // namespace detail

/** Move-only-in-spirit aligned byte buffer; copying deep-copies into a
 * fresh unpooled allocation (Plane and Frame stay value types). */
class AlignedBuffer
{
  public:
    /** Base alignment of every allocation, in bytes. */
    static constexpr size_t kAlignment = 64;

    AlignedBuffer() = default;

    /** Fresh zero-initialised allocation of @p size bytes. */
    explicit AlignedBuffer(size_t size);

    ~AlignedBuffer();

    AlignedBuffer(AlignedBuffer &&other) noexcept;
    AlignedBuffer &operator=(AlignedBuffer &&other) noexcept;

    /** Deep copy: same bytes, fresh unpooled allocation. */
    AlignedBuffer(const AlignedBuffer &other);
    AlignedBuffer &operator=(const AlignedBuffer &other);

    u8 *data() { return data_; }
    const u8 *data() const { return data_; }
    size_t size() const { return size_; }
    bool empty() const { return data_ == nullptr; }

    /** True when destruction returns the memory to a pool. */
    bool pooled() const { return core_ != nullptr; }

  private:
    friend class FramePool;

    /** Pool-owned construction (FramePool::acquire). @p client is the
     * acquiring handle's ledger, debited when the buffer returns. */
    AlignedBuffer(u8 *data, size_t size,
                  std::shared_ptr<detail::PoolCore> core,
                  std::shared_ptr<detail::PoolClient> client);

    void release();

    u8 *data_ = nullptr;
    size_t size_ = 0;
    std::shared_ptr<detail::PoolCore> core_;
    std::shared_ptr<detail::PoolClient> client_;
};

namespace detail {
/** 64-byte-aligned allocation helpers shared with the pool core. */
u8 *aligned_alloc_bytes(size_t size);
void aligned_free_bytes(u8 *ptr);
}  // namespace detail

}  // namespace hdvb

#endif  // HDVB_VIDEO_ALIGNED_BUFFER_H
