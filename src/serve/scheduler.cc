#include "serve/scheduler.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "serve/scheduler_core.h"

namespace hdvb {

namespace detail {

u64
SchedulerCore::stride(SessionClass cls) const
{
    int weight = opts.class_weights[static_cast<int>(cls)];
    if (weight < 1)
        weight = 1;
    return kStrideScale / static_cast<u64>(weight);
}

Status
SchedulerCore::admit(CodecSession *session)
{
    const size_t estimate =
        session_memory_estimate(session->config_.codec_config);
    std::lock_guard<std::mutex> lock(mu);
    if (stopping.load(std::memory_order_relaxed)) {
        ++sessions_rejected;
        return Status::resource_exhausted(
            "scheduler stopped; rejecting session " + session->name());
    }
    if (opts.max_sessions > 0 && sessions_open >= opts.max_sessions) {
        ++sessions_rejected;
        return Status::resource_exhausted(
            "session budget exhausted (" +
            std::to_string(opts.max_sessions) + " open); rejecting " +
            session->name());
    }
    if (opts.memory_budget_bytes > 0 &&
        estimated_bytes + estimate > opts.memory_budget_bytes) {
        ++sessions_rejected;
        return Status::resource_exhausted(
            "memory budget exhausted (" + std::to_string(estimated_bytes) +
            " + " + std::to_string(estimate) + " > " +
            std::to_string(opts.memory_budget_bytes) +
            " bytes); rejecting " + session->name());
    }
    ++sessions_open;
    ++sessions_admitted;
    estimated_bytes += estimate;
    session->session_id_ = next_session_id++;
    session->pass_ = global_pass;
    return Status::ok();
}

void
SchedulerCore::release_admission(CodecSession *session)
{
    const size_t estimate =
        session_memory_estimate(session->config_.codec_config);
    std::lock_guard<std::mutex> lock(mu);
    if (session->admission_released_)
        return;
    session->admission_released_ = true;
    --sessions_open;
    HDVB_DCHECK(sessions_open >= 0);
    HDVB_DCHECK(estimated_bytes >= estimate);
    estimated_bytes -= estimate;
}

void
SchedulerCore::make_runnable(std::shared_ptr<CodecSession> session)
{
    std::unique_lock<std::mutex> lock(mu);
    if (session->run_state_ != CodecSession::RunState::kIdle)
        return;  // already queued, or the running worker will re-queue
    if (stopping.load(std::memory_order_relaxed)) {
        run_stopped_locked(lock, *session);
        return;
    }
    {
        // Lock order mu -> session mu_ (never the reverse).
        std::lock_guard<std::mutex> slock(session->mu_);
        if (session->inputs_.empty())
            return;
    }
    session->run_state_ = CodecSession::RunState::kQueued;
    // A session that idled while others ran would otherwise carry an
    // ancient pass and monopolise the workers until it caught up.
    session->pass_ = std::max(session->pass_, global_pass);
    runnable.push_back(std::move(session));
    const auto later = [](const std::shared_ptr<CodecSession> &a,
                          const std::shared_ptr<CodecSession> &b) {
        return a->pass_ != b->pass_ ? a->pass_ > b->pass_
                                    : a->session_id_ > b->session_id_;
    };
    std::push_heap(runnable.begin(), runnable.end(), later);
    if (dispatchers < pool.worker_count()) {
        ++dispatchers;
        // Raw `this` on purpose: a task owning the core could drop the
        // last reference on a pool worker, and ~SchedulerCore would
        // join the pool from inside it. Lifetime is safe without the
        // reference: ~SessionScheduler holds a core reference until
        // dispatchers reaches 0, and no dispatcher is spawned once
        // stopping is set.
        pool.submit([this](int) { dispatcher_main(); });
    }
}

void
SchedulerCore::run_stopped_locked(std::unique_lock<std::mutex> &lock,
                                  CodecSession &session)
{
    // After shutdown no dispatcher will ever run again; the session
    // must stay drainable, so its close() thread does the work.
    // run_state_ (under mu) keeps the one-worker-per-session rule.
    for (;;) {
        std::vector<CodecSession::Input> batch;
        {
            std::lock_guard<std::mutex> slock(session.mu_);
            while (!session.inputs_.empty()) {
                batch.push_back(std::move(session.inputs_.front()));
                session.inputs_.pop_front();
            }
            session.inflight_ += static_cast<int>(batch.size());
            session.counters_.queued = 0;
        }
        if (batch.empty())
            return;
        session.run_state_ = CodecSession::RunState::kRunning;
        const size_t count = batch.size();
        lock.unlock();
        session.process_batch(std::move(batch), &completion_seq);
        lock.lock();
        frames_dispatched += static_cast<s64>(count);
        session.run_state_ = CodecSession::RunState::kIdle;
        // Loop: a submit that raced the stop may have queued more.
    }
}

void
SchedulerCore::dispatcher_main()
{
    const auto later = [](const std::shared_ptr<CodecSession> &a,
                          const std::shared_ptr<CodecSession> &b) {
        return a->pass_ != b->pass_ ? a->pass_ > b->pass_
                                    : a->session_id_ > b->session_id_;
    };
    std::unique_lock<std::mutex> lock(mu);
    while (!runnable.empty()) {
        std::pop_heap(runnable.begin(), runnable.end(), later);
        std::shared_ptr<CodecSession> session = std::move(runnable.back());
        runnable.pop_back();
        session->run_state_ = CodecSession::RunState::kRunning;
        global_pass = std::max(global_pass, session->pass_);

        // Take one FIFO slice of the session's queue.
        std::vector<CodecSession::Input> batch;
        {
            std::lock_guard<std::mutex> slock(session->mu_);
            const size_t want = static_cast<size_t>(
                std::max(opts.batch_frames, 1));
            while (batch.size() < want && !session->inputs_.empty()) {
                batch.push_back(std::move(session->inputs_.front()));
                session->inputs_.pop_front();
            }
            session->inflight_ += static_cast<int>(batch.size());
            session->counters_.queued =
                static_cast<s64>(session->inputs_.size());
        }

        if (!batch.empty()) {
            const size_t count = batch.size();
            lock.unlock();
            session->process_batch(std::move(batch), &completion_seq);
            lock.lock();
            frames_dispatched += static_cast<s64>(count);
            session->pass_ += stride(session->priority()) * count;
        }

        // Re-queue or idle. The check runs under both locks, and every
        // submit calls make_runnable after enqueueing, so an input
        // enqueued at any interleaving is seen either here or there.
        bool more;
        {
            std::lock_guard<std::mutex> slock(session->mu_);
            more = !session->inputs_.empty();
        }
        if (more) {
            session->run_state_ = CodecSession::RunState::kQueued;
            runnable.push_back(std::move(session));
            std::push_heap(runnable.begin(), runnable.end(), later);
        } else {
            session->run_state_ = CodecSession::RunState::kIdle;
            // Drop the reference outside mu: if it is the last one,
            // ~CodecSession runs release_admission, which locks mu —
            // releasing in place would self-deadlock this dispatcher.
            lock.unlock();
            session.reset();
            lock.lock();
        }
    }
    --dispatchers;
    idle_cv.notify_all();
}

}  // namespace detail

SessionScheduler::SessionScheduler(SchedulerOptions options)
{
    const int workers =
        options.workers > 0 ? options.workers : default_job_count();
    core_ = std::make_shared<detail::SchedulerCore>(options, workers);
}

SessionScheduler::~SessionScheduler()
{
    core_->stopping.store(true, std::memory_order_relaxed);
    std::unique_lock<std::mutex> lock(core_->mu);
    core_->idle_cv.wait(lock, [this] {
        return core_->runnable.empty() && core_->dispatchers == 0;
    });
}

StatusOr<std::shared_ptr<CodecSession>>
SessionScheduler::open_encode(std::unique_ptr<VideoEncoder> encoder,
                              SessionConfig config)
{
    if (encoder == nullptr)
        return Status::invalid_argument("open_encode: null encoder for " +
                                        config.name);
    return open(std::move(encoder), nullptr, std::move(config));
}

StatusOr<std::shared_ptr<CodecSession>>
SessionScheduler::open_decode(std::unique_ptr<VideoDecoder> decoder,
                              SessionConfig config)
{
    if (decoder == nullptr)
        return Status::invalid_argument("open_decode: null decoder for " +
                                        config.name);
    return open(nullptr, std::move(decoder), std::move(config));
}

StatusOr<std::shared_ptr<CodecSession>>
SessionScheduler::open(std::unique_ptr<VideoEncoder> encoder,
                       std::unique_ptr<VideoDecoder> decoder,
                       SessionConfig config)
{
    Codec *codec = encoder != nullptr
                       ? static_cast<Codec *>(encoder.get())
                       : static_cast<Codec *>(decoder.get());
    const bool pooled = config.codec_config.frame_pool;
    std::shared_ptr<CodecSession> session(
        new CodecSession(std::move(encoder), std::move(decoder),
                         std::move(config), core_));
    const Status admitted = core_->admit(session.get());
    if (!admitted.is_ok()) {
        // Never admitted: the destructor must not refund the budgets.
        session->admission_released_ = true;
        return admitted;
    }
    if (pooled)
        codec->use_arena(core_->arena);
    return session;
}

const FrameArena &
SessionScheduler::arena() const
{
    return core_->arena;
}

int
SessionScheduler::workers() const
{
    return core_->pool.worker_count();
}

SchedulerStats
SessionScheduler::stats() const
{
    SchedulerStats stats;
    stats.arena = core_->arena.stats();
    std::lock_guard<std::mutex> lock(core_->mu);
    stats.sessions_open = core_->sessions_open;
    stats.sessions_admitted = core_->sessions_admitted;
    stats.sessions_rejected = core_->sessions_rejected;
    stats.frames_dispatched = core_->frames_dispatched;
    stats.estimated_bytes = core_->estimated_bytes;
    return stats;
}

}  // namespace hdvb
