#include "serve/scheduler.h"

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <utility>

#include "common/check.h"
#include "serve/scheduler_core.h"

namespace hdvb {

namespace detail {

u64
SchedulerCore::stride(SessionClass cls) const
{
    int weight = opts.class_weights[static_cast<int>(cls)];
    if (weight < 1)
        weight = 1;
    return kStrideScale / static_cast<u64>(weight);
}

Status
SchedulerCore::admit(CodecSession *session)
{
    const size_t estimate =
        session_memory_estimate(session->config_.codec_config);
    std::lock_guard<std::mutex> lock(mu);
    if (stopping.load(std::memory_order_relaxed)) {
        ++sessions_rejected;
        return Status::resource_exhausted(
            "scheduler stopped; rejecting session " + session->name());
    }
    if (shed_level.load(std::memory_order_relaxed) > 0) {
        // Overload is transient: unlike the hard budgets below, the
        // caller should retry once the backlog drains.
        ++admissions_shed;
        return Status::unavailable(
            "scheduler overloaded (shed level " +
            std::to_string(shed_level.load(std::memory_order_relaxed)) +
            ", backlog " +
            std::to_string(backlog.load(std::memory_order_relaxed)) +
            "); retry session " + session->name() + " later");
    }
    if (opts.max_sessions > 0 && sessions_open >= opts.max_sessions) {
        ++sessions_rejected;
        return Status::resource_exhausted(
            "session budget exhausted (" +
            std::to_string(opts.max_sessions) + " open); rejecting " +
            session->name());
    }
    if (opts.memory_budget_bytes > 0 &&
        estimated_bytes + estimate > opts.memory_budget_bytes) {
        ++sessions_rejected;
        return Status::resource_exhausted(
            "memory budget exhausted (" + std::to_string(estimated_bytes) +
            " + " + std::to_string(estimate) + " > " +
            std::to_string(opts.memory_budget_bytes) +
            " bytes); rejecting " + session->name());
    }
    ++sessions_open;
    ++sessions_admitted;
    estimated_bytes += estimate;
    session->session_id_ = next_session_id++;
    session->pass_ = global_pass;
    return Status::ok();
}

void
SchedulerCore::release_admission(CodecSession *session)
{
    const size_t estimate =
        session_memory_estimate(session->config_.codec_config);
    std::lock_guard<std::mutex> lock(mu);
    if (session->admission_released_)
        return;
    session->admission_released_ = true;
    --sessions_open;
    HDVB_DCHECK(sessions_open >= 0);
    HDVB_DCHECK(estimated_bytes >= estimate);
    estimated_bytes -= estimate;
}

Status
SchedulerCore::check_shed(SessionClass cls)
{
    const int level = shed_level.load(std::memory_order_relaxed);
    if (level <= 0)
        return Status::ok();
    // Reverse priority order: thumbnail is shed at level 1, vod joins
    // at 2, live only at 3 — the cheapest traffic degrades first.
    int shed_at;
    switch (cls) {
    case SessionClass::kThumbnail:
        shed_at = 1;
        break;
    case SessionClass::kVod:
        shed_at = 2;
        break;
    default:
        shed_at = 3;
        break;
    }
    if (level < shed_at)
        return Status::ok();
    submits_shed[static_cast<int>(cls)].fetch_add(
        1, std::memory_order_relaxed);
    return Status::unavailable(
        std::string("overload: shedding ") + session_class_name(cls) +
        " traffic (backlog " +
        std::to_string(backlog.load(std::memory_order_relaxed)) +
        "); retry later");
}

void
SchedulerCore::note_enqueued(s64 n)
{
    backlog.fetch_add(n, std::memory_order_relaxed);
}

void
SchedulerCore::note_batch_done(s64 n,
                               const std::vector<double> &ok_latencies)
{
    backlog.fetch_sub(n, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(mu);
    const size_t window = static_cast<size_t>(
        std::max(opts.shed_latency_window, 1));
    for (double latency : ok_latencies) {
        if (recent_latency.size() < window) {
            recent_latency.push_back(latency);
        } else {
            recent_latency[latency_next] = latency;
            latency_next = (latency_next + 1) % window;
        }
    }
    recompute_shed_locked();
}

void
SchedulerCore::note_session_failed(CodecSession *session, s64 drained,
                                   bool newly_failed)
{
    // The refund is the containment guarantee: a failed session stops
    // holding budget *now*, not when someone remembers to close() it.
    release_admission(session);
    backlog.fetch_sub(drained, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(mu);
    if (newly_failed)
        ++sessions_failed;
    recompute_shed_locked();
}

double
SchedulerCore::latency_p99_locked() const
{
    if (recent_latency.empty())
        return 0.0;
    std::vector<double> sorted = recent_latency;
    const size_t idx = sorted.size() * 99 / 100;
    std::nth_element(sorted.begin(),
                     sorted.begin() + static_cast<ptrdiff_t>(idx),
                     sorted.end());
    return sorted[idx];
}

void
SchedulerCore::recompute_shed_locked()
{
    const s64 depth = opts.shed_queue_depth;
    if (depth <= 0 && opts.shed_p99_seconds <= 0)
        return;  // detector disabled
    const s64 pending = backlog.load(std::memory_order_relaxed);
    int want = 0;
    if (depth > 0) {
        if (pending >= 3 * depth)
            want = 3;
        else if (pending >= 2 * depth)
            want = 2;
        else if (pending >= depth)
            want = 1;
    }
    // The latency signal only means overload while work is actually
    // pending; a stale window after traffic stops must not pin the
    // scheduler in a shed state forever.
    const bool p99_pressure = pending > 0 && opts.shed_p99_seconds > 0 &&
                              latency_p99_locked() > opts.shed_p99_seconds;
    if (p99_pressure)
        want = std::max(want, 1);

    const int current = shed_level.load(std::memory_order_relaxed);
    if (want > current) {
        if (current == 0)
            shed_started_at = Deadline::Clock::now();
        shed_level.store(want, std::memory_order_relaxed);
    } else if (want < current) {
        // Hysteresis: only step down once the backlog has drained
        // well below the level that triggered us.
        const double clear_below = static_cast<double>(depth) * current *
                                   opts.shed_recover_fraction;
        if ((depth <= 0 || static_cast<double>(pending) <= clear_below) &&
            !p99_pressure) {
            shed_level.store(want, std::memory_order_relaxed);
            if (want == 0) {
                ++shed_episodes;
                shed_seconds_total +=
                    std::chrono::duration<double>(Deadline::Clock::now() -
                                                  shed_started_at)
                        .count();
            }
        }
    }
}

void
SchedulerCore::watch(std::shared_ptr<CodecSession> session)
{
    std::lock_guard<std::mutex> lock(mu);
    if (watchdog_stop)
        return;  // facade already torn down; nothing will stall-check
    const double timeout = session->config_.stall_timeout_seconds;
    watchdog_min_timeout = watchdog_min_timeout > 0
                               ? std::min(watchdog_min_timeout, timeout)
                               : timeout;
    watched.push_back(session);
    if (!watchdog.joinable())
        watchdog = std::thread([this] { watchdog_main(); });
    watchdog_cv.notify_all();
}

void
SchedulerCore::watchdog_main()
{
    std::unique_lock<std::mutex> lock(mu);
    while (!watchdog_stop) {
        // Poll at a quarter of the tightest stall budget so a stall is
        // caught within ~1.25x its timeout, bounded for sanity.
        const double period = std::min(
            std::max(watchdog_min_timeout / 4, 0.001), 0.25);
        watchdog_cv.wait_for(lock,
                             std::chrono::duration<double>(period));
        if (watchdog_stop)
            break;
        std::vector<std::shared_ptr<CodecSession>> live;
        live.reserve(watched.size());
        size_t kept = 0;
        for (size_t i = 0; i < watched.size(); ++i) {
            std::shared_ptr<CodecSession> session = watched[i].lock();
            if (session == nullptr)
                continue;  // session died; drop the slot
            live.push_back(std::move(session));
            if (kept != i)
                watched[kept] = std::move(watched[i]);
            ++kept;
        }
        watched.resize(kept);
        // Overload episodes must end even when no batch completes to
        // trigger a recompute (e.g. everything was shed).
        recompute_shed_locked();
        lock.unlock();
        const auto now = Deadline::Clock::now();
        for (const std::shared_ptr<CodecSession> &session : live)
            session->watchdog_tick(now);
        // Drop the references outside mu: the last one runs
        // ~CodecSession, which locks mu via release_admission.
        live.clear();
        lock.lock();
    }
}

void
SchedulerCore::stop_watchdog()
{
    std::thread thread;
    {
        std::lock_guard<std::mutex> lock(mu);
        watchdog_stop = true;
        watchdog_cv.notify_all();
        thread = std::move(watchdog);
    }
    if (thread.joinable())
        thread.join();
}

void
SchedulerCore::make_runnable(std::shared_ptr<CodecSession> session)
{
    std::unique_lock<std::mutex> lock(mu);
    // Every enqueue funnels through here, so this is where backlog
    // growth gets a chance to raise the shed level promptly.
    recompute_shed_locked();
    if (session->run_state_ != CodecSession::RunState::kIdle)
        return;  // already queued, or the running worker will re-queue
    if (stopping.load(std::memory_order_relaxed)) {
        run_stopped_locked(lock, *session);
        return;
    }
    {
        // Lock order mu -> session mu_ (never the reverse).
        std::lock_guard<std::mutex> slock(session->mu_);
        if (session->inputs_.empty())
            return;
    }
    session->run_state_ = CodecSession::RunState::kQueued;
    // A session that idled while others ran would otherwise carry an
    // ancient pass and monopolise the workers until it caught up.
    session->pass_ = std::max(session->pass_, global_pass);
    runnable.push_back(std::move(session));
    const auto later = [](const std::shared_ptr<CodecSession> &a,
                          const std::shared_ptr<CodecSession> &b) {
        return a->pass_ != b->pass_ ? a->pass_ > b->pass_
                                    : a->session_id_ > b->session_id_;
    };
    std::push_heap(runnable.begin(), runnable.end(), later);
    if (dispatchers < pool.worker_count()) {
        ++dispatchers;
        // Raw `this` on purpose: a task owning the core could drop the
        // last reference on a pool worker, and ~SchedulerCore would
        // join the pool from inside it. Lifetime is safe without the
        // reference: ~SessionScheduler holds a core reference until
        // dispatchers reaches 0, and no dispatcher is spawned once
        // stopping is set.
        pool.submit([this](int) { dispatcher_main(); });
    }
}

void
SchedulerCore::run_stopped_locked(std::unique_lock<std::mutex> &lock,
                                  CodecSession &session)
{
    // After shutdown no dispatcher will ever run again; the session
    // must stay drainable, so its close() thread does the work.
    // run_state_ (under mu) keeps the one-worker-per-session rule.
    for (;;) {
        std::vector<CodecSession::Input> batch;
        {
            std::lock_guard<std::mutex> slock(session.mu_);
            while (!session.inputs_.empty()) {
                batch.push_back(std::move(session.inputs_.front()));
                session.inputs_.pop_front();
            }
            session.inflight_ += static_cast<int>(batch.size());
            session.counters_.queued = 0;
        }
        if (batch.empty())
            return;
        session.run_state_ = CodecSession::RunState::kRunning;
        const size_t count = batch.size();
        lock.unlock();
        session.process_batch(std::move(batch), &completion_seq);
        lock.lock();
        frames_dispatched += static_cast<s64>(count);
        session.run_state_ = CodecSession::RunState::kIdle;
        // Loop: a submit that raced the stop may have queued more.
    }
}

void
SchedulerCore::dispatcher_main()
{
    const auto later = [](const std::shared_ptr<CodecSession> &a,
                          const std::shared_ptr<CodecSession> &b) {
        return a->pass_ != b->pass_ ? a->pass_ > b->pass_
                                    : a->session_id_ > b->session_id_;
    };
    std::unique_lock<std::mutex> lock(mu);
    while (!runnable.empty()) {
        std::pop_heap(runnable.begin(), runnable.end(), later);
        std::shared_ptr<CodecSession> session = std::move(runnable.back());
        runnable.pop_back();
        session->run_state_ = CodecSession::RunState::kRunning;
        global_pass = std::max(global_pass, session->pass_);

        // Take one FIFO slice of the session's queue.
        std::vector<CodecSession::Input> batch;
        {
            std::lock_guard<std::mutex> slock(session->mu_);
            const size_t want = static_cast<size_t>(
                std::max(opts.batch_frames, 1));
            while (batch.size() < want && !session->inputs_.empty()) {
                batch.push_back(std::move(session->inputs_.front()));
                session->inputs_.pop_front();
            }
            session->inflight_ += static_cast<int>(batch.size());
            session->counters_.queued =
                static_cast<s64>(session->inputs_.size());
        }

        if (!batch.empty()) {
            const size_t count = batch.size();
            lock.unlock();
            session->process_batch(std::move(batch), &completion_seq);
            lock.lock();
            frames_dispatched += static_cast<s64>(count);
            session->pass_ += stride(session->priority()) * count;
        }

        // Re-queue or idle. The check runs under both locks, and every
        // submit calls make_runnable after enqueueing, so an input
        // enqueued at any interleaving is seen either here or there.
        bool more;
        {
            std::lock_guard<std::mutex> slock(session->mu_);
            more = !session->inputs_.empty();
        }
        if (more) {
            session->run_state_ = CodecSession::RunState::kQueued;
            runnable.push_back(std::move(session));
            std::push_heap(runnable.begin(), runnable.end(), later);
        } else {
            session->run_state_ = CodecSession::RunState::kIdle;
            // Drop the reference outside mu: if it is the last one,
            // ~CodecSession runs release_admission, which locks mu —
            // releasing in place would self-deadlock this dispatcher.
            lock.unlock();
            session.reset();
            lock.lock();
        }
    }
    --dispatchers;
    idle_cv.notify_all();
}

}  // namespace detail

SessionScheduler::SessionScheduler(SchedulerOptions options)
{
    const int workers =
        options.workers > 0 ? options.workers : default_job_count();
    core_ = std::make_shared<detail::SchedulerCore>(options, workers);
}

SessionScheduler::~SessionScheduler()
{
    core_->stopping.store(true, std::memory_order_relaxed);
    // Join the watchdog from here, not from ~SchedulerCore: if the
    // last core reference were dropped on the watchdog thread itself,
    // the destructor would self-join. After the facade dies, straggler
    // sessions drain via run_stopped_locked and need no stall-check.
    core_->stop_watchdog();
    std::unique_lock<std::mutex> lock(core_->mu);
    core_->idle_cv.wait(lock, [this] {
        return core_->runnable.empty() && core_->dispatchers == 0;
    });
}

StatusOr<std::shared_ptr<CodecSession>>
SessionScheduler::open_encode(std::unique_ptr<VideoEncoder> encoder,
                              SessionConfig config)
{
    if (encoder == nullptr)
        return Status::invalid_argument("open_encode: null encoder for " +
                                        config.name);
    return open(std::move(encoder), nullptr, std::move(config));
}

StatusOr<std::shared_ptr<CodecSession>>
SessionScheduler::open_decode(std::unique_ptr<VideoDecoder> decoder,
                              SessionConfig config)
{
    if (decoder == nullptr)
        return Status::invalid_argument("open_decode: null decoder for " +
                                        config.name);
    return open(nullptr, std::move(decoder), std::move(config));
}

StatusOr<std::shared_ptr<CodecSession>>
SessionScheduler::open(std::unique_ptr<VideoEncoder> encoder,
                       std::unique_ptr<VideoDecoder> decoder,
                       SessionConfig config)
{
    Codec *codec = encoder != nullptr
                       ? static_cast<Codec *>(encoder.get())
                       : static_cast<Codec *>(decoder.get());
    const bool pooled = config.codec_config.frame_pool;
    std::shared_ptr<CodecSession> session(
        new CodecSession(std::move(encoder), std::move(decoder),
                         std::move(config), core_));
    const Status admitted = core_->admit(session.get());
    if (!admitted.is_ok()) {
        // Never admitted: the destructor must not refund the budgets.
        session->admission_released_ = true;
        return admitted;
    }
    if (pooled)
        codec->use_arena(core_->arena);
    if (session->config_.stall_timeout_seconds > 0)
        core_->watch(session);
    return session;
}

const FrameArena &
SessionScheduler::arena() const
{
    return core_->arena;
}

int
SessionScheduler::workers() const
{
    return core_->pool.worker_count();
}

SchedulerStats
SessionScheduler::stats() const
{
    SchedulerStats stats;
    stats.arena = core_->arena.stats();
    stats.backlog = core_->backlog.load(std::memory_order_relaxed);
    stats.shed_level = core_->shed_level.load(std::memory_order_relaxed);
    for (int i = 0; i < kSessionClassCount; ++i)
        stats.submits_shed[i] =
            core_->submits_shed[i].load(std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(core_->mu);
    stats.sessions_open = core_->sessions_open;
    stats.sessions_admitted = core_->sessions_admitted;
    stats.sessions_rejected = core_->sessions_rejected;
    stats.sessions_failed = core_->sessions_failed;
    stats.admissions_shed = core_->admissions_shed;
    stats.frames_dispatched = core_->frames_dispatched;
    stats.estimated_bytes = core_->estimated_bytes;
    stats.shed_episodes = core_->shed_episodes;
    stats.shed_seconds_total = core_->shed_seconds_total;
    return stats;
}

}  // namespace hdvb
