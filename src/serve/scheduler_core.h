/**
 * @file
 * Private shared state behind SessionScheduler — included only by the
 * serve layer's .cc files. Sessions hold a shared_ptr to the core, so
 * admission accounting, the runnable heap, and the worker pool outlive
 * the SessionScheduler facade for as long as any session does.
 */
#ifndef HDVB_SERVE_SCHEDULER_CORE_H
#define HDVB_SERVE_SCHEDULER_CORE_H

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <vector>

#include "common/thread_pool.h"
#include "serve/scheduler.h"
#include "serve/session.h"

namespace hdvb {
namespace detail {

/** Stride-scheduling virtual-time unit: pass advances by
 * kStrideScale / weight per frame, so weight w receives w× the frames
 * of weight 1 over any busy interval. */
inline constexpr u64 kStrideScale = u64{1} << 20;

struct SchedulerCore {
    explicit SchedulerCore(const SchedulerOptions &options, int workers)
        : opts(options), pool(workers)
    {}

    /** Charge one session against the budgets (under mu), or reject
     * with resource-exhausted. Assigns session_id/pass on success. */
    Status admit(CodecSession *session);

    /** Return @p session's admission charge; idempotent. */
    void release_admission(CodecSession *session);

    /** Note that @p session (probably) has queued inputs: queue it on
     * the runnable heap unless already queued/running, and make sure a
     * dispatcher is awake to service the heap. */
    void make_runnable(std::shared_ptr<CodecSession> session);

    /** Dispatcher body: pop lowest-pass session, run one batch_frames
     * slice, advance its pass, re-queue or idle it; exit when the heap
     * is empty. At most pool.worker_count() run concurrently. */
    void dispatcher_main();

    /** Post-shutdown service path: no dispatcher will ever run again,
     * so drain @p session's queue on the calling thread (the close()
     * path). Entered with @p lock held on mu and the session idle. */
    void run_stopped_locked(std::unique_lock<std::mutex> &lock,
                            CodecSession &session);

    u64 stride(SessionClass cls) const;

    const SchedulerOptions opts;
    FrameArena arena;
    ThreadPool pool;

    /** Set by ~SessionScheduler: reject new admissions and new data
     * submits (close/flush still proceed, so sessions stay drainable). */
    std::atomic<bool> stopping{false};

    /** Global completion-order stamp across every session. */
    std::atomic<s64> completion_seq{0};

    std::mutex mu;  // lock order: mu before any CodecSession::mu_
    std::condition_variable idle_cv;
    /** Min-heap on (pass_, session_id_) via std::*_heap. */
    std::vector<std::shared_ptr<CodecSession>> runnable;
    u64 global_pass = 0;
    u64 next_session_id = 0;
    int dispatchers = 0;
    int sessions_open = 0;
    s64 sessions_admitted = 0;
    s64 sessions_rejected = 0;
    s64 frames_dispatched = 0;
    size_t estimated_bytes = 0;
};

}  // namespace detail
}  // namespace hdvb

#endif  // HDVB_SERVE_SCHEDULER_CORE_H
