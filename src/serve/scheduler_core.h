/**
 * @file
 * Private shared state behind SessionScheduler — included only by the
 * serve layer's .cc files. Sessions hold a shared_ptr to the core, so
 * admission accounting, the runnable heap, and the worker pool outlive
 * the SessionScheduler facade for as long as any session does.
 */
#ifndef HDVB_SERVE_SCHEDULER_CORE_H
#define HDVB_SERVE_SCHEDULER_CORE_H

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/thread_pool.h"
#include "fault/deadline.h"
#include "serve/scheduler.h"
#include "serve/session.h"

namespace hdvb {
namespace detail {

/** Stride-scheduling virtual-time unit: pass advances by
 * kStrideScale / weight per frame, so weight w receives w× the frames
 * of weight 1 over any busy interval. */
inline constexpr u64 kStrideScale = u64{1} << 20;

struct SchedulerCore {
    explicit SchedulerCore(const SchedulerOptions &options, int workers)
        : opts(options), pool(workers)
    {}

    ~SchedulerCore() { stop_watchdog(); }

    /** Charge one session against the budgets (under mu), or reject
     * with the terminal resource-exhausted (hard budget) or the
     * transient unavailable (overload shedding). Assigns
     * session_id/pass on success. */
    Status admit(CodecSession *session);

    /** Return @p session's admission charge; idempotent. */
    void release_admission(CodecSession *session);

    /** Note that @p session (probably) has queued inputs: queue it on
     * the runnable heap unless already queued/running, and make sure a
     * dispatcher is awake to service the heap. */
    void make_runnable(std::shared_ptr<CodecSession> session);

    /** Dispatcher body: pop lowest-pass session, run one batch_frames
     * slice, advance its pass, re-queue or idle it; exit when the heap
     * is empty. At most pool.worker_count() run concurrently. */
    void dispatcher_main();

    /** Post-shutdown service path: no dispatcher will ever run again,
     * so drain @p session's queue on the calling thread (the close()
     * path). Entered with @p lock held on mu and the session idle. */
    void run_stopped_locked(std::unique_lock<std::mutex> &lock,
                            CodecSession &session);

    u64 stride(SessionClass cls) const;

    // ---- overload detector (graceful degradation) ----

    /** Submit-side gate: OK below the shed level of @p cls, else the
     * transient kUnavailable. Lock-free (atomics only) — this is on
     * every submit's fast path. */
    Status check_shed(SessionClass cls);

    /** A submit/close enqueued @p n inputs (backlog up). Lock-free. */
    void note_enqueued(s64 n);

    /** A batch of @p n inputs completed; @p ok_latencies are the
     * submit→completion latencies of the OK ones, feeding the sliding
     * p99 window. Recomputes the shed level. */
    void note_batch_done(s64 n, const std::vector<double> &ok_latencies);

    /** A session entered its failed state: refund its admission
     * charge, count it, and return its @p drained queue entries to the
     * backlog figure. Callable with no locks held. */
    void note_session_failed(CodecSession *session, s64 drained,
                             bool newly_failed);

    /** Re-derive shed_level from backlog + latency signals, with
     * hysteresis on the way down; tracks overload episodes. */
    void recompute_shed_locked();

    /** p99 over the sliding completion-latency window (0 when empty). */
    double latency_p99_locked() const;

    // ---- watchdog ----

    /** Register @p session for stall monitoring; lazily starts the
     * watchdog thread on first use. */
    void watch(std::shared_ptr<CodecSession> session);

    /** Watchdog body: periodically tick every live watched session. */
    void watchdog_main();

    /** Stop and join the watchdog thread (idempotent). Called by
     * ~SessionScheduler so the join never happens on a thread that
     * could itself be the watchdog. */
    void stop_watchdog();

    const SchedulerOptions opts;
    FrameArena arena;
    ThreadPool pool;

    /** Set by ~SessionScheduler: reject new admissions and new data
     * submits (close/flush still proceed, so sessions stay drainable). */
    std::atomic<bool> stopping{false};

    /** Global completion-order stamp across every session. */
    std::atomic<s64> completion_seq{0};

    /** Scheduler-wide pending work: frames enqueued but not yet
     * completed (queued + in-flight). The overload detector's primary
     * signal. */
    std::atomic<s64> backlog{0};

    /** Current shed level: 0 = none, 1 = thumbnail, 2 = +vod,
     * 3 = +live. Written under mu, read lock-free on submit. */
    std::atomic<int> shed_level{0};

    /** Submits rejected by shedding, per class (lock-free). */
    std::atomic<s64> submits_shed[kSessionClassCount] = {};

    std::mutex mu;  // lock order: mu before any CodecSession::mu_
    std::condition_variable idle_cv;
    /** Min-heap on (pass_, session_id_) via std::*_heap. */
    std::vector<std::shared_ptr<CodecSession>> runnable;
    u64 global_pass = 0;
    u64 next_session_id = 0;
    int dispatchers = 0;
    int sessions_open = 0;
    s64 sessions_admitted = 0;
    s64 sessions_rejected = 0;
    s64 sessions_failed = 0;
    s64 admissions_shed = 0;
    s64 frames_dispatched = 0;
    size_t estimated_bytes = 0;

    // ---- overload episode tracking (under mu) ----
    Deadline::Clock::time_point shed_started_at;
    s64 shed_episodes = 0;          ///< completed overload episodes
    double shed_seconds_total = 0;  ///< summed episode durations

    /** Sliding window of recent OK completion latencies (ring buffer,
     * under mu) feeding the p99 signal. */
    std::vector<double> recent_latency;
    size_t latency_next = 0;

    // ---- watchdog state (under mu except the thread handle) ----
    std::thread watchdog;  ///< started lazily by watch(); join via stop_watchdog()
    bool watchdog_stop = false;
    std::condition_variable watchdog_cv;
    std::vector<std::weak_ptr<CodecSession>> watched;
    double watchdog_min_timeout = 0;  ///< tightest stall timeout seen
};

}  // namespace detail
}  // namespace hdvb

#endif  // HDVB_SERVE_SCHEDULER_CORE_H
