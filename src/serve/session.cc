#include "serve/session.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "serve/scheduler_core.h"

namespace hdvb {

const char *
session_class_name(SessionClass cls)
{
    switch (cls) {
    case SessionClass::kLive:
        return "live";
    case SessionClass::kVod:
        return "vod";
    case SessionClass::kThumbnail:
        return "thumbnail";
    }
    return "unknown";
}

size_t
session_memory_estimate(const CodecConfig &config)
{
    // One bordered 4:2:0 picture, stride effects rounded up into the
    // border term. 64 over-estimates every codec's real border so the
    // admission charge stays an upper bound on arena usage.
    const size_t border = 64;
    const size_t luma = (static_cast<size_t>(config.width) + 2 * border) *
                        (static_cast<size_t>(config.height) + 2 * border);
    const size_t picture = luma + luma / 2;
    // Display-order lookahead + both anchors + reference window + the
    // picture being worked on.
    const size_t window = static_cast<size_t>(config.bframes) + 2 +
                          static_cast<size_t>(std::max(config.refs, 1)) + 1;
    return picture * window;
}

CodecSession::CodecSession(std::unique_ptr<VideoEncoder> encoder,
                           std::unique_ptr<VideoDecoder> decoder,
                           SessionConfig config,
                           std::shared_ptr<detail::SchedulerCore> sched)
    : config_(std::move(config)), is_encode_(encoder != nullptr),
      encoder_(std::move(encoder)), decoder_(std::move(decoder)),
      sched_(std::move(sched)), last_progress_(Deadline::Clock::now())
{
    HDVB_DCHECK((encoder_ != nullptr) != (decoder_ != nullptr));
}

CodecSession::~CodecSession()
{
    if (sched_ != nullptr)
        sched_->release_admission(this);
}

std::shared_ptr<CodecSession>
CodecSession::open_inline_encode(std::unique_ptr<VideoEncoder> encoder,
                                 SessionConfig config)
{
    if (encoder == nullptr)
        return nullptr;
    return std::shared_ptr<CodecSession>(new CodecSession(
        std::move(encoder), nullptr, std::move(config), nullptr));
}

std::shared_ptr<CodecSession>
CodecSession::open_inline_decode(std::unique_ptr<VideoDecoder> decoder,
                                 SessionConfig config)
{
    if (decoder == nullptr)
        return nullptr;
    return std::shared_ptr<CodecSession>(new CodecSession(
        nullptr, std::move(decoder), std::move(config), nullptr));
}

StatusOr<Ticket>
CodecSession::submit(Frame frame)
{
    if (!is_encode_)
        return Status::invalid_argument(
            "submit(Frame) on decode session " + config_.name);
    Input input;
    input.submit_time = Deadline::Clock::now();
    input.frame = std::move(frame);
    return submit_input(std::move(input));
}

StatusOr<Ticket>
CodecSession::submit(Packet packet)
{
    if (is_encode_)
        return Status::invalid_argument(
            "submit(Packet) on encode session " + config_.name);
    Input input;
    input.submit_time = Deadline::Clock::now();
    input.packet = std::move(packet);
    return submit_input(std::move(input));
}

StatusOr<Ticket>
CodecSession::submit_input(Input input)
{
    if (sched_ != nullptr) {
        // Shutdown and overload both reject with the *transient*
        // kUnavailable: the stream is intact, the caller may retry.
        if (sched_->stopping.load(std::memory_order_relaxed))
            return Status::unavailable("scheduler stopped; session " +
                                       config_.name + " rejects frames");
        const Status shed = sched_->check_shed(config_.priority);
        if (!shed.is_ok())
            return shed;
    }

    if (sched_ == nullptr) {
        // Inline: run the codec on the calling thread, surface its
        // status directly (the one-shot benchmark contract).
        Ticket ticket;
        {
            std::lock_guard<std::mutex> lock(mu_);
            if (failed_)
                return first_error_;  // sticky terminal state
            if (counters_.closed)
                return Status::invalid_argument("session " + config_.name +
                                                " is closed");
            ticket = counters_.submitted++;
            input.ticket = ticket;
            ++inflight_;  // process_batch settles it
        }
        std::vector<Input> batch;
        batch.push_back(std::move(input));
        const Status status = process_batch(std::move(batch), nullptr);
        if (!status.is_ok())
            return status;
        return ticket;
    }

    Ticket ticket;
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (failed_)
            return first_error_;  // sticky terminal state
        if (counters_.closed)
            return Status::invalid_argument("session " + config_.name +
                                            " is closed");
        if (inputs_.size() >= config_.queue_capacity)
            return Status::unavailable(
                "session " + config_.name + " queue full (" +
                std::to_string(config_.queue_capacity) + "); back off");
        ticket = counters_.submitted++;
        input.ticket = ticket;
        inputs_.push_back(std::move(input));
        counters_.queued = static_cast<s64>(inputs_.size());
    }
    sched_->note_enqueued(1);
    sched_->make_runnable(shared_from_this());
    return ticket;
}

bool
CodecSession::would_block() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return sched_ != nullptr && !counters_.closed &&
           inputs_.size() >= config_.queue_capacity;
}

size_t
CodecSession::poll(std::vector<Packet> *out)
{
    HDVB_DCHECK(out != nullptr);
    std::lock_guard<std::mutex> lock(mu_);
    const size_t n = out_packets_.size();
    if (n > 0) {
        std::move(out_packets_.begin(), out_packets_.end(),
                  std::back_inserter(*out));
        out_packets_.clear();
    }
    return n;
}

size_t
CodecSession::poll(std::vector<Frame> *out)
{
    HDVB_DCHECK(out != nullptr);
    std::lock_guard<std::mutex> lock(mu_);
    const size_t n = out_frames_.size();
    if (n > 0) {
        std::move(out_frames_.begin(), out_frames_.end(),
                  std::back_inserter(*out));
        out_frames_.clear();
    }
    return n;
}

void
CodecSession::drain()
{
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock,
                  [this] { return inputs_.empty() && inflight_ == 0; });
}

Status
CodecSession::close()
{
    bool need_flush = false;
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (!counters_.closed) {
            counters_.closed = true;
            need_flush = !failed_;  // a failed session has no codec left
        }
    }
    if (need_flush) {
        Input flush;
        flush.flush = true;
        flush.submit_time = Deadline::Clock::now();
        if (sched_ == nullptr) {
            bool run = false;
            {
                std::lock_guard<std::mutex> lock(mu_);
                if (!failed_) {
                    ++inflight_;  // process_batch settles it
                    run = true;
                }
            }
            if (run) {
                std::vector<Input> batch;
                batch.push_back(std::move(flush));
                process_batch(std::move(batch), nullptr);
            }
        } else {
            bool queued = false;
            {
                // Flush bypasses queue_capacity (and shedding): close
                // must always be able to make progress. Re-check
                // failed_ under the lock — a concurrent failure drains
                // the queue, and a flush enqueued after that would
                // never be serviced.
                std::lock_guard<std::mutex> lock(mu_);
                if (!failed_) {
                    inputs_.push_back(std::move(flush));
                    queued = true;
                }
            }
            if (queued) {
                sched_->note_enqueued(1);
                sched_->make_runnable(shared_from_this());
            }
        }
    }
    drain();
    if (sched_ != nullptr)
        sched_->release_admission(this);
    std::lock_guard<std::mutex> lock(mu_);
    return first_error_;
}

bool
CodecSession::failed() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return failed_;
}

Status
CodecSession::session_status() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return failed_ ? first_error_ : Status::ok();
}

std::vector<TicketResult>
CodecSession::take_results()
{
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<TicketResult> out;
    out.swap(results_);
    return out;
}

SessionCounters
CodecSession::counters() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return counters_;
}

CodecStats
CodecSession::codec_stats() const
{
    // The codec can be torn down concurrently by a failure, so the
    // pointer check must happen under mu_; the counter reads
    // themselves are internally synchronised (pool ledger mutex).
    std::lock_guard<std::mutex> lock(mu_);
    if (encoder_ != nullptr)
        return encoder_->stats();
    if (decoder_ != nullptr)
        return decoder_->stats();
    return final_stats_;
}

void
CodecSession::note_status_locked(const Status &status)
{
    if (!status.is_ok() && first_error_.is_ok())
        first_error_ = status;
}

Status
CodecSession::process_batch(std::vector<Input> inputs,
                            std::atomic<s64> *seq)
{
    struct Done {
        TicketResult result;
        bool flush = false;
        bool missed = false;
        bool lost = false;        ///< never ran: session failing
        int extra_attempts = 0;   ///< transient retries consumed
    };
    std::vector<Done> done;
    done.reserve(inputs.size());
    std::vector<Packet> packets;
    std::vector<Frame> frames;
    std::vector<double> ok_latencies;
    Status failure;  // terminal: will move the session to failed

    bool entered_failed;
    {
        std::lock_guard<std::mutex> lock(mu_);
        entered_failed = failed_;
    }

    for (Input &input : inputs) {
        Done d;
        d.flush = input.flush;
        d.result.ticket = input.ticket;
        Status status;
        // Once any input of this batch hits a terminal failure (or a
        // cancel/failure arrives from outside), the rest of the batch
        // must not touch the codec: blast-radius containment ends the
        // stream at the fault.
        const bool aborting =
            entered_failed || !failure.is_ok() ||
            cancel_requested_.load(std::memory_order_acquire);
        if (input.flush) {
            if (!aborting) {
                try {
                    status = is_encode_ ? encoder_->flush(&packets)
                                        : decoder_->flush(&frames);
                } catch (const std::exception &e) {
                    status = Status::internal(
                        std::string("uncaught codec exception in flush: ") +
                        e.what());
                }
            }
            // Flush on a failing session is a no-op: the codec is (or
            // is about to be) torn down.
        } else if (aborting) {
            d.lost = true;
            status = Status::data_loss(
                "ticket " + std::to_string(input.ticket) + " of session " +
                config_.name + " dropped: session failed");
        } else {
            const Deadline deadline(input.submit_time,
                                    config_.frame_deadline_seconds);
            if (deadline.expired()) {
                d.missed = true;
                status = Status::deadline_exceeded(
                    "frame " + std::to_string(input.ticket) +
                    " of session " + config_.name + " expired in queue");
            } else {
                RetryController retry(config_.retry);
                do {
                    try {
                        status = config_.before_frame_hook
                                     ? config_.before_frame_hook(input.ticket)
                                     : Status::ok();
                        if (status.is_ok())
                            status = is_encode_
                                         ? encoder_->encode(input.frame,
                                                            &packets)
                                         : decoder_->decode(input.packet,
                                                            &frames);
                    } catch (const std::exception &e) {
                        // A throwing codec (or hook) is a terminal
                        // fault of this session, not of the server.
                        status = Status::internal(
                            std::string("uncaught codec exception: ") +
                            e.what());
                    }
                } while (retry.backoff_and_retry(status));
                d.extra_attempts = retry.attempt() - 1;
            }
        }
        if (!status.is_ok() && !d.missed && !d.lost && failure.is_ok())
            failure = status;
        d.result.latency_seconds =
            std::chrono::duration<double>(Deadline::Clock::now() -
                                          input.submit_time)
                .count();
        if (seq != nullptr && !d.flush && !d.lost)  // seq counts frames run
            d.result.completion_seq =
                seq->fetch_add(1, std::memory_order_relaxed);
        d.result.status = std::move(status);
        done.push_back(std::move(d));
    }

    bool need_finalize = false;
    Status cause;
    {
        std::lock_guard<std::mutex> lock(mu_);
        std::move(packets.begin(), packets.end(),
                  std::back_inserter(out_packets_));
        std::move(frames.begin(), frames.end(),
                  std::back_inserter(out_frames_));
        for (Done &d : done) {
            // A deadline-shed frame is reported on its ticket and
            // counted, but does not fail the session: close() still
            // returns ok. Lost tickets carry the failure cause already.
            if (!d.missed && !d.lost)
                note_status_locked(d.result.status);
            counters_.retried += d.extra_attempts;
            if (d.flush) {
                flushed_ = true;
                continue;  // flush is not a ticket
            }
            if (d.missed)
                ++counters_.deadline_missed;
            else if (d.lost)
                ++counters_.lost;
            else if (d.result.status.is_ok())
                ++counters_.completed;
            else
                ++counters_.failed;
            if (d.result.status.is_ok())
                ok_latencies.push_back(d.result.latency_seconds);
            results_.push_back(std::move(d.result));
        }
        inflight_ -= static_cast<int>(inputs.size());
        HDVB_DCHECK(inflight_ >= 0);
        counters_.queued = static_cast<s64>(inputs_.size());
        last_progress_ = Deadline::Clock::now();
        if (!failure.is_ok() ||
            cancel_requested_.load(std::memory_order_acquire) || failed_) {
            need_finalize = true;
            cause = !failure.is_ok()         ? failure
                    : !cancel_status_.is_ok() ? cancel_status_
                                              : first_error_;
        }
        done_cv_.notify_all();
    }
    if (sched_ != nullptr)
        sched_->note_batch_done(static_cast<s64>(done.size()),
                                ok_latencies);
    if (need_finalize)
        fail_session(cause.is_ok() ? Status::internal("session " +
                                                      config_.name +
                                                      " cancelled")
                                   : cause);
    return failure;
}

void
CodecSession::fail_session(const Status &cause)
{
    std::unique_ptr<VideoEncoder> dead_encoder;
    std::unique_ptr<VideoDecoder> dead_decoder;
    s64 drained = 0;
    bool newly_failed = false;
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (!failed_) {
            newly_failed = true;
            failed_ = true;
            counters_.closed = true;  // no further submits
            note_status_locked(cause);
            // Drain the queue: every not-yet-run ticket completes with
            // kDataLoss citing the original cause. Queued flushes are
            // not tickets and simply disappear (the codec is gone).
            const auto now = Deadline::Clock::now();
            for (Input &input : inputs_) {
                if (input.flush)
                    continue;
                TicketResult r;
                r.ticket = input.ticket;
                r.status = Status::data_loss(
                    "ticket " + std::to_string(input.ticket) +
                    " of session " + config_.name +
                    " dropped: " + first_error_.to_string());
                r.latency_seconds =
                    std::chrono::duration<double>(now - input.submit_time)
                        .count();
                ++counters_.lost;
                results_.push_back(std::move(r));
            }
            drained = static_cast<s64>(inputs_.size());
            inputs_.clear();
            counters_.queued = 0;
        }
        // Tear the codec down only once no worker is inside it; a
        // racing batch re-enters here from its finalize path.
        if (inflight_ == 0 && (encoder_ != nullptr || decoder_ != nullptr)) {
            final_stats_ =
                is_encode_ ? encoder_->stats() : decoder_->stats();
            dead_encoder = std::move(encoder_);
            dead_decoder = std::move(decoder_);
        }
        done_cv_.notify_all();
    }
    // Destroy outside mu_: returning the codec's pooled frame buffers
    // takes the arena ledger lock, and the refund below takes the
    // scheduler lock — neither may nest inside the session lock.
    dead_encoder.reset();
    dead_decoder.reset();
    if (sched_ != nullptr)
        sched_->note_session_failed(this, drained, newly_failed);
}

void
CodecSession::watchdog_tick(Deadline::Clock::time_point now)
{
    const double timeout = config_.stall_timeout_seconds;
    if (timeout <= 0)
        return;
    Status cause;
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (failed_)
            return;
        if (inputs_.empty() && inflight_ == 0) {
            last_progress_ = now;  // idle is not a stall
            return;
        }
        const double stalled =
            std::chrono::duration<double>(now - last_progress_).count();
        if (stalled < timeout)
            return;
        cause = Status::deadline_exceeded(
            "watchdog: session " + config_.name +
            " made no frame progress for " + std::to_string(stalled) +
            "s with pending work; cancelling");
        cancel_status_ = cause;
        cancel_requested_.store(true, std::memory_order_release);
    }
    fail_session(cause);
}

}  // namespace hdvb
