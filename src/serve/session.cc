#include "serve/session.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "serve/scheduler_core.h"

namespace hdvb {

const char *
session_class_name(SessionClass cls)
{
    switch (cls) {
    case SessionClass::kLive:
        return "live";
    case SessionClass::kVod:
        return "vod";
    case SessionClass::kThumbnail:
        return "thumbnail";
    }
    return "unknown";
}

size_t
session_memory_estimate(const CodecConfig &config)
{
    // One bordered 4:2:0 picture, stride effects rounded up into the
    // border term. 64 over-estimates every codec's real border so the
    // admission charge stays an upper bound on arena usage.
    const size_t border = 64;
    const size_t luma = (static_cast<size_t>(config.width) + 2 * border) *
                        (static_cast<size_t>(config.height) + 2 * border);
    const size_t picture = luma + luma / 2;
    // Display-order lookahead + both anchors + reference window + the
    // picture being worked on.
    const size_t window = static_cast<size_t>(config.bframes) + 2 +
                          static_cast<size_t>(std::max(config.refs, 1)) + 1;
    return picture * window;
}

CodecSession::CodecSession(std::unique_ptr<VideoEncoder> encoder,
                           std::unique_ptr<VideoDecoder> decoder,
                           SessionConfig config,
                           std::shared_ptr<detail::SchedulerCore> sched)
    : config_(std::move(config)), encoder_(std::move(encoder)),
      decoder_(std::move(decoder)), sched_(std::move(sched))
{
    HDVB_DCHECK((encoder_ != nullptr) != (decoder_ != nullptr));
}

CodecSession::~CodecSession()
{
    if (sched_ != nullptr)
        sched_->release_admission(this);
}

std::shared_ptr<CodecSession>
CodecSession::open_inline_encode(std::unique_ptr<VideoEncoder> encoder,
                                 SessionConfig config)
{
    if (encoder == nullptr)
        return nullptr;
    return std::shared_ptr<CodecSession>(new CodecSession(
        std::move(encoder), nullptr, std::move(config), nullptr));
}

std::shared_ptr<CodecSession>
CodecSession::open_inline_decode(std::unique_ptr<VideoDecoder> decoder,
                                 SessionConfig config)
{
    if (decoder == nullptr)
        return nullptr;
    return std::shared_ptr<CodecSession>(new CodecSession(
        nullptr, std::move(decoder), std::move(config), nullptr));
}

StatusOr<Ticket>
CodecSession::submit(Frame frame)
{
    if (encoder_ == nullptr)
        return Status::invalid_argument(
            "submit(Frame) on decode session " + config_.name);
    Input input;
    input.submit_time = Deadline::Clock::now();
    input.frame = std::move(frame);
    return submit_input(std::move(input));
}

StatusOr<Ticket>
CodecSession::submit(Packet packet)
{
    if (decoder_ == nullptr)
        return Status::invalid_argument(
            "submit(Packet) on encode session " + config_.name);
    Input input;
    input.submit_time = Deadline::Clock::now();
    input.packet = std::move(packet);
    return submit_input(std::move(input));
}

StatusOr<Ticket>
CodecSession::submit_input(Input input)
{
    if (sched_ != nullptr && sched_->stopping.load(std::memory_order_relaxed))
        return Status::resource_exhausted("scheduler stopped; session " +
                                          config_.name + " rejects frames");

    if (sched_ == nullptr) {
        // Inline: run the codec on the calling thread, surface its
        // status directly (the one-shot benchmark contract).
        Ticket ticket;
        {
            std::lock_guard<std::mutex> lock(mu_);
            if (counters_.closed)
                return Status::resource_exhausted("session " + config_.name +
                                                  " is closed");
            ticket = counters_.submitted++;
            input.ticket = ticket;
            ++inflight_;  // process_batch settles it
        }
        std::vector<Input> batch;
        batch.push_back(std::move(input));
        const Status status = process_batch(std::move(batch), nullptr);
        if (!status.is_ok())
            return status;
        return ticket;
    }

    Ticket ticket;
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (counters_.closed)
            return Status::resource_exhausted("session " + config_.name +
                                              " is closed");
        if (inputs_.size() >= config_.queue_capacity)
            return Status::resource_exhausted(
                "session " + config_.name + " queue full (" +
                std::to_string(config_.queue_capacity) + "); back off");
        ticket = counters_.submitted++;
        input.ticket = ticket;
        inputs_.push_back(std::move(input));
        counters_.queued = static_cast<s64>(inputs_.size());
    }
    sched_->make_runnable(shared_from_this());
    return ticket;
}

bool
CodecSession::would_block() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return sched_ != nullptr && !counters_.closed &&
           inputs_.size() >= config_.queue_capacity;
}

size_t
CodecSession::poll(std::vector<Packet> *out)
{
    HDVB_DCHECK(out != nullptr);
    std::lock_guard<std::mutex> lock(mu_);
    const size_t n = out_packets_.size();
    if (n > 0) {
        std::move(out_packets_.begin(), out_packets_.end(),
                  std::back_inserter(*out));
        out_packets_.clear();
    }
    return n;
}

size_t
CodecSession::poll(std::vector<Frame> *out)
{
    HDVB_DCHECK(out != nullptr);
    std::lock_guard<std::mutex> lock(mu_);
    const size_t n = out_frames_.size();
    if (n > 0) {
        std::move(out_frames_.begin(), out_frames_.end(),
                  std::back_inserter(*out));
        out_frames_.clear();
    }
    return n;
}

void
CodecSession::drain()
{
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock,
                  [this] { return inputs_.empty() && inflight_ == 0; });
}

Status
CodecSession::close()
{
    bool need_flush = false;
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (!counters_.closed) {
            counters_.closed = true;
            need_flush = true;
        }
    }
    if (need_flush) {
        Input flush;
        flush.flush = true;
        flush.submit_time = Deadline::Clock::now();
        if (sched_ == nullptr) {
            {
                std::lock_guard<std::mutex> lock(mu_);
                ++inflight_;  // process_batch settles it
            }
            std::vector<Input> batch;
            batch.push_back(std::move(flush));
            process_batch(std::move(batch), nullptr);
        } else {
            {
                // Flush bypasses queue_capacity: close must always be
                // able to make progress.
                std::lock_guard<std::mutex> lock(mu_);
                inputs_.push_back(std::move(flush));
            }
            sched_->make_runnable(shared_from_this());
        }
    }
    drain();
    if (sched_ != nullptr)
        sched_->release_admission(this);
    std::lock_guard<std::mutex> lock(mu_);
    return first_error_;
}

std::vector<TicketResult>
CodecSession::take_results()
{
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<TicketResult> out;
    out.swap(results_);
    return out;
}

SessionCounters
CodecSession::counters() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return counters_;
}

CodecStats
CodecSession::codec_stats() const
{
    // Codec counter reads are internally synchronised (pool ledger
    // mutex); resilience counters are only written by the single
    // worker processing this session.
    return encoder_ != nullptr ? encoder_->stats() : decoder_->stats();
}

void
CodecSession::note_status_locked(const Status &status)
{
    if (!status.is_ok() && first_error_.is_ok())
        first_error_ = status;
}

Status
CodecSession::process_batch(std::vector<Input> inputs,
                            std::atomic<s64> *seq)
{
    struct Done {
        TicketResult result;
        bool flush = false;
        bool missed = false;
    };
    std::vector<Done> done;
    done.reserve(inputs.size());
    std::vector<Packet> packets;
    std::vector<Frame> frames;
    Status first_bad;

    for (Input &input : inputs) {
        Done d;
        d.flush = input.flush;
        d.result.ticket = input.ticket;
        Status status;
        if (input.flush) {
            status = encoder_ != nullptr ? encoder_->flush(&packets)
                                         : decoder_->flush(&frames);
        } else {
            const Deadline deadline(input.submit_time,
                                    config_.frame_deadline_seconds);
            if (deadline.expired()) {
                d.missed = true;
                status = Status::deadline_exceeded(
                    "frame " + std::to_string(input.ticket) +
                    " of session " + config_.name + " expired in queue");
            } else if (encoder_ != nullptr) {
                status = encoder_->encode(input.frame, &packets);
            } else {
                status = decoder_->decode(input.packet, &frames);
            }
        }
        if (!status.is_ok() && first_bad.is_ok() && !d.missed)
            first_bad = status;
        d.result.status = std::move(status);
        d.result.latency_seconds =
            std::chrono::duration<double>(Deadline::Clock::now() -
                                          input.submit_time)
                .count();
        if (seq != nullptr && !d.flush)  // seq numbers count frames
            d.result.completion_seq =
                seq->fetch_add(1, std::memory_order_relaxed);
        done.push_back(std::move(d));
    }

    std::lock_guard<std::mutex> lock(mu_);
    std::move(packets.begin(), packets.end(),
              std::back_inserter(out_packets_));
    std::move(frames.begin(), frames.end(),
              std::back_inserter(out_frames_));
    for (Done &d : done) {
        // A shed frame is reported on its ticket and counted, but does
        // not fail the session: close() still returns ok.
        if (!d.missed)
            note_status_locked(d.result.status);
        if (d.flush) {
            flushed_ = true;
            continue;  // flush is not a ticket
        }
        if (d.missed)
            ++counters_.deadline_missed;
        else if (d.result.status.is_ok())
            ++counters_.completed;
        else
            ++counters_.failed;
        results_.push_back(std::move(d.result));
    }
    inflight_ -= static_cast<int>(inputs.size());
    HDVB_DCHECK(inflight_ >= 0);
    counters_.queued = static_cast<s64>(inputs_.size());
    done_cv_.notify_all();
    return first_bad;
}

}  // namespace hdvb
