/**
 * @file
 * The streaming session API — codec-as-a-service instead of
 * codec-as-a-function-call.
 *
 * A CodecSession wraps one codec instance (encoder XOR decoder) behind
 * a submit/poll/drain/close surface: submit() hands the session one
 * frame (or one packet) and returns a Ticket immediately; outputs are
 * collected with poll(); drain() blocks until everything submitted has
 * been processed; close() flushes the codec and retires the session.
 * Per-ticket completion records carry submit→completion latency, which
 * is where the server harness's p50/p95/p99 numbers come from.
 *
 * Sessions come in two attachments:
 *  - *inline* (open_inline_*): submit() runs the codec synchronously on
 *    the calling thread. This is the one-shot benchmark path — the
 *    sweep runner's timed region drives an inline session, so
 *    per-point fps stays paper-comparable and streams byte-identical
 *    to the pre-session API.
 *  - *scheduled* (SessionScheduler::open_*): submit() enqueues into the
 *    session's bounded frame queue and returns; scheduler workers run
 *    the codec according to weighted fair share across priority
 *    classes. A full queue rejects the submit with the transient
 *    kUnavailable (backpressure — see would_block()).
 *
 * Ordering: inputs of one session are always processed FIFO by at most
 * one worker at a time, so a session's output stream is byte-identical
 * to a serial run no matter how many scheduler workers exist.
 *
 * **Failure domain.** A session is the blast radius of its own faults:
 * a terminal codec error (corrupt packet with resilience off, an
 * exception thrown inside the codec, retry-exhausted transient
 * failure) or a watchdog stall cancellation moves the session into a
 * terminal *failed* state and nothing else. On failure the session
 *  - latches the cause as its sticky status (failed()/close() report
 *    it),
 *  - completes the triggering ticket with the codec's error and drains
 *    every queued / not-yet-run ticket with kDataLoss,
 *  - destroys its codec instance so every frame buffer it held returns
 *    to the shared arena immediately, and
 *  - is evicted by its scheduler: the admission charge is refunded on
 *    the spot, not at close().
 * All other sessions of the scheduler keep their byte-identical
 * streams — the property the chaos harness (bench/chaos_loadgen)
 * measures as blast radius.
 */
#ifndef HDVB_SERVE_SESSION_H
#define HDVB_SERVE_SESSION_H

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "codec/codec.h"
#include "common/status.h"
#include "fault/deadline.h"
#include "fault/retry.h"

namespace hdvb {

/** Traffic classes a deployment schedules between (weights in
 * SchedulerOptions::class_weights). */
enum class SessionClass {
    kLive = 0,       ///< low-latency interactive streams
    kVod = 1,        ///< bulk video-on-demand transcode
    kThumbnail = 2,  ///< best-effort burst work
};

inline constexpr int kSessionClassCount = 3;
inline constexpr SessionClass kAllSessionClasses[kSessionClassCount] = {
    SessionClass::kLive, SessionClass::kVod, SessionClass::kThumbnail};

/** Class name ("live", "vod", "thumbnail"). */
const char *session_class_name(SessionClass cls);

/** Per-session submission id: 0-based, dense, FIFO-processed. */
using Ticket = s64;

/** How one session should be admitted and scheduled. */
struct SessionConfig {
    /** Label used in reports and error messages. */
    std::string name = "session";

    SessionClass priority = SessionClass::kVod;

    /** The codec configuration the wrapped instance was built with;
     * admission charges session_memory_estimate() of it against the
     * scheduler's memory budget. */
    CodecConfig codec_config;

    /** Input-queue bound for scheduled sessions: a submit that would
     * exceed it is rejected with the transient kUnavailable
     * (backpressure). Ignored by inline sessions (they never queue). */
    size_t queue_capacity = 16;

    /** Per-frame latency budget, checked cooperatively when a worker
     * picks the frame up (fault-subsystem Deadline semantics): an
     * expired frame is completed as deadline-exceeded without running
     * the codec. 0 disables. */
    double frame_deadline_seconds = 0.0;

    /** Retry-with-backoff for *transient* codec failures on one frame
     * (kUnavailable / kDeadlineExceeded — see fault/retry.h). Terminal
     * codes never retry; a frame that exhausts its attempts fails the
     * session. Default: one attempt, no retry. */
    RetryPolicy retry;

    /** Watchdog liveness budget: a session holding pending work that
     * completes no input for this long is cancelled cooperatively by
     * the scheduler's watchdog and moved to the failed state (cause
     * kDeadlineExceeded; unprocessed tickets drain kDataLoss). 0
     * disables. Inline sessions are never watched. */
    double stall_timeout_seconds = 0.0;

    /** Chaos/test instrumentation: runs on the processing thread
     * immediately before the codec is handed each non-flush input
     * (once per retry attempt). Returning non-OK stands in for the
     * codec call — the status flows through the normal retry/failure
     * machinery, so a hook can inject transient (retried) or terminal
     * (session-failing) faults, or just stall. An exception thrown
     * here is contained exactly like a codec exception — it fails
     * only this session. The hook must do its own synchronisation. */
    std::function<Status(Ticket)> before_frame_hook;
};

/** Completion record for one submitted ticket. */
struct TicketResult {
    Ticket ticket = 0;
    Status status;
    /** submit() to completion, seconds (queueing + codec time). */
    double latency_seconds = 0.0;
    /** Scheduler-global completion order stamp (-1 for inline
     * sessions and for tickets drained by a session failure); the
     * fair-share tests read interleaving off it. */
    s64 completion_seq = -1;
};

/** Session lifecycle counters; submitted == completed + failed +
 * deadline_missed + lost once drain() returns. */
struct SessionCounters {
    s64 submitted = 0;
    s64 completed = 0;        ///< processed by the codec, OK status
    s64 failed = 0;           ///< codec returned an error
    s64 deadline_missed = 0;  ///< expired in queue, codec skipped
    s64 lost = 0;             ///< drained kDataLoss by a session failure
    s64 retried = 0;          ///< extra attempts spent on transient errors
    s64 queued = 0;           ///< inputs waiting right now
    bool closed = false;
};

namespace detail {
struct SchedulerCore;
}  // namespace detail

/**
 * One streaming codec session. Create with open_inline_encode /
 * open_inline_decode (synchronous) or through a SessionScheduler
 * (queued + fair-share scheduled). Thread-safe: any thread may
 * submit/poll/drain, though per-session input order is the caller's
 * affair across threads.
 */
class CodecSession : public std::enable_shared_from_this<CodecSession>
{
  public:
    ~CodecSession();

    CodecSession(const CodecSession &) = delete;
    CodecSession &operator=(const CodecSession &) = delete;

    /** Synchronous sessions for the one-shot/benchmark path. */
    static std::shared_ptr<CodecSession>
    open_inline_encode(std::unique_ptr<VideoEncoder> encoder,
                       SessionConfig config);
    static std::shared_ptr<CodecSession>
    open_inline_decode(std::unique_ptr<VideoDecoder> decoder,
                       SessionConfig config);

    const std::string &name() const { return config_.name; }
    SessionClass priority() const { return config_.priority; }
    bool is_encode() const { return is_encode_; }

    /**
     * Submit one source frame (encode sessions only). Scheduled: O(1)
     * enqueue; rejected with kUnavailable on a full queue (transient
     * backpressure) or when the scheduler is shedding this session's
     * class under overload, with kInvalidArgument on a cleanly closed
     * session, and with the sticky failure status on a failed one.
     * Inline: runs the codec before returning and surfaces its Status
     * directly.
     */
    StatusOr<Ticket> submit(Frame frame);

    /** Submit one coded packet (decode sessions only). */
    StatusOr<Ticket> submit(Packet packet);

    /** True when the next submit would be rejected for queue depth. */
    bool would_block() const;

    /** Move completed encoded packets to @p out (encode sessions);
     * returns how many were appended. Never blocks. */
    size_t poll(std::vector<Packet> *out);

    /** Move completed decoded frames to @p out (decode sessions). */
    size_t poll(std::vector<Frame> *out);

    /** Block until every submitted input has completed (any status).
     * Outputs still need poll()/take_results(). */
    void drain();

    /**
     * Drain, flush the codec (emitting its buffered pictures into the
     * poll stream), and retire the session: later submits are
     * rejected, and the session's admission charge is released.
     * Returns the first codec error the session saw, flush included —
     * for a failed session, the sticky failure cause (the codec is
     * already gone, so nothing is flushed). Idempotent.
     */
    Status close();

    /** True once the session has entered its terminal failed state. */
    bool failed() const;

    /** Sticky status: OK while healthy, the first terminal error once
     * failed (also what close() returns). */
    Status session_status() const;

    /** Move out the per-ticket completion records accumulated since
     * the last call (flush is not a ticket and never appears). */
    std::vector<TicketResult> take_results();

    SessionCounters counters() const;

    /** Counter snapshot of the wrapped codec (pool + resilience).
     * After a failure this is the final snapshot taken just before the
     * codec was torn down. */
    CodecStats codec_stats() const;

  private:
    friend class SessionScheduler;
    friend struct detail::SchedulerCore;

    struct Input {
        Ticket ticket = 0;
        Deadline::Clock::time_point submit_time;
        Frame frame;    ///< encode payload
        Packet packet;  ///< decode payload
        bool flush = false;
    };

    CodecSession(std::unique_ptr<VideoEncoder> encoder,
                 std::unique_ptr<VideoDecoder> decoder,
                 SessionConfig config,
                 std::shared_ptr<detail::SchedulerCore> sched);

    /** Common submit tail: ticket assignment + inline execution or
     * bounded enqueue + scheduler wakeup. */
    StatusOr<Ticket> submit_input(Input input);

    /** Run a FIFO slice of inputs through the codec (no session lock
     * held during codec work), then append outputs/results under mu_.
     * @p seq stamps completion order (null for inline sessions).
     * Returns the terminal failure that will fail the session, if any
     * input hit one. */
    Status process_batch(std::vector<Input> inputs,
                         std::atomic<s64> *seq);

    /**
     * Enter (or make progress on) the terminal failed state: latch
     * @p cause, drain queued tickets kDataLoss, tear down the codec
     * once no worker is inside it, and tell the scheduler to evict +
     * refund. Idempotent; callable with no locks held.
     */
    void fail_session(const Status &cause);

    /** Watchdog probe: cancel + fail the session if it holds pending
     * work but has made no frame progress for stall_timeout_seconds. */
    void watchdog_tick(Deadline::Clock::time_point now);

    /** First error recorded, for close(). */
    void note_status_locked(const Status &status);

    const SessionConfig config_;
    const bool is_encode_;
    std::unique_ptr<VideoEncoder> encoder_;  ///< destroyed on failure
    std::unique_ptr<VideoDecoder> decoder_;  ///< destroyed on failure
    const std::shared_ptr<detail::SchedulerCore> sched_;

    mutable std::mutex mu_;
    std::condition_variable done_cv_;
    std::deque<Input> inputs_;
    int inflight_ = 0;  ///< inputs taken by a worker, not yet recorded
    std::vector<Packet> out_packets_;
    std::vector<Frame> out_frames_;
    std::vector<TicketResult> results_;
    SessionCounters counters_;
    Status first_error_;
    bool flushed_ = false;

    // ---- failure domain (mu_ unless noted) ----
    bool failed_ = false;
    CodecStats final_stats_;  ///< codec counters at teardown
    /** Cooperative cancel: checked between inputs by the worker. */
    std::atomic<bool> cancel_requested_{false};
    Status cancel_status_;
    /** Last time an input completed (or the queue went idle); the
     * watchdog measures stalls against it. */
    Deadline::Clock::time_point last_progress_;

    // ---- scheduler-owned state, guarded by the scheduler mutex ----
    enum class RunState { kIdle, kQueued, kRunning };
    RunState run_state_ = RunState::kIdle;
    u64 pass_ = 0;        ///< stride-scheduling virtual time
    u64 session_id_ = 0;  ///< admission order; pass tie-break
    bool admission_released_ = false;
};

/**
 * Bytes a session of @p config is charged against the scheduler's
 * memory budget: the 4:2:0 working set of its reference/lookahead
 * window with borders, a deliberate over-estimate used only for
 * admission (the arena ledger reports actual bytes).
 */
size_t session_memory_estimate(const CodecConfig &config);

}  // namespace hdvb

#endif  // HDVB_SERVE_SESSION_H
