/**
 * @file
 * Multi-session admission control and weighted fair-share scheduling
 * over the common ThreadPool.
 *
 * The scheduler turns the benchmark's codecs into a shared service: a
 * deployment opens many CodecSessions against one SessionScheduler,
 * which (a) admits them against a session-count and memory budget,
 * rejecting the rest with resource-exhausted, and (b) dispatches their
 * queued frames to a bounded worker pool in weighted fair share across
 * the three priority classes.
 *
 * Fair share is stride scheduling: each session carries a virtual-time
 * "pass"; dispatch always picks the runnable session with the smallest
 * pass and advances it by stride = K / weight(class) per frame
 * processed. Over any busy interval each class therefore receives CPU
 * in proportion to its weight (live 8 : vod 3 : thumbnail 1 by
 * default), regardless of how many frames the bulk classes have
 * queued. Ties break on admission order, so a 1-worker scheduler is
 * fully deterministic — the property the drain-order test pins.
 *
 * A session is processed by at most one worker at a time (its band
 * threads, if any, live inside the codec); batch_frames bounds how many
 * of its queued inputs one dispatch slice may run before the session is
 * re-queued behind its updated pass, which is the latency/throughput
 * dial.
 *
 * All sessions of one scheduler recycle pixel buffers through a shared
 * FrameArena (per-session attribution stays on each codec's FramePool
 * client ledger — see frame_pool.h).
 *
 * **Failure domains.** A session that hits a terminal fault (corrupt
 * packet with resilience off, codec exception, watchdog stall) fails
 * alone: the scheduler evicts it, refunds its admission charge
 * immediately, and its codec's arena buffers return to the shared
 * pool — sibling sessions keep byte-identical streams (see
 * CodecSession's failure-domain contract). Sessions opened with a
 * stall_timeout_seconds are monitored by a scheduler-owned watchdog
 * thread.
 *
 * **Graceful degradation.** When the scheduler-wide backlog (or the
 * sliding p99 completion latency) crosses the configured thresholds,
 * the scheduler sheds load class by class in reverse priority order —
 * thumbnail first, then vod, then live — by rejecting those submits
 * (and all new admissions) with the *transient* kUnavailable, distinct
 * from the terminal kResourceExhausted of a hard budget. Shedding
 * steps back down with hysteresis as the backlog drains, and episode
 * counters expose time-to-recovery.
 */
#ifndef HDVB_SERVE_SCHEDULER_H
#define HDVB_SERVE_SCHEDULER_H

#include <memory>

#include "serve/session.h"

namespace hdvb {

/** Scheduler sizing and policy. Zero budget fields mean unlimited. */
struct SchedulerOptions {
    /** Dispatch worker threads (codec band threads are extra and
     * per-session). 0 → default_job_count(). */
    int workers = 0;

    /** Admission cap on concurrently open sessions; 0 = unlimited. */
    int max_sessions = 0;

    /** Admission cap on the summed session_memory_estimate() of open
     * sessions; 0 = unlimited. */
    size_t memory_budget_bytes = 0;

    /** Stride weights per SessionClass (indexed by its enum value);
     * values < 1 are treated as 1. */
    int class_weights[kSessionClassCount] = {8, 3, 1};

    /** Max queued inputs one dispatch slice runs for a session before
     * it is re-queued behind its advanced pass. */
    int batch_frames = 4;

    /** Overload detector: when the scheduler-wide backlog (queued +
     * in-flight frames) reaches this depth, thumbnail submits are shed
     * with the transient kUnavailable; at 2x vod is shed too, at 3x
     * even live. Any active shedding also rejects new admissions
     * kUnavailable. 0 disables the detector entirely. */
    int shed_queue_depth = 0;

    /** Optional latency signal: a sliding-window p99 completion
     * latency above this sheds at least the thumbnail class while work
     * is pending. 0 disables. */
    double shed_p99_seconds = 0.0;

    /** Completion-latency sliding window size for the p99 signal. */
    int shed_latency_window = 256;

    /** Hysteresis: a shed level steps back down only once the backlog
     * has drained below this fraction of the level's trigger depth, so
     * the detector cannot flap around a threshold. */
    double shed_recover_fraction = 0.5;
};

/** Scheduler-wide observability snapshot. */
struct SchedulerStats {
    int sessions_open = 0;
    s64 sessions_admitted = 0;
    s64 sessions_rejected = 0;  ///< hard-budget rejections (terminal)
    s64 sessions_failed = 0;    ///< entered the terminal failed state
    s64 frames_dispatched = 0;  ///< inputs handed to codecs (incl. misses)
    /** Bytes currently charged against memory_budget_bytes. A failed
     * session's charge is refunded the moment it fails, not at
     * close(). */
    size_t estimated_bytes = 0;

    // ---- overload detector ----
    s64 backlog = 0;     ///< frames enqueued but not yet completed
    int shed_level = 0;  ///< 0 none, 1 thumbnail, 2 +vod, 3 +live
    /** Submits rejected kUnavailable by shedding, per SessionClass. */
    s64 submits_shed[kSessionClassCount] = {};
    s64 admissions_shed = 0;  ///< admissions rejected while shedding
    s64 shed_episodes = 0;    ///< completed overload episodes
    /** Summed episode durations — divide by shed_episodes for the mean
     * time-to-recovery. Excludes an episode still in progress. */
    double shed_seconds_total = 0;

    /** Shared-arena ground truth across all sessions. */
    FramePoolStats arena;
};

/**
 * Admission control + fair-share dispatch for CodecSessions. Open
 * sessions keep the scheduler's core alive, so they remain usable (and
 * drainable) even if the SessionScheduler object is destroyed first —
 * destruction only stops *new* admissions and waits for queued work.
 * Thread-safe.
 */
class SessionScheduler
{
  public:
    explicit SessionScheduler(SchedulerOptions options);

    /** Blocks until every queued input of every session has been
     * processed, then detaches. */
    ~SessionScheduler();

    SessionScheduler(const SessionScheduler &) = delete;
    SessionScheduler &operator=(const SessionScheduler &) = delete;

    /**
     * Admit a streaming encode session wrapping @p encoder (built by
     * the caller — typically make_encoder() — with
     * @p config.codec_config). On success the codec is attached to the
     * scheduler's shared arena and the session is charged against the
     * budgets until closed/destroyed; over budget returns
     * resource-exhausted and charges nothing.
     */
    StatusOr<std::shared_ptr<CodecSession>>
    open_encode(std::unique_ptr<VideoEncoder> encoder,
                SessionConfig config);

    /** Decode-direction counterpart of open_encode(). */
    StatusOr<std::shared_ptr<CodecSession>>
    open_decode(std::unique_ptr<VideoDecoder> decoder,
                SessionConfig config);

    /** The arena every admitted session recycles through. */
    const FrameArena &arena() const;

    SchedulerStats stats() const;

    /** Resolved worker count. */
    int workers() const;

  private:
    StatusOr<std::shared_ptr<CodecSession>>
    open(std::unique_ptr<VideoEncoder> encoder,
         std::unique_ptr<VideoDecoder> decoder, SessionConfig config);

    std::shared_ptr<detail::SchedulerCore> core_;
};

}  // namespace hdvb

#endif  // HDVB_SERVE_SCHEDULER_H
