/**
 * @file
 * Measured comparison of one transcode codec pair: analysis-reuse
 * transcode against the full re-encode oracle, with repeat/CoV
 * statistics in the style of the regression sweep. Shared by
 * bench/transcode_sweep (standalone hdvb-transcode/1 reports) and
 * bench/regression_sweep (the "transcode" BENCH section).
 */
#ifndef HDVB_TRANSCODE_TRANSCODE_BENCH_H
#define HDVB_TRANSCODE_TRANSCODE_BENCH_H

#include <string>

#include "synth/synth.h"
#include "transcode/transcode.h"

namespace hdvb {

/** One measured from->to pair. fps numbers are medians over the timed
 * repeats; the _cov fields carry the run-to-run noise estimate. */
struct TranscodePairBench {
    CodecId from = CodecId::kMpeg2;
    CodecId to = CodecId::kH264;
    int frames = 0;
    int repeats = 0;

    double hint_fps = 0.0;  ///< analysis-reuse transcode, median
    double hint_fps_cov = 0.0;
    double full_fps = 0.0;  ///< full re-encode oracle, median
    double full_fps_cov = 0.0;
    double speedup = 0.0;   ///< hint_fps / full_fps

    /** End-to-end PSNR-Y of each output against the pristine source;
     * delta = hint - full (negative: hints cost quality). */
    double psnr_hint_db = 0.0;
    double psnr_full_db = 0.0;
    double psnr_delta_db = 0.0;

    s64 bits_in = 0;
    s64 bits_hint = 0;
    s64 bits_full = 0;

    HintMapStats hints;  ///< from the last hinted run

    /** "mpeg2_to_h264" — the metric/JSON key. */
    std::string pair_name() const;
};

/**
 * Encode @p frames of @p sequence in @p from at @p res, then transcode
 * it to @p to @p repeats times with analysis reuse on and off,
 * measuring fps, quality, and bits. One warm-up run per mode precedes
 * the timed repeats.
 */
StatusOr<TranscodePairBench>
bench_transcode_pair(CodecId from, CodecId to, Resolution res,
                     SequenceId sequence, int frames, int repeats);

}  // namespace hdvb

#endif  // HDVB_TRANSCODE_TRANSCODE_BENCH_H
