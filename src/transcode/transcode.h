/**
 * @file
 * Fast transcode: a decode session and an encode session pipelined
 * over the serve substrate, with optional analysis reuse.
 *
 * The engine opens the source decoder and the target encoder as a pair
 * of scheduled CodecSessions on one SessionScheduler and pumps coded
 * packets in, decoded frames across, and re-coded packets out, honoring
 * session backpressure (a full queue is waited out, never dropped).
 *
 * With TranscodeOptions::reuse_analysis the decoder exports per-MB side
 * info — motion vectors, intra/inter mode, reference index, quantizer —
 * into a HintMap (see src/codec/side_info.h) keyed by display index,
 * and the encoder consumes it to seed motion-search centers and prune
 * mode decisions. Hints are advisory: every vector is clamped by the
 * motion estimator's candidate bounds and every pruned branch keeps a
 * legal fallback, so the hinted stream is always decodable; full
 * analysis (reuse off) remains the correctness oracle. The ordering is
 * race-free by construction: a frame can only reach the encoder after
 * the decoder emitted it, and the decoder pushes the frame's side info
 * before emitting it.
 */
#ifndef HDVB_TRANSCODE_TRANSCODE_H
#define HDVB_TRANSCODE_TRANSCODE_H

#include "codec/side_info.h"
#include "container/container.h"
#include "core/benchmark.h"

namespace hdvb {

/** How one transcode should run. */
struct TranscodeOptions {
    CodecId from = CodecId::kMpeg2;
    CodecId to = CodecId::kH264;

    /** Source-decoder configuration; geometry must match the input
     * stream. reuse_analysis requires error_resilience off (the
     * resilient decode path conceals, so its vectors are not
     * trustworthy hints). */
    CodecConfig decoder_config;

    /** Target-encoder configuration. */
    CodecConfig encoder_config;

    /** Export decoder side info and seed the encoder with it. */
    bool reuse_analysis = true;

    /** Scheduler dispatch workers; 2 keeps decode and encode truly
     * pipelined. Codec band threads are extra (config .threads). */
    int workers = 2;

    /** Per-session input queue bound (backpressure depth). */
    size_t queue_capacity = 16;
};

/** What one transcode did, timed around the full pump. */
struct TranscodeStats {
    s64 frames = 0;     ///< pictures carried across the pipe
    double seconds = 0.0;
    s64 bits_in = 0;
    s64 bits_out = 0;
    HintMapStats hints;  ///< all-zero when reuse was off

    double
    fps() const
    {
        return seconds > 0.0 ? static_cast<double>(frames) / seconds
                             : 0.0;
    }
};

struct TranscodeResult {
    EncodedStream stream;
    TranscodeStats stats;
};

/**
 * One configured transcode pipeline. run() may be called repeatedly;
 * each call builds a fresh codec pair and scheduler, so results are
 * independent and the engine itself is stateless between runs.
 */
class TranscodeEngine
{
  public:
    explicit TranscodeEngine(TranscodeOptions options);

    const TranscodeOptions &options() const { return options_; }

    /** Transcode @p in end to end (flushing both codecs). */
    StatusOr<TranscodeResult> run(const EncodedStream &in) const;

  private:
    TranscodeOptions options_;
};

/** Options with both configs derived from the benchmark preset for
 * @p res / @p simd (the common CLI and bench setup). */
TranscodeOptions transcode_benchmark_options(CodecId from, CodecId to,
                                             Resolution res,
                                             SimdLevel simd);

}  // namespace hdvb

#endif  // HDVB_TRANSCODE_TRANSCODE_H
