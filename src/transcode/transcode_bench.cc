#include "transcode/transcode_bench.h"

#include <memory>
#include <utility>
#include <vector>

#include "common/stats.h"
#include "core/runner.h"
#include "metrics/psnr.h"

namespace hdvb {

namespace {

/** End-to-end PSNR-Y of @p stream against the pristine synthetic
 * @p sequence it was transcoded from. */
StatusOr<double>
stream_psnr_y(const EncodedStream &stream, CodecId codec,
              const CodecConfig &config, SequenceId sequence)
{
    StatusOr<std::unique_ptr<VideoDecoder>> decoder =
        make_decoder(codec, config);
    if (!decoder.is_ok())
        return decoder.status();
    std::vector<Frame> frames;
    for (const Packet &packet : stream.packets) {
        const Status status = decoder.value()->decode(packet, &frames);
        if (!status.is_ok())
            return status;
    }
    decoder.value()->flush(&frames);
    SyntheticSource pristine(sequence, config.width, config.height);
    PsnrAccumulator acc;
    for (const Frame &frame : frames)
        acc.add(pristine.at(static_cast<int>(frame.poc())), frame);
    return acc.psnr_y();
}

}  // namespace

std::string
TranscodePairBench::pair_name() const
{
    return std::string(codec_name(from)) + "_to_" + codec_name(to);
}

StatusOr<TranscodePairBench>
bench_transcode_pair(CodecId from, CodecId to, Resolution res,
                     SequenceId sequence, int frames, int repeats)
{
    if (frames < 1 || repeats < 1)
        return Status::invalid_argument(
            "bench_transcode_pair needs frames >= 1 and repeats >= 1");

    // Source material, generated once and reused by every run.
    BenchPoint point;
    point.codec = from;
    point.sequence = sequence;
    point.resolution = res;
    point.frames = frames;
    StatusOr<EncodeRun> source = run_encode(point);
    if (!source.is_ok())
        return source.status();
    const EncodedStream &in = source.value().stream;

    TranscodePairBench bench;
    bench.from = from;
    bench.to = to;
    bench.frames = frames;
    bench.repeats = repeats;
    bench.bits_in = in.total_bits();

    TranscodeOptions opt =
        transcode_benchmark_options(from, to, res, best_simd_level());

    for (const bool reuse : {true, false}) {
        opt.reuse_analysis = reuse;
        const TranscodeEngine engine(opt);

        // Warm-up (pools, page faults), then the timed repeats.
        std::vector<double> fps;
        EncodedStream last;
        for (int run = 0; run < repeats + 1; ++run) {
            StatusOr<TranscodeResult> result = engine.run(in);
            if (!result.is_ok())
                return result.status();
            if (run == 0)
                continue;
            fps.push_back(result.value().stats.fps());
            if (run == repeats) {
                last = std::move(result.value().stream);
                if (reuse)
                    bench.hints = result.value().stats.hints;
            }
        }
        const SampleSummary summary = summarize(std::move(fps));

        const StatusOr<double> psnr =
            stream_psnr_y(last, to, opt.encoder_config, sequence);
        if (!psnr.is_ok())
            return psnr.status();

        if (reuse) {
            bench.hint_fps = summary.median;
            bench.hint_fps_cov = summary.cov;
            bench.psnr_hint_db = psnr.value();
            bench.bits_hint = last.total_bits();
        } else {
            bench.full_fps = summary.median;
            bench.full_fps_cov = summary.cov;
            bench.psnr_full_db = psnr.value();
            bench.bits_full = last.total_bits();
        }
    }

    bench.speedup =
        bench.full_fps > 0.0 ? bench.hint_fps / bench.full_fps : 0.0;
    bench.psnr_delta_db = bench.psnr_hint_db - bench.psnr_full_db;
    return bench;
}

}  // namespace hdvb
