#include "transcode/transcode.h"

#include <deque>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "metrics/timer.h"
#include "serve/scheduler.h"

namespace hdvb {

namespace {

/** Move every polled decode output into @p pending, then feed the
 * encoder as long as it has queue space. would_block() is an exact
 * gate here — this pump is the session's only submitter — so a frame
 * is never moved into a submit that would reject it. */
Status
transfer_frames(CodecSession &dec, CodecSession &enc,
                std::deque<Frame> *pending, std::vector<Frame> *scratch,
                s64 *frames)
{
    dec.poll(scratch);
    for (Frame &frame : *scratch)
        pending->push_back(std::move(frame));
    scratch->clear();
    while (!pending->empty() && !enc.would_block()) {
        const StatusOr<Ticket> ticket =
            enc.submit(std::move(pending->front()));
        if (!ticket.is_ok())
            return ticket.status();
        pending->pop_front();
        ++*frames;
    }
    return Status::ok();
}

}  // namespace

TranscodeEngine::TranscodeEngine(TranscodeOptions options)
    : options_(std::move(options))
{
}

StatusOr<TranscodeResult>
TranscodeEngine::run(const EncodedStream &in) const
{
    const TranscodeOptions &opt = options_;
    if (in.codec != codec_name(opt.from))
        return Status::invalid_argument(
            "input stream is \"" + in.codec + "\", engine expects \"" +
            codec_name(opt.from) + "\"");
    if (in.width != opt.decoder_config.width ||
        in.height != opt.decoder_config.height)
        return Status::invalid_argument(
            "input stream geometry does not match the decoder config");

    StatusOr<std::unique_ptr<VideoDecoder>> decoder =
        make_decoder(opt.from, opt.decoder_config);
    if (!decoder.is_ok())
        return decoder.status();
    StatusOr<std::unique_ptr<VideoEncoder>> encoder =
        make_encoder(opt.to, opt.encoder_config);
    if (!encoder.is_ok())
        return encoder.status();

    // Wire the side-info channel before the codecs enter the
    // scheduler: once sessions own them, workers may run them.
    std::shared_ptr<HintMap> hints;
    if (opt.reuse_analysis) {
        hints = std::make_shared<HintMap>();
        const Status exported =
            decoder.value()->export_side_info(hints.get());
        if (!exported.is_ok())
            return exported;
        const Status hinted = encoder.value()->use_hints(hints);
        if (!hinted.is_ok())
            return hinted;
    }

    SchedulerOptions sched_opt;
    sched_opt.workers = opt.workers;
    SessionScheduler scheduler(sched_opt);

    SessionConfig dec_cfg;
    dec_cfg.name = std::string("transcode-decode-") + in.codec;
    dec_cfg.codec_config = opt.decoder_config;
    dec_cfg.queue_capacity = opt.queue_capacity;
    SessionConfig enc_cfg;
    enc_cfg.name = std::string("transcode-encode-") + codec_name(opt.to);
    enc_cfg.codec_config = opt.encoder_config;
    enc_cfg.queue_capacity = opt.queue_capacity;

    StatusOr<std::shared_ptr<CodecSession>> dec_session =
        scheduler.open_decode(std::move(decoder.value()), dec_cfg);
    if (!dec_session.is_ok())
        return dec_session.status();
    StatusOr<std::shared_ptr<CodecSession>> enc_session =
        scheduler.open_encode(std::move(encoder.value()), enc_cfg);
    if (!enc_session.is_ok())
        return enc_session.status();
    CodecSession &dec = *dec_session.value();
    CodecSession &enc = *enc_session.value();

    TranscodeResult result;
    result.stream.codec = codec_name(opt.to);
    result.stream.width = opt.encoder_config.width;
    result.stream.height = opt.encoder_config.height;
    result.stream.fps_num = opt.encoder_config.fps_num;
    result.stream.fps_den = opt.encoder_config.fps_den;

    std::deque<Frame> pending;
    std::vector<Frame> scratch;
    s64 frames = 0;

    WallTimer timer;
    timer.start();

    // Feed packets in coding order, shuttling decoded frames across
    // and re-coded packets out as they appear. Backpressure on either
    // queue yields to the scheduler workers instead of dropping.
    for (const Packet &packet : in.packets) {
        while (dec.would_block()) {
            const Status moved = transfer_frames(dec, enc, &pending,
                                                 &scratch, &frames);
            if (!moved.is_ok())
                return moved;
            enc.poll(&result.stream.packets);
            std::this_thread::yield();
        }
        Packet copy = packet;
        const StatusOr<Ticket> ticket = dec.submit(std::move(copy));
        if (!ticket.is_ok())
            return ticket.status();
        const Status moved = transfer_frames(dec, enc, &pending,
                                             &scratch, &frames);
        if (!moved.is_ok())
            return moved;
        enc.poll(&result.stream.packets);
    }

    // Flush the decoder (reorder tail), carry the remaining frames
    // across, then flush the encoder.
    const Status dec_status = dec.close();
    if (!dec_status.is_ok())
        return dec_status;
    for (;;) {
        const Status moved = transfer_frames(dec, enc, &pending,
                                             &scratch, &frames);
        if (!moved.is_ok())
            return moved;
        if (pending.empty())
            break;
        enc.poll(&result.stream.packets);
        std::this_thread::yield();
    }
    const Status enc_status = enc.close();
    if (!enc_status.is_ok())
        return enc_status;
    enc.poll(&result.stream.packets);

    timer.stop();

    result.stats.frames = frames;
    result.stats.seconds = timer.seconds();
    result.stats.bits_in = in.total_bits();
    result.stats.bits_out = result.stream.total_bits();
    if (hints)
        result.stats.hints = hints->stats();
    return result;
}

TranscodeOptions
transcode_benchmark_options(CodecId from, CodecId to, Resolution res,
                            SimdLevel simd)
{
    TranscodeOptions opt;
    opt.from = from;
    opt.to = to;
    opt.decoder_config = benchmark_config(from, res, simd);
    opt.encoder_config = benchmark_config(to, res, simd);
    return opt;
}

}  // namespace hdvb
