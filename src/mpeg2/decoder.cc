/**
 * @file
 * MPEG-2-class decoder: exact mirror of the encoder syntax; shares the
 * reconstruction helpers so decoder output is bit-identical to the
 * encoder's closed-loop reconstruction.
 */
#include "mpeg2/mpeg2.h"

#include <memory>
#include <vector>

#include "bitstream/bit_reader.h"
#include "bitstream/exp_golomb.h"
#include "bitstream/resync.h"
#include "codec/conceal.h"
#include "codec/mpeg_block.h"
#include "codec/side_info.h"
#include "codec/run_level.h"
#include "common/check.h"
#include "common/thread_pool.h"
#include "dsp/quant.h"
#include "mc/mc.h"
#include "me/me.h"

namespace hdvb {

namespace {

using mpeg2::kDcPredReset;
using mpeg2::kDcStep;

class Mpeg2Decoder final : public DecoderBase
{
  public:
    explicit Mpeg2Decoder(const CodecConfig &cfg)
        : DecoderBase(cfg),
          dsp_(get_dsp(cfg.simd)),
          intra_rl_(RunLevelCoder::get(RunLevelProfile::kMpeg2Intra)),
          inter_rl_(RunLevelCoder::get(RunLevelProfile::kMpeg2Inter)),
          mb_w_(cfg.width / 16),
          mb_h_(cfg.height / 16),
          pool_(cfg.threads > 1
                    ? std::make_unique<ThreadPool>(cfg.threads)
                    : nullptr)
    {
    }

    const char *name() const override { return "mpeg2"; }

  protected:
    Status decode_picture(const Packet &packet, Frame *out) override;

  private:
    struct MbState {
        BitReader *br;
        Frame *frame;
        PictureType type;
        const MpegQuantizer *intra_quant;
        const MpegQuantizer *inter_quant;
        int mbx;
        int mby;
        int dc_pred[3];
        MotionVector left_fwd;
        MotionVector left_bwd;
        /** Side-info slot for the current MB (serial path only). */
        MbSideInfo *rec = nullptr;
    };

    bool decode_intra_mb(MbState &st);
    bool decode_inter_mb(MbState &st, bool is_b, int mode);
    void recon_skip_mb(Frame *frame, PictureType type, int mbx, int mby);
    Status decode_picture_resilient(const Packet &packet, Frame *out);
    bool decode_resilient_row(MbState &st, const std::vector<u8> &bytes,
                              int mby, int *bad_from);
    void conceal_row(Frame *out, PictureType type, int from, int mby);
    void predict_mb(const Frame &fwd_ref, const Frame *bwd_ref,
                    MotionVector fwd, MotionVector bwd, int mbx,
                    int mby, Pixel luma[16 * 16], Pixel cb[8 * 8],
                    Pixel cr[8 * 8]) const;
    MotionVector clamp_mv(MotionVector mv, int mbx, int mby) const;

    const Dsp &dsp_;
    const RunLevelCoder &intra_rl_;
    const RunLevelCoder &inter_rl_;
    int mb_w_;
    int mb_h_;
    std::unique_ptr<ThreadPool> pool_;  ///< row pool (threads > 1)

    Frame prev_anchor_;
    Frame last_anchor_;
};

MotionVector
Mpeg2Decoder::clamp_mv(MotionVector mv, int mbx, int mby) const
{
    // Half-sample units; keep all reads inside the extended border even
    // for corrupt input. The margin allows the encoder's sub-sample
    // refinement drift (kMeMargin + 4 still clears kRefBorder with the
    // interpolation taps).
    const int margin = kMeMargin + 4;
    const int x0 = mbx * 16;
    const int y0 = mby * 16;
    const int min_x = 2 * (-margin - x0);
    const int max_x = 2 * (config().width + margin - x0 - 16);
    const int min_y = 2 * (-margin - y0);
    const int max_y = 2 * (config().height + margin - y0 - 16);
    return {static_cast<s16>(clamp<int>(mv.x, min_x, max_x)),
            static_cast<s16>(clamp<int>(mv.y, min_y, max_y))};
}

void
Mpeg2Decoder::predict_mb(const Frame &fwd_ref, const Frame *bwd_ref,
                         MotionVector fwd, MotionVector bwd, int mbx,
                         int mby, Pixel luma[16 * 16], Pixel cb[8 * 8],
                         Pixel cr[8 * 8]) const
{
    const int lx = mbx * 16;
    const int ly = mby * 16;
    const int cx = mbx * 8;
    const int cy = mby * 8;
    mc_halfpel(fwd_ref.luma(), lx, ly, fwd, luma, 16, 16, 16, dsp_);
    const MotionVector fc = chroma_mv_from_halfpel(fwd);
    mc_halfpel(fwd_ref.cb(), cx, cy, fc, cb, 8, 8, 8, dsp_);
    mc_halfpel(fwd_ref.cr(), cx, cy, fc, cr, 8, 8, 8, dsp_);
    if (bwd_ref != nullptr) {
        Pixel bl[16 * 16], bc[8 * 8], br2[8 * 8];
        mc_halfpel(bwd_ref->luma(), lx, ly, bwd, bl, 16, 16, 16, dsp_);
        const MotionVector bcv = chroma_mv_from_halfpel(bwd);
        mc_halfpel(bwd_ref->cb(), cx, cy, bcv, bc, 8, 8, 8, dsp_);
        mc_halfpel(bwd_ref->cr(), cx, cy, bcv, br2, 8, 8, 8, dsp_);
        dsp_.avg_rect(luma, 16, luma, 16, bl, 16, 16, 16);
        dsp_.avg_rect(cb, 8, cb, 8, bc, 8, 8, 8);
        dsp_.avg_rect(cr, 8, cr, 8, br2, 8, 8, 8);
    }
}

bool
Mpeg2Decoder::decode_intra_mb(MbState &st)
{
    const int lx = st.mbx * 16;
    const int ly = st.mby * 16;
    for (int b = 0; b < 6; ++b) {
        const int comp = b < 4 ? 0 : b - 3;
        Plane &plane = st.frame->plane(comp);
        const int x = b < 4 ? lx + (b & 1) * 8 : st.mbx * 8;
        const int y = b < 4 ? ly + (b >> 1) * 8 : st.mby * 8;

        const int dc_level = st.dc_pred[comp] + read_se(*st.br);
        if (dc_level < 0 || dc_level > 255 || st.br->has_error())
            return false;
        st.dc_pred[comp] = dc_level;

        Coeff blk[64] = {};
        if (!intra_rl_.decode_block(*st.br, blk, 1))
            return false;

        Pixel *dst = plane.row(y) + x;
        zero_block8(dst, plane.stride());
        mpeg_recon_block(blk, *st.intra_quant, dc_level * kDcStep, dst,
                         plane.stride(), dsp_);
    }
    st.left_fwd = st.left_bwd = MotionVector{};
    if (st.rec != nullptr)
        st.rec->mode = MbSideInfo::kIntra;
    return true;
}

bool
Mpeg2Decoder::decode_inter_mb(MbState &st, bool is_b, int mode)
{
    BitReader &br = *st.br;
    bool use_fwd = true;
    bool use_bwd = false;
    if (is_b) {
        use_fwd = mode == mpeg2::kBFwd || mode == mpeg2::kBBi;
        use_bwd = mode == mpeg2::kBBwd || mode == mpeg2::kBBi;
    }

    MotionVector fwd{}, bwd{};
    if (use_fwd) {
        fwd = {static_cast<s16>(st.left_fwd.x + read_se(br)),
               static_cast<s16>(st.left_fwd.y + read_se(br))};
        fwd = clamp_mv(fwd, st.mbx, st.mby);
    }
    if (use_bwd) {
        bwd = {static_cast<s16>(st.left_bwd.x + read_se(br)),
               static_cast<s16>(st.left_bwd.y + read_se(br))};
        bwd = clamp_mv(bwd, st.mbx, st.mby);
    }
    const int cbp = static_cast<int>(br.get_bits(6));
    if (br.has_error())
        return false;

    Coeff blocks[6][64];
    for (int b = 0; b < 6; ++b) {
        if (cbp & (1 << b)) {
            std::memset(blocks[b], 0, sizeof(blocks[b]));
            if (!inter_rl_.decode_block(br, blocks[b], 0))
                return false;
        }
    }

    Pixel luma[16 * 16], cb[8 * 8], cr[8 * 8];
    const Frame &fwd_ref = is_b ? prev_anchor_ : last_anchor_;
    if (is_b && !use_fwd) {
        predict_mb(last_anchor_, nullptr, bwd, {}, st.mbx, st.mby, luma,
                   cb, cr);
    } else {
        predict_mb(fwd_ref, use_bwd ? &last_anchor_ : nullptr, fwd, bwd,
                   st.mbx, st.mby, luma, cb, cr);
    }

    const int lx = st.mbx * 16;
    const int ly = st.mby * 16;
    for (int b = 0; b < 6; ++b) {
        const int comp = b < 4 ? 0 : b - 3;
        Plane &plane = st.frame->plane(comp);
        const int x = b < 4 ? lx + (b & 1) * 8 : st.mbx * 8;
        const int y = b < 4 ? ly + (b >> 1) * 8 : st.mby * 8;
        const Pixel *pp;
        int ps;
        if (b < 4) {
            pp = luma + (b >> 1) * 8 * 16 + (b & 1) * 8;
            ps = 16;
        } else {
            pp = b == 4 ? cb : cr;
            ps = 8;
        }
        Pixel *dst = plane.row(y) + x;
        dsp_.copy_rect(dst, plane.stride(), pp, ps, 8, 8);
        if (cbp & (1 << b)) {
            mpeg_recon_block(blocks[b], *st.inter_quant, -1, dst,
                             plane.stride(), dsp_);
        }
    }

    st.left_fwd = use_fwd ? fwd : MotionVector{};
    st.left_bwd = use_bwd ? bwd : MotionVector{};
    st.dc_pred[0] = st.dc_pred[1] = st.dc_pred[2] = kDcPredReset;
    if (st.rec != nullptr) {
        // Export in quarter-sample units (MPEG-2 codes half-sample).
        st.rec->mode = !is_b ? MbSideInfo::kInterFwd
                       : use_fwd && use_bwd
                           ? MbSideInfo::kInterBi
                           : (use_fwd ? MbSideInfo::kInterFwd
                                      : MbSideInfo::kInterBwd);
        st.rec->fwd = {static_cast<s16>(fwd.x * 2),
                       static_cast<s16>(fwd.y * 2)};
        st.rec->bwd = {static_cast<s16>(bwd.x * 2),
                       static_cast<s16>(bwd.y * 2)};
    }
    return true;
}

void
Mpeg2Decoder::recon_skip_mb(Frame *frame, PictureType type, int mbx,
                            int mby)
{
    Pixel luma[16 * 16], cb[8 * 8], cr[8 * 8];
    if (type == PictureType::kB) {
        predict_mb(prev_anchor_, &last_anchor_, {}, {}, mbx, mby, luma,
                   cb, cr);
    } else {
        predict_mb(last_anchor_, nullptr, {}, {}, mbx, mby, luma, cb,
                   cr);
    }
    for (int comp = 0; comp < 3; ++comp) {
        Plane &plane = frame->plane(comp);
        const int size = comp == 0 ? 16 : 8;
        const Pixel *pp = comp == 0 ? luma : (comp == 1 ? cb : cr);
        dsp_.copy_rect(plane.row(mby * size) + mbx * size,
                       plane.stride(), pp, size, size, size);
    }
}

void
Mpeg2Decoder::conceal_row(Frame *out, PictureType type, int from,
                          int mby)
{
    for (int mbx = from; mbx < mb_w_; ++mbx) {
        if (type == PictureType::kI || last_anchor_.empty())
            conceal_mb_dc(out, mbx, mby);
        else
            conceal_mb_from_ref(out, last_anchor_, mbx, mby);
    }
}

bool
Mpeg2Decoder::decode_resilient_row(MbState &st,
                                   const std::vector<u8> &bytes, int mby,
                                   int *bad_from)
{
    BitReader br(bytes);
    st.br = &br;
    st.mby = mby;
    st.dc_pred[0] = st.dc_pred[1] = st.dc_pred[2] = kDcPredReset;
    st.left_fwd = st.left_bwd = MotionVector{};
    *bad_from = 0;

    if (st.type == PictureType::kI) {
        for (int mbx = 0; mbx < mb_w_; ++mbx) {
            st.mbx = mbx;
            if (!decode_intra_mb(st)) {
                *bad_from = mbx;
                return false;
            }
        }
    } else {
        // Row-scoped skip runs: a run before each coded MB, plus a
        // trailing run only when the row ends in skips.
        const bool is_b = st.type == PictureType::kB;
        int mbx = 0;
        while (mbx < mb_w_) {
            const int run = static_cast<int>(read_ue(br));
            if (br.has_error() || run > mb_w_ - mbx) {
                *bad_from = mbx;
                return false;
            }
            for (int i = 0; i < run; ++i) {
                st.mbx = mbx;
                recon_skip_mb(st.frame, st.type, mbx, mby);
                st.left_fwd = st.left_bwd = MotionVector{};
                st.dc_pred[0] = st.dc_pred[1] = st.dc_pred[2] =
                    kDcPredReset;
                ++mbx;
            }
            if (mbx >= mb_w_)
                break;
            st.mbx = mbx;
            bool ok;
            if (is_b) {
                const u32 mode = read_ue(br);
                if (mode > 3 || br.has_error()) {
                    *bad_from = mbx;
                    return false;
                }
                ok = mode == mpeg2::kBIntra
                         ? decode_intra_mb(st)
                         : decode_inter_mb(st, true,
                                           static_cast<int>(mode));
            } else {
                const int bit = br.get_bit();
                if (br.has_error()) {
                    *bad_from = mbx;
                    return false;
                }
                ok = bit == mpeg2::kPIntra
                         ? decode_intra_mb(st)
                         : decode_inter_mb(st, false, 0);
            }
            if (!ok) {
                *bad_from = mbx;
                return false;
            }
            ++mbx;
        }
    }

    // A wrong or missing sentinel means the row decoded to garbage
    // without tripping a syntax error; treat the whole row as lost.
    const u32 sentinel = br.get_bits(8);
    if (br.has_error() || sentinel != kRowSentinel)
        return false;
    if (bytes.size() * 8 - br.bits_consumed() >= 8)
        return false;  // trailing junk beyond alignment padding
    return true;
}

Status
Mpeg2Decoder::decode_picture_resilient(const Packet &packet, Frame *out)
{
    const std::vector<ResyncMarker> cands =
        scan_resync_markers(packet.data, mb_h_);
    std::vector<ResyncMarker> markers;
    int last_row = -1;
    for (const ResyncMarker &m : cands) {
        if (m.row > last_row) {
            markers.push_back(m);
            last_row = m.row;
        }
    }
    if (markers.empty())
        return Status::corrupt_stream("no resync markers survive");

    const std::vector<u8> header =
        unescape_emulation(packet.data.data(), markers.front().pos);
    BitReader hbr(header);
    const PictureType type = static_cast<PictureType>(hbr.get_bits(2));
    const int qscale = static_cast<int>(hbr.get_bits(5));
    hbr.skip_bits(16);  // poc_lsb, unused
    if (hbr.has_error() || type != packet.type)
        return Status::corrupt_stream("bad mpeg2 picture header");
    if (qscale < 1 || qscale > 31)
        return Status::corrupt_stream("bad mpeg2 qscale");
    if (type != PictureType::kI && last_anchor_.empty())
        return Status::corrupt_stream("inter picture without reference");
    if (type == PictureType::kB && prev_anchor_.empty())
        return Status::corrupt_stream("B picture without two references");

    const MpegQuantizer intra_quant(kMpegIntraMatrix, qscale, 32, 4);
    const MpegQuantizer inter_quant(kMpegInterMatrix, qscale, 8, 4);

    *out = new_frame(kRefBorder);

    // Map each surviving marker to its row's byte segment.
    std::vector<std::pair<const u8 *, size_t>> segments(
        static_cast<size_t>(mb_h_), {nullptr, 0});
    for (size_t i = 0; i < markers.size(); ++i) {
        const size_t start = markers[i].pos + 4;
        const size_t end = i + 1 < markers.size() ? markers[i + 1].pos
                                                  : packet.data.size();
        segments[static_cast<size_t>(markers[i].row)] = {
            packet.data.data() + start, end - start};
    }

    // Rows are fully independent (fresh per-row entropy chunk and
    // predictors; inter prediction reads only the anchor frames), so
    // they decode in parallel when the codec has a band pool.
    // Concealment runs afterwards as a serial top-to-bottom pass —
    // spatial DC concealment reads the pixel row above, which is in
    // its final state by then, exactly as in the serial schedule.
    struct RowResult {
        bool ok = false;
        int bad_from = 0;
    };
    std::vector<RowResult> rows(static_cast<size_t>(mb_h_));
    auto decode_row = [&](int mby) {
        const auto &seg = segments[static_cast<size_t>(mby)];
        if (seg.first == nullptr)
            return;
        MbState st{};
        st.frame = out;
        st.type = type;
        st.intra_quant = &intra_quant;
        st.inter_quant = &inter_quant;
        const std::vector<u8> row_bytes =
            unescape_emulation(seg.first, seg.second);
        RowResult &r = rows[static_cast<size_t>(mby)];
        r.ok = decode_resilient_row(st, row_bytes, mby, &r.bad_from);
    };
    if (pool_ != nullptr) {
        parallel_for(*pool_, mb_h_,
                     [&](int mby, int) { decode_row(mby); });
    } else {
        for (int mby = 0; mby < mb_h_; ++mby)
            decode_row(mby);
    }

    bool in_error = false;
    bool any_ok = false;
    for (int mby = 0; mby < mb_h_; ++mby) {
        const RowResult &r = rows[static_cast<size_t>(mby)];
        if (r.ok) {
            if (in_error) {
                ++stats_.resyncs;
                in_error = false;
            }
            any_ok = true;
        } else {
            in_error = true;
            conceal_row(out, type, r.bad_from, mby);
            stats_.mbs_concealed += mb_w_ - r.bad_from;
        }
    }
    if (!any_ok)
        return Status::corrupt_stream("every row of the picture lost");

    if (type != PictureType::kB) {
        out->extend_borders();
        prev_anchor_ = std::move(last_anchor_);
        last_anchor_ = new_frame(kRefBorder);
        last_anchor_.copy_from(*out);
        last_anchor_.extend_borders();
    }
    return Status::ok();
}

Status
Mpeg2Decoder::decode_picture(const Packet &packet, Frame *out)
{
    if (config().error_resilience)
        return decode_picture_resilient(packet, out);

    BitReader br(packet.data);
    const PictureType type = static_cast<PictureType>(br.get_bits(2));
    const int qscale = static_cast<int>(br.get_bits(5));
    br.skip_bits(16);  // poc_lsb, unused
    if (br.has_error() || type != packet.type)
        return Status::corrupt_stream("bad mpeg2 picture header");
    if (qscale < 1 || qscale > 31)
        return Status::corrupt_stream("bad mpeg2 qscale");
    if (type != PictureType::kI && last_anchor_.empty())
        return Status::corrupt_stream("inter picture without reference");
    if (type == PictureType::kB && prev_anchor_.empty())
        return Status::corrupt_stream("B picture without two references");

    const MpegQuantizer intra_quant(kMpegIntraMatrix, qscale, 32, 4);
    const MpegQuantizer inter_quant(kMpegInterMatrix, qscale, 8, 4);

    *out = new_frame(kRefBorder);

    MbState st{};
    st.br = &br;
    st.frame = out;
    st.type = type;
    st.intra_quant = &intra_quant;
    st.inter_quant = &inter_quant;

    const bool record = side_info_sink() != nullptr;
    PictureSideInfo si;
    if (record) {
        si.poc = packet.poc;
        si.type = type;
        si.mb_w = mb_w_;
        si.mb_h = mb_h_;
        si.quant = qscale;
        si.mbs.resize(static_cast<size_t>(mb_w_) * mb_h_);
    }

    const bool is_b = type == PictureType::kB;
    if (type == PictureType::kI) {
        for (int mby = 0; mby < mb_h_; ++mby) {
            st.mby = mby;
            st.dc_pred[0] = st.dc_pred[1] = st.dc_pred[2] = kDcPredReset;
            for (int mbx = 0; mbx < mb_w_; ++mbx) {
                st.mbx = mbx;
                st.rec = record ? &si.at(mbx, mby) : nullptr;
                if (!decode_intra_mb(st))
                    return Status::corrupt_stream("bad intra MB data");
            }
        }
    } else {
        int mb = 0;
        const int total = mb_w_ * mb_h_;
        // Row-scoped predictor resets happen as mb crosses rows.
        int cur_row = -1;
        while (mb < total) {
            const int run = static_cast<int>(read_ue(br));
            if (br.has_error() || run > total - mb)
                return Status::corrupt_stream("bad skip run");
            for (int i = 0; i < run; ++i) {
                st.mbx = mb % mb_w_;
                st.mby = mb / mb_w_;
                if (st.mby != cur_row) {
                    cur_row = st.mby;
                    st.dc_pred[0] = st.dc_pred[1] = st.dc_pred[2] =
                        kDcPredReset;
                    st.left_fwd = st.left_bwd = MotionVector{};
                }
                recon_skip_mb(out, type, st.mbx, st.mby);
                if (record)
                    si.at(st.mbx, st.mby).mode = MbSideInfo::kSkip;
                st.left_fwd = st.left_bwd = MotionVector{};
                st.dc_pred[0] = st.dc_pred[1] = st.dc_pred[2] =
                    kDcPredReset;
                ++mb;
            }
            if (mb >= total)
                break;
            st.mbx = mb % mb_w_;
            st.mby = mb / mb_w_;
            if (st.mby != cur_row) {
                cur_row = st.mby;
                st.dc_pred[0] = st.dc_pred[1] = st.dc_pred[2] =
                    kDcPredReset;
                st.left_fwd = st.left_bwd = MotionVector{};
            }
            st.rec = record ? &si.at(st.mbx, st.mby) : nullptr;
            bool ok;
            if (is_b) {
                const u32 mode = read_ue(br);
                if (mode > 3 || br.has_error())
                    return Status::corrupt_stream("bad B mb type");
                ok = mode == mpeg2::kBIntra
                         ? decode_intra_mb(st)
                         : decode_inter_mb(st, true,
                                           static_cast<int>(mode));
            } else {
                const int bit = br.get_bit();
                if (br.has_error())
                    return Status::corrupt_stream("bad P mb type");
                ok = bit == mpeg2::kPIntra ? decode_intra_mb(st)
                                           : decode_inter_mb(st, false,
                                                             0);
            }
            if (!ok)
                return Status::corrupt_stream("bad MB data");
            ++mb;
        }
    }
    if (br.has_error())
        return Status::corrupt_stream("truncated mpeg2 picture");

    if (record)
        side_info_sink()->push(std::move(si));

    if (type != PictureType::kB) {
        out->extend_borders();
        prev_anchor_ = std::move(last_anchor_);
        last_anchor_ = new_frame(kRefBorder);
        last_anchor_.copy_from(*out);
        last_anchor_.extend_borders();
    }
    return Status::ok();
}

}  // namespace

std::unique_ptr<VideoDecoder>
create_mpeg2_decoder(const CodecConfig &config)
{
    HDVB_CHECK(config.validate().is_ok());
    return std::make_unique<Mpeg2Decoder>(config);
}

}  // namespace hdvb
