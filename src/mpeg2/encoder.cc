/**
 * @file
 * MPEG-2-class encoder: EPZS motion estimation, half-sample MC, 8x8 DCT
 * with the MPEG weighting matrices, run/level VLC entropy coding.
 *
 * Encoding is a two-phase pipeline so CodecConfig::threads can
 * parallelise the expensive part without touching a single emitted bit:
 * an analysis phase makes every decision (ME, mode, quantised levels,
 * reconstruction) into per-MB records — wavefront-ordered across MB
 * rows when a thread pool is configured — and a serial write phase
 * replays the records through the entropy coder in raster order. The
 * same two phases run back-to-back on the caller's thread when
 * threads == 1, so the bitstream is byte-identical for any thread
 * count (and identical to the historical single-phase encoder).
 */
#include "mpeg2/mpeg2.h"

#include <cstring>
#include <memory>
#include <vector>

#include "bitstream/bit_writer.h"
#include "bitstream/exp_golomb.h"
#include "bitstream/resync.h"
#include "codec/mpeg_block.h"
#include "codec/run_level.h"
#include "codec/side_info.h"
#include "common/check.h"
#include "common/thread_pool.h"
#include "common/wavefront.h"
#include "dsp/approx.h"
#include "dsp/quant.h"
#include "mc/mc.h"
#include "me/me.h"

namespace hdvb {

namespace {

using mpeg2::kDcPredReset;
using mpeg2::kDcStep;

/** Hint vector (quarter-sample) as a full-sample search candidate; the
 * estimator clamps all candidates to its legal window, so even an
 * out-of-range hint is safe. */
inline MotionVector
hint_full_pel(MotionVector quarter)
{
    return {static_cast<s16>(quarter.x >> 2),
            static_cast<s16>(quarter.y >> 2)};
}

/** Per-macroblock prediction buffers (luma 16x16, chroma 8x8 each). */
struct PredBuffers {
    Pixel luma[16 * 16];
    Pixel cb[8 * 8];
    Pixel cr[8 * 8];
};

class Mpeg2Encoder final : public EncoderBase
{
  public:
    explicit Mpeg2Encoder(const CodecConfig &cfg)
        : EncoderBase(cfg),
          dsp_(get_dsp(cfg.simd)),
          intra_quant_(kMpegIntraMatrix, cfg.qscale, 32, 4),
          // The MPEG-2-era inter quantiser truncates (narrow dead-zone
          // offset), one of the RD gaps to the later codecs.
          inter_quant_(kMpegInterMatrix, cfg.qscale, 8, 4),
          intra_rl_(RunLevelCoder::get(RunLevelProfile::kMpeg2Intra)),
          inter_rl_(RunLevelCoder::get(RunLevelProfile::kMpeg2Inter)),
          me_(MeParams{cfg.me_range, cfg.qscale * 16, 1, &dsp_,
                       cfg.approx}),
          dead_zone_sad_(mpeg_dead_zone_sad(cfg.qscale, 4, cfg.approx)),
          mb_w_(cfg.width / 16),
          mb_h_(cfg.height / 16),
          anchor_mvs_(static_cast<size_t>(mb_w_) * mb_h_),
          cur_mvs_(static_cast<size_t>(mb_w_) * mb_h_),
          records_(static_cast<size_t>(mb_w_) * mb_h_),
          pool_(cfg.threads > 1
                    ? std::make_unique<ThreadPool>(cfg.threads)
                    : nullptr)
    {
    }

    const char *name() const override { return "mpeg2"; }

  protected:
    std::vector<u8> encode_picture(const Frame &src,
                                   PictureType type) override;

  private:
    /** Everything the serial write phase needs to replay one MB. */
    struct MbRecord {
        enum Kind : u8 { kIntra, kInter, kSkip };
        Kind kind = kIntra;
        u8 mode = 0;  ///< B-picture inter mode (mpeg2::kB*)
        u8 cbp = 0;
        bool use_fwd = false;
        bool use_bwd = false;
        MotionVector fwd;  // half-sample units
        MotionVector bwd;
        s16 dc[6] = {};            ///< intra DC levels (absolute)
        Coeff levels[6][64] = {};  ///< quantised coefficients
    };

    /** Analysis-side row-scoped predictor state. */
    struct RowState {
        MotionVector left_fwd;  // half-sample units
        MotionVector left_bwd;
    };

    /** Write-side row/picture-scoped predictor state. */
    struct WriteState {
        int dc_pred[3] = {kDcPredReset, kDcPredReset, kDcPredReset};
        MotionVector left_fwd;
        MotionVector left_bwd;
        int pending_skips = 0;

        void
        reset_row()
        {
            dc_pred[0] = dc_pred[1] = dc_pred[2] = kDcPredReset;
            left_fwd = left_bwd = MotionVector{};
        }
    };

    void analyze_picture(const Frame &src, PictureType type);
    void analyze_mb(RowState &rs, const Frame &src, PictureType type,
                    int mbx, int mby, MbRecord &rec);
    void analyze_intra_mb(RowState &rs, const Frame &src, int mbx,
                          int mby, MbRecord &rec);
    void analyze_inter_mb(RowState &rs, const Frame &src,
                          PictureType type, int mode, MotionVector fwd,
                          MotionVector bwd, int mbx, int mby,
                          MbRecord &rec);
    void write_mb(BitWriter &bw, WriteState &ws, const MbRecord &rec,
                  PictureType type) const;

    MeResult estimate(const Frame &src, const Frame &ref, int mbx,
                      int mby, MotionVector pred_sub,
                      const std::vector<MotionVector> &cands) const;
    void build_pred(const Frame &fwd_ref, const Frame *bwd_ref,
                    MotionVector fwd, MotionVector bwd, int mbx,
                    int mby, PredBuffers *pred) const;
    int intra_cost(const Frame &src, int mbx, int mby) const;
    std::vector<MotionVector> gather_candidates(const RowState &rs,
                                                int mbx, int mby,
                                                bool backward) const;

    const Dsp &dsp_;
    MpegQuantizer intra_quant_;
    MpegQuantizer inter_quant_;
    const RunLevelCoder &intra_rl_;
    const RunLevelCoder &inter_rl_;
    MotionEstimator me_;
    /** approx >= 1: per-8x8 SAD below which the residual is coded as
     * all-zero without running fdct + quant (0 disables). */
    int dead_zone_sad_;
    int mb_w_;
    int mb_h_;

    Frame prev_anchor_;  ///< forward reference for B pictures
    Frame last_anchor_;  ///< forward ref for P, backward ref for B
    std::vector<MotionVector> anchor_mvs_;  ///< full-pel, last anchor
    std::vector<MotionVector> cur_mvs_;     ///< full-pel, current pic
    Frame recon_;
    std::vector<MbRecord> records_;   ///< one per MB, raster order
    std::unique_ptr<ThreadPool> pool_;  ///< band pool (threads > 1)
    BitWriter bw_;           ///< persistent writer (capacity reuse)
    std::vector<u8> wbuf_;   ///< persistent finish_into() scratch

    /** Hints for the picture being analysed (read-only during the
     * wavefront phase), or null for full analysis. */
    std::shared_ptr<const PictureSideInfo> hint_pic_;

    const MbSideInfo *
    hint_mb(int mbx, int mby) const
    {
        return hint_pic_ ? &hint_pic_->at(mbx, mby) : nullptr;
    }
};

std::vector<u8>
Mpeg2Encoder::encode_picture(const Frame &src, PictureType type)
{
    const CodecConfig &cfg = config();
    recon_ = new_frame(kRefBorder);
    std::fill(cur_mvs_.begin(), cur_mvs_.end(), MotionVector{});

    hint_pic_ = take_hints(src, type);
    analyze_picture(src, type);
    hint_pic_.reset();

    std::vector<u8> out;
    if (cfg.error_resilience) {
        // Resilient layout: escaped header, then a resync marker plus
        // an escaped, sentinel-terminated segment per macroblock row.
        // Skip runs are row-scoped so each segment parses standalone.
        bw_.clear();
        bw_.put_bits(static_cast<u32>(type), 2);
        bw_.put_bits(static_cast<u32>(cfg.qscale), 5);
        bw_.put_bits(static_cast<u32>(src.poc() & 0xFFFF), 16);
        bw_.finish_into(&wbuf_);
        escape_emulation(wbuf_.data(), wbuf_.size(), &out);

        for (int mby = 0; mby < mb_h_; ++mby) {
            WriteState ws;
            for (int mbx = 0; mbx < mb_w_; ++mbx)
                write_mb(bw_, ws, records_[mby * mb_w_ + mbx], type);
            if (type != PictureType::kI && ws.pending_skips > 0)
                write_ue(bw_, static_cast<u32>(ws.pending_skips));
            bw_.put_bits(kRowSentinel, 8);
            bw_.finish_into(&wbuf_);
            append_resync_marker(&out, mby);
            escape_emulation(wbuf_.data(), wbuf_.size(), &out);
        }
    } else {
        bw_.clear();
        bw_.put_bits(static_cast<u32>(type), 2);
        bw_.put_bits(static_cast<u32>(cfg.qscale), 5);
        bw_.put_bits(static_cast<u32>(src.poc() & 0xFFFF), 16);
        WriteState ws;
        for (int mby = 0; mby < mb_h_; ++mby) {
            ws.reset_row();
            for (int mbx = 0; mbx < mb_w_; ++mbx)
                write_mb(bw_, ws, records_[mby * mb_w_ + mbx], type);
        }
        if (type != PictureType::kI)
            write_ue(bw_, static_cast<u32>(ws.pending_skips));
        bw_.finish_into(&out);
    }

    recon_.extend_borders();
    if (type != PictureType::kB) {
        prev_anchor_ = std::move(last_anchor_);
        last_anchor_ = std::move(recon_);
        anchor_mvs_ = cur_mvs_;
    }
    return out;
}

void
Mpeg2Encoder::analyze_picture(const Frame &src, PictureType type)
{
    if (pool_ == nullptr || mb_h_ < 2) {
        for (int mby = 0; mby < mb_h_; ++mby) {
            RowState rs{};
            for (int mbx = 0; mbx < mb_w_; ++mbx)
                analyze_mb(rs, src, type, mbx, mby,
                           records_[mby * mb_w_ + mbx]);
        }
        return;
    }

    // One band per MB row, wavefront-ordered: before MB (x, y) runs,
    // row y-1 must be done through column x+1 (its above-right
    // neighbour), which covers every cross-row read — the cur_mvs_
    // candidates of gather_candidates(). Row-local predictors live in
    // RowState, so bands share no mutable state beyond the published
    // per-MB results.
    WavefrontScheduler wf(mb_h_, mb_w_);
    parallel_for(*pool_, mb_h_, [&](int mby, int) {
        WavefrontRowGuard guard(wf, mby);
        RowState rs{};
        for (int mbx = 0; mbx < mb_w_; ++mbx) {
            wf.wait_above(mby, mbx);
            analyze_mb(rs, src, type, mbx, mby,
                       records_[mby * mb_w_ + mbx]);
            wf.publish(mby, mbx + 1);
        }
    });
}

std::vector<MotionVector>
Mpeg2Encoder::gather_candidates(const RowState &rs, int mbx, int mby,
                                bool backward) const
{
    std::vector<MotionVector> cands;
    cands.reserve(4);
    const int idx = mby * mb_w_ + mbx;
    const MotionVector left = backward ? rs.left_bwd : rs.left_fwd;
    cands.push_back({static_cast<s16>(left.x >> 1),
                     static_cast<s16>(left.y >> 1)});
    if (mby > 0) {
        cands.push_back(cur_mvs_[idx - mb_w_]);
        if (mbx + 1 < mb_w_)
            cands.push_back(cur_mvs_[idx - mb_w_ + 1]);
    }
    cands.push_back(anchor_mvs_[idx]);  // collocated (temporal)
    return cands;
}

MeResult
Mpeg2Encoder::estimate(const Frame &src, const Frame &ref, int mbx,
                       int mby, MotionVector pred_sub,
                       const std::vector<MotionVector> &cands) const
{
    MeBlock blk;
    blk.cur = &src.luma();
    blk.ref = &ref.luma();
    blk.x0 = mbx * 16;
    blk.y0 = mby * 16;
    blk.w = 16;
    blk.h = 16;
    const MeResult full = me_.epzs(blk, pred_sub, cands);
    const MotionVector start{static_cast<s16>(full.mv.x * 2),
                             static_cast<s16>(full.mv.y * 2)};
    if (me_.params().approx >= 1 &&
        full.sad < me_.exit_threshold(blk)) {
        // The full-pel match is already under the exit threshold:
        // half-pel refinement cannot buy enough to matter at this
        // approximation level.
        MeResult r = full;
        r.mv = start;
        return r;
    }
    return subpel_refine(
        blk, start, pred_sub, me_.params(), {1}, /*use_satd=*/false,
        [&](MotionVector mv, Pixel *dst, int ds) {
            mc_halfpel(ref.luma(), blk.x0, blk.y0, mv, dst, ds, 16, 16,
                       dsp_);
        });
}

void
Mpeg2Encoder::build_pred(const Frame &fwd_ref, const Frame *bwd_ref,
                         MotionVector fwd, MotionVector bwd, int mbx,
                         int mby, PredBuffers *pred) const
{
    const int lx = mbx * 16;
    const int ly = mby * 16;
    const int cx = mbx * 8;
    const int cy = mby * 8;
    mc_halfpel(fwd_ref.luma(), lx, ly, fwd, pred->luma, 16, 16, 16,
               dsp_);
    const MotionVector fc = chroma_mv_from_halfpel(fwd);
    mc_halfpel(fwd_ref.cb(), cx, cy, fc, pred->cb, 8, 8, 8, dsp_);
    mc_halfpel(fwd_ref.cr(), cx, cy, fc, pred->cr, 8, 8, 8, dsp_);
    if (bwd_ref != nullptr) {
        PredBuffers back;
        mc_halfpel(bwd_ref->luma(), lx, ly, bwd, back.luma, 16, 16, 16,
                   dsp_);
        const MotionVector bc = chroma_mv_from_halfpel(bwd);
        mc_halfpel(bwd_ref->cb(), cx, cy, bc, back.cb, 8, 8, 8, dsp_);
        mc_halfpel(bwd_ref->cr(), cx, cy, bc, back.cr, 8, 8, 8, dsp_);
        dsp_.avg_rect(pred->luma, 16, pred->luma, 16, back.luma, 16, 16,
                      16);
        dsp_.avg_rect(pred->cb, 8, pred->cb, 8, back.cb, 8, 8, 8);
        dsp_.avg_rect(pred->cr, 8, pred->cr, 8, back.cr, 8, 8, 8);
    }
}

int
Mpeg2Encoder::intra_cost(const Frame &src, int mbx, int mby) const
{
    const Plane &luma = src.luma();
    int sum = 0;
    for (int y = 0; y < 16; ++y) {
        const Pixel *row = luma.row(mby * 16 + y) + mbx * 16;
        for (int x = 0; x < 16; ++x)
            sum += row[x];
    }
    const int mean = (sum + 128) >> 8;
    int dev = 0;
    for (int y = 0; y < 16; ++y) {
        const Pixel *row = luma.row(mby * 16 + y) + mbx * 16;
        for (int x = 0; x < 16; ++x) {
            const int d = row[x] - mean;
            dev += d < 0 ? -d : d;
        }
    }
    // Rough intra rate surcharge keeps intra from winning on noise.
    return dev + ((me_.params().lambda16 * 96) >> 4);
}

void
Mpeg2Encoder::analyze_mb(RowState &rs, const Frame &src,
                         PictureType type, int mbx, int mby,
                         MbRecord &rec)
{
    if (type == PictureType::kI) {
        analyze_intra_mb(rs, src, mbx, mby, rec);
        return;
    }

    const Frame &fwd_ref =
        type == PictureType::kP ? last_anchor_ : prev_anchor_;

    // Analysis-reuse hints, when the transcode engine wired a HintMap:
    // a decode-side intra MB goes straight to intra, a decode-side
    // inter MB seeds its vector as a search candidate and skips the
    // intra trial, and a B MB searches only the hinted direction(s).
    // Every pruned branch keeps a legal fallback, so hints never make
    // the stream undecodable — only cheaper to produce.
    const MbSideInfo *hint = hint_mb(mbx, mby);
    if (hint != nullptr && hint->mode == MbSideInfo::kIntra) {
        analyze_intra_mb(rs, src, mbx, mby, rec);
        return;
    }
    const int icost =
        hint != nullptr ? INT32_MAX : intra_cost(src, mbx, mby);

    if (type == PictureType::kP) {
        std::vector<MotionVector> cands =
            gather_candidates(rs, mbx, mby, false);
        if (hint != nullptr)
            cands.push_back(hint_full_pel(hint->fwd));
        const MeResult res =
            estimate(src, fwd_ref, mbx, mby, rs.left_fwd, cands);
        cur_mvs_[mby * mb_w_ + mbx] = {static_cast<s16>(res.mv.x >> 1),
                                       static_cast<s16>(res.mv.y >> 1)};
        if (icost < res.cost) {
            analyze_intra_mb(rs, src, mbx, mby, rec);
            return;
        }
        analyze_inter_mb(rs, src, type, mpeg2::kPInter, res.mv, {}, mbx,
                         mby, rec);
        return;
    }

    // B picture: forward / backward / bi / intra decision. A
    // single-direction hint prunes the opposite estimate and the
    // bi-prediction build.
    const bool want_fwd =
        hint == nullptr || hint->mode != MbSideInfo::kInterBwd;
    const bool want_bwd =
        hint == nullptr || hint->mode != MbSideInfo::kInterFwd;

    MeResult fwd;
    MeResult bwd;
    if (want_fwd) {
        std::vector<MotionVector> cands =
            gather_candidates(rs, mbx, mby, false);
        if (hint != nullptr)
            cands.push_back(hint_full_pel(hint->fwd));
        fwd = estimate(src, prev_anchor_, mbx, mby, rs.left_fwd, cands);
    }
    if (want_bwd) {
        std::vector<MotionVector> cands =
            gather_candidates(rs, mbx, mby, true);
        if (hint != nullptr)
            cands.push_back(hint_full_pel(hint->bwd));
        bwd = estimate(src, last_anchor_, mbx, mby, rs.left_bwd, cands);
    }

    int best;
    int best_cost;
    if (want_fwd && want_bwd) {
        PredBuffers bi;
        build_pred(prev_anchor_, &last_anchor_, fwd.mv, bwd.mv, mbx,
                   mby, &bi);
        const Plane &luma = src.luma();
        const int bi_sad = dsp_.sad16x16(luma.row(mby * 16) + mbx * 16,
                                         luma.stride(), bi.luma, 16);
        const int bi_cost =
            bi_sad +
            mv_rate_cost(fwd.mv, rs.left_fwd, me_.params().lambda16) +
            mv_rate_cost(bwd.mv, rs.left_bwd, me_.params().lambda16);

        best = mpeg2::kBBi;
        best_cost = bi_cost;
        if (fwd.cost < best_cost) {
            best = mpeg2::kBFwd;
            best_cost = fwd.cost;
        }
        if (bwd.cost < best_cost) {
            best = mpeg2::kBBwd;
            best_cost = bwd.cost;
        }
    } else if (want_fwd) {
        best = mpeg2::kBFwd;
        best_cost = fwd.cost;
    } else {
        best = mpeg2::kBBwd;
        best_cost = bwd.cost;
    }
    if (icost < best_cost) {
        analyze_intra_mb(rs, src, mbx, mby, rec);
        return;
    }
    analyze_inter_mb(rs, src, type, best, fwd.mv, bwd.mv, mbx, mby,
                     rec);
}

void
Mpeg2Encoder::analyze_intra_mb(RowState &rs, const Frame &src, int mbx,
                               int mby, MbRecord &rec)
{
    rec.kind = MbRecord::kIntra;
    const int lx = mbx * 16;
    const int ly = mby * 16;
    for (int b = 0; b < 6; ++b) {
        const int comp = b < 4 ? 0 : b - 3;
        const Plane &src_plane = src.plane(comp);
        Plane &rec_plane = recon_.plane(comp);
        const int x = b < 4 ? lx + (b & 1) * 8 : mbx * 8;
        const int y = b < 4 ? ly + (b >> 1) * 8 : mby * 8;

        Coeff *blk = rec.levels[b];
        for (int yy = 0; yy < 8; ++yy) {
            const Pixel *row = src_plane.row(y + yy) + x;
            for (int xx = 0; xx < 8; ++xx)
                blk[yy * 8 + xx] = row[xx];
        }
        dsp_.fdct8x8(blk);
        const int dc_level = clamp(div_round(blk[0], kDcStep), 0, 255);
        blk[0] = 0;
        intra_quant_.quantize(blk);
        rec.dc[b] = static_cast<s16>(dc_level);

        Pixel *dst = rec_plane.row(y) + x;
        zero_block8(dst, rec_plane.stride());
        mpeg_recon_block(blk, intra_quant_, dc_level * kDcStep, dst,
                         rec_plane.stride(), dsp_);
    }
    // Intra interrupts the MV prediction chain.
    rs.left_fwd = rs.left_bwd = MotionVector{};
    cur_mvs_[mby * mb_w_ + mbx] = MotionVector{};
}

void
Mpeg2Encoder::analyze_inter_mb(RowState &rs, const Frame &src,
                               PictureType type, int mode,
                               MotionVector fwd, MotionVector bwd,
                               int mbx, int mby, MbRecord &rec)
{
    const bool is_b = type == PictureType::kB;
    const Frame &fwd_ref = is_b ? prev_anchor_ : last_anchor_;
    const Frame *bwd_ref = nullptr;
    bool use_fwd = true;
    bool use_bwd = false;
    if (is_b) {
        use_fwd = mode == mpeg2::kBFwd || mode == mpeg2::kBBi;
        use_bwd = mode == mpeg2::kBBwd || mode == mpeg2::kBBi;
        if (!use_fwd)
            fwd = {};
        if (!use_bwd)
            bwd = {};
        if (use_bwd)
            bwd_ref = &last_anchor_;
    }

    PredBuffers pred;
    if (is_b && !use_fwd) {
        // Backward-only prediction.
        build_pred(last_anchor_, nullptr, bwd, {}, mbx, mby, &pred);
    } else {
        build_pred(fwd_ref, use_bwd ? bwd_ref : nullptr, fwd, bwd, mbx,
                   mby, &pred);
    }

    // Transform/quantise the six residual blocks.
    int cbp = 0;
    const int lx = mbx * 16;
    const int ly = mby * 16;
    for (int b = 0; b < 6; ++b) {
        const int comp = b < 4 ? 0 : b - 3;
        const Plane &src_plane = src.plane(comp);
        const int x = b < 4 ? lx + (b & 1) * 8 : mbx * 8;
        const int y = b < 4 ? ly + (b >> 1) * 8 : mby * 8;
        const Pixel *pp;
        int ps;
        if (b < 4) {
            pp = pred.luma + (b >> 1) * 8 * 16 + (b & 1) * 8;
            ps = 16;
        } else {
            pp = b == 4 ? pred.cb : pred.cr;
            ps = 8;
        }
        if (dead_zone_sad_ > 0 &&
            dsp_.sad_rect(src_plane.row(y) + x, src_plane.stride(), pp,
                          ps, 8, 8) < dead_zone_sad_) {
            // Near-zero residual: the quantiser would have flattened
            // it anyway; code the block as all-zero without running
            // fdct + quant (cbp bit stays clear, recon = prediction).
            continue;
        }
        dsp_.sub_rect(rec.levels[b], 8, src_plane.row(y) + x,
                      src_plane.stride(), pp, ps, 8, 8);
        if (me_.params().approx >= 3)
            fdct8x8_low4(rec.levels[b]);
        else
            dsp_.fdct8x8(rec.levels[b]);
        if (inter_quant_.quantize(rec.levels[b]) != 0)
            cbp |= 1 << b;
    }

    // Skip decision (must match the decoder's skip semantics):
    // P-skip copies the forward reference at (0,0); B-skip is
    // bi-prediction at (0,0).
    const bool skippable =
        cbp == 0 &&
        (is_b ? (mode == mpeg2::kBBi && fwd == MotionVector{} &&
                 bwd == MotionVector{})
              : fwd == MotionVector{});
    if (skippable) {
        rec.kind = MbRecord::kSkip;
        rs.left_fwd = rs.left_bwd = MotionVector{};
        cur_mvs_[mby * mb_w_ + mbx] = MotionVector{};
        // Reconstruction = prediction.
    } else {
        rec.kind = MbRecord::kInter;
        rec.mode = static_cast<u8>(mode);
        rec.cbp = static_cast<u8>(cbp);
        rec.use_fwd = use_fwd;
        rec.use_bwd = use_bwd;
        rec.fwd = fwd;
        rec.bwd = bwd;
        rs.left_fwd = use_fwd ? fwd : MotionVector{};
        rs.left_bwd = use_bwd ? bwd : MotionVector{};
        cur_mvs_[mby * mb_w_ + mbx] = {
            static_cast<s16>((use_fwd ? fwd.x : bwd.x) >> 1),
            static_cast<s16>((use_fwd ? fwd.y : bwd.y) >> 1)};
    }

    // Reconstruction: prediction plus coded residual.
    for (int b = 0; b < 6; ++b) {
        const int comp = b < 4 ? 0 : b - 3;
        Plane &rec_plane = recon_.plane(comp);
        const int x = b < 4 ? lx + (b & 1) * 8 : mbx * 8;
        const int y = b < 4 ? ly + (b >> 1) * 8 : mby * 8;
        const Pixel *pp;
        int ps;
        if (b < 4) {
            pp = pred.luma + (b >> 1) * 8 * 16 + (b & 1) * 8;
            ps = 16;
        } else {
            pp = b == 4 ? pred.cb : pred.cr;
            ps = 8;
        }
        Pixel *dst = rec_plane.row(y) + x;
        dsp_.copy_rect(dst, rec_plane.stride(), pp, ps, 8, 8);
        if (cbp & (1 << b)) {
            mpeg_recon_block(rec.levels[b], inter_quant_, -1, dst,
                             rec_plane.stride(), dsp_);
        }
    }
}

void
Mpeg2Encoder::write_mb(BitWriter &bw, WriteState &ws,
                       const MbRecord &rec, PictureType type) const
{
    const bool is_b = type == PictureType::kB;

    if (rec.kind == MbRecord::kSkip) {
        ++ws.pending_skips;
        ws.left_fwd = ws.left_bwd = MotionVector{};
        ws.dc_pred[0] = ws.dc_pred[1] = ws.dc_pred[2] = kDcPredReset;
        return;
    }

    if (rec.kind == MbRecord::kIntra) {
        if (type != PictureType::kI) {
            write_ue(bw, static_cast<u32>(ws.pending_skips));
            ws.pending_skips = 0;
            if (is_b)
                write_ue(bw, mpeg2::kBIntra);
            else
                bw.put_bit(mpeg2::kPIntra);
        }
        for (int b = 0; b < 6; ++b) {
            const int comp = b < 4 ? 0 : b - 3;
            write_se(bw, rec.dc[b] - ws.dc_pred[comp]);
            ws.dc_pred[comp] = rec.dc[b];
            intra_rl_.encode_block(bw, rec.levels[b], 1);
        }
        ws.left_fwd = ws.left_bwd = MotionVector{};
        return;
    }

    write_ue(bw, static_cast<u32>(ws.pending_skips));
    ws.pending_skips = 0;
    if (is_b)
        write_ue(bw, static_cast<u32>(rec.mode));
    else
        bw.put_bit(mpeg2::kPInter);
    if (rec.use_fwd) {
        write_se(bw, rec.fwd.x - ws.left_fwd.x);
        write_se(bw, rec.fwd.y - ws.left_fwd.y);
    }
    if (rec.use_bwd) {
        write_se(bw, rec.bwd.x - ws.left_bwd.x);
        write_se(bw, rec.bwd.y - ws.left_bwd.y);
    }
    bw.put_bits(rec.cbp, 6);
    for (int b = 0; b < 6; ++b) {
        if (rec.cbp & (1 << b))
            inter_rl_.encode_block(bw, rec.levels[b], 0);
    }
    ws.left_fwd = rec.use_fwd ? rec.fwd : MotionVector{};
    ws.left_bwd = rec.use_bwd ? rec.bwd : MotionVector{};
    ws.dc_pred[0] = ws.dc_pred[1] = ws.dc_pred[2] = kDcPredReset;
}

}  // namespace

std::unique_ptr<VideoEncoder>
create_mpeg2_encoder(const CodecConfig &config)
{
    HDVB_CHECK(config.validate().is_ok());
    return std::make_unique<Mpeg2Encoder>(config);
}

}  // namespace hdvb
