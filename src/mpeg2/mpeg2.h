/**
 * @file
 * The MPEG-2-class codec: 8x8 DCT, 16x16 macroblocks, half-sample
 * bilinear motion compensation, I/P/B pictures, fixed run/level VLC.
 *
 * Benchmark role (paper Table II): stands in for the libmpeg2 decoder
 * and the FFmpeg MPEG-2 encoder — the fastest, least compression-
 * efficient generation of the three.
 */
#ifndef HDVB_MPEG2_MPEG2_H
#define HDVB_MPEG2_MPEG2_H

#include <memory>

#include "codec/codec.h"

namespace hdvb {

/** Create an MPEG-2-class encoder; config must validate. */
std::unique_ptr<VideoEncoder> create_mpeg2_encoder(
    const CodecConfig &config);

/** Create an MPEG-2-class decoder. */
std::unique_ptr<VideoDecoder> create_mpeg2_decoder(
    const CodecConfig &config);

namespace mpeg2 {

// ---- bitstream syntax constants (shared by encoder and decoder) ----

/** P-picture macroblock modes (1 bit). */
enum PMbType { kPInter = 0, kPIntra = 1 };

/** B-picture macroblock modes (ue-coded; bi-prediction cheapest). */
enum BMbType { kBBi = 0, kBFwd = 1, kBBwd = 2, kBIntra = 3 };

/** Intra DC: predictor reset value (mid-grey level / DC step). */
inline constexpr int kDcPredReset = 128;
/** Intra DC quantiser step (full-precision coefficient units). */
inline constexpr int kDcStep = 8;

}  // namespace mpeg2

}  // namespace hdvb

#endif  // HDVB_MPEG2_MPEG2_H
