#include "metrics/psnr.h"

#include <cmath>

#include "common/check.h"
#include "simd/dispatch.h"

namespace hdvb {

u64
plane_sse(const Plane &a, const Plane &b)
{
    HDVB_CHECK(a.width() == b.width() && a.height() == b.height());
    const Dsp &dsp = get_dsp(best_simd_level());
    return dsp.sse_rect(a.row(0), a.stride(), b.row(0), b.stride(),
                        a.width(), a.height());
}

double
psnr_from_sse(u64 sse, u64 samples)
{
    if (samples == 0)
        return 0.0;
    if (sse == 0)
        return 99.0;
    const double mse =
        static_cast<double>(sse) / static_cast<double>(samples);
    return 10.0 * std::log10(255.0 * 255.0 / mse);
}

double
frame_psnr_y(const Frame &a, const Frame &b)
{
    const u64 sse = plane_sse(a.luma(), b.luma());
    return psnr_from_sse(sse, static_cast<u64>(a.width()) * a.height());
}

void
PsnrAccumulator::add(const Frame &ref, const Frame &test)
{
    for (int i = 0; i < 3; ++i) {
        const Plane &pr = ref.plane(i);
        const Plane &pt = test.plane(i);
        sse_[i] += plane_sse(pr, pt);
        samples_[i] += static_cast<u64>(pr.width()) * pr.height();
    }
    ++frames_;
}

double
PsnrAccumulator::psnr_y() const
{
    return psnr_from_sse(sse_[0], samples_[0]);
}

double
PsnrAccumulator::psnr_cb() const
{
    return psnr_from_sse(sse_[1], samples_[1]);
}

double
PsnrAccumulator::psnr_cr() const
{
    return psnr_from_sse(sse_[2], samples_[2]);
}

double
PsnrAccumulator::psnr_all() const
{
    return psnr_from_sse(sse_[0] + sse_[1] + sse_[2],
                         samples_[0] + samples_[1] + samples_[2]);
}

}  // namespace hdvb
