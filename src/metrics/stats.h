/**
 * @file
 * ITU-T P.910 style Spatial Information (SI) and Temporal Information
 * (TI) measures, used by the Table III bench to show the synthetic
 * sequences span distinct spatial-detail / motion operating points (the
 * reason the paper provides four sequences rather than one).
 */
#ifndef HDVB_METRICS_STATS_H
#define HDVB_METRICS_STATS_H

#include "video/frame.h"

namespace hdvb {

/** Standard deviation of the Sobel-filtered luma plane. */
double spatial_information(const Frame &frame);

/** Standard deviation of the luma frame difference. */
double temporal_information(const Frame &current, const Frame &previous);

/** Accumulates max-over-time SI/TI per P.910. */
class SiTiAccumulator
{
  public:
    /** Feed frames in display order. */
    void add(const Frame &frame);

    double si() const { return si_max_; }
    double ti() const { return ti_max_; }
    int frames() const { return frames_; }

  private:
    Frame previous_;
    double si_max_ = 0.0;
    double ti_max_ = 0.0;
    int frames_ = 0;
};

}  // namespace hdvb

#endif  // HDVB_METRICS_STATS_H
