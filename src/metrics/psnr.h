/**
 * @file
 * PSNR measurement, the quality metric of the paper's Table V. Sequence
 * PSNR is computed from the accumulated squared error over all frames
 * (not the average of per-frame PSNRs), matching common codec-bench
 * practice.
 */
#ifndef HDVB_METRICS_PSNR_H
#define HDVB_METRICS_PSNR_H

#include "common/types.h"
#include "video/frame.h"

namespace hdvb {

/** Sum of squared errors between two same-sized planes. */
u64 plane_sse(const Plane &a, const Plane &b);

/** PSNR in dB from SSE over @p samples 8-bit samples (inf -> 99 dB). */
double psnr_from_sse(u64 sse, u64 samples);

/** Luma PSNR between two frames. */
double frame_psnr_y(const Frame &a, const Frame &b);

/** Accumulates SSE across a sequence; per-plane and combined PSNR. */
class PsnrAccumulator
{
  public:
    /** Add one frame pair (same dimensions). */
    void add(const Frame &ref, const Frame &test);

    int frames() const { return frames_; }
    double psnr_y() const;
    double psnr_cb() const;
    double psnr_cr() const;
    /** Combined PSNR over all three planes. */
    double psnr_all() const;

  private:
    u64 sse_[3] = {0, 0, 0};
    u64 samples_[3] = {0, 0, 0};
    int frames_ = 0;
};

}  // namespace hdvb

#endif  // HDVB_METRICS_PSNR_H
