#include "metrics/stats.h"

#include <cmath>

namespace hdvb {

double
spatial_information(const Frame &frame)
{
    const Plane &luma = frame.luma();
    const int w = luma.width();
    const int h = luma.height();
    double sum = 0.0, sum2 = 0.0;
    s64 count = 0;
    for (int y = 1; y < h - 1; ++y) {
        const Pixel *pm = luma.row(y - 1);
        const Pixel *pc = luma.row(y);
        const Pixel *pp = luma.row(y + 1);
        for (int x = 1; x < w - 1; ++x) {
            const int gx = (pm[x + 1] + 2 * pc[x + 1] + pp[x + 1]) -
                           (pm[x - 1] + 2 * pc[x - 1] + pp[x - 1]);
            const int gy = (pp[x - 1] + 2 * pp[x] + pp[x + 1]) -
                           (pm[x - 1] + 2 * pm[x] + pm[x + 1]);
            const double g = std::sqrt(
                static_cast<double>(gx) * gx +
                static_cast<double>(gy) * gy);
            sum += g;
            sum2 += g * g;
            ++count;
        }
    }
    if (count == 0)
        return 0.0;
    const double mean = sum / static_cast<double>(count);
    return std::sqrt(std::max(0.0, sum2 / static_cast<double>(count) -
                                       mean * mean));
}

double
temporal_information(const Frame &current, const Frame &previous)
{
    const Plane &a = current.luma();
    const Plane &b = previous.luma();
    const int w = a.width();
    const int h = a.height();
    double sum = 0.0, sum2 = 0.0;
    for (int y = 0; y < h; ++y) {
        const Pixel *pa = a.row(y);
        const Pixel *pb = b.row(y);
        for (int x = 0; x < w; ++x) {
            const double d = static_cast<double>(pa[x]) - pb[x];
            sum += d;
            sum2 += d * d;
        }
    }
    const double n = static_cast<double>(w) * h;
    const double mean = sum / n;
    return std::sqrt(std::max(0.0, sum2 / n - mean * mean));
}

void
SiTiAccumulator::add(const Frame &frame)
{
    si_max_ = std::max(si_max_, spatial_information(frame));
    if (frames_ > 0)
        ti_max_ = std::max(ti_max_,
                           temporal_information(frame, previous_));
    if (previous_.empty())
        previous_ = Frame(frame.width(), frame.height());
    previous_.copy_from(frame);
    ++frames_;
}

}  // namespace hdvb
