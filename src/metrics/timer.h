/**
 * @file
 * Wall-clock timing for the fps measurements of Figure 1. The paper's
 * MPlayer `-benchmark` mode times decode with video output disabled; we
 * time the encode()/decode() calls only, with frame generation and
 * PSNR outside the timed region.
 */
#ifndef HDVB_METRICS_TIMER_H
#define HDVB_METRICS_TIMER_H

#include <chrono>

namespace hdvb {

/** Steady-clock stopwatch accumulating across start/stop pairs. */
class WallTimer
{
  public:
    void start() { begin_ = Clock::now(); }

    void
    stop()
    {
        total_ += std::chrono::duration<double>(Clock::now() - begin_)
                      .count();
    }

    /** Accumulated seconds. */
    double seconds() const { return total_; }

    void reset() { total_ = 0.0; }

  private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point begin_;
    double total_ = 0.0;
};

}  // namespace hdvb

#endif  // HDVB_METRICS_TIMER_H
