/**
 * @file
 * Wall-clock timing for the fps measurements of Figure 1. The paper's
 * MPlayer `-benchmark` mode times decode with video output disabled; we
 * time the encode()/decode() calls only, with frame generation and
 * PSNR outside the timed region.
 */
#ifndef HDVB_METRICS_TIMER_H
#define HDVB_METRICS_TIMER_H

#include <chrono>

#include "common/check.h"

namespace hdvb {

/**
 * Steady-clock stopwatch accumulating across start/stop pairs. Calls
 * must pair up: stop() without a matching start() would otherwise
 * charge the interval since an arbitrary (default-constructed) epoch,
 * so the pairing is enforced with HDVB_DCHECK and a mismatched stop()
 * is a no-op in release builds.
 */
class WallTimer
{
  public:
    void
    start()
    {
        HDVB_DCHECK(!running_);
        running_ = true;
        begin_ = Clock::now();
    }

    void
    stop()
    {
        HDVB_DCHECK(running_);
        if (!running_)
            return;
        running_ = false;
        total_ += std::chrono::duration<double>(Clock::now() - begin_)
                      .count();
    }

    /** Accumulated seconds. */
    double seconds() const { return total_; }

    void
    reset()
    {
        total_ = 0.0;
        running_ = false;
    }

  private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point begin_{};
    double total_ = 0.0;
    bool running_ = false;
};

}  // namespace hdvb

#endif  // HDVB_METRICS_TIMER_H
