#include "common/thread_pool.h"

#include <atomic>
#include <exception>

#include "common/check.h"
#include "common/env.h"

namespace hdvb {

namespace {

/** The pool (if any) whose worker_main is running on this thread. */
thread_local const ThreadPool *t_current_pool = nullptr;

}  // namespace

int
default_job_count()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return env_positive_int("HDVB_JOBS",
                            hw > 0 ? static_cast<int>(hw) : 1);
}

ThreadPool::ThreadPool(int workers)
{
    const int n = workers < 1 ? 1 : workers;
    threads_.reserve(n);
    for (int i = 0; i < n; ++i)
        threads_.emplace_back([this, i] { worker_main(i); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        stopping_ = true;
    }
    cv_.notify_all();
    for (std::thread &thread : threads_)
        thread.join();
}

void
ThreadPool::submit(std::function<void(int)> task)
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        queue_.push_back(std::move(task));
    }
    cv_.notify_one();
}

bool
ThreadPool::on_worker_thread() const
{
    return t_current_pool == this;
}

void
ThreadPool::worker_main(int id)
{
    t_current_pool = this;
    for (;;) {
        std::function<void(int)> task;
        {
            std::unique_lock<std::mutex> lock(mu_);
            cv_.wait(lock,
                     [this] { return stopping_ || !queue_.empty(); });
            if (queue_.empty())
                return;  // stopping_ and drained
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        task(id);
    }
}

void
parallel_for(ThreadPool &pool, int count,
             const std::function<void(int, int)> &body)
{
    HDVB_DCHECK(!pool.on_worker_thread());
    if (count <= 0)
        return;

    struct Shared {
        std::atomic<int> next{0};
        std::mutex mu;
        std::condition_variable done;
        int active = 0;
        std::exception_ptr error;
    };
    auto shared = std::make_shared<Shared>();

    const int drivers =
        pool.worker_count() < count ? pool.worker_count() : count;
    shared->active = drivers;
    for (int d = 0; d < drivers; ++d) {
        pool.submit([shared, count, &body](int worker) {
            for (;;) {
                const int i =
                    shared->next.fetch_add(1, std::memory_order_relaxed);
                if (i >= count)
                    break;
                {
                    std::lock_guard<std::mutex> lock(shared->mu);
                    if (shared->error)
                        break;  // abandon unclaimed indices
                }
                try {
                    body(i, worker);
                } catch (...) {
                    std::lock_guard<std::mutex> lock(shared->mu);
                    if (!shared->error)
                        shared->error = std::current_exception();
                }
            }
            std::lock_guard<std::mutex> lock(shared->mu);
            if (--shared->active == 0)
                shared->done.notify_all();
        });
    }

    std::unique_lock<std::mutex> lock(shared->mu);
    shared->done.wait(lock, [&] { return shared->active == 0; });
    if (shared->error)
        std::rethrow_exception(shared->error);
}

TaskGroup::~TaskGroup()
{
    std::unique_lock<std::mutex> lock(mu_);
    done_.wait(lock, [this] { return pending_ == 0; });
}

void
TaskGroup::run(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        ++pending_;
    }
    pool_.submit([this, task = std::move(task)](int) {
        try {
            task();
        } catch (...) {
            std::lock_guard<std::mutex> lock(mu_);
            if (!error_)
                error_ = std::current_exception();
        }
        std::lock_guard<std::mutex> lock(mu_);
        if (--pending_ == 0)
            done_.notify_all();
    });
}

void
TaskGroup::wait()
{
    HDVB_DCHECK(!pool_.on_worker_thread());
    std::unique_lock<std::mutex> lock(mu_);
    done_.wait(lock, [this] { return pending_ == 0; });
    if (error_) {
        std::exception_ptr error = error_;
        error_ = nullptr;
        std::rethrow_exception(error);
    }
}

}  // namespace hdvb
