#include "common/log.h"

#include <cstdio>

namespace hdvb {

namespace {

LogLevel g_level = LogLevel::kInfo;

const char *
level_tag(LogLevel level)
{
    switch (level) {
      case LogLevel::kDebug: return "D";
      case LogLevel::kInfo: return "I";
      case LogLevel::kWarn: return "W";
      case LogLevel::kError: return "E";
    }
    return "?";
}

}  // namespace

void
set_log_level(LogLevel level)
{
    g_level = level;
}

LogLevel
log_level()
{
    return g_level;
}

void
log_message(LogLevel level, const std::string &msg)
{
    if (static_cast<int>(level) < static_cast<int>(g_level))
        return;
    std::fprintf(stderr, "[hdvb %s] %s\n", level_tag(level), msg.c_str());
}

}  // namespace hdvb
