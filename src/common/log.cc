#include "common/log.h"

#include <atomic>
#include <cstdio>

namespace hdvb {

namespace {

std::atomic<LogLevel> g_level{LogLevel::kInfo};

const char *
level_tag(LogLevel level)
{
    switch (level) {
      case LogLevel::kDebug: return "D";
      case LogLevel::kInfo: return "I";
      case LogLevel::kWarn: return "W";
      case LogLevel::kError: return "E";
    }
    return "?";
}

}  // namespace

void
set_log_level(LogLevel level)
{
    g_level.store(level, std::memory_order_relaxed);
}

LogLevel
log_level()
{
    return g_level.load(std::memory_order_relaxed);
}

void
log_message(LogLevel level, const std::string &msg)
{
    if (static_cast<int>(level) <
        static_cast<int>(g_level.load(std::memory_order_relaxed)))
        return;
    // One fprintf per line: POSIX stdio locks per call, so lines from
    // concurrent sweep workers interleave whole, never mid-line.
    std::fprintf(stderr, "[hdvb %s] %s\n", level_tag(level), msg.c_str());
}

}  // namespace hdvb
