/**
 * @file
 * Minimal JSON parser for the measurement pipeline's own reports: the
 * BENCH comparator loads two `BENCH_<n>.json` files, and the
 * regression sweep ingests the loadgen and google-benchmark JSON it
 * spawns. Parses the full JSON grammar into a small DOM (JsonValue);
 * numbers go through locale-independent std::from_chars, the exact
 * inverse of JsonWriter's std::to_chars emission, so every double a
 * report carries round-trips bit for bit.
 *
 * Not a general-purpose library: documents are trusted tool output,
 * so limits are generous but errors are fatal Status values rather
 * than recovery attempts.
 */
#ifndef HDVB_COMMON_JSON_READER_H
#define HDVB_COMMON_JSON_READER_H

#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace hdvb {

/** One parsed JSON value; a tree of these is a document. */
class JsonValue
{
  public:
    enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

    Type type() const { return type_; }
    bool is_null() const { return type_ == Type::kNull; }
    bool is_bool() const { return type_ == Type::kBool; }
    bool is_number() const { return type_ == Type::kNumber; }
    bool is_string() const { return type_ == Type::kString; }
    bool is_array() const { return type_ == Type::kArray; }
    bool is_object() const { return type_ == Type::kObject; }

    /** Value accessors with typed fallbacks (wrong type -> fallback),
     * so consumers read optional fields without branching. */
    bool as_bool(bool fallback = false) const;
    double as_double(double fallback = 0.0) const;
    const std::string &as_string() const;  ///< empty if not a string

    /** Array element count / object member count (0 for other types). */
    size_t size() const;

    /** Array element @p i; null-typed sentinel when out of range or
     * not an array. */
    const JsonValue &at(size_t i) const;

    /** Object member @p key (first occurrence); nullptr when absent
     * or not an object. */
    const JsonValue *find(const std::string &key) const;

    /** find() that never fails: absent members read as a null-typed
     * sentinel, so chained lookups of optional structure stay flat. */
    const JsonValue &get(const std::string &key) const;

    const std::vector<JsonValue> &array() const { return array_; }
    const std::vector<std::pair<std::string, JsonValue>> &
    members() const
    {
        return members_;
    }

    /** Mutable traversal/edit access, for tools that rewrite a parsed
     * document (the comparator's doctored-copy self-test). */
    std::vector<JsonValue> &mutable_array() { return array_; }
    std::vector<std::pair<std::string, JsonValue>> &
    mutable_members()
    {
        return members_;
    }
    /** Overwrite this value with a number. */
    void
    set_number(double number)
    {
        type_ = Type::kNumber;
        number_ = number;
    }

    /** Serialize this value back to compact JSON (JsonWriter numeric
     * formatting, so a parse -> serialize round trip preserves every
     * double exactly). */
    std::string to_json() const;

  private:
    friend class JsonParser;
    friend StatusOr<JsonValue> parse_json(const std::string &);

    Type type_ = Type::kNull;
    bool bool_ = false;
    double number_ = 0.0;
    std::string string_;
    std::vector<JsonValue> array_;
    std::vector<std::pair<std::string, JsonValue>> members_;
};

/** Parse a complete JSON document (exactly one top-level value;
 * trailing garbage is an error). */
StatusOr<JsonValue> parse_json(const std::string &text);

/** Read and parse @p path; errors name the file. */
StatusOr<JsonValue> parse_json_file(const std::string &path);

}  // namespace hdvb

#endif  // HDVB_COMMON_JSON_READER_H
