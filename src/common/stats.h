/**
 * @file
 * Shared sample statistics for the measurement pipeline: nearest-rank
 * percentiles, median, and coefficient of variation. Both loadgens
 * used to carry private `percentile()` copies that truncated the rank
 * (p99 of a small sample collapsed toward p50) and re-sorted a
 * by-value copy on every call; the sweep engine's repeat/CoV reporting
 * and the BENCH comparator's noise gate need one audited
 * implementation instead.
 *
 * Convention: callers sort a sample set once (sort_samples) and then
 * query the *_sorted accessors as often as they like; summarize() does
 * the sort internally for one-shot use.
 */
#ifndef HDVB_COMMON_STATS_H
#define HDVB_COMMON_STATS_H

#include <cstddef>
#include <vector>

namespace hdvb {

/** Sorts @p samples ascending in place (the precondition of every
 * *_sorted accessor below). */
void sort_samples(std::vector<double> *samples);

/**
 * Nearest-rank percentile of an ascending-sorted sample set: the
 * element at index ceil(q * N) - 1, clamped to [0, N-1]. Unlike the
 * old truncated-rank versions this never lands *above* the requested
 * rank — percentile_sorted(v, 0.5) of an even-sized set is the lower
 * middle element, and q=1.0 is exactly the maximum. Empty input
 * returns 0.0; @p q outside [0,1] is clamped.
 */
double percentile_sorted(const std::vector<double> &sorted, double q);

/** Median of an ascending-sorted sample set: midpoint of the two
 * middle elements when N is even, the middle element when odd. Empty
 * input returns 0.0. */
double median_sorted(const std::vector<double> &sorted);

/** Arithmetic mean; 0.0 on empty input. */
double mean(const std::vector<double> &samples);

/** Sample standard deviation (N-1 denominator); 0.0 for N < 2. */
double sample_stddev(const std::vector<double> &samples);

/**
 * Coefficient of variation: sample stddev over |mean|. The
 * dimensionless noise estimate the sweep schema publishes per point
 * and the BENCH comparator turns into a regression threshold. 0.0 for
 * N < 2 (no spread information) or a zero mean (undefined).
 */
double coefficient_of_variation(const std::vector<double> &samples);

/** One-shot summary of an unsorted sample set. */
struct SampleSummary {
    size_t count = 0;
    double min = 0.0;
    double max = 0.0;
    double mean = 0.0;
    double median = 0.0;
    double stddev = 0.0;  ///< sample stddev (N-1)
    double cov = 0.0;     ///< stddev / |mean|
};

/** Sorts a by-value copy of @p samples once and derives every summary
 * statistic from it. */
SampleSummary summarize(std::vector<double> samples);

}  // namespace hdvb

#endif  // HDVB_COMMON_STATS_H
