#include "common/json_reader.h"

#include <charconv>
#include <cstdio>
#include <cstring>

#include "common/json_writer.h"

namespace hdvb {

namespace {

const JsonValue kNullValue;
const std::string kEmptyString;

/** Appends @p code_point to @p out as UTF-8. */
void
append_utf8(std::string *out, unsigned code_point)
{
    if (code_point < 0x80) {
        *out += static_cast<char>(code_point);
    } else if (code_point < 0x800) {
        *out += static_cast<char>(0xC0 | (code_point >> 6));
        *out += static_cast<char>(0x80 | (code_point & 0x3F));
    } else if (code_point < 0x10000) {
        *out += static_cast<char>(0xE0 | (code_point >> 12));
        *out += static_cast<char>(0x80 | ((code_point >> 6) & 0x3F));
        *out += static_cast<char>(0x80 | (code_point & 0x3F));
    } else {
        *out += static_cast<char>(0xF0 | (code_point >> 18));
        *out += static_cast<char>(0x80 | ((code_point >> 12) & 0x3F));
        *out += static_cast<char>(0x80 | ((code_point >> 6) & 0x3F));
        *out += static_cast<char>(0x80 | (code_point & 0x3F));
    }
}

}  // namespace

class JsonParser
{
  public:
    explicit JsonParser(const std::string &text) : text_(text) {}

    StatusOr<JsonValue>
    parse_document()
    {
        JsonValue value;
        Status status = parse_value(&value, 0);
        if (!status.is_ok())
            return status;
        skip_ws();
        if (pos_ != text_.size())
            return error("trailing characters after document");
        return value;
    }

  private:
    static constexpr int kMaxDepth = 64;

    Status
    error(const std::string &what) const
    {
        return Status::invalid_argument(
            "json parse error at offset " + std::to_string(pos_) +
            ": " + what);
    }

    void
    skip_ws()
    {
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r')
                break;
            ++pos_;
        }
    }

    bool
    consume(char c)
    {
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    bool
    consume_word(const char *word)
    {
        const size_t len = std::strlen(word);
        if (text_.compare(pos_, len, word) == 0) {
            pos_ += len;
            return true;
        }
        return false;
    }

    Status
    parse_value(JsonValue *out, int depth)
    {
        if (depth > kMaxDepth)
            return error("nesting too deep");
        skip_ws();
        if (pos_ >= text_.size())
            return error("unexpected end of document");
        const char c = text_[pos_];
        switch (c) {
          case '{': return parse_object(out, depth);
          case '[': return parse_array(out, depth);
          case '"':
            out->type_ = JsonValue::Type::kString;
            return parse_string(&out->string_);
          case 't':
            if (!consume_word("true"))
                return error("bad literal");
            out->type_ = JsonValue::Type::kBool;
            out->bool_ = true;
            return Status::ok();
          case 'f':
            if (!consume_word("false"))
                return error("bad literal");
            out->type_ = JsonValue::Type::kBool;
            out->bool_ = false;
            return Status::ok();
          case 'n':
            if (!consume_word("null"))
                return error("bad literal");
            out->type_ = JsonValue::Type::kNull;
            return Status::ok();
          default: return parse_number(out);
        }
    }

    Status
    parse_object(JsonValue *out, int depth)
    {
        ++pos_;  // '{'
        out->type_ = JsonValue::Type::kObject;
        skip_ws();
        if (consume('}'))
            return Status::ok();
        for (;;) {
            skip_ws();
            if (pos_ >= text_.size() || text_[pos_] != '"')
                return error("expected object key");
            std::string key;
            Status status = parse_string(&key);
            if (!status.is_ok())
                return status;
            skip_ws();
            if (!consume(':'))
                return error("expected ':'");
            JsonValue value;
            status = parse_value(&value, depth + 1);
            if (!status.is_ok())
                return status;
            out->members_.emplace_back(std::move(key),
                                       std::move(value));
            skip_ws();
            if (consume(','))
                continue;
            if (consume('}'))
                return Status::ok();
            return error("expected ',' or '}'");
        }
    }

    Status
    parse_array(JsonValue *out, int depth)
    {
        ++pos_;  // '['
        out->type_ = JsonValue::Type::kArray;
        skip_ws();
        if (consume(']'))
            return Status::ok();
        for (;;) {
            JsonValue value;
            Status status = parse_value(&value, depth + 1);
            if (!status.is_ok())
                return status;
            out->array_.push_back(std::move(value));
            skip_ws();
            if (consume(','))
                continue;
            if (consume(']'))
                return Status::ok();
            return error("expected ',' or ']'");
        }
    }

    Status
    parse_string(std::string *out)
    {
        ++pos_;  // opening quote
        out->clear();
        while (pos_ < text_.size()) {
            const char c = text_[pos_++];
            if (c == '"')
                return Status::ok();
            if (c != '\\') {
                *out += c;
                continue;
            }
            if (pos_ >= text_.size())
                break;
            const char esc = text_[pos_++];
            switch (esc) {
              case '"': *out += '"'; break;
              case '\\': *out += '\\'; break;
              case '/': *out += '/'; break;
              case 'b': *out += '\b'; break;
              case 'f': *out += '\f'; break;
              case 'n': *out += '\n'; break;
              case 'r': *out += '\r'; break;
              case 't': *out += '\t'; break;
              case 'u': {
                unsigned code = 0;
                if (!parse_hex4(&code))
                    return error("bad \\u escape");
                // Combine a UTF-16 surrogate pair into one code point.
                if (code >= 0xD800 && code <= 0xDBFF &&
                    text_.compare(pos_, 2, "\\u") == 0) {
                    const size_t save = pos_;
                    pos_ += 2;
                    unsigned low = 0;
                    if (parse_hex4(&low) && low >= 0xDC00 &&
                        low <= 0xDFFF) {
                        code = 0x10000 + ((code - 0xD800) << 10) +
                               (low - 0xDC00);
                    } else {
                        pos_ = save;  // lone high surrogate: keep as-is
                    }
                }
                append_utf8(out, code);
                break;
              }
              default: return error("bad escape character");
            }
        }
        return error("unterminated string");
    }

    bool
    parse_hex4(unsigned *out)
    {
        if (pos_ + 4 > text_.size())
            return false;
        unsigned value = 0;
        for (int i = 0; i < 4; ++i) {
            const char c = text_[pos_ + i];
            value <<= 4;
            if (c >= '0' && c <= '9')
                value |= static_cast<unsigned>(c - '0');
            else if (c >= 'a' && c <= 'f')
                value |= static_cast<unsigned>(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F')
                value |= static_cast<unsigned>(c - 'A' + 10);
            else
                return false;
        }
        pos_ += 4;
        *out = value;
        return true;
    }

    Status
    parse_number(JsonValue *out)
    {
        size_t end = pos_;
        while (end < text_.size()) {
            const char c = text_[end];
            if ((c >= '0' && c <= '9') || c == '-' || c == '+' ||
                c == '.' || c == 'e' || c == 'E') {
                ++end;
            } else {
                break;
            }
        }
        // Locale-independent, shortest-round-trip inverse of the
        // writer's std::to_chars — never strtod, whose decimal
        // separator follows LC_NUMERIC.
        double value = 0.0;
        const auto [ptr, ec] = std::from_chars(
            text_.data() + pos_, text_.data() + end, value);
        if (ec != std::errc() || ptr != text_.data() + end ||
            end == pos_)
            return error("bad number");
        pos_ = end;
        out->type_ = JsonValue::Type::kNumber;
        out->number_ = value;
        return Status::ok();
    }

    const std::string &text_;
    size_t pos_ = 0;
};

bool
JsonValue::as_bool(bool fallback) const
{
    return is_bool() ? bool_ : fallback;
}

double
JsonValue::as_double(double fallback) const
{
    return is_number() ? number_ : fallback;
}

const std::string &
JsonValue::as_string() const
{
    return is_string() ? string_ : kEmptyString;
}

size_t
JsonValue::size() const
{
    if (is_array())
        return array_.size();
    if (is_object())
        return members_.size();
    return 0;
}

const JsonValue &
JsonValue::at(size_t i) const
{
    if (!is_array() || i >= array_.size())
        return kNullValue;
    return array_[i];
}

const JsonValue *
JsonValue::find(const std::string &key) const
{
    if (!is_object())
        return nullptr;
    for (const auto &[name, value] : members_) {
        if (name == key)
            return &value;
    }
    return nullptr;
}

const JsonValue &
JsonValue::get(const std::string &key) const
{
    const JsonValue *value = find(key);
    return value != nullptr ? *value : kNullValue;
}

namespace {

void
serialize(const JsonValue &value, JsonWriter *json)
{
    switch (value.type()) {
      case JsonValue::Type::kNull: json->value_null(); break;
      case JsonValue::Type::kBool: json->value(value.as_bool()); break;
      case JsonValue::Type::kNumber:
        json->value(value.as_double());
        break;
      case JsonValue::Type::kString:
        json->value(value.as_string());
        break;
      case JsonValue::Type::kArray:
        json->begin_array();
        for (const JsonValue &element : value.array())
            serialize(element, json);
        json->end_array();
        break;
      case JsonValue::Type::kObject:
        json->begin_object();
        for (const auto &[name, member] : value.members()) {
            json->key(name);
            serialize(member, json);
        }
        json->end_object();
        break;
    }
}

}  // namespace

std::string
JsonValue::to_json() const
{
    JsonWriter json;
    serialize(*this, &json);
    return json.str();
}

StatusOr<JsonValue>
parse_json(const std::string &text)
{
    JsonParser parser(text);
    return parser.parse_document();
}

StatusOr<JsonValue>
parse_json_file(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (f == nullptr)
        return Status::invalid_argument("cannot open " + path);
    std::string text;
    char buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        text.append(buf, n);
    std::fclose(f);
    StatusOr<JsonValue> parsed = parse_json(text);
    if (!parsed.is_ok()) {
        return Status::invalid_argument(path + ": " +
                                        parsed.status().message());
    }
    return parsed;
}

}  // namespace hdvb
