/**
 * @file
 * Fixed-size worker pool and a blocking parallel_for on top of it — the
 * concurrency substrate of the sweep engine. The pool parallelises
 * *across* measurement points; each point's timed region stays
 * single-threaded so per-point fps remains comparable to the paper's
 * single-core numbers.
 */
#ifndef HDVB_COMMON_THREAD_POOL_H
#define HDVB_COMMON_THREAD_POOL_H

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace hdvb {

/**
 * Default worker count for sweep-style parallelism: the HDVB_JOBS
 * environment variable when set to a positive integer, otherwise the
 * hardware concurrency (at least 1).
 */
int default_job_count();

/**
 * A fixed set of worker threads draining a FIFO task queue. Tasks
 * receive the id (0..worker_count-1) of the worker running them, which
 * the sweep engine records for observability. Destruction drains the
 * queue, then joins.
 */
class ThreadPool
{
  public:
    /** Spawn @p workers threads (clamped to at least 1). */
    explicit ThreadPool(int workers);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    int worker_count() const { return static_cast<int>(threads_.size()); }

    /** Enqueue @p task; it runs on some worker as task(worker_id). */
    void submit(std::function<void(int)> task);

  private:
    void worker_main(int id);

    std::vector<std::thread> threads_;
    std::deque<std::function<void(int)>> queue_;
    std::mutex mu_;
    std::condition_variable cv_;
    bool stopping_ = false;
};

/**
 * Run body(index, worker_id) for every index in [0, count) across the
 * pool's workers and block until all complete. Indices are claimed
 * dynamically (no static partition), so uneven point costs — a 1088p
 * H.264 encode next to a 576p MPEG-2 decode — still balance.
 *
 * The first exception thrown by any invocation is rethrown here after
 * the remaining in-flight bodies finish; unclaimed indices are skipped
 * once an exception is recorded. count <= 0 is a no-op. Must not be
 * called from inside a task running on the same pool (the caller
 * blocks, and nested waits could consume every worker).
 */
void parallel_for(ThreadPool &pool, int count,
                  const std::function<void(int, int)> &body);

}  // namespace hdvb

#endif  // HDVB_COMMON_THREAD_POOL_H
