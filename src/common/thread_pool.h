/**
 * @file
 * Fixed-size worker pool and a blocking parallel_for on top of it — the
 * concurrency substrate of the sweep engine and, since the threads
 * knob on CodecConfig, of the codecs themselves. The sweep pool
 * parallelises *across* measurement points; each codec instance may
 * additionally own a private pool that parallelises MB-row bands
 * *inside* one encode/decode (see src/common/wavefront.h).
 */
#ifndef HDVB_COMMON_THREAD_POOL_H
#define HDVB_COMMON_THREAD_POOL_H

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace hdvb {

/**
 * Default worker count for sweep-style parallelism: the HDVB_JOBS
 * environment variable when set to a positive integer, otherwise the
 * hardware concurrency (at least 1). Malformed values (trailing
 * garbage, non-numeric, zero or negative) are rejected with a logged
 * warning rather than silently truncated the way atoi would.
 */
int default_job_count();

/**
 * A fixed set of worker threads draining a FIFO task queue. Tasks
 * receive the id (0..worker_count-1) of the worker running them, which
 * the sweep engine records for observability. Destruction drains the
 * queue, then joins.
 */
class ThreadPool
{
  public:
    /** Spawn @p workers threads (clamped to at least 1). */
    explicit ThreadPool(int workers);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    int worker_count() const { return static_cast<int>(threads_.size()); }

    /** Enqueue @p task; it runs on some worker as task(worker_id). */
    void submit(std::function<void(int)> task);

    /**
     * True when the calling thread is one of *this* pool's workers.
     * Distinguishes pools: a sweep worker driving a codec's private
     * band pool is on_worker_thread() for the sweep pool only, so the
     * codec pool's parallel_for re-entrancy check still passes.
     */
    bool on_worker_thread() const;

  private:
    void worker_main(int id);

    std::vector<std::thread> threads_;
    std::deque<std::function<void(int)>> queue_;
    std::mutex mu_;
    std::condition_variable cv_;
    bool stopping_ = false;
};

/**
 * Run body(index, worker_id) for every index in [0, count) across the
 * pool's workers and block until all complete. Indices are claimed
 * dynamically (no static partition), so uneven point costs — a 1088p
 * H.264 encode next to a 576p MPEG-2 decode — still balance.
 *
 * The first exception thrown by any invocation is rethrown here after
 * the remaining in-flight bodies finish; unclaimed indices are skipped
 * once an exception is recorded. count <= 0 is a no-op.
 *
 * Must not be called from inside a task running on the same pool: the
 * caller blocks, and nested waits could consume every worker. This is
 * enforced with an HDVB_DCHECK (calling from a *different* pool's
 * worker is fine and is exactly how sweep workers drive codec pools).
 */
void parallel_for(ThreadPool &pool, int count,
                  const std::function<void(int, int)> &body);

/**
 * A batch of tasks submitted to a pool that can be awaited as a unit.
 * Unlike parallel_for the task list need not be known up front: tasks
 * can be run() one by one (e.g. one per parsed bitstream row) and
 * wait() blocks until every one of them has finished, rethrowing the
 * first exception any task threw. Not reusable after wait().
 */
class TaskGroup
{
  public:
    explicit TaskGroup(ThreadPool &pool) : pool_(pool) {}

    /** Joins outstanding tasks; any unretrieved exception is lost. */
    ~TaskGroup();

    TaskGroup(const TaskGroup &) = delete;
    TaskGroup &operator=(const TaskGroup &) = delete;

    /** Enqueue @p task on the pool as part of this group. */
    void run(std::function<void()> task);

    /** Block until all run() tasks finish; rethrow their first error. */
    void wait();

  private:
    ThreadPool &pool_;
    std::mutex mu_;
    std::condition_variable done_;
    int pending_ = 0;
    std::exception_ptr error_;
};

}  // namespace hdvb

#endif  // HDVB_COMMON_THREAD_POOL_H
