#include "common/cli.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

namespace hdvb {

StatusOr<const char *>
cli_value(int argc, char **argv, int *i)
{
    if (*i + 1 >= argc)
        return Status::invalid_argument(std::string(argv[*i]) +
                                        " requires a value");
    ++*i;
    return static_cast<const char *>(argv[*i]);
}

StatusOr<int>
cli_int(const char *flag, const char *text, int min_value, int max_value)
{
    int value = 0;
    const char *end = text + std::strlen(text);
    const auto [ptr, ec] = std::from_chars(text, end, value);
    if (ec != std::errc() || ptr != end)
        return Status::invalid_argument(std::string(flag) +
                                        ": not an integer: \"" + text +
                                        "\"");
    if (value < min_value || value > max_value)
        return Status::invalid_argument(
            std::string(flag) + ": " + std::to_string(value) +
            " out of range [" + std::to_string(min_value) + ", " +
            std::to_string(max_value) + "]");
    return value;
}

StatusOr<int>
cli_int_value(int argc, char **argv, int *i, int min_value,
              int max_value)
{
    const char *flag = argv[*i];
    const StatusOr<const char *> text = cli_value(argc, argv, i);
    if (!text.is_ok())
        return text.status();
    return cli_int(flag, text.value(), min_value, max_value);
}

StatusOr<double>
cli_double(const char *flag, const char *text, double min_value,
           double max_value)
{
    // std::strtod instead of from_chars: the double overload is the
    // one piece of <charconv> older standard libraries still lack.
    // strtod skips leading whitespace, which the strict contract
    // forbids, so guard that case explicitly.
    char *end = nullptr;
    const double value = std::strtod(text, &end);
    if (std::isspace(static_cast<unsigned char>(text[0])) ||
        end == text || *end != '\0' || !std::isfinite(value))
        return Status::invalid_argument(std::string(flag) +
                                        ": not a finite number: \"" +
                                        text + "\"");
    if (value < min_value || value > max_value)
        return Status::invalid_argument(
            std::string(flag) + ": " + std::to_string(value) +
            " out of range [" + std::to_string(min_value) + ", " +
            std::to_string(max_value) + "]");
    return value;
}

StatusOr<double>
cli_double_value(int argc, char **argv, int *i, double min_value,
                 double max_value)
{
    const char *flag = argv[*i];
    const StatusOr<const char *> text = cli_value(argc, argv, i);
    if (!text.is_ok())
        return text.status();
    return cli_double(flag, text.value(), min_value, max_value);
}

int
cli_usage_error(const char *prog, const Status &status)
{
    std::fprintf(stderr, "%s: %s\n", prog,
                 status.to_string().c_str());
    return 2;
}

}  // namespace hdvb
