#include "common/status.h"

namespace hdvb {

const char *
status_code_name(StatusCode code)
{
    switch (code) {
      case StatusCode::kOk: return "ok";
      case StatusCode::kInvalidArgument: return "invalid-argument";
      case StatusCode::kCorruptStream: return "corrupt-stream";
      case StatusCode::kOutOfRange: return "out-of-range";
      case StatusCode::kUnimplemented: return "unimplemented";
      case StatusCode::kInternal: return "internal";
      case StatusCode::kDeadlineExceeded: return "deadline-exceeded";
      case StatusCode::kResourceExhausted: return "resource-exhausted";
      case StatusCode::kUnavailable: return "unavailable";
      case StatusCode::kDataLoss: return "data-loss";
    }
    return "unknown";
}

bool
status_is_transient(StatusCode code)
{
    return code == StatusCode::kUnavailable ||
           code == StatusCode::kDeadlineExceeded;
}

std::string
Status::to_string() const
{
    if (is_ok())
        return "ok";
    std::string out = status_code_name(code_);
    if (!message_.empty()) {
        out += ": ";
        out += message_;
    }
    return out;
}

}  // namespace hdvb
