/**
 * @file
 * Minimal leveled logging for the benchmark harness. Codec hot paths do
 * not log; this exists for the runner, examples and tools.
 */
#ifndef HDVB_COMMON_LOG_H
#define HDVB_COMMON_LOG_H

#include <sstream>
#include <string>

namespace hdvb {

enum class LogLevel { kDebug = 0, kInfo, kWarn, kError };

/** Global threshold; messages below it are dropped. Default kInfo. */
void set_log_level(LogLevel level);
LogLevel log_level();

/** Emit one log line to stderr. Safe to call from sweep workers:
 * each line is a single stdio call, so lines never interleave. */
void log_message(LogLevel level, const std::string &msg);

namespace detail {

/** Stream-style collector that emits on destruction. */
class LogLine
{
  public:
    explicit LogLine(LogLevel level) : level_(level) {}
    ~LogLine() { log_message(level_, stream_.str()); }

    template <typename T>
    LogLine &
    operator<<(const T &value)
    {
        stream_ << value;
        return *this;
    }

  private:
    LogLevel level_;
    std::ostringstream stream_;
};

}  // namespace detail

}  // namespace hdvb

#define HDVB_LOG(level) ::hdvb::detail::LogLine(::hdvb::LogLevel::level)

#endif  // HDVB_COMMON_LOG_H
