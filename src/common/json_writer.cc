#include "common/json_writer.h"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <filesystem>

#include "common/check.h"

namespace hdvb {

Status
JsonWriter::write_file(const std::string &path) const
{
    std::error_code ec;
    std::filesystem::create_directories(
        std::filesystem::path(path).parent_path(), ec);
    const std::string tmp_path = path + ".tmp";
    std::FILE *f = std::fopen(tmp_path.c_str(), "w");
    if (f == nullptr)
        return Status::invalid_argument("cannot open " + tmp_path);
    const bool ok =
        std::fwrite(out_.data(), 1, out_.size(), f) == out_.size() &&
        std::fputc('\n', f) != EOF;
    if (std::fclose(f) != 0 || !ok) {
        std::remove(tmp_path.c_str());
        return Status::internal("short write to " + tmp_path);
    }
    if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
        std::remove(tmp_path.c_str());
        return Status::internal("cannot rename " + tmp_path);
    }
    return Status::ok();
}

void
JsonWriter::separate()
{
    if (after_key_) {
        after_key_ = false;
        return;
    }
    if (!has_item_.empty()) {
        if (has_item_.back())
            out_ += ',';
        has_item_.back() = true;
    }
}

JsonWriter &
JsonWriter::begin_object()
{
    separate();
    out_ += '{';
    has_item_.push_back(false);
    return *this;
}

JsonWriter &
JsonWriter::end_object()
{
    has_item_.pop_back();
    out_ += '}';
    return *this;
}

JsonWriter &
JsonWriter::begin_array()
{
    separate();
    out_ += '[';
    has_item_.push_back(false);
    return *this;
}

JsonWriter &
JsonWriter::end_array()
{
    has_item_.pop_back();
    out_ += ']';
    return *this;
}

JsonWriter &
JsonWriter::key(const std::string &name)
{
    separate();
    out_ += '"';
    out_ += escape(name);
    out_ += "\":";
    after_key_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(const std::string &text)
{
    separate();
    out_ += '"';
    out_ += escape(text);
    out_ += '"';
    return *this;
}

JsonWriter &
JsonWriter::value(const char *text)
{
    return value(std::string(text));
}

JsonWriter &
JsonWriter::value(double number)
{
    separate();
    if (!std::isfinite(number)) {
        out_ += "null";  // JSON has no inf/nan
        return *this;
    }
    // Shortest round-trip formatting. snprintf("%.6g") had two bugs
    // the BENCH comparator cannot live with: the decimal separator
    // follows LC_NUMERIC (a comma locale emitted invalid JSON), and 6
    // significant digits quantized every measurement. std::to_chars
    // is locale-independent and emits the shortest string that parses
    // back to exactly this double.
    char buf[32];
    const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), number);
    HDVB_DCHECK(ec == std::errc());
    out_.append(buf, ptr);
    return *this;
}

JsonWriter &
JsonWriter::value_null()
{
    separate();
    out_ += "null";
    return *this;
}

JsonWriter &
JsonWriter::value(s64 number)
{
    separate();
    out_ += std::to_string(number);
    return *this;
}

JsonWriter &
JsonWriter::value(u64 number)
{
    separate();
    out_ += std::to_string(number);
    return *this;
}

JsonWriter &
JsonWriter::value(bool flag)
{
    separate();
    out_ += flag ? "true" : "false";
    return *this;
}

std::string
JsonWriter::escape(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (const char c : text) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

}  // namespace hdvb
