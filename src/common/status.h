/**
 * @file
 * Lightweight Status/StatusOr error propagation, in the spirit of the
 * fatal()-vs-panic() split the gem5 style guide describes: Status is for
 * conditions caused by the caller (bad configuration, truncated or
 * corrupt bitstreams), while HDVB_CHECK (see check.h) is for internal
 * invariant violations, i.e. bugs in this library.
 */
#ifndef HDVB_COMMON_STATUS_H
#define HDVB_COMMON_STATUS_H

#include <optional>
#include <string>
#include <utility>

#include "common/check.h"

namespace hdvb {

/** Error categories surfaced by the public API. */
enum class StatusCode {
    kOk = 0,
    kInvalidArgument,   ///< Caller supplied an unusable value.
    kCorruptStream,     ///< Bitstream failed to parse.
    kOutOfRange,        ///< Index or size outside the valid domain.
    kUnimplemented,     ///< Feature intentionally not built.
    kInternal,          ///< Unexpected internal failure.
    kDeadlineExceeded,  ///< Operation ran past its wall-clock budget.
    kResourceExhausted, ///< A budget (sessions, memory, queue) is full.
};

/** Human-readable name of a StatusCode ("ok", "corrupt-stream", ...). */
const char *status_code_name(StatusCode code);

/**
 * Result of a fallible operation: a code plus an optional message.
 * Cheap to copy in the OK case (empty message).
 */
class Status
{
  public:
    /** Constructs an OK status. */
    Status() = default;

    Status(StatusCode code, std::string message)
        : code_(code), message_(std::move(message))
    {}

    static Status ok() { return Status(); }
    static Status invalid_argument(std::string msg)
    { return Status(StatusCode::kInvalidArgument, std::move(msg)); }
    static Status corrupt_stream(std::string msg)
    { return Status(StatusCode::kCorruptStream, std::move(msg)); }
    static Status out_of_range(std::string msg)
    { return Status(StatusCode::kOutOfRange, std::move(msg)); }
    static Status unimplemented(std::string msg)
    { return Status(StatusCode::kUnimplemented, std::move(msg)); }
    static Status internal(std::string msg)
    { return Status(StatusCode::kInternal, std::move(msg)); }
    static Status deadline_exceeded(std::string msg)
    { return Status(StatusCode::kDeadlineExceeded, std::move(msg)); }
    static Status resource_exhausted(std::string msg)
    { return Status(StatusCode::kResourceExhausted, std::move(msg)); }

    bool is_ok() const { return code_ == StatusCode::kOk; }
    StatusCode code() const { return code_; }
    const std::string &message() const { return message_; }

    /** "ok" or "<code-name>: <message>". */
    std::string to_string() const;

  private:
    StatusCode code_ = StatusCode::kOk;
    std::string message_;
};

/**
 * Either a value or the Status explaining why there is none. The
 * factory and parsing layers return this so that invalid input is a
 * reportable error instead of a silent bad construction.
 */
template <typename T>
class StatusOr
{
  public:
    /** Construct from a non-OK status (OK without a value is a bug). */
    StatusOr(Status status) : status_(std::move(status))
    {
        HDVB_CHECK(!status_.is_ok());
    }

    StatusOr(T value) : value_(std::move(value)) {}

    bool is_ok() const { return status_.is_ok(); }

    /** OK unless the value is absent. */
    const Status &status() const { return status_; }

    /** The held value; HDVB_CHECKs that one is present. */
    const T &
    value() const &
    {
        HDVB_CHECK(value_.has_value());
        return *value_;
    }

    T &
    value() &
    {
        HDVB_CHECK(value_.has_value());
        return *value_;
    }

    /** Move the value out (for move-only payloads like unique_ptr). */
    T &&
    value() &&
    {
        HDVB_CHECK(value_.has_value());
        return *std::move(value_);
    }

  private:
    Status status_;
    std::optional<T> value_;
};

/** Propagate a non-OK status to the caller. */
#define HDVB_RETURN_IF_ERROR(expr)                                         \
    do {                                                                   \
        ::hdvb::Status hdvb_status_ = (expr);                              \
        if (!hdvb_status_.is_ok())                                         \
            return hdvb_status_;                                           \
    } while (0)

}  // namespace hdvb

#endif  // HDVB_COMMON_STATUS_H
