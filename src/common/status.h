/**
 * @file
 * Lightweight Status/StatusOr error propagation, in the spirit of the
 * fatal()-vs-panic() split the gem5 style guide describes: Status is for
 * conditions caused by the caller (bad configuration, truncated or
 * corrupt bitstreams), while HDVB_CHECK (see check.h) is for internal
 * invariant violations, i.e. bugs in this library.
 */
#ifndef HDVB_COMMON_STATUS_H
#define HDVB_COMMON_STATUS_H

#include <optional>
#include <string>
#include <utility>

#include "common/check.h"

namespace hdvb {

/**
 * Error categories surfaced by the public API.
 *
 * The codes split into two retry classes, and every layer (serve,
 * runner, sweep) conforms to the split:
 *
 * **Transient / retryable** — the same request may succeed if simply
 * tried again, so callers should back off and retry (see
 * fault/retry.h):
 *  - kUnavailable: a momentary condition — queue backpressure, an
 *    overloaded scheduler shedding a traffic class, a service shutting
 *    down. Nothing about the request itself is wrong.
 *  - kDeadlineExceeded: the wall-clock budget ran out; a retry with a
 *    fresh budget may complete.
 *
 * **Terminal / non-retryable** — retrying the identical request cannot
 * succeed; the caller must change something (input, configuration,
 * capacity) or give up:
 *  - kInvalidArgument: the request is malformed (also: use of a closed
 *    or failed session).
 *  - kCorruptStream: the input data is damaged; resubmitting the same
 *    bytes reproduces the failure.
 *  - kOutOfRange, kUnimplemented, kInternal: structural failures.
 *  - kResourceExhausted: a *hard* budget (admission session count,
 *    memory estimate) is full; unlike kUnavailable this does not clear
 *    by itself — capacity has to be released first.
 *  - kDataLoss: work was irrecoverably lost — e.g. tickets drained
 *    from a session that entered its terminal failed state.
 */
enum class StatusCode {
    kOk = 0,
    kInvalidArgument,   ///< Caller supplied an unusable value. Terminal.
    kCorruptStream,     ///< Bitstream failed to parse. Terminal.
    kOutOfRange,        ///< Index or size outside the valid domain.
    kUnimplemented,     ///< Feature intentionally not built.
    kInternal,          ///< Unexpected internal failure. Terminal.
    kDeadlineExceeded,  ///< Ran past its wall-clock budget. Transient.
    kResourceExhausted, ///< A hard budget is full. Terminal.
    kUnavailable,       ///< Momentary overload/backpressure. Transient.
    kDataLoss,          ///< Work irrecoverably lost. Terminal.
};

/** Human-readable name of a StatusCode ("ok", "corrupt-stream", ...). */
const char *status_code_name(StatusCode code);

/** True for the retryable codes (kUnavailable, kDeadlineExceeded):
 * backing off and resubmitting the same request may succeed. All other
 * non-OK codes are terminal for that request. */
bool status_is_transient(StatusCode code);

/**
 * Result of a fallible operation: a code plus an optional message.
 * Cheap to copy in the OK case (empty message).
 */
class Status
{
  public:
    /** Constructs an OK status. */
    Status() = default;

    Status(StatusCode code, std::string message)
        : code_(code), message_(std::move(message))
    {}

    static Status ok() { return Status(); }
    static Status invalid_argument(std::string msg)
    { return Status(StatusCode::kInvalidArgument, std::move(msg)); }
    static Status corrupt_stream(std::string msg)
    { return Status(StatusCode::kCorruptStream, std::move(msg)); }
    static Status out_of_range(std::string msg)
    { return Status(StatusCode::kOutOfRange, std::move(msg)); }
    static Status unimplemented(std::string msg)
    { return Status(StatusCode::kUnimplemented, std::move(msg)); }
    static Status internal(std::string msg)
    { return Status(StatusCode::kInternal, std::move(msg)); }
    static Status deadline_exceeded(std::string msg)
    { return Status(StatusCode::kDeadlineExceeded, std::move(msg)); }
    static Status resource_exhausted(std::string msg)
    { return Status(StatusCode::kResourceExhausted, std::move(msg)); }
    static Status unavailable(std::string msg)
    { return Status(StatusCode::kUnavailable, std::move(msg)); }
    static Status data_loss(std::string msg)
    { return Status(StatusCode::kDataLoss, std::move(msg)); }

    bool is_ok() const { return code_ == StatusCode::kOk; }
    StatusCode code() const { return code_; }
    const std::string &message() const { return message_; }

    /** "ok" or "<code-name>: <message>". */
    std::string to_string() const;

  private:
    StatusCode code_ = StatusCode::kOk;
    std::string message_;
};

/**
 * Either a value or the Status explaining why there is none. The
 * factory and parsing layers return this so that invalid input is a
 * reportable error instead of a silent bad construction.
 */
template <typename T>
class StatusOr
{
  public:
    /** Construct from a non-OK status (OK without a value is a bug). */
    StatusOr(Status status) : status_(std::move(status))
    {
        HDVB_CHECK(!status_.is_ok());
    }

    StatusOr(T value) : value_(std::move(value)) {}

    bool is_ok() const { return status_.is_ok(); }

    /** OK unless the value is absent. */
    const Status &status() const { return status_; }

    /** The held value; HDVB_CHECKs that one is present. */
    const T &
    value() const &
    {
        HDVB_CHECK(value_.has_value());
        return *value_;
    }

    T &
    value() &
    {
        HDVB_CHECK(value_.has_value());
        return *value_;
    }

    /** Move the value out (for move-only payloads like unique_ptr). */
    T &&
    value() &&
    {
        HDVB_CHECK(value_.has_value());
        return *std::move(value_);
    }

  private:
    Status status_;
    std::optional<T> value_;
};

/** Propagate a non-OK status to the caller. */
#define HDVB_RETURN_IF_ERROR(expr)                                         \
    do {                                                                   \
        ::hdvb::Status hdvb_status_ = (expr);                              \
        if (!hdvb_status_.is_ok())                                         \
            return hdvb_status_;                                           \
    } while (0)

}  // namespace hdvb

#endif  // HDVB_COMMON_STATUS_H
