/**
 * @file
 * Internal invariant checks. HDVB_CHECK aborts the process on violation
 * (an actual library bug, the panic() case); it is always on. HDVB_DCHECK
 * compiles away in NDEBUG builds and is used on hot paths.
 */
#ifndef HDVB_COMMON_CHECK_H
#define HDVB_COMMON_CHECK_H

#include <cstdio>
#include <cstdlib>

namespace hdvb::detail {

[[noreturn]] inline void
check_failed(const char *file, int line, const char *expr)
{
    std::fprintf(stderr, "HDVB_CHECK failed at %s:%d: %s\n",
                 file, line, expr);
    std::abort();
}

}  // namespace hdvb::detail

#define HDVB_CHECK(expr)                                                   \
    do {                                                                   \
        if (!(expr))                                                       \
            ::hdvb::detail::check_failed(__FILE__, __LINE__, #expr);       \
    } while (0)

#ifdef NDEBUG
/* Keep expr referenced (unevaluated) so release builds don't warn about
 * variables that exist only to be checked. */
#define HDVB_DCHECK(expr) do { (void)sizeof((expr) ? 1 : 0); } while (0)
#else
#define HDVB_DCHECK(expr) HDVB_CHECK(expr)
#endif

#endif  // HDVB_COMMON_CHECK_H
