/**
 * @file
 * Column-progress tracker for wavefront-ordered macroblock processing.
 *
 * The codecs' threaded mode partitions a picture into MB-row bands and
 * runs the analysis stage (motion estimation, transform, quant,
 * reconstruction) of each band on its own worker. Rows are not
 * independent: a macroblock may read reconstructed pixels, motion
 * vectors and predictor state from the row above, up to and including
 * the above-right neighbour. The classic wavefront order makes that
 * safe without changing any decision: before working on column c of
 * row r, wait until row r-1 has completed columns 0..c+1.
 *
 * WavefrontScheduler is that ordering as data: one atomic
 * columns-completed counter per row. Writers publish() with release
 * semantics after finishing a macroblock; readers wait_for() with
 * acquire semantics before starting one, which also gives TSan-visible
 * happens-before edges for every cross-row read.
 *
 * Progress counters are monotone and rows are claimed in increasing
 * order by parallel_for, so a waiter always chases a row that is
 * either finished or actively running — the wait cannot deadlock.
 * RowGuard poisons a row to fully-complete on scope exit so that an
 * exception unwinding a band can never strand the rows below it.
 */
#ifndef HDVB_COMMON_WAVEFRONT_H
#define HDVB_COMMON_WAVEFRONT_H

#include <atomic>
#include <thread>
#include <vector>

#include "common/check.h"

namespace hdvb {

class WavefrontScheduler
{
  public:
    WavefrontScheduler(int rows, int cols)
        : progress_(rows > 0 ? rows : 0), cols_(cols)
    {
        HDVB_DCHECK(rows >= 0 && cols > 0);
    }

    int rows() const { return static_cast<int>(progress_.size()); }
    int cols() const { return cols_; }

    /** Mark columns [0, cols_done) of @p row complete. */
    void
    publish(int row, int cols_done)
    {
        progress_[row].done.store(cols_done, std::memory_order_release);
    }

    /** Block until @p row has completed at least @p cols_done columns.
     * Spins with yield: bands are balanced, so waits are short. On a
     * single hardware thread spinning only delays the producer band,
     * so there the waiter yields immediately instead. */
    void
    wait_for(int row, int cols_done) const
    {
        if (cols_done > cols_)
            cols_done = cols_;
        static const bool spin_first =
            std::thread::hardware_concurrency() > 1;
        const std::atomic<int> &done = progress_[row].done;
        int spins = 0;
        while (done.load(std::memory_order_acquire) < cols_done) {
            if (!spin_first || ++spins > 64) {
                std::this_thread::yield();
                spins = 0;
            }
        }
    }

    /** Convenience: the wavefront dependency of MB (col, row) — the
     * row above must be done through its above-right neighbour. */
    void
    wait_above(int row, int col) const
    {
        if (row > 0)
            wait_for(row - 1, col + 2);
    }

  private:
    struct alignas(64) RowProgress {
        std::atomic<int> done{0};
    };
    std::vector<RowProgress> progress_;
    int cols_;
};

/**
 * Scope guard for one band: on destruction — normal completion or
 * exception unwind — marks the row fully complete so rows below never
 * wait on a dead band. On the unwind path the parallel_for machinery
 * is already recording the exception; the poisoned row only exists to
 * let in-flight siblings drain.
 */
class WavefrontRowGuard
{
  public:
    WavefrontRowGuard(WavefrontScheduler &scheduler, int row)
        : scheduler_(scheduler), row_(row)
    {
    }
    ~WavefrontRowGuard() { scheduler_.publish(row_, scheduler_.cols()); }

    WavefrontRowGuard(const WavefrontRowGuard &) = delete;
    WavefrontRowGuard &operator=(const WavefrontRowGuard &) = delete;

  private:
    WavefrontScheduler &scheduler_;
    int row_;
};

}  // namespace hdvb

#endif  // HDVB_COMMON_WAVEFRONT_H
