/**
 * @file
 * Strict argv parsing shared by the example binaries and the benches.
 *
 * Every CLI in the repo used the same two latent bugs: a `next()`
 * lambda that returned "" when a trailing flag had no value, and
 * std::atoi, which turns both that "" and any malformed number into a
 * silent 0 (so `-frames` at the end of the line quietly encoded zero
 * frames). These helpers give argv values the same contract as
 * HDVB_* environment variables (src/common/env.h) and the container
 * header parser (src/core/runner.cc): full-token std::from_chars
 * validation and a hard, printed error instead of a guessed value.
 */
#ifndef HDVB_COMMON_CLI_H
#define HDVB_COMMON_CLI_H

#include <cfloat>
#include <climits>

#include "common/status.h"

namespace hdvb {

/**
 * The value token following the flag at argv[*i], advancing *i past
 * it. A flag at the end of the line is an invalid-argument error, not
 * an empty string.
 */
StatusOr<const char *> cli_value(int argc, char **argv, int *i);

/**
 * Strictly parsed integer @p text for flag @p flag: the whole token
 * must parse ("8x", "3 4" and "" are errors, not prefixes) and lie in
 * [@p min_value, @p max_value].
 */
StatusOr<int> cli_int(const char *flag, const char *text,
                      int min_value = INT_MIN, int max_value = INT_MAX);

/** cli_value() + cli_int() for the flag at argv[*i]. */
StatusOr<int> cli_int_value(int argc, char **argv, int *i,
                            int min_value = INT_MIN,
                            int max_value = INT_MAX);

/**
 * Strictly parsed finite double @p text for flag @p flag; same
 * whole-token contract as cli_int ("2.5x", "" and "nan" are errors,
 * not prefixes or values) plus an inclusive [@p min_value,
 * @p max_value] range check.
 */
StatusOr<double> cli_double(const char *flag, const char *text,
                            double min_value = -DBL_MAX,
                            double max_value = DBL_MAX);

/** cli_value() + cli_double() for the flag at argv[*i]. */
StatusOr<double> cli_double_value(int argc, char **argv, int *i,
                                  double min_value = -DBL_MAX,
                                  double max_value = DBL_MAX);

/** Print @p status to stderr as "<prog>: <message>" and return the
 * conventional CLI exit code 2 (usage error). */
int cli_usage_error(const char *prog, const Status &status);

}  // namespace hdvb

#endif  // HDVB_COMMON_CLI_H
