/**
 * @file
 * Fundamental fixed-width type aliases and small helpers used across the
 * HD-VideoBench reproduction.
 */
#ifndef HDVB_COMMON_TYPES_H
#define HDVB_COMMON_TYPES_H

#include <cstddef>
#include <cstdint>

namespace hdvb {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using s8 = std::int8_t;
using s16 = std::int16_t;
using s32 = std::int32_t;
using s64 = std::int64_t;

/** Pixel sample type (8-bit video throughout the benchmark). */
using Pixel = u8;
/** Transform-coefficient / residual type. */
using Coeff = s16;

/** Clamp @p v into [lo, hi]. */
template <typename T>
constexpr T
clamp(T v, T lo, T hi)
{
    return v < lo ? lo : (v > hi ? hi : v);
}

/** Clamp an integer into the 8-bit pixel range. */
constexpr Pixel
clamp_pixel(int v)
{
    return static_cast<Pixel>(clamp(v, 0, 255));
}

/** Round @p v up to the next multiple of @p align (align must be > 0). */
constexpr int
round_up(int v, int align)
{
    return (v + align - 1) / align * align;
}

/** Integer division rounding to nearest (ties away from zero). */
constexpr int
div_round(int num, int den)
{
    return num >= 0 ? (num + den / 2) / den : -((-num + den / 2) / den);
}

/** Median of three values, used by motion-vector predictors. */
template <typename T>
constexpr T
median3(T a, T b, T c)
{
    const T mx = a > b ? a : b;
    const T mn = a > b ? b : a;
    return c > mx ? mx : (c < mn ? mn : c);
}

}  // namespace hdvb

#endif  // HDVB_COMMON_TYPES_H
