/**
 * @file
 * Minimal streaming JSON emitter for the machine-readable sweep
 * reports. Handles nesting, comma placement and string escaping; the
 * caller is responsible for well-formedness (every begin has an end,
 * keys only inside objects).
 */
#ifndef HDVB_COMMON_JSON_WRITER_H
#define HDVB_COMMON_JSON_WRITER_H

#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"

namespace hdvb {

/** Builds a JSON document into an in-memory string. */
class JsonWriter
{
  public:
    JsonWriter &begin_object();
    JsonWriter &end_object();
    JsonWriter &begin_array();
    JsonWriter &end_array();

    /** Emit a key; must be followed by a value or begin_*. */
    JsonWriter &key(const std::string &name);

    JsonWriter &value(const std::string &text);
    JsonWriter &value(const char *text);
    /** Locale-independent shortest-round-trip double formatting
     * (std::to_chars): the emitted text parses back — via the
     * reader's std::from_chars — to exactly this double, and the
     * bytes do not depend on LC_NUMERIC. */
    JsonWriter &value(double number);
    /** Explicit JSON null (non-finite doubles also emit null). */
    JsonWriter &value_null();
    JsonWriter &value(s64 number);
    JsonWriter &value(int number) { return value(static_cast<s64>(number)); }
    JsonWriter &value(u64 number);
    JsonWriter &value(bool flag);

    /** key() + value() in one call. */
    template <typename T>
    JsonWriter &
    field(const std::string &name, T v)
    {
        key(name);
        return value(v);
    }

    /** The document built so far. */
    const std::string &str() const { return out_; }

    /**
     * Publish the document to @p path atomically (write to a
     * temporary sibling, then rename), creating parent directories as
     * needed and appending a trailing newline — how every bench
     * commits its machine-readable report.
     */
    Status write_file(const std::string &path) const;

    /** JSON string escaping (quotes, backslash, control characters). */
    static std::string escape(const std::string &text);

  private:
    void separate();

    std::string out_;
    std::vector<bool> has_item_;  ///< per nesting level
    bool after_key_ = false;
};

}  // namespace hdvb

#endif  // HDVB_COMMON_JSON_WRITER_H
