/**
 * @file
 * The one place HDVB_* environment variables are read and validated.
 * Every knob used to carry its own getenv + parse snippet (HDVB_JOBS in
 * thread_pool.cc, HDVB_FRAMES in runner.cc, HDVB_SIMD in dispatch.cc)
 * with three slightly different strictness levels; these accessors give
 * them one contract: full-string `from_chars` validation, a logged
 * warning the *first* time a malformed value is seen (not once per
 * call — a sweep reads HDVB_JOBS thousands of times), and a documented
 * fallback. Values are re-read on every call, never cached, so tests
 * may set and unset variables freely.
 */
#ifndef HDVB_COMMON_ENV_H
#define HDVB_COMMON_ENV_H

namespace hdvb {

/** Raw value of @p name, or nullptr when unset or set to "". */
const char *env_raw(const char *name);

/**
 * Strictly parsed positive integer value of @p name. The whole value
 * must parse ("8x", "3 4", " 5" and "-2" are configuration mistakes,
 * not requests for a prefix); anything else warns once per variable
 * name and returns @p fallback. Unset/empty returns @p fallback
 * silently.
 */
int env_positive_int(const char *name, int fallback);

}  // namespace hdvb

#endif  // HDVB_COMMON_ENV_H
