#include "common/stats.h"

#include <algorithm>
#include <cmath>

namespace hdvb {

void
sort_samples(std::vector<double> *samples)
{
    std::sort(samples->begin(), samples->end());
}

double
percentile_sorted(const std::vector<double> &sorted, double q)
{
    if (sorted.empty())
        return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    // Nearest rank: the smallest element with at least q*N samples at
    // or below it. ceil instead of the old truncation, so an exact
    // multiple (p50 of 10 samples) selects the rank itself rather
    // than the element above it.
    const double rank = std::ceil(q * static_cast<double>(sorted.size()));
    const size_t index = rank < 1.0
                             ? 0
                             : std::min(static_cast<size_t>(rank) - 1,
                                        sorted.size() - 1);
    return sorted[index];
}

double
median_sorted(const std::vector<double> &sorted)
{
    if (sorted.empty())
        return 0.0;
    const size_t n = sorted.size();
    if (n % 2 == 1)
        return sorted[n / 2];
    return 0.5 * (sorted[n / 2 - 1] + sorted[n / 2]);
}

double
mean(const std::vector<double> &samples)
{
    if (samples.empty())
        return 0.0;
    double sum = 0.0;
    for (const double v : samples)
        sum += v;
    return sum / static_cast<double>(samples.size());
}

double
sample_stddev(const std::vector<double> &samples)
{
    const size_t n = samples.size();
    if (n < 2)
        return 0.0;
    const double m = mean(samples);
    double sq = 0.0;
    for (const double v : samples)
        sq += (v - m) * (v - m);
    return std::sqrt(sq / static_cast<double>(n - 1));
}

double
coefficient_of_variation(const std::vector<double> &samples)
{
    const double m = mean(samples);
    if (samples.size() < 2 || m == 0.0)
        return 0.0;
    return sample_stddev(samples) / std::fabs(m);
}

SampleSummary
summarize(std::vector<double> samples)
{
    SampleSummary summary;
    summary.count = samples.size();
    if (samples.empty())
        return summary;
    sort_samples(&samples);
    summary.min = samples.front();
    summary.max = samples.back();
    summary.mean = mean(samples);
    summary.median = median_sorted(samples);
    summary.stddev = sample_stddev(samples);
    summary.cov = summary.mean != 0.0
                      ? summary.stddev / std::fabs(summary.mean)
                      : 0.0;
    return summary;
}

}  // namespace hdvb
