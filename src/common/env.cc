#include "common/env.h"

#include <charconv>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <set>
#include <string>

#include "common/log.h"

namespace hdvb {

namespace {

/** Warn about a malformed variable once per (name, value) pair, so a
 * changed-but-still-bad value is reported again but steady-state
 * re-reads stay quiet. */
void
warn_once(const char *name, const char *value, const char *want)
{
    static std::mutex mu;
    static std::set<std::string> warned;
    const std::string key = std::string(name) + "=" + value;
    {
        std::lock_guard<std::mutex> lock(mu);
        if (!warned.insert(key).second)
            return;
    }
    HDVB_LOG(kWarn) << "ignoring malformed " << name << "=\"" << value
                    << "\" (want " << want << ")";
}

}  // namespace

const char *
env_raw(const char *name)
{
    const char *value = std::getenv(name);
    return (value != nullptr && *value != '\0') ? value : nullptr;
}

int
env_positive_int(const char *name, int fallback)
{
    const char *value = env_raw(name);
    if (value == nullptr)
        return fallback;
    // Full-string validation: "8x" and "abc" are configuration
    // mistakes, not requests for 8 or for the fallback.
    const char *end = value + std::strlen(value);
    int n = 0;
    const auto [ptr, ec] = std::from_chars(value, end, n);
    if (ec == std::errc() && ptr == end && n > 0)
        return n;
    warn_once(name, value, "a positive integer");
    return fallback;
}

}  // namespace hdvb
