/**
 * @file
 * Internal declarations of the per-level kernel implementations. Only
 * dispatch.cc should include this; everyone else goes through get_dsp().
 */
#ifndef HDVB_SIMD_KERNELS_H
#define HDVB_SIMD_KERNELS_H

#include "common/types.h"

namespace hdvb::kernels {

// ---- scalar reference implementations ----
int scalar_sad16x16(const Pixel *a, int as, const Pixel *b, int bs);
int scalar_sad8x8(const Pixel *a, int as, const Pixel *b, int bs);
int scalar_sad_rect(const Pixel *a, int as, const Pixel *b, int bs,
                    int w, int h);
int scalar_sad16x16_et(const Pixel *a, int as, const Pixel *b, int bs,
                       int bound);
int scalar_sad_rect_et(const Pixel *a, int as, const Pixel *b, int bs,
                       int w, int h, int bound);
int scalar_satd4x4(const Pixel *a, int as, const Pixel *b, int bs);
int scalar_satd_rect(const Pixel *a, int as, const Pixel *b, int bs,
                     int w, int h);
u64 scalar_sse_rect(const Pixel *a, int as, const Pixel *b, int bs,
                    int w, int h);
void scalar_copy_rect(Pixel *dst, int ds, const Pixel *src, int ss,
                      int w, int h);
void scalar_avg_rect(Pixel *dst, int ds, const Pixel *a, int as,
                     const Pixel *b, int bs, int w, int h);
void scalar_avg4_rect(Pixel *dst, int ds, const Pixel *src, int ss,
                      int w, int h);
void scalar_qpel_bilin_rect(Pixel *dst, int ds, const Pixel *src, int ss,
                            int w, int h, int fx, int fy);
void scalar_sub_rect(Coeff *dst, int ds, const Pixel *src, int ss,
                     const Pixel *pred, int ps, int w, int h);
void scalar_add_rect(Pixel *dst, int ds, const Coeff *res, int rs,
                     int w, int h);
void scalar_fdct8x8(Coeff blk[64]);
void scalar_idct8x8(Coeff blk[64]);
void scalar_h264_hpel_h(Pixel *dst, int ds, const Pixel *src, int ss,
                        int w, int h);
void scalar_h264_hpel_v(Pixel *dst, int ds, const Pixel *src, int ss,
                        int w, int h);
void scalar_h264_hpel_hv(Pixel *dst, int ds, const Pixel *src, int ss,
                         int w, int h);

// ---- SSE2 implementations (compiled only when __SSE2__) ----
#if defined(__SSE2__)
int sse2_sad16x16(const Pixel *a, int as, const Pixel *b, int bs);
/** Aligned-first-operand variant: a % 16 == 0 and as % 16 == 0
 * (movdqa on the current-picture rows). */
int sse2_sad16x16_a(const Pixel *a, int as, const Pixel *b, int bs);
int sse2_sad8x8(const Pixel *a, int as, const Pixel *b, int bs);
int sse2_sad_rect(const Pixel *a, int as, const Pixel *b, int bs,
                  int w, int h);
int sse2_sad16x16_et(const Pixel *a, int as, const Pixel *b, int bs,
                     int bound);
int sse2_sad_rect_et(const Pixel *a, int as, const Pixel *b, int bs,
                     int w, int h, int bound);
int sse2_satd4x4(const Pixel *a, int as, const Pixel *b, int bs);
int sse2_satd_rect(const Pixel *a, int as, const Pixel *b, int bs,
                   int w, int h);
u64 sse2_sse_rect(const Pixel *a, int as, const Pixel *b, int bs,
                  int w, int h);
void sse2_avg_rect(Pixel *dst, int ds, const Pixel *a, int as,
                   const Pixel *b, int bs, int w, int h);
void sse2_avg4_rect(Pixel *dst, int ds, const Pixel *src, int ss,
                    int w, int h);
void sse2_qpel_bilin_rect(Pixel *dst, int ds, const Pixel *src, int ss,
                          int w, int h, int fx, int fy);
void sse2_sub_rect(Coeff *dst, int ds, const Pixel *src, int ss,
                   const Pixel *pred, int ps, int w, int h);
void sse2_add_rect(Pixel *dst, int ds, const Coeff *res, int rs,
                   int w, int h);
void sse2_fdct8x8(Coeff blk[64]);
void sse2_idct8x8(Coeff blk[64]);
void sse2_h264_hpel_h(Pixel *dst, int ds, const Pixel *src, int ss,
                      int w, int h);
void sse2_h264_hpel_v(Pixel *dst, int ds, const Pixel *src, int ss,
                      int w, int h);
void sse2_h264_hpel_hv(Pixel *dst, int ds, const Pixel *src, int ss,
                       int w, int h);
#endif  // __SSE2__

// ---- AVX2 implementations ----
// Compiled in a dedicated TU with -mavx2 (HDVB_BUILD_AVX2 is defined by
// CMake iff that TU is part of the build); they may only be *called*
// after runtime detection says the CPU executes AVX2.
// No avx2_sad*: 16-pixel strided rows cannot fill a ymm without
// cross-lane inserts that cost more than they save, so the avx2 table
// keeps the SSE2 SAD kernels (see kernels_avx2.cc).
#if defined(HDVB_BUILD_AVX2)
int avx2_satd_rect(const Pixel *a, int as, const Pixel *b, int bs,
                   int w, int h);
u64 avx2_sse_rect(const Pixel *a, int as, const Pixel *b, int bs,
                  int w, int h);
void avx2_avg_rect(Pixel *dst, int ds, const Pixel *a, int as,
                   const Pixel *b, int bs, int w, int h);
void avx2_avg4_rect(Pixel *dst, int ds, const Pixel *src, int ss,
                    int w, int h);
void avx2_qpel_bilin_rect(Pixel *dst, int ds, const Pixel *src, int ss,
                          int w, int h, int fx, int fy);
void avx2_sub_rect(Coeff *dst, int ds, const Pixel *src, int ss,
                   const Pixel *pred, int ps, int w, int h);
void avx2_add_rect(Pixel *dst, int ds, const Coeff *res, int rs,
                   int w, int h);
void avx2_fdct8x8(Coeff blk[64]);
void avx2_idct8x8(Coeff blk[64]);
void avx2_h264_hpel_h(Pixel *dst, int ds, const Pixel *src, int ss,
                      int w, int h);
void avx2_h264_hpel_v(Pixel *dst, int ds, const Pixel *src, int ss,
                      int w, int h);
void avx2_h264_hpel_hv(Pixel *dst, int ds, const Pixel *src, int ss,
                       int w, int h);
#endif  // HDVB_BUILD_AVX2

}  // namespace hdvb::kernels

#endif  // HDVB_SIMD_KERNELS_H
