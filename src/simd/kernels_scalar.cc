/**
 * @file
 * Scalar reference kernels. These define the semantics: every SSE2
 * kernel must match them bit-exactly (tests/simd_test.cc asserts this on
 * randomised inputs).
 */
#include "simd/kernels.h"

#include <cstdlib>
#include <cstring>

#include "common/types.h"
#include "simd/dct_matrix.h"

namespace hdvb::kernels {

namespace {

inline int
iabs(int v)
{
    return v < 0 ? -v : v;
}

/** Saturate to int16, matching _mm_packs_epi32 semantics. */
inline Coeff
sat16(s32 v)
{
    return static_cast<Coeff>(clamp<s32>(v, -32768, 32767));
}

/** One 1-D pass of the matrix DCT over the columns of an 8x8 block.
 * basis_row(k, n) selects M[k][n] (forward) or M[n][k] (inverse). */
template <bool kForward>
void
dct_col_pass(const Coeff *in, Coeff *out, int shift)
{
    const s32 round = 1 << (shift - 1);
    for (int k = 0; k < 8; ++k) {
        for (int x = 0; x < 8; ++x) {
            s32 acc = 0;
            for (int n = 0; n < 8; ++n) {
                const s32 m = kForward ? kDctMatrix[k][n]
                                       : kDctMatrix[n][k];
                acc += m * in[n * 8 + x];
            }
            out[k * 8 + x] = sat16((acc + round) >> shift);
        }
    }
}

/** Transpose an 8x8 block in place. */
void
transpose8x8(Coeff *blk)
{
    for (int y = 0; y < 8; ++y) {
        for (int x = y + 1; x < 8; ++x) {
            const Coeff t = blk[y * 8 + x];
            blk[y * 8 + x] = blk[x * 8 + y];
            blk[x * 8 + y] = t;
        }
    }
}

/** 4-point Hadamard butterfly used by SATD. */
inline void
hadamard4(int &a, int &b, int &c, int &d)
{
    const int s0 = a + b;
    const int d0 = a - b;
    const int s1 = c + d;
    const int d1 = c - d;
    a = s0 + s1;
    c = s0 - s1;
    b = d0 + d1;
    d = d0 - d1;
}

}  // namespace

int
scalar_sad16x16(const Pixel *a, int as, const Pixel *b, int bs)
{
    return scalar_sad_rect(a, as, b, bs, 16, 16);
}

int
scalar_sad8x8(const Pixel *a, int as, const Pixel *b, int bs)
{
    return scalar_sad_rect(a, as, b, bs, 8, 8);
}

int
scalar_sad_rect(const Pixel *a, int as, const Pixel *b, int bs,
                int w, int h)
{
    int sum = 0;
    for (int y = 0; y < h; ++y) {
        for (int x = 0; x < w; ++x)
            sum += iabs(static_cast<int>(a[x]) - static_cast<int>(b[x]));
        a += as;
        b += bs;
    }
    return sum;
}

int
scalar_sad_rect_et(const Pixel *a, int as, const Pixel *b, int bs,
                   int w, int h, int bound)
{
    // Early-termination SAD: bail between rows once the partial sum
    // exceeds the advisory bound. A return value > bound is a partial
    // (a lower bound on the true SAD); <= bound is exact.
    int sum = 0;
    for (int y = 0; y < h; ++y) {
        for (int x = 0; x < w; ++x)
            sum += iabs(static_cast<int>(a[x]) - static_cast<int>(b[x]));
        if (sum > bound)
            return sum;
        a += as;
        b += bs;
    }
    return sum;
}

int
scalar_sad16x16_et(const Pixel *a, int as, const Pixel *b, int bs,
                   int bound)
{
    return scalar_sad_rect_et(a, as, b, bs, 16, 16, bound);
}

int
scalar_satd4x4(const Pixel *a, int as, const Pixel *b, int bs)
{
    int d[16];
    for (int y = 0; y < 4; ++y)
        for (int x = 0; x < 4; ++x)
            d[y * 4 + x] = static_cast<int>(a[y * as + x]) -
                           static_cast<int>(b[y * bs + x]);
    for (int x = 0; x < 4; ++x)
        hadamard4(d[x], d[4 + x], d[8 + x], d[12 + x]);
    int sum = 0;
    for (int y = 0; y < 4; ++y) {
        hadamard4(d[y * 4], d[y * 4 + 1], d[y * 4 + 2], d[y * 4 + 3]);
        sum += iabs(d[y * 4]) + iabs(d[y * 4 + 1]) +
               iabs(d[y * 4 + 2]) + iabs(d[y * 4 + 3]);
    }
    return sum >> 1;
}

int
scalar_satd_rect(const Pixel *a, int as, const Pixel *b, int bs,
                 int w, int h)
{
    int sum = 0;
    for (int y = 0; y < h; y += 4)
        for (int x = 0; x < w; x += 4)
            sum += scalar_satd4x4(a + y * as + x, as, b + y * bs + x, bs);
    return sum;
}

u64
scalar_sse_rect(const Pixel *a, int as, const Pixel *b, int bs,
                int w, int h)
{
    u64 sum = 0;
    for (int y = 0; y < h; ++y) {
        u32 row = 0;
        for (int x = 0; x < w; ++x) {
            const int d = static_cast<int>(a[x]) - static_cast<int>(b[x]);
            row += static_cast<u32>(d * d);
        }
        sum += row;
        a += as;
        b += bs;
    }
    return sum;
}

void
scalar_copy_rect(Pixel *dst, int ds, const Pixel *src, int ss,
                 int w, int h)
{
    for (int y = 0; y < h; ++y) {
        std::memcpy(dst, src, static_cast<size_t>(w));
        dst += ds;
        src += ss;
    }
}

void
scalar_avg_rect(Pixel *dst, int ds, const Pixel *a, int as,
                const Pixel *b, int bs, int w, int h)
{
    for (int y = 0; y < h; ++y) {
        for (int x = 0; x < w; ++x)
            dst[x] = static_cast<Pixel>((a[x] + b[x] + 1) >> 1);
        dst += ds;
        a += as;
        b += bs;
    }
}

void
scalar_avg4_rect(Pixel *dst, int ds, const Pixel *src, int ss,
                 int w, int h)
{
    for (int y = 0; y < h; ++y) {
        for (int x = 0; x < w; ++x) {
            dst[x] = static_cast<Pixel>(
                (src[x] + src[x + 1] + src[x + ss] + src[x + ss + 1] + 2)
                >> 2);
        }
        dst += ds;
        src += ss;
    }
}

void
scalar_qpel_bilin_rect(Pixel *dst, int ds, const Pixel *src, int ss,
                       int w, int h, int fx, int fy)
{
    const int w00 = (4 - fx) * (4 - fy);
    const int w01 = fx * (4 - fy);
    const int w10 = (4 - fx) * fy;
    const int w11 = fx * fy;
    for (int y = 0; y < h; ++y) {
        for (int x = 0; x < w; ++x) {
            dst[x] = static_cast<Pixel>(
                (w00 * src[x] + w01 * src[x + 1] + w10 * src[x + ss] +
                 w11 * src[x + ss + 1] + 8) >> 4);
        }
        dst += ds;
        src += ss;
    }
}

void
scalar_sub_rect(Coeff *dst, int ds, const Pixel *src, int ss,
                const Pixel *pred, int ps, int w, int h)
{
    for (int y = 0; y < h; ++y) {
        for (int x = 0; x < w; ++x)
            dst[x] = static_cast<Coeff>(static_cast<int>(src[x]) -
                                        static_cast<int>(pred[x]));
        dst += ds;
        src += ss;
        pred += ps;
    }
}

void
scalar_add_rect(Pixel *dst, int ds, const Coeff *res, int rs,
                int w, int h)
{
    for (int y = 0; y < h; ++y) {
        for (int x = 0; x < w; ++x)
            dst[x] = clamp_pixel(static_cast<int>(dst[x]) + res[x]);
        dst += ds;
        res += rs;
    }
}

void
scalar_fdct8x8(Coeff blk[64])
{
    Coeff tmp[64];
    dct_col_pass<true>(blk, tmp, kDctPass1Shift);
    transpose8x8(tmp);
    dct_col_pass<true>(tmp, blk, kDctPass2Shift);
    transpose8x8(blk);
}

void
scalar_idct8x8(Coeff blk[64])
{
    Coeff tmp[64];
    dct_col_pass<false>(blk, tmp, kDctPass1Shift);
    transpose8x8(tmp);
    dct_col_pass<false>(tmp, blk, kDctPass2Shift);
    transpose8x8(blk);
}

void
scalar_h264_hpel_h(Pixel *dst, int ds, const Pixel *src, int ss,
                   int w, int h)
{
    for (int y = 0; y < h; ++y) {
        for (int x = 0; x < w; ++x) {
            const int v = src[x - 2] - 5 * src[x - 1] + 20 * src[x] +
                          20 * src[x + 1] - 5 * src[x + 2] + src[x + 3];
            dst[x] = clamp_pixel((v + 16) >> 5);
        }
        dst += ds;
        src += ss;
    }
}

void
scalar_h264_hpel_v(Pixel *dst, int ds, const Pixel *src, int ss,
                   int w, int h)
{
    for (int y = 0; y < h; ++y) {
        for (int x = 0; x < w; ++x) {
            const int v = src[x - 2 * ss] - 5 * src[x - ss] +
                          20 * src[x] + 20 * src[x + ss] -
                          5 * src[x + 2 * ss] + src[x + 3 * ss];
            dst[x] = clamp_pixel((v + 16) >> 5);
        }
        dst += ds;
        src += ss;
    }
}

void
scalar_h264_hpel_hv(Pixel *dst, int ds, const Pixel *src, int ss,
                    int w, int h)
{
    // Vertical 6-tap at full precision into a temp, then horizontal
    // 6-tap on the temp with a 10-bit descale — the H.264 'j' position.
    // Max block is 16x16, temp needs w+5 columns.
    s32 tmp[16 + 8][16 + 8];
    for (int y = 0; y < h; ++y) {
        for (int x = -2; x < w + 3; ++x) {
            tmp[y][x + 2] = src[x - 2 * ss] - 5 * src[x - ss] +
                            20 * src[x] + 20 * src[x + ss] -
                            5 * src[x + 2 * ss] + src[x + 3 * ss];
        }
        src += ss;
    }
    for (int y = 0; y < h; ++y) {
        for (int x = 0; x < w; ++x) {
            const s32 *t = &tmp[y][x + 2];
            const s32 v = t[-2] - 5 * t[-1] + 20 * t[0] + 20 * t[1] -
                          5 * t[2] + t[3];
            dst[x] = clamp_pixel(static_cast<int>((v + 512) >> 10));
        }
        dst += ds;
    }
}

}  // namespace hdvb::kernels
