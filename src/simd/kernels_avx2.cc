/**
 * @file
 * AVX2 kernels. This translation unit is compiled with -mavx2 (see
 * src/simd/CMakeLists.txt), so nothing in it may run before runtime
 * detection (dispatch.cc: CPUID + XGETBV) has confirmed the CPU — in
 * particular there are no namespace-scope dynamic initialisers here.
 *
 * Every function is bit-exact with its scalar reference in
 * kernels_scalar.cc: identical rounding, identical saturation, and
 * where the accumulation is regrouped (two SATD blocks per ymm) the
 * per-block results are still combined exactly as the scalar code
 * combines them.
 *
 * There are deliberately no AVX2 SAD kernels: a 16-pixel row is one
 * xmm register, and pairing strided rows into a ymm needs a
 * vinserti128 per row pair that costs more than the halved psadbw
 * count saves (measured ~40% slower than SSE2 here; x264 and FFmpeg
 * reach the same conclusion). The avx2 Dsp table keeps the SSE2 SAD
 * entries.
 */
#include "simd/kernels.h"

#if defined(HDVB_BUILD_AVX2) && defined(__AVX2__)

#include <immintrin.h>

#include "simd/dct_matrix.h"

namespace hdvb::kernels {

namespace {

/** [lo | hi] from two xmm halves. */
inline __m256i
combine128(__m128i lo, __m128i hi)
{
    return _mm256_inserti128_si256(_mm256_castsi128_si256(lo), hi, 1);
}

/** 16 u8 widened to 16 s16 lanes. */
inline __m256i
load16_u8_as_s16(const Pixel *p)
{
    return _mm256_cvtepu8_epi16(
        _mm_loadu_si128(reinterpret_cast<const __m128i *>(p)));
}

inline __m128i
load8_u8_as_s16(const Pixel *p)
{
    return _mm_unpacklo_epi8(
        _mm_loadl_epi64(reinterpret_cast<const __m128i *>(p)),
        _mm_setzero_si128());
}

/** Pack 16 s16 ymm lanes to 16 u8 with unsigned saturation. */
inline __m128i
packus16(__m256i v)
{
    return _mm_packus_epi16(_mm256_castsi256_si128(v),
                            _mm256_extracti128_si256(v, 1));
}

/** Horizontal sum of the four s32 lanes of an xmm. */
inline int
hsum_epi32_128(__m128i v)
{
    v = _mm_add_epi32(v, _mm_shuffle_epi32(v, _MM_SHUFFLE(1, 0, 3, 2)));
    v = _mm_add_epi32(v, _mm_shuffle_epi32(v, _MM_SHUFFLE(2, 3, 0, 1)));
    return _mm_cvtsi128_si32(v);
}

/** Per-128-lane swap of the two 64-bit halves. */
inline __m256i
swap_halves(__m256i v)
{
    return _mm256_shuffle_epi32(v, _MM_SHUFFLE(1, 0, 3, 2));
}

/** 8 u8 pixels of a - b as 8 s16 lanes. */
inline __m128i
diff8_s16(const Pixel *a, const Pixel *b)
{
    return _mm_sub_epi16(load8_u8_as_s16(a), load8_u8_as_s16(b));
}

/**
 * SATD of two horizontally adjacent 4x4 blocks (at a and a+4): block A
 * lives in the low 128-bit lane, block B in the high lane, and the
 * whole sse2_satd4x4 dataflow runs lane-parallel (every unpack/shift
 * below is per-lane). The two block sums are descaled separately, so
 * the result equals satd4x4(A) + satd4x4(B) exactly.
 */
inline int
satd4x4_pair(const Pixel *a, int as, const Pixel *b, int bs)
{
    const __m128i d0 = diff8_s16(a, b);
    const __m128i d1 = diff8_s16(a + as, b + bs);
    const __m128i d2 = diff8_s16(a + 2 * as, b + 2 * bs);
    const __m128i d3 = diff8_s16(a + 3 * as, b + 3 * bs);
    // lane0 = [A row0 | A row1], lane1 = [B row0 | B row1], etc.
    const __m256i d01 = combine128(_mm_unpacklo_epi64(d0, d1),
                                   _mm_unpackhi_epi64(d0, d1));
    const __m256i d23 = combine128(_mm_unpacklo_epi64(d2, d3),
                                   _mm_unpackhi_epi64(d2, d3));

    // Column (vertical) Hadamard.
    const __m256i u = _mm256_unpacklo_epi64(d01, d23);  // rows 0 | 2
    const __m256i v = _mm256_unpackhi_epi64(d01, d23);  // rows 1 | 3
    __m256i s = _mm256_add_epi16(u, v);
    __m256i t = _mm256_sub_epi16(u, v);
    __m256i ra = _mm256_add_epi16(s, swap_halves(s));
    __m256i rc = _mm256_sub_epi16(s, swap_halves(s));
    __m256i rb = _mm256_add_epi16(t, swap_halves(t));
    __m256i rd = _mm256_sub_epi16(t, swap_halves(t));
    __m256i r01 = _mm256_unpacklo_epi64(ra, rb);
    __m256i r23 = _mm256_unpacklo_epi64(rc, rd);

    // Transpose each 4x4 (two rows per lane half).
    const __m256i i0 =
        _mm256_unpacklo_epi16(r01, _mm256_srli_si256(r01, 8));
    const __m256i i1 =
        _mm256_unpacklo_epi16(r23, _mm256_srli_si256(r23, 8));
    const __m256i c01 = _mm256_unpacklo_epi32(i0, i1);
    const __m256i c23 = _mm256_unpackhi_epi32(i0, i1);
    const __m256i u2 = _mm256_unpacklo_epi64(c01, c23);
    const __m256i v2 = _mm256_unpackhi_epi64(c01, c23);

    // Row Hadamard.
    s = _mm256_add_epi16(u2, v2);
    t = _mm256_sub_epi16(u2, v2);
    ra = _mm256_add_epi16(s, swap_halves(s));
    rc = _mm256_sub_epi16(s, swap_halves(s));
    rb = _mm256_add_epi16(t, swap_halves(t));
    rd = _mm256_sub_epi16(t, swap_halves(t));
    r01 = _mm256_unpacklo_epi64(ra, rb);
    r23 = _mm256_unpacklo_epi64(rc, rd);

    const __m256i ones = _mm256_set1_epi16(1);
    const __m256i sum = _mm256_add_epi32(
        _mm256_madd_epi16(_mm256_abs_epi16(r01), ones),
        _mm256_madd_epi16(_mm256_abs_epi16(r23), ones));
    return (hsum_epi32_128(_mm256_castsi256_si128(sum)) >> 1) +
           (hsum_epi32_128(_mm256_extracti128_si256(sum, 1)) >> 1);
}

// ---- matrix DCT machinery (ymm madd pass, xmm transpose) ----

struct DctConstsAvx2 {
    __m256i fwd[8][4];  ///< madd pair constants, forward basis
    __m256i inv[8][4];  ///< madd pair constants, transposed basis

    DctConstsAvx2()
    {
        for (int k = 0; k < 8; ++k) {
            for (int i = 0; i < 4; ++i) {
                const u32 f =
                    (static_cast<u16>(kDctMatrix[k][2 * i])) |
                    (static_cast<u32>(
                         static_cast<u16>(kDctMatrix[k][2 * i + 1]))
                     << 16);
                const u32 v =
                    (static_cast<u16>(kDctMatrix[2 * i][k])) |
                    (static_cast<u32>(
                         static_cast<u16>(kDctMatrix[2 * i + 1][k]))
                     << 16);
                fwd[k][i] = _mm256_set1_epi32(static_cast<int>(f));
                inv[k][i] = _mm256_set1_epi32(static_cast<int>(v));
            }
        }
    }
};

const DctConstsAvx2 &
dct_consts_avx2()
{
    static const DctConstsAvx2 consts;
    return consts;
}

/** Transpose 8 rows of 8 s16 in place (identical to the SSE2 one;
 * compiled here with VEX encoding). */
inline void
transpose8x8_x(__m128i r[8])
{
    const __m128i t0 = _mm_unpacklo_epi16(r[0], r[1]);
    const __m128i t1 = _mm_unpackhi_epi16(r[0], r[1]);
    const __m128i t2 = _mm_unpacklo_epi16(r[2], r[3]);
    const __m128i t3 = _mm_unpackhi_epi16(r[2], r[3]);
    const __m128i t4 = _mm_unpacklo_epi16(r[4], r[5]);
    const __m128i t5 = _mm_unpackhi_epi16(r[4], r[5]);
    const __m128i t6 = _mm_unpacklo_epi16(r[6], r[7]);
    const __m128i t7 = _mm_unpackhi_epi16(r[6], r[7]);
    const __m128i u0 = _mm_unpacklo_epi32(t0, t2);
    const __m128i u1 = _mm_unpackhi_epi32(t0, t2);
    const __m128i u2 = _mm_unpacklo_epi32(t1, t3);
    const __m128i u3 = _mm_unpackhi_epi32(t1, t3);
    const __m128i u4 = _mm_unpacklo_epi32(t4, t6);
    const __m128i u5 = _mm_unpackhi_epi32(t4, t6);
    const __m128i u6 = _mm_unpacklo_epi32(t5, t7);
    const __m128i u7 = _mm_unpackhi_epi32(t5, t7);
    r[0] = _mm_unpacklo_epi64(u0, u4);
    r[1] = _mm_unpackhi_epi64(u0, u4);
    r[2] = _mm_unpacklo_epi64(u1, u5);
    r[3] = _mm_unpackhi_epi64(u1, u5);
    r[4] = _mm_unpacklo_epi64(u2, u6);
    r[5] = _mm_unpackhi_epi64(u2, u6);
    r[6] = _mm_unpacklo_epi64(u3, u7);
    r[7] = _mm_unpackhi_epi64(u3, u7);
}

/** One 1-D column pass: where the SSE2 pass runs separate lo/hi xmm
 * madd chains, this runs both as one ymm chain — element-for-element
 * the same madd/add/sra/packs sequence, so the result is bit-exact. */
inline void
dct_pass_avx2(__m128i r[8], const __m256i consts[8][4], int shift)
{
    __m256i p[4];
    for (int i = 0; i < 4; ++i) {
        p[i] = combine128(_mm_unpacklo_epi16(r[2 * i], r[2 * i + 1]),
                          _mm_unpackhi_epi16(r[2 * i], r[2 * i + 1]));
    }
    const __m256i round = _mm256_set1_epi32(1 << (shift - 1));
    const __m128i count = _mm_cvtsi32_si128(shift);
    __m128i out[8];
    for (int k = 0; k < 8; ++k) {
        __m256i acc = _mm256_madd_epi16(p[0], consts[k][0]);
        for (int i = 1; i < 4; ++i)
            acc = _mm256_add_epi32(acc,
                                   _mm256_madd_epi16(p[i], consts[k][i]));
        acc = _mm256_sra_epi32(_mm256_add_epi32(acc, round), count);
        out[k] = _mm_packs_epi32(_mm256_castsi256_si128(acc),
                                 _mm256_extracti128_si256(acc, 1));
    }
    for (int k = 0; k < 8; ++k)
        r[k] = out[k];
}

inline void
dct8x8_avx2(Coeff blk[64], const __m256i consts[8][4])
{
    __m128i r[8];
    for (int i = 0; i < 8; ++i)
        r[i] = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(blk + i * 8));
    dct_pass_avx2(r, consts, kDctPass1Shift);
    transpose8x8_x(r);
    dct_pass_avx2(r, consts, kDctPass2Shift);
    transpose8x8_x(r);
    for (int i = 0; i < 8; ++i)
        _mm_storeu_si128(reinterpret_cast<__m128i *>(blk + i * 8), r[i]);
}

}  // namespace

int
avx2_satd_rect(const Pixel *a, int as, const Pixel *b, int bs,
               int w, int h)
{
    int sum = 0;
    for (int y = 0; y < h; y += 4) {
        int x = 0;
        for (; x + 8 <= w; x += 8)
            sum += satd4x4_pair(a + y * as + x, as, b + y * bs + x, bs);
        for (; x < w; x += 4)
            sum += sse2_satd4x4(a + y * as + x, as, b + y * bs + x, bs);
    }
    return sum;
}

u64
avx2_sse_rect(const Pixel *a, int as, const Pixel *b, int bs,
              int w, int h)
{
    const __m256i zero = _mm256_setzero_si256();
    u64 total = 0;
    for (int y = 0; y < h; ++y) {
        __m256i acc = zero;
        int x = 0;
        for (; x + 32 <= w; x += 32) {
            const __m256i va = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(a + x));
            const __m256i vb = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(b + x));
            const __m256i d_lo =
                _mm256_sub_epi16(_mm256_unpacklo_epi8(va, zero),
                                 _mm256_unpacklo_epi8(vb, zero));
            const __m256i d_hi =
                _mm256_sub_epi16(_mm256_unpackhi_epi8(va, zero),
                                 _mm256_unpackhi_epi8(vb, zero));
            acc = _mm256_add_epi32(acc, _mm256_madd_epi16(d_lo, d_lo));
            acc = _mm256_add_epi32(acc, _mm256_madd_epi16(d_hi, d_hi));
        }
        for (; x + 16 <= w; x += 16) {
            const __m256i d = _mm256_sub_epi16(load16_u8_as_s16(a + x),
                                               load16_u8_as_s16(b + x));
            acc = _mm256_add_epi32(acc, _mm256_madd_epi16(d, d));
        }
        u32 lanes[8];
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(lanes), acc);
        for (u32 lane : lanes)
            total += lane;  // lanes are non-negative sums of squares
        u32 row = 0;
        for (; x < w; ++x) {
            const int d = static_cast<int>(a[x]) - static_cast<int>(b[x]);
            row += static_cast<u32>(d * d);
        }
        total += row;
        a += as;
        b += bs;
    }
    return total;
}

void
avx2_avg_rect(Pixel *dst, int ds, const Pixel *a, int as,
              const Pixel *b, int bs, int w, int h)
{
    for (int y = 0; y < h; ++y) {
        int x = 0;
        for (; x + 32 <= w; x += 32) {
            const __m256i va = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(a + x));
            const __m256i vb = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(b + x));
            _mm256_storeu_si256(reinterpret_cast<__m256i *>(dst + x),
                                _mm256_avg_epu8(va, vb));
        }
        for (; x + 16 <= w; x += 16) {
            const __m128i va = _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(a + x));
            const __m128i vb = _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(b + x));
            _mm_storeu_si128(reinterpret_cast<__m128i *>(dst + x),
                             _mm_avg_epu8(va, vb));
        }
        for (; x + 8 <= w; x += 8) {
            const __m128i va =
                _mm_loadl_epi64(reinterpret_cast<const __m128i *>(a + x));
            const __m128i vb =
                _mm_loadl_epi64(reinterpret_cast<const __m128i *>(b + x));
            _mm_storel_epi64(reinterpret_cast<__m128i *>(dst + x),
                             _mm_avg_epu8(va, vb));
        }
        for (; x < w; ++x)
            dst[x] = static_cast<Pixel>((a[x] + b[x] + 1) >> 1);
        dst += ds;
        a += as;
        b += bs;
    }
}

void
avx2_avg4_rect(Pixel *dst, int ds, const Pixel *src, int ss,
               int w, int h)
{
    const __m256i two256 = _mm256_set1_epi16(2);
    const __m128i two128 = _mm_set1_epi16(2);
    for (int y = 0; y < h; ++y) {
        int x = 0;
        for (; x + 16 <= w; x += 16) {
            const __m256i s00 = load16_u8_as_s16(src + x);
            const __m256i s01 = load16_u8_as_s16(src + x + 1);
            const __m256i s10 = load16_u8_as_s16(src + x + ss);
            const __m256i s11 = load16_u8_as_s16(src + x + ss + 1);
            __m256i sum = _mm256_add_epi16(_mm256_add_epi16(s00, s01),
                                           _mm256_add_epi16(s10, s11));
            sum = _mm256_srli_epi16(_mm256_add_epi16(sum, two256), 2);
            _mm_storeu_si128(reinterpret_cast<__m128i *>(dst + x),
                             packus16(sum));
        }
        for (; x + 8 <= w; x += 8) {
            const __m128i s00 = load8_u8_as_s16(src + x);
            const __m128i s01 = load8_u8_as_s16(src + x + 1);
            const __m128i s10 = load8_u8_as_s16(src + x + ss);
            const __m128i s11 = load8_u8_as_s16(src + x + ss + 1);
            __m128i sum = _mm_add_epi16(_mm_add_epi16(s00, s01),
                                        _mm_add_epi16(s10, s11));
            sum = _mm_srli_epi16(_mm_add_epi16(sum, two128), 2);
            _mm_storel_epi64(reinterpret_cast<__m128i *>(dst + x),
                             _mm_packus_epi16(sum, sum));
        }
        for (; x < w; ++x) {
            dst[x] = static_cast<Pixel>(
                (src[x] + src[x + 1] + src[x + ss] + src[x + ss + 1] + 2)
                >> 2);
        }
        dst += ds;
        src += ss;
    }
}

void
avx2_qpel_bilin_rect(Pixel *dst, int ds, const Pixel *src, int ss,
                     int w, int h, int fx, int fy)
{
    const short c00 = static_cast<short>((4 - fx) * (4 - fy));
    const short c01 = static_cast<short>(fx * (4 - fy));
    const short c10 = static_cast<short>((4 - fx) * fy);
    const short c11 = static_cast<short>(fx * fy);
    const __m256i w00 = _mm256_set1_epi16(c00);
    const __m256i w01 = _mm256_set1_epi16(c01);
    const __m256i w10 = _mm256_set1_epi16(c10);
    const __m256i w11 = _mm256_set1_epi16(c11);
    const __m256i eight = _mm256_set1_epi16(8);
    for (int y = 0; y < h; ++y) {
        int x = 0;
        for (; x + 16 <= w; x += 16) {
            const __m256i s00 = load16_u8_as_s16(src + x);
            const __m256i s01 = load16_u8_as_s16(src + x + 1);
            const __m256i s10 = load16_u8_as_s16(src + x + ss);
            const __m256i s11 = load16_u8_as_s16(src + x + ss + 1);
            __m256i acc = _mm256_mullo_epi16(s00, w00);
            acc = _mm256_add_epi16(acc, _mm256_mullo_epi16(s01, w01));
            acc = _mm256_add_epi16(acc, _mm256_mullo_epi16(s10, w10));
            acc = _mm256_add_epi16(acc, _mm256_mullo_epi16(s11, w11));
            acc = _mm256_srli_epi16(_mm256_add_epi16(acc, eight), 4);
            _mm_storeu_si128(reinterpret_cast<__m128i *>(dst + x),
                             packus16(acc));
        }
        for (; x < w; ++x) {
            dst[x] = static_cast<Pixel>(
                (c00 * src[x] + c01 * src[x + 1] + c10 * src[x + ss] +
                 c11 * src[x + ss + 1] + 8) >> 4);
        }
        dst += ds;
        src += ss;
    }
}

void
avx2_sub_rect(Coeff *dst, int ds, const Pixel *src, int ss,
              const Pixel *pred, int ps, int w, int h)
{
    for (int y = 0; y < h; ++y) {
        int x = 0;
        for (; x + 16 <= w; x += 16) {
            const __m256i d = _mm256_sub_epi16(load16_u8_as_s16(src + x),
                                               load16_u8_as_s16(pred + x));
            _mm256_storeu_si256(reinterpret_cast<__m256i *>(dst + x), d);
        }
        for (; x + 8 <= w; x += 8) {
            const __m128i d = _mm_sub_epi16(load8_u8_as_s16(src + x),
                                            load8_u8_as_s16(pred + x));
            _mm_storeu_si128(reinterpret_cast<__m128i *>(dst + x), d);
        }
        for (; x < w; ++x)
            dst[x] = static_cast<Coeff>(static_cast<int>(src[x]) -
                                        static_cast<int>(pred[x]));
        dst += ds;
        src += ss;
        pred += ps;
    }
}

void
avx2_add_rect(Pixel *dst, int ds, const Coeff *res, int rs,
              int w, int h)
{
    for (int y = 0; y < h; ++y) {
        int x = 0;
        for (; x + 16 <= w; x += 16) {
            const __m256i r = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(res + x));
            const __m256i v =
                _mm256_add_epi16(load16_u8_as_s16(dst + x), r);
            _mm_storeu_si128(reinterpret_cast<__m128i *>(dst + x),
                             packus16(v));
        }
        for (; x + 8 <= w; x += 8) {
            const __m128i r = _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(res + x));
            const __m128i v = _mm_add_epi16(load8_u8_as_s16(dst + x), r);
            _mm_storel_epi64(reinterpret_cast<__m128i *>(dst + x),
                             _mm_packus_epi16(v, v));
        }
        for (; x < w; ++x)
            dst[x] = clamp_pixel(static_cast<int>(dst[x]) + res[x]);
        dst += ds;
        res += rs;
    }
}

void
avx2_fdct8x8(Coeff blk[64])
{
    dct8x8_avx2(blk, dct_consts_avx2().fwd);
}

void
avx2_idct8x8(Coeff blk[64])
{
    dct8x8_avx2(blk, dct_consts_avx2().inv);
}

void
avx2_h264_hpel_h(Pixel *dst, int ds, const Pixel *src, int ss,
                 int w, int h)
{
    const __m256i sixteen256 = _mm256_set1_epi16(16);
    const __m128i sixteen128 = _mm_set1_epi16(16);
    for (int y = 0; y < h; ++y) {
        int x = 0;
        for (; x + 16 <= w; x += 16) {
            const __m256i a = load16_u8_as_s16(src + x - 2);
            const __m256i b = load16_u8_as_s16(src + x - 1);
            const __m256i c = load16_u8_as_s16(src + x);
            const __m256i d = load16_u8_as_s16(src + x + 1);
            const __m256i e = load16_u8_as_s16(src + x + 2);
            const __m256i f = load16_u8_as_s16(src + x + 3);
            const __m256i cd = _mm256_add_epi16(c, d);
            const __m256i be = _mm256_add_epi16(b, e);
            const __m256i cd20 =
                _mm256_add_epi16(_mm256_slli_epi16(cd, 4),
                                 _mm256_slli_epi16(cd, 2));
            const __m256i be5 =
                _mm256_add_epi16(_mm256_slli_epi16(be, 2), be);
            __m256i v = _mm256_add_epi16(_mm256_add_epi16(a, f),
                                         _mm256_sub_epi16(cd20, be5));
            v = _mm256_srai_epi16(_mm256_add_epi16(v, sixteen256), 5);
            _mm_storeu_si128(reinterpret_cast<__m128i *>(dst + x),
                             packus16(v));
        }
        for (; x + 8 <= w; x += 8) {
            const __m128i a = load8_u8_as_s16(src + x - 2);
            const __m128i b = load8_u8_as_s16(src + x - 1);
            const __m128i c = load8_u8_as_s16(src + x);
            const __m128i d = load8_u8_as_s16(src + x + 1);
            const __m128i e = load8_u8_as_s16(src + x + 2);
            const __m128i f = load8_u8_as_s16(src + x + 3);
            const __m128i cd = _mm_add_epi16(c, d);
            const __m128i be = _mm_add_epi16(b, e);
            const __m128i cd20 = _mm_add_epi16(_mm_slli_epi16(cd, 4),
                                               _mm_slli_epi16(cd, 2));
            const __m128i be5 =
                _mm_add_epi16(_mm_slli_epi16(be, 2), be);
            __m128i v = _mm_add_epi16(_mm_add_epi16(a, f),
                                      _mm_sub_epi16(cd20, be5));
            v = _mm_srai_epi16(_mm_add_epi16(v, sixteen128), 5);
            _mm_storel_epi64(reinterpret_cast<__m128i *>(dst + x),
                             _mm_packus_epi16(v, v));
        }
        for (; x < w; ++x) {
            const int v = src[x - 2] - 5 * src[x - 1] + 20 * src[x] +
                          20 * src[x + 1] - 5 * src[x + 2] + src[x + 3];
            dst[x] = clamp_pixel((v + 16) >> 5);
        }
        dst += ds;
        src += ss;
    }
}

void
avx2_h264_hpel_v(Pixel *dst, int ds, const Pixel *src, int ss,
                 int w, int h)
{
    const __m256i sixteen256 = _mm256_set1_epi16(16);
    const __m128i sixteen128 = _mm_set1_epi16(16);
    for (int y = 0; y < h; ++y) {
        int x = 0;
        for (; x + 16 <= w; x += 16) {
            const __m256i a = load16_u8_as_s16(src + x - 2 * ss);
            const __m256i b = load16_u8_as_s16(src + x - ss);
            const __m256i c = load16_u8_as_s16(src + x);
            const __m256i d = load16_u8_as_s16(src + x + ss);
            const __m256i e = load16_u8_as_s16(src + x + 2 * ss);
            const __m256i f = load16_u8_as_s16(src + x + 3 * ss);
            const __m256i cd = _mm256_add_epi16(c, d);
            const __m256i be = _mm256_add_epi16(b, e);
            const __m256i cd20 =
                _mm256_add_epi16(_mm256_slli_epi16(cd, 4),
                                 _mm256_slli_epi16(cd, 2));
            const __m256i be5 =
                _mm256_add_epi16(_mm256_slli_epi16(be, 2), be);
            __m256i v = _mm256_add_epi16(_mm256_add_epi16(a, f),
                                         _mm256_sub_epi16(cd20, be5));
            v = _mm256_srai_epi16(_mm256_add_epi16(v, sixteen256), 5);
            _mm_storeu_si128(reinterpret_cast<__m128i *>(dst + x),
                             packus16(v));
        }
        for (; x + 8 <= w; x += 8) {
            const __m128i a = load8_u8_as_s16(src + x - 2 * ss);
            const __m128i b = load8_u8_as_s16(src + x - ss);
            const __m128i c = load8_u8_as_s16(src + x);
            const __m128i d = load8_u8_as_s16(src + x + ss);
            const __m128i e = load8_u8_as_s16(src + x + 2 * ss);
            const __m128i f = load8_u8_as_s16(src + x + 3 * ss);
            const __m128i cd = _mm_add_epi16(c, d);
            const __m128i be = _mm_add_epi16(b, e);
            const __m128i cd20 = _mm_add_epi16(_mm_slli_epi16(cd, 4),
                                               _mm_slli_epi16(cd, 2));
            const __m128i be5 =
                _mm_add_epi16(_mm_slli_epi16(be, 2), be);
            __m128i v = _mm_add_epi16(_mm_add_epi16(a, f),
                                      _mm_sub_epi16(cd20, be5));
            v = _mm_srai_epi16(_mm_add_epi16(v, sixteen128), 5);
            _mm_storel_epi64(reinterpret_cast<__m128i *>(dst + x),
                             _mm_packus_epi16(v, v));
        }
        for (; x < w; ++x) {
            const int v = src[x - 2 * ss] - 5 * src[x - ss] +
                          20 * src[x] + 20 * src[x + ss] -
                          5 * src[x + 2 * ss] + src[x + 3 * ss];
            dst[x] = clamp_pixel((v + 16) >> 5);
        }
        dst += ds;
        src += ss;
    }
}

void
avx2_h264_hpel_hv(Pixel *dst, int ds, const Pixel *src, int ss,
                  int w, int h)
{
    // Same two-pass structure as sse2_h264_hpel_hv: vertical 6-tap
    // into an s16 temp (raw sums fit: -2550 .. 10710), horizontal
    // 6-tap on the temp widened to s32, 10-bit descale.
    constexpr int kTmpStride = 24;  // >= 16 + 5, padded for wide loads
    s16 tmp[16][kTmpStride];
    for (int y = 0; y < h; ++y) {
        int x = -2;
        for (; x + 16 <= w + 3; x += 16) {
            const __m256i a = load16_u8_as_s16(src + x - 2 * ss);
            const __m256i b = load16_u8_as_s16(src + x - ss);
            const __m256i c = load16_u8_as_s16(src + x);
            const __m256i d = load16_u8_as_s16(src + x + ss);
            const __m256i e = load16_u8_as_s16(src + x + 2 * ss);
            const __m256i f = load16_u8_as_s16(src + x + 3 * ss);
            const __m256i cd = _mm256_add_epi16(c, d);
            const __m256i be = _mm256_add_epi16(b, e);
            const __m256i cd20 =
                _mm256_add_epi16(_mm256_slli_epi16(cd, 4),
                                 _mm256_slli_epi16(cd, 2));
            const __m256i be5 =
                _mm256_add_epi16(_mm256_slli_epi16(be, 2), be);
            const __m256i v = _mm256_add_epi16(
                _mm256_add_epi16(a, f), _mm256_sub_epi16(cd20, be5));
            _mm256_storeu_si256(
                reinterpret_cast<__m256i *>(&tmp[y][x + 2]), v);
        }
        for (; x + 8 <= w + 3; x += 8) {
            const __m128i a = load8_u8_as_s16(src + x - 2 * ss);
            const __m128i b = load8_u8_as_s16(src + x - ss);
            const __m128i c = load8_u8_as_s16(src + x);
            const __m128i d = load8_u8_as_s16(src + x + ss);
            const __m128i e = load8_u8_as_s16(src + x + 2 * ss);
            const __m128i f = load8_u8_as_s16(src + x + 3 * ss);
            const __m128i cd = _mm_add_epi16(c, d);
            const __m128i be = _mm_add_epi16(b, e);
            const __m128i cd20 = _mm_add_epi16(_mm_slli_epi16(cd, 4),
                                               _mm_slli_epi16(cd, 2));
            const __m128i be5 =
                _mm_add_epi16(_mm_slli_epi16(be, 2), be);
            const __m128i v = _mm_add_epi16(
                _mm_add_epi16(a, f), _mm_sub_epi16(cd20, be5));
            _mm_storeu_si128(
                reinterpret_cast<__m128i *>(&tmp[y][x + 2]), v);
        }
        for (; x < w + 3; ++x) {
            tmp[y][x + 2] = static_cast<s16>(
                src[x - 2 * ss] - 5 * src[x - ss] + 20 * src[x] +
                20 * src[x + ss] - 5 * src[x + 2 * ss] +
                src[x + 3 * ss]);
        }
        src += ss;
    }
    const __m256i round = _mm256_set1_epi32(512);
    for (int y = 0; y < h; ++y) {
        int x = 0;
        for (; x + 8 <= w; x += 8) {
            __m256i acc = _mm256_setzero_si256();
            for (int k = 0; k < 6; ++k) {
                const __m256i t = _mm256_cvtepi16_epi32(
                    _mm_loadu_si128(reinterpret_cast<const __m128i *>(
                        &tmp[y][x + k])));
                if (k == 0 || k == 5) {
                    acc = _mm256_add_epi32(acc, t);
                } else if (k == 2 || k == 3) {
                    acc = _mm256_add_epi32(
                        acc, _mm256_add_epi32(_mm256_slli_epi32(t, 4),
                                              _mm256_slli_epi32(t, 2)));
                } else {  // k == 1 || k == 4: weight -5
                    acc = _mm256_sub_epi32(
                        acc, _mm256_add_epi32(_mm256_slli_epi32(t, 2),
                                              t));
                }
            }
            acc = _mm256_srai_epi32(_mm256_add_epi32(acc, round), 10);
            const __m128i v16 =
                _mm_packs_epi32(_mm256_castsi256_si128(acc),
                                _mm256_extracti128_si256(acc, 1));
            _mm_storel_epi64(reinterpret_cast<__m128i *>(dst + x),
                             _mm_packus_epi16(v16, v16));
        }
        for (; x < w; ++x) {
            const s16 *t = &tmp[y][x + 2];
            const s32 v = t[-2] - 5 * t[-1] + 20 * t[0] + 20 * t[1] -
                          5 * t[2] + t[3];
            dst[x] = clamp_pixel(static_cast<int>((v + 512) >> 10));
        }
        dst += ds;
    }
}

}  // namespace hdvb::kernels

#endif  // HDVB_BUILD_AVX2 && __AVX2__
