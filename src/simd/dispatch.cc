#include "simd/dispatch.h"

#include "common/env.h"
#include "common/log.h"
#include "simd/kernels.h"

#if defined(__x86_64__) || defined(__i386__)
#include <cpuid.h>
#endif

namespace hdvb {

namespace {

using namespace hdvb::kernels;

const Dsp kScalarDsp = {
    "scalar",
    scalar_sad16x16,
    scalar_sad16x16,  // alignment buys scalar code nothing
    scalar_sad8x8,
    scalar_sad_rect,
    scalar_sad16x16_et,
    scalar_sad_rect_et,
    scalar_satd4x4,
    scalar_satd_rect,
    scalar_sse_rect,
    scalar_copy_rect,
    scalar_avg_rect,
    scalar_avg4_rect,
    scalar_qpel_bilin_rect,
    scalar_sub_rect,
    scalar_add_rect,
    scalar_fdct8x8,
    scalar_idct8x8,
    scalar_h264_hpel_h,
    scalar_h264_hpel_v,
    scalar_h264_hpel_hv,
};

#if defined(__SSE2__)
const Dsp kSse2Dsp = {
    "sse2",
    sse2_sad16x16,
    sse2_sad16x16_a,
    sse2_sad8x8,
    sse2_sad_rect,
    sse2_sad16x16_et,
    sse2_sad_rect_et,
    sse2_satd4x4,
    sse2_satd_rect,
    sse2_sse_rect,
    scalar_copy_rect,  // block copies are memcpy either way
    sse2_avg_rect,
    sse2_avg4_rect,
    sse2_qpel_bilin_rect,
    sse2_sub_rect,
    sse2_add_rect,
    sse2_fdct8x8,
    sse2_idct8x8,
    sse2_h264_hpel_h,
    sse2_h264_hpel_v,
    sse2_h264_hpel_hv,
};
#endif

#if defined(HDVB_BUILD_AVX2)
const Dsp kAvx2Dsp = {
    "avx2",
    // SAD stays SSE2: strided 16-byte rows need a vinserti128 per row
    // pair to fill a ymm, which measures slower than xmm psadbw.
    sse2_sad16x16,
    sse2_sad16x16_a,
    sse2_sad8x8,
    sse2_sad_rect,
    sse2_sad16x16_et,
    sse2_sad_rect_et,
    sse2_satd4x4,  // a single 4x4 is too narrow for ymm to help
    avx2_satd_rect,
    avx2_sse_rect,
    scalar_copy_rect,  // block copies are memcpy either way
    avx2_avg_rect,
    avx2_avg4_rect,
    avx2_qpel_bilin_rect,
    avx2_sub_rect,
    avx2_add_rect,
    avx2_fdct8x8,
    avx2_idct8x8,
    avx2_h264_hpel_h,
    avx2_h264_hpel_v,
    avx2_h264_hpel_hv,
};
#endif

/**
 * CPUID + XGETBV probe for AVX2. All three conditions are required
 * before the -mavx2 objects may run: the CPU advertises AVX2 (leaf 7
 * EBX bit 5), it advertises AVX + OSXSAVE (leaf 1 ECX bits 28/27), and
 * the OS actually saves the ymm state across context switches (XCR0
 * bits 1 and 2 via XGETBV). Skipping the XGETBV check is the classic
 * illegal-instruction bug on OSes that leave AVX state disabled.
 */
bool
cpu_supports_avx2()
{
#if defined(__x86_64__) || defined(__i386__)
    unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
    if (__get_cpuid(1, &eax, &ebx, &ecx, &edx) == 0)
        return false;
    const bool osxsave = (ecx & (1u << 27)) != 0;
    const bool avx = (ecx & (1u << 28)) != 0;
    if (!osxsave || !avx)
        return false;
    u32 xcr0_lo = 0, xcr0_hi = 0;
    __asm__ volatile("xgetbv"
                     : "=a"(xcr0_lo), "=d"(xcr0_hi)
                     : "c"(0));
    if ((xcr0_lo & 0x6) != 0x6)  // XMM (bit 1) and YMM (bit 2) state
        return false;
    if (__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx) == 0)
        return false;
    return (ebx & (1u << 5)) != 0;  // AVX2
#else
    return false;
#endif
}

SimdLevel
probe_simd_level()
{
#if defined(HDVB_BUILD_AVX2)
    if (cpu_supports_avx2())
        return SimdLevel::kAvx2;
#endif
#if defined(__SSE2__)
    return SimdLevel::kSse2;
#else
    return SimdLevel::kScalar;
#endif
}

/** best_simd_level()'s one-time resolution of the HDVB_SIMD override
 * against the detected level. */
SimdLevel
resolve_best_level()
{
    const SimdLevel detected = detected_simd_level();
    const char *env = env_raw("HDVB_SIMD");
    if (env == nullptr)
        return detected;
    SimdLevel forced;
    if (!parse_simd_level(env, &forced)) {
        HDVB_LOG(kWarn) << "HDVB_SIMD=\"" << env
                        << "\" is not one of {" << simd_level_names()
                        << "}; using detected level "
                        << simd_level_name(detected);
        return detected;
    }
    if (forced > detected) {
        HDVB_LOG(kWarn) << "HDVB_SIMD=" << simd_level_name(forced)
                        << " is not supported on this CPU/build; "
                           "clamping to "
                        << simd_level_name(detected);
        return detected;
    }
    return forced;
}

}  // namespace

const char *
simd_level_name(SimdLevel level)
{
    // Exhaustive: adding a SimdLevel without a name is a compile-time
    // warning here, not a silently mislabeled report column.
    switch (level) {
    case SimdLevel::kScalar:
        return "scalar";
    case SimdLevel::kSse2:
        return "sse2";
    case SimdLevel::kAvx2:
        return "avx2";
    }
    return "unknown";
}

const char *
simd_level_names()
{
    return "scalar, sse2, avx2";
}

bool
parse_simd_level(const std::string &name, SimdLevel *out)
{
    for (int i = 0; i < kSimdLevelCount; ++i) {
        const SimdLevel level = static_cast<SimdLevel>(i);
        if (name == simd_level_name(level)) {
            *out = level;
            return true;
        }
    }
    return false;
}

SimdLevel
detected_simd_level()
{
    static const SimdLevel level = probe_simd_level();
    return level;
}

SimdLevel
best_simd_level()
{
    static const SimdLevel level = resolve_best_level();
    return level;
}

const Dsp &
get_dsp(SimdLevel level)
{
    // Clamp to what the hardware can run (also catches enum values
    // above the known range); then fall downward through the tiers the
    // build actually contains.
    if (level > detected_simd_level())
        level = detected_simd_level();
#if defined(HDVB_BUILD_AVX2)
    if (level == SimdLevel::kAvx2)
        return kAvx2Dsp;
#endif
#if defined(__SSE2__)
    if (level >= SimdLevel::kSse2)
        return kSse2Dsp;
#endif
    (void)level;
    return kScalarDsp;
}

}  // namespace hdvb
