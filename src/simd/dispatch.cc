#include "simd/dispatch.h"

#include "simd/kernels.h"

namespace hdvb {

namespace {

using namespace hdvb::kernels;

const Dsp kScalarDsp = {
    "scalar",
    scalar_sad16x16,
    scalar_sad8x8,
    scalar_sad_rect,
    scalar_satd4x4,
    scalar_satd_rect,
    scalar_sse_rect,
    scalar_copy_rect,
    scalar_avg_rect,
    scalar_avg4_rect,
    scalar_qpel_bilin_rect,
    scalar_sub_rect,
    scalar_add_rect,
    scalar_fdct8x8,
    scalar_idct8x8,
    scalar_h264_hpel_h,
    scalar_h264_hpel_v,
    scalar_h264_hpel_hv,
};

#if defined(__SSE2__)
const Dsp kSse2Dsp = {
    "sse2",
    sse2_sad16x16,
    sse2_sad8x8,
    sse2_sad_rect,
    sse2_satd4x4,
    sse2_satd_rect,
    sse2_sse_rect,
    scalar_copy_rect,  // block copies are memcpy either way
    sse2_avg_rect,
    sse2_avg4_rect,
    sse2_qpel_bilin_rect,
    sse2_sub_rect,
    sse2_add_rect,
    sse2_fdct8x8,
    sse2_idct8x8,
    sse2_h264_hpel_h,
    sse2_h264_hpel_v,
    // The centre (hv) position keeps the scalar implementation at both
    // levels: it needs 32-bit intermediates that SSE2 handles poorly,
    // and it is a small share of decode time (documented in DESIGN.md).
    scalar_h264_hpel_hv,
};
#endif

}  // namespace

const char *
simd_level_name(SimdLevel level)
{
    return level == SimdLevel::kScalar ? "scalar" : "sse2";
}

SimdLevel
best_simd_level()
{
#if defined(__SSE2__)
    return SimdLevel::kSse2;
#else
    return SimdLevel::kScalar;
#endif
}

const Dsp &
get_dsp(SimdLevel level)
{
#if defined(__SSE2__)
    if (level == SimdLevel::kSse2)
        return kSse2Dsp;
#endif
    (void)level;
    return kScalarDsp;
}

}  // namespace hdvb
