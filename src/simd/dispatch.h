/**
 * @file
 * Runtime-dispatched DSP kernel table.
 *
 * The paper's Figure 1 compares two builds of every codec: plain C
 * ("scalar") and SIMD-optimised. We reproduce that axis with a kernel
 * dispatch table: every pixel-level primitive the codecs use exists in a
 * scalar reference implementation plus SSE2 and AVX2 implementations,
 * selected by SimdLevel. All implementations are bit-exact with each
 * other (tests assert this), so changing the level changes speed, never
 * output.
 *
 * Level selection is a *runtime* decision: the AVX2 kernels are compiled
 * into their own translation unit with -mavx2, and best_simd_level()
 * probes the CPU (CPUID feature bits plus XGETBV/OSXSAVE state, so an
 * OS that does not save the ymm registers never gets AVX2 selected)
 * before the table can hand them out. The HDVB_SIMD environment
 * variable ("scalar" | "sse2" | "avx2") forces a lower tier for CI and
 * A/B runs; it can never raise the level above what the silicon
 * supports.
 */
#ifndef HDVB_SIMD_DISPATCH_H
#define HDVB_SIMD_DISPATCH_H

#include <string>

#include "common/types.h"

namespace hdvb {

/** Instruction-set level for the kernel table, ordered weakest first
 * (comparisons rely on the ordering: a level is "supported" iff it is
 * <= detected_simd_level()). */
enum class SimdLevel {
    kScalar = 0,  ///< Plain C++ reference kernels.
    kSse2 = 1,    ///< SSE2 intrinsics kernels.
    kAvx2 = 2,    ///< AVX2 intrinsics kernels (256-bit integer SIMD).
};

/** Number of levels (kScalar .. kAvx2). */
inline constexpr int kSimdLevelCount = 3;

/** Human-readable level name ("scalar" / "sse2" / "avx2"). */
const char *simd_level_name(SimdLevel level);

/** Parse a level name as spelled by simd_level_name(); returns false
 * (and leaves @p out untouched) on anything else. */
bool parse_simd_level(const std::string &name, SimdLevel *out);

/** Comma-separated legal spellings, for error messages and usage. */
const char *simd_level_names();

/** Strongest level this build + CPU + OS can actually execute,
 * determined once at runtime (CPUID + XGETBV). Ignores HDVB_SIMD. */
SimdLevel detected_simd_level();

/** The level benchmarks default to: detected_simd_level(), optionally
 * lowered by the HDVB_SIMD environment variable. A request above the
 * detected level (or an unknown spelling) is ignored with a warning —
 * the returned level is always executable on this machine. */
SimdLevel best_simd_level();

/**
 * Table of pixel-level kernels. All rectangle kernels take row strides
 * in samples; widths are arbitrary (SIMD variants handle tails), except
 * where noted.
 */
struct Dsp {
    /** Implementation name for reports. */
    const char *name;

    // ---- Block-matching costs (motion estimation) ----
    int (*sad16x16)(const Pixel *a, int as, const Pixel *b, int bs);
    /** sad16x16 whose FIRST operand satisfies the Plane alignment
     * contract: a and as are both multiples of 16 (every macroblock
     * position of a Plane row — see video/plane.h). The second operand
     * is unconstrained (motion-shifted reference). Callers must
     * HDVB_DCHECK the contract at the dispatch point. */
    int (*sad16x16_a)(const Pixel *a, int as, const Pixel *b, int bs);
    int (*sad8x8)(const Pixel *a, int as, const Pixel *b, int bs);
    /** Generic SAD; w, h <= 16. */
    int (*sad_rect)(const Pixel *a, int as, const Pixel *b, int bs,
                    int w, int h);
    /**
     * Early-termination SAD (the approx >= 1 tier): may stop
     * accumulating once the partial sum exceeds @p bound and return
     * the partial. The bound is advisory — implementations check it at
     * their own granularity (per row, per row pair), so the returned
     * value is only guaranteed exact when it is <= bound; any return
     * value > bound means "at least this much". Callers comparing
     * against a best-so-far cost must therefore derive @p bound from
     * that cost such that a bail already implies rejection (see
     * MotionEstimator). With bound = INT32_MAX these are plain SADs.
     */
    int (*sad16x16_et)(const Pixel *a, int as, const Pixel *b, int bs,
                       int bound);
    int (*sad_rect_et)(const Pixel *a, int as, const Pixel *b, int bs,
                       int w, int h, int bound);
    /** 4x4 Hadamard-transformed difference (x264-style, sum >> 1). */
    int (*satd4x4)(const Pixel *a, int as, const Pixel *b, int bs);
    /** SATD over a rectangle; w and h multiples of 4. */
    int (*satd_rect)(const Pixel *a, int as, const Pixel *b, int bs,
                     int w, int h);
    /** Sum of squared errors over a rectangle (PSNR, distortion). */
    u64 (*sse_rect)(const Pixel *a, int as, const Pixel *b, int bs,
                    int w, int h);

    // ---- Pixel moves (motion compensation) ----
    void (*copy_rect)(Pixel *dst, int ds, const Pixel *src, int ss,
                      int w, int h);
    /** dst = (a + b + 1) >> 1, the bilinear half-sample average. */
    void (*avg_rect)(Pixel *dst, int ds, const Pixel *a, int as,
                     const Pixel *b, int bs, int w, int h);
    /** dst[x] = (s[x] + s[x+1] + s[x+ss] + s[x+ss+1] + 2) >> 2 —
     * the MPEG-2 diagonal half-sample position. */
    void (*avg4_rect)(Pixel *dst, int ds, const Pixel *src, int ss,
                      int w, int h);
    /** Weighted bilinear sub-sample interpolation at quarter-pel
     * fractions fx, fy in 0..3 (the MPEG-4-class qpel filter):
     * dst = ((4-fx)(4-fy) s00 + fx (4-fy) s01 + (4-fx) fy s10 +
     *        fx fy s11 + 8) >> 4. */
    void (*qpel_bilin_rect)(Pixel *dst, int ds, const Pixel *src, int ss,
                            int w, int h, int fx, int fy);

    // ---- Residual handling ----
    /** dst(w x h, stride ds in Coeff) = src - pred. */
    void (*sub_rect)(Coeff *dst, int ds, const Pixel *src, int ss,
                     const Pixel *pred, int ps, int w, int h);
    /** dst = clamp(dst + res); res stride rs in Coeff. */
    void (*add_rect)(Pixel *dst, int ds, const Coeff *res, int rs,
                     int w, int h);

    // ---- 8x8 transforms (MPEG-class codecs), in-place row-major ----
    void (*fdct8x8)(Coeff blk[64]);
    void (*idct8x8)(Coeff blk[64]);

    // ---- H.264-class 6-tap half-sample interpolation ----
    /** Horizontal 6-tap at half-sample; reads src[-2..w+2]. */
    void (*h264_hpel_h)(Pixel *dst, int ds, const Pixel *src, int ss,
                        int w, int h);
    /** Vertical 6-tap at half-sample; reads rows -2..h+2. */
    void (*h264_hpel_v)(Pixel *dst, int ds, const Pixel *src, int ss,
                        int w, int h);
    /** Centre (hv) position: vertical then horizontal 6-tap at full
     * intermediate precision; w, h <= 16. Reads rows -2..h+2 and
     * columns -2..w+2. */
    void (*h264_hpel_hv)(Pixel *dst, int ds, const Pixel *src, int ss,
                         int w, int h);
};

/** Kernel table for @p level. A level the running CPU (or this build)
 * does not support falls back to the strongest supported level below
 * it, so per-file -mavx2 objects can never execute on silicon without
 * AVX2. */
const Dsp &get_dsp(SimdLevel level);

}  // namespace hdvb

#endif  // HDVB_SIMD_DISPATCH_H
