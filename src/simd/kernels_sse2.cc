/**
 * @file
 * SSE2 kernels. Every function here is bit-exact with its scalar
 * reference in kernels_scalar.cc: identical rounding, identical
 * saturation (packs/packus match the scalar clamps by construction).
 */
#include "simd/kernels.h"

#if defined(__SSE2__)

#include <emmintrin.h>

#include <cstring>

#include "simd/dct_matrix.h"

namespace hdvb::kernels {

namespace {

inline __m128i
load8_u8_as_s16(const Pixel *p)
{
    const __m128i zero = _mm_setzero_si128();
    return _mm_unpacklo_epi8(
        _mm_loadl_epi64(reinterpret_cast<const __m128i *>(p)), zero);
}

/** Horizontal sum of the four s32 lanes. */
inline int
hsum_epi32(__m128i v)
{
    v = _mm_add_epi32(v, _mm_shuffle_epi32(v, _MM_SHUFFLE(1, 0, 3, 2)));
    v = _mm_add_epi32(v, _mm_shuffle_epi32(v, _MM_SHUFFLE(2, 3, 0, 1)));
    return _mm_cvtsi128_si32(v);
}

/** Load two 4-pixel rows of a - b as 8 s16 lanes (row0 | row1). */
inline __m128i
diff4x2(const Pixel *a, int as, const Pixel *b, int bs)
{
    u32 a0, a1, b0, b1;
    std::memcpy(&a0, a, 4);
    std::memcpy(&a1, a + as, 4);
    std::memcpy(&b0, b, 4);
    std::memcpy(&b1, b + bs, 4);
    const __m128i zero = _mm_setzero_si128();
    const __m128i va = _mm_unpacklo_epi8(
        _mm_unpacklo_epi32(_mm_cvtsi32_si128(static_cast<int>(a0)),
                           _mm_cvtsi32_si128(static_cast<int>(a1))),
        zero);
    const __m128i vb = _mm_unpacklo_epi8(
        _mm_unpacklo_epi32(_mm_cvtsi32_si128(static_cast<int>(b0)),
                           _mm_cvtsi32_si128(static_cast<int>(b1))),
        zero);
    return _mm_sub_epi16(va, vb);
}

inline __m128i
swap_halves(__m128i v)
{
    return _mm_shuffle_epi32(v, _MM_SHUFFLE(1, 0, 3, 2));
}

inline __m128i
abs_epi16_sse2(__m128i v)
{
    return _mm_max_epi16(v, _mm_sub_epi16(_mm_setzero_si128(), v));
}

// ---- matrix DCT machinery ----

struct DctConsts {
    __m128i fwd[8][4];  ///< madd pair constants, forward basis
    __m128i inv[8][4];  ///< madd pair constants, transposed basis

    DctConsts()
    {
        for (int k = 0; k < 8; ++k) {
            for (int i = 0; i < 4; ++i) {
                const u32 f =
                    (static_cast<u16>(kDctMatrix[k][2 * i])) |
                    (static_cast<u32>(
                         static_cast<u16>(kDctMatrix[k][2 * i + 1]))
                     << 16);
                const u32 v =
                    (static_cast<u16>(kDctMatrix[2 * i][k])) |
                    (static_cast<u32>(
                         static_cast<u16>(kDctMatrix[2 * i + 1][k]))
                     << 16);
                fwd[k][i] = _mm_set1_epi32(static_cast<int>(f));
                inv[k][i] = _mm_set1_epi32(static_cast<int>(v));
            }
        }
    }
};

const DctConsts &
dct_consts()
{
    static const DctConsts consts;
    return consts;
}

/** Transpose 8 rows of 8 s16 in place. */
inline void
transpose8x8_sse2(__m128i r[8])
{
    const __m128i t0 = _mm_unpacklo_epi16(r[0], r[1]);
    const __m128i t1 = _mm_unpackhi_epi16(r[0], r[1]);
    const __m128i t2 = _mm_unpacklo_epi16(r[2], r[3]);
    const __m128i t3 = _mm_unpackhi_epi16(r[2], r[3]);
    const __m128i t4 = _mm_unpacklo_epi16(r[4], r[5]);
    const __m128i t5 = _mm_unpackhi_epi16(r[4], r[5]);
    const __m128i t6 = _mm_unpacklo_epi16(r[6], r[7]);
    const __m128i t7 = _mm_unpackhi_epi16(r[6], r[7]);
    const __m128i u0 = _mm_unpacklo_epi32(t0, t2);
    const __m128i u1 = _mm_unpackhi_epi32(t0, t2);
    const __m128i u2 = _mm_unpacklo_epi32(t1, t3);
    const __m128i u3 = _mm_unpackhi_epi32(t1, t3);
    const __m128i u4 = _mm_unpacklo_epi32(t4, t6);
    const __m128i u5 = _mm_unpackhi_epi32(t4, t6);
    const __m128i u6 = _mm_unpacklo_epi32(t5, t7);
    const __m128i u7 = _mm_unpackhi_epi32(t5, t7);
    r[0] = _mm_unpacklo_epi64(u0, u4);
    r[1] = _mm_unpackhi_epi64(u0, u4);
    r[2] = _mm_unpacklo_epi64(u1, u5);
    r[3] = _mm_unpackhi_epi64(u1, u5);
    r[4] = _mm_unpacklo_epi64(u2, u6);
    r[5] = _mm_unpackhi_epi64(u2, u6);
    r[6] = _mm_unpacklo_epi64(u3, u7);
    r[7] = _mm_unpackhi_epi64(u3, u7);
}

/** One 1-D column pass of the matrix transform on 8 columns. */
inline void
dct_pass_sse2(__m128i r[8], const __m128i consts[8][4], int shift)
{
    __m128i p_lo[4], p_hi[4];
    for (int i = 0; i < 4; ++i) {
        p_lo[i] = _mm_unpacklo_epi16(r[2 * i], r[2 * i + 1]);
        p_hi[i] = _mm_unpackhi_epi16(r[2 * i], r[2 * i + 1]);
    }
    const __m128i round = _mm_set1_epi32(1 << (shift - 1));
    const __m128i count = _mm_cvtsi32_si128(shift);
    __m128i out[8];
    for (int k = 0; k < 8; ++k) {
        __m128i lo = _mm_madd_epi16(p_lo[0], consts[k][0]);
        __m128i hi = _mm_madd_epi16(p_hi[0], consts[k][0]);
        for (int i = 1; i < 4; ++i) {
            lo = _mm_add_epi32(lo, _mm_madd_epi16(p_lo[i], consts[k][i]));
            hi = _mm_add_epi32(hi, _mm_madd_epi16(p_hi[i], consts[k][i]));
        }
        lo = _mm_sra_epi32(_mm_add_epi32(lo, round), count);
        hi = _mm_sra_epi32(_mm_add_epi32(hi, round), count);
        out[k] = _mm_packs_epi32(lo, hi);
    }
    for (int k = 0; k < 8; ++k)
        r[k] = out[k];
}

inline void
dct8x8_sse2(Coeff blk[64], const __m128i consts[8][4])
{
    __m128i r[8];
    for (int i = 0; i < 8; ++i)
        r[i] = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(blk + i * 8));
    dct_pass_sse2(r, consts, kDctPass1Shift);
    transpose8x8_sse2(r);
    dct_pass_sse2(r, consts, kDctPass2Shift);
    transpose8x8_sse2(r);
    for (int i = 0; i < 8; ++i)
        _mm_storeu_si128(reinterpret_cast<__m128i *>(blk + i * 8), r[i]);
}

}  // namespace

int
sse2_sad16x16(const Pixel *a, int as, const Pixel *b, int bs)
{
    __m128i acc = _mm_setzero_si128();
    for (int y = 0; y < 16; ++y) {
        const __m128i va =
            _mm_loadu_si128(reinterpret_cast<const __m128i *>(a));
        const __m128i vb =
            _mm_loadu_si128(reinterpret_cast<const __m128i *>(b));
        acc = _mm_add_epi64(acc, _mm_sad_epu8(va, vb));
        a += as;
        b += bs;
    }
    return _mm_cvtsi128_si32(acc) +
           _mm_cvtsi128_si32(_mm_srli_si128(acc, 8));
}

int
sse2_sad16x16_a(const Pixel *a, int as, const Pixel *b, int bs)
{
    // Aligned loads on the current-picture operand (the Plane layout
    // guarantees 16-byte-aligned macroblock rows); the reference
    // operand shifts with the motion vector and stays unaligned.
    __m128i acc = _mm_setzero_si128();
    for (int y = 0; y < 16; ++y) {
        const __m128i va =
            _mm_load_si128(reinterpret_cast<const __m128i *>(a));
        const __m128i vb =
            _mm_loadu_si128(reinterpret_cast<const __m128i *>(b));
        acc = _mm_add_epi64(acc, _mm_sad_epu8(va, vb));
        a += as;
        b += bs;
    }
    return _mm_cvtsi128_si32(acc) +
           _mm_cvtsi128_si32(_mm_srli_si128(acc, 8));
}

int
sse2_sad8x8(const Pixel *a, int as, const Pixel *b, int bs)
{
    __m128i acc = _mm_setzero_si128();
    for (int y = 0; y < 8; ++y) {
        const __m128i va =
            _mm_loadl_epi64(reinterpret_cast<const __m128i *>(a));
        const __m128i vb =
            _mm_loadl_epi64(reinterpret_cast<const __m128i *>(b));
        acc = _mm_add_epi64(acc, _mm_sad_epu8(va, vb));
        a += as;
        b += bs;
    }
    return _mm_cvtsi128_si32(acc);
}

int
sse2_sad_rect(const Pixel *a, int as, const Pixel *b, int bs,
              int w, int h)
{
    if (w == 16 && h == 16)
        return sse2_sad16x16(a, as, b, bs);
    if (w == 8) {
        __m128i acc = _mm_setzero_si128();
        for (int y = 0; y < h; ++y) {
            const __m128i va =
                _mm_loadl_epi64(reinterpret_cast<const __m128i *>(a));
            const __m128i vb =
                _mm_loadl_epi64(reinterpret_cast<const __m128i *>(b));
            acc = _mm_add_epi64(acc, _mm_sad_epu8(va, vb));
            a += as;
            b += bs;
        }
        return _mm_cvtsi128_si32(acc);
    }
    if (w == 16) {
        __m128i acc = _mm_setzero_si128();
        for (int y = 0; y < h; ++y) {
            const __m128i va =
                _mm_loadu_si128(reinterpret_cast<const __m128i *>(a));
            const __m128i vb =
                _mm_loadu_si128(reinterpret_cast<const __m128i *>(b));
            acc = _mm_add_epi64(acc, _mm_sad_epu8(va, vb));
            a += as;
            b += bs;
        }
        return _mm_cvtsi128_si32(acc) +
               _mm_cvtsi128_si32(_mm_srli_si128(acc, 8));
    }
    return scalar_sad_rect(a, as, b, bs, w, h);
}

int
sse2_sad16x16_et(const Pixel *a, int as, const Pixel *b, int bs,
                 int bound)
{
    // Early-termination SAD: psadbw four rows at a time, then compare
    // the running sum against the advisory bound. Checking every four
    // rows keeps the fast path branch-light while still skipping up to
    // 3/4 of the work on hopeless candidates.
    int sum = 0;
    for (int y = 0; y < 16; y += 4) {
        __m128i acc = _mm_setzero_si128();
        for (int r = 0; r < 4; ++r) {
            const __m128i va =
                _mm_loadu_si128(reinterpret_cast<const __m128i *>(a));
            const __m128i vb =
                _mm_loadu_si128(reinterpret_cast<const __m128i *>(b));
            acc = _mm_add_epi64(acc, _mm_sad_epu8(va, vb));
            a += as;
            b += bs;
        }
        sum += _mm_cvtsi128_si32(acc) +
               _mm_cvtsi128_si32(_mm_srli_si128(acc, 8));
        if (sum > bound)
            return sum;
    }
    return sum;
}

int
sse2_sad_rect_et(const Pixel *a, int as, const Pixel *b, int bs,
                 int w, int h, int bound)
{
    if (w == 16 && h == 16)
        return sse2_sad16x16_et(a, as, b, bs, bound);
    if (w == 8 || w == 16) {
        // Narrow blocks: check every other row pair; per-row psadbw is
        // cheap enough that finer checks cost more than they save.
        int sum = 0;
        for (int y = 0; y < h; ++y) {
            sum += sse2_sad_rect(a, as, b, bs, w, 1);
            a += as;
            b += bs;
            if ((y & 1) != 0 && sum > bound)
                return sum;
        }
        return sum;
    }
    return scalar_sad_rect_et(a, as, b, bs, w, h, bound);
}

int
sse2_satd4x4(const Pixel *a, int as, const Pixel *b, int bs)
{
    // u holds (row0 | row2), v holds (row1 | row3): the column
    // butterfly then works on 64-bit halves.
    const __m128i d01 = diff4x2(a, as, b, bs);           // row0 | row1
    const __m128i d23 = diff4x2(a + 2 * as, as, b + 2 * bs, bs);
    const __m128i u = _mm_unpacklo_epi64(d01, d23);      // row0 | row2
    const __m128i v = _mm_unpackhi_epi64(d01, d23);      // row1 | row3

    // Column (vertical) Hadamard.
    __m128i s = _mm_add_epi16(u, v);   // s0 | s1
    __m128i t = _mm_sub_epi16(u, v);   // d0 | d1
    __m128i ra = _mm_add_epi16(s, swap_halves(s));  // a' in both halves
    __m128i rc = _mm_sub_epi16(s, swap_halves(s));  // c' in low half
    __m128i rb = _mm_add_epi16(t, swap_halves(t));
    __m128i rd = _mm_sub_epi16(t, swap_halves(t));
    __m128i r01 = _mm_unpacklo_epi64(ra, rb);  // a' | b'
    __m128i r23 = _mm_unpacklo_epi64(rc, rd);  // c' | d'

    // Transpose the 4x4 (two rows per register).
    const __m128i i0 =
        _mm_unpacklo_epi16(r01, _mm_srli_si128(r01, 8));  // a,b interleave
    const __m128i i1 =
        _mm_unpacklo_epi16(r23, _mm_srli_si128(r23, 8));  // c,d interleave
    const __m128i c01 = _mm_unpacklo_epi32(i0, i1);  // col0 | col1
    const __m128i c23 = _mm_unpackhi_epi32(i0, i1);  // col2 | col3
    const __m128i u2 = _mm_unpacklo_epi64(c01, c23);  // col0 | col2
    const __m128i v2 = _mm_unpackhi_epi64(c01, c23);  // col1 | col3

    // Row Hadamard (same flow on transposed data).
    s = _mm_add_epi16(u2, v2);
    t = _mm_sub_epi16(u2, v2);
    ra = _mm_add_epi16(s, swap_halves(s));
    rc = _mm_sub_epi16(s, swap_halves(s));
    rb = _mm_add_epi16(t, swap_halves(t));
    rd = _mm_sub_epi16(t, swap_halves(t));
    r01 = _mm_unpacklo_epi64(ra, rb);
    r23 = _mm_unpacklo_epi64(rc, rd);

    const __m128i ones = _mm_set1_epi16(1);
    const __m128i sum = _mm_add_epi32(
        _mm_madd_epi16(abs_epi16_sse2(r01), ones),
        _mm_madd_epi16(abs_epi16_sse2(r23), ones));
    return hsum_epi32(sum) >> 1;
}

int
sse2_satd_rect(const Pixel *a, int as, const Pixel *b, int bs,
               int w, int h)
{
    int sum = 0;
    for (int y = 0; y < h; y += 4)
        for (int x = 0; x < w; x += 4)
            sum += sse2_satd4x4(a + y * as + x, as, b + y * bs + x, bs);
    return sum;
}

u64
sse2_sse_rect(const Pixel *a, int as, const Pixel *b, int bs,
              int w, int h)
{
    const __m128i zero = _mm_setzero_si128();
    u64 total = 0;
    for (int y = 0; y < h; ++y) {
        __m128i acc = zero;
        int x = 0;
        for (; x + 16 <= w; x += 16) {
            const __m128i va = _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(a + x));
            const __m128i vb = _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(b + x));
            const __m128i d_lo = _mm_sub_epi16(
                _mm_unpacklo_epi8(va, zero), _mm_unpacklo_epi8(vb, zero));
            const __m128i d_hi = _mm_sub_epi16(
                _mm_unpackhi_epi8(va, zero), _mm_unpackhi_epi8(vb, zero));
            acc = _mm_add_epi32(acc, _mm_madd_epi16(d_lo, d_lo));
            acc = _mm_add_epi32(acc, _mm_madd_epi16(d_hi, d_hi));
        }
        for (; x + 8 <= w; x += 8) {
            const __m128i d = _mm_sub_epi16(load8_u8_as_s16(a + x),
                                            load8_u8_as_s16(b + x));
            acc = _mm_add_epi32(acc, _mm_madd_epi16(d, d));
        }
        u32 row = 0;
        for (; x < w; ++x) {
            const int d = static_cast<int>(a[x]) - static_cast<int>(b[x]);
            row += static_cast<u32>(d * d);
        }
        // Lanes are non-negative; fold as unsigned into the u64 total.
        const __m128i lo64 = _mm_unpacklo_epi32(acc, zero);
        const __m128i hi64 = _mm_unpackhi_epi32(acc, zero);
        const __m128i f = _mm_add_epi64(lo64, hi64);
        total += static_cast<u64>(_mm_cvtsi128_si32(f)) +
                 (static_cast<u64>(static_cast<u32>(
                      _mm_cvtsi128_si32(_mm_srli_si128(f, 4)))) << 32);
        total += static_cast<u64>(static_cast<u32>(
                     _mm_cvtsi128_si32(_mm_srli_si128(f, 8))));
        total += static_cast<u64>(static_cast<u32>(_mm_cvtsi128_si32(
                     _mm_srli_si128(f, 12)))) << 32;
        total += row;
        a += as;
        b += bs;
    }
    return total;
}

void
sse2_avg_rect(Pixel *dst, int ds, const Pixel *a, int as,
              const Pixel *b, int bs, int w, int h)
{
    for (int y = 0; y < h; ++y) {
        int x = 0;
        for (; x + 16 <= w; x += 16) {
            const __m128i va = _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(a + x));
            const __m128i vb = _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(b + x));
            _mm_storeu_si128(reinterpret_cast<__m128i *>(dst + x),
                             _mm_avg_epu8(va, vb));
        }
        for (; x + 8 <= w; x += 8) {
            const __m128i va =
                _mm_loadl_epi64(reinterpret_cast<const __m128i *>(a + x));
            const __m128i vb =
                _mm_loadl_epi64(reinterpret_cast<const __m128i *>(b + x));
            _mm_storel_epi64(reinterpret_cast<__m128i *>(dst + x),
                             _mm_avg_epu8(va, vb));
        }
        for (; x < w; ++x)
            dst[x] = static_cast<Pixel>((a[x] + b[x] + 1) >> 1);
        dst += ds;
        a += as;
        b += bs;
    }
}

void
sse2_avg4_rect(Pixel *dst, int ds, const Pixel *src, int ss,
               int w, int h)
{
    const __m128i two = _mm_set1_epi16(2);
    for (int y = 0; y < h; ++y) {
        int x = 0;
        for (; x + 8 <= w; x += 8) {
            const __m128i s00 = load8_u8_as_s16(src + x);
            const __m128i s01 = load8_u8_as_s16(src + x + 1);
            const __m128i s10 = load8_u8_as_s16(src + x + ss);
            const __m128i s11 = load8_u8_as_s16(src + x + ss + 1);
            __m128i sum = _mm_add_epi16(_mm_add_epi16(s00, s01),
                                        _mm_add_epi16(s10, s11));
            sum = _mm_srli_epi16(_mm_add_epi16(sum, two), 2);
            _mm_storel_epi64(reinterpret_cast<__m128i *>(dst + x),
                             _mm_packus_epi16(sum, sum));
        }
        for (; x < w; ++x) {
            dst[x] = static_cast<Pixel>(
                (src[x] + src[x + 1] + src[x + ss] + src[x + ss + 1] + 2)
                >> 2);
        }
        dst += ds;
        src += ss;
    }
}

void
sse2_qpel_bilin_rect(Pixel *dst, int ds, const Pixel *src, int ss,
                     int w, int h, int fx, int fy)
{
    const __m128i w00 = _mm_set1_epi16(
        static_cast<short>((4 - fx) * (4 - fy)));
    const __m128i w01 = _mm_set1_epi16(static_cast<short>(fx * (4 - fy)));
    const __m128i w10 = _mm_set1_epi16(static_cast<short>((4 - fx) * fy));
    const __m128i w11 = _mm_set1_epi16(static_cast<short>(fx * fy));
    const __m128i eight = _mm_set1_epi16(8);
    const int sw00 = (4 - fx) * (4 - fy);
    const int sw01 = fx * (4 - fy);
    const int sw10 = (4 - fx) * fy;
    const int sw11 = fx * fy;
    for (int y = 0; y < h; ++y) {
        int x = 0;
        for (; x + 8 <= w; x += 8) {
            const __m128i s00 = load8_u8_as_s16(src + x);
            const __m128i s01 = load8_u8_as_s16(src + x + 1);
            const __m128i s10 = load8_u8_as_s16(src + x + ss);
            const __m128i s11 = load8_u8_as_s16(src + x + ss + 1);
            __m128i acc = _mm_mullo_epi16(s00, w00);
            acc = _mm_add_epi16(acc, _mm_mullo_epi16(s01, w01));
            acc = _mm_add_epi16(acc, _mm_mullo_epi16(s10, w10));
            acc = _mm_add_epi16(acc, _mm_mullo_epi16(s11, w11));
            acc = _mm_srli_epi16(_mm_add_epi16(acc, eight), 4);
            _mm_storel_epi64(reinterpret_cast<__m128i *>(dst + x),
                             _mm_packus_epi16(acc, acc));
        }
        for (; x < w; ++x) {
            dst[x] = static_cast<Pixel>(
                (sw00 * src[x] + sw01 * src[x + 1] + sw10 * src[x + ss] +
                 sw11 * src[x + ss + 1] + 8) >> 4);
        }
        dst += ds;
        src += ss;
    }
}

void
sse2_sub_rect(Coeff *dst, int ds, const Pixel *src, int ss,
              const Pixel *pred, int ps, int w, int h)
{
    for (int y = 0; y < h; ++y) {
        int x = 0;
        for (; x + 8 <= w; x += 8) {
            const __m128i d = _mm_sub_epi16(load8_u8_as_s16(src + x),
                                            load8_u8_as_s16(pred + x));
            _mm_storeu_si128(reinterpret_cast<__m128i *>(dst + x), d);
        }
        for (; x < w; ++x)
            dst[x] = static_cast<Coeff>(static_cast<int>(src[x]) -
                                        static_cast<int>(pred[x]));
        dst += ds;
        src += ss;
        pred += ps;
    }
}

void
sse2_add_rect(Pixel *dst, int ds, const Coeff *res, int rs,
              int w, int h)
{
    for (int y = 0; y < h; ++y) {
        int x = 0;
        for (; x + 8 <= w; x += 8) {
            const __m128i r = _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(res + x));
            const __m128i v = _mm_add_epi16(load8_u8_as_s16(dst + x), r);
            _mm_storel_epi64(reinterpret_cast<__m128i *>(dst + x),
                             _mm_packus_epi16(v, v));
        }
        for (; x < w; ++x)
            dst[x] = clamp_pixel(static_cast<int>(dst[x]) + res[x]);
        dst += ds;
        res += rs;
    }
}

void
sse2_fdct8x8(Coeff blk[64])
{
    dct8x8_sse2(blk, dct_consts().fwd);
}

void
sse2_idct8x8(Coeff blk[64])
{
    dct8x8_sse2(blk, dct_consts().inv);
}

void
sse2_h264_hpel_h(Pixel *dst, int ds, const Pixel *src, int ss,
                 int w, int h)
{
    const __m128i sixteen = _mm_set1_epi16(16);
    for (int y = 0; y < h; ++y) {
        int x = 0;
        for (; x + 8 <= w; x += 8) {
            const __m128i a = load8_u8_as_s16(src + x - 2);
            const __m128i b = load8_u8_as_s16(src + x - 1);
            const __m128i c = load8_u8_as_s16(src + x);
            const __m128i d = load8_u8_as_s16(src + x + 1);
            const __m128i e = load8_u8_as_s16(src + x + 2);
            const __m128i f = load8_u8_as_s16(src + x + 3);
            const __m128i cd = _mm_add_epi16(c, d);
            const __m128i be = _mm_add_epi16(b, e);
            const __m128i cd20 = _mm_add_epi16(_mm_slli_epi16(cd, 4),
                                               _mm_slli_epi16(cd, 2));
            const __m128i be5 =
                _mm_add_epi16(_mm_slli_epi16(be, 2), be);
            __m128i v = _mm_add_epi16(_mm_add_epi16(a, f),
                                      _mm_sub_epi16(cd20, be5));
            v = _mm_srai_epi16(_mm_add_epi16(v, sixteen), 5);
            _mm_storel_epi64(reinterpret_cast<__m128i *>(dst + x),
                             _mm_packus_epi16(v, v));
        }
        for (; x < w; ++x) {
            const int v = src[x - 2] - 5 * src[x - 1] + 20 * src[x] +
                          20 * src[x + 1] - 5 * src[x + 2] + src[x + 3];
            dst[x] = clamp_pixel((v + 16) >> 5);
        }
        dst += ds;
        src += ss;
    }
}

void
sse2_h264_hpel_v(Pixel *dst, int ds, const Pixel *src, int ss,
                 int w, int h)
{
    const __m128i sixteen = _mm_set1_epi16(16);
    for (int y = 0; y < h; ++y) {
        int x = 0;
        for (; x + 8 <= w; x += 8) {
            const __m128i a = load8_u8_as_s16(src + x - 2 * ss);
            const __m128i b = load8_u8_as_s16(src + x - ss);
            const __m128i c = load8_u8_as_s16(src + x);
            const __m128i d = load8_u8_as_s16(src + x + ss);
            const __m128i e = load8_u8_as_s16(src + x + 2 * ss);
            const __m128i f = load8_u8_as_s16(src + x + 3 * ss);
            const __m128i cd = _mm_add_epi16(c, d);
            const __m128i be = _mm_add_epi16(b, e);
            const __m128i cd20 = _mm_add_epi16(_mm_slli_epi16(cd, 4),
                                               _mm_slli_epi16(cd, 2));
            const __m128i be5 =
                _mm_add_epi16(_mm_slli_epi16(be, 2), be);
            __m128i v = _mm_add_epi16(_mm_add_epi16(a, f),
                                      _mm_sub_epi16(cd20, be5));
            v = _mm_srai_epi16(_mm_add_epi16(v, sixteen), 5);
            _mm_storel_epi64(reinterpret_cast<__m128i *>(dst + x),
                             _mm_packus_epi16(v, v));
        }
        for (; x < w; ++x) {
            const int v = src[x - 2 * ss] - 5 * src[x - ss] +
                          20 * src[x] + 20 * src[x + ss] -
                          5 * src[x + 2 * ss] + src[x + 3 * ss];
            dst[x] = clamp_pixel((v + 16) >> 5);
        }
        dst += ds;
        src += ss;
    }
}

void
sse2_h264_hpel_hv(Pixel *dst, int ds, const Pixel *src, int ss,
                  int w, int h)
{
    // Vertical 6-tap at full precision into an s16 temp (the raw
    // vertical sums fit: -2550 .. 10710), then horizontal 6-tap on the
    // temp widened to 32 bits with a 10-bit descale — the H.264 'j'
    // position. Max block is 16x16; the temp holds columns -2..w+2.
    constexpr int kTmpStride = 24;  // >= 16 + 5, padded for 8-lane loads
    s16 tmp[16][kTmpStride];
    const __m128i zero = _mm_setzero_si128();
    for (int y = 0; y < h; ++y) {
        int x = -2;
        for (; x + 8 <= w + 3; x += 8) {
            const __m128i a = load8_u8_as_s16(src + x - 2 * ss);
            const __m128i b = load8_u8_as_s16(src + x - ss);
            const __m128i c = load8_u8_as_s16(src + x);
            const __m128i d = load8_u8_as_s16(src + x + ss);
            const __m128i e = load8_u8_as_s16(src + x + 2 * ss);
            const __m128i f = load8_u8_as_s16(src + x + 3 * ss);
            const __m128i cd = _mm_add_epi16(c, d);
            const __m128i be = _mm_add_epi16(b, e);
            const __m128i cd20 = _mm_add_epi16(_mm_slli_epi16(cd, 4),
                                               _mm_slli_epi16(cd, 2));
            const __m128i be5 =
                _mm_add_epi16(_mm_slli_epi16(be, 2), be);
            const __m128i v = _mm_add_epi16(
                _mm_add_epi16(a, f), _mm_sub_epi16(cd20, be5));
            _mm_storeu_si128(
                reinterpret_cast<__m128i *>(&tmp[y][x + 2]), v);
        }
        for (; x < w + 3; ++x) {
            tmp[y][x + 2] = static_cast<s16>(
                src[x - 2 * ss] - 5 * src[x - ss] + 20 * src[x] +
                20 * src[x + ss] - 5 * src[x + 2 * ss] +
                src[x + 3 * ss]);
        }
        src += ss;
    }
    const __m128i round = _mm_set1_epi32(512);
    for (int y = 0; y < h; ++y) {
        int x = 0;
        for (; x + 8 <= w; x += 8) {
            // Widen each tap to exact s32 (the horizontal combination
            // of s16 taps overflows 16 bits) via sign-extending
            // unpacks, then shift-add the 1/-5/20 weights.
            __m128i acc_lo = zero, acc_hi = zero;
            for (int k = 0; k < 6; ++k) {
                const __m128i t = _mm_loadu_si128(
                    reinterpret_cast<const __m128i *>(&tmp[y][x + k]));
                const __m128i lo = _mm_srai_epi32(
                    _mm_unpacklo_epi16(t, t), 16);
                const __m128i hi = _mm_srai_epi32(
                    _mm_unpackhi_epi16(t, t), 16);
                if (k == 0 || k == 5) {
                    acc_lo = _mm_add_epi32(acc_lo, lo);
                    acc_hi = _mm_add_epi32(acc_hi, hi);
                } else if (k == 2 || k == 3) {
                    acc_lo = _mm_add_epi32(
                        acc_lo, _mm_add_epi32(_mm_slli_epi32(lo, 4),
                                              _mm_slli_epi32(lo, 2)));
                    acc_hi = _mm_add_epi32(
                        acc_hi, _mm_add_epi32(_mm_slli_epi32(hi, 4),
                                              _mm_slli_epi32(hi, 2)));
                } else {  // k == 1 || k == 4: weight -5
                    acc_lo = _mm_sub_epi32(
                        acc_lo, _mm_add_epi32(_mm_slli_epi32(lo, 2),
                                              lo));
                    acc_hi = _mm_sub_epi32(
                        acc_hi, _mm_add_epi32(_mm_slli_epi32(hi, 2),
                                              hi));
                }
            }
            acc_lo = _mm_srai_epi32(_mm_add_epi32(acc_lo, round), 10);
            acc_hi = _mm_srai_epi32(_mm_add_epi32(acc_hi, round), 10);
            const __m128i v16 = _mm_packs_epi32(acc_lo, acc_hi);
            _mm_storel_epi64(reinterpret_cast<__m128i *>(dst + x),
                             _mm_packus_epi16(v16, v16));
        }
        for (; x < w; ++x) {
            const s16 *t = &tmp[y][x + 2];
            const s32 v = t[-2] - 5 * t[-1] + 20 * t[0] + 20 * t[1] -
                          5 * t[2] + t[3];
            dst[x] = clamp_pixel(static_cast<int>((v + 512) >> 10));
        }
        dst += ds;
    }
}

}  // namespace hdvb::kernels

#endif  // __SSE2__
