/**
 * @file
 * Shared fixed-point 8x8 DCT basis used by both the scalar and the SSE2
 * transform kernels, so the two stay bit-exact by construction.
 *
 * kDctMatrix[k][n] = round(2^13 * s_k * cos((2n+1) k pi / 16)) with
 * s_0 = sqrt(1/8) and s_k = 1/2 — the orthonormal DCT-II basis.
 *
 * Both passes of fdct/idct are plain matrix products against this basis
 * with defined rounding:  pass 1 descales by 11 bits (leaving a x4 gain
 * for precision), pass 2 by 15 bits (restoring unit gain). Intermediates
 * are saturated to int16 exactly like _mm_packs_epi32 does.
 */
#ifndef HDVB_SIMD_DCT_MATRIX_H
#define HDVB_SIMD_DCT_MATRIX_H

#include "common/types.h"

namespace hdvb {

/** Fixed-point scale of the DCT basis (bits). */
inline constexpr int kDctScaleBits = 13;
/** Descale shift after the first 1-D pass. */
inline constexpr int kDctPass1Shift = 11;
/** Descale shift after the second 1-D pass. */
inline constexpr int kDctPass2Shift = 15;

/** Orthonormal DCT-II basis, Q13. [frequency][sample]. */
extern const s16 kDctMatrix[8][8];

}  // namespace hdvb

#endif  // HDVB_SIMD_DCT_MATRIX_H
