#include "core/benchmark.h"

#include "common/check.h"
#include "dsp/quant.h"
#include "h264/h264.h"
#include "mpeg2/mpeg2.h"
#include "mpeg4/mpeg4.h"

namespace hdvb {

const char *
codec_name(CodecId id)
{
    switch (id) {
      case CodecId::kMpeg2: return "mpeg2";
      case CodecId::kMpeg4: return "mpeg4";
      case CodecId::kH264: return "h264";
    }
    return "?";
}

const char *
codec_display_name(CodecId id)
{
    switch (id) {
      case CodecId::kMpeg2: return "MPEG-2";
      case CodecId::kMpeg4: return "MPEG-4";
      case CodecId::kH264: return "H.264";
    }
    return "?";
}

const char *
codec_application(CodecId id, bool encoder)
{
    switch (id) {
      case CodecId::kMpeg2:
        return encoder ? "ffmpeg-mpeg2 (class)" : "libmpeg2 (class)";
      case CodecId::kMpeg4:
        return encoder ? "Xvid (class)" : "Xvid (class)";
      case CodecId::kH264:
        return encoder ? "x264 (class)" : "ffmpeg-h264 (class)";
    }
    return "?";
}

bool
parse_codec(const std::string &name, CodecId *out)
{
    for (CodecId id : kAllCodecs) {
        if (name == codec_name(id)) {
            *out = id;
            return true;
        }
    }
    return false;
}

StatusOr<CodecId>
parse_codec(const std::string &name)
{
    CodecId id;
    if (parse_codec(name, &id))
        return id;
    std::string legal;
    for (CodecId c : kAllCodecs) {
        if (!legal.empty())
            legal += ", ";
        legal += codec_name(c);
    }
    return Status::invalid_argument("unknown codec '" + name +
                                    "' (legal: " + legal + ")");
}

ResolutionInfo
resolution_info(Resolution res)
{
    switch (res) {
      case Resolution::k576p25: return {"576p25", 720, 576, 25};
      case Resolution::k720p25: return {"720p25", 1280, 720, 25};
      case Resolution::k1088p25: return {"1088p25", 1920, 1088, 25};
    }
    return {"?", 0, 0, 0};
}

bool
parse_resolution(const std::string &name, Resolution *out)
{
    for (Resolution res : kAllResolutions) {
        if (name == resolution_info(res).name) {
            *out = res;
            return true;
        }
    }
    return false;
}

StatusOr<Resolution>
parse_resolution(const std::string &name)
{
    Resolution res;
    if (parse_resolution(name, &res))
        return res;
    std::string legal;
    for (Resolution r : kAllResolutions) {
        if (!legal.empty())
            legal += ", ";
        legal += resolution_info(r).name;
    }
    return Status::invalid_argument("unknown resolution '" + name +
                                    "' (legal: " + legal + ")");
}

CodecConfig
benchmark_config(CodecId codec, Resolution res, SimdLevel simd)
{
    const ResolutionInfo info = resolution_info(res);
    CodecConfig cfg;
    cfg.width = info.width;
    cfg.height = info.height;
    cfg.fps_num = info.fps;
    cfg.fps_den = 1;
    cfg.qscale = kBenchmarkMpegQscale;
    // Equation 1 maps the nominal quantisers (5 -> 26). The paper's
    // equivalence was calibrated on ffmpeg/x264; for this codec stack
    // the same *operating point* (H.264 PSNR ~= MPEG-2 PSNR, Table V's
    // pattern) sits three QP finer, so the benchmark applies a fixed
    // implementation-calibration offset (see EXPERIMENTS.md).
    cfg.qp = clamp(h264_qp_from_mpeg(kBenchmarkMpegQscale) - 3, 0, 51);
    cfg.bframes = 2;  // I-P-B-B, adaptive placement disabled
    cfg.simd = simd;
    switch (codec) {
      case CodecId::kMpeg2:
      case CodecId::kMpeg4:
        cfg.me_range = 16;  // EPZS with zonal predictors
        break;
      case CodecId::kH264:
        cfg.me_range = 24;  // --me hex --merange 24
        cfg.refs = 8;       // paper: --ref 16 (see header note)
        break;
    }
    HDVB_CHECK(cfg.validate().is_ok());
    return cfg;
}

StatusOr<std::unique_ptr<VideoEncoder>>
make_encoder(CodecId codec, const CodecConfig &config)
{
    HDVB_RETURN_IF_ERROR(config.validate());
    switch (codec) {
      case CodecId::kMpeg2: return create_mpeg2_encoder(config);
      case CodecId::kMpeg4: return create_mpeg4_encoder(config);
      case CodecId::kH264: return create_h264_encoder(config);
    }
    return Status::invalid_argument("unknown codec id");
}

StatusOr<std::unique_ptr<VideoDecoder>>
make_decoder(CodecId codec, const CodecConfig &config)
{
    HDVB_RETURN_IF_ERROR(config.validate());
    switch (codec) {
      case CodecId::kMpeg2: return create_mpeg2_decoder(config);
      case CodecId::kMpeg4: return create_mpeg4_decoder(config);
      case CodecId::kH264: return create_h264_decoder(config);
    }
    return Status::invalid_argument("unknown codec id");
}

}  // namespace hdvb
