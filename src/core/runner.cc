#include "core/runner.h"

#include <chrono>
#include <cstdlib>
#include <thread>

#include "common/check.h"
#include "metrics/timer.h"

namespace hdvb {

namespace {

/** Per-frame fault-injection delay (untimed, but inside the deadline
 * window — this is how tests simulate a hung point deterministically). */
void
inject_frame_delay(const BenchPoint &point)
{
    if (point.fault.has_value() && point.fault->delay_seconds > 0.0) {
        std::this_thread::sleep_for(std::chrono::duration<double>(
            point.fault->delay_seconds));
    }
}

/** True once a non-zero @p deadline has passed since @p start. */
bool
past_deadline(std::chrono::steady_clock::time_point start,
              double deadline_seconds)
{
    if (deadline_seconds <= 0.0)
        return false;
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    return elapsed.count() > deadline_seconds;
}

}  // namespace

CodecConfig
BenchPoint::effective_config() const
{
    CodecConfig cfg = config.has_value()
                          ? *config
                          : benchmark_config(codec, resolution, simd);
    if (threads > 1)
        cfg.threads = threads;
    return cfg;
}

std::string
BenchPoint::label() const
{
    std::string out = codec_name(codec);
    out += '/';
    out += sequence_name(sequence);
    out += '/';
    out += resolution_info(resolution).name;
    out += '/';
    out += simd_level_name(simd);
    return out;
}

int
bench_frames_default()
{
    const char *env = std::getenv("HDVB_FRAMES");
    if (env != nullptr) {
        const int n = std::atoi(env);
        if (n > 0)
            return n;
    }
    return 4;
}

StatusOr<EncodeRun>
run_encode(const BenchPoint &point, double deadline_seconds)
{
    const auto start = std::chrono::steady_clock::now();
    const CodecConfig cfg = point.effective_config();
    StatusOr<std::unique_ptr<VideoEncoder>> encoder =
        make_encoder(point.codec, cfg);
    if (!encoder.is_ok())
        return encoder.status();

    SyntheticSource source(point.sequence, cfg.width, cfg.height);
    EncodeRun run;
    run.frames = point.frames;
    run.stream.codec = codec_name(point.codec);
    run.stream.width = cfg.width;
    run.stream.height = cfg.height;
    run.stream.fps_num = cfg.fps_num;
    run.stream.fps_den = cfg.fps_den;

    WallTimer timer;
    for (int i = 0; i < point.frames; ++i) {
        inject_frame_delay(point);
        if (past_deadline(start, deadline_seconds))
            return Status::deadline_exceeded("encode of " +
                                             point.label());
        const Frame frame = source.next();  // untimed generation
        timer.start();
        const Status status =
            encoder.value()->encode(frame, &run.stream.packets);
        timer.stop();
        if (!status.is_ok())
            return status;
    }
    timer.start();
    const Status status = encoder.value()->flush(&run.stream.packets);
    timer.stop();
    if (!status.is_ok())
        return status;
    run.seconds = timer.seconds();
    run.pool = encoder.value()->pool_stats();
    return run;
}

StatusOr<DecodeRun>
run_decode(const BenchPoint &point, const EncodedStream &stream,
           double deadline_seconds)
{
    const auto start = std::chrono::steady_clock::now();
    const CodecConfig cfg = point.effective_config();
    StatusOr<std::unique_ptr<VideoDecoder>> decoder =
        make_decoder(point.codec, cfg);
    if (!decoder.is_ok())
        return decoder.status();

    // Score and release output frames as they are emitted (untimed)
    // instead of holding the whole sequence: retaining every frame
    // would keep its plane buffers checked out of the decoder's
    // FramePool, turning a recycling steady state into one fresh
    // allocation per picture and poisoning the allocs_per_frame
    // report column.
    SyntheticSource source(point.sequence, cfg.width, cfg.height);
    PsnrAccumulator acc;
    int decoded = 0;
    std::vector<Frame> frames;
    const auto score_and_release = [&] {
        for (const Frame &frame : frames) {
            const Frame ref = source.at(static_cast<int>(frame.poc()));
            acc.add(ref, frame);
        }
        decoded += static_cast<int>(frames.size());
        frames.clear();
    };

    WallTimer timer;
    for (const Packet &packet : stream.packets) {
        inject_frame_delay(point);
        if (past_deadline(start, deadline_seconds))
            return Status::deadline_exceeded("decode of " +
                                             point.label());
        timer.start();
        const Status status = decoder.value()->decode(packet, &frames);
        timer.stop();
        if (!status.is_ok())
            return status;
        score_and_release();
    }
    timer.start();
    const Status status = decoder.value()->flush(&frames);
    timer.stop();
    if (!status.is_ok())
        return status;
    score_and_release();

    DecodeRun run;
    run.frames = decoded;
    run.seconds = timer.seconds();
    run.stats = decoder.value()->stats();
    run.pool = decoder.value()->pool_stats();
    run.psnr_y = acc.psnr_y();
    run.psnr_all = acc.psnr_all();
    return run;
}

}  // namespace hdvb
