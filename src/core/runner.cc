#include "core/runner.h"

#include <cstdlib>

#include "common/check.h"
#include "metrics/timer.h"

namespace hdvb {

CodecConfig
BenchPoint::effective_config() const
{
    if (config.has_value())
        return *config;
    return benchmark_config(codec, resolution, simd);
}

std::string
BenchPoint::label() const
{
    std::string out = codec_name(codec);
    out += '/';
    out += sequence_name(sequence);
    out += '/';
    out += resolution_info(resolution).name;
    out += '/';
    out += simd_level_name(simd);
    return out;
}

int
bench_frames_default()
{
    const char *env = std::getenv("HDVB_FRAMES");
    if (env != nullptr) {
        const int n = std::atoi(env);
        if (n > 0)
            return n;
    }
    return 4;
}

EncodeRun
run_encode(const BenchPoint &point)
{
    const CodecConfig cfg = point.effective_config();
    StatusOr<std::unique_ptr<VideoEncoder>> encoder =
        make_encoder(point.codec, cfg);
    HDVB_CHECK(encoder.is_ok());

    SyntheticSource source(point.sequence, cfg.width, cfg.height);
    EncodeRun run;
    run.frames = point.frames;
    run.stream.codec = codec_name(point.codec);
    run.stream.width = cfg.width;
    run.stream.height = cfg.height;
    run.stream.fps_num = cfg.fps_num;
    run.stream.fps_den = cfg.fps_den;

    WallTimer timer;
    for (int i = 0; i < point.frames; ++i) {
        const Frame frame = source.next();  // untimed generation
        timer.start();
        const Status status =
            encoder.value()->encode(frame, &run.stream.packets);
        timer.stop();
        HDVB_CHECK(status.is_ok());
    }
    timer.start();
    HDVB_CHECK(encoder.value()->flush(&run.stream.packets).is_ok());
    timer.stop();
    run.seconds = timer.seconds();
    return run;
}

DecodeRun
run_decode(const BenchPoint &point, const EncodedStream &stream)
{
    const CodecConfig cfg = point.effective_config();
    StatusOr<std::unique_ptr<VideoDecoder>> decoder =
        make_decoder(point.codec, cfg);
    HDVB_CHECK(decoder.is_ok());

    std::vector<Frame> frames;
    WallTimer timer;
    for (const Packet &packet : stream.packets) {
        timer.start();
        const Status status = decoder.value()->decode(packet, &frames);
        timer.stop();
        HDVB_CHECK(status.is_ok());
    }
    timer.start();
    HDVB_CHECK(decoder.value()->flush(&frames).is_ok());
    timer.stop();

    DecodeRun run;
    run.frames = static_cast<int>(frames.size());
    run.seconds = timer.seconds();

    SyntheticSource source(point.sequence, cfg.width, cfg.height);
    PsnrAccumulator acc;
    for (const Frame &frame : frames) {
        const Frame ref = source.at(static_cast<int>(frame.poc()));
        acc.add(ref, frame);
    }
    run.psnr_y = acc.psnr_y();
    run.psnr_all = acc.psnr_all();
    return run;
}

}  // namespace hdvb
