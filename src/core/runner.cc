#include "core/runner.h"

#include <cstdlib>

#include "common/check.h"
#include "metrics/timer.h"

namespace hdvb {

int
bench_frames_default()
{
    const char *env = std::getenv("HDVB_FRAMES");
    if (env != nullptr) {
        const int n = std::atoi(env);
        if (n > 0)
            return n;
    }
    return 4;
}

EncodeRun
run_encode(const BenchPoint &point, const CodecConfig *config_override)
{
    const CodecConfig cfg =
        config_override != nullptr
            ? *config_override
            : benchmark_config(point.codec, point.resolution, point.simd);
    std::unique_ptr<VideoEncoder> encoder =
        make_encoder(point.codec, cfg);
    HDVB_CHECK(encoder != nullptr);

    SyntheticSource source(point.sequence, cfg.width, cfg.height);
    EncodeRun run;
    run.frames = point.frames;
    run.stream.codec = codec_name(point.codec);
    run.stream.width = cfg.width;
    run.stream.height = cfg.height;
    run.stream.fps_num = cfg.fps_num;
    run.stream.fps_den = cfg.fps_den;

    WallTimer timer;
    for (int i = 0; i < point.frames; ++i) {
        const Frame frame = source.next();  // untimed generation
        timer.start();
        const Status status = encoder->encode(frame, &run.stream.packets);
        timer.stop();
        HDVB_CHECK(status.is_ok());
    }
    timer.start();
    HDVB_CHECK(encoder->flush(&run.stream.packets).is_ok());
    timer.stop();
    run.seconds = timer.seconds();
    return run;
}

DecodeRun
run_decode(const BenchPoint &point, const EncodedStream &stream,
           const CodecConfig *config_override)
{
    const CodecConfig cfg =
        config_override != nullptr
            ? *config_override
            : benchmark_config(point.codec, point.resolution, point.simd);
    std::unique_ptr<VideoDecoder> decoder =
        make_decoder(point.codec, cfg);
    HDVB_CHECK(decoder != nullptr);

    std::vector<Frame> frames;
    WallTimer timer;
    for (const Packet &packet : stream.packets) {
        timer.start();
        const Status status = decoder->decode(packet, &frames);
        timer.stop();
        HDVB_CHECK(status.is_ok());
    }
    timer.start();
    HDVB_CHECK(decoder->flush(&frames).is_ok());
    timer.stop();

    DecodeRun run;
    run.frames = static_cast<int>(frames.size());
    run.seconds = timer.seconds();

    SyntheticSource source(point.sequence, cfg.width, cfg.height);
    PsnrAccumulator acc;
    for (const Frame &frame : frames) {
        const Frame ref = source.at(static_cast<int>(frame.poc()));
        acc.add(ref, frame);
    }
    run.psnr_y = acc.psnr_y();
    run.psnr_all = acc.psnr_all();
    return run;
}

}  // namespace hdvb
