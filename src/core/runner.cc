#include "core/runner.h"

#include <chrono>
#include <thread>
#include <utility>

#include "common/env.h"

#include "common/check.h"
#include "fault/deadline.h"
#include "metrics/timer.h"
#include "serve/session.h"

namespace hdvb {

namespace {

/** Per-frame fault-injection delay (untimed, but inside the deadline
 * window — this is how tests simulate a hung point deterministically). */
void
inject_frame_delay(const BenchPoint &point)
{
    if (point.fault.has_value() && point.fault->delay_seconds > 0.0) {
        std::this_thread::sleep_for(std::chrono::duration<double>(
            point.fault->delay_seconds));
    }
}

/** Inline session wrapping @p point's codec: the one-shot runner is
 * the degenerate single-session case of the serve API. */
SessionConfig
point_session_config(const BenchPoint &point, const CodecConfig &cfg)
{
    SessionConfig session;
    session.name = point.label();
    session.codec_config = cfg;
    return session;
}

}  // namespace

CodecConfig
BenchPoint::effective_config() const
{
    CodecConfig cfg = config.has_value()
                          ? *config
                          : benchmark_config(codec, resolution, simd);
    if (threads > 1)
        cfg.threads = threads;
    return cfg;
}

std::string
BenchPoint::label() const
{
    std::string out = codec_name(codec);
    out += '/';
    out += sequence_name(sequence);
    out += '/';
    out += resolution_info(resolution).name;
    out += '/';
    out += simd_level_name(simd);
    return out;
}

int
bench_frames_default()
{
    // Strict parse: "100x" was silently 100 under the old atoi reader;
    // now it is a warned-and-ignored configuration mistake.
    return env_positive_int("HDVB_FRAMES", 4);
}

StatusOr<EncodeRun>
run_encode(const BenchPoint &point, double deadline_seconds)
{
    const Deadline deadline = Deadline::after(deadline_seconds);
    const CodecConfig cfg = point.effective_config();
    StatusOr<std::unique_ptr<VideoEncoder>> encoder =
        make_encoder(point.codec, cfg);
    if (!encoder.is_ok())
        return encoder.status();
    const std::shared_ptr<CodecSession> session =
        CodecSession::open_inline_encode(std::move(encoder.value()),
                                         point_session_config(point, cfg));

    SyntheticSource source(point.sequence, cfg.width, cfg.height);
    EncodeRun run;
    run.frames = point.frames;
    run.stream.codec = codec_name(point.codec);
    run.stream.width = cfg.width;
    run.stream.height = cfg.height;
    run.stream.fps_num = cfg.fps_num;
    run.stream.fps_den = cfg.fps_den;

    // submit() on an inline session runs the codec synchronously on
    // this thread, so the timer brackets exactly the same codec work as
    // the pre-session runner did and fps stays paper-comparable.
    WallTimer timer;
    for (int i = 0; i < point.frames; ++i) {
        inject_frame_delay(point);
        if (deadline.expired())
            return Status::deadline_exceeded("encode of " +
                                             point.label());
        Frame frame = source.next();  // untimed generation
        timer.start();
        const StatusOr<Ticket> ticket = session->submit(std::move(frame));
        timer.stop();
        if (!ticket.is_ok())
            return ticket.status();
    }
    timer.start();
    const Status status = session->close();  // flushes the lookahead
    timer.stop();
    if (!status.is_ok())
        return status;
    session->poll(&run.stream.packets);
    run.seconds = timer.seconds();
    run.pool = session->codec_stats().pool;
    return run;
}

StatusOr<DecodeRun>
run_decode(const BenchPoint &point, const EncodedStream &stream,
           double deadline_seconds)
{
    const Deadline deadline = Deadline::after(deadline_seconds);
    const CodecConfig cfg = point.effective_config();
    StatusOr<std::unique_ptr<VideoDecoder>> decoder =
        make_decoder(point.codec, cfg);
    if (!decoder.is_ok())
        return decoder.status();
    const std::shared_ptr<CodecSession> session =
        CodecSession::open_inline_decode(std::move(decoder.value()),
                                         point_session_config(point, cfg));

    // Poll, score, and release output frames after every packet
    // (untimed) instead of holding the whole sequence: retaining every
    // frame would keep its plane buffers checked out of the decoder's
    // FramePool, turning a recycling steady state into one fresh
    // allocation per picture and poisoning the allocs_per_frame
    // report column.
    SyntheticSource source(point.sequence, cfg.width, cfg.height);
    PsnrAccumulator acc;
    int decoded = 0;
    std::vector<Frame> frames;
    const auto score_and_release = [&] {
        session->poll(&frames);
        for (const Frame &frame : frames) {
            const Frame ref = source.at(static_cast<int>(frame.poc()));
            acc.add(ref, frame);
        }
        decoded += static_cast<int>(frames.size());
        frames.clear();
    };

    WallTimer timer;
    for (const Packet &packet : stream.packets) {
        inject_frame_delay(point);
        if (deadline.expired())
            return Status::deadline_exceeded("decode of " +
                                             point.label());
        Packet copy = packet;  // untimed: sessions take ownership
        timer.start();
        const StatusOr<Ticket> ticket = session->submit(std::move(copy));
        timer.stop();
        if (!ticket.is_ok())
            return ticket.status();
        score_and_release();
    }
    timer.start();
    const Status status = session->close();  // drains the held anchor
    timer.stop();
    if (!status.is_ok())
        return status;
    score_and_release();

    DecodeRun run;
    run.frames = decoded;
    run.seconds = timer.seconds();
    run.stats = session->codec_stats().decode;
    run.pool = session->codec_stats().pool;
    run.psnr_y = acc.psnr_y();
    run.psnr_all = acc.psnr_all();
    return run;
}

}  // namespace hdvb
