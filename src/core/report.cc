#include "core/report.h"

#include <cstdio>

#include "common/check.h"

namespace hdvb {

TableWriter::TableWriter(std::vector<std::string> header)
{
    rows_.push_back(std::move(header));
}

void
TableWriter::add_row(std::vector<std::string> cells)
{
    HDVB_CHECK(cells.size() == rows_[0].size());
    rows_.push_back(std::move(cells));
}

std::string
TableWriter::fmt(double value, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
    return buf;
}

std::string
TableWriter::fmt(int value)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%d", value);
    return buf;
}

void
TableWriter::print() const
{
    std::vector<size_t> widths(rows_[0].size(), 0);
    for (const auto &row : rows_) {
        for (size_t i = 0; i < row.size(); ++i)
            widths[i] = std::max(widths[i], row[i].size());
    }
    for (size_t r = 0; r < rows_.size(); ++r) {
        std::string line;
        for (size_t i = 0; i < rows_[r].size(); ++i) {
            std::string cell = rows_[r][i];
            cell.resize(widths[i], ' ');
            line += cell;
            if (i + 1 < rows_[r].size())
                line += "  ";
        }
        std::printf("%s\n", line.c_str());
        if (r == 0) {
            std::string sep;
            for (size_t i = 0; i < widths.size(); ++i) {
                sep += std::string(widths[i], '-');
                if (i + 1 < widths.size())
                    sep += "  ";
            }
            std::printf("%s\n", sep.c_str());
        }
    }
}

void
print_banner(const std::string &title)
{
    std::printf("\n=== %s ===\n\n", title.c_str());
}

}  // namespace hdvb
