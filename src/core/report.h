/**
 * @file
 * Small fixed-width table printing helpers shared by the bench
 * binaries, so every reproduction artefact prints in the same style.
 */
#ifndef HDVB_CORE_REPORT_H
#define HDVB_CORE_REPORT_H

#include <string>
#include <vector>

namespace hdvb {

/** Accumulates rows of string cells and prints an aligned table. */
class TableWriter
{
  public:
    explicit TableWriter(std::vector<std::string> header);

    /** Add one row (must have as many cells as the header). */
    void add_row(std::vector<std::string> cells);

    /** Print to stdout with a separator under the header. */
    void print() const;

    /** Convenience cell formatters. */
    static std::string fmt(double value, int decimals);
    static std::string fmt(int value);

  private:
    std::vector<std::vector<std::string>> rows_;
};

/** Print a section banner ("=== title ==="). */
void print_banner(const std::string &title);

}  // namespace hdvb

#endif  // HDVB_CORE_REPORT_H
