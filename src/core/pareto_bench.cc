#include "core/pareto_bench.h"

#include <utility>

#include "common/stats.h"

namespace hdvb {

std::string
ParetoPointBench::label() const
{
    return std::string(codec_name(codec)) + "/approx" +
           std::to_string(approx) + "/" + simd_level_name(simd);
}

StatusOr<std::vector<ParetoPointBench>>
bench_pareto_codec(CodecId codec, Resolution res, SequenceId sequence,
                   SimdLevel simd, int frames, int repeats)
{
    if (frames < 1 || repeats < 1)
        return Status::invalid_argument(
            "bench_pareto_codec needs frames >= 1 and repeats >= 1");

    std::vector<ParetoPointBench> points;
    points.reserve(kApproxLevels);
    for (int approx = 0; approx < kApproxLevels; ++approx) {
        BenchPoint point;
        point.codec = codec;
        point.sequence = sequence;
        point.resolution = res;
        point.frames = frames;
        point.simd = simd;
        CodecConfig cfg = point.effective_config();
        cfg.approx = approx;
        point.config = cfg;

        ParetoPointBench bench;
        bench.codec = codec;
        bench.simd = simd;
        bench.approx = approx;
        bench.frames = frames;
        bench.repeats = repeats;

        // Warm-up (pools, page faults), then the timed repeats.
        std::vector<double> fps;
        EncodedStream stream;
        for (int run = 0; run < repeats + 1; ++run) {
            StatusOr<EncodeRun> result = run_encode(point);
            if (!result.is_ok())
                return result.status();
            if (run == 0)
                continue;
            fps.push_back(result.value().fps());
            if (run == repeats) {
                bench.bitrate_kbps = result.value().bitrate_kbps();
                stream = std::move(result.value().stream);
            }
        }
        const SampleSummary summary = summarize(std::move(fps));
        bench.fps = summary.median;
        bench.fps_cov = summary.cov;

        const StatusOr<DecodeRun> decoded = run_decode(point, stream);
        if (!decoded.is_ok())
            return decoded.status();
        bench.psnr_db = decoded.value().psnr_y;

        points.push_back(bench);
    }

    const ParetoPointBench &exact = points.front();
    for (ParetoPointBench &bench : points) {
        bench.speedup =
            exact.fps > 0.0 ? bench.fps / exact.fps : 0.0;
        bench.psnr_delta_db = bench.psnr_db - exact.psnr_db;
        bench.bitrate_delta_pct =
            exact.bitrate_kbps > 0.0
                ? 100.0 * (bench.bitrate_kbps / exact.bitrate_kbps -
                           1.0)
                : 0.0;
    }
    return points;
}

}  // namespace hdvb
