#include "core/perf_compare.h"

#include <algorithm>
#include <cmath>
#include <map>

namespace hdvb {

const char *
verdict_name(MetricVerdict verdict)
{
    switch (verdict) {
      case MetricVerdict::kImproved: return "improved";
      case MetricVerdict::kRegressed: return "regressed";
      case MetricVerdict::kWithinNoise: return "within-noise";
      case MetricVerdict::kMissing: return "missing";
      case MetricVerdict::kNew: return "new";
    }
    return "unknown";
}

namespace {

BenchProvenance
load_provenance(const JsonValue &doc)
{
    BenchProvenance prov;
    const JsonValue *block = doc.find("provenance");
    if (block == nullptr || !block->is_object())
        return prov;
    prov.present = true;
    prov.git_sha = block->get("git_sha").as_string();
    prov.cpu_model = block->get("cpu_model").as_string();
    prov.cores = static_cast<int>(block->get("cores").as_double());
    prov.simd = block->get("simd_detected").as_string();
    prov.build_type = block->get("build_type").as_string();
    prov.repeats = static_cast<int>(block->get("repeats").as_double());
    prov.smoke = block->get("smoke").as_bool();
    return prov;
}

void
add_metric(BenchFile *file, std::string name, double value, double cov,
           bool higher_is_better, double abs_floor = 0.0)
{
    BenchMetric metric;
    metric.name = std::move(name);
    metric.value = value;
    metric.cov = cov;
    metric.higher_is_better = higher_is_better;
    metric.abs_floor = abs_floor;
    file->metrics.push_back(std::move(metric));
}

/** The serve block: per-class latency percentiles (lower is better)
 * plus aggregate throughput. hdvb-bench/1 carries point values only;
 * /2 adds per-metric CoV fields next to each value. */
void
load_serve_metrics(const JsonValue &serve, BenchFile *file)
{
    static const char *const kPercentiles[] = {"p50_ms", "p95_ms",
                                               "p99_ms"};
    const JsonValue &classes = serve.get("classes");
    for (size_t i = 0; i < classes.size(); ++i) {
        const JsonValue &cls = classes.at(i);
        const std::string name = cls.get("class").as_string();
        if (name.empty())
            continue;
        for (const char *pct : kPercentiles) {
            const JsonValue *value = cls.find(pct);
            if (value == nullptr)
                continue;
            const double cov =
                cls.get(std::string(pct) + "_cov").as_double();
            add_metric(file, "serve/" + name + "/" + pct,
                       value->as_double(), cov,
                       /*higher_is_better=*/false);
        }
    }
    const JsonValue &aggregate = serve.get("aggregate");
    if (const JsonValue *fps = aggregate.find("fps")) {
        add_metric(file, "serve/aggregate_fps", fps->as_double(),
                   aggregate.get("fps_cov").as_double(),
                   /*higher_is_better=*/true);
    }
}

/** The kernels block: microbenchmark medians in ns, lower is better.
 * Identical shape in /1 and /2 except /2's per-entry "cov". */
void
load_kernel_metrics(const JsonValue &kernels, BenchFile *file)
{
    const JsonValue &medians = kernels.get("medians");
    for (size_t i = 0; i < medians.size(); ++i) {
        const JsonValue &entry = medians.at(i);
        const std::string name = entry.get("name").as_string();
        if (name.empty())
            continue;
        add_metric(file, "kernel_ns/" + name,
                   entry.get("median_ns").as_double(),
                   entry.get("cov").as_double(),
                   /*higher_is_better=*/false);
    }
}

/** The /2 codecs block: per-point encode/decode fps medians with CoV,
 * plus allocs/frame gated on an absolute floor (it is ~0 in steady
 * state, so a relative threshold would be meaningless). */
void
load_codec_metrics(const JsonValue &codecs, BenchFile *file)
{
    constexpr double kAllocsPerFrameFloor = 0.5;
    const JsonValue &points = codecs.get("points");
    for (size_t i = 0; i < points.size(); ++i) {
        const JsonValue &point = points.at(i);
        const std::string label = point.get("label").as_string();
        if (label.empty())
            continue;
        if (const JsonValue *fps = point.find("encode_fps_median")) {
            add_metric(file, "codec/" + label + "/encode_fps",
                       fps->as_double(),
                       point.get("encode_fps_cov").as_double(),
                       /*higher_is_better=*/true);
        }
        if (const JsonValue *fps = point.find("decode_fps_median")) {
            add_metric(file, "codec/" + label + "/decode_fps",
                       fps->as_double(),
                       point.get("decode_fps_cov").as_double(),
                       /*higher_is_better=*/true);
        }
        if (const JsonValue *allocs = point.find("allocs_per_frame")) {
            add_metric(file, "codec/" + label + "/allocs_per_frame",
                       allocs->as_double(), /*cov=*/0.0,
                       /*higher_is_better=*/false,
                       kAllocsPerFrameFloor);
        }
    }
}

/** The transcode block (hdvb-transcode/1): per codec pair, the
 * analysis-reuse transcode fps and the full re-encode oracle fps, plus
 * the PSNR cost of reuse. psnr_delta_db is ~0 when hints are good, so
 * it is gated on an absolute floor like allocs_per_frame. */
void
load_transcode_metrics(const JsonValue &transcode, BenchFile *file)
{
    constexpr double kPsnrDeltaFloorDb = 0.25;
    const JsonValue &pairs = transcode.get("pairs");
    for (size_t i = 0; i < pairs.size(); ++i) {
        const JsonValue &pair = pairs.at(i);
        const std::string name = pair.get("pair").as_string();
        if (name.empty())
            continue;
        if (const JsonValue *fps = pair.find("transcode_fps")) {
            add_metric(file, "transcode/" + name + "/transcode_fps",
                       fps->as_double(),
                       pair.get("transcode_fps_cov").as_double(),
                       /*higher_is_better=*/true);
        }
        if (const JsonValue *fps = pair.find("full_fps")) {
            add_metric(file, "transcode/" + name + "/full_fps",
                       fps->as_double(),
                       pair.get("full_fps_cov").as_double(),
                       /*higher_is_better=*/true);
        }
        if (const JsonValue *delta = pair.find("psnr_delta_db")) {
            add_metric(file, "transcode/" + name + "/psnr_delta_db",
                       delta->as_double(), /*cov=*/0.0,
                       /*higher_is_better=*/true, kPsnrDeltaFloorDb);
        }
    }
}

/** The pareto block (hdvb-pareto/1): per (codec, approx level, SIMD
 * tier) point, the encode fps and the PSNR cost of the approximation
 * against level 0. psnr_delta_db is ~0 at the low levels, so it is
 * gated on the same absolute floor as the transcode quality delta. */
void
load_pareto_metrics(const JsonValue &pareto, BenchFile *file)
{
    constexpr double kPsnrDeltaFloorDb = 0.25;
    const JsonValue &points = pareto.get("points");
    for (size_t i = 0; i < points.size(); ++i) {
        const JsonValue &point = points.at(i);
        const std::string label = point.get("label").as_string();
        if (label.empty())
            continue;
        if (const JsonValue *fps = point.find("fps")) {
            add_metric(file, "pareto/" + label + "/fps",
                       fps->as_double(),
                       point.get("fps_cov").as_double(),
                       /*higher_is_better=*/true);
        }
        // Level 0 is the reference: its delta is 0 by construction,
        // so only the approximated points carry a quality metric.
        const int approx =
            static_cast<int>(point.get("approx").as_double());
        if (const JsonValue *delta = point.find("psnr_delta_db");
            delta != nullptr && approx >= 1) {
            add_metric(file, "pareto/" + label + "/psnr_delta_db",
                       delta->as_double(), /*cov=*/0.0,
                       /*higher_is_better=*/true, kPsnrDeltaFloorDb);
        }
    }
}

}  // namespace

StatusOr<BenchFile>
load_bench_file(const std::string &path)
{
    StatusOr<JsonValue> parsed = parse_json_file(path);
    if (!parsed.is_ok())
        return parsed.status();
    const JsonValue &doc = parsed.value();

    BenchFile file;
    file.path = path;
    file.schema = doc.get("schema").as_string();
    file.pr = static_cast<int>(doc.get("pr").as_double());
    if (file.schema != "hdvb-bench/1" &&
        file.schema != "hdvb-bench/2") {
        return Status::invalid_argument(
            path + ": unsupported BENCH schema \"" + file.schema +
            "\" (expected hdvb-bench/1 or hdvb-bench/2)");
    }
    file.provenance = load_provenance(doc);
    if (const JsonValue *codecs = doc.find("codecs"))
        load_codec_metrics(*codecs, &file);
    if (const JsonValue *kernels = doc.find("kernels"))
        load_kernel_metrics(*kernels, &file);
    if (const JsonValue *serve = doc.find("serve"))
        load_serve_metrics(*serve, &file);
    if (const JsonValue *transcode = doc.find("transcode"))
        load_transcode_metrics(*transcode, &file);
    if (const JsonValue *pareto = doc.find("pareto"))
        load_pareto_metrics(*pareto, &file);
    if (file.metrics.empty()) {
        return Status::invalid_argument(
            path + ": no comparable metrics found");
    }
    return file;
}

MetricComparison
classify_metric(const BenchMetric &older, const BenchMetric &newer,
                const CompareOptions &options)
{
    MetricComparison row;
    row.name = older.name;
    row.old_value = older.value;
    row.new_value = newer.value;
    row.higher_is_better = older.higher_is_better;
    // The noise gate: the wider of the two runs' recorded CoVs scaled
    // by sigma, floored — jitter must not read as a verdict.
    row.threshold_pct =
        std::max(options.floor_pct,
                 options.sigma * 100.0 * std::max(older.cov, newer.cov));
    row.delta_pct = older.value != 0.0
                        ? (newer.value - older.value) / older.value *
                              100.0
                        : 0.0;

    if (older.abs_floor > 0.0) {
        // Absolute gating for near-zero metrics.
        const double delta = newer.value - older.value;
        if (std::fabs(delta) <= older.abs_floor) {
            row.verdict = MetricVerdict::kWithinNoise;
        } else {
            const bool better = older.higher_is_better ? delta > 0.0
                                                       : delta < 0.0;
            row.verdict = better ? MetricVerdict::kImproved
                                 : MetricVerdict::kRegressed;
        }
        return row;
    }

    if (older.value <= 0.0 || newer.value <= 0.0) {
        // A zero fps/latency/ns reading is a broken measurement, not
        // a comparison; never turn it into a verdict.
        row.verdict = MetricVerdict::kWithinNoise;
        return row;
    }

    const double improvement_pct = older.higher_is_better
                                       ? row.delta_pct
                                       : -row.delta_pct;
    if (improvement_pct > row.threshold_pct)
        row.verdict = MetricVerdict::kImproved;
    else if (improvement_pct < -row.threshold_pct)
        row.verdict = MetricVerdict::kRegressed;
    else
        row.verdict = MetricVerdict::kWithinNoise;
    return row;
}

CompareReport
compare_bench(const BenchFile &older, const BenchFile &newer,
              const CompareOptions &options)
{
    CompareReport report;

    if (older.schema != newer.schema) {
        report.environment_warnings.push_back(
            "schema mismatch: " + older.path + " is " + older.schema +
            ", " + newer.path + " is " + newer.schema +
            " — only shared metrics are compared");
    }
    const BenchProvenance &po = older.provenance;
    const BenchProvenance &pn = newer.provenance;
    if (!po.present || !pn.present) {
        report.environment_warnings.push_back(
            std::string(!po.present ? older.path : newer.path) +
            " carries no provenance block: the run environment is "
            "unknown, so differences may be machine changes rather "
            "than code changes");
    } else {
        if (po.cpu_model != pn.cpu_model) {
            report.environment_warnings.push_back(
                "CPU model differs: \"" + po.cpu_model + "\" vs \"" +
                pn.cpu_model + "\"");
        }
        if (po.cores != pn.cores) {
            report.environment_warnings.push_back(
                "core count differs: " + std::to_string(po.cores) +
                " vs " + std::to_string(pn.cores));
        }
        if (po.simd != pn.simd) {
            report.environment_warnings.push_back(
                "detected SIMD level differs: " + po.simd + " vs " +
                pn.simd);
        }
        if (po.build_type != pn.build_type) {
            report.environment_warnings.push_back(
                "build type differs: " + po.build_type + " vs " +
                pn.build_type);
        }
        if (po.smoke != pn.smoke) {
            report.environment_warnings.push_back(
                "smoke mode differs: one file was produced by a "
                "reduced-size run");
        }
    }

    std::map<std::string, const BenchMetric *> new_by_name;
    for (const BenchMetric &metric : newer.metrics)
        new_by_name.emplace(metric.name, &metric);

    for (const BenchMetric &old_metric : older.metrics) {
        const auto it = new_by_name.find(old_metric.name);
        if (it == new_by_name.end()) {
            MetricComparison row;
            row.name = old_metric.name;
            row.verdict = MetricVerdict::kMissing;
            row.old_value = old_metric.value;
            row.higher_is_better = old_metric.higher_is_better;
            report.rows.push_back(std::move(row));
            ++report.missing;
            continue;
        }
        MetricComparison row =
            classify_metric(old_metric, *it->second, options);
        switch (row.verdict) {
          case MetricVerdict::kImproved: ++report.improved; break;
          case MetricVerdict::kRegressed: ++report.regressed; break;
          default: ++report.within_noise; break;
        }
        report.rows.push_back(std::move(row));
        new_by_name.erase(it);
    }
    for (const BenchMetric &metric : newer.metrics) {
        if (new_by_name.find(metric.name) == new_by_name.end())
            continue;  // matched above
        MetricComparison row;
        row.name = metric.name;
        row.verdict = MetricVerdict::kNew;
        row.new_value = metric.value;
        row.higher_is_better = metric.higher_is_better;
        report.rows.push_back(std::move(row));
        ++report.added;
    }
    return report;
}

int
doctor_bench_fps(JsonValue *doc, double scale)
{
    int scaled = 0;
    if (doc->is_object()) {
        for (auto &[name, member] : doc->mutable_members()) {
            // Every throughput key ("fps", "fps_median",
            // "encode_fps_median", ...) but never a noise estimate
            // ("fps_cov") — the gate must fire on the value, not
            // because the doctored copy claims different jitter.
            const bool fps_key =
                name.find("fps") != std::string::npos &&
                (name.size() < 4 ||
                 name.compare(name.size() - 4, 4, "_cov") != 0);
            if (member.is_number() && fps_key) {
                member.set_number(member.as_double() * scale);
                ++scaled;
            } else {
                scaled += doctor_bench_fps(&member, scale);
            }
        }
    } else if (doc->is_array()) {
        for (JsonValue &element : doc->mutable_array())
            scaled += doctor_bench_fps(&element, scale);
    }
    return scaled;
}

}  // namespace hdvb
