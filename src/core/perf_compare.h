/**
 * @file
 * The regression gate over the tracked perf trajectory: loads two
 * `BENCH_<n>.json` files (schema hdvb-bench/1 — the PR-7 hand-rolled
 * baseline — or hdvb-bench/2, emitted by bench/regression_sweep),
 * flattens each into named metrics with a recorded noise estimate,
 * and classifies every metric as improved / regressed / within-noise.
 *
 * The noise model is the point of the subsystem: a metric's
 * regression threshold is max(floor_pct, sigma * CoV * 100) — the
 * coefficient of variation measured by the repeat sweeps, widened by
 * a floor for metrics whose CoV is unknown (hdvb-bench/1) or
 * implausibly tight. Per Poss, "machines are benchmarked by code":
 * the comparator is code, so a perf claim is mechanically checkable.
 *
 * bench/bench_compare is the CLI wrapper; the logic lives here so the
 * verdict paths (improved / regressed / within-noise / missing-metric
 * / schema-mismatch) are unit-testable without subprocesses.
 */
#ifndef HDVB_CORE_PERF_COMPARE_H
#define HDVB_CORE_PERF_COMPARE_H

#include <string>
#include <vector>

#include "common/json_reader.h"
#include "common/status.h"

namespace hdvb {

/** Run environment recorded by regression_sweep; a comparison across
 * differing environments is noise, not signal, and warns loudly. */
struct BenchProvenance {
    bool present = false;  ///< hdvb-bench/1 files carry none
    std::string git_sha;
    std::string cpu_model;
    int cores = 0;
    std::string simd;        ///< detected SIMD level
    std::string build_type;  ///< "debug" / "release"
    int repeats = 0;         ///< sweep repetitions behind the CoVs
    bool smoke = false;
};

/** One flattened, comparable measurement. */
struct BenchMetric {
    std::string name;  ///< e.g. "codec/h264/576p25/encode_fps"
    double value = 0.0;
    /** Recorded run-to-run coefficient of variation (0 when the file
     * predates CoV reporting — the floor takes over). */
    double cov = 0.0;
    bool higher_is_better = true;
    /** When > 0, gate on the absolute delta instead of the relative
     * one — for near-zero-valued metrics like allocs/frame where a
     * relative threshold is meaningless. */
    double abs_floor = 0.0;
};

/** One parsed BENCH file, flattened for comparison. */
struct BenchFile {
    std::string path;
    std::string schema;
    int pr = 0;
    BenchProvenance provenance;
    std::vector<BenchMetric> metrics;
};

/** Load and flatten @p path. Unknown or missing schema is an error
 * (the comparator refuses to guess what it is comparing). */
StatusOr<BenchFile> load_bench_file(const std::string &path);

enum class MetricVerdict {
    kImproved,
    kRegressed,
    kWithinNoise,
    kMissing,  ///< present in the old file only
    kNew,      ///< present in the new file only
};

const char *verdict_name(MetricVerdict verdict);

struct CompareOptions {
    /** Minimum threshold in percent — no measurement on a shared CI
     * box resolves finer than this, whatever its CoV claims. */
    double floor_pct = 2.0;
    /** Threshold widening per unit of CoV: threshold_pct =
     * max(floor_pct, sigma * 100 * max(old CoV, new CoV)). */
    double sigma = 3.0;
};

struct MetricComparison {
    std::string name;
    MetricVerdict verdict = MetricVerdict::kWithinNoise;
    double old_value = 0.0;
    double new_value = 0.0;
    /** Signed relative change of the raw value in percent (positive =
     * value went up, whatever the metric's good direction). */
    double delta_pct = 0.0;
    double threshold_pct = 0.0;
    bool higher_is_better = true;
};

/**
 * Classify one metric pair. @p older and @p newer must be the same
 * metric (same name/direction); direction metadata is taken from
 * @p older. Exposed for unit tests.
 */
MetricComparison classify_metric(const BenchMetric &older,
                                 const BenchMetric &newer,
                                 const CompareOptions &options);

struct CompareReport {
    /** Old-file metric order, then metrics only the new file has. */
    std::vector<MetricComparison> rows;
    int improved = 0;
    int regressed = 0;
    int within_noise = 0;
    int missing = 0;
    int added = 0;
    /** Loud warnings: schema difference, absent provenance, CPU /
     * core-count / SIMD / build-type mismatch. A non-empty list means
     * the numbers may reflect an environment change, not the code. */
    std::vector<std::string> environment_warnings;

    bool has_regressions() const { return regressed > 0; }
};

/** Compare two loaded BENCH files (old -> new). */
CompareReport compare_bench(const BenchFile &older,
                            const BenchFile &newer,
                            const CompareOptions &options = {});

/**
 * Doctor a parsed BENCH document in place for gate self-tests: every
 * number under an "fps" or "fps_median" key is scaled by @p scale
 * (0.8 = a 20% throughput regression everywhere). Returns how many
 * values were scaled.
 */
int doctor_bench_fps(JsonValue *doc, double scale);

}  // namespace hdvb

#endif  // HDVB_CORE_PERF_COMPARE_H
