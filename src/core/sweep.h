/**
 * @file
 * The parallel sweep engine. A sweep is the benchmark's outer product —
 * codec x sequence x resolution x SIMD (Figure 1, Table V) — and its
 * points are independent measurements, so SweepRunner distributes them
 * across a thread pool. By default each point's *timed region* stays
 * single-threaded (one encoder or decoder instance per point, exactly
 * as in a serial run), so per-point fps is unchanged and stays
 * comparable to the paper's single-core numbers; only the grid's
 * wall-clock time shrinks. A point may opt into intra-codec
 * parallelism via BenchPoint::threads — the codec then runs its
 * MB-row bands on a private pool of that size (bitstreams stay
 * bit-exact), which is how the scaling bench measures fps versus
 * thread count.
 *
 * Results come back in the order of the input point list regardless of
 * completion order, so table output is deterministic, and the engine
 * records per-point observability (wall time, worker id, peak-RSS
 * growth over the sweep) which it can emit as a machine-readable JSON
 * report (schema hdvb-sweep/6: hdvb-sweep/4 added the machine's
 * detected and effective SIMD levels at the top level, next to the
 * per-point "simd" field, so a report is attributable to silicon; /5
 * added the per-point "allocs_per_frame" column — frame-pool heap
 * allocations over frames processed, ~0 in steady state with pooling
 * on — so allocation regressions on the hot path show up in reports;
 * /6 adds repeat-based noise quantification: SweepOptions::repeats
 * re-measures each point after a warm-up run, and every point carries
 * "repeats" plus per-direction "fps_median" and "fps_cov" — the
 * coefficient of variation the BENCH comparator turns into a
 * regression threshold, so a consumer can tell a real slowdown from
 * run-to-run jitter).
 */
#ifndef HDVB_CORE_SWEEP_H
#define HDVB_CORE_SWEEP_H

#include <string>
#include <vector>

#include "common/status.h"
#include "core/runner.h"
#include "fault/retry.h"

namespace hdvb {

/** What SweepRunner measured for one BenchPoint. */
struct SweepResult {
    BenchPoint point;

    // ---- fault isolation ----
    /** Outcome of the point's final attempt. Non-OK means the
     * measurement fields below are unreliable; the rest of the sweep
     * ran to completion regardless. */
    Status status;
    /** Attempts consumed (1 on first-try success; up to
     * SweepOptions::retry.max_attempts). */
    int attempts = 0;
    /** True when the final attempt hit the per-point timeout. */
    bool timed_out = false;

    // ---- encode measurement ----
    /** False when the stream came from the cache (no encode timing). */
    bool encode_measured = false;
    int encode_frames = 0;
    double encode_seconds = 0.0;

    // ---- stream properties (valid in either case) ----
    u64 stream_bits = 0;
    bool from_cache = false;

    // ---- decode measurement (SweepOptions::measure_decode) ----
    bool decode_measured = false;
    int decode_frames = 0;
    double decode_seconds = 0.0;
    double psnr_y = 0.0;
    double psnr_all = 0.0;

    /** Error-resilience counters from the decoder (all zero unless the
     * point decoded a corrupted stream with error_resilience on). */
    DecodeStats decode_stats;

    /** Frame-pool heap allocations (pool misses) summed over the
     * point's encoder and decoder. With pooling on this is the warm-up
     * cost only; it keeps growing per picture when pooling is off. */
    s64 pool_allocs = 0;

    // ---- repeat / noise measurement (SweepOptions::repeats) ----
    /** Timed repetitions actually measured (1 without repeats). The
     * scalar measurement fields above are the *last* repetition's;
     * the samples below hold every repetition's fps. */
    int repeats = 1;
    /** Per-repetition encode fps (empty when the encode was skipped). */
    std::vector<double> encode_fps_samples;
    /** Per-repetition decode fps (empty without measure_decode). */
    std::vector<double> decode_fps_samples;

    /** Median over encode_fps_samples; falls back to the single-run
     * encode_fps() when no samples were collected. */
    double encode_fps_median() const;
    /** Coefficient of variation over encode_fps_samples (0 for fewer
     * than two samples — no spread information). */
    double encode_fps_cov() const;
    double decode_fps_median() const;
    double decode_fps_cov() const;

    /** The encoded stream (only with SweepOptions::keep_streams). */
    EncodedStream stream;

    // ---- observability ----
    double wall_seconds = 0.0;  ///< whole point, untimed phases included
    int worker = -1;            ///< pool worker id that ran the point
    /** Growth of the process peak RSS between the start of the sweep
     * and this point's completion, in kB. ru_maxrss is a
     * process-lifetime high-water mark, so the raw value mostly
     * reflects whatever ran before the sweep; the delta against the
     * run() baseline is what a point can actually be charged with.
     * Monotone over the sweep's completion order, and 0 for points
     * that fit inside the footprint already reached. */
    long peak_rss_delta_kb = 0;

    double
    encode_fps() const
    {
        return encode_seconds > 0 ? encode_frames / encode_seconds : 0.0;
    }

    double
    decode_fps() const
    {
        return decode_seconds > 0 ? decode_frames / decode_seconds : 0.0;
    }

    /** Pool misses per frame processed (encode + decode sides). */
    double
    allocs_per_frame() const
    {
        const int frames = encode_frames + decode_frames;
        return frames > 0 ? static_cast<double>(pool_allocs) / frames
                          : 0.0;
    }

    /** kbit/s at the benchmark's 25 fps playback rate. */
    double
    bitrate_kbps() const
    {
        return point.frames > 0 ? static_cast<double>(stream_bits) *
                                      25.0 / point.frames / 1000.0
                                : 0.0;
    }
};

/** Sweep behaviour; the defaults measure encode+decode, uncached. */
struct SweepOptions {
    /** Worker threads; 0 means default_job_count() (HDVB_JOBS env). */
    int jobs = 0;

    /** Time the encode. When false and a cached stream exists, the
     * encode is skipped entirely (decode-only benches). */
    bool measure_encode = true;

    /** Decode the stream, timing it and computing PSNR. */
    bool measure_decode = true;

    /** Retain each point's encoded stream in its SweepResult. */
    bool keep_streams = false;

    /** Directory for the .hdv stream cache shared between bench
     * binaries; empty disables caching. Points carrying a config
     * override never touch the cache. */
    std::string cache_dir;

    /** Path for the machine-readable JSON report; empty disables. The
     * report is written atomically (temp file + rename), so readers
     * never observe a half-written file. */
    std::string json_path;

    /** Per-point wall-clock budget in seconds, applied to the encode
     * and decode phases each; 0 disables. Checked cooperatively once
     * per frame, so a single frame that hangs inside a codec call is
     * not interruptible. */
    double point_timeout_seconds = 0.0;

    /** Timed measurement repetitions per point. 1 (the default) is
     * the historical single timed run with no warm-up. >= 2 runs the
     * point once untimed (warm-up: stream cache, frame pools, branch
     * predictors) and then @p repeats timed times; every timed run's
     * encode/decode fps enters the point's sample set, and the report
     * publishes the median and coefficient of variation alongside the
     * last run's full measurements. Failures abort the point's
     * remaining repetitions (each run still gets the retry policy
     * below). */
    int repeats = 1;

    /** Retry-with-backoff for failed points (shared fault-subsystem
     * policy; see fault/retry.h). Retries re-run the whole point from
     * scratch. transient_only is forced off: a bench point is a
     * measurement, so any failure — not just retryable codes — gets
     * its remaining attempts. */
    RetryPolicy retry{/*max_attempts=*/1,
                      /*initial_backoff_seconds=*/0.05,
                      /*max_backoff_seconds=*/1.0,
                      /*transient_only=*/false};
};

/**
 * Runs a list of BenchPoints across a thread pool and returns one
 * SweepResult per point, in input order.
 */
class SweepRunner
{
  public:
    explicit SweepRunner(SweepOptions options = {});

    /** Execute the sweep. A failing point — codec Status error,
     * uncaught exception, or per-point timeout — is recorded in its
     * SweepResult::status (after SweepOptions::retry.max_attempts
     * tries) and never takes down the rest of the grid. */
    std::vector<SweepResult> run(const std::vector<BenchPoint> &points);

    /** Wall-clock seconds of the last run() (the Figure-1 grid time
     * the parallel engine exists to shrink). */
    double last_wall_seconds() const { return last_wall_seconds_; }

  private:
    /** @p rss_baseline_kb is the peak RSS captured at the top of the
     * owning run() call — passed down rather than stored so a reused
     * runner can never measure one run's growth against another's
     * baseline. */
    SweepResult run_point(const BenchPoint &point, int worker,
                          long rss_baseline_kb) const;
    /** One complete measurement of @p point (encode + decode, with
     * the retry policy applied); run_point invokes it once per
     * warm-up/timed repetition. */
    SweepResult measure_point(const BenchPoint &point, int worker) const;
    Status attempt_point(const BenchPoint &point,
                         SweepResult *result) const;
    Status write_report(const std::vector<SweepResult> &results) const;

    SweepOptions options_;
    double last_wall_seconds_ = 0.0;
};

/**
 * The benchmark's full measurement grid in canonical order: resolution
 * (outer) -> sequence -> codec (inner). The order is part of the
 * contract — Table V consumes it row by row.
 */
std::vector<BenchPoint> sweep_grid(int frames, SimdLevel simd);

/** Grid restricted to explicit axis values, same nesting order. */
std::vector<BenchPoint>
sweep_grid(const std::vector<CodecId> &codecs,
           const std::vector<SequenceId> &sequences,
           const std::vector<Resolution> &resolutions, int frames,
           SimdLevel simd);

/** Cache file path for a point's encoded stream (shared layout across
 * the bench binaries; independent of SimdLevel — kernels are
 * bit-exact, so one entry serves scalar and SIMD runs alike). */
std::string stream_cache_path(const std::string &cache_dir,
                              const BenchPoint &point);

}  // namespace hdvb

#endif  // HDVB_CORE_SWEEP_H
