/**
 * @file
 * Benchmark runner: executes one (codec, sequence, resolution, SIMD)
 * point and measures what the paper measures — encode/decode frames per
 * second (MPlayer `-benchmark` style: codec calls only, no generation,
 * no display) and rate-distortion (PSNR, kbit/s).
 */
#ifndef HDVB_CORE_RUNNER_H
#define HDVB_CORE_RUNNER_H

#include <optional>
#include <string>

#include "container/container.h"
#include "core/benchmark.h"
#include "fault/fault.h"
#include "metrics/psnr.h"

namespace hdvb {

/** One measurement point. */
struct BenchPoint {
    CodecId codec = CodecId::kMpeg2;
    SequenceId sequence = SequenceId::kBlueSky;
    Resolution resolution = Resolution::k576p25;
    int frames = 4;
    SimdLevel simd = best_simd_level();

    /** Intra-codec worker threads for this point (CodecConfig::threads).
     * 1 keeps the timed region single-threaded and paper-comparable;
     * larger values exercise the codecs' band-parallel paths (the
     * bitstream and reconstruction stay bit-exact either way). */
    int threads = 1;

    /** When set, replaces the Table IV configuration for this point
     * (ablations, reduced-size test runs). */
    std::optional<CodecConfig> config;

    /** When set, the sweep engine corrupts a *copy* of the encoded
     * stream with this plan before the decode measurement (the stream
     * cache always holds clean streams), and FaultPlan::delay_seconds
     * is injected per frame (untimed) to exercise timeouts. */
    std::optional<FaultPlan> fault;

    /** The configuration the point actually runs with: the override if
     * present, otherwise benchmark_config(codec, resolution, simd);
     * BenchPoint::threads is applied on top when it is > 1. */
    CodecConfig effective_config() const;

    /** Stable identifier, e.g. "h264/blue_sky/1088p25/sse2" — the one
     * spelling of a point used in tables, logs and JSON reports. */
    std::string label() const;
};

/** Frames per point: HDVB_FRAMES env var, default 4 — one full
 * I-P-B-B group (paper: 100); raise it for paper-scale runs. */
int bench_frames_default();

/** Encode measurement. */
struct EncodeRun {
    EncodedStream stream;
    int frames = 0;
    double seconds = 0.0;

    /** Encoder frame-pool counters at the end of the run (all zero
     * when CodecConfig::frame_pool is off). */
    FramePoolStats pool;

    double fps() const { return seconds > 0 ? frames / seconds : 0.0; }

    /** kbit/s at the benchmark's 25 fps playback rate. */
    double
    bitrate_kbps() const
    {
        return frames > 0 ? static_cast<double>(stream.total_bits()) *
                                25.0 / frames / 1000.0
                          : 0.0;
    }
};

/**
 * Encode @p point.frames synthetic frames with the point's effective
 * configuration. Codec failures come back as a Status instead of
 * aborting, so a sweep can survive a bad point. A non-zero
 * @p deadline_seconds bounds the call's wall-clock time, checked
 * cooperatively once per frame (Status::deadline_exceeded; a single
 * frame that hangs inside the codec cannot be interrupted).
 */
StatusOr<EncodeRun> run_encode(const BenchPoint &point,
                               double deadline_seconds = 0.0);

/** Decode measurement (plus quality versus the original source). */
struct DecodeRun {
    int frames = 0;
    double seconds = 0.0;
    double psnr_y = 0.0;
    double psnr_all = 0.0;

    /** Error-resilience counters reported by the decoder (all zero for
     * clean streams or when error_resilience is off). */
    DecodeStats stats;

    /** Decoder frame-pool counters at the end of the run. */
    FramePoolStats pool;

    double fps() const { return seconds > 0 ? frames / seconds : 0.0; }
};

/**
 * Decode @p stream (as produced by run_encode for the same point) and
 * measure decode fps and PSNR against the regenerated source frames.
 * Same error and deadline contract as run_encode.
 */
StatusOr<DecodeRun> run_decode(const BenchPoint &point,
                               const EncodedStream &stream,
                               double deadline_seconds = 0.0);

}  // namespace hdvb

#endif  // HDVB_CORE_RUNNER_H
