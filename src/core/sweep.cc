#include "core/sweep.h"

#include <cstdio>
#include <sys/resource.h>
#include <sys/stat.h>

#include "common/check.h"
#include "common/json_writer.h"
#include "common/log.h"
#include "common/thread_pool.h"
#include "metrics/timer.h"

namespace hdvb {

namespace {

long
current_peak_rss_kb()
{
    struct rusage usage = {};
    if (getrusage(RUSAGE_SELF, &usage) != 0)
        return 0;
    return usage.ru_maxrss;  // kilobytes on Linux
}

void
ensure_parent_dir(const std::string &path)
{
    const size_t slash = path.rfind('/');
    if (slash != std::string::npos && slash > 0)
        ::mkdir(path.substr(0, slash).c_str(), 0755);
}

}  // namespace

std::string
stream_cache_path(const std::string &cache_dir, const BenchPoint &point)
{
    char buf[256];
    std::snprintf(buf, sizeof(buf), "%s/%s_%s_%s_%d.hdv",
                  cache_dir.c_str(), codec_name(point.codec),
                  sequence_name(point.sequence),
                  resolution_info(point.resolution).name, point.frames);
    return buf;
}

SweepRunner::SweepRunner(SweepOptions options)
    : options_(std::move(options))
{
}

SweepResult
SweepRunner::run_point(const BenchPoint &point, int worker) const
{
    WallTimer wall;
    wall.start();

    SweepResult result;
    result.point = point;
    result.worker = worker;

    // Config overrides make a point's stream incomparable with the
    // canonical Table IV one, so such points bypass the cache.
    const bool cacheable =
        !options_.cache_dir.empty() && !point.config.has_value();
    const std::string cache_path =
        cacheable ? stream_cache_path(options_.cache_dir, point) : "";

    EncodedStream stream;
    bool have_stream = false;
    if (cacheable && !options_.measure_encode &&
        read_stream_file(cache_path, &stream).is_ok() &&
        stream.codec == codec_name(point.codec)) {
        result.from_cache = true;
        have_stream = true;
    }
    if (!have_stream) {
        EncodeRun enc = run_encode(point);
        result.encode_measured = options_.measure_encode;
        result.encode_frames = enc.frames;
        result.encode_seconds = enc.seconds;
        stream = std::move(enc.stream);
        if (cacheable) {
            ::mkdir(options_.cache_dir.c_str(), 0755);
            (void)write_stream_file(cache_path, stream);
        }
    }
    result.stream_bits = stream.total_bits();

    if (options_.measure_decode) {
        const DecodeRun dec = run_decode(point, stream);
        result.decode_measured = true;
        result.decode_frames = dec.frames;
        result.decode_seconds = dec.seconds;
        result.psnr_y = dec.psnr_y;
        result.psnr_all = dec.psnr_all;
    }

    if (options_.keep_streams)
        result.stream = std::move(stream);

    wall.stop();
    result.wall_seconds = wall.seconds();
    result.peak_rss_kb = current_peak_rss_kb();
    HDVB_LOG(kDebug) << "sweep " << point.label() << " worker "
                     << worker << " wall " << result.wall_seconds
                     << "s";
    return result;
}

std::vector<SweepResult>
SweepRunner::run(const std::vector<BenchPoint> &points)
{
    const int jobs =
        options_.jobs > 0 ? options_.jobs : default_job_count();

    std::vector<SweepResult> results(points.size());
    WallTimer wall;
    wall.start();
    {
        ThreadPool pool(jobs);
        // Indexed writes into the preallocated vector keep results in
        // input order no matter which worker finishes when.
        parallel_for(pool, static_cast<int>(points.size()),
                     [&](int i, int worker) {
                         results[i] = run_point(points[i], worker);
                     });
    }
    wall.stop();
    last_wall_seconds_ = wall.seconds();

    if (!options_.json_path.empty()) {
        const Status status = write_report(results);
        if (!status.is_ok())
            HDVB_LOG(kWarn) << "sweep report not written: "
                            << status.to_string();
    }
    return results;
}

Status
SweepRunner::write_report(const std::vector<SweepResult> &results) const
{
    JsonWriter json;
    json.begin_object();
    json.field("schema", "hdvb-sweep/1");
    json.field("jobs", options_.jobs > 0 ? options_.jobs
                                         : default_job_count());
    json.field("wall_seconds", last_wall_seconds_);
    json.key("points");
    json.begin_array();
    for (const SweepResult &r : results) {
        json.begin_object();
        json.field("label", r.point.label());
        json.field("codec", codec_name(r.point.codec));
        json.field("sequence", sequence_name(r.point.sequence));
        json.field("resolution", resolution_info(r.point.resolution).name);
        json.field("simd", simd_level_name(r.point.simd));
        json.field("frames", r.point.frames);
        json.field("config_override", r.point.config.has_value());
        json.field("stream_bits", r.stream_bits);
        json.field("bitrate_kbps", r.bitrate_kbps());
        json.field("from_cache", r.from_cache);
        if (r.encode_measured) {
            json.key("encode");
            json.begin_object();
            json.field("frames", r.encode_frames);
            json.field("seconds", r.encode_seconds);
            json.field("fps", r.encode_fps());
            json.end_object();
        }
        if (r.decode_measured) {
            json.key("decode");
            json.begin_object();
            json.field("frames", r.decode_frames);
            json.field("seconds", r.decode_seconds);
            json.field("fps", r.decode_fps());
            json.field("psnr_y", r.psnr_y);
            json.field("psnr_all", r.psnr_all);
            json.end_object();
        }
        json.field("wall_seconds", r.wall_seconds);
        json.field("worker", r.worker);
        json.field("peak_rss_kb", static_cast<s64>(r.peak_rss_kb));
        json.end_object();
    }
    json.end_array();
    json.end_object();

    ensure_parent_dir(options_.json_path);
    std::FILE *f = std::fopen(options_.json_path.c_str(), "w");
    if (f == nullptr)
        return Status::invalid_argument("cannot open " +
                                        options_.json_path);
    const std::string &text = json.str();
    const bool ok =
        std::fwrite(text.data(), 1, text.size(), f) == text.size() &&
        std::fputc('\n', f) != EOF;
    std::fclose(f);
    if (!ok)
        return Status::internal("short write to " + options_.json_path);
    return Status::ok();
}

std::vector<BenchPoint>
sweep_grid(int frames, SimdLevel simd)
{
    return sweep_grid(
        {kAllCodecs, kAllCodecs + kCodecCount},
        {kAllSequences, kAllSequences + kSequenceCount},
        {kAllResolutions, kAllResolutions + kResolutionCount}, frames,
        simd);
}

std::vector<BenchPoint>
sweep_grid(const std::vector<CodecId> &codecs,
           const std::vector<SequenceId> &sequences,
           const std::vector<Resolution> &resolutions, int frames,
           SimdLevel simd)
{
    std::vector<BenchPoint> points;
    points.reserve(codecs.size() * sequences.size() *
                   resolutions.size());
    for (Resolution res : resolutions) {
        for (SequenceId seq : sequences) {
            for (CodecId codec : codecs) {
                BenchPoint point;
                point.codec = codec;
                point.sequence = seq;
                point.resolution = res;
                point.frames = frames;
                point.simd = simd;
                points.push_back(point);
            }
        }
    }
    return points;
}

}  // namespace hdvb
