#include "core/sweep.h"

#include <algorithm>
#include <cstdio>
#include <exception>
#include <sys/resource.h>
#include <sys/stat.h>

#include "common/check.h"
#include "common/json_writer.h"
#include "common/log.h"
#include "common/stats.h"
#include "common/thread_pool.h"
#include "metrics/timer.h"

namespace hdvb {

namespace {

long
current_peak_rss_kb()
{
    struct rusage usage = {};
    if (getrusage(RUSAGE_SELF, &usage) != 0)
        return 0;
    return usage.ru_maxrss;  // kilobytes on Linux
}

void
ensure_parent_dir(const std::string &path)
{
    const size_t slash = path.rfind('/');
    if (slash != std::string::npos && slash > 0)
        ::mkdir(path.substr(0, slash).c_str(), 0755);
}

}  // namespace

std::string
stream_cache_path(const std::string &cache_dir, const BenchPoint &point)
{
    char buf[256];
    std::snprintf(buf, sizeof(buf), "%s/%s_%s_%s_%d.hdv",
                  cache_dir.c_str(), codec_name(point.codec),
                  sequence_name(point.sequence),
                  resolution_info(point.resolution).name, point.frames);
    return buf;
}

SweepRunner::SweepRunner(SweepOptions options)
    : options_(std::move(options))
{
}

double
SweepResult::encode_fps_median() const
{
    return encode_fps_samples.empty()
               ? encode_fps()
               : summarize(encode_fps_samples).median;
}

double
SweepResult::encode_fps_cov() const
{
    return coefficient_of_variation(encode_fps_samples);
}

double
SweepResult::decode_fps_median() const
{
    return decode_fps_samples.empty()
               ? decode_fps()
               : summarize(decode_fps_samples).median;
}

double
SweepResult::decode_fps_cov() const
{
    return coefficient_of_variation(decode_fps_samples);
}

Status
SweepRunner::attempt_point(const BenchPoint &point,
                           SweepResult *result) const
{
    // Config overrides make a point's stream incomparable with the
    // canonical Table IV one, so such points bypass the cache.
    const bool cacheable =
        !options_.cache_dir.empty() && !point.config.has_value();
    const std::string cache_path =
        cacheable ? stream_cache_path(options_.cache_dir, point) : "";

    EncodedStream stream;
    bool have_stream = false;
    if (cacheable && !options_.measure_encode &&
        read_stream_file(cache_path, &stream).is_ok() &&
        stream.codec == codec_name(point.codec)) {
        result->from_cache = true;
        have_stream = true;
    }
    if (!have_stream) {
        StatusOr<EncodeRun> enc =
            run_encode(point, options_.point_timeout_seconds);
        if (!enc.is_ok())
            return enc.status();
        result->encode_measured = options_.measure_encode;
        result->encode_frames = enc.value().frames;
        result->encode_seconds = enc.value().seconds;
        result->pool_allocs += enc.value().pool.buffer_allocs;
        stream = std::move(enc.value().stream);
        if (cacheable) {
            ::mkdir(options_.cache_dir.c_str(), 0755);
            (void)write_stream_file(cache_path, stream);
        }
    }
    result->stream_bits = stream.total_bits();

    if (options_.measure_decode) {
        // Fault injection corrupts a copy, untimed: the cache (and
        // keep_streams) only ever hold the clean encoder output.
        EncodedStream corrupted;
        const EncodedStream *to_decode = &stream;
        if (point.fault.has_value() && !point.fault->is_noop()) {
            corrupted = corrupted_copy(stream, *point.fault);
            to_decode = &corrupted;
        }
        StatusOr<DecodeRun> dec = run_decode(
            point, *to_decode, options_.point_timeout_seconds);
        if (!dec.is_ok())
            return dec.status();
        result->decode_measured = true;
        result->decode_frames = dec.value().frames;
        result->decode_seconds = dec.value().seconds;
        result->psnr_y = dec.value().psnr_y;
        result->psnr_all = dec.value().psnr_all;
        result->decode_stats = dec.value().stats;
        result->pool_allocs += dec.value().pool.buffer_allocs;
    }

    if (options_.keep_streams)
        result->stream = std::move(stream);
    return Status::ok();
}

SweepResult
SweepRunner::measure_point(const BenchPoint &point, int worker) const
{
    // Shared fault-subsystem retry driver (fault/retry.h) — the same
    // policy object sessions use for transient frame failures.
    RetryController retry(options_.retry);
    SweepResult result;
    Status status;
    do {
        SweepResult trial;
        trial.point = point;
        trial.worker = worker;
        trial.attempts = retry.attempt();
        try {
            status = attempt_point(point, &trial);
        } catch (const std::exception &e) {
            // parallel_for rethrows uncaught worker exceptions, which
            // would abort the whole grid — contain them per point.
            status = Status::internal(std::string("uncaught exception: ") +
                                      e.what());
        }
        trial.status = status;
        trial.timed_out =
            status.code() == StatusCode::kDeadlineExceeded;
        result = std::move(trial);
        if (!status.is_ok()) {
            HDVB_LOG(kWarn) << "sweep " << point.label() << " attempt "
                            << retry.attempt()
                            << " failed: " << status.to_string();
        }
    } while (retry.backoff_and_retry(status));
    return result;
}

SweepResult
SweepRunner::run_point(const BenchPoint &point, int worker,
                       long rss_baseline_kb) const
{
    WallTimer wall;
    wall.start();

    // Repeat schedule: one untimed warm-up run when repeats >= 2
    // (stream cache, frame pools and branch predictors settle), then
    // `repeats` timed runs whose fps enters the sample set. The
    // published scalar measurements are the last timed run's; the
    // samples carry the spread.
    const int repeats = std::max(1, options_.repeats);
    const int total_runs = repeats > 1 ? repeats + 1 : repeats;
    std::vector<double> encode_samples;
    std::vector<double> decode_samples;
    SweepResult result;
    for (int run = 0; run < total_runs; ++run) {
        SweepResult trial = measure_point(point, worker);
        const bool failed = !trial.status.is_ok();
        const bool warmup = repeats > 1 && run == 0;
        if (!failed && !warmup) {
            if (trial.encode_measured)
                encode_samples.push_back(trial.encode_fps());
            if (trial.decode_measured)
                decode_samples.push_back(trial.decode_fps());
        }
        if (!warmup || failed)
            result = std::move(trial);
        if (failed)
            break;  // a failing point does not get re-measured
    }
    result.repeats = static_cast<int>(
        std::max(encode_samples.size(), decode_samples.size()));
    if (result.repeats == 0)
        result.repeats = 1;
    result.encode_fps_samples = std::move(encode_samples);
    result.decode_fps_samples = std::move(decode_samples);

    wall.stop();
    result.wall_seconds = wall.seconds();
    // ru_maxrss is a process-lifetime high-water mark; report the
    // growth since the sweep's baseline, not the absolute value.
    const long rss_now = current_peak_rss_kb();
    result.peak_rss_delta_kb =
        rss_now > rss_baseline_kb ? rss_now - rss_baseline_kb : 0;
    HDVB_LOG(kDebug) << "sweep " << point.label() << " worker "
                     << worker << " wall " << result.wall_seconds
                     << "s";
    return result;
}

std::vector<SweepResult>
SweepRunner::run(const std::vector<BenchPoint> &points)
{
    const int jobs =
        options_.jobs > 0 ? options_.jobs : default_job_count();

    std::vector<SweepResult> results(points.size());
    // Fresh baseline per run(): a reused runner must report this run's
    // RSS growth, not growth since some earlier run warmed the process.
    const long rss_baseline_kb = current_peak_rss_kb();
    WallTimer wall;
    wall.start();
    {
        ThreadPool pool(jobs);
        // Indexed writes into the preallocated vector keep results in
        // input order no matter which worker finishes when.
        parallel_for(pool, static_cast<int>(points.size()),
                     [&](int i, int worker) {
                         results[i] = run_point(points[i], worker,
                                                rss_baseline_kb);
                     });
    }
    wall.stop();
    last_wall_seconds_ = wall.seconds();

    if (!options_.json_path.empty()) {
        const Status status = write_report(results);
        if (!status.is_ok())
            HDVB_LOG(kWarn) << "sweep report not written: "
                            << status.to_string();
    }
    return results;
}

Status
SweepRunner::write_report(const std::vector<SweepResult> &results) const
{
    JsonWriter json;
    json.begin_object();
    json.field("schema", "hdvb-sweep/6");
    json.field("simd_detected", simd_level_name(detected_simd_level()));
    json.field("simd_best", simd_level_name(best_simd_level()));
    json.field("jobs", options_.jobs > 0 ? options_.jobs
                                         : default_job_count());
    json.field("wall_seconds", last_wall_seconds_);
    json.key("points");
    json.begin_array();
    for (const SweepResult &r : results) {
        json.begin_object();
        json.field("label", r.point.label());
        json.field("codec", codec_name(r.point.codec));
        json.field("sequence", sequence_name(r.point.sequence));
        json.field("resolution", resolution_info(r.point.resolution).name);
        json.field("simd", simd_level_name(r.point.simd));
        json.field("frames", r.point.frames);
        json.field("threads", r.point.threads);
        json.field("config_override", r.point.config.has_value());
        json.field("status", status_code_name(r.status.code()));
        if (!r.status.is_ok())
            json.field("error", r.status.message());
        json.field("attempts", r.attempts);
        json.field("timed_out", r.timed_out);
        json.field("repeats", r.repeats);
        json.field("fault_injected",
                   r.point.fault.has_value() &&
                       !r.point.fault->is_noop());
        json.field("stream_bits", r.stream_bits);
        json.field("bitrate_kbps", r.bitrate_kbps());
        json.field("from_cache", r.from_cache);
        json.field("allocs_per_frame", r.allocs_per_frame());
        if (r.encode_measured) {
            json.key("encode");
            json.begin_object();
            json.field("frames", r.encode_frames);
            json.field("seconds", r.encode_seconds);
            json.field("fps", r.encode_fps());
            json.field("fps_median", r.encode_fps_median());
            json.field("fps_cov", r.encode_fps_cov());
            json.end_object();
        }
        if (r.decode_measured) {
            json.key("decode");
            json.begin_object();
            json.field("frames", r.decode_frames);
            json.field("seconds", r.decode_seconds);
            json.field("fps", r.decode_fps());
            json.field("fps_median", r.decode_fps_median());
            json.field("fps_cov", r.decode_fps_cov());
            json.field("psnr_y", r.psnr_y);
            json.field("psnr_all", r.psnr_all);
            json.key("concealment");
            json.begin_object();
            json.field("mbs_concealed", r.decode_stats.mbs_concealed);
            json.field("resyncs", r.decode_stats.resyncs);
            json.field("pictures_dropped",
                       r.decode_stats.pictures_dropped);
            json.end_object();
            json.end_object();
        }
        json.field("wall_seconds", r.wall_seconds);
        json.field("worker", r.worker);
        json.field("peak_rss_delta_kb",
                   static_cast<s64>(r.peak_rss_delta_kb));
        json.end_object();
    }
    json.end_array();
    json.end_object();

    // Atomic publish: write next to the target, then rename over it,
    // so a concurrent reader never sees a half-written report.
    ensure_parent_dir(options_.json_path);
    const std::string tmp_path = options_.json_path + ".tmp";
    std::FILE *f = std::fopen(tmp_path.c_str(), "w");
    if (f == nullptr)
        return Status::invalid_argument("cannot open " + tmp_path);
    const std::string &text = json.str();
    const bool ok =
        std::fwrite(text.data(), 1, text.size(), f) == text.size() &&
        std::fputc('\n', f) != EOF;
    if (std::fclose(f) != 0 || !ok) {
        std::remove(tmp_path.c_str());
        return Status::internal("short write to " + tmp_path);
    }
    if (std::rename(tmp_path.c_str(), options_.json_path.c_str()) != 0) {
        std::remove(tmp_path.c_str());
        return Status::internal("cannot rename " + tmp_path);
    }
    return Status::ok();
}

std::vector<BenchPoint>
sweep_grid(int frames, SimdLevel simd)
{
    return sweep_grid(
        {kAllCodecs, kAllCodecs + kCodecCount},
        {kAllSequences, kAllSequences + kSequenceCount},
        {kAllResolutions, kAllResolutions + kResolutionCount}, frames,
        simd);
}

std::vector<BenchPoint>
sweep_grid(const std::vector<CodecId> &codecs,
           const std::vector<SequenceId> &sequences,
           const std::vector<Resolution> &resolutions, int frames,
           SimdLevel simd)
{
    std::vector<BenchPoint> points;
    points.reserve(codecs.size() * sequences.size() *
                   resolutions.size());
    for (Resolution res : resolutions) {
        for (SequenceId seq : sequences) {
            for (CodecId codec : codecs) {
                BenchPoint point;
                point.codec = codec;
                point.sequence = seq;
                point.resolution = res;
                point.frames = frames;
                point.simd = simd;
                points.push_back(point);
            }
        }
    }
    return points;
}

}  // namespace hdvb
