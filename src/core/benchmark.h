/**
 * @file
 * The HD-VideoBench definition — the paper's contribution: the codec
 * set (Table II), the input resolutions and sequences (Table III), and
 * the tuned coding options (Table IV + Equation 1).
 */
#ifndef HDVB_CORE_BENCHMARK_H
#define HDVB_CORE_BENCHMARK_H

#include <memory>
#include <string>

#include "codec/codec.h"
#include "synth/synth.h"

namespace hdvb {

/** The three benchmark codecs. */
enum class CodecId { kMpeg2 = 0, kMpeg4 = 1, kH264 = 2 };

inline constexpr int kCodecCount = 3;
inline constexpr CodecId kAllCodecs[kCodecCount] = {
    CodecId::kMpeg2, CodecId::kMpeg4, CodecId::kH264};

/** Codec name ("mpeg2", "mpeg4", "h264"). */
const char *codec_name(CodecId id);

/** Display name ("MPEG-2", "MPEG-4", "H.264"). */
const char *codec_display_name(CodecId id);

/** The application each codec stands in for (paper Table II). */
const char *codec_application(CodecId id, bool encoder);

/** Parse "mpeg2"/"mpeg4"/"h264" (returns false on anything else). */
bool parse_codec(const std::string &name, CodecId *out);

/** Parsing overload whose error names the legal spellings. */
StatusOr<CodecId> parse_codec(const std::string &name);

/** The three benchmark resolutions of Section IV. */
enum class Resolution { k576p25 = 0, k720p25 = 1, k1088p25 = 2 };

inline constexpr int kResolutionCount = 3;
inline constexpr Resolution kAllResolutions[kResolutionCount] = {
    Resolution::k576p25, Resolution::k720p25, Resolution::k1088p25};

struct ResolutionInfo {
    const char *name;  ///< "576p25", ...
    int width;
    int height;
    int fps;
};

ResolutionInfo resolution_info(Resolution res);

bool parse_resolution(const std::string &name, Resolution *out);

/** Parsing overload whose error names the legal spellings. */
StatusOr<Resolution> parse_resolution(const std::string &name);

/** The paper's MPEG-class quantiser (vqscale / fixed_quant = 5). */
inline constexpr int kBenchmarkMpegQscale = 5;
/** Paper frame count per point (Table III: 100 frames). */
inline constexpr int kPaperFrameCount = 100;

/**
 * The Table IV coding options for @p codec at @p res: constant-QP
 * one-pass rate control, two B pictures, closed GOP with a single
 * leading I picture, EPZS (MPEG-class) or hexagon (H.264-class) motion
 * estimation. H.264 QP follows Equation 1 (MPEG QP 5 -> H.264 QP 26).
 *
 * Substitution note: the paper's x264 command uses `--ref 16`; the
 * default here is 8 references to keep the single-core sweep tractable
 * (override via CodecConfig::refs).
 */
CodecConfig benchmark_config(CodecId codec, Resolution res,
                             SimdLevel simd);

/**
 * Instantiate a benchmark encoder. Validates @p config first and
 * returns the validation error instead of constructing on bad input.
 */
StatusOr<std::unique_ptr<VideoEncoder>>
make_encoder(CodecId codec, const CodecConfig &config);

/** Instantiate a benchmark decoder (same validation contract). */
StatusOr<std::unique_ptr<VideoDecoder>>
make_decoder(CodecId codec, const CodecConfig &config);

}  // namespace hdvb

#endif  // HDVB_CORE_BENCHMARK_H
