/**
 * @file
 * Measured fps/quality Pareto points for the approximate-computing
 * encoder tier (CodecConfig::approx): one codec at one SIMD tier,
 * encoded at every approximation level with repeat/CoV statistics and
 * quality/bitrate deltas against the exact level 0 run. Shared by
 * bench/pareto_sweep (standalone hdvb-pareto/1 reports) and
 * bench/regression_sweep (the "pareto" BENCH section).
 */
#ifndef HDVB_CORE_PARETO_BENCH_H
#define HDVB_CORE_PARETO_BENCH_H

#include <string>
#include <vector>

#include "core/runner.h"

namespace hdvb {

/** Highest CodecConfig::approx level (levels are 0..kApproxLevels-1,
 * matching CodecConfig::validate). */
inline constexpr int kApproxLevels = 4;

/** One measured (codec, SIMD tier, approx level) encode point. fps is
 * the median over the timed repeats; deltas compare against the
 * approx=0 point of the same codec and tier. */
struct ParetoPointBench {
    CodecId codec = CodecId::kMpeg2;
    SimdLevel simd = SimdLevel::kScalar;
    int approx = 0;
    int frames = 0;
    int repeats = 0;

    double fps = 0.0;  ///< encode fps, median over repeats
    double fps_cov = 0.0;
    double psnr_db = 0.0;  ///< decoded PSNR-Y against the source
    double bitrate_kbps = 0.0;

    double speedup = 1.0;        ///< fps / fps(approx 0), same tier
    double psnr_delta_db = 0.0;  ///< psnr - psnr(approx 0)
    double bitrate_delta_pct = 0.0;

    /** "h264/approx2/sse2" — the metric/JSON key. */
    std::string label() const;
};

/**
 * Encode @p frames of @p sequence with @p codec at @p res and @p simd
 * for every approximation level 0..3, @p repeats timed repeats each
 * (plus one warm-up), then decode each stream once for PSNR. Returns
 * one point per level with the deltas against level 0 filled in.
 */
StatusOr<std::vector<ParetoPointBench>>
bench_pareto_codec(CodecId codec, Resolution res, SequenceId sequence,
                   SimdLevel simd, int frames, int repeats);

}  // namespace hdvb

#endif  // HDVB_CORE_PARETO_BENCH_H
