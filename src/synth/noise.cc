#include "synth/noise.h"

#include <cmath>

namespace hdvb {

u32
lattice_hash(s32 x, s32 y, s32 z, u32 seed)
{
    u32 h = seed;
    h ^= static_cast<u32>(x) * 0x9E3779B1u;
    h = (h << 13) | (h >> 19);
    h ^= static_cast<u32>(y) * 0x85EBCA77u;
    h = (h << 13) | (h >> 19);
    h ^= static_cast<u32>(z) * 0xC2B2AE3Du;
    h *= 0x27D4EB2Fu;
    h ^= h >> 15;
    h *= 0x165667B1u;
    h ^= h >> 13;
    return h;
}

namespace {

inline float
lattice_value(s32 x, s32 y, s32 z, u32 seed)
{
    return static_cast<float>(lattice_hash(x, y, z, seed) >> 8) *
           (1.0f / 16777216.0f);
}

inline float
smooth(float t)
{
    return t * t * (3.0f - 2.0f * t);
}

}  // namespace

float
value_noise2(float x, float y, u32 seed)
{
    const float fx = std::floor(x);
    const float fy = std::floor(y);
    const s32 ix = static_cast<s32>(fx);
    const s32 iy = static_cast<s32>(fy);
    const float tx = smooth(x - fx);
    const float ty = smooth(y - fy);
    const float v00 = lattice_value(ix, iy, 0, seed);
    const float v10 = lattice_value(ix + 1, iy, 0, seed);
    const float v01 = lattice_value(ix, iy + 1, 0, seed);
    const float v11 = lattice_value(ix + 1, iy + 1, 0, seed);
    const float a = v00 + (v10 - v00) * tx;
    const float b = v01 + (v11 - v01) * tx;
    return a + (b - a) * ty;
}

float
value_noise3(float x, float y, float z, u32 seed)
{
    const float fx = std::floor(x);
    const float fy = std::floor(y);
    const float fz = std::floor(z);
    const s32 ix = static_cast<s32>(fx);
    const s32 iy = static_cast<s32>(fy);
    const s32 iz = static_cast<s32>(fz);
    const float tx = smooth(x - fx);
    const float ty = smooth(y - fy);
    const float tz = smooth(z - fz);
    float corner[2][2][2];
    for (int dz = 0; dz < 2; ++dz)
        for (int dy = 0; dy < 2; ++dy)
            for (int dx = 0; dx < 2; ++dx)
                corner[dz][dy][dx] =
                    lattice_value(ix + dx, iy + dy, iz + dz, seed);
    float face[2][2];
    for (int dz = 0; dz < 2; ++dz)
        for (int dy = 0; dy < 2; ++dy)
            face[dz][dy] = corner[dz][dy][0] +
                           (corner[dz][dy][1] - corner[dz][dy][0]) * tx;
    float edge[2];
    for (int dz = 0; dz < 2; ++dz)
        edge[dz] = face[dz][0] + (face[dz][1] - face[dz][0]) * ty;
    return edge[0] + (edge[1] - edge[0]) * tz;
}

float
fbm2(float x, float y, u32 seed, int octaves)
{
    float sum = 0.0f;
    float amp = 0.5f;
    float freq = 1.0f;
    for (int i = 0; i < octaves; ++i) {
        sum += amp * value_noise2(x * freq, y * freq, seed + 101u * i);
        amp *= 0.5f;
        freq *= 2.0f;
    }
    return sum;
}

float
fbm3(float x, float y, float z, u32 seed, int octaves)
{
    float sum = 0.0f;
    float amp = 0.5f;
    float freq = 1.0f;
    for (int i = 0; i < octaves; ++i) {
        sum += amp * value_noise3(x * freq, y * freq, z * freq,
                                  seed + 131u * i);
        amp *= 0.5f;
        freq *= 2.0f;
    }
    return sum;
}

}  // namespace hdvb
