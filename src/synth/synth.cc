#include "synth/synth.h"

#include <cmath>

#include "common/check.h"
#include "synth/noise.h"

namespace hdvb {

namespace {

constexpr u32 kSeedBase = 0x48445642u;  // "HDVB"

inline Pixel
to_pixel(float v)
{
    return clamp_pixel(static_cast<int>(v + 0.5f));
}

/** Wrap @p x into [lo, hi). */
inline float
wrap(float x, float lo, float hi)
{
    const float span = hi - lo;
    float t = std::fmod(x - lo, span);
    if (t < 0.0f)
        t += span;
    return lo + t;
}

// ---------------------------------------------------------------------
// blue_sky: gradient sky + two high-detail tree crowns, global camera
// rotation around a point above the frame.
// ---------------------------------------------------------------------

struct BlueSky {
    float aspect;
    float t;
    float cosa, sina;

    BlueSky(float aspect_in, int frame)
        : aspect(aspect_in), t(static_cast<float>(frame))
    {
        const float angle = 0.0035f * t;
        cosa = std::cos(angle);
        sina = std::sin(angle);
    }

    void
    rotate(float u, float v, float *ru, float *rv) const
    {
        const float cx = 0.5f * aspect;
        const float cy = 0.55f;
        const float du = u - cx;
        const float dv = v - cy;
        *ru = cx + du * cosa - dv * sina;
        *rv = cy + du * sina + dv * cosa;
    }

    /** Foliage density at rotated scene coordinates, in [0, ~1]. */
    float
    tree_mask(float u, float v) const
    {
        const float d1 = std::hypot((u - 0.18f * aspect) * 0.8f,
                                    (v - 1.05f));
        const float d2 = std::hypot((u - 0.85f * aspect) * 0.8f,
                                    (v - 0.95f));
        const float reach1 = std::max(0.0f, 1.0f - d1 / 0.55f);
        const float reach2 = std::max(0.0f, 1.0f - d2 / 0.5f);
        const float reach = std::max(reach1, reach2);
        if (reach <= 0.0f)
            return 0.0f;
        return reach * fbm2(u * 9.0f, v * 9.0f, kSeedBase + 7, 2);
    }

    float
    luma(float u, float v) const
    {
        float ru, rv;
        rotate(u, v, &ru, &rv);
        const float mask = tree_mask(ru, rv);
        if (mask > 0.22f) {
            // High-contrast, high-detail foliage.
            return 28.0f +
                   95.0f * fbm2(ru * 42.0f, rv * 42.0f, kSeedBase + 11, 2);
        }
        const float clouds =
            fbm2(ru * 2.5f, rv * 2.5f + t * 0.01f, kSeedBase + 3, 2);
        return 95.0f + 85.0f * rv + 14.0f * clouds;
    }

    void
    chroma(float u, float v, float *cb, float *cr) const
    {
        float ru, rv;
        rotate(u, v, &ru, &rv);
        const float mask = tree_mask(ru, rv);
        if (mask > 0.22f) {
            *cb = 118.0f;
            *cr = 122.0f;
            return;
        }
        // Deep blue sky with subtle saturation change toward the top.
        *cb = 152.0f - 14.0f * rv;
        *cr = 112.0f + 4.0f * rv;
    }
};

// ---------------------------------------------------------------------
// pedestrian_area: static detailed background, large figures passing
// close to a low static camera.
// ---------------------------------------------------------------------

struct Person {
    float v_center;
    float ru, rv;     // ellipse radii
    float speed;
    float phase;
    float tone;       // clothing base luma
    float cb, cr;
    u32 seed;
};

struct PedestrianArea {
    static constexpr int kPeople = 8;
    float aspect;
    float t;
    Person people[kPeople];

    PedestrianArea(float aspect_in, int frame)
        : aspect(aspect_in), t(static_cast<float>(frame))
    {
        for (int i = 0; i < kPeople; ++i) {
            const u32 h = lattice_hash(i, 17, 0, kSeedBase + 23);
            Person &p = people[i];
            p.rv = 0.22f + 0.14f * ((h & 0xFF) / 255.0f);
            p.ru = p.rv * 0.38f;
            p.v_center = 0.92f - p.rv * 0.8f;
            const float mag =
                0.004f + 0.009f * (((h >> 8) & 0xFF) / 255.0f);
            p.speed = (h & 0x10000) ? mag : -mag;
            p.phase = aspect * (((h >> 17) & 0xFF) / 255.0f);
            p.tone = 50.0f + 120.0f * (((h >> 25) & 0x7F) / 127.0f);
            p.cb = 112.0f + 32.0f * (((h >> 3) & 0xFF) / 255.0f);
            p.cr = 112.0f + 32.0f * (((h >> 11) & 0xFF) / 255.0f);
            p.seed = h;
        }
    }

    float
    person_u(const Person &p) const
    {
        return wrap(p.phase + p.speed * t, -0.3f, aspect + 0.3f);
    }

    const Person *
    hit(float u, float v, float *du_out, float *dv_out) const
    {
        // Later (larger index = closer) people win.
        const Person *found = nullptr;
        for (int i = 0; i < kPeople; ++i) {
            const Person &p = people[i];
            const float pu = person_u(p);
            const float du = (u - pu) / p.ru;
            const float dv = (v - p.v_center) / p.rv;
            if (du * du + dv * dv < 1.0f) {
                found = &p;
                *du_out = du;
                *dv_out = dv;
            }
        }
        return found;
    }

    float
    background_luma(float u, float v) const
    {
        // Paving with strong vertical architectural features: the
        // "many details, high depth of field" of the original.
        const float base = 118.0f + 34.0f * fbm2(u * 6.0f, v * 6.0f,
                                                 kSeedBase + 31, 2);
        const float columns =
            22.0f * value_noise2(u * 14.0f, 0.5f, kSeedBase + 37);
        const float texture =
            14.0f * fbm2(u * 30.0f, v * 30.0f, kSeedBase + 41, 1);
        return base + columns * (v < 0.6f ? 1.0f : 0.2f) + texture;
    }

    float
    luma(float u, float v) const
    {
        float du, dv;
        const Person *p = hit(u, v, &du, &dv);
        if (p == nullptr)
            return background_luma(u, v);
        const float cloth = fbm2(du * 3.0f + (p->seed & 15), dv * 3.0f,
                                 p->seed, 2);
        const float shade = 1.0f - 0.35f * (du * du + dv * dv);
        return (p->tone + 55.0f * cloth) * shade;
    }

    void
    chroma(float u, float v, float *cb, float *cr) const
    {
        float du, dv;
        const Person *p = hit(u, v, &du, &dv);
        if (p == nullptr) {
            *cb = 126.0f;
            *cr = 130.0f;
            return;
        }
        *cb = p->cb;
        *cr = p->cr;
    }
};

// ---------------------------------------------------------------------
// riverbed: spatio-temporally decorrelated water over pebbles — the
// hard-to-code stress sequence.
// ---------------------------------------------------------------------

struct Riverbed {
    float t;

    explicit Riverbed(int frame) : t(static_cast<float>(frame)) {}

    float
    luma(float u, float v) const
    {
        // Slowly drifting pebble bed seen through fast water shimmer.
        // The water term decorrelates quickly in both space and time,
        // which is what makes the original riverbed resistant to every
        // codec generation (Table V: highest bitrate by 3-10x, and the
        // smallest H.264 advantage).
        const float bed =
            fbm2(u * 11.0f + t * 0.01f, v * 11.0f, kSeedBase + 53, 2);
        const float water = fbm3(u * 34.0f + t * 0.2f, v * 34.0f,
                                 t * 0.9f, kSeedBase + 59, 3);
        return 70.0f + 60.0f * bed + 100.0f * (water - 0.5f);
    }

    void
    chroma(float u, float v, float *cb, float *cr) const
    {
        const float water = value_noise3(u * 13.0f, v * 13.0f, t * 0.5f,
                                         kSeedBase + 61);
        *cb = 134.0f + 10.0f * water;
        *cr = 116.0f - 6.0f * water;
    }
};

// ---------------------------------------------------------------------
// rush_hour: fixed camera, many small cars moving slowly in lanes,
// heat haze.
// ---------------------------------------------------------------------

struct Car {
    float lane_v;
    float len, height;
    float speed;
    float phase;
    float tone;
    float cb, cr;
};

struct RushHour {
    static constexpr int kCars = 28;
    static constexpr int kLanes = 6;
    float aspect;
    float t;
    Car cars[kCars];

    RushHour(float aspect_in, int frame)
        : aspect(aspect_in), t(static_cast<float>(frame))
    {
        for (int i = 0; i < kCars; ++i) {
            const u32 h = lattice_hash(i, 91, 0, kSeedBase + 71);
            Car &c = cars[i];
            const int lane = i % kLanes;
            // Lanes recede upward: higher lanes are further and higher
            // in the frame.
            c.lane_v = 0.42f + 0.095f * lane;
            const float scale = 0.5f + 0.09f * lane;
            c.len = (0.055f + 0.03f * ((h & 0xFF) / 255.0f)) * scale;
            c.height = 0.030f * scale;
            const float mag =
                (0.0012f + 0.0028f * (((h >> 8) & 0xFF) / 255.0f));
            c.speed = (lane & 1) ? mag : -mag;  // opposing directions
            c.phase = aspect * (((h >> 16) & 0xFF) / 255.0f);
            c.tone = 45.0f + 150.0f * (((h >> 24) & 0x7F) / 127.0f);
            c.cb = 108.0f + 40.0f * (((h >> 5) & 0xFF) / 255.0f);
            c.cr = 108.0f + 40.0f * (((h >> 13) & 0xFF) / 255.0f);
        }
    }

    const Car *
    hit(float u, float v, float *du_out) const
    {
        const Car *found = nullptr;
        for (int i = 0; i < kCars; ++i) {
            const Car &c = cars[i];
            if (std::fabs(v - c.lane_v) > c.height)
                continue;
            const float cu = wrap(c.phase + c.speed * t, -0.2f,
                                  aspect + 0.2f);
            const float du = (u - cu) / c.len;
            if (du > -1.0f && du < 1.0f) {
                found = &c;
                *du_out = du;
            }
        }
        return found;
    }

    float
    luma(float u, float v) const
    {
        float du;
        const Car *c = hit(u, v, &du);
        float base;
        if (c != nullptr) {
            const float windshield =
                (du > -0.25f && du < 0.15f) ? -30.0f : 0.0f;
            base = c->tone + windshield - 25.0f * du * du;
        } else if (v > 0.40f) {
            // Asphalt with dashed lane markings.
            base = 74.0f + 30.0f * v +
                   9.0f * fbm2(u * 7.0f, v * 7.0f, kSeedBase + 73, 1);
            for (int lane = 1; lane < kLanes; ++lane) {
                const float lv = 0.42f + 0.095f * lane - 0.048f;
                if (std::fabs(v - lv) < 0.004f &&
                    std::fmod(u * 9.0f + lane * 1.7f, 1.0f) < 0.4f) {
                    base = 200.0f;
                }
            }
        } else {
            // City backdrop above the road.
            base = 105.0f + 55.0f * fbm2(u * 9.0f, v * 9.0f,
                                         kSeedBase + 79, 2);
        }
        // Faint heat haze, slowly evolving: the sequence stays easy to
        // code temporally (high depth of focus, fixed camera).
        return base + 5.0f * fbm3(u * 2.2f, v * 2.2f, t * 0.03f,
                                  kSeedBase + 83, 1);
    }

    void
    chroma(float u, float v, float *cb, float *cr) const
    {
        float du;
        const Car *c = hit(u, v, &du);
        if (c != nullptr) {
            *cb = c->cb;
            *cr = c->cr;
            return;
        }
        *cb = 128.0f;
        *cr = 127.0f;
    }
};

/** Render @p scene (luma(u,v) / chroma(u,v)) into @p frame. */
template <typename Scene>
void
render(const Scene &scene, Frame *frame)
{
    const int w = frame->width();
    const int h = frame->height();
    const float inv = 1.0f / static_cast<float>(h);
    Plane &luma = frame->luma();
    for (int y = 0; y < h; ++y) {
        Pixel *row = luma.row(y);
        const float v = (y + 0.5f) * inv;
        for (int x = 0; x < w; ++x)
            row[x] = to_pixel(scene.luma((x + 0.5f) * inv, v));
    }
    Plane &cb = frame->cb();
    Plane &cr = frame->cr();
    for (int y = 0; y < h / 2; ++y) {
        Pixel *rb = cb.row(y);
        Pixel *rr = cr.row(y);
        const float v = (2 * y + 1.0f) * inv;
        for (int x = 0; x < w / 2; ++x) {
            float b, r;
            scene.chroma((2 * x + 1.0f) * inv, v, &b, &r);
            rb[x] = to_pixel(b);
            rr[x] = to_pixel(r);
        }
    }
}

}  // namespace

const char *
sequence_name(SequenceId id)
{
    switch (id) {
      case SequenceId::kBlueSky: return "blue_sky";
      case SequenceId::kPedestrianArea: return "pedestrian_area";
      case SequenceId::kRiverbed: return "riverbed";
      case SequenceId::kRushHour: return "rush_hour";
    }
    return "?";
}

const char *
sequence_description(SequenceId id)
{
    switch (id) {
      case SequenceId::kBlueSky:
        return "Top of two trees against blue sky. High contrast, many "
               "details, camera rotation.";
      case SequenceId::kPedestrianArea:
        return "Pedestrian area, low static camera, people pass very "
               "close. High depth of field.";
      case SequenceId::kRiverbed:
        return "Riverbed seen through the water. Very hard to code.";
      case SequenceId::kRushHour:
        return "Rush hour traffic, many cars moving slowly, fixed "
               "camera, high depth of focus.";
    }
    return "?";
}

void
generate_frame(SequenceId id, int index, Frame *frame)
{
    HDVB_CHECK(frame != nullptr && !frame->empty());
    const float aspect = static_cast<float>(frame->width()) /
                         static_cast<float>(frame->height());
    switch (id) {
      case SequenceId::kBlueSky:
        render(BlueSky(aspect, index), frame);
        break;
      case SequenceId::kPedestrianArea:
        render(PedestrianArea(aspect, index), frame);
        break;
      case SequenceId::kRiverbed:
        render(Riverbed(index), frame);
        break;
      case SequenceId::kRushHour:
        render(RushHour(aspect, index), frame);
        break;
    }
}

}  // namespace hdvb
