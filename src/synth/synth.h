/**
 * @file
 * Synthetic stand-ins for the four TU München HD test sequences of the
 * paper's Table III. Each generator is procedural and deterministic,
 * tuned to match its original's qualitative description:
 *
 *  - blue_sky: two detailed tree crowns against a smooth gradient sky,
 *    slow global camera rotation, high contrast.
 *  - pedestrian_area: static camera, detailed static background, a few
 *    large textured figures crossing close to the camera.
 *  - riverbed: spatio-temporally decorrelated water texture — "very
 *    hard to code" (it dominates the bitrate in Table V).
 *  - rush_hour: fixed camera on dense slow traffic, many small movers.
 *
 * The generators preserve the *relative codability* the benchmark
 * depends on, not the photographic content (see DESIGN.md section 2).
 */
#ifndef HDVB_SYNTH_SYNTH_H
#define HDVB_SYNTH_SYNTH_H

#include "common/types.h"
#include "video/frame.h"

namespace hdvb {

/** The four benchmark input sequences (paper Table III). */
enum class SequenceId {
    kBlueSky = 0,
    kPedestrianArea = 1,
    kRiverbed = 2,
    kRushHour = 3,
};

inline constexpr int kSequenceCount = 4;
inline constexpr SequenceId kAllSequences[kSequenceCount] = {
    SequenceId::kBlueSky, SequenceId::kPedestrianArea,
    SequenceId::kRiverbed, SequenceId::kRushHour};

/** Sequence name as used in the paper ("blue_sky", ...). */
const char *sequence_name(SequenceId id);

/** One-line description (Table III's Comments column). */
const char *sequence_description(SequenceId id);

/**
 * Generate frame @p index of sequence @p id into @p frame (which must
 * be pre-allocated to the desired resolution; borders untouched).
 * Deterministic: same (id, index, size) always yields the same pixels.
 */
void generate_frame(SequenceId id, int index, Frame *frame);

/** Streaming convenience wrapper around generate_frame. */
class SyntheticSource
{
  public:
    SyntheticSource(SequenceId id, int width, int height)
        : id_(id), width_(width), height_(height)
    {
    }

    /** Produce the next frame in display order. */
    Frame
    next()
    {
        Frame frame(width_, height_);
        generate_frame(id_, next_index_, &frame);
        frame.set_poc(next_index_++);
        return frame;
    }

    /** Random access (used for PSNR against decoded output). */
    Frame
    at(int index) const
    {
        Frame frame(width_, height_);
        generate_frame(id_, index, &frame);
        frame.set_poc(index);
        return frame;
    }

    SequenceId id() const { return id_; }
    int width() const { return width_; }
    int height() const { return height_; }

  private:
    SequenceId id_;
    int width_;
    int height_;
    int next_index_ = 0;
};

}  // namespace hdvb

#endif  // HDVB_SYNTH_SYNTH_H
