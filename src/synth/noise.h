/**
 * @file
 * Deterministic lattice value noise (2-D and 3-D) with fractal
 * (fBm) stacking — the texture primitive behind the synthetic input
 * sequences. Hash-based, seeded, identical on every run.
 */
#ifndef HDVB_SYNTH_NOISE_H
#define HDVB_SYNTH_NOISE_H

#include "common/types.h"

namespace hdvb {

/** 32-bit avalanche hash of lattice coordinates. */
u32 lattice_hash(s32 x, s32 y, s32 z, u32 seed);

/** Bilinear value noise in [0, 1); coordinates in lattice units. */
float value_noise2(float x, float y, u32 seed);

/** Trilinear value noise in [0, 1); z is typically time. */
float value_noise3(float x, float y, float z, u32 seed);

/** Fractal sum of @p octaves noise layers, result in [0, 1). */
float fbm2(float x, float y, u32 seed, int octaves);

/** 3-D fractal noise, result in [0, 1). */
float fbm3(float x, float y, float z, u32 seed, int octaves);

}  // namespace hdvb

#endif  // HDVB_SYNTH_NOISE_H
