/**
 * @file
 * Bounded retry with exponential backoff — the recovery half of the
 * fault subsystem. One policy object, two consumers:
 *
 *  - SweepRunner retries whole failed bench points (any failure code:
 *    a point is a measurement, and a flaky machine deserves a second
 *    try regardless of what broke) — transient_only = false.
 *  - CodecSessions retry individual frames whose codec call failed
 *    with a *transient* status (see status_is_transient); terminal
 *    codes fail fast into the session's kFailed state instead of
 *    burning attempts on a request that cannot succeed —
 *    transient_only = true.
 *
 * RetryController is the driver: construct one per retried operation,
 * stamp attempt() into observability, and loop while
 * `backoff_and_retry(status)` says to. The controller sleeps the
 * (doubling, capped) backoff itself so callers cannot forget it.
 */
#ifndef HDVB_FAULT_RETRY_H
#define HDVB_FAULT_RETRY_H

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/status.h"

namespace hdvb {

/** How (whether) a failed operation is retried. The default is one
 * attempt: no retry. */
struct RetryPolicy {
    /** Total attempts including the first (>= 1; values < 1 read as 1). */
    int max_attempts = 1;

    /** Sleep before the first retry; doubles after each further
     * failure. <= 0 disables the sleep (tests; spin-retry). */
    double initial_backoff_seconds = 0.05;

    /** Upper bound the doubling saturates at. */
    double max_backoff_seconds = 1.0;

    /** When true, only transient statuses (status_is_transient) are
     * retried; terminal failures return immediately. */
    bool transient_only = true;
};

/**
 * Drives one retried operation under a RetryPolicy. Usage:
 *
 *   RetryController retry(policy);
 *   Status status;
 *   do {
 *       status = attempt_the_thing();   // retry.attempt() is 1-based
 *   } while (retry.backoff_and_retry(status));
 */
class RetryController
{
  public:
    explicit RetryController(const RetryPolicy &policy)
        : policy_(policy),
          attempts_left_(std::max(policy.max_attempts, 1) - 1),
          backoff_(policy.initial_backoff_seconds)
    {}

    /** The attempt about to run (or just run), 1-based. */
    int attempt() const { return attempt_; }

    /** True when @p status is worth another attempt under the policy
     * (non-OK, attempts left, and — for transient_only policies —
     * retryable). When it returns true it has already slept the
     * backoff and advanced the attempt counter. */
    bool
    backoff_and_retry(const Status &status)
    {
        if (status.is_ok() || attempts_left_ <= 0)
            return false;
        if (policy_.transient_only &&
            !status_is_transient(status.code()))
            return false;
        --attempts_left_;
        ++attempt_;
        if (backoff_ > 0) {
            std::this_thread::sleep_for(
                std::chrono::duration<double>(backoff_));
            backoff_ = std::min(backoff_ * 2,
                                policy_.max_backoff_seconds > 0
                                    ? policy_.max_backoff_seconds
                                    : backoff_ * 2);
        }
        return true;
    }

  private:
    const RetryPolicy policy_;
    int attempt_ = 1;
    int attempts_left_;
    double backoff_;
};

}  // namespace hdvb

#endif  // HDVB_FAULT_RETRY_H
