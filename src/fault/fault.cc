#include "fault/fault.h"

#include <algorithm>
#include <cstddef>

namespace hdvb {
namespace {

/** splitmix64 — tiny, seedable, and good enough to place faults. The
 * standard <random> engines are avoided so the damage pattern for a
 * given (seed, packet index) is pinned by this file alone, not by a
 * library's distribution implementation. */
class Rng
{
  public:
    explicit Rng(u64 seed) : state_(seed) { (void)next(); }

    u64
    next()
    {
        u64 z = (state_ += 0x9E3779B97F4A7C15ull);
        z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
        z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
        return z ^ (z >> 31);
    }

    /** Uniform in [0, 1). */
    double next_double() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

  private:
    u64 state_;
};

u64
packet_seed(u64 seed, u64 packet_index)
{
    // Distinct, order-independent stream per packet.
    return seed ^ (packet_index + 1) * 0x9E3779B97F4A7C15ull;
}

}  // namespace

bool
FaultPlan::is_noop() const
{
    return (flip_density <= 0.0 && garble_density <= 0.0 &&
            truncate_fraction <= 0.0) ||
           packet_fraction <= 0.0;
}

void
StreamCorrupter::corrupt_packet(std::vector<u8> *data,
                                u64 packet_index) const
{
    Rng rng(packet_seed(plan_.seed, packet_index));
    if (plan_.packet_fraction < 1.0 &&
        rng.next_double() >= plan_.packet_fraction)
        return;

    if (plan_.truncate_fraction > 0.0 && !data->empty()) {
        const double keep =
            1.0 - std::min(plan_.truncate_fraction, 1.0);
        data->resize(static_cast<size_t>(
            static_cast<double>(data->size()) * keep));
    }

    size_t region = data->size();
    if (plan_.target_headers)
        region = std::min(region, static_cast<size_t>(
                                      std::max(plan_.header_bytes, 0)));

    if (plan_.garble_density > 0.0) {
        for (size_t i = 0; i < region; ++i)
            if (rng.next_double() < plan_.garble_density)
                (*data)[i] = static_cast<u8>(rng.next() & 0xFF);
    }

    if (plan_.flip_density > 0.0) {
        for (size_t i = 0; i < region; ++i)
            for (int bit = 0; bit < 8; ++bit)
                if (rng.next_double() < plan_.flip_density)
                    (*data)[i] ^= static_cast<u8>(1u << bit);
    }
}

void
StreamCorrupter::corrupt_stream(EncodedStream *stream) const
{
    for (size_t i = 0; i < stream->packets.size(); ++i) {
        if (plan_.protect_first_packet && i == 0)
            continue;
        corrupt_packet(&stream->packets[i].data, i);
    }
}

EncodedStream
corrupted_copy(const EncodedStream &stream, const FaultPlan &plan)
{
    EncodedStream copy = stream;
    StreamCorrupter(plan).corrupt_stream(&copy);
    return copy;
}

}  // namespace hdvb
