/**
 * @file
 * Deterministic, seeded stream corruption — the fault-injection side of
 * the robustness story. A FaultPlan describes *what* to damage (bit
 * flips, byte garbling, truncation, header targeting) and *how much*;
 * StreamCorrupter applies it reproducibly: each packet's damage depends
 * only on (plan.seed, packet index), never on application order, so a
 * corruption sweep is bit-stable across runs and worker counts.
 *
 * Consumers: tests/corruption_test.cc feeds damaged streams straight to
 * the decoders; the sweep engine applies a BenchPoint's optional
 * FaultPlan to a copy of the (clean, cacheable) encoded stream before
 * the timed decode, which is how bench/corruption_sweep draws its
 * graceful-degradation curves.
 */
#ifndef HDVB_FAULT_FAULT_H
#define HDVB_FAULT_FAULT_H

#include <vector>

#include "common/types.h"
#include "container/container.h"

namespace hdvb {

/** A reproducible description of stream damage. Default-constructed
 * plans are no-ops. */
struct FaultPlan {
    u64 seed = 1;

    /** Per-bit flip probability (e.g. 1e-4). */
    double flip_density = 0.0;

    /** Per-byte probability of replacing the byte with a random one. */
    double garble_density = 0.0;

    /** Fraction of a hit packet's tail bytes to chop off. */
    double truncate_fraction = 0.0;

    /** Fraction of packets that are hit at all (1.0 = every packet). */
    double packet_fraction = 1.0;

    /** Restrict flip/garble damage to the first header_bytes bytes. */
    bool target_headers = false;
    int header_bytes = 8;

    /** Leave packet 0 (the opening intra picture) untouched, so
     * concealment always has an anchor to fall back on. */
    bool protect_first_packet = false;

    /** Test hook consumed by the sweep engine, not the corrupter: sleep
     * this long per decoded frame to simulate a hung point. */
    double delay_seconds = 0.0;

    /** True when applying the plan cannot change any byte. */
    bool is_noop() const;
};

/** Applies a FaultPlan to packets/streams, deterministically. */
class StreamCorrupter
{
  public:
    explicit StreamCorrupter(const FaultPlan &plan) : plan_(plan) {}

    /** Damage one packet in place. @p packet_index seeds the per-packet
     * RNG together with plan.seed. */
    void corrupt_packet(std::vector<u8> *data, u64 packet_index) const;

    /** Damage every packet of @p stream in place (honouring
     * packet_fraction and protect_first_packet). */
    void corrupt_stream(EncodedStream *stream) const;

  private:
    FaultPlan plan_;
};

/** Convenience: copy @p stream and apply @p plan to the copy. */
EncodedStream corrupted_copy(const EncodedStream &stream,
                             const FaultPlan &plan);

}  // namespace hdvb

#endif  // HDVB_FAULT_FAULT_H
