/**
 * @file
 * Cooperative wall-clock deadlines — the timeout half of the fault
 * subsystem. A Deadline is an absolute steady-clock point checked at
 * frame granularity: the runner checks one between codec calls (a
 * single frame that hangs *inside* a codec cannot be interrupted), and
 * the serve scheduler checks one per queued frame against the owning
 * session's per-frame latency budget. Both report expiry as
 * Status::deadline_exceeded rather than tearing anything down.
 */
#ifndef HDVB_FAULT_DEADLINE_H
#define HDVB_FAULT_DEADLINE_H

#include <chrono>

namespace hdvb {

/** An absolute wall-clock budget; default-constructed = unlimited. */
class Deadline
{
  public:
    using Clock = std::chrono::steady_clock;

    /** No deadline: expired() is always false. */
    Deadline() = default;

    /** Deadline @p seconds after @p start (<= 0 means unlimited). */
    Deadline(Clock::time_point start, double seconds)
    {
        if (seconds > 0.0) {
            at_ = start + std::chrono::duration_cast<Clock::duration>(
                              std::chrono::duration<double>(seconds));
            armed_ = true;
        }
    }

    /** Deadline @p seconds from now (<= 0 means unlimited). */
    static Deadline
    after(double seconds)
    {
        return Deadline(Clock::now(), seconds);
    }

    bool unlimited() const { return !armed_; }

    /** True once the budget has passed (never for unlimited). */
    bool expired() const { return armed_ && Clock::now() > at_; }

  private:
    Clock::time_point at_;
    bool armed_ = false;
};

}  // namespace hdvb

#endif  // HDVB_FAULT_DEADLINE_H
