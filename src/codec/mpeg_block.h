/**
 * @file
 * Block reconstruction helpers shared by the MPEG-class encoders and
 * decoders. Both sides call exactly this code, which is what makes the
 * encoder reconstruction and the decoder output bit-identical (a test
 * invariant for every codec in the benchmark).
 */
#ifndef HDVB_CODEC_MPEG_BLOCK_H
#define HDVB_CODEC_MPEG_BLOCK_H

#include <cstring>

#include "common/types.h"
#include "dsp/quant.h"
#include "simd/dispatch.h"

namespace hdvb {

/** Zero an 8x8 pixel block (intra reconstruction base). */
inline void
zero_block8(Pixel *dst, int ds)
{
    for (int y = 0; y < 8; ++y)
        std::memset(dst + y * ds, 0, 8);
}

/**
 * Reconstruct one 8x8 block from quantised levels and add it to @p dst
 * (which holds the prediction, or zeros for intra blocks).
 *
 * @param dc_coeff for intra blocks, the reconstructed DC transform
 *        coefficient (dc_level * 8); pass a negative value for inter
 *        blocks, whose DC went through the regular quantiser.
 */
inline void
mpeg_recon_block(const Coeff levels[64], const MpegQuantizer &quant,
                 s32 dc_coeff, Pixel *dst, int ds, const Dsp &dsp)
{
    Coeff tmp[64];
    std::memcpy(tmp, levels, sizeof(tmp));
    quant.dequantize(tmp);
    if (dc_coeff >= 0)
        tmp[0] = static_cast<Coeff>(clamp<s32>(dc_coeff, 0, 2040));
    dsp.idct8x8(tmp);
    dsp.add_rect(dst, ds, tmp, 8, 8, 8);
}

}  // namespace hdvb

#endif  // HDVB_CODEC_MPEG_BLOCK_H
