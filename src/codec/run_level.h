/**
 * @file
 * Run/level entropy coding of zig-zag-scanned 8x8 transform
 * coefficients, the entropy layer of the MPEG-class codecs.
 *
 * Frequent (run, level) pairs get canonical-Huffman codes plus a sign
 * bit; rare pairs use an escape (6-bit run + signed Exp-Golomb level);
 * blocks terminate with an EOB symbol — structurally the same scheme as
 * the MPEG-2/-4 coefficient tables (see DESIGN.md on table fidelity).
 */
#ifndef HDVB_CODEC_RUN_LEVEL_H
#define HDVB_CODEC_RUN_LEVEL_H

#include "bitstream/bit_reader.h"
#include "bitstream/bit_writer.h"
#include "bitstream/vlc.h"
#include "common/types.h"

namespace hdvb {

/**
 * Statistical profile a run/level table is tuned for. The MPEG-2-era
 * profiles model that standard's tables: a small direct-coded pair set
 * (levels 1..4) and an expensive fixed-length escape (6-bit run +
 * 12-bit level), which is a large share of MPEG-2's bitrate
 * disadvantage at HD rates. The MPEG-4-era profiles have a wider direct
 * set and a compact Exp-Golomb escape.
 */
enum class RunLevelProfile {
    kMpeg2Intra = 0,
    kMpeg2Inter = 1,
    kMpeg4Intra = 2,
    kMpeg4Inter = 3,
};

/** Table-driven run/level coder; get() returns process-lifetime
 * singletons (tables are immutable). */
class RunLevelCoder
{
  public:
    /** Shared instance for @p profile. */
    static const RunLevelCoder &get(RunLevelProfile profile);

    /**
     * Encode the coefficients of @p blk (raster order) from zig-zag
     * position @p start to 63, then EOB.
     */
    void encode_block(BitWriter &bw, const Coeff blk[64],
                      int start) const;

    /**
     * Decode one block into @p blk (must be zero-filled by the caller),
     * starting at zig-zag position @p start.
     * @return false on malformed data (caller surfaces corrupt-stream).
     */
    bool decode_block(BitReader &br, Coeff blk[64], int start) const;

    /** Exact bit cost of encoding this block (for mode decisions). */
    int block_bits(const Coeff blk[64], int start) const;

  private:
    static constexpr int kMaxRunDirect = 8;  ///< runs 0..7 direct
    static constexpr int kEob = 0;

    explicit RunLevelCoder(RunLevelProfile profile);

    int
    pair_symbol(int run, int lev) const
    {
        return 1 + run * max_lev_direct_ + (lev - 1);
    }

    int escape_symbol() const
    {
        return 1 + kMaxRunDirect * max_lev_direct_;
    }

    int max_lev_direct_;      ///< |level| 1..N coded directly
    bool fixed_escape_;       ///< 18-bit escape vs Exp-Golomb escape
    VlcTable table_;
};

}  // namespace hdvb

#endif  // HDVB_CODEC_RUN_LEVEL_H
