#include "codec/run_level.h"

#include <cmath>
#include <vector>

#include "bitstream/exp_golomb.h"
#include "common/check.h"
#include "dsp/zigzag.h"

namespace hdvb {

namespace {

struct ProfileParams {
    int max_lev_direct;
    bool fixed_escape;
    double run_decay;
    double lev_decay;
};

ProfileParams
profile_params(RunLevelProfile profile)
{
    switch (profile) {
      case RunLevelProfile::kMpeg2Intra:
        return {4, true, 0.55, 0.55};
      case RunLevelProfile::kMpeg2Inter:
        return {4, true, 0.65, 0.45};
      case RunLevelProfile::kMpeg4Intra:
        return {8, false, 0.55, 0.55};
      case RunLevelProfile::kMpeg4Inter:
        return {8, false, 0.65, 0.45};
    }
    return {8, false, 0.6, 0.5};
}

}  // namespace

RunLevelCoder::RunLevelCoder(RunLevelProfile profile)
{
    const ProfileParams params = profile_params(profile);
    max_lev_direct_ = params.max_lev_direct;
    fixed_escape_ = params.fixed_escape;

    std::vector<u64> weights(
        static_cast<size_t>(2 + kMaxRunDirect * max_lev_direct_));
    weights[kEob] = 1u << 20;  // every block ends with EOB
    for (int run = 0; run < kMaxRunDirect; ++run) {
        for (int lev = 1; lev <= max_lev_direct_; ++lev) {
            const double p = std::pow(params.run_decay, run) *
                             std::pow(params.lev_decay, lev - 1);
            weights[static_cast<size_t>(pair_symbol(run, lev))] =
                static_cast<u64>(p * (1 << 20)) + 1;
        }
    }
    weights[static_cast<size_t>(escape_symbol())] = 1u << 14;
    table_ = VlcTable::from_weights(weights);
}

const RunLevelCoder &
RunLevelCoder::get(RunLevelProfile profile)
{
    static const RunLevelCoder m2i(RunLevelProfile::kMpeg2Intra);
    static const RunLevelCoder m2p(RunLevelProfile::kMpeg2Inter);
    static const RunLevelCoder m4i(RunLevelProfile::kMpeg4Intra);
    static const RunLevelCoder m4p(RunLevelProfile::kMpeg4Inter);
    switch (profile) {
      case RunLevelProfile::kMpeg2Intra: return m2i;
      case RunLevelProfile::kMpeg2Inter: return m2p;
      case RunLevelProfile::kMpeg4Intra: return m4i;
      case RunLevelProfile::kMpeg4Inter: return m4p;
    }
    return m4p;
}

void
RunLevelCoder::encode_block(BitWriter &bw, const Coeff blk[64],
                            int start) const
{
    int run = 0;
    for (int i = start; i < 64; ++i) {
        const int v = blk[kZigzag8x8[i]];
        if (v == 0) {
            ++run;
            continue;
        }
        const int lev = v < 0 ? -v : v;
        if (run < kMaxRunDirect && lev <= max_lev_direct_) {
            table_.encode(bw, pair_symbol(run, lev));
            bw.put_bit(v < 0);
        } else {
            table_.encode(bw, escape_symbol());
            bw.put_bits(static_cast<u32>(run), 6);
            if (fixed_escape_) {
                // MPEG-2-style 12-bit two's-complement level.
                bw.put_bits(static_cast<u32>(v) & 0xFFF, 12);
            } else {
                write_se(bw, v);
            }
        }
        run = 0;
    }
    table_.encode(bw, kEob);
}

bool
RunLevelCoder::decode_block(BitReader &br, Coeff blk[64], int start) const
{
    int pos = start;
    for (;;) {
        const int sym = table_.decode(br);
        if (sym < 0)
            return false;
        if (sym == kEob)
            return true;
        int run, value;
        if (sym == escape_symbol()) {
            run = static_cast<int>(br.get_bits(6));
            if (fixed_escape_) {
                const u32 raw = br.get_bits(12);
                value = static_cast<int>(raw);
                if (value >= 2048)
                    value -= 4096;  // sign-extend 12 bits
            } else {
                value = read_se(br);
            }
            if (value == 0)
                return false;
        } else {
            run = (sym - 1) / max_lev_direct_;
            value = (sym - 1) % max_lev_direct_ + 1;
            if (br.get_bit())
                value = -value;
        }
        pos += run;
        if (pos > 63 || br.has_error())
            return false;
        blk[kZigzag8x8[pos]] = static_cast<Coeff>(value);
        ++pos;
    }
}

int
RunLevelCoder::block_bits(const Coeff blk[64], int start) const
{
    int bits = 0;
    int run = 0;
    for (int i = start; i < 64; ++i) {
        const int v = blk[kZigzag8x8[i]];
        if (v == 0) {
            ++run;
            continue;
        }
        const int lev = v < 0 ? -v : v;
        if (run < kMaxRunDirect && lev <= max_lev_direct_) {
            bits += table_.bits(pair_symbol(run, lev)) + 1;
        } else {
            bits += table_.bits(escape_symbol()) + 6 +
                    (fixed_escape_ ? 12 : se_bits(v));
        }
        run = 0;
    }
    return bits + table_.bits(kEob);
}

}  // namespace hdvb
