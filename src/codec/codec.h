/**
 * @file
 * The common codec framework: configuration, encoded packets, the
 * encoder/decoder interfaces, and base classes implementing the paper's
 * GOP discipline (Section IV): I-P-B-B with adaptive B placement
 * disabled and the only intra picture being the first one.
 */
#ifndef HDVB_CODEC_CODEC_H
#define HDVB_CODEC_CODEC_H

#include <deque>
#include <memory>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "simd/dispatch.h"
#include "video/frame.h"
#include "video/frame_pool.h"

namespace hdvb {

/** Picture coding type. */
enum class PictureType : u8 { kI = 0, kP = 1, kB = 2 };

/** Upper bound on CodecConfig::threads (sanity cap, not a target). */
inline constexpr int kMaxCodecThreads = 64;

/** One-letter picture type name. */
const char *picture_type_name(PictureType type);

/** One coded picture. */
struct Packet {
    std::vector<u8> data;
    PictureType type = PictureType::kI;
    s64 poc = 0;           ///< display index
    s64 coding_index = 0;  ///< bitstream order
};

/**
 * Configuration shared by all three codecs; codec-specific fields are
 * ignored by the codecs that do not use them.
 */
struct CodecConfig {
    int width = 0;
    int height = 0;
    int fps_num = 25;
    int fps_den = 1;

    /** MPEG-class quantiser scale 1..31 (`vqscale` / `fixed_quant`). */
    int qscale = 5;
    /** H.264-class QP 0..51 (`--qp`). */
    int qp = 26;

    /** B pictures between anchors (the paper uses 2: I-P-B-B). */
    int bframes = 2;
    /** Full-sample motion search range (`merange`). */
    int me_range = 16;
    /** Kernel instruction-set level (the Figure 1 axis). */
    SimdLevel simd = best_simd_level();

    /** H.264-class: maximum forward reference pictures (`--ref`). */
    int refs = 4;

    // ---- tool toggles (ablation benches switch these) ----
    bool qpel = true;     ///< MPEG-4-class quarter-sample MC
    bool four_mv = true;  ///< MPEG-4-class 4MV (8x8 vectors)
    bool deblock = true;  ///< H.264-class in-loop deblocking
    bool intra4 = true;   ///< H.264-class Intra4x4 modes
    bool partitions = true;  ///< H.264-class 16x8/8x16/8x8 partitions

    /**
     * Emit per-macroblock-row resync markers and decode with
     * resynchronisation + concealment (see src/bitstream/resync.h).
     * Off by default: golden streams stay bit-identical.
     */
    bool error_resilience = false;

    /**
     * Worker threads *inside* one encode/decode (1..kMaxCodecThreads).
     * Pictures are partitioned into MB-row bands whose analysis stage
     * (ME + transform + quant + reconstruction) runs wavefront-ordered
     * on a codec-private hdvb::ThreadPool; entropy coding is then
     * serialised in band order, so the emitted bitstream is
     * byte-identical for every thread count. Default 1 keeps the
     * paper-comparable single-core fps numbers (and skips the pool
     * entirely). Orthogonal to HDVB_JOBS, which sizes the sweep-level
     * pool that parallelises across measurement points.
     */
    int threads = 1;

    /**
     * Recycle frame/plane pixel buffers through a per-codec-instance
     * FramePool, so steady-state encode/decode performs zero heap
     * allocations per picture once the working set is warm. Invisible
     * to the bitstream and to decoded pixels (tests pin both); off
     * forces a fresh allocation per picture (A/B runs, leak hunts).
     */
    bool frame_pool = true;

    /**
     * Approximation tier 0..3, orthogonal to @ref simd. Level 0 is
     * today's byte-exact behaviour. Levels >= 1 trade quality for
     * encode speed with deterministic shortcuts — early-termination
     * SAD, pruned motion search, near-zero block skips, low-precision
     * DCT, fast deblocking — so streams are *not* bit-exact across
     * levels, but at a fixed level they are invariant to SIMD tier
     * and thread count. Decoders only consume it for the H.264
     * in-loop deblock fast path (encoder/decoder recon must match).
     */
    int approx = 0;

    /** Check invariants (16-aligned dimensions, ranges). */
    Status validate() const;
};

/** Error-resilience counters a decoder accumulates across decode()
 * calls. All zero unless the stream was damaged (or markers lied). */
struct DecodeStats {
    s64 mbs_concealed = 0;    ///< macroblocks filled by concealment
    s64 resyncs = 0;          ///< successful re-locks after an error
    s64 pictures_dropped = 0; ///< pictures replaced by a repeated anchor
};

/**
 * One snapshot of every counter a codec instance exposes. Before the
 * serve layer there were three ad-hoc accessors (encoder pool_stats(),
 * decoder pool_stats(), decoder DecodeStats stats()); sessions, the
 * sweep engine, and tests now read this one struct instead.
 */
struct CodecStats {
    /** Frame-buffer pool counters (all zero when the codec does not
     * pool). */
    FramePoolStats pool;

    /** Error-resilience counters (always zero for encoders, and for
     * decoders that saw only clean streams). */
    DecodeStats decode;
};

/**
 * The direction-independent half of a codec instance: identity,
 * counters, and memory-arena attachment. VideoEncoder and VideoDecoder
 * both derive from it, so the session layer can account for either
 * through one interface.
 */
class Codec
{
  public:
    virtual ~Codec() = default;

    /** Codec name ("mpeg2", "mpeg4", "h264"). */
    virtual const char *name() const = 0;

    /** Snapshot of every counter this instance tracks. */
    virtual CodecStats stats() const { return {}; }

    /**
     * Recycle frame buffers through @p arena's shared free lists
     * instead of a private pool (no-op when the implementation does
     * not pool, or when CodecConfig::frame_pool is off). Must be
     * called before the first encode/decode call.
     */
    virtual void use_arena(const FrameArena &arena) { (void)arena; }
};

class DecodeSideInfo;
class HintMap;
struct PictureSideInfo;

/** Streaming encoder interface. */
class VideoEncoder : public Codec
{
  public:
    /** Push one frame in display order; packets may be emitted in
     * coding order (B-frame lookahead delays them). */
    virtual Status encode(const Frame &frame,
                          std::vector<Packet> *out) = 0;

    /** Drain buffered pictures. */
    virtual Status flush(std::vector<Packet> *out) = 0;

    /**
     * Adopt @p hints (see codec/side_info.h): before analysing a
     * picture, the encoder claims the matching PictureSideInfo by
     * display index and uses it to seed motion-search candidates and
     * prune mode trials. Hints are advisory — vectors are clamped to
     * the search window and every pruned decision keeps its fallback —
     * so the output stream stays decodable under arbitrary hints, and
     * a null map (the default) leaves behaviour byte-identical to an
     * unhinted encode. Call before the first encode().
     */
    virtual Status
    use_hints(std::shared_ptr<HintMap> hints)
    {
        (void)hints;
        return Status::unimplemented(
            "this encoder does not support analysis-reuse hints");
    }
};

/** Streaming decoder interface; frames come out in display order. */
class VideoDecoder : public Codec
{
  public:
    virtual Status decode(const Packet &packet,
                          std::vector<Frame> *out) = 0;

    /** Drain the held anchor picture. */
    virtual Status flush(std::vector<Frame> *out) = 0;

    /**
     * Register @p sink to receive per-picture side info (per-MB modes,
     * motion vectors, references, quantiser — codec/side_info.h) as
     * pictures are decoded; null unregisters. Only the serial
     * non-resilient decode path records side info, so registering a
     * sink on a CodecConfig::error_resilience decoder is an error.
     * Call before the first decode().
     */
    virtual Status
    export_side_info(DecodeSideInfo *sink)
    {
        (void)sink;
        return Status::unimplemented(
            "this decoder does not export side info");
    }
};

/**
 * Shared encoder skeleton: buffers incoming frames and replays them in
 * coding order (anchor first, then the B pictures that precede it in
 * display order). Subclasses implement encode_picture() and manage
 * their reference reconstructions when it is called.
 */
class EncoderBase : public VideoEncoder
{
  public:
    explicit EncoderBase(const CodecConfig &config) : config_(config) {}

    Status encode(const Frame &frame, std::vector<Packet> *out) final;
    Status flush(std::vector<Packet> *out) final;
    Status use_hints(std::shared_ptr<HintMap> hints) final;

    const CodecConfig &config() const { return config_; }

    CodecStats
    stats() const final
    {
        CodecStats stats;
        stats.pool = pool_.stats();
        return stats;
    }

    void use_arena(const FrameArena &arena) final { pool_.adopt(arena); }

  protected:
    /**
     * Encode one picture. For kI/kP the subclass must promote the
     * reconstruction to be the next backward anchor reference; for kB
     * references are the two surrounding anchors.
     */
    virtual std::vector<u8> encode_picture(const Frame &src,
                                           PictureType type) = 0;

    /** Frame of the configured picture size, drawing its buffers from
     * the codec's pool when CodecConfig::frame_pool is on. */
    Frame
    new_frame(int border = 0)
    {
        return Frame(config_.width, config_.height, border,
                     config_.frame_pool ? &pool_ : nullptr);
    }

    /**
     * Claim the hint picture for @p src from the adopted HintMap, or
     * null when there is no map, no buffered picture for src.poc(),
     * or the buffered picture does not match this encode (@p type or
     * macroblock grid differ — a mismatched GOP structure must degrade
     * to full analysis, never to wrong-direction vectors). Subclasses
     * call this at the top of encode_picture() and treat null as
     * "run the full search".
     */
    std::shared_ptr<const PictureSideInfo>
    take_hints(const Frame &src, PictureType type) const;

  private:
    void emit(const Frame &src, PictureType type,
              std::vector<Packet> *out);

    CodecConfig config_;
    FramePool pool_;
    std::deque<Frame> pending_;  ///< display-order lookahead window
    s64 next_display_ = 0;
    s64 coding_index_ = 0;
    std::shared_ptr<HintMap> hints_;
};

/**
 * Shared decoder skeleton: display-order reordering (anchors are held
 * until the next anchor arrives; B pictures pass straight through).
 */
class DecoderBase : public VideoDecoder
{
  public:
    explicit DecoderBase(const CodecConfig &config) : config_(config) {}

    Status decode(const Packet &packet, std::vector<Frame> *out) final;
    Status flush(std::vector<Frame> *out) final;
    Status export_side_info(DecodeSideInfo *sink) final;

    const CodecConfig &config() const { return config_; }

    CodecStats
    stats() const final
    {
        CodecStats stats;
        stats.pool = pool_.stats();
        stats.decode = stats_;
        return stats;
    }

    void use_arena(const FrameArena &arena) final { pool_.adopt(arena); }

  protected:
    /** Decode one picture into @p out (any size; base resizes). */
    virtual Status decode_picture(const Packet &packet, Frame *out) = 0;

    /** Frame of the configured picture size, drawing its buffers from
     * the codec's pool when CodecConfig::frame_pool is on. */
    Frame
    new_frame(int border = 0)
    {
        return Frame(config_.width, config_.height, border,
                     config_.frame_pool ? &pool_ : nullptr);
    }

    /** Subclasses bump these while decoding resilient pictures. */
    DecodeStats stats_;

    /** Registered side-info sink, or null. Subclasses record per-MB
     * facts while decoding and push one PictureSideInfo per picture
     * (serial non-resilient path only). */
    DecodeSideInfo *side_info_sink() const { return side_info_; }

  private:
    CodecConfig config_;
    FramePool pool_;
    Frame held_anchor_;
    bool has_held_ = false;
    DecodeSideInfo *side_info_ = nullptr;
};

}  // namespace hdvb

#endif  // HDVB_CODEC_CODEC_H
